module ppchecker

go 1.22
