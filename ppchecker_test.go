package ppchecker

import (
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the facade exactly as a downstream user
// would: assemble bytecode, wrap it in an APK, check the app.
func TestPublicAPIEndToEnd(t *testing.T) {
	dex, err := AssembleDex(`
.class Lcom/example/pub/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v2
    return-void
.end method
.end class
`)
	if err != nil {
		t.Fatal(err)
	}
	app := &App{
		Name:        "com.example.pub",
		PolicyHTML:  `<p>We may collect your email address.</p>`,
		Description: "A maps app with GPS navigation and turn-by-turn directions.",
		APK: &APK{
			Manifest: &Manifest{
				Package:     "com.example.pub",
				Permissions: []Permission{{Name: "android.permission.ACCESS_FINE_LOCATION"}},
				Application: Application{
					Activities: []Component{{Name: "com.example.pub.MainActivity"}},
				},
			},
			Dex: dex,
		},
	}
	report := Check(app)
	if !report.HasProblem() {
		t.Fatal("no problem reported")
	}
	if len(report.IncompleteVia(ViaCode)) == 0 {
		t.Fatalf("code finding missing: %s", report.Summary())
	}
	if len(report.IncompleteVia(ViaDescription)) == 0 {
		t.Fatalf("description finding missing: %s", report.Summary())
	}
}

func TestPublicAPKRoundTrip(t *testing.T) {
	dex, err := AssembleDex(".class La/B;\n.end class\n")
	if err != nil {
		t.Fatal(err)
	}
	a := &APK{Manifest: &Manifest{Package: "a.b"}, Dex: dex}
	data, err := EncodeAPK(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAPK(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Manifest.Package != "a.b" {
		t.Fatalf("package = %q", back.Manifest.Package)
	}
	if _, err := ParseAPK([]byte("junk")); err == nil {
		t.Fatal("junk APK accepted")
	}
}

func TestPublicAnalyzers(t *testing.T) {
	pa := AnalyzePolicy(`<p>We may collect your location. We will not share your contacts.</p>`)
	if len(pa.Collect) == 0 || len(pa.NotDisclose) == 0 {
		t.Fatalf("policy analysis = %+v", pa)
	}
	da := AnalyzeDescription("Scan any barcode with your camera.")
	if len(da.Permissions) == 0 {
		t.Fatalf("description analysis = %+v", da)
	}
}

func TestPublicSimilarity(t *testing.T) {
	if Similarity("location", "gps coordinates") < DefaultThreshold {
		t.Fatal("similar phrases below threshold")
	}
	if Similarity("location", "calendar") >= DefaultThreshold {
		t.Fatal("different phrases above threshold")
	}
}

func TestPublicDetectLibraries(t *testing.T) {
	dex, err := AssembleDex(".class Lcom/flurry/android/Agent;\n.end class\n")
	if err != nil {
		t.Fatal(err)
	}
	libs := DetectLibraries(dex)
	if len(libs) != 1 || libs[0].Name != "Flurry" {
		t.Fatalf("libs = %+v", libs)
	}
}

func TestVersion(t *testing.T) {
	if !strings.Contains(Version, ".") {
		t.Fatalf("version = %q", Version)
	}
}

func TestPublicGeneratePolicy(t *testing.T) {
	dex, err := AssembleDex(`
.class Lcom/example/gp/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`)
	if err != nil {
		t.Fatal(err)
	}
	apk := &APK{
		Manifest: &Manifest{
			Package:     "com.example.gp",
			Permissions: []Permission{{Name: "android.permission.ACCESS_FINE_LOCATION"}},
			Application: Application{Activities: []Component{{Name: "com.example.gp.Main"}}},
		},
		Dex: dex,
	}
	policy, err := GeneratePolicy(apk, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(policy, "location") {
		t.Fatalf("generated policy misses location:\n%s", policy)
	}
	// Closure: the app checked against its own generated policy is
	// clean.
	r := Check(&App{Name: "com.example.gp", PolicyHTML: policy, APK: apk})
	if r.HasProblem() {
		t.Fatalf("generated policy still questionable:\n%s", r.Summary())
	}
}

func TestPublicReportWriters(t *testing.T) {
	app := &App{Name: "com.example.rw", PolicyHTML: "<p>We may collect your location.</p>"}
	r := Check(app)
	var jsonBuf, htmlBuf strings.Builder
	if err := WriteReportJSON(&jsonBuf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"app": "com.example.rw"`) {
		t.Fatalf("json = %s", jsonBuf.String())
	}
	if err := WriteReportHTML(&htmlBuf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(htmlBuf.String(), "com.example.rw") {
		t.Fatal("html missing app name")
	}
}

func TestPublicMinedPatterns(t *testing.T) {
	corpus := []string{
		"we will collect your location",
		"we collect your contacts",
		"we will use your information",
	}
	positive := corpus
	negative := []string{"the weather is nice"}
	m := MinePatternMatcher(corpus, positive, negative, 5)
	checker := NewChecker(WithMinedPatterns(m))
	r := checker.Check(&App{
		Name:        "com.example.mined",
		PolicyHTML:  "<p>We will collect your location.</p>",
		Description: "Maps with GPS navigation and turn-by-turn directions.",
	})
	// location covered by the mined matcher → no desc finding.
	if len(r.IncompleteVia(ViaDescription)) != 0 {
		t.Fatalf("mined matcher missed coverage: %s", r.Summary())
	}
}

func TestPublicAnalyzeAPK(t *testing.T) {
	dex, err := AssembleDex(`
.class Lcom/example/sa/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`)
	if err != nil {
		t.Fatal(err)
	}
	apk := &APK{
		Manifest: &Manifest{
			Package:     "com.example.sa",
			Permissions: []Permission{{Name: "android.permission.READ_PHONE_STATE"}},
			Application: Application{Activities: []Component{{Name: "com.example.sa.Main"}}},
		},
		Dex: dex,
	}
	res, err := AnalyzeAPK(apk)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CollectedInfo()) != 1 || len(res.RetainedInfo()) != 1 {
		t.Fatalf("static = collected %v retained %v", res.CollectedInfo(), res.RetainedInfo())
	}
	if len(res.Leaks) != 1 {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

func TestPublicExtensionOptions(t *testing.T) {
	app := &App{
		Name:       "com.example.ext",
		PolicyHTML: "<p>We will not share your personal information without your consent.</p>",
	}
	base := NewChecker().Check(app)
	if len(base.Policy.NotDisclose) == 0 {
		t.Fatal("base analysis missing NotDisclose")
	}
	ext := NewChecker(WithConstraintAnalysis()).Check(app)
	if len(ext.Policy.NotDisclose) != 0 {
		t.Fatalf("constraint analysis kept NotDisclose: %v", ext.Policy.NotDisclose)
	}
	syn := NewChecker(WithSynonymExpansion()).Check(&App{
		Name:       "com.example.syn",
		PolicyHTML: "<p>We will not display any of your personal information.</p>",
	})
	if len(syn.Policy.NotDisclose) == 0 {
		t.Fatal("synonym expansion missed display sentence")
	}
}

func TestPublicUnjustifiedPermissions(t *testing.T) {
	got := UnjustifiedPermissions(
		[]string{"android.permission.READ_CONTACTS"},
		"A relaxing puzzle game with hundreds of levels.")
	if len(got) != 1 {
		t.Fatalf("Unjustified = %v", got)
	}
}
