#!/usr/bin/env bash
# Smoke test for the metamorphic harness and cmd/ppmeta: build the
# CLI, run a small deterministic sweep (must be clean), replay every
# committed seed case, then shrink a planted divergence and replay the
# minimized repro.
#
# Usage: ./scripts/metatest_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/ppmeta"
TMPCASE="$(mktemp -d)/repro.json"

echo "== build"
go build -o "$BIN" ./cmd/ppmeta

echo "== transform catalog"
CATALOG="$("$BIN" transforms)"
echo "$CATALOG"
N_TRANSFORMS="$(echo "$CATALOG" | grep -c '^  [a-z]' || true)"
if [ "$N_TRANSFORMS" -lt 10 ]; then
    echo "catalog lists only $N_TRANSFORMS transforms (want >= 10)" >&2
    exit 1
fi

echo "== sweep (small, deterministic)"
"$BIN" sweep -count 20 -stride 19 -step-seeds 1 -chain-len 2 -esa-pairs 200

echo "== replay committed seed corpus"
"$BIN" replay -dir internal/metatest/testdata/metatest

echo "== shrink a planted divergence"
"$BIN" shrink -app 1 \
    -chain "whitespace-churn:7,case-churn:11,plant-drop-statement:3,ncr-recode:13,para-reorder:17" \
    -note "smoke: planted drop, minimized" -o "$TMPCASE"
grep -q '"plant-drop-statement"' "$TMPCASE" || {
    echo "minimized case lost the planted step:" >&2
    cat "$TMPCASE" >&2
    exit 1
}
N_STEPS="$(grep -c '"name"' "$TMPCASE")"
if [ "$N_STEPS" -gt 2 ]; then
    echo "minimized chain has $N_STEPS steps (want <= 2):" >&2
    cat "$TMPCASE" >&2
    exit 1
fi

echo "== replay the minimized repro"
"$BIN" replay "$TMPCASE"

echo "SMOKE-OK"
