#!/usr/bin/env bash
# Soak smoke for the streaming ingestion layer (cmd/ppstream):
#
#   1. run a fault-injected firehose soak for DURATION and require the
#      self-verifying verdict to pass (throughput, bounded heap, and
#      journal accounting: zero lost apps, zero duplicates);
#   2. SIGKILL a journaled run mid-corpus, resume it, and require the
#      resumed stats line to be bit-identical to an uninterrupted run.
#
# Usage: ./scripts/stream_soak.sh [duration] [min-rate]
#   duration  soak length for step 1 (default 20s; nightly uses longer)
#   min-rate  minimum sustained apps/sec (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-20s}"
MIN_RATE="${2:-5}"
WORK="$(mktemp -d)"
BIN="$WORK/ppstream"
trap 'rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$BIN" ./cmd/ppstream

echo "== fault-injected soak ($DURATION, min ${MIN_RATE} apps/sec)"
"$BIN" -firehose -duration "$DURATION" -faults -soak \
    -min-rate "$MIN_RATE" -heap-interval 100ms \
    -journal "$WORK/soak.journal"

echo "== SIGKILL mid-run, then resume"
SEED=5 APPS=3000
# (no pipes into head: ppstream keeps writing after the first line and
# pipefail would turn the resulting SIGPIPE into a failure)
"$BIN" -firehose -seed "$SEED" -apps "$APPS" > "$WORK/ref_full.txt"
head -1 "$WORK/ref_full.txt" > "$WORK/ref.txt"
"$BIN" -firehose -seed "$SEED" -apps "$APPS" \
    -journal "$WORK/crash.journal" -fsync-every 1 >/dev/null 2>&1 &
PID=$!
# Let it checkpoint some apps, then kill as hard as POSIX allows.
for i in $(seq 1 100); do
    LINES=$({ wc -l < "$WORK/crash.journal"; } 2>/dev/null || echo 0)
    [ "$LINES" -ge 20 ] && break
    sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
LINES=$(wc -l < "$WORK/crash.journal")
if [ "$LINES" -ge $((APPS + 1)) ]; then
    echo "run finished before the kill landed; nothing was proven" >&2
    exit 1
fi
echo "   killed with $((LINES - 1)) of $APPS apps checkpointed"

"$BIN" -firehose -seed "$SEED" -apps "$APPS" -journal "$WORK/crash.journal" \
    > "$WORK/resumed_full.txt"
head -1 "$WORK/resumed_full.txt" > "$WORK/resumed.txt"
if ! diff "$WORK/ref.txt" "$WORK/resumed.txt"; then
    echo "resumed stats differ from the uninterrupted run" >&2
    exit 1
fi
echo "   resumed stats bit-identical: $(cat "$WORK/resumed.txt")"

echo "SOAK-OK"
