#!/usr/bin/env sh
# deflake_stress.sh — hammer the timing-sensitive test surfaces under
# the race detector to prove the synchronization fixes hold: the
# stream backpressure/soak/journal tests, the serve admission/drain
# tests, and the concurrency hammers for frozen-graph reads and pooled
# per-app arena reuse run COUNT times each (50 by default, override
# with COUNT=n or $1). Any single failure fails the script.
#
#   scripts/deflake_stress.sh          # 50 iterations
#   COUNT=200 scripts/deflake_stress.sh
#   scripts/deflake_stress.sh 10       # quick pass
set -eu

COUNT="${1:-${COUNT:-50}}"
cd "$(dirname "$0")/.."

echo "deflake stress: ${COUNT}x -race over stream + serve timing-sensitive tests"

go test ./internal/stream/ -race -count="${COUNT}" \
    -run 'TestRunBackpressure|TestHeapSamplerPublishes|TestRunDrain|TestRunFirehose|TestRunResumeBitIdentical'

go test ./internal/serve/ -race -count="${COUNT}" -short \
    -run 'TestServeGracefulDrain|TestServeConcurrentClients|TestServeCheckHistory'

go test ./internal/graphdb/ ./internal/core/ -race -count="${COUNT}" \
    -run 'TestFrozenConcurrentReads|TestCheckSafeConcurrentArenaReuse'

echo "deflake stress: all ${COUNT} iterations passed"
