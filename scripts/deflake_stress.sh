#!/usr/bin/env sh
# deflake_stress.sh — hammer the timing-sensitive test surfaces under
# the race detector to prove the synchronization fixes hold: the
# stream backpressure/soak/journal tests, the serve admission/drain
# tests, the concurrency hammers for frozen-graph reads and pooled
# per-app arena reuse, and the distributed-tier lease/renewal/failover
# tests run COUNT times each (50 by default, override with COUNT=n or
# $1); the multi-process dist SIGKILL soak and the chaos suite (short
# subset) run COUNT/10 times. Any single failure fails the script.
#
#   scripts/deflake_stress.sh          # 50 iterations
#   COUNT=200 scripts/deflake_stress.sh
#   scripts/deflake_stress.sh 10       # quick pass
set -eu

COUNT="${1:-${COUNT:-50}}"
cd "$(dirname "$0")/.."

echo "deflake stress: ${COUNT}x -race over stream + serve timing-sensitive tests"

go test ./internal/stream/ -race -count="${COUNT}" \
    -run 'TestRunBackpressure|TestHeapSamplerPublishes|TestRunDrain|TestRunFirehose|TestRunResumeBitIdentical'

go test ./internal/serve/ -race -count="${COUNT}" -short \
    -run 'TestServeGracefulDrain|TestServeConcurrentClients|TestServeCheckHistory'

go test ./internal/graphdb/ ./internal/core/ -race -count="${COUNT}" \
    -run 'TestFrozenConcurrentReads|TestCheckSafeConcurrentArenaReuse'

# The distributed tier's timing-sensitive surfaces: lease expiry +
# reassignment + duplicate rejection, the renewal heartbeat protocol
# (slow-app survival, late-renewal denial, sweep-clock latency), and
# standby promotion.
go test ./internal/dist/ -race -count="${COUNT}" \
    -run 'TestLeaseExpiryReassignsAndDeduplicates|TestCoordinatorBitIdenticalToStreamRun|TestRenewalKeepsSlowAppAlive|TestNoRenewalReassignsSlowApp|TestLateRenewalCannotReviveExpiredLease|TestExpiryLatencyBounded|TestStandbyPromotionResumesBitIdentical'

# The multi-process hammers spawn child worker processes per scenario,
# so they get a smaller count: the SIGKILL soak and the randomized
# chaos suite (short subset: >=1 failover + >=1 renewal-drop each run).
DIST_SOAK_COUNT=$(( COUNT / 10 ))
[ "${DIST_SOAK_COUNT}" -lt 1 ] && DIST_SOAK_COUNT=1
go test ./internal/dist/ -race -count="${DIST_SOAK_COUNT}" \
    -run 'TestDistCrashSoakBitIdentical'
go test ./internal/dist/ -race -count="${DIST_SOAK_COUNT}" -short \
    -run 'TestDistChaosSuite'

echo "deflake stress: all ${COUNT} iterations passed"
