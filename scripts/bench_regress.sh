#!/usr/bin/env bash
# bench_regress.sh — run the gated benchmark set, capture it to
# BENCH_<rev>.json, and compare against the committed baseline.
#
#   ./scripts/bench_regress.sh                 # gate against baseline
#   UPDATE_BASELINE=1 ./scripts/bench_regress.sh   # refresh baseline
#
# Environment:
#   BENCH_TOLERANCE  allowed relative drift (default 0.20 = ±20%)
#   BENCH_TIME       -benchtime for the timing benches (default 1s)
#
# The gated set is the observability- and performance-critical path:
# the end-to-end CheckSafe pair (uninstrumented vs observed — their
# ratio is the observer overhead), the frozen-CSR graph query mix and
# the Aho-Corasick lexicon screen (the two hot substrates under the
# pipeline), the ESA Similarity benches (warm = memoized vector path,
# cold = fresh interpretation, reference = legacy map path), the obs
# span microbenches, and the Table IV outcome bench whose custom
# metrics pin the paper's inconsistency precision/recall
# (-benchtime=1x: outcome run, ns/op not gated).
set -euo pipefail
cd "$(dirname "$0")/.."

rev=$(git rev-parse --short HEAD 2>/dev/null || echo dev)
out="BENCH_${rev}.json"
baseline=testdata/bench_baseline.json
tol="${BENCH_TOLERANCE:-0.20}"

run_benches() {
  go test -run '^$' -bench 'CheckSafe|GraphQueryThroughput|LexiconMatch|Similarity(Warm|Cold|ReferenceMap)|Span(Nil|Metrics|JSONL)' \
    -benchmem -benchtime "${BENCH_TIME:-1s}" . ./internal/obs
  go test -run '^$' -bench 'TableIVInconsistency' -benchtime 1x .
}

if [[ "${UPDATE_BASELINE:-}" == 1 ]]; then
  mkdir -p testdata
  run_benches | go run ./cmd/benchcmp -capture "$baseline"
  echo "baseline refreshed: $baseline"
  exit 0
fi

run_benches | go run ./cmd/benchcmp -capture "$out" -baseline "$baseline" -tolerance "$tol"
