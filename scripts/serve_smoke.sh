#!/usr/bin/env bash
# Smoke test for cmd/ppserve: build the server, start it, push one
# bundle through /check, scrape /metrics, then send SIGTERM and
# require a clean graceful drain (exit 0).
#
# Usage: ./scripts/serve_smoke.sh [addr]
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:18099}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/ppserve"
LOG="$(mktemp)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

echo "== build"
go build -o "$BIN" ./cmd/ppserve

echo "== start on $ADDR"
"$BIN" -addr "$ADDR" -workers 2 -queue 8 >"$LOG" 2>&1 &
SRV_PID=$!

for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "server died on startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q ok || { echo "healthz not ok" >&2; exit 1; }

echo "== POST /check"
RESP="$(curl -sf -X POST "$BASE/check" -H 'Content-Type: application/json' -d '{
  "name": "com.example.smoke",
  "policy_html": "<html><body><p>We collect your location information and your contact data. We share your personal information with advertising partners.</p></body></html>",
  "description": "A flashlight app that needs your location."
}')"
echo "$RESP" | grep -q '"outcome":"checked"' || { echo "bad /check response: $RESP" >&2; exit 1; }
echo "$RESP" | grep -q '"report":{' || { echo "/check response has no report: $RESP" >&2; exit 1; }
echo "$RESP" | grep -q '"app":"com.example.smoke"' || { echo "report names wrong app: $RESP" >&2; exit 1; }

echo "== GET /metrics"
METRICS="$(curl -sf "$BASE/metrics")"
echo "$METRICS" | grep -q 'serve-requests-checked' || { echo "metrics missing request counters:" >&2; echo "$METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q 'lib-policy-analyses' || { echo "metrics missing cache gauges:" >&2; echo "$METRICS" >&2; exit 1; }

echo "== SIGTERM drain"
kill -TERM "$SRV_PID"
STATUS=0
wait "$SRV_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "ppserve exited $STATUS after SIGTERM (want 0, a clean drain):" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "drained cleanly" "$LOG" || { echo "no clean-drain log line:" >&2; cat "$LOG" >&2; exit 1; }

echo "SMOKE-OK"
