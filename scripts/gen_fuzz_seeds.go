//go:build ignore

// gen_fuzz_seeds promotes the fault classes exercised by the fuzz
// targets' f.Add seeds into checked-in corpus files under each
// package's testdata/fuzz/<FuzzTarget>/ directory. Checked-in seeds
// replay as regular subtests during plain `go test` runs — every CI
// run re-executes the historical crash classes without -fuzz — and
// warm-start coverage-guided fuzzing.
//
// Regenerate (deterministic; overwrites the seed-* files):
//
//	go run scripts/gen_fuzz_seeds.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen_fuzz_seeds: ")
	if _, err := os.Stat("go.mod"); err != nil {
		log.Fatal("run from the repository root: go run scripts/gen_fuzz_seeds.go")
	}
	writeDexSeeds()
	writeAPKSeeds()
	writeHTMLSeeds()
	writeNLPSeeds()
	writeLongiSeeds()
	writeActrieSeeds()
}

func writeActrieSeeds() {
	// FuzzLexiconMatch takes (patterns, text): newline-separated pattern
	// list and a subject string, checked DFA-vs-reference in both fold
	// modes. The planted classes are the boundary traps the analyzers
	// lean on: prefix-nested patterns, token boundaries at apostrophes
	// and hyphens, overlapping phrases, case folding across words, and
	// UTF-8 bytes adjacent to ASCII matches (non-ASCII must read as a
	// token boundary, never as a word character).
	emit := pairSeeder("internal/actrie", "FuzzLexiconMatch")
	emit("prefix-nest", "use\nuser\nshare", "the user may use and share data")
	emit("substring-traps", "use", "re-use misuse user's use")
	emit("apostrophe-boundary", "do\ndon", "don't do that, donor")
	emit("pronoun-overlap", "he\nshe\nher\nhers", "she gave hers to her and he left")
	emit("stem-pair", "collect\ncollection", "data collection; we collect it")
	emit("phrase-overlap", "third party\nparty", "third parties and one third party")
	emit("self-overlap", "a\naa\naaa", "aaaa aaa'a a-a a")
	emit("utf8-neighbors", "use", "usé use usë")
	emit("clitic-patterns", "'s\nn't", "user's don't n't 's")
	emit("fold-cross-word", "Share Data", "we SHARE DATA and share data")
	emit("empty", "", "")
	emit("empty-pattern-line", "\nuse\n", "use it")
	emit("byte-class-dense", "az\nza", strings.Repeat("azb", 40))
}

func writeDexSeeds() {
	d, err := dex.Assemble(`
.class Lcom/example/fuzz/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    const-string v1, "content://com.android.contacts"
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    if-z v1, 3
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	valid := dex.Encode(d)
	emit := seeder("internal/dex", "FuzzDexDecode")
	emit("valid", valid)
	emit("bomb", dex.Encode(synth.BombDex()))
	emit("empty", []byte{})
	emit("magic-only", []byte("SDEX"))
	emit("truncated", valid[:len(valid)/3])
	for i, seed := range synth.NewCorruptor(1).Mangle(valid, 4) {
		emit(fmt.Sprintf("mangled-%d", i), seed)
	}
}

func writeAPKSeeds() {
	d, err := dex.Assemble(`
.class Lcom/example/fuzz/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	m := &apk.Manifest{
		Package:     "com.example.fuzz",
		Permissions: []apk.Permission{{Name: sensitive.PermFineLocation}},
		Application: apk.Application{Activities: []apk.Component{{Name: "com.example.fuzz.Main"}}},
	}
	emit := seeder("internal/apk", "FuzzAPKDecode")
	for _, packed := range []bool{false, true} {
		kind := "plain"
		if packed {
			kind = "packed"
		}
		a := apk.New(m, d)
		a.Packed = packed
		valid, err := apk.Encode(a)
		if err != nil {
			log.Fatal(err)
		}
		emit("valid-"+kind, valid)
		c := synth.NewCorruptor(2)
		for _, fault := range []synth.Fault{
			synth.FaultDexTruncated, synth.FaultDexBitFlip,
			synth.FaultPackGarbage, synth.FaultCallCycle,
		} {
			if seed, err := c.CorruptAPK(valid, fault); err == nil {
				emit(fmt.Sprintf("%s-%s", kind, fault), seed)
			}
		}
	}
	emit("magic-only", []byte("SAPK\x01"))
}

func writeHTMLSeeds() {
	base := "<html><body><p>We collect your location information.</p></body></html>"
	emit := seeder("internal/htmltext", "FuzzHTMLExtract")
	emit("base", base)
	c := synth.NewCorruptor(3)
	for _, fault := range []synth.Fault{
		synth.FaultPolicyBadUTF8, synth.FaultPolicyUnclosed,
		synth.FaultPolicyEnumBomb, synth.FaultPolicyTokenBomb,
	} {
		if s, err := c.CorruptPolicy(base, fault); err == nil {
			emit(string(fault), s)
		}
	}
	emit("unclosed-script", "<script>unclosed")
	emit("unterminated-comment", "<!-- unterminated comment")
	emit("bad-entities", "&#x110000;&bogus;&")
	emit("surrogate-ncr", "&#xD800;&#xDFFF;&#55296;&#x110000;")
	emit("multibyte-ncr-digits", "&#xŁ1;&#１2;&#x;&#;")
	emit("space-tag", "< div")
}

func writeNLPSeeds() {
	base := "We collect your location. We share it with: partners; advertisers; and analytics providers."
	emit := seeder("internal/nlp", "FuzzSentenceSplit")
	emit("base", base)
	c := synth.NewCorruptor(4)
	for _, fault := range []synth.Fault{
		synth.FaultPolicyEnumBomb, synth.FaultPolicyTokenBomb,
	} {
		if s, err := c.CorruptPolicy(base, fault); err == nil {
			emit(string(fault), s)
		}
	}
	emit("semicolon-lines", strings.Repeat("a;\n", 500))
	emit("abbreviations", "e.g. i.e. etc. 3.14 v1.")
	emit("empty", "")
}

func writeLongiSeeds() {
	// FuzzStageKey takes two (policy, dex, desc, config) tuples; each
	// seed file carries eight []byte lines. The planted classes are the
	// framing ambiguities the canonicalizer must keep apart: boundary
	// shifts within a tuple, content migrating between sections, a
	// config-only delta, and an equal pair (the domain-separation path).
	emit := multiSeeder("internal/longi", "FuzzStageKey")
	policy := []byte("<html><body><p>We collect your location.</p></body></html>")
	dex := []byte{0x53, 0x44, 0x45, 0x58, 0x01, 0x00}
	desc := []byte("A flashlight app.")
	cfg := []byte(`{"threshold":0.75,"synonym_expansion":false}`)
	emit("equal-tuples", policy, dex, desc, cfg, policy, dex, desc, cfg)
	emit("boundary-shift", []byte("ab"), []byte("c"), nil, nil,
		[]byte("a"), []byte("bc"), nil, nil)
	emit("section-migration", []byte("x"), nil, nil, nil,
		nil, []byte("x"), nil, nil)
	emit("config-only-delta", policy, dex, desc, cfg,
		policy, dex, desc, []byte(`{"threshold":0.75,"synonym_expansion":true}`))
	emit("empty-vs-nul", nil, nil, nil, nil,
		nil, nil, nil, []byte{0})
	emit("length-prefix-edge", bytes.Repeat([]byte{0x80}, 127), nil, nil, nil,
		bytes.Repeat([]byte{0x80}, 128), nil, nil, nil)
}

// seeder returns an emit function writing seed-<name> files for one
// fuzz target.
func seeder(pkg, target string) func(name string, value any) {
	dir := filepath.Join(filepath.FromSlash(pkg), "testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	return func(name string, value any) {
		var b strings.Builder
		b.WriteString("go test fuzz v1\n")
		switch v := value.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%q)\n", v)
		case string:
			fmt.Fprintf(&b, "string(%q)\n", v)
		default:
			log.Fatalf("unsupported seed type %T", value)
		}
		path := filepath.Join(dir, "seed-"+name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// pairSeeder emits seed files for a two-string fuzz target: one
// string(...) line per parameter, in order.
func pairSeeder(pkg, target string) func(name, first, second string) {
	dir := filepath.Join(filepath.FromSlash(pkg), "testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	return func(name, first, second string) {
		var b strings.Builder
		b.WriteString("go test fuzz v1\n")
		fmt.Fprintf(&b, "string(%q)\n", first)
		fmt.Fprintf(&b, "string(%q)\n", second)
		path := filepath.Join(dir, "seed-"+name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// multiSeeder is the multi-parameter variant of seeder: each seed file
// carries one []byte line per fuzz-target parameter, in order.
func multiSeeder(pkg, target string) func(name string, values ...[]byte) {
	dir := filepath.Join(filepath.FromSlash(pkg), "testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	return func(name string, values ...[]byte) {
		var b strings.Builder
		b.WriteString("go test fuzz v1\n")
		for _, v := range values {
			fmt.Fprintf(&b, "[]byte(%q)\n", v)
		}
		path := filepath.Join(dir, "seed-"+name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
