// Command ppbench regenerates every table and figure of the paper's
// evaluation (§V) against the synthetic corpus and prints them:
//
//	ppbench -all
//	ppbench -fig12 -table4
//	ppbench -apps 600 -seed 7 -summary
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ppchecker/internal/eval"
	"ppchecker/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppbench: ")
	var (
		all     = flag.Bool("all", false, "run every experiment")
		fig12   = flag.Bool("fig12", false, "pattern-selection sweep (Fig. 12)")
		table3  = flag.Bool("table3", false, "incomplete via description (Table III)")
		fig13   = flag.Bool("fig13", false, "missed-information distribution (Fig. 13)")
		table4  = flag.Bool("table4", false, "inconsistency metrics (Table IV)")
		recall  = flag.Bool("recall", false, "200-app recall sample (§V-E)")
		sweep   = flag.Bool("sweep", false, "ESA threshold sensitivity sweep")
		csvPath = flag.String("csv", "", "write the Fig. 12 sweep as CSV to this file")
		summary = flag.Bool("summary", false, "corpus summary (§V-F)")
		apps    = flag.Int("apps", synth.PaperNumApps, "corpus size")
		seed    = flag.Int64("seed", synth.DefaultConfig().Seed, "corpus seed")
	)
	flag.Parse()
	if *all {
		*fig12, *table3, *fig13, *table4, *recall, *sweep, *summary = true, true, true, true, true, true, true
	}
	if !*fig12 && !*table3 && !*fig13 && !*table4 && !*recall && !*sweep && !*summary {
		*summary = true
	}

	if *fig12 {
		start := time.Now()
		data := synth.GenerateFig12(synth.DefaultFig12Config())
		r := eval.RunFig12(data)
		fmt.Print(eval.RenderFig12(r, 20))
		fmt.Printf("(pattern experiment took %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote Fig. 12 sweep to %s\n\n", *csvPath)
		}
	}

	if *table3 || *fig13 || *table4 || *recall || *sweep || *summary {
		start := time.Now()
		ds, err := synth.Generate(synth.Config{Seed: *seed, NumApps: *apps})
		if err != nil {
			log.Fatal(err)
		}
		genTime := time.Since(start)
		start = time.Now()
		res, stats, err := eval.EvaluateCorpusRobust(context.Background(), ds, eval.DefaultRunOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corpus: %d apps generated in %v, analyzed in %v\n",
			*apps, genTime.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
		fmt.Printf("%s\n\n", stats.Render())
		if *table3 {
			fmt.Println(eval.RenderTableIII(res.TableIII()))
		}
		if *fig13 {
			fmt.Println(eval.RenderFig13(res.Fig13()))
		}
		if *table4 {
			fmt.Println(eval.RenderTableIV(res.ComputeTableIV()))
		}
		if *recall {
			fmt.Println(res.RunRecallSample(2016, 200).Render())
		}
		if *sweep {
			fmt.Println(eval.RenderThresholdSweep(eval.RunThresholdSweep(ds, eval.DefaultThresholds())))
		}
		if *summary {
			fmt.Println("Summary (paper §V-F):")
			fmt.Print(res.Summary().Render())
		}
	}
}
