// Command ppbench regenerates every table and figure of the paper's
// evaluation (§V) against the synthetic corpus and prints them:
//
//	ppbench -all
//	ppbench -fig12 -table4
//	ppbench -apps 600 -seed 7 -summary
//	ppbench -summary -metrics -trace trace.jsonl -pprof localhost:6060
//
// -metrics instruments the corpus run and prints the per-stage
// exposition (runs, errors, p50/p95/max latency, cache hit rate) after
// the tables; -trace additionally records every span as JSON Lines;
// -pprof serves net/http/pprof for profiling the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppbench: ")
	var (
		all     = flag.Bool("all", false, "run every experiment")
		fig12   = flag.Bool("fig12", false, "pattern-selection sweep (Fig. 12)")
		table3  = flag.Bool("table3", false, "incomplete via description (Table III)")
		fig13   = flag.Bool("fig13", false, "missed-information distribution (Fig. 13)")
		table4  = flag.Bool("table4", false, "inconsistency metrics (Table IV)")
		recall  = flag.Bool("recall", false, "200-app recall sample (§V-E)")
		sweep   = flag.Bool("sweep", false, "ESA threshold sensitivity sweep")
		csvPath = flag.String("csv", "", "write the Fig. 12 sweep as CSV to this file")
		summary = flag.Bool("summary", false, "corpus summary (§V-F)")
		apps    = flag.Int("apps", synth.PaperNumApps, "corpus size")
		seed    = flag.Int64("seed", synth.DefaultConfig().Seed, "corpus seed")
		metrics = flag.Bool("metrics", false, "instrument the corpus run and print per-stage metrics")
		trace   = flag.String("trace", "", "write a JSONL span trace of the corpus run to this file (implies -metrics)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *pprof != "" {
		addr, err := obs.ServePprof(*pprof)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		fmt.Printf("pprof: serving on http://%s/debug/pprof\n", addr)
	}
	var observer *obs.Observer
	if *metrics || *trace != "" {
		var opts []obs.Option
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			sink := obs.NewJSONLSink(f)
			defer func() {
				if err := sink.Close(); err != nil {
					log.Fatalf("trace: %v", err)
				}
			}()
			opts = append(opts, obs.WithSink(sink))
		}
		observer = obs.New(opts...)
	}
	if *all {
		*fig12, *table3, *fig13, *table4, *recall, *sweep, *summary = true, true, true, true, true, true, true
	}
	if !*fig12 && !*table3 && !*fig13 && !*table4 && !*recall && !*sweep && !*summary {
		*summary = true
	}

	if *fig12 {
		start := time.Now()
		data := synth.GenerateFig12(synth.DefaultFig12Config())
		r := eval.RunFig12(data)
		fmt.Print(eval.RenderFig12(r, 20))
		fmt.Printf("(pattern experiment took %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote Fig. 12 sweep to %s\n\n", *csvPath)
		}
	}

	if *table3 || *fig13 || *table4 || *recall || *sweep || *summary {
		start := time.Now()
		ds, err := synth.Generate(synth.Config{Seed: *seed, NumApps: *apps})
		if err != nil {
			log.Fatal(err)
		}
		genTime := time.Since(start)
		start = time.Now()
		runOpts := eval.DefaultRunOptions()
		runOpts.Observer = observer
		esaBefore := esa.AggregateCacheStats()
		res, stats, err := eval.EvaluateCorpusRobust(context.Background(), ds, runOpts)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		esaDelta := esa.AggregateCacheStats().Sub(esaBefore)
		fmt.Printf("corpus: %d apps generated in %v, analyzed in %v\n",
			*apps, genTime.Round(time.Millisecond), wall.Round(time.Millisecond))
		fmt.Println(stats.Render())
		fmt.Printf("throughput: %.1f apps/sec; ESA interpret cache: %.1f%% hit rate (%d hits, %d misses, %d evictions)\n\n",
			float64(*apps)/wall.Seconds(), 100*esaDelta.HitRate(),
			esaDelta.Hits, esaDelta.Misses, esaDelta.Evictions)
		if stats.Metrics != nil {
			fmt.Println("Per-stage metrics:")
			fmt.Print(stats.Metrics.Render())
			// Consistency line: the pipeline stages partition each app's
			// corpus-run span, which in turn fills the worker pool's share
			// of the wall clock.
			var pipeline, appRuns time.Duration
			for _, st := range stats.Metrics.Stages {
				switch st.Stage {
				case string(core.StageRun):
					appRuns = st.Total
				case core.SpanDetectIncomplete, core.SpanDetectIncorrect, core.SpanDetectInconsistent:
					// nested inside the detectors stage; skip to avoid
					// double counting
				default:
					pipeline += st.Total
				}
			}
			fmt.Printf("pipeline stages sum to %v of %v per-app run time; wall clock %v on %d workers\n\n",
				pipeline.Round(time.Millisecond), appRuns.Round(time.Millisecond),
				wall.Round(time.Millisecond), runtime.GOMAXPROCS(0))
		}
		if *table3 {
			fmt.Println(eval.RenderTableIII(res.TableIII()))
		}
		if *fig13 {
			fmt.Println(eval.RenderFig13(res.Fig13()))
		}
		if *table4 {
			fmt.Println(eval.RenderTableIV(res.ComputeTableIV()))
		}
		if *recall {
			fmt.Println(res.RunRecallSample(2016, 200).Render())
		}
		if *sweep {
			fmt.Println(eval.RenderThresholdSweep(eval.RunThresholdSweep(ds, eval.DefaultThresholds())))
		}
		if *summary {
			fmt.Println("Summary (paper §V-F):")
			fmt.Print(res.Summary().Render())
		}
	}
}
