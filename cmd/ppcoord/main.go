// Command ppcoord runs the distributed analysis coordinator
// (internal/dist): it owns a corpus source, the checkpoint journal and
// the corpus-level stats, and serves work leases over HTTP to
// worker-mode ppstream processes.
//
//	ppcoord -addr :8080 -firehose -seed 7 -apps 5000 -journal run.journal
//	ppcoord -addr :8080 -dir corpus/ -shards 4
//	ppstream -worker http://coordinator:8080 -workers 4   (on each box)
//
// The coordinator grants each app to exactly one worker at a time
// under a lease; a worker that dies mid-app simply stops renewing —
// its leases expire and the apps are reassigned to survivors. Every
// folded outcome is checkpointed to the journal first, so a killed
// coordinator re-invoked with the same -journal resumes bit-identically,
// exactly like a single-process ppstream run.
//
// -shards N hosts N in-memory artifact shards at /shard/<i>; workers
// read the shared library-policy analysis cache through them, so a
// policy analyzed by one worker is free for every other.
//
// Exit codes: 0 clean, 1 on a run failure, 2 on a usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppchecker/internal/dist"
	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/stream"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ppcoord: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address for the lease protocol")
		dir      = flag.String("dir", "", "serve an on-disk corpus directory (bundle layout; workers must see the same path)")
		firehose = flag.Bool("firehose", false, "serve the synthetic Play-store firehose")
		seed     = flag.Int64("seed", 1, "firehose generator seed")
		apps     = flag.Int64("apps", 0, "firehose cap (0 = endless)")

		journalPath = flag.String("journal", "", "durable checkpoint journal (reuse to resume a killed run)")
		fsyncEvery  = flag.Int("fsync-every", 0, "journal records per fsync batch (0 = 32)")

		leaseTTL       = flag.Duration("lease-ttl", 30*time.Second, "lease deadline before an app is reassigned (size well above the workers' per-app timeout)")
		maxOutstanding = flag.Int("max-outstanding", 64, "max concurrently leased apps (backpressure on the source)")
		shards         = flag.Int("shards", 2, "in-memory artifact shards hosted for the shared analysis cache (0 disables)")

		metricsDump = flag.Bool("metrics", false, "print the final metrics snapshot to stderr")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "keep serving 'run complete' this long after finishing, so polling workers exit cleanly instead of hitting a closed port")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*dir == "") == !*firehose {
		fmt.Fprintln(os.Stderr, "ppcoord: exactly one of -dir or -firehose is required")
		flag.Usage()
		return 2
	}

	observer := obs.New()

	var src stream.Source
	var sourceName string
	if *dir != "" {
		ds, err := stream.NewDirSource(*dir)
		if err != nil {
			log.Print(err)
			return 1
		}
		src, sourceName = ds, "dir:"+*dir
		log.Printf("serving %d app bundles from %s", ds.Len(), *dir)
	} else {
		src = stream.NewFirehoseSource(*seed, *apps)
		sourceName = fmt.Sprintf("firehose:%d", *seed)
		capDesc := "endless"
		if *apps > 0 {
			capDesc = fmt.Sprintf("%d apps", *apps)
		}
		log.Printf("serving the synthetic firehose (seed %d, %s)", *seed, capDesc)
	}

	var journal *stream.Journal
	var replay *stream.Replay
	if *journalPath != "" {
		var err error
		journal, replay, err = stream.OpenJournal(*journalPath, sourceName,
			stream.JournalOptions{FsyncEvery: *fsyncEvery, Observer: observer})
		if err != nil {
			log.Print(err)
			return 1
		}
		defer journal.Close()
		if replay.Records > 0 {
			log.Printf("resuming: %d checkpointed apps recovered from %s (torn tail: %v)",
				replay.Records, *journalPath, replay.Truncated)
		}
	}

	stores := make([]longi.Store, *shards)
	for i := range stores {
		stores[i] = longi.NewMemStore(0)
	}

	c := dist.NewCoordinator(dist.CoordinatorOptions{
		Source:         src,
		Journal:        journal,
		Replay:         replay,
		MaxOutstanding: *maxOutstanding,
		LeaseTTL:       *leaseTTL,
		Observer:       observer,
		Shards:         stores,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv := &http.Server{Handler: c.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}()
	defer srv.Close()
	log.Printf("coordinating on %s (lease TTL %s, %d shards, max %d outstanding)",
		ln.Addr(), *leaseTTL, *shards, *maxOutstanding)

	// SIGTERM/SIGINT stops waiting; in-memory progress is abandoned but
	// everything folded so far is already in the journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	stats, err := c.Wait(ctx)
	elapsed := time.Since(start)
	if err != nil {
		log.Printf("run failed: %v", err)
		if stats.JournalErrors > 0 {
			log.Printf("WARNING: %d journal appends failed — completed apps may be missing "+
				"from the checkpoint log; a resume will re-analyze them", stats.JournalErrors)
		}
		return 1
	}

	snap := c.StatsSnapshot()
	fmt.Println(stats.Render())
	fmt.Printf("Coordinator: %d analyzed this run in %s, %d replayed from journal, %d re-analyzed\n",
		stats.Apps-stats.Replayed, elapsed.Round(time.Millisecond), stats.Replayed, stats.Reanalyzed)
	fmt.Printf("Coordinator: %d leases granted, %d expired (reassigned), %d duplicate reports\n",
		snap.Granted, snap.Expired, snap.Duplicates)
	if journal != nil {
		fmt.Printf("Journal: %d records, %d fsyncs, %d append errors\n",
			stats.JournalRecords, stats.JournalFsyncs, stats.JournalErrors)
		if stats.JournalErrors > 0 {
			log.Printf("WARNING: %d journal appends failed — completed apps may be missing "+
				"from the checkpoint log; a resume will re-analyze them", stats.JournalErrors)
		}
	}
	if *metricsDump {
		fmt.Fprint(os.Stderr, observer.Snapshot().Render())
	}
	// Lame-duck: the latch is closed, so every remaining lease poll
	// gets 410 (run complete) rather than a dead socket.
	if *drainGrace > 0 {
		select {
		case <-time.After(*drainGrace):
		case <-ctx.Done():
		}
	}
	return 0
}
