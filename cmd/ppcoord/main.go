// Command ppcoord runs the distributed analysis coordinator
// (internal/dist): it owns a corpus source, the checkpoint journal and
// the corpus-level stats, and serves work leases over HTTP to
// worker-mode ppstream processes.
//
//	ppcoord -addr :8080 -firehose -seed 7 -apps 5000 -journal run.journal
//	ppcoord -addr :8080 -dir corpus/ -shards 4 -shard-dir /var/cache/pp
//	ppcoord -addr :8081 -firehose -seed 7 -apps 5000 -journal run.journal \
//	        -standby -primary http://coordinator:8080
//	ppstream -worker http://coordinator:8080,http://standby:8081 -workers 4
//
// The coordinator grants each app to exactly one worker at a time
// under a lease; a worker that dies mid-app simply stops renewing —
// its leases expire and the apps are reassigned to survivors. Every
// folded outcome is checkpointed to the journal first, so a killed
// coordinator re-invoked with the same -journal resumes bit-identically,
// exactly like a single-process ppstream run.
//
// -shards N hosts N artifact shards at /shard/<i>; workers read the
// shared library-policy and ESA-interpret caches through them, so a
// policy analyzed by one worker is free for every other. By default
// the shards live in memory; -shard-dir roots them on disk
// (longi.DirStore, temp+rename crash-safe), so a restarted or promoted
// coordinator keeps the warm caches.
//
// -standby runs the process as a failover follower over the shared
// -journal: it tails the journal, answers work endpoints with 503, and
// promotes itself to a full coordinator on POST /promote — or
// automatically when -primary is set and its /healthz stops answering.
// The source flags (-dir/-firehose/-seed/-apps) must match the
// primary's exactly; the journal replay decides what is left to lease.
//
// Exit codes: 0 clean, 1 on a run failure, 2 on a usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ppchecker/internal/dist"
	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/stream"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ppcoord: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address for the lease protocol")
		dir      = flag.String("dir", "", "serve an on-disk corpus directory (bundle layout; workers must see the same path)")
		firehose = flag.Bool("firehose", false, "serve the synthetic Play-store firehose")
		seed     = flag.Int64("seed", 1, "firehose generator seed")
		apps     = flag.Int64("apps", 0, "firehose cap (0 = endless)")

		journalPath = flag.String("journal", "", "durable checkpoint journal (reuse to resume a killed run)")
		fsyncEvery  = flag.Int("fsync-every", 0, "journal records per fsync batch (0 = 32)")

		leaseTTL       = flag.Duration("lease-ttl", 30*time.Second, "lease deadline before an app is reassigned (with renewing workers this bounds failure detection, not per-app latency)")
		maxOutstanding = flag.Int("max-outstanding", 64, "max concurrently leased apps (backpressure on the source)")
		shards         = flag.Int("shards", 2, "artifact shards hosted for the shared analysis caches (0 disables)")
		shardDir       = flag.String("shard-dir", "", "root the shards on disk (longi.DirStore) instead of memory, so restarts and failovers keep warm caches")

		standby       = flag.Bool("standby", false, "run as a failover follower: tail -journal, serve 503 until promoted (POST /promote or -primary death)")
		primary       = flag.String("primary", "", "standby: probe this coordinator URL and self-promote when it stops answering")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "standby: primary health-probe interval")
		probeFailures = flag.Int("probe-failures", 3, "standby: consecutive probe failures that trigger self-promotion")

		metricsDump = flag.Bool("metrics", false, "print the final metrics snapshot to stderr")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "keep serving 'run complete' this long after finishing, so polling workers exit cleanly instead of hitting a closed port")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*dir == "") == !*firehose {
		fmt.Fprintln(os.Stderr, "ppcoord: exactly one of -dir or -firehose is required")
		flag.Usage()
		return 2
	}

	observer := obs.New()

	// newSource builds the corpus source from the flags. The standby
	// path defers construction to promotion time, so sources that hold
	// position state (DirSource) always start fresh.
	var sourceName string
	newSource := func() (stream.Source, error) {
		if *dir != "" {
			return stream.NewDirSource(*dir)
		}
		return stream.NewFirehoseSource(*seed, *apps), nil
	}
	if *dir != "" {
		sourceName = "dir:" + *dir
	} else {
		sourceName = fmt.Sprintf("firehose:%d", *seed)
	}

	stores := make([]longi.Store, *shards)
	for i := range stores {
		if *shardDir != "" {
			ds, err := longi.NewDirStore(filepath.Join(*shardDir, fmt.Sprintf("shard-%d", i)))
			if err != nil {
				log.Print(err)
				return 1
			}
			stores[i] = ds
		} else {
			stores[i] = longi.NewMemStore(0)
		}
	}
	coordOpts := dist.CoordinatorOptions{
		MaxOutstanding: *maxOutstanding,
		LeaseTTL:       *leaseTTL,
		Observer:       observer,
		Shards:         stores,
	}

	// SIGTERM/SIGINT stops waiting; in-memory progress is abandoned but
	// everything folded so far is already in the journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	var wait func(context.Context) (stream.Stats, error)
	var snapshot func() dist.StatsResponse

	if *standby {
		if *journalPath == "" {
			fmt.Fprintln(os.Stderr, "ppcoord: -standby requires -journal (the primary's journal to tail)")
			flag.Usage()
			return 2
		}
		s, err := dist.NewStandby(dist.StandbyOptions{
			JournalPath:   *journalPath,
			SourceName:    sourceName,
			JournalOpts:   stream.JournalOptions{FsyncEvery: *fsyncEvery, Observer: observer},
			NewSource:     func() stream.Source { src, _ := newSource(); return src },
			Coordinator:   coordOpts,
			PrimaryURL:    *primary,
			ProbeInterval: *probeInterval,
			ProbeFailures: *probeFailures,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		defer s.Stop()
		handler = s.Handler()
		wait = s.Wait
		snapshot = func() dist.StatsResponse {
			if c := s.Coordinator(); c != nil {
				return c.StatsSnapshot()
			}
			return dist.StatsResponse{}
		}
		if *primary != "" {
			log.Printf("standby: tailing %s, probing %s every %s (%d failures promote)",
				*journalPath, *primary, *probeInterval, *probeFailures)
		} else {
			log.Printf("standby: tailing %s, waiting for POST /promote", *journalPath)
		}
	} else {
		src, err := newSource()
		if err != nil {
			log.Print(err)
			return 1
		}
		if ds, ok := src.(*stream.DirSource); ok {
			log.Printf("serving %d app bundles from %s", ds.Len(), *dir)
		} else {
			capDesc := "endless"
			if *apps > 0 {
				capDesc = fmt.Sprintf("%d apps", *apps)
			}
			log.Printf("serving the synthetic firehose (seed %d, %s)", *seed, capDesc)
		}

		var journal *stream.Journal
		var replay *stream.Replay
		if *journalPath != "" {
			journal, replay, err = stream.OpenJournal(*journalPath, sourceName,
				stream.JournalOptions{FsyncEvery: *fsyncEvery, Observer: observer})
			if err != nil {
				log.Print(err)
				return 1
			}
			defer journal.Close()
			if replay.Records > 0 {
				log.Printf("resuming: %d checkpointed apps recovered from %s (torn tail: %v)",
					replay.Records, *journalPath, replay.Truncated)
			}
		}
		coordOpts.Source = src
		coordOpts.Journal = journal
		coordOpts.Replay = replay
		c := dist.NewCoordinator(coordOpts)
		handler = c.Handler()
		wait = c.Wait
		snapshot = c.StatsSnapshot
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv := &http.Server{Handler: handler}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}()
	defer srv.Close()
	shardKind := "in-memory"
	if *shardDir != "" {
		shardKind = "durable (" + *shardDir + ")"
	}
	log.Printf("coordinating on %s (lease TTL %s, %d %s shards, max %d outstanding)",
		ln.Addr(), *leaseTTL, *shards, shardKind, *maxOutstanding)

	start := time.Now()
	stats, err := wait(ctx)
	elapsed := time.Since(start)
	if err != nil {
		log.Printf("run failed: %v", err)
		if stats.JournalErrors > 0 {
			log.Printf("WARNING: %d journal appends failed — completed apps may be missing "+
				"from the checkpoint log; a resume will re-analyze them", stats.JournalErrors)
		}
		return 1
	}

	snap := snapshot()
	fmt.Println(stats.Render())
	fmt.Printf("Coordinator: %d analyzed this run in %s, %d replayed from journal, %d re-analyzed\n",
		stats.Apps-stats.Replayed, elapsed.Round(time.Millisecond), stats.Replayed, stats.Reanalyzed)
	fmt.Printf("Coordinator: %d leases granted, %d renewed, %d expired (reassigned), %d duplicate reports\n",
		snap.Granted, snap.Renewals, snap.Expired, snap.Duplicates)
	if *journalPath != "" {
		fmt.Printf("Journal: %d records, %d fsyncs, %d append errors\n",
			stats.JournalRecords, stats.JournalFsyncs, stats.JournalErrors)
		if stats.JournalErrors > 0 {
			log.Printf("WARNING: %d journal appends failed — completed apps may be missing "+
				"from the checkpoint log; a resume will re-analyze them", stats.JournalErrors)
		}
	}
	if *metricsDump {
		fmt.Fprint(os.Stderr, observer.Snapshot().Render())
	}
	// Lame-duck: the latch is closed, so every remaining lease poll
	// gets 410 (run complete) rather than a dead socket.
	if *drainGrace > 0 {
		select {
		case <-time.After(*drainGrace):
		case <-ctx.Done():
		}
	}
	return 0
}
