// Command ppmeta drives the metamorphic correctness harness from the
// command line: deterministic invariance sweeps, replay of committed
// case files, and divergence minimization.
//
//	ppmeta sweep   -count 60 -stride 6 -step-seeds 1 -chain-len 3
//	ppmeta replay  testdata/metatest/*.json
//	ppmeta replay  -dir testdata/metatest
//	ppmeta shrink  -app 1 -chain "tag-churn:5,plant-negate-statement:2" -o repro.json
//	ppmeta transforms
//
// Everything is deterministic in (corpus seed, app index, chain):
// rerunning a command reproduces the same findings byte for byte.
//
// Exit codes: 0 success / invariant held, 1 divergence or expectation
// mismatch, 2 usage or runtime error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ppchecker/internal/metatest"
)

const (
	exitOK       = 0
	exitDiverged = 1
	exitError    = 2
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(exitError)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var code int
	switch cmd {
	case "sweep":
		code = runSweep(args)
	case "replay":
		code = runReplay(args)
	case "shrink":
		code = runShrink(args)
	case "transforms":
		code = runTransforms(args)
	default:
		fmt.Fprintf(os.Stderr, "ppmeta: unknown command %q\n", cmd)
		usage()
		code = exitError
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: ppmeta <command> [flags]

commands:
  sweep       run the invariance sweep over a synthetic corpus sample
  replay      replay committed case files and check their expectations
  shrink      minimize a divergent transform chain to a case file
  transforms  list the transform catalog

run "ppmeta <command> -h" for per-command flags
`)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "ppmeta: %v\n", err)
	return exitError
}

// corpusFlags are the coordinates every subcommand shares.
type corpusFlags struct {
	seed *int64
	apps *int
}

func addCorpusFlags(fs *flag.FlagSet) corpusFlags {
	return corpusFlags{
		seed: fs.Int64("seed", 11, "synthetic corpus generation seed"),
		apps: fs.Int("apps", 0, "corpus size (0 = synth.MinApps)"),
	}
}

func (c corpusFlags) harness() (*metatest.Harness, error) {
	return metatest.NewHarness(*c.seed, *c.apps)
}

func parseSeedList(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad step seed %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	corpus := addCorpusFlags(fs)
	var (
		count     = fs.Int("count", 60, "apps to sample")
		stride    = fs.Int("stride", 6, "sampling stride over the corpus")
		stepSeeds = fs.String("step-seeds", "1", "comma-separated per-step seeds")
		chainLen  = fs.Int("chain-len", 3, "length of the per-app composite chain (0 = none)")
		esaPairs  = fs.Int("esa-pairs", 0, "also run the ESA vec/map differential over this many phrase pairs")
		asJSON    = fs.Bool("json", false, "emit the sweep stats as JSON")
	)
	fs.Parse(args)
	seeds, err := parseSeedList(*stepSeeds)
	if err != nil {
		return fail(err)
	}
	h, err := corpus.harness()
	if err != nil {
		return fail(err)
	}
	cfg := metatest.SweepConfig{AppCount: *count, Stride: *stride, StepSeeds: seeds, ChainLen: *chainLen}
	stats, err := h.Sweep(cfg)
	if err != nil {
		return fail(err)
	}
	var esaDivs []metatest.Divergence
	if *esaPairs > 0 {
		esaDivs = h.ESACheck(cfg.AppIndices(h.Len()), 200, *esaPairs)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			*metatest.SweepStats
			ESADivergences []metatest.Divergence `json:"esa_divergences,omitempty"`
		}{stats, esaDivs})
	} else {
		fmt.Printf("sweep: %d apps x %d transforms, %d runs, %d applications, %d divergent\n",
			stats.Apps, stats.Transforms, stats.Runs, stats.Applied, len(stats.Divergent))
		for _, d := range stats.Divergent {
			fmt.Printf("  app %d (%s) chain %s [%s]: %v\n",
				d.AppIndex, d.AppName, metatest.FormatChain(d.Chain), d.Invariant, d.Divergences)
		}
		for _, d := range esaDivs {
			fmt.Printf("  esa: %s\n", d)
		}
	}
	if len(stats.Divergent) > 0 || len(esaDivs) > 0 {
		return exitDiverged
	}
	return exitOK
}

func runReplay(args []string) int {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dir := fs.String("dir", "", "replay every *.json case in this directory")
	fs.Parse(args)
	var cases []*metatest.Case
	if *dir != "" {
		cs, err := metatest.LoadCases(*dir)
		if err != nil {
			return fail(err)
		}
		cases = cs
	}
	for _, path := range fs.Args() {
		c, err := metatest.LoadCase(path)
		if err != nil {
			return fail(err)
		}
		cases = append(cases, c)
	}
	if len(cases) == 0 {
		return fail(fmt.Errorf("no cases: pass file paths or -dir"))
	}
	code := exitOK
	for _, c := range cases {
		res, matched, err := c.Run()
		if err != nil {
			return fail(fmt.Errorf("%s: %w", c.Path, err))
		}
		status := "ok"
		if !matched {
			status = "MISMATCH"
			code = exitDiverged
		}
		fmt.Printf("%-10s %s: app %d chain %s expect %s diverged=%v\n",
			status, c.Path, c.AppIndex, metatest.FormatChain(c.Chain), c.Expect, res.Diverged())
		if !matched {
			for _, d := range res.Divergences {
				fmt.Printf("           %s\n", d)
			}
		}
	}
	return code
}

func runShrink(args []string) int {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	corpus := addCorpusFlags(fs)
	var (
		app      = fs.Int("app", -1, "corpus app index the chain diverges on")
		chainStr = fs.String("chain", "", "transform chain, e.g. \"tag-churn:5,para-reorder:17\"")
		out      = fs.String("o", "", "write the minimized case to this JSON file (default stdout)")
		note     = fs.String("note", "", "note recorded in the case file")
	)
	fs.Parse(args)
	if *app < 0 || *chainStr == "" {
		return fail(fmt.Errorf("shrink needs -app and -chain"))
	}
	chain, err := metatest.ParseChain(*chainStr)
	if err != nil {
		return fail(err)
	}
	h, err := corpus.harness()
	if err != nil {
		return fail(err)
	}
	full, err := h.RunChain(*app, chain)
	if err != nil {
		return fail(err)
	}
	if !full.Diverged() {
		fmt.Fprintf(os.Stderr, "ppmeta: chain %s does not diverge on app %d; nothing to shrink\n",
			metatest.FormatChain(chain), *app)
		return exitDiverged
	}
	min, res, err := h.Shrink(*app, chain)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("shrunk %d -> %d steps: %s\n", len(chain), len(min), metatest.FormatChain(min))
	for _, d := range res.Divergences {
		fmt.Printf("  %s\n", d)
	}
	c := &metatest.Case{
		Version:    metatest.CaseVersion,
		Note:       *note,
		CorpusSeed: *corpus.seed,
		NumApps:    *corpus.apps,
		AppIndex:   *app,
		Chain:      min,
		Expect:     metatest.ExpectDiverge,
	}
	if *out != "" {
		if err := c.Write(*out); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		data, _ := json.MarshalIndent(c, "", "  ")
		fmt.Println(string(data))
	}
	return exitOK
}

func runTransforms(args []string) int {
	fs := flag.NewFlagSet("transforms", flag.ExitOnError)
	fs.Parse(args)
	fmt.Println("semantics-preserving transforms:")
	for _, tr := range metatest.All() {
		flags := ""
		if tr.NeedsSynonyms {
			flags = " (synonym-expanded checker)"
		}
		fmt.Printf("  %-18s %-16s %s%s\n", tr.Name, "["+tr.Invariant.String()+"]", tr.Doc, flags)
	}
	fmt.Println("planted (intentionally divergent) transforms:")
	for _, tr := range metatest.Planted() {
		fmt.Printf("  %-18s %-16s %s\n", tr.Name, "["+tr.Invariant.String()+"]", tr.Doc)
	}
	return exitOK
}
