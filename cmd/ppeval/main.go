// Command ppeval evaluates a corpus previously written to disk by
// cmd/ppgen: every app bundle is loaded, checked, compared against the
// stored ground truth, and the §V tables are printed.
//
//	ppeval -dir corpus
//	ppeval -dir corpus -robust -timeout 10s
//
// By default a damaged bundle aborts the evaluation. With -robust the
// fault-tolerant corpus runner is used instead: damaged or adversarial
// bundles degrade to partial reports, the healthy apps are evaluated
// normally, and the run statistics (checked / degraded / failed /
// skipped) are printed before the tables. -timeout bounds each app's
// analysis in robust mode. Exits 3 when a robust run degraded any app.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"ppchecker/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppeval: ")
	var (
		dir     = flag.String("dir", "", "corpus directory written by ppgen (required)")
		robust  = flag.Bool("robust", false, "tolerate damaged bundles (degrade instead of aborting)")
		timeout = flag.Duration("timeout", 0, "per-app analysis bound in robust mode (0 = no limit)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	var (
		res      *eval.CorpusResult
		stats    eval.RunStats
		err      error
		degraded bool
	)
	if *robust {
		opts := eval.DefaultRunOptions()
		opts.PerAppTimeout = *timeout
		// Interrupt cancels the run; apps not yet started are counted
		// as skipped and the run fails below rather than hanging.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		res, stats, err = eval.EvaluateCorpusDirRobust(ctx, *dir, opts)
		stop()
		if err != nil {
			log.Fatalf("run canceled: %v (%s)", err, stats.Render())
		}
		degraded = stats.Degraded > 0 || stats.Failed > 0 || stats.Skipped > 0
	} else {
		res, err = eval.EvaluateCorpusDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("evaluated %d apps from %s in %v\n",
		len(res.Reports), *dir, time.Since(start).Round(time.Millisecond))
	if *robust {
		fmt.Println(stats.Render())
	}
	fmt.Println()
	fmt.Println(eval.RenderTableIII(res.TableIII()))
	fmt.Println(eval.RenderFig13(res.Fig13()))
	fmt.Println(eval.RenderTableIV(res.ComputeTableIV()))
	fmt.Print(res.Summary().Render())
	if degraded {
		os.Exit(3)
	}
}
