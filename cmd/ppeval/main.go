// Command ppeval evaluates a corpus previously written to disk by
// cmd/ppgen: every app bundle is loaded, checked, compared against the
// stored ground truth, and the §V tables are printed.
//
//	ppeval -dir corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ppchecker/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppeval: ")
	dir := flag.String("dir", "", "corpus directory written by ppgen (required)")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	res, err := eval.EvaluateCorpusDir(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d apps from %s in %v\n\n",
		len(res.Reports), *dir, time.Since(start).Round(time.Millisecond))
	fmt.Println(eval.RenderTableIII(res.TableIII()))
	fmt.Println(eval.RenderFig13(res.Fig13()))
	fmt.Println(eval.RenderTableIV(res.ComputeTableIV()))
	fmt.Print(res.Summary().Render())
}
