// Command ppeval evaluates a corpus previously written to disk by
// cmd/ppgen: every app bundle is loaded, checked, compared against the
// stored ground truth, and the §V tables are printed.
//
//	ppeval -dir corpus
//	ppeval -dir corpus -robust -timeout 10s
//	ppeval -dir corpus -robust -metrics -trace trace.jsonl -pprof localhost:6060
//
// Damaged bundles always degrade their own report rather than aborting
// the run (the evaluator reads leniently and runs on the robust
// engine). With -robust the parallel fault-tolerant runner is used:
// per-app timeouts (-timeout), bounded retries, and graceful SIGINT
// cancellation, with the run statistics (checked / degraded / failed /
// skipped) printed before the tables. Exits 3 when a robust run
// degraded any app.
//
// -metrics prints the per-stage exposition (runs, errors, p50/p95/max
// latency, cache hit rate) after the run; -trace records every span as
// JSON Lines; -pprof serves net/http/pprof for profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
)

func main() {
	// Exit codes are computed inside run so deferred cleanup (the trace
	// sink flush in particular) happens before os.Exit.
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ppeval: ")
	var (
		dir     = flag.String("dir", "", "corpus directory written by ppgen (required)")
		robust  = flag.Bool("robust", false, "use the parallel fault-tolerant runner (timeouts, retries, SIGINT)")
		timeout = flag.Duration("timeout", 0, "per-app analysis bound in robust mode (0 = no limit)")
		metrics = flag.Bool("metrics", false, "instrument the run and print per-stage metrics")
		trace   = flag.String("trace", "", "write a JSONL span trace to this file (implies -metrics)")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		return 2
	}
	if *pprof != "" {
		addr, err := obs.ServePprof(*pprof)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		fmt.Printf("pprof: serving on http://%s/debug/pprof\n", addr)
	}
	var observer *obs.Observer
	if *metrics || *trace != "" {
		var oopts []obs.Option
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			sink := obs.NewJSONLSink(f)
			defer func() {
				if err := sink.Close(); err != nil {
					log.Fatalf("trace: %v", err)
				}
			}()
			oopts = append(oopts, obs.WithSink(sink))
		}
		observer = obs.New(oopts...)
	}
	start := time.Now()
	var (
		res      *eval.CorpusResult
		stats    eval.RunStats
		err      error
		degraded bool
	)
	if *robust {
		opts := eval.DefaultRunOptions()
		opts.PerAppTimeout = *timeout
		opts.Observer = observer
		// Interrupt cancels the run; apps not yet started are counted
		// as skipped and the run fails below rather than hanging.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		res, stats, err = eval.EvaluateCorpusDirRobust(ctx, *dir, opts)
		stop()
		if err != nil {
			log.Fatalf("run canceled: %v (%s)", err, stats.Render())
		}
		degraded = stats.Degraded > 0 || stats.Failed > 0 || stats.Skipped > 0
	} else {
		// Serial deterministic run on the robust engine; routing the
		// observer through RunOptions (rather than a checker option)
		// lets the runner fold the run-level cache counters into the
		// same exposition.
		res, _, err = eval.EvaluateCorpusDirRobust(context.Background(), *dir,
			eval.RunOptions{Workers: 1, Observer: observer})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("evaluated %d apps from %s in %v\n",
		len(res.Reports), *dir, time.Since(start).Round(time.Millisecond))
	if *robust {
		fmt.Println(stats.Render())
	}
	if observer != nil {
		fmt.Println()
		fmt.Println("Per-stage metrics:")
		fmt.Print(observer.Snapshot().Render())
	}
	fmt.Println()
	fmt.Println(eval.RenderTableIII(res.TableIII()))
	fmt.Println(eval.RenderFig13(res.Fig13()))
	fmt.Println(eval.RenderTableIV(res.ComputeTableIV()))
	fmt.Print(res.Summary().Render())
	if degraded {
		return 3
	}
	return 0
}
