// Command autoppg generates a privacy policy from an app package (the
// paper authors' companion system, reimplemented over this library):
//
//	autoppg -app corpus/apps/com.example.app            # uses the bundle's description
//	autoppg -apk app.apk -o policy.html
//
// The generated policy declares what the static analysis proves the
// app collects and retains, plus its bundled third-party libraries.
// Feeding it back through cmd/ppchecker yields no findings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ppchecker/internal/apk"
	"ppchecker/internal/autoppg"
	"ppchecker/internal/bundle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autoppg: ")
	var (
		appDir  = flag.String("app", "", "app bundle directory (policy regenerated from app.apk + description.txt)")
		apkPath = flag.String("apk", "", "bare APK file")
		out     = flag.String("o", "", "output file (default stdout)")
		noLibs  = flag.Bool("nolibs", false, "omit the third-party section")
	)
	flag.Parse()

	opts := autoppg.DefaultOptions()
	opts.IncludeLibs = !*noLibs
	var a *apk.APK
	switch {
	case *appDir != "":
		app, err := bundle.ReadApp(*appDir, "")
		if err != nil {
			log.Fatal(err)
		}
		a = app.APK
		opts.Description = app.Description
	case *apkPath != "":
		data, err := os.ReadFile(*apkPath)
		if err != nil {
			log.Fatal(err)
		}
		a, err = apk.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	policy, err := autoppg.Generate(a, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		fmt.Print(policy)
		return
	}
	if err := os.WriteFile(*out, []byte(policy), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s for %s\n", filepath.Clean(*out), a.Manifest.Package)
}
