// Command ppgen generates the synthetic evaluation corpus to a
// directory tree:
//
//	<out>/
//	  libs/<LibName>.html          third-party library policies
//	  apps/<pkg>/policy.html       app privacy policy
//	  apps/<pkg>/description.txt   Play Store description
//	  apps/<pkg>/app.apk           binary app package (SAPK container)
//	  apps/<pkg>/libs.txt          bundled library names, one per line
//	  truth.json                   ground-truth labels for evaluation
//
// The layout is what cmd/ppchecker consumes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ppchecker/internal/bundle"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppgen: ")
	var (
		out   = flag.String("out", "corpus", "output directory")
		n     = flag.Int("apps", synth.PaperNumApps, "number of apps to generate")
		seed  = flag.Int64("seed", synth.DefaultConfig().Seed, "generation seed")
		pprof = flag.String("pprof", "", "serve net/http/pprof on this address while generating")
	)
	flag.Parse()
	if *pprof != "" {
		addr, err := obs.ServePprof(*pprof)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		fmt.Printf("pprof: serving on http://%s/debug/pprof\n", addr)
	}
	start := time.Now()

	ds, err := synth.Generate(synth.Config{Seed: *seed, NumApps: *n})
	if err != nil {
		log.Fatal(err)
	}
	if err := bundle.WriteDataset(ds, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d apps and %d library policies to %s in %v\n",
		len(ds.Apps), len(ds.LibPolicies), *out, time.Since(start).Round(time.Millisecond))
}
