// Command benchcmp captures `go test -bench` output as JSON and gates
// a run against a stored baseline:
//
//	go test -bench . | benchcmp -capture BENCH_abc123.json
//	benchcmp -baseline testdata/bench_baseline.json -current BENCH_abc123.json
//	go test -bench . | benchcmp -capture out.json -baseline testdata/bench_baseline.json
//
// Cost metrics (ns/op, B/op, allocs/op) fail one-sided when the
// current run is more than -tolerance worse than baseline; custom
// metrics (experiment outcomes reported via b.ReportMetric) fail
// two-sided on any drift beyond the tolerance. Exits 1 when any
// metric regresses, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"ppchecker/internal/benchcmp"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	var (
		capture   = flag.String("capture", "", "write the parsed run to this JSON file")
		baseline  = flag.String("baseline", "", "compare against this stored baseline JSON")
		current   = flag.String("current", "", "load the current run from this JSON file instead of parsing stdin")
		tolerance = flag.Float64("tolerance", 0.20, "allowed relative drift before a metric fails")
	)
	flag.Parse()
	if *baseline == "" && *capture == "" {
		flag.Usage()
		return 2
	}

	var (
		cur *benchcmp.Suite
		err error
	)
	if *current != "" {
		cur, err = readSuite(*current)
	} else {
		cur, err = benchcmp.Parse(io.TeeReader(os.Stdin, os.Stderr))
	}
	if err != nil {
		log.Print(err)
		return 2
	}
	if len(cur.Results) == 0 {
		log.Print("no benchmark results in input")
		return 2
	}
	if *capture != "" {
		f, err := os.Create(*capture)
		if err != nil {
			log.Print(err)
			return 2
		}
		if err := cur.WriteJSON(f); err != nil {
			log.Print(err)
			return 2
		}
		if err := f.Close(); err != nil {
			log.Print(err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "benchcmp: captured %d benchmarks to %s\n", len(cur.Results), *capture)
	}
	if *baseline == "" {
		return 0
	}
	base, err := readSuite(*baseline)
	if err != nil {
		log.Print(err)
		return 2
	}
	deltas := benchcmp.Compare(base, cur, *tolerance)
	fmt.Print(benchcmp.Render(deltas))
	if regs := benchcmp.Regressions(deltas); len(regs) > 0 {
		fmt.Printf("%d metric(s) regressed beyond ±%.0f%%\n", len(regs), 100**tolerance)
		return 1
	}
	fmt.Println("no regressions")
	return 0
}

func readSuite(path string) (*benchcmp.Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchcmp.ReadJSON(f)
}
