// Command ppchecker analyzes one app bundle and reports problems in
// its privacy policy. The bundle layout matches cmd/ppgen's output:
//
//	ppchecker -app corpus/apps/com.example.app -libs corpus/libs
//
// The app directory must contain policy.html and app.apk;
// description.txt is optional, and libs.txt (optional) names the
// bundled libraries whose policies are read from the -libs directory.
// Damaged bundles degrade instead of aborting: an unreadable or
// corrupt file is reported as a degraded stage and the remaining
// analyses still run. -timeout bounds the whole analysis; on expiry
// the partial report produced so far is printed.
//
// Exit codes:
//
//	0  analysis completed cleanly, no problems found
//	1  analysis completed, at least one problem reported
//	2  usage error
//	3  analysis degraded (some stage failed or timed out); takes
//	   precedence over 1 because the findings may be incomplete
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"ppchecker"
	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppchecker: ")
	var (
		appDir   = flag.String("app", "", "app bundle directory (required)")
		libsDir  = flag.String("libs", "", "directory of third-party library policies")
		verbose  = flag.Bool("v", false, "also print the intermediate analyses")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		htmlPath = flag.String("html", "", "also write an HTML report to this file")
		timeout  = flag.Duration("timeout", 0, "bound the analysis (0 = no limit)")
	)
	flag.Parse()
	if *appDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	app, ferrs := bundle.ReadAppLenient(*appDir, *libsDir)
	rep, err := ppchecker.CheckSafe(ctx, app)
	if rep == nil {
		log.Fatal(err)
	}
	for _, fe := range ferrs {
		stage := core.StageRead
		if fe.File == bundle.FileAPK && !fe.Missing {
			stage = core.StageDecode
		}
		rep.AddDegraded(&core.StageError{Stage: stage, App: rep.App, Err: fe})
	}
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(rep.Summary())
		if *verbose {
			printDetails(rep)
		}
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteHTML(f, rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	switch {
	case rep.Partial:
		os.Exit(3)
	case rep.HasProblem():
		os.Exit(1)
	}
}

func printDetails(r *ppchecker.Report) {
	fmt.Println("--- policy analysis ---")
	fmt.Printf("collect:      %v\n", r.Policy.Collect)
	fmt.Printf("use:          %v\n", r.Policy.Use)
	fmt.Printf("retain:       %v\n", r.Policy.Retain)
	fmt.Printf("disclose:     %v\n", r.Policy.Disclose)
	fmt.Printf("not collect:  %v\n", r.Policy.NotCollect)
	fmt.Printf("not use:      %v\n", r.Policy.NotUse)
	fmt.Printf("not retain:   %v\n", r.Policy.NotRetain)
	fmt.Printf("not disclose: %v\n", r.Policy.NotDisclose)
	fmt.Printf("disclaimer:   %v\n", r.Policy.Disclaimer)
	if r.Desc != nil {
		fmt.Println("--- description analysis ---")
		fmt.Printf("permissions: %v\n", r.Desc.Permissions)
		fmt.Printf("information: %v\n", r.Desc.Infos)
	}
	if r.Static != nil {
		fmt.Println("--- static analysis ---")
		fmt.Printf("collected: %v\n", r.Static.CollectedInfo())
		fmt.Printf("retained:  %v\n", r.Static.RetainedInfo())
		fmt.Printf("lib code collects: %v\n", r.Static.LibCollectedInfo())
		for _, l := range r.Static.Leaks {
			fmt.Printf("leak: %s via %s\n", l.Info, l.Channel)
			for _, step := range l.Path {
				fmt.Printf("   %s\n", step)
			}
		}
	}
	if len(r.Libs) > 0 {
		fmt.Println("--- third-party libraries ---")
		for _, l := range r.Libs {
			fmt.Printf("%s (%s, prefix %s)\n", l.Name, l.Category, l.Prefix)
		}
	}
}
