// Command ppchecker analyzes one app bundle and reports problems in
// its privacy policy. The bundle layout matches cmd/ppgen's output:
//
//	ppchecker -app corpus/apps/com.example.app -libs corpus/libs
//
// The app directory must contain policy.html and app.apk;
// description.txt is optional, and libs.txt (optional) names the
// bundled libraries whose policies are read from the -libs directory.
// Damaged bundles degrade instead of aborting: an unreadable or
// corrupt file is reported as a degraded stage and the remaining
// analyses still run. -timeout bounds the whole analysis; on expiry
// the partial report produced so far is printed.
//
// Exit codes:
//
//	0  analysis completed cleanly, no problems found
//	1  analysis completed, at least one problem reported
//	2  usage error
//	3  analysis degraded (some stage failed or timed out); takes
//	   precedence over 1 because the findings may be incomplete
//
// Observability: -metrics prints the per-stage metrics table after the
// report, -trace records every pipeline span as JSON Lines, and
// -pprof serves net/http/pprof while the analysis runs. Stage timings
// are always recorded on the report itself (JSON `timings` section and
// the HTML timing table).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"ppchecker"
	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/obs"
	"ppchecker/internal/report"
)

func main() {
	// The trace sink (and any other deferred cleanup) must flush before
	// the process exits, so the exit code is computed inside run and
	// os.Exit is only called after run's defers have finished.
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ppchecker: ")
	var (
		appDir   = flag.String("app", "", "app bundle directory (required)")
		libsDir  = flag.String("libs", "", "directory of third-party library policies")
		verbose  = flag.Bool("v", false, "also print the intermediate analyses")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		htmlPath = flag.String("html", "", "also write an HTML report to this file")
		timeout  = flag.Duration("timeout", 0, "bound the analysis (0 = no limit)")
		metrics  = flag.Bool("metrics", false, "print per-stage metrics after the report")
		trace    = flag.String("trace", "", "write a JSONL span trace to this file (implies -metrics)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address")
	)
	flag.Parse()
	if *appDir == "" {
		flag.Usage()
		return 2
	}
	if *pprof != "" {
		addr, err := obs.ServePprof(*pprof)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof\n", addr)
	}
	var observer *ppchecker.Observer
	if *metrics || *trace != "" {
		var sink ppchecker.ObserverSink
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			jsink := ppchecker.NewJSONLTraceSink(f)
			defer func() {
				if err := jsink.Close(); err != nil {
					log.Fatalf("trace: %v", err)
				}
			}()
			sink = jsink
		}
		observer = ppchecker.NewObserver(sink)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	app, ferrs := bundle.ReadAppLenient(*appDir, *libsDir)
	esaBefore := ppchecker.AggregateESACacheStats()
	rep, err := ppchecker.NewChecker(ppchecker.WithObserver(observer)).CheckSafe(ctx, app)
	if rep == nil {
		log.Fatal(err)
	}
	for _, fe := range ferrs {
		stage := core.StageRead
		if fe.File == bundle.FileAPK && !fe.Missing {
			stage = core.StageDecode
		}
		rep.AddDegraded(&core.StageError{Stage: stage, App: rep.App, Err: fe})
	}
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(rep.Summary())
		if *verbose {
			printDetails(rep)
		}
	}
	if *metrics {
		core.RecordESACacheCounters(observer,
			ppchecker.AggregateESACacheStats().Sub(esaBefore))
		fmt.Println("--- per-stage metrics ---")
		fmt.Print(observer.Snapshot().Render())
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteHTML(f, rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	switch {
	case rep.Partial:
		return 3
	case rep.HasProblem():
		return 1
	}
	return 0
}

func printDetails(r *ppchecker.Report) {
	fmt.Println("--- policy analysis ---")
	fmt.Printf("collect:      %v\n", r.Policy.Collect)
	fmt.Printf("use:          %v\n", r.Policy.Use)
	fmt.Printf("retain:       %v\n", r.Policy.Retain)
	fmt.Printf("disclose:     %v\n", r.Policy.Disclose)
	fmt.Printf("not collect:  %v\n", r.Policy.NotCollect)
	fmt.Printf("not use:      %v\n", r.Policy.NotUse)
	fmt.Printf("not retain:   %v\n", r.Policy.NotRetain)
	fmt.Printf("not disclose: %v\n", r.Policy.NotDisclose)
	fmt.Printf("disclaimer:   %v\n", r.Policy.Disclaimer)
	if r.Desc != nil {
		fmt.Println("--- description analysis ---")
		fmt.Printf("permissions: %v\n", r.Desc.Permissions)
		fmt.Printf("information: %v\n", r.Desc.Infos)
	}
	if r.Static != nil {
		fmt.Println("--- static analysis ---")
		fmt.Printf("collected: %v\n", r.Static.CollectedInfo())
		fmt.Printf("retained:  %v\n", r.Static.RetainedInfo())
		fmt.Printf("lib code collects: %v\n", r.Static.LibCollectedInfo())
		for _, l := range r.Static.Leaks {
			fmt.Printf("leak: %s via %s\n", l.Info, l.Channel)
			for _, step := range l.Path {
				fmt.Printf("   %s\n", step)
			}
		}
	}
	if len(r.Libs) > 0 {
		fmt.Println("--- third-party libraries ---")
		for _, l := range r.Libs {
			fmt.Printf("%s (%s, prefix %s)\n", l.Name, l.Category, l.Prefix)
		}
	}
}
