// Command sdex assembles, disassembles, verifies, and inspects SDEX
// bytecode and SAPK packages — the developer tool for the analysis
// substrate.
//
//	sdex asm  prog.sdexasm -o classes.dex     # assemble text → binary
//	sdex dis  classes.dex                     # disassemble binary → text
//	sdex verify classes.dex                   # structural verification
//	sdex info app.apk                         # APK summary (unpacks if packed)
//	sdex dot  app.apk                         # APG method graph in Graphviz dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ppchecker/internal/apg"
	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/libdetect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdex: ")
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout / input-derived)")
	_ = fs.Parse(os.Args[3:])

	switch cmd {
	case "asm":
		text, err := os.ReadFile(path)
		check(err)
		d, err := dex.Assemble(string(text))
		check(err)
		check(dex.Verify(d))
		target := *out
		if target == "" {
			target = path + ".dex"
		}
		check(os.WriteFile(target, dex.Encode(d), 0o644))
		fmt.Printf("assembled %d classes (%d methods) to %s\n", len(d.Classes), d.MethodCount(), target)
	case "dis":
		d := loadDex(path)
		if *out == "" {
			fmt.Print(dex.Disassemble(d))
		} else {
			check(os.WriteFile(*out, []byte(dex.Disassemble(d)), 0o644))
		}
	case "verify":
		d := loadDex(path)
		check(dex.Verify(d))
		fmt.Printf("ok: %d classes, %d methods\n", len(d.Classes), d.MethodCount())
	case "info":
		a := loadAPK(path)
		fmt.Printf("package:     %s\n", a.Manifest.Package)
		fmt.Printf("packed:      %v\n", a.Packed)
		fmt.Printf("permissions: %d\n", len(a.Manifest.Permissions))
		for _, p := range a.Manifest.Permissions {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Printf("components:  %d\n", len(a.Manifest.Components()))
		for _, c := range a.Manifest.Components() {
			fmt.Printf("  %s %s\n", c.Kind, c.Name)
		}
		fmt.Printf("classes:     %d (%d methods)\n", len(a.Dex.Classes), a.Dex.MethodCount())
		if libs := libdetect.Detect(a.Dex); len(libs) > 0 {
			fmt.Printf("libraries:\n")
			for _, l := range libs {
				fmt.Printf("  %s (%s)\n", l.Name, l.Category)
			}
		}
	case "dot":
		a := loadAPK(path)
		p, err := apg.Build(a, apg.DefaultOptions())
		check(err)
		if *out == "" {
			check(p.WriteDot(os.Stdout))
		} else {
			f, err := os.Create(*out)
			check(err)
			check(p.WriteDot(f))
			check(f.Close())
		}
	default:
		usage()
	}
}

// loadDex reads either a bare SDEX binary or the dex inside an APK.
func loadDex(path string) *dex.Dex {
	data, err := os.ReadFile(path)
	check(err)
	if d, err := dex.Decode(data); err == nil {
		return d
	}
	a, err := apk.Decode(data)
	check(err)
	return a.Dex
}

func loadAPK(path string) *apk.APK {
	data, err := os.ReadFile(path)
	check(err)
	a, err := apk.Decode(data)
	check(err)
	return a
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdex <asm|dis|verify|info|dot> <file> [-o out]`)
	os.Exit(2)
}
