// Command ppstream runs the resilient streaming ingestion layer
// (internal/stream): app bundles flow from a producer — an on-disk
// corpus directory or the synthetic Play-store firehose — through a
// bounded backpressure queue into the robust per-app pipeline, with
// every completed app checkpointed to a durable journal.
//
//	ppstream -dir corpus/ -journal run.journal
//	ppstream -firehose -seed 7 -apps 5000 -journal run.journal
//	ppstream -firehose -duration 30s -faults -soak -min-rate 5
//	ppstream -worker http://coordinator:8080 -workers 4
//
// Worker mode (-worker) joins a ppcoord coordinator instead of owning
// a source: the process pulls work leases, analyzes each app with the
// same robust pipeline, and reports outcomes back. The coordinator
// owns the journal and the corpus stats; a killed worker costs only
// its outstanding leases, which expire and are reassigned.
//
// A killed run (even SIGKILL) resumes from its journal: re-invoking
// ppstream with the same -journal skips every checkpointed app and
// folds its outcome back in, finishing with stats identical to an
// uninterrupted run.
//
// On SIGTERM or SIGINT the stream drains gracefully: intake stops,
// in-flight apps finish and are checkpointed. A second signal abandons
// in-flight work (it is re-analyzed on resume).
//
// Soak mode (-soak) turns the run into a self-verifying harness: it
// samples the heap throughout, then asserts sustained throughput
// (-min-rate), bounded heap growth (-heap-factor), and — when a
// journal is in play — that no app was lost or journaled twice.
//
// Exit codes: 0 clean, 1 on a stream failure or a soak-assertion
// violation, 2 on a usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ppchecker/internal/dist"
	"ppchecker/internal/obs"
	"ppchecker/internal/stream"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ppstream: ")
	var (
		dir      = flag.String("dir", "", "stream an on-disk corpus directory (bundle layout)")
		firehose = flag.Bool("firehose", false, "stream the synthetic Play-store firehose")
		seed     = flag.Int64("seed", 1, "firehose generator seed")
		apps     = flag.Int64("apps", 0, "firehose cap (0 = endless; bound with -duration or a signal)")
		duration = flag.Duration("duration", 0, "drain gracefully after this long (0 = run to source end)")

		journalPath = flag.String("journal", "", "durable checkpoint journal (reuse to resume a killed run)")
		fsyncEvery  = flag.Int("fsync-every", 0, "journal records per fsync batch (0 = 32)")

		workers    = flag.Int("workers", 0, "analysis pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "producer→worker queue bound (0 = 2x workers)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-attempt analysis timeout (0 = no bound)")
		retries    = flag.Int("retries", 1, "extra attempts for a hard-failed analysis")
		backoff    = flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per retry)")
		backoffMax = flag.Duration("backoff-max", 0, "retry backoff cap (0 = 32x base)")
		jitter     = flag.Float64("jitter", 0.5, "retry backoff jitter fraction in [0,1]")
		threshold  = flag.Int("breaker-threshold", 8, "consecutive same-stage failures that trip the breaker (0 disables)")

		faults    = flag.Bool("faults", false, "inject the chaos fault mix (worker panics, producer stalls, slow I/O)")
		faultSeed = flag.Int64("fault-seed", 1, "chaos plan seed")

		soak         = flag.Bool("soak", false, "self-verifying soak mode: heap sampling + assertions")
		minRate      = flag.Float64("min-rate", 0, "soak: minimum sustained apps/sec (0 = no check)")
		heapFactor   = flag.Float64("heap-factor", 1.5, "soak: allowed end-run/mid-run heap mean ratio")
		heapInterval = flag.Duration("heap-interval", 250*time.Millisecond, "soak: heap sample interval")

		metricsDump = flag.Bool("metrics", false, "print the final metrics snapshot to stderr")
		trace       = flag.String("trace", "", "write a JSONL span trace to this file")

		worker      = flag.String("worker", "", "worker mode: pull leases from these comma-separated ppcoord URLs (primary first, standbys after)")
		workerName  = flag.String("worker-name", "", "worker mode: name reported in leases (default host:pid)")
		remoteCache = flag.Bool("remote-cache", true, "worker mode: read through the coordinator-hosted analysis caches")
		renew       = flag.Bool("renew", true, "worker mode: heartbeat held leases every TTL/3 so slow apps survive short lease TTLs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}
	if *worker == "" && (*dir == "") == !*firehose {
		fmt.Fprintln(os.Stderr, "ppstream: exactly one of -dir, -firehose or -worker is required")
		flag.Usage()
		return 2
	}
	if *worker != "" && (*dir != "" || *firehose) {
		fmt.Fprintln(os.Stderr, "ppstream: -worker owns no source; drop -dir/-firehose (the coordinator has them)")
		flag.Usage()
		return 2
	}

	var obsOpts []obs.Option
	var traceSink *obs.JSONLSink
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Print(err)
			return 1
		}
		traceSink = obs.NewJSONLSink(f)
		obsOpts = append(obsOpts, obs.WithSink(traceSink))
	}
	observer := obs.New(obsOpts...)

	if *worker != "" {
		return runWorker(observer, workerConfig{
			coordinators: strings.Split(*worker, ","),
			name:         *workerName,
			concurrency:  *workers,
			timeout:      *timeout,
			retries:      *retries,
			backoff:      *backoff,
			backoffMax:   *backoffMax,
			jitter:       *jitter,
			remoteCache:  *remoteCache,
			renew:        *renew,
			metricsDump:  *metricsDump,
		})
	}

	// Source.
	var src stream.Source
	var sourceName string
	if *dir != "" {
		ds, err := stream.NewDirSource(*dir)
		if err != nil {
			log.Print(err)
			return 1
		}
		src, sourceName = ds, "dir:"+*dir
		log.Printf("streaming %d app bundles from %s", ds.Len(), *dir)
	} else {
		src = stream.NewFirehoseSource(*seed, *apps)
		sourceName = fmt.Sprintf("firehose:%d", *seed)
		capDesc := "endless"
		if *apps > 0 {
			capDesc = fmt.Sprintf("%d apps", *apps)
		}
		log.Printf("streaming the synthetic firehose (seed %d, %s)", *seed, capDesc)
	}
	if *faults {
		plan := stream.DefaultFaultPlan(*faultSeed)
		src = stream.NewChaosSource(src, plan)
		log.Printf("chaos on: panic every %d, stall every %d, slow every %d",
			plan.PanicEvery, plan.StallEvery, plan.SlowEvery)
	}

	// Journal + resume.
	var journal *stream.Journal
	var replay *stream.Replay
	if *journalPath != "" {
		var err error
		journal, replay, err = stream.OpenJournal(*journalPath, sourceName,
			stream.JournalOptions{FsyncEvery: *fsyncEvery, Observer: observer})
		if err != nil {
			log.Print(err)
			return 1
		}
		defer journal.Close()
		if replay.Records > 0 {
			log.Printf("resuming: %d checkpointed apps recovered from %s (torn tail: %v)",
				replay.Records, *journalPath, replay.Truncated)
		}
	}

	// Shutdown: first SIGTERM/SIGINT (or -duration expiring) drains,
	// a second signal cancels.
	ctx, sigDrain, stopSignals := stream.SignalDrain(context.Background())
	defer stopSignals()
	drain := make(chan struct{})
	go func() {
		var clock <-chan time.Time
		if *duration > 0 {
			t := time.NewTimer(*duration)
			defer t.Stop()
			clock = t.C
		}
		select {
		case <-sigDrain:
			log.Print("draining (second signal abandons in-flight work)...")
		case <-clock:
			log.Printf("duration %s reached, draining...", *duration)
		case <-ctx.Done():
		}
		close(drain)
	}()

	var sampler *stream.HeapSampler
	if *soak {
		sampler = stream.StartHeapSampler(observer, *heapInterval)
	}

	start := time.Now()
	stats, err := stream.Run(ctx, src, stream.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		PerAppTimeout:   *timeout,
		MaxRetries:      *retries,
		RetryBackoff:    *backoff,
		RetryBackoffMax: *backoffMax,
		RetryJitter:     *jitter,
		Observer:        observer,
		Journal:         journal,
		Replay:          replay,
		Breaker:         stream.NewBreaker(stream.BreakerConfig{Threshold: *threshold}),
		Drain:           drain,
	})
	elapsed := time.Since(start)
	if sampler != nil {
		sampler.Stop()
	}
	if err != nil {
		log.Printf("stream failed: %v", err)
		if stats.JournalErrors > 0 {
			log.Printf("WARNING: %d journal appends failed — completed apps may be missing "+
				"from the checkpoint log; a resume will re-analyze them", stats.JournalErrors)
		}
		return 1
	}

	completed := stats.Apps - stats.Replayed - stats.Skipped
	rate := float64(completed) / elapsed.Seconds()
	fmt.Println(stats.Render())
	fmt.Printf("Stream: %d analyzed this run in %s (%.1f apps/sec), %d replayed from journal, %d re-analyzed\n",
		completed, elapsed.Round(time.Millisecond), rate, stats.Replayed, stats.Reanalyzed)
	fmt.Printf("Stream: queue high-water %d, %d backpressure stalls, %d breaker trips, %d quarantined, %d retry exhaustions\n",
		stats.QueueHighWater, stats.BackpressureStalls, stats.BreakerTrips,
		stats.Quarantined, stats.RetryExhaustions)
	if journal != nil {
		fmt.Printf("Journal: %d records, %d fsyncs, %d append errors\n",
			stats.JournalRecords, stats.JournalFsyncs, stats.JournalErrors)
		if stats.JournalErrors > 0 {
			log.Printf("WARNING: %d journal appends failed — completed apps may be missing "+
				"from the checkpoint log; a resume will re-analyze them", stats.JournalErrors)
		}
	}
	if *metricsDump {
		fmt.Fprint(os.Stderr, observer.Snapshot().Render())
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			log.Printf("trace: %v", err)
			return 1
		}
	}

	if *soak {
		return soakVerdict(stats, sampler, rate, *minRate, *heapFactor, *journalPath, sourceName)
	}
	return 0
}

// workerConfig carries the worker-mode flag subset.
type workerConfig struct {
	coordinators []string
	name         string
	concurrency  int
	timeout      time.Duration
	retries      int
	backoff      time.Duration
	backoffMax   time.Duration
	jitter       float64
	remoteCache  bool
	renew        bool
	metricsDump  bool
}

// runWorker joins a ppcoord coordinator and pulls leases until the run
// completes or a signal stops the process. On SIGTERM/SIGINT in-flight
// apps are abandoned and reported as skipped — the coordinator requeues
// them for the surviving workers.
func runWorker(observer *obs.Observer, cfg workerConfig) int {
	if cfg.name == "" {
		host, _ := os.Hostname()
		cfg.name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.concurrency <= 0 {
		cfg.concurrency = runtime.GOMAXPROCS(0)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("worker %s: joining %s (%d concurrent analyses, renew=%v)",
		cfg.name, strings.Join(cfg.coordinators, ","), cfg.concurrency, cfg.renew)
	start := time.Now()
	ws, err := dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator:     cfg.coordinators[0],
		Coordinators:    cfg.coordinators,
		Name:            cfg.name,
		Concurrency:     cfg.concurrency,
		RenewLeases:     cfg.renew,
		PerAppTimeout:   cfg.timeout,
		MaxRetries:      cfg.retries,
		RetryBackoff:    cfg.backoff,
		RetryBackoffMax: cfg.backoffMax,
		RetryJitter:     cfg.jitter,
		Observer:        observer,
		UseRemoteCache:  cfg.remoteCache,
	})
	elapsed := time.Since(start)
	fmt.Printf("Worker: %d leased, %d folded, %d duplicates, %d report errors in %s\n",
		ws.Leased, ws.Reported, ws.Duplicates, ws.ReportErrors, elapsed.Round(time.Millisecond))
	if cfg.renew {
		fmt.Printf("Worker: %d lease renewals, %d leases lost mid-app\n", ws.Renewals, ws.RenewalsLost)
	}
	if cfg.remoteCache {
		fmt.Printf("Worker: remote analysis cache %d hits, %d failures\n", ws.RemoteHits, ws.RemoteFails)
	}
	if cfg.metricsDump {
		fmt.Fprint(os.Stderr, observer.Snapshot().Render())
	}
	if err != nil {
		log.Printf("worker failed: %v", err)
		return 1
	}
	return 0
}

// soakVerdict applies the soak acceptance checks and reports each one.
func soakVerdict(stats stream.Stats, sampler *stream.HeapSampler,
	rate, minRate, heapFactor float64, journalPath, sourceName string) int {
	failed := 0
	check := func(name string, err error) {
		if err != nil {
			log.Printf("soak FAIL %s: %v", name, err)
			failed++
			return
		}
		log.Printf("soak ok   %s", name)
	}

	if minRate > 0 {
		var err error
		if rate < minRate {
			err = fmt.Errorf("%.1f apps/sec, need >= %.1f", rate, minRate)
		}
		check("throughput", err)
	}
	check("bounded heap", sampler.BoundedGrowth(heapFactor))
	if journalPath != "" {
		// Replay the closed journal and require it to account for every
		// non-skipped app exactly once — zero lost, zero duplicated.
		_, replay, err := stream.OpenJournal(journalPath, sourceName, stream.JournalOptions{})
		switch {
		case err != nil:
			check("journal accounting", err)
		case replay.Duplicates != 0:
			check("journal accounting", fmt.Errorf("%d duplicate records", replay.Duplicates))
		case replay.Records != stats.Apps-stats.Skipped:
			check("journal accounting", fmt.Errorf("journal has %d records, run completed %d apps",
				replay.Records, stats.Apps-stats.Skipped))
		default:
			check("journal accounting", nil)
		}
	}
	if failed > 0 {
		log.Printf("soak verdict: %d check(s) failed", failed)
		return 1
	}
	log.Print("soak verdict: all checks passed")
	return 0
}
