// Command pplongi runs the incremental longitudinal compliance engine
// (internal/longi) over a seeded versioned corpus: every app is a
// release chain whose policy, description and bytecode are versioned
// independently, every pipeline stage is content-addressed into a
// durable artifact store, and consecutive versions are diffed into
// drift findings ("v7 started reading contacts but the policy never
// changed", "policy weakened disclosure between v3 and v4").
//
//	pplongi -seed 42 -apps 20 -versions 5 -store artifacts/
//	pplongi -seed 42 -apps 20 -versions 5 -store artifacts/   # delta re-run
//	pplongi -seed 42 -apps 20 -versions 5 -store artifacts/ -verify
//	pplongi -seed 7 -apps 3 -json histories.json -html report.html
//
// Re-running against the same -store recomputes only stages whose
// inputs changed — the second invocation above is nearly all cache
// hits. -verify additionally runs a cold in-memory pass and
// byte-compares every report, drift finding and stat against the
// store-backed run, failing loudly on any divergence.
//
// Exit codes: 0 clean, 1 on a run failure or -verify divergence, 2 on
// a usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"ppchecker/internal/longi"
	"ppchecker/internal/synth"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("pplongi: ")
	var (
		seed     = flag.Int64("seed", 1, "versioned-corpus generator seed")
		apps     = flag.Int("apps", 20, "number of app release chains")
		versions = flag.Int("versions", 5, "versions per app")

		storeDir = flag.String("store", "", "durable artifact store directory (reuse for delta runs; empty = in-memory)")

		workers = flag.Int("workers", 0, "analysis pool size (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-version analysis timeout (0 = no bound)")
		retries = flag.Int("retries", 1, "extra attempts for a hard-failed version")

		jsonPath = flag.String("json", "", "write all history documents to this JSON file")
		htmlPath = flag.String("html", "", "write the first drifting history as an HTML page to this file")
		verify   = flag.Bool("verify", false, "differential self-check: compare against a cold in-memory run")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}
	if *apps <= 0 || *versions <= 0 {
		fmt.Fprintln(os.Stderr, "pplongi: -apps and -versions must be positive")
		return 2
	}

	corpus, err := synth.GenerateVersioned(synth.VersionedConfig{
		Seed: *seed, Apps: *apps, Versions: *versions,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("generated %d app chains x %d versions (seed %d)", *apps, *versions, *seed)

	var store longi.Store
	if *storeDir != "" {
		ds, err := longi.NewDirStore(*storeDir)
		if err != nil {
			log.Print(err)
			return 1
		}
		store = ds
	} else {
		store = longi.NewMemStore(0)
	}

	opts := longi.RunOptions{
		Workers:       *workers,
		PerAppTimeout: *timeout,
		MaxRetries:    *retries,
	}
	eng := longi.NewEngine(store, longi.Config{})
	start := time.Now()
	res, err := longi.RunCorpus(context.Background(), eng, corpus, opts)
	if err != nil {
		log.Printf("run failed: %v", err)
		return 1
	}
	elapsed := time.Since(start)

	s, c := res.Stats, res.Cache
	fmt.Printf("Run: %d apps, %d versions in %s — %d checked, %d degraded, %d failed, %d retried\n",
		s.Apps, s.Versions, elapsed.Round(time.Millisecond),
		s.Checked, s.Degraded, s.Failed, s.Retried)
	fmt.Printf("Store: %d hits, %d misses, %d puts (%.0f%% hit rate)",
		c.Hits, c.Misses, c.Puts, 100*c.HitRate())
	if c.StoreErrors > 0 {
		fmt.Printf(", %d store errors", c.StoreErrors)
	}
	fmt.Println()
	fmt.Printf("Drift: %d finding(s)\n", s.Drift)
	var classes []string
	for cl := range s.DriftByClass {
		classes = append(classes, string(cl))
	}
	sort.Strings(classes)
	for _, cl := range classes {
		fmt.Printf("  %-22s %d\n", cl, s.DriftByClass[longi.DriftClass(cl)])
	}

	if *jsonPath != "" {
		if err := writeHistoriesJSON(*jsonPath, res); err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("wrote %d history documents to %s", len(res.Histories), *jsonPath)
	}
	if *htmlPath != "" {
		if err := writeDriftHTML(*htmlPath, res); err != nil {
			log.Print(err)
			return 1
		}
	}

	if *verify {
		coldEng := longi.NewEngine(longi.NewMemStore(0), longi.Config{})
		cold, err := longi.RunCorpus(context.Background(), coldEng, corpus, opts)
		if err != nil {
			log.Printf("verify run failed: %v", err)
			return 1
		}
		if diffs := longi.CompareRuns(res, cold); len(diffs) > 0 {
			log.Printf("verify FAIL: store-backed run diverges from cold run in %d place(s)", len(diffs))
			for i, d := range diffs {
				if i == 5 {
					log.Printf("  ... and %d more", len(diffs)-5)
					break
				}
				log.Printf("  %s", d)
			}
			return 1
		}
		log.Print("verify ok: store-backed run is bit-identical to a cold run")
	}
	return 0
}

// writeHistoriesJSON emits every history document, one JSON object per
// line-separated entry in a top-level array.
func writeHistoriesJSON(path string, res *longi.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("[\n"); err != nil {
		return err
	}
	for i := range res.Histories {
		if i > 0 {
			if _, err := f.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := res.Histories[i].WriteJSON(f); err != nil {
			return err
		}
	}
	if _, err := f.WriteString("]\n"); err != nil {
		return err
	}
	return f.Close()
}

// writeDriftHTML renders the first history carrying drift (or the
// first history at all) as a standalone page.
func writeDriftHTML(path string, res *longi.Result) error {
	if len(res.Histories) == 0 {
		return fmt.Errorf("no histories to render")
	}
	pick := &res.Histories[0]
	for i := range res.Histories {
		if len(res.Histories[i].Drift) > 0 {
			pick = &res.Histories[i]
			break
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pick.WriteHTML(f); err != nil {
		return err
	}
	log.Printf("wrote %s history page to %s (%d drift findings)", pick.Pkg, path, len(pick.Drift))
	return f.Close()
}
