// Command ppserve runs the long-lived privacy-policy analysis
// service: the full PPChecker pipeline behind an HTTP API, holding
// its library-policy analysis cache and the ESA interpret memo warm
// across every request for the lifetime of the process.
//
//	ppserve -addr :8080 -workers 8 -queue 64 -timeout 30s
//
// Endpoints (see internal/serve):
//
//	POST /check          {"name":..., "policy_html":..., ...} → JSON report
//	POST /check-batch    {"apps":[...]}                       → per-app reports
//	POST /check-history  {"name":..., "versions":[...]}       → per-version
//	                     reports + cross-version drift (needs -longi)
//	GET  /healthz        JSON health state machine (ok/degraded/draining
//	                     with queue + breaker state; draining is 503)
//	GET  /metrics        per-stage latency table + cache gauges
//	GET  /debug/pprof    net/http/pprof
//
// On SIGTERM or SIGINT the server drains gracefully: admission stops,
// every in-flight request completes and receives its response, the
// workers stop, and the final metrics snapshot is printed to stderr.
// A second signal — or the -drain-timeout bound expiring — abandons
// the drain.
//
// Exit codes: 0 after a clean drain, 1 on a startup or drain failure,
// 2 on a usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("ppserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "checker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request analysis timeout (0 = no bound)")
		retries      = flag.Int("retries", 1, "extra attempts for a hard-failed analysis")
		backoff      = flag.Duration("backoff", 50*time.Millisecond, "pause before each retry")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain")
		trace        = flag.String("trace", "", "write a JSONL span trace to this file")
		metricsDump  = flag.Bool("metrics", true, "print the final metrics snapshot on shutdown")
		longiFlag    = flag.Bool("longi", false, "enable POST /check-history backed by a server-lifetime artifact store")
		longiCache   = flag.Int("longi-cache", 0, "artifact-store entry bound for -longi (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	var obsOpts []obs.Option
	var traceSink *obs.JSONLSink
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Print(err)
			return 1
		}
		traceSink = obs.NewJSONLSink(f)
		obsOpts = append(obsOpts, obs.WithSink(traceSink))
	}

	srvOpts := serve.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		PerAppTimeout: *timeout,
		MaxRetries:    *retries,
		RetryBackoff:  *backoff,
		Observer:      obs.New(obsOpts...),
	}
	if *longiFlag {
		srvOpts.Longi = &longi.Config{}
		srvOpts.LongiCacheEntries = *longiCache
	}
	srv := serve.New(srvOpts)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv.Start(ln)
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	nQueue := *queue
	if nQueue <= 0 {
		nQueue = 4 * nWorkers
	}
	log.Printf("serving on http://%s (workers=%d queue=%d timeout=%s)",
		srv.Addr(), nWorkers, nQueue, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills the process the default way

	log.Printf("draining (bound %s)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
		return 1
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			log.Printf("trace: %v", err)
			return 1
		}
	}
	if *metricsDump {
		fmt.Fprint(os.Stderr, srv.Metrics().Render())
	}
	log.Print("drained cleanly")
	return 0
}
