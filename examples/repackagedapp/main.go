// Repackaged app: the paper's intro notes that "the unrevealed
// behaviors in an incomplete privacy policy may come from the
// malicious component of a repackaged app". This example builds a
// benign note-taking app with an accurate policy, then the repackaged
// variant: an attacker's class injected under the app's own package
// that harvests the contacts and ships them over the network. The
// original policy — untouched by the attacker — is now incomplete, and
// PPChecker exposes the injected behaviour with its taint path.
package main

import (
	"fmt"
	"log"

	"ppchecker"
)

const policy = `<html><body><h1>Privacy Policy</h1>
<p>We may collect your email address when you create an account.</p>
<p>Notes are stored only on your device.</p>
</body></html>`

const benignAsm = `
.class Lcom/tidy/notes/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-static {v1}, Landroid/util/Patterns;->matchEmail(Ljava/lang/CharSequence;)Ljava/lang/String; -> v2
    return-void
.end method
.end class
`

// The repackaged variant appends the attacker's component and starts
// it from onCreate, exactly how piggybacked apps graft payloads.
const repackagedAsm = benignAsm + `
.class Lcom/tidy/notes/SyncHelper; extends Ljava/lang/Thread;
.method run()V regs=10
    sget v1, Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;
    invoke-virtual {v0, v1}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v2
    invoke-virtual {v3, v2}, Ljava/io/DataOutputStream;->writeBytes(Ljava/lang/String;)V
    return-void
.end method
.end class
`

func main() {
	fmt.Println("== original app ==")
	check(buildApp(benignAsm, nil))
	fmt.Println("\n== repackaged app (injected contacts exfiltration) ==")
	report := check(buildApp(repackagedAsm, []string{"android.permission.READ_CONTACTS"}))
	for _, leak := range report.Static.Leaks {
		fmt.Printf("\ninjected flow: %s via %s\n", leak.Info, leak.Channel)
		for _, step := range leak.Path {
			fmt.Printf("  %s\n", step)
		}
	}
}

func buildApp(asm string, extraPerms []string) *ppchecker.App {
	dex, err := ppchecker.AssembleDex(asm)
	if err != nil {
		log.Fatal(err)
	}
	perms := []ppchecker.Permission{{Name: "android.permission.GET_ACCOUNTS"}}
	for _, p := range extraPerms {
		perms = append(perms, ppchecker.Permission{Name: p})
	}
	apk := &ppchecker.APK{
		Manifest: &ppchecker.Manifest{
			Package:     "com.tidy.notes",
			Permissions: perms,
			Application: ppchecker.Application{
				Activities: []ppchecker.Component{{Name: "com.tidy.notes.MainActivity"}},
			},
		},
		Dex: dex,
	}
	// The repackaged variant wires the payload into onCreate, the way
	// piggybacking tools patch the entry method.
	if len(extraPerms) > 0 {
		main := apk.Dex.Class("Lcom/tidy/notes/MainActivity;")
		m := main.Method("onCreate", "")
		inject, err := ppchecker.AssembleDex(`
.class Ltmp/T;
.method t()V regs=8
    new-instance v3, Lcom/tidy/notes/SyncHelper;
    invoke-virtual {v3}, Lcom/tidy/notes/SyncHelper;->start()V
    return-void
.end method
.end class
`)
		if err != nil {
			log.Fatal(err)
		}
		injected := inject.Classes[0].Methods[0].Code[:2]
		m.Code = append(injected, m.Code...)
	}
	return &ppchecker.App{
		Name:        "com.tidy.notes",
		PolicyHTML:  policy,
		Description: "A tidy little notes app. Sign in with your account to sync notes.",
		APK:         apk,
	}
}

func check(app *ppchecker.App) *ppchecker.Report {
	report := ppchecker.Check(app)
	fmt.Print(report.Summary())
	return report
}
