// Quickstart: build an app bundle in memory, run PPChecker over it,
// and print the report. The app's policy covers the device identifier
// it logs but omits the location collection its code performs, so the
// report flags an incomplete policy.
package main

import (
	"fmt"
	"log"

	"ppchecker"
)

func main() {
	// The app's bytecode, in SDEX assembly: onCreate reads the GPS
	// coordinates and the device id, and writes the device id to the
	// log (a retention sink).
	dex, err := ppchecker.AssembleDex(`
.class Lcom/example/quickstart/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v2
    invoke-virtual {v0}, Landroid/location/Location;->getLongitude()D -> v3
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v4
    invoke-static {v1, v4}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}

	apk := &ppchecker.APK{
		Manifest: &ppchecker.Manifest{
			Package: "com.example.quickstart",
			Permissions: []ppchecker.Permission{
				{Name: "android.permission.ACCESS_FINE_LOCATION"},
				{Name: "android.permission.READ_PHONE_STATE"},
			},
			Application: ppchecker.Application{
				Activities: []ppchecker.Component{
					{Name: "com.example.quickstart.MainActivity", Exported: true},
				},
			},
		},
		Dex: dex,
	}

	app := &ppchecker.App{
		Name: "com.example.quickstart",
		PolicyHTML: `<html><body>
<h1>Privacy Policy</h1>
<p>We may collect your device identifier to provide the service.</p>
<p>We will not share your personal information with third parties.</p>
</body></html>`,
		Description: "Track your runs with precise GPS navigation and turn-by-turn directions.",
		APK:         apk,
	}

	report := ppchecker.Check(app)
	fmt.Print(report.Summary())
	if !report.HasProblem() {
		fmt.Println("policy looks trustworthy")
	}
}
