// Incorrect policy: the paper's §II-B / §V-D com.easyxapp.secret case
// study. The policy declares "we will not store your real phone
// number, name and contacts", but the bytecode queries the contacts
// content provider and writes the result to the log — a retention the
// taint analysis proves with a source→sink path (Algorithm 4).
package main

import (
	"fmt"
	"log"

	"ppchecker"
)

func main() {
	dex, err := ppchecker.AssembleDex(`
.class Lcom/easyxapp/secret/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    sget v1, Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;
    invoke-virtual {v0, v1}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v2
    invoke-virtual {v0, v2}, Lcom/easyxapp/secret/MainActivity;->dump(Landroid/database/Cursor;)V
    return-void
.end method
.method dump(Landroid/database/Cursor;)V regs=8
    invoke-static {v2, v1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	app := &ppchecker.App{
		Name: "com.easyxapp.secret",
		PolicyHTML: `<html><body><h1>Privacy Policy</h1>
<p>Your anonymity matters to us.</p>
<p>We will not store your real phone number, name and contacts.</p>
</body></html>`,
		Description: "Share secrets anonymously with people around the world.",
		APK: &ppchecker.APK{
			Manifest: &ppchecker.Manifest{
				Package: "com.easyxapp.secret",
				Permissions: []ppchecker.Permission{
					{Name: "android.permission.READ_CONTACTS"},
				},
				Application: ppchecker.Application{
					Activities: []ppchecker.Component{
						{Name: "com.easyxapp.secret.MainActivity", Exported: true},
					},
				},
			},
			Dex: dex,
		},
	}

	report := ppchecker.Check(app)
	fmt.Print(report.Summary())

	// Show the source→sink path that contradicts the policy.
	for _, leak := range report.Static.Leaks {
		fmt.Printf("\ntaint path proving retention of %q via %s:\n", leak.Info, leak.Channel)
		for _, step := range leak.Path {
			fmt.Printf("  %s\n", step)
		}
	}
}
