// Inconsistent policy: the paper's Fig. 3 com.imangi.templerun2 case
// study. The app's policy claims it does not collect location, but it
// bundles the Unity3d engine whose own policy declares it receives
// location information — an inconsistency between the app's and the
// library's policies (Algorithm 5). The second run shows the §IV-C
// disclaimer rule suppressing the finding.
package main

import (
	"fmt"
	"log"

	"ppchecker"
)

const unityPolicy = `<html><body><h1>Unity Privacy Policy</h1>
<p>We may receive your location information to improve our services.</p>
<p>We may collect your device identifier.</p>
</body></html>`

func main() {
	dex, err := ppchecker.AssembleDex(`
.class Lcom/imangi/templerun2/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    return-void
.end method
.end class
.class Lcom/unity3d/player/UnityPlayer;
.method init()V regs=4
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	build := func(policy string) *ppchecker.App {
		return &ppchecker.App{
			Name:        "com.imangi.templerun2",
			PolicyHTML:  policy,
			Description: "Run, jump and slide through ancient temples!",
			APK: &ppchecker.APK{
				Manifest: &ppchecker.Manifest{
					Package: "com.imangi.templerun2",
					Application: ppchecker.Application{
						Activities: []ppchecker.Component{
							{Name: "com.imangi.templerun2.MainActivity", Exported: true},
						},
					},
				},
				Dex: dex,
			},
			LibPolicies: map[string]string{"Unity3d": unityPolicy},
		}
	}

	fmt.Println("== without a disclaimer ==")
	app := build(`<html><body><h1>Privacy Policy</h1>
<p>We will not collect your location information.</p>
</body></html>`)
	fmt.Println("bundled libraries:", libNames(app))
	fmt.Print(ppchecker.Check(app).Summary())

	fmt.Println("\n== with a third-party disclaimer ==")
	app = build(`<html><body><h1>Privacy Policy</h1>
<p>We will not collect your location information.</p>
<p>We encourage you to review the privacy practices of these third
parties before disclosing any personally identifiable information, as
we are not responsible for the privacy practices of those sites.</p>
</body></html>`)
	fmt.Print(ppchecker.Check(app).Summary())
}

func libNames(app *ppchecker.App) []string {
	var names []string
	for _, l := range ppchecker.DetectLibraries(app.APK.Dex) {
		names = append(names, l.Name)
	}
	return names
}
