// Incomplete policy: the paper's §II-B com.dooing.dooing case study.
// The Play Store description advertises "location aware tasks" and the
// class com.dooing.dooing.ee calls getLatitude()/getLongitude(), but
// the privacy policy never mentions location. PPChecker must flag the
// policy as incomplete through BOTH evidence streams (Algorithms 1
// and 2).
package main

import (
	"fmt"
	"log"

	"ppchecker"
)

func main() {
	dex, err := ppchecker.AssembleDex(`
.class Lcom/dooing/dooing/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Lcom/dooing/dooing/ee;->locate()V
    return-void
.end method
.end class
.class Lcom/dooing/dooing/ee;
.method locate()V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-virtual {v0}, Landroid/location/Location;->getLongitude()D -> v2
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	app := &ppchecker.App{
		Name: "com.dooing.dooing",
		PolicyHTML: `<html><body><h1>Privacy Policy</h1>
<p>We may collect your email address when you create an account.</p>
<p>We will use your name to personalize your task lists.</p>
<p>We work hard to protect the security of your data.</p>
</body></html>`,
		Description: "Dooing is a simple task manager for teams.\n" +
			"Location aware tasks will help you to utilize your field force in optimum way.",
		APK: &ppchecker.APK{
			Manifest: &ppchecker.Manifest{
				Package: "com.dooing.dooing",
				Permissions: []ppchecker.Permission{
					{Name: "android.permission.ACCESS_FINE_LOCATION"},
				},
				Application: ppchecker.Application{
					Activities: []ppchecker.Component{
						{Name: "com.dooing.dooing.MainActivity", Exported: true},
					},
				},
			},
			Dex: dex,
		},
	}

	report := ppchecker.Check(app)
	fmt.Print(report.Summary())

	// The wait-where-did-that-come-from view: which description
	// evidence and which code paths back the findings.
	fmt.Println("\ndescription-inferred permissions:", report.Desc.Permissions)
	for perm, phrase := range report.Desc.Evidence {
		fmt.Printf("  %s <- %q\n", perm, phrase)
	}
	fmt.Println("code-collected information:", report.Static.CollectedInfo())
}
