package ppchecker_test

import (
	"fmt"
	"log"

	"ppchecker"
)

// ExampleCheck analyzes an app whose policy omits the location its
// bytecode reads.
func ExampleCheck() {
	dex, err := ppchecker.AssembleDex(`
.class Lcom/example/demo/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	app := &ppchecker.App{
		Name:       "com.example.demo",
		PolicyHTML: "<p>We may collect your email address.</p>",
		APK: &ppchecker.APK{
			Manifest: &ppchecker.Manifest{
				Package:     "com.example.demo",
				Permissions: []ppchecker.Permission{{Name: "android.permission.ACCESS_FINE_LOCATION"}},
				Application: ppchecker.Application{
					Activities: []ppchecker.Component{{Name: "com.example.demo.MainActivity"}},
				},
			},
			Dex: dex,
		},
	}
	report := ppchecker.Check(app)
	for _, f := range report.IncompleteVia(ppchecker.ViaCode) {
		fmt.Printf("policy does not mention %s\n", f.Info)
	}
	// Output:
	// policy does not mention location
}

// ExampleAnalyzePolicy extracts the resource sets from policy text.
func ExampleAnalyzePolicy() {
	analysis := ppchecker.AnalyzePolicy(`
<p>We may collect your location.</p>
<p>We will not share your contacts with third parties.</p>`)
	fmt.Println("collects:", analysis.Collect)
	fmt.Println("denies sharing:", analysis.NotDisclose)
	// Output:
	// collects: [location]
	// denies sharing: [contacts]
}

// ExampleSimilarity shows the ESA resource matching the detectors use.
func ExampleSimilarity() {
	same := ppchecker.Similarity("device id", "device identifier") >= ppchecker.DefaultThreshold
	different := ppchecker.Similarity("device id", "calendar") >= ppchecker.DefaultThreshold
	fmt.Println(same, different)
	// Output:
	// true false
}

// ExampleGeneratePolicy generates a policy from an app (AutoPPG) and
// verifies it by checking the app against it.
func ExampleGeneratePolicy() {
	dex, err := ppchecker.AssembleDex(`
.class Lcom/example/gen/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    return-void
.end method
.end class
`)
	if err != nil {
		log.Fatal(err)
	}
	apk := &ppchecker.APK{
		Manifest: &ppchecker.Manifest{
			Package:     "com.example.gen",
			Permissions: []ppchecker.Permission{{Name: "android.permission.READ_PHONE_STATE"}},
			Application: ppchecker.Application{
				Activities: []ppchecker.Component{{Name: "com.example.gen.MainActivity"}},
			},
		},
		Dex: dex,
	}
	policy, _ := ppchecker.GeneratePolicy(apk, "")
	report := ppchecker.Check(&ppchecker.App{Name: "com.example.gen", PolicyHTML: policy, APK: apk})
	fmt.Println("problems:", report.HasProblem())
	// Output:
	// problems: false
}
