// Package ppchecker is the public API of PPChecker, a system that
// automatically identifies three kinds of problems in Android app
// privacy policies — incomplete, incorrect, and inconsistent policies —
// by combining natural-language analysis of the policy text with static
// analysis of the app package, description analysis, and third-party
// library policy analysis.
//
// It reproduces "Can We Trust the Privacy Policies of Android Apps?"
// (Yu, Luo, Liu, Zhang — DSN 2016).
//
// Quickstart:
//
//	app := &ppchecker.App{
//	    Name:        "com.example.app",
//	    PolicyHTML:  policyHTML,
//	    Description: playStoreDescription,
//	    APK:         apkPackage,
//	    LibPolicies: libPolicies,
//	}
//	report := ppchecker.Check(app)
//	if report.HasProblem() {
//	    fmt.Print(report.Summary())
//	}
package ppchecker

import (
	"context"
	"io"

	"ppchecker/internal/apk"
	"ppchecker/internal/autoppg"
	"ppchecker/internal/core"
	"ppchecker/internal/desc"
	"ppchecker/internal/dex"
	"ppchecker/internal/esa"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/obs"
	"ppchecker/internal/patterns"
	"ppchecker/internal/policy"
	"ppchecker/internal/report"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/static"
	"ppchecker/internal/taint"
	"ppchecker/internal/verbs"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core input and output types.
type (
	// App is the input bundle for one app: privacy policy, Google Play
	// description, the app package, and the policies of the third-party
	// libraries it may bundle.
	App = core.App
	// Report is the detection report for one app.
	Report = core.Report
	// Checker runs the full PPChecker pipeline.
	Checker = core.Checker
	// CheckerOption configures a Checker.
	CheckerOption = core.CheckerOption
	// Via tells which evidence stream produced a finding.
	Via = core.Via
	// IncompleteFinding is a missed-information record.
	IncompleteFinding = core.IncompleteFinding
	// IncorrectFinding is a policy-vs-behaviour contradiction.
	IncorrectFinding = core.IncorrectFinding
	// InconsistencyFinding is an app-policy/lib-policy conflict.
	InconsistencyFinding = core.InconsistencyFinding
	// Stage names one phase of the checking pipeline.
	Stage = core.Stage
	// StageError is a typed pipeline-stage failure recorded on a
	// Partial report.
	StageError = core.StageError
)

// Evidence streams.
const (
	ViaDescription = core.ViaDescription
	ViaCode        = core.ViaCode
)

// App-package types.
type (
	// APK is an app package: manifest plus bytecode.
	APK = apk.APK
	// Manifest mirrors AndroidManifest.xml.
	Manifest = apk.Manifest
	// Permission is one uses-permission manifest entry.
	Permission = apk.Permission
	// Component is one declared manifest component.
	Component = apk.Component
	// Application holds the manifest's component lists.
	Application = apk.Application
	// Dex is an SDEX bytecode image.
	Dex = dex.Dex
	// Library is a third-party library registry entry.
	Library = libdetect.Library
	// Info names a private-information type.
	Info = sensitive.Info
	// VerbCategory classifies a policy statement's main verb.
	VerbCategory = verbs.Category
	// PolicyAnalysis is the result of analyzing one policy document.
	PolicyAnalysis = policy.Analysis
	// PolicyStatement is one useful policy sentence with its elements.
	PolicyStatement = policy.Statement
	// DescriptionResult is the description-analysis output.
	DescriptionResult = desc.Result
	// StaticResult is the static-analysis output.
	StaticResult = static.Result
	// Leak is one source→sink flow found by the taint analysis.
	Leak = taint.Leak
	// Observer collects per-stage spans, latency histograms, and cache
	// counters for instrumented runs; share one across checkers.
	Observer = obs.Observer
	// ObserverSink consumes finished spans (e.g. the JSONL trace sink).
	ObserverSink = obs.Sink
	// MetricsSnapshot is a frozen view of an Observer's metrics.
	MetricsSnapshot = obs.Snapshot
	// StageTiming is one stage's measured duration on a report.
	StageTiming = core.StageTiming
)

// NewChecker builds a checker with the paper's defaults (mined pattern
// set, ESA threshold 0.67, reachability + URI analysis + EdgeMiner +
// ICC enabled, disclaimer handling on).
func NewChecker(opts ...CheckerOption) *Checker { return core.NewChecker(opts...) }

// WithESAThreshold overrides the resource-similarity threshold.
func WithESAThreshold(t float64) CheckerOption { return core.WithESAThreshold(t) }

// WithDisclaimerHandling toggles the third-party disclaimer rule.
func WithDisclaimerHandling(on bool) CheckerOption { return core.WithDisclaimerHandling(on) }

// WithSynonymExpansion enables the synonym-verb extension (§VI of the
// paper): verbs like "display" and "check" join the category lists,
// recovering the published system's false negatives.
func WithSynonymExpansion() CheckerOption { return core.WithSynonymExpansion() }

// WithConstraintAnalysis enables the consent-constraint extension (§VI
// of the paper): "we will not share X without your consent" is treated
// as a conditional permission rather than a denial.
func WithConstraintAnalysis() CheckerOption { return core.WithConstraintAnalysis() }

// WithObserver instruments the checker: every pipeline stage and
// detector reports a span (counts, latency histogram, optional trace)
// to the observer. Build one with NewObserver; a nil observer disables
// instrumentation at near-zero cost.
func WithObserver(o *Observer) CheckerOption { return core.WithObserver(o) }

// NewObserver builds an Observer; attach a trace sink with
// obs options such as NewJSONLTraceSink's result.
func NewObserver(sink ObserverSink) *Observer {
	if sink == nil {
		return obs.New()
	}
	return obs.New(obs.WithSink(sink))
}

// NewJSONLTraceSink returns a sink writing one JSON line per span to w
// (close it to flush). Pass it to NewObserver for whole-run traces.
func NewJSONLTraceSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// Check runs a default checker over one app.
func Check(app *App) *Report { return NewChecker().Check(app) }

// CheckSafe runs a default checker over one app with per-stage panic
// isolation, graceful degradation, and ctx cancellation. The error is
// non-nil only for cancellation; stage failures are recorded on the
// (Partial) report itself.
func CheckSafe(ctx context.Context, app *App) (*Report, error) {
	return NewChecker().CheckSafe(ctx, app)
}

// AnalyzePolicy runs only the privacy-policy analysis module over an
// HTML (or plain-text) policy document.
func AnalyzePolicy(html string) *PolicyAnalysis {
	return policy.NewAnalyzer().AnalyzeHTML(html)
}

// AnalyzeDescription runs only the description-analysis module.
func AnalyzeDescription(text string) *DescriptionResult {
	return desc.NewAnalyzer().Analyze(text)
}

// UnjustifiedPermissions returns the requested permissions the
// description does not justify — the Whyper/AutoCog question the
// description module answers in reverse. Unprofiled permissions are
// skipped rather than accused.
func UnjustifiedPermissions(requested []string, description string) []string {
	return desc.NewAnalyzer().Unjustified(requested, description)
}

// AnalyzeAPK runs only the static-analysis module over an app package.
// It fails on malformed packages (nil bytecode, oversized methods)
// instead of panicking.
func AnalyzeAPK(a *APK) (*StaticResult, error) {
	return static.Analyze(a, static.DefaultOptions())
}

// ParseAPK decodes a serialized APK, unpacking packed payloads.
func ParseAPK(data []byte) (*APK, error) { return apk.Decode(data) }

// EncodeAPK serializes an app package.
func EncodeAPK(a *APK) ([]byte, error) { return apk.Encode(a) }

// AssembleDex parses SDEX textual assembly into a bytecode image.
func AssembleDex(text string) (*Dex, error) { return dex.Assemble(text) }

// DetectLibraries returns the third-party libraries bundled in a
// bytecode image.
func DetectLibraries(d *Dex) []Library { return libdetect.Detect(d) }

// GeneratePolicy produces a privacy policy from an app package — the
// AutoPPG companion system the paper's authors describe in §VII. The
// generated policy declares the behaviours the static analysis proves
// (plus description-implied information when description != ""), so
// checking the app against its own generated policy yields no
// findings. It fails when the static analysis cannot process the APK.
func GeneratePolicy(a *APK, description string) (string, error) {
	opts := autoppg.DefaultOptions()
	opts.Description = description
	return autoppg.Generate(a, opts)
}

// MinePatternMatcher trains PPChecker's sentence selector on a policy
// corpus (§III-B Steps 3–4): bootstrap patterns, rank against the
// labelled sets, keep the top n. Use the result with
// WithMinedPatterns.
func MinePatternMatcher(corpus, positive, negative []string, n int) *patterns.Matcher {
	return patterns.MineMatcher(corpus, positive, negative, n)
}

// WithMinedPatterns makes the checker select policy sentences with a
// mined matcher instead of the built-in pattern families.
func WithMinedPatterns(m *patterns.Matcher) CheckerOption {
	return core.WithPolicyAnalyzer(policy.NewAnalyzer(policy.WithMatcher(m)))
}

// WriteReportJSON serializes a report as machine-readable JSON.
func WriteReportJSON(w io.Writer, r *Report) error { return report.WriteJSON(w, r) }

// WriteReportHTML renders a report as a standalone HTML page.
func WriteReportHTML(w io.Writer, r *Report) error { return report.WriteHTML(w, r) }

// Similarity returns the ESA semantic similarity of two resource
// phrases in [0, 1]; phrases at or above DefaultThreshold refer to the
// same private information. Interpretations are memoized, so repeated
// phrases across calls tokenize once per process.
func Similarity(a, b string) float64 { return esa.Default().Similarity(a, b) }

// DefaultThreshold is the similarity threshold the paper adopts (0.67).
const DefaultThreshold = esa.DefaultThreshold

// ESACacheStats is a snapshot of the ESA interpret-memo and
// vector-pool counters (cumulative; use Sub for per-run deltas).
type ESACacheStats = esa.CacheStats

// AggregateESACacheStats returns the process-wide ESA cache counters,
// summed over every index (the privacy KB and the description
// profiles). Capture before and after a run and Sub the two to report
// that run's hit rate.
func AggregateESACacheStats() ESACacheStats { return esa.AggregateCacheStats() }

// AnalysisCache is a concurrency-safe, single-flight cache of
// library-policy analyses, shared across the checkers of a corpus run
// so each unique policy text is analyzed once per run.
type AnalysisCache = core.AnalysisCache

// NewAnalysisCache builds an empty shared analysis cache.
func NewAnalysisCache() *AnalysisCache { return core.NewAnalysisCache() }

// WithSharedAnalysisCache makes the checker use a shared library-policy
// analysis cache (see AnalysisCache). All checkers sharing a cache must
// use an identical policy-analyzer configuration.
func WithSharedAnalysisCache(c *AnalysisCache) CheckerOption {
	return core.WithSharedAnalysisCache(c)
}
