package ppchecker

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one benchmark per artifact) and adds ablation
// benches for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment outcomes (counts,
// precision/recall) so `go test -bench` output doubles as the
// reproduction record.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ppchecker/internal/actrie"
	"ppchecker/internal/apg"
	"ppchecker/internal/autoppg"
	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/eval"
	"ppchecker/internal/graphdb"
	"ppchecker/internal/htmltext"
	"ppchecker/internal/nlp"
	"ppchecker/internal/obs"
	"ppchecker/internal/policy"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/static"
	"ppchecker/internal/synth"
	"ppchecker/internal/taint"
	"ppchecker/internal/verbs"
)

var (
	corpusOnce sync.Once
	corpus     *synth.Dataset
)

// paperCorpus builds the 1,197-app corpus once for all benchmarks.
func paperCorpus(b *testing.B) *synth.Dataset {
	b.Helper()
	corpusOnce.Do(func() {
		ds, err := synth.Generate(synth.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		corpus = ds
	})
	return corpus
}

// BenchmarkFig12PatternSelection regenerates Fig. 12: mining, ranking,
// and sweeping the pattern count.
func BenchmarkFig12PatternSelection(b *testing.B) {
	data := synth.GenerateFig12(synth.DefaultFig12Config())
	b.ResetTimer()
	var r *eval.Fig12Result
	for i := 0; i < b.N; i++ {
		r = eval.RunFig12(data)
	}
	b.ReportMetric(float64(r.BestN), "selected-n")
	b.ReportMetric(100*r.BestFN, "fn-rate-%")
	b.ReportMetric(100*r.BestFP, "fp-rate-%")
}

// BenchmarkTableIIIIncompleteByDescription regenerates Table III.
func BenchmarkTableIIIIncompleteByDescription(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var apps int
	for i := 0; i < b.N; i++ {
		res := eval.EvaluateCorpus(ds)
		apps = 0
		for _, row := range res.TableIII() {
			apps += row.Apps
		}
	}
	b.ReportMetric(float64(apps), "perm-records")
}

// BenchmarkFig13MissedInfoDistribution regenerates Fig. 13.
func BenchmarkFig13MissedInfoDistribution(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var records int
	for i := 0; i < b.N; i++ {
		res := eval.EvaluateCorpus(ds)
		records = 0
		for _, row := range res.Fig13() {
			records += row.Records
		}
	}
	b.ReportMetric(float64(records), "missed-records")
}

// BenchmarkTableIVInconsistency regenerates Table IV.
func BenchmarkTableIVInconsistency(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var tab eval.TableIV
	for i := 0; i < b.N; i++ {
		tab = eval.EvaluateCorpus(ds).ComputeTableIV()
	}
	b.ReportMetric(100*tab.CUR.Precision(), "cur-precision-%")
	b.ReportMetric(100*tab.CUR.Recall(), "cur-recall-%")
	b.ReportMetric(100*tab.Disclose.Precision(), "disclose-precision-%")
	b.ReportMetric(100*tab.Disclose.Recall(), "disclose-recall-%")
}

// BenchmarkIncorrectPolicies regenerates the §V-D incorrect-policy
// findings.
func BenchmarkIncorrectPolicies(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var s eval.SummaryStats
	for i := 0; i < b.N; i++ {
		s = eval.EvaluateCorpus(ds).Summary()
	}
	b.ReportMetric(float64(s.IncorrectApps), "verified-incorrect")
	b.ReportMetric(float64(s.DetectedIncorrect), "detected-incorrect")
}

// BenchmarkSummary regenerates the §V-F corpus summary.
func BenchmarkSummary(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var s eval.SummaryStats
	for i := 0; i < b.N; i++ {
		s = eval.EvaluateCorpus(ds).Summary()
	}
	b.ReportMetric(float64(s.AppsWithProblem), "apps-with-problem")
	b.ReportMetric(100*float64(s.AppsWithProblem)/float64(s.NumApps), "problem-rate-%")
}

// --- ablation benches: design choices DESIGN.md calls out ---

// benchAblationStatic measures raw code-incomplete detections under a
// static-analysis option variation; more raw detections than the
// paper's 195 means extra false positives.
func benchAblationStatic(b *testing.B, mutate func(*static.Options)) float64 {
	b.Helper()
	ds := paperCorpus(b)
	opts := static.DefaultOptions()
	mutate(&opts)
	b.ResetTimer()
	var raw int
	for i := 0; i < b.N; i++ {
		res := eval.EvaluateCorpus(ds, core.WithStaticOptions(opts))
		raw = res.Summary().DetectedViaCode
	}
	return float64(raw)
}

// BenchmarkAblationReachability turns off the entry-point reachability
// filter: unreachable sensitive calls are then counted, inflating raw
// detections.
func BenchmarkAblationReachability(b *testing.B) {
	raw := benchAblationStatic(b, func(o *static.Options) { o.Reachability = false })
	b.ReportMetric(raw, "raw-code-detections")
}

// BenchmarkAblationURIs turns off content-provider URI analysis (the
// paper's delta over Slavin et al.): URI-only collections vanish,
// deflating detections.
func BenchmarkAblationURIs(b *testing.B) {
	raw := benchAblationStatic(b, func(o *static.Options) { o.URIAnalysis = false })
	b.ReportMetric(raw, "raw-code-detections")
}

// BenchmarkAblationEdgeMiner turns off implicit callback edges:
// callback-only code becomes unreachable.
func BenchmarkAblationEdgeMiner(b *testing.B) {
	raw := benchAblationStatic(b, func(o *static.Options) { o.APG.EdgeMiner = false })
	b.ReportMetric(raw, "raw-code-detections")
}

// BenchmarkAblationDisclaimer turns off the §IV-C disclaimer rule: the
// disclaimer-suppressed conflicts resurface as inconsistency FPs.
func BenchmarkAblationDisclaimer(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var tab eval.TableIV
	for i := 0; i < b.N; i++ {
		tab = eval.EvaluateCorpus(ds, core.WithDisclaimerHandling(false)).ComputeTableIV()
	}
	b.ReportMetric(float64(tab.CUR.FP), "cur-fp")
	b.ReportMetric(100*tab.CUR.Precision(), "cur-precision-%")
}

// BenchmarkAblationESAThreshold sweeps the similarity threshold around
// the paper's 0.67 and reports the inconsistency metrics at a stricter 0.85: paraphrased resources stop matching and recall drops.
func BenchmarkAblationESAThreshold(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var tab eval.TableIV
	for i := 0; i < b.N; i++ {
		tab = eval.EvaluateCorpus(ds, core.WithESAThreshold(0.85)).ComputeTableIV()
	}
	b.ReportMetric(100*tab.CUR.Precision(), "cur-precision-at-0.85-%")
	b.ReportMetric(100*tab.CUR.Recall(), "cur-recall-at-0.85-%")
}

// --- extension benches: the paper's §VI future-work items ---

// BenchmarkExtensionSynonymVerbs enables synonym verb expansion: the
// planted verb-gap false negatives ("check", "display" denials) become
// detectable and recall reaches 100%.
func BenchmarkExtensionSynonymVerbs(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var tab eval.TableIV
	for i := 0; i < b.N; i++ {
		tab = eval.EvaluateCorpus(ds, core.WithSynonymExpansion()).ComputeTableIV()
	}
	b.ReportMetric(100*tab.CUR.Recall(), "cur-recall-%")
	b.ReportMetric(100*tab.Disclose.Recall(), "disclose-recall-%")
	b.ReportMetric(float64(tab.CUR.FN+tab.Disclose.FN), "remaining-fn")
}

// BenchmarkExtensionConstraints enables consent-constraint modelling
// and verifies the paper numbers are unaffected on this corpus (no
// consent-exception sentences are planted) while the feature runs.
func BenchmarkExtensionConstraints(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var tab eval.TableIV
	for i := 0; i < b.N; i++ {
		tab = eval.EvaluateCorpus(ds, core.WithConstraintAnalysis()).ComputeTableIV()
	}
	b.ReportMetric(100*tab.CUR.Precision(), "cur-precision-%")
	b.ReportMetric(100*tab.CUR.Recall(), "cur-recall-%")
}

// --- microbenchmarks of the substrates ---

// BenchmarkCheckSingleApp measures one end-to-end Check call.
func BenchmarkCheckSingleApp(b *testing.B) {
	ds := paperCorpus(b)
	app := ds.Apps[0].App
	checker := core.NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Check(app)
	}
}

// BenchmarkCheckSafeSingleApp measures the recovering pipeline without
// an observer: the baseline the observability overhead is judged
// against.
func BenchmarkCheckSafeSingleApp(b *testing.B) {
	ds := paperCorpus(b)
	app := ds.Apps[0].App
	checker := core.NewChecker()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.CheckSafe(ctx, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckSafeObserved is the same pipeline with a metrics-only
// observer attached (no trace sink): the per-span cost is a handful of
// atomic adds, so this should stay within a few percent of
// BenchmarkCheckSafeSingleApp.
func BenchmarkCheckSafeObserved(b *testing.B) {
	ds := paperCorpus(b)
	app := ds.Apps[0].App
	checker := core.NewChecker(core.WithObserver(obs.New()))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.CheckSafe(ctx, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyAnalysis measures the six-step policy pipeline on one
// generated policy.
func BenchmarkPolicyAnalysis(b *testing.B) {
	ds := paperCorpus(b)
	html := ds.Apps[0].App.PolicyHTML
	a := policy.NewAnalyzer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AnalyzeHTML(html)
	}
}

// BenchmarkDependencyParse measures the rule-based parser.
func BenchmarkDependencyParse(b *testing.B) {
	sentence := "we will provide your information to third party companies to improve service"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nlp.ParseSentence(sentence)
	}
}

// BenchmarkESASimilarity measures one similarity query.
func BenchmarkESASimilarity(b *testing.B) {
	x := esa.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Similarity("location information", "your current location")
	}
}

// BenchmarkSimilarityWarm measures the vectorized hot path once the
// interpret memo holds both phrases: two cache lookups plus one
// merge-walk cosine, the shape of nearly every Similarity call in a
// corpus run.
func BenchmarkSimilarityWarm(b *testing.B) {
	x := esa.Default()
	x.Similarity("location information", "your current location") // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Similarity("location information", "your current location")
	}
}

// BenchmarkSimilarityCold measures the miss path: every iteration
// interprets a never-seen phrase, so tokenization and vector
// construction (with the pooled scratch buffer) are on the clock.
func BenchmarkSimilarityCold(b *testing.B) {
	x := esa.Default()
	phrases := make([]string, b.N)
	for i := range phrases {
		phrases[i] = fmt.Sprintf("location data variant %d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Similarity(phrases[i], "your current location")
	}
}

// BenchmarkSimilarityReferenceMap measures the retained map-based
// reference path the vectorized engine is verified against, for
// before/after comparison in the same run.
func BenchmarkSimilarityReferenceMap(b *testing.B) {
	x := esa.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		esa.Cosine(x.Interpret("location information"), x.Interpret("your current location"))
	}
}

// BenchmarkAPGBuild measures Android-property-graph construction.
func BenchmarkAPGBuild(b *testing.B) {
	ds := paperCorpus(b)
	a := ds.Apps[0].App.APK
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apg.Build(a, apg.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaintAnalysis measures the taint engine on one app.
func BenchmarkTaintAnalysis(b *testing.B) {
	ds := paperCorpus(b)
	a := ds.Apps[2].App.APK // the easyxapp-style app has a real flow
	p, err := apg.Build(a, apg.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taint.Analyze(p)
	}
}

// BenchmarkCorpusGeneration measures dataset generation itself.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoPPGGenerate measures policy generation (the companion
// AutoPPG system) for one app.
func BenchmarkAutoPPGGenerate(b *testing.B) {
	ds := paperCorpus(b)
	a := ds.Apps[0].App.APK
	opts := autoppg.DefaultOptions()
	opts.Description = ds.Apps[0].App.Description
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autoppg.Generate(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryParallel measures the worker-pool corpus evaluation
// and reports corpus throughput in apps/sec.
func BenchmarkSummaryParallel(b *testing.B) {
	ds := paperCorpus(b)
	b.ResetTimer()
	var s eval.SummaryStats
	for i := 0; i < b.N; i++ {
		s = eval.EvaluateCorpusParallel(ds, 0).Summary()
	}
	b.ReportMetric(float64(s.AppsWithProblem), "apps-with-problem")
	b.ReportMetric(float64(len(ds.Apps))*float64(b.N)/b.Elapsed().Seconds(), "apps/sec")
}

// BenchmarkGraphQueryThroughput exercises the frozen CSR graph with the
// query mix the analyses use: label scans, adjacency expansion over the
// code and CFG edges, and reachability sweeps seeded at each method's
// entry statement. It reports sustained queries/sec so CSR-layout
// regressions show up even when end-to-end pipeline time hides them.
func BenchmarkGraphQueryThroughput(b *testing.B) {
	ds := paperCorpus(b)
	p, err := apg.Build(ds.Apps[0].App.APK, apg.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	f := p.Frozen()
	methods := f.NodesByLabel(apg.LabelMethod)
	if len(methods) == 0 {
		b.Fatal("no method nodes in frozen graph")
	}
	cfg := []string{apg.EdgeCFG}
	var stmts []graphdb.NodeID
	b.ResetTimer()
	queries := 0
	for i := 0; i < b.N; i++ {
		for _, mid := range methods {
			stmts = f.OutInto(stmts[:0], mid, apg.EdgeCode)
			queries++
			if len(stmts) == 0 {
				continue
			}
			for _, sid := range stmts {
				_ = f.OutDegree(sid)
			}
			queries += len(stmts)
			vs := f.ReachableVisit(stmts[:1], cfg)
			queries++
			if len(vs.Order) == 0 {
				b.Fatal("empty reachability from method entry")
			}
		}
	}
	b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkLexiconMatch measures Aho-Corasick lexicon screening over
// real policy sentences: one pass per sentence answers "does any verb
// lemma or sensitive-info term occur" plus the category bitmask union,
// the shape the pattern and policy prefilters use instead of per-entry
// strings.Contains scans.
func BenchmarkLexiconMatch(b *testing.B) {
	ds := paperCorpus(b)
	bld := actrie.NewBuilder(true)
	for _, lemma := range verbs.Lemmas() {
		bld.Add(lemma, uint32(verbs.LemmaMaskOf(lemma)))
	}
	for _, info := range sensitive.AllInfos() {
		bld.Add(string(info), 1<<16)
	}
	ac := bld.Build()
	sents := nlp.SplitSentences(htmltext.Extract(ds.Apps[0].App.PolicyHTML))
	if len(sents) == 0 {
		b.Fatal("no sentences in benchmark policy")
	}
	b.ResetTimer()
	var mask uint32
	hits := 0
	for i := 0; i < b.N; i++ {
		mask, hits = 0, 0
		for _, s := range sents {
			v := ac.TokenValues(s)
			if v != 0 {
				hits++
			}
			mask |= v
		}
	}
	if hits == 0 || mask == 0 {
		b.Fatal("lexicon automaton matched nothing in policy text")
	}
	b.ReportMetric(float64(len(sents))*float64(b.N)/b.Elapsed().Seconds(), "sentences/sec")
}
