package core

import (
	"sync"

	"ppchecker/internal/static"
	"ppchecker/internal/taint"
)

// arena is the per-analysis scratch state one CheckSafe call borrows:
// APG build buffers, the collection scan's register maps, and taint
// fixpoint maps. Pooling it means the eval/serve/stream worker pools
// stop re-allocating this state for every app — a worker grabs an
// arena at the start of a check and returns it at the end, reset but
// warm.
//
// Nothing in an arena may outlive the check: the APG build copies
// what the graph keeps, and taint results own their leak slices (only
// the fixpoint state is pooled).
type arena struct {
	build static.Scratch
	taint taint.Scratch
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}
