// Package core is the problem-identification module of §IV — the
// paper's primary contribution. It combines the privacy-policy
// analysis, the static analysis, the description analysis, and the
// third-party-library policies to detect the three problem classes:
// incomplete, incorrect, and inconsistent privacy policies
// (Algorithms 1–5).
package core

import (
	"context"

	"ppchecker/internal/apk"
	"ppchecker/internal/desc"
	"ppchecker/internal/esa"
	"ppchecker/internal/obs"
	"ppchecker/internal/patterns"
	"ppchecker/internal/policy"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/static"
)

// App is the input bundle for one app: everything Fig. 4 of the paper
// feeds into PPChecker.
type App struct {
	// Name is the package name (informational; the manifest package is
	// authoritative for analysis).
	Name string
	// PolicyHTML is the app's privacy policy (HTML or plain text).
	PolicyHTML string
	// Description is the Google Play description.
	Description string
	// APK is the app package.
	APK *apk.APK
	// LibPolicies maps a detected library name to its privacy policy
	// text. Libraries without an entry are skipped, as the paper skips
	// libs without English policies.
	LibPolicies map[string]string
}

// Checker runs the full pipeline. Construct with NewChecker; the zero
// value is not usable. A Checker itself is not safe for concurrent
// use, but its caches (the shared AnalysisCache and the ESA interpret
// memo) are, so many checkers — one per corpus worker — may share
// them.
type Checker struct {
	policyAnalyzer *policy.Analyzer
	descAnalyzer   *desc.Analyzer
	index          *esa.Index
	threshold      float64
	staticOpts     static.Options
	disclaimers    bool

	// libCache memoizes lib-policy analyses by policy text; the same 81
	// library policies recur across the whole corpus. By default each
	// checker owns a private cache; the corpus runner substitutes one
	// shared, single-flight cache for all workers via
	// WithSharedAnalysisCache.
	libCache *AnalysisCache

	// infoVecs holds the ESA vectors of the fixed sensitive-information
	// vocabulary, precompiled at construction so the detectors' inner
	// similarity loops never re-interpret the information side.
	infoVecs map[string]*esa.ConceptVec

	// obs receives spans and counters for every pipeline stage and
	// detector. A nil observer records nothing; many checkers (one per
	// corpus worker) may share one observer.
	obs *obs.Observer

	// esaScope attributes this checker's ESA cache events (interpret
	// memo hits/misses, pool and eviction activity) to a per-run scope,
	// so concurrent runs sharing the process-global memo don't
	// double-count each other's traffic. Nil records globally only.
	esaScope *esa.StatScope
}

// CheckerOption configures a Checker.
type CheckerOption func(*Checker)

// WithPolicyAnalyzer substitutes the policy analyzer (e.g. one built on
// a mined pattern set for the Fig. 12 sweep).
func WithPolicyAnalyzer(a *policy.Analyzer) CheckerOption {
	return func(c *Checker) { c.policyAnalyzer = a }
}

// WithESAThreshold overrides the similarity threshold (default 0.67).
func WithESAThreshold(t float64) CheckerOption {
	return func(c *Checker) { c.threshold = t }
}

// WithStaticOptions overrides the static-analysis options.
func WithStaticOptions(o static.Options) CheckerOption {
	return func(c *Checker) { c.staticOpts = o }
}

// WithDisclaimerHandling toggles the §IV-C disclaimer rule (default
// on); the ablation bench turns it off.
func WithDisclaimerHandling(on bool) CheckerOption {
	return func(c *Checker) { c.disclaimers = on }
}

// WithObserver attaches an observability sink: every pipeline stage
// and detector reports a span to it, and the library-policy cache
// reports hits and misses. The observer must be safe for concurrent
// use (obs.Observer is); a nil observer disables instrumentation.
func WithObserver(o *obs.Observer) CheckerOption {
	return func(c *Checker) { c.obs = o }
}

// WithSharedAnalysisCache substitutes the library-policy analysis
// cache with one shared across checkers (see AnalysisCache for the
// ownership and configuration contract). The corpus runners use this
// so the recurring library policies are analyzed once per run instead
// of once per worker.
func WithSharedAnalysisCache(cache *AnalysisCache) CheckerOption {
	return func(c *Checker) {
		if cache != nil {
			c.libCache = cache
		}
	}
}

// WithESAStatScope attributes the checker's ESA cache events to a
// per-run scope (see esa.StatScope). The corpus runner hands every
// worker's checker the run's scope; ppserve hands its workers one
// scope for the server's lifetime. A cache-stats delta taken from the
// scope counts exactly this run's traffic, concurrency-safe — unlike
// a before/after delta of esa.AggregateCacheStats, which attributes a
// wall-clock window and double-counts concurrent runs.
func WithESAStatScope(sc *esa.StatScope) CheckerOption {
	return func(c *Checker) {
		if sc != nil {
			c.esaScope = sc
		}
	}
}

// WithSynonymExpansion enables the §VI extension that adds synonym
// verbs ("display", "check", ...) to the category lists, recovering
// the paper's reported false negatives.
func WithSynonymExpansion() CheckerOption {
	return func(c *Checker) {
		c.policyAnalyzer = policy.NewAnalyzer(policy.WithMatcher(patterns.ExtendedMatcher()))
	}
}

// WithConstraintAnalysis enables the §VI extension that models
// consent-style constraints ("without your consent") when analyzing
// policies.
func WithConstraintAnalysis() CheckerOption {
	return func(c *Checker) {
		c.policyAnalyzer = policy.NewAnalyzer(policy.WithConstraintAnalysis(true))
	}
}

// NewChecker builds a checker with the paper's defaults.
func NewChecker(opts ...CheckerOption) *Checker {
	c := &Checker{
		policyAnalyzer: policy.NewAnalyzer(),
		descAnalyzer:   desc.NewAnalyzer(),
		index:          esa.Default(),
		threshold:      esa.DefaultThreshold,
		staticOpts:     static.DefaultOptions(),
		disclaimers:    true,
		libCache:       NewAnalysisCache(),
	}
	for _, o := range opts {
		o(c)
	}
	if c.esaScope != nil {
		c.descAnalyzer = c.descAnalyzer.WithESAStatScope(c.esaScope)
	}
	// Precompile the fixed phrase set the detectors compare against:
	// every sensitive-information name gets its ESA vector once here,
	// so the N×M similarity loops only ever interpret the per-app side.
	c.infoVecs = make(map[string]*esa.ConceptVec, len(sensitive.AllInfos()))
	for _, info := range sensitive.AllInfos() {
		c.infoVecs[string(info)] = c.index.InterpretVecScoped(string(info), c.esaScope)
	}
	return c
}

// Check runs the three detectors over one app and returns the report.
// It is CheckSafe without a deadline: well-formed input produces the
// identical report; malformed input degrades to a Partial report
// instead of panicking.
func (c *Checker) Check(app *App) *Report {
	r, _ := c.CheckSafe(context.Background(), app)
	return r
}

func appName(app *App) string {
	if app.Name != "" {
		return app.Name
	}
	if app.APK != nil && app.APK.Manifest != nil {
		return app.APK.Manifest.Package
	}
	return "(unnamed)"
}

// vec returns the ESA vector for a phrase: precompiled when the
// phrase is part of the fixed information vocabulary, memoized via the
// index otherwise.
func (c *Checker) vec(phrase string) *esa.ConceptVec {
	if v, ok := c.infoVecs[phrase]; ok {
		return v
	}
	return c.index.InterpretVecScoped(phrase, c.esaScope)
}

// similarTo reports whether info matches any phrase in set under the
// ESA threshold — the Similarity() predicate of Algorithms 1–5. The
// info side is interpreted once; set phrases resolve through the
// interpret memo, so recurring policy resources tokenize once per
// process.
func (c *Checker) similarTo(info string, set []string) bool {
	iv := c.vec(info)
	for _, s := range set {
		if esa.CosineVec(iv, c.index.InterpretVecScoped(s, c.esaScope)) >= c.threshold {
			return true
		}
	}
	return false
}
