package core

import (
	"slices"
	"sort"

	"ppchecker/internal/sensitive"
)

// detectIncomplete implements Algorithms 1 and 2: information implied
// by the description or observed in code that the policy's positive
// sets do not cover.
func (c *Checker) detectIncomplete(app *App, r *Report) {
	ppInfos := r.Policy.All()

	// Algorithm 1: through the description.
	if r.Desc != nil {
		for _, info := range r.Desc.Infos {
			if c.similarTo(string(info), ppInfos) {
				continue
			}
			r.Incomplete = append(r.Incomplete, IncompleteFinding{
				Via:         ViaDescription,
				Info:        info,
				Permissions: permissionsImplying(r, info),
			})
		}
	}

	// Algorithm 2: through code.
	if r.Static == nil {
		return
	}
	retained := map[sensitive.Info]bool{}
	for _, info := range r.Static.RetainedInfo() {
		retained[info] = true
	}
	codeInfos := map[sensitive.Info]bool{}
	for _, info := range r.Static.CollectedInfo() {
		codeInfos[info] = true
	}
	for info := range retained {
		codeInfos[info] = true
	}
	ordered := make([]sensitive.Info, 0, len(codeInfos))
	for info := range codeInfos {
		ordered = append(ordered, info)
	}
	slices.Sort(ordered)
	for _, info := range ordered {
		if c.similarTo(string(info), ppInfos) {
			continue
		}
		r.Incomplete = append(r.Incomplete, IncompleteFinding{
			Via:      ViaCode,
			Info:     info,
			Retained: retained[info],
			Sources:  sourcesFor(r, info),
		})
	}
}

// permissionsImplying returns the description-inferred permissions that
// map to the information (for Table III).
func permissionsImplying(r *Report, info sensitive.Info) []string {
	var out []string
	for _, perm := range r.Desc.Permissions {
		for _, i := range sensitive.InfoForPermission(perm) {
			if i == info {
				out = append(out, perm)
				break
			}
		}
	}
	return out
}

// sourcesFor lists the distinct access descriptions behind a code
// finding.
func sourcesFor(r *Report, info sensitive.Info) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range r.Static.Sites {
		if s.ByApp && s.Info == info && !seen[s.Source] {
			seen[s.Source] = true
			out = append(out, s.Source)
		}
	}
	for _, l := range r.Static.Leaks {
		if l.Info == info && !seen[l.Source] {
			seen[l.Source] = true
			out = append(out, l.Source)
		}
	}
	sort.Strings(out)
	return out
}
