package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppchecker/internal/policy"
)

// TestAnalysisCacheSingleFlight: under heavy contention on one key,
// the compute function runs exactly once and every caller receives the
// same analysis pointer.
func TestAnalysisCacheSingleFlight(t *testing.T) {
	cache := NewAnalysisCache()
	var computes atomic.Int64
	const goroutines = 32
	results := make([]*policy.Analysis, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, _ := cache.Get("we collect your location", func() *policy.Analysis {
				computes.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return &policy.Analysis{}
			})
			results[g] = a
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different analysis pointer", g)
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("stats = %d hits, %d misses; want %d, 1", hits, misses, goroutines-1)
	}
}

// TestAnalysisCacheOncePerUniqueText: many goroutines over an
// overlapping key set still perform exactly one analysis per unique
// policy text.
func TestAnalysisCacheOncePerUniqueText(t *testing.T) {
	cache := NewAnalysisCache()
	const uniqueTexts = 17
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("lib policy %d", (g*13+i)%uniqueTexts)
				a, _ := cache.Get(key, func() *policy.Analysis {
					computes.Add(1)
					return &policy.Analysis{}
				})
				if a == nil {
					t.Error("nil analysis")
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != uniqueTexts {
		t.Fatalf("%d analyses for %d unique texts", n, uniqueTexts)
	}
	if cache.Len() != uniqueTexts {
		t.Fatalf("cache holds %d texts, want %d", cache.Len(), uniqueTexts)
	}
	_, misses := cache.Stats()
	if misses != uniqueTexts {
		t.Fatalf("misses = %d, want %d", misses, uniqueTexts)
	}
}

// TestAnalysisCachePanicDoesNotPoison is the regression test for the
// cache-poisoning bug: before the fix, a panicking compute consumed
// the entry's sync.Once, so every later Get on that key reported a
// cache *hit* with a nil analysis, forever. The fix re-arms the key:
// the panic propagates to the panicking caller, and the next caller
// computes again and gets a real analysis.
func TestAnalysisCachePanicDoesNotPoison(t *testing.T) {
	cache := NewAnalysisCache()
	const key = "bad library policy"

	didPanic := func() (p bool) {
		defer func() { p = recover() != nil }()
		cache.Get(key, func() *policy.Analysis { panic("analyzer blew up") })
		return false
	}()
	if !didPanic {
		t.Fatal("panic in compute did not propagate to the caller")
	}

	want := &policy.Analysis{}
	got, hit := cache.Get(key, func() *policy.Analysis { return want })
	if hit {
		t.Fatal("Get after a panicked compute reported a cache hit (poisoned entry)")
	}
	if got != want {
		t.Fatalf("Get after a panicked compute returned %v, want the recomputed analysis", got)
	}
	// And the recomputed value is now cached normally.
	got, hit = cache.Get(key, func() *policy.Analysis {
		t.Error("compute ran again for a cached key")
		return nil
	})
	if !hit || got != want {
		t.Fatalf("recomputed analysis not cached: hit=%v got=%v", hit, got)
	}
}

// TestAnalysisCachePanicHammer runs many goroutines against one cache
// whose compute panics intermittently, under -race: every caller must
// either observe the panic of its own compute or receive a real
// (non-nil) analysis — never a nil analysis served as a hit.
func TestAnalysisCachePanicHammer(t *testing.T) {
	cache := NewAnalysisCache()
	const (
		goroutines = 16
		iters      = 300
		keys       = 7
	)
	var flips atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("policy %d", (g+i)%keys)
				func() {
					defer func() { recover() }() // a panicked compute is this caller's problem only
					a, hit := cache.Get(key, func() *policy.Analysis {
						if flips.Add(1)%3 == 0 { // panic intermittently
							panic("intermittent analyzer failure")
						}
						return &policy.Analysis{}
					})
					if a == nil {
						t.Errorf("nil analysis from Get(%q) (hit=%v): poisoned entry", key, hit)
					}
				}()
			}
		}()
	}
	wg.Wait()
	// Afterwards every key must still be computable.
	for k := 0; k < keys; k++ {
		a, _ := cache.Get(fmt.Sprintf("policy %d", k), func() *policy.Analysis {
			return &policy.Analysis{}
		})
		if a == nil {
			t.Fatalf("key %d left permanently poisoned", k)
		}
	}
}

// TestSharedCacheAcrossCheckers: checkers sharing one cache reuse each
// other's library-policy analyses instead of re-running them.
func TestSharedCacheAcrossCheckers(t *testing.T) {
	cache := NewAnalysisCache()
	a := NewChecker(WithSharedAnalysisCache(cache))
	b := NewChecker(WithSharedAnalysisCache(cache))
	if a.libCache != cache || b.libCache != cache {
		t.Fatal("checkers did not adopt the shared cache")
	}
	// Nil cache leaves the private default in place.
	c := NewChecker(WithSharedAnalysisCache(nil))
	if c.libCache == nil || c.libCache == cache {
		t.Fatal("nil shared cache should keep a private cache")
	}
}
