package core

import (
	"sort"

	"ppchecker/internal/esa"
	"ppchecker/internal/policy"
	"ppchecker/internal/verbs"
)

// detectInconsistent implements Algorithm 5: a negative sentence in the
// app's policy conflicting with a positive sentence of the same verb
// category in a bundled library's policy, about the same resource.
// Disclaimer clauses suppress the check (§IV-C) when disclaimer
// handling is enabled.
func (c *Checker) detectInconsistent(app *App, r *Report) {
	if len(r.Libs) == 0 || len(app.LibPolicies) == 0 {
		return
	}
	if c.disclaimers && r.Policy.Disclaimer {
		return
	}
	libNames := make([]string, 0, len(r.Libs))
	for _, lib := range r.Libs {
		libNames = append(libNames, lib.Name)
	}
	sort.Strings(libNames)
	for _, libName := range libNames {
		policyText, ok := app.LibPolicies[libName]
		if !ok || policyText == "" {
			continue // no English policy for this lib, as in §V-A
		}
		libAnalysis, cached := c.libCache.Get(policyText, func() *policy.Analysis {
			return c.policyAnalyzer.AnalyzeHTML(policyText)
		})
		if cached {
			c.obs.CacheHit()
		} else {
			c.obs.CacheMiss()
		}
		for _, appSt := range r.Policy.Statements {
			// Requirement (2): AppSent negative.
			if !appSt.Negative || appSt.Category == verbs.None {
				continue
			}
			for _, libSt := range libAnalysis.Statements {
				// Requirement (2): LibSent positive; requirement (1):
				// same main-verb category.
				if libSt.Negative || libSt.Category != appSt.Category {
					continue
				}
				// Requirement (3): same resource.
				if res, ok := c.sharedResource(appSt.Resources, libSt.Resources); ok {
					r.Inconsistent = append(r.Inconsistent, InconsistencyFinding{
						Category:    appSt.Category,
						Resource:    res,
						AppSentence: appSt.Sentence,
						LibName:     libName,
						LibSentence: libSt.Sentence,
					})
				}
			}
		}
	}
}

// sharedResource returns the first app resource matching any lib
// resource under the ESA threshold. Each side is interpreted once per
// call (and once per process for recurring phrases, via the memo)
// instead of once per pair.
func (c *Checker) sharedResource(appRes, libRes []string) (string, bool) {
	for _, ar := range appRes {
		av := c.index.InterpretVecScoped(ar, c.esaScope)
		for _, lr := range libRes {
			if esa.CosineVec(av, c.index.InterpretVecScoped(lr, c.esaScope)) >= c.threshold {
				return ar, true
			}
		}
	}
	return "", false
}
