package core

import (
	"sort"

	"ppchecker/internal/verbs"
)

// detectInconsistent implements Algorithm 5: a negative sentence in the
// app's policy conflicting with a positive sentence of the same verb
// category in a bundled library's policy, about the same resource.
// Disclaimer clauses suppress the check (§IV-C) when disclaimer
// handling is enabled.
func (c *Checker) detectInconsistent(app *App, r *Report) {
	if len(r.Libs) == 0 || len(app.LibPolicies) == 0 {
		return
	}
	if c.disclaimers && r.Policy.Disclaimer {
		return
	}
	libNames := make([]string, 0, len(r.Libs))
	for _, lib := range r.Libs {
		libNames = append(libNames, lib.Name)
	}
	sort.Strings(libNames)
	for _, libName := range libNames {
		policyText, ok := app.LibPolicies[libName]
		if !ok || policyText == "" {
			continue // no English policy for this lib, as in §V-A
		}
		libAnalysis, cached := c.libCache[policyText]
		if cached {
			c.obs.CacheHit()
		} else {
			c.obs.CacheMiss()
			libAnalysis = c.policyAnalyzer.AnalyzeHTML(policyText)
			c.libCache[policyText] = libAnalysis
		}
		for _, appSt := range r.Policy.Statements {
			// Requirement (2): AppSent negative.
			if !appSt.Negative || appSt.Category == verbs.None {
				continue
			}
			for _, libSt := range libAnalysis.Statements {
				// Requirement (2): LibSent positive; requirement (1):
				// same main-verb category.
				if libSt.Negative || libSt.Category != appSt.Category {
					continue
				}
				// Requirement (3): same resource.
				if res, ok := c.sharedResource(appSt.Resources, libSt.Resources); ok {
					r.Inconsistent = append(r.Inconsistent, InconsistencyFinding{
						Category:    appSt.Category,
						Resource:    res,
						AppSentence: appSt.Sentence,
						LibName:     libName,
						LibSentence: libSt.Sentence,
					})
				}
			}
		}
	}
}

// sharedResource returns the first app resource matching any lib
// resource under the ESA threshold.
func (c *Checker) sharedResource(appRes, libRes []string) (string, bool) {
	for _, ar := range appRes {
		for _, lr := range libRes {
			if c.index.Similarity(ar, lr) >= c.threshold {
				return ar, true
			}
		}
	}
	return "", false
}
