package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Stage names one phase of the checking pipeline, in execution order.
// CheckSafe runs every stage behind panic recovery and cancellation
// checks; a failed stage produces a StageError and the pipeline
// continues with whatever later stages can still use.
type Stage string

// The pipeline stages.
const (
	// StageRead covers loading bundle files from disk. CheckSafe itself
	// never reads files; the corpus runner records read failures under
	// this stage.
	StageRead Stage = "bundle-read"
	// StageExtract converts policy HTML to clean text.
	StageExtract Stage = "html-extract"
	// StagePolicy runs sentence splitting and pattern analysis over the
	// extracted policy text.
	StagePolicy Stage = "policy-nlp"
	// StageDesc analyzes the Google Play description.
	StageDesc Stage = "description"
	// StageDecode covers APK container decoding and unpacking. Like
	// StageRead it happens outside CheckSafe (the App arrives decoded);
	// the corpus runner records decode failures under this stage.
	StageDecode Stage = "apk-decode"
	// StageStatic builds the APG and scans for collection sites.
	StageStatic Stage = "apg-static"
	// StageTaint runs the source→sink taint analysis.
	StageTaint Stage = "taint"
	// StageLibs detects bundled third-party libraries.
	StageLibs Stage = "libdetect"
	// StageDetect runs the three problem detectors.
	StageDetect Stage = "detectors"
	// StageRun covers whole-app failures that no single pipeline stage
	// owns: a worker panic outside CheckSafe, a per-app timeout that
	// exhausted its retries, or a run canceled before the app started.
	StageRun Stage = "corpus-run"
)

// Detector sub-span names. The three detectors run inside StageDetect;
// each reports its own span (parented on the stage) to the observer so
// per-detector latency is visible separately from the stage total.
const (
	SpanDetectIncomplete   = "detect-incomplete"
	SpanDetectIncorrect    = "detect-incorrect"
	SpanDetectInconsistent = "detect-inconsistent"
)

// StageError is a typed pipeline failure: which stage failed, for which
// app, and whether the error was recovered from a panic.
type StageError struct {
	Stage Stage
	App   string
	Err   error
	// Recovered is true when the error was converted from a panic
	// rather than returned by the stage.
	Recovered bool
}

// Error implements the error interface.
func (e *StageError) Error() string {
	kind := "failed"
	if e.Recovered {
		kind = "panicked"
	}
	return fmt.Sprintf("stage %s %s for app %s: %v", e.Stage, kind, e.App, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// MarshalJSON renders the wrapped error as a string; the error
// interface would otherwise marshal as an empty object.
func (e *StageError) MarshalJSON() ([]byte, error) {
	msg := ""
	if e.Err != nil {
		msg = e.Err.Error()
	}
	return json.Marshal(struct {
		Stage     Stage
		App       string
		Err       string
		Recovered bool
	}{e.Stage, e.App, msg, e.Recovered})
}

// degradedStages renders a comma-separated list of the failed stages,
// deduplicated: a stage that failed more than once (e.g. two missing
// required files, both bundle-read) is listed once.
func degradedStages(errs []*StageError) string {
	names := make([]string, 0, len(errs))
	seen := make(map[Stage]bool, len(errs))
	for _, e := range errs {
		if seen[e.Stage] {
			continue
		}
		seen[e.Stage] = true
		names = append(names, string(e.Stage))
	}
	return strings.Join(names, ", ")
}
