package core

import (
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/verbs"
)

// TestSynonymExpansionRecoversDisplayFN reproduces and then fixes the
// paper's §V-E false negative: "we will not display any of your
// personal information" (com.starlitt.disableddating) is missed by the
// default verb set and caught with synonym expansion.
func TestSynonymExpansionRecoversDisplayFN(t *testing.T) {
	app := &App{
		Name:        "com.starlitt.disableddating",
		PolicyHTML:  `<p>We will not display any of your personal information.</p>`,
		Description: "Meet new people.",
		APK:         mustAPK(t, "com.starlitt.disableddating", nil, templeRunAsm, apk.Component{Name: "com.starlitt.disableddating.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may share your personal information with our partners.</p>`,
		},
	}
	// Default configuration: the sentence is invisible (the FN).
	r := NewChecker().Check(app)
	if len(r.Inconsistent) != 0 {
		t.Fatalf("default config detected the display sentence: %+v", r.Inconsistent)
	}
	// Synonym expansion: "display" joins the disclose verbs.
	r = NewChecker(WithSynonymExpansion()).Check(app)
	if len(r.Inconsistent) != 1 || !r.Inconsistent[0].Disclose() {
		t.Fatalf("synonym expansion missed the conflict: %+v", r.Inconsistent)
	}
}

// TestSynonymExpansionCheckVerb covers the collect-side synonym.
func TestSynonymExpansionCheckVerb(t *testing.T) {
	app := &App{
		Name:        "com.example.checker",
		PolicyHTML:  `<p>We will never check your location information.</p>`,
		Description: "A game.",
		APK:         mustAPK(t, "com.example.checker", nil, templeRunAsm, apk.Component{Name: "com.example.checker.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may collect your location information.</p>`,
		},
	}
	if r := NewChecker().Check(app); len(r.Inconsistent) != 0 {
		t.Fatalf("default config detected check-verb sentence: %+v", r.Inconsistent)
	}
	r := NewChecker(WithSynonymExpansion()).Check(app)
	if len(r.Inconsistent) != 1 || r.Inconsistent[0].Category != verbs.Collect {
		t.Fatalf("synonym expansion missed the check conflict: %+v", r.Inconsistent)
	}
}

// TestConstraintAnalysisConsentException: "we will not share your
// personal information without your consent" is a conditional
// permission, not a denial — with the extension it stops conflicting
// with lib policies.
func TestConstraintAnalysisConsentException(t *testing.T) {
	app := &App{
		Name:        "com.example.consent",
		PolicyHTML:  `<p>We will not share your personal information without your consent.</p>`,
		Description: "A game.",
		APK:         mustAPK(t, "com.example.consent", nil, templeRunAsm, apk.Component{Name: "com.example.consent.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may share your personal information with our partners.</p>`,
		},
	}
	// Default: the sentence lands in NotDisclose and conflicts (the FP
	// mode the extension removes).
	r := NewChecker().Check(app)
	if len(r.Inconsistent) != 1 {
		t.Fatalf("default config did not flag the consent sentence: %+v", r.Inconsistent)
	}
	// Extension: the denial becomes a conditional permission.
	r = NewChecker(WithConstraintAnalysis()).Check(app)
	if len(r.Inconsistent) != 0 {
		t.Fatalf("constraint analysis kept the conflict: %+v", r.Inconsistent)
	}
	found := false
	for _, st := range r.Policy.Statements {
		if st.Conditional && !st.Negative && st.Category == verbs.Disclose {
			found = true
		}
	}
	if !found {
		t.Fatalf("conditional statement not recorded: %+v", r.Policy.Statements)
	}
	// The resource now counts as covered.
	if len(r.Policy.Disclose) == 0 {
		t.Fatalf("conditional permission missing from positive sets")
	}
}

// TestConstraintAnalysisPlainNegationUnchanged: the extension must not
// weaken genuine denials.
func TestConstraintAnalysisPlainNegationUnchanged(t *testing.T) {
	app := &App{
		Name:        "com.example.plaindeny",
		PolicyHTML:  `<p>We will not share your personal information.</p>`,
		Description: "A game.",
		APK:         mustAPK(t, "com.example.plaindeny", nil, templeRunAsm, apk.Component{Name: "com.example.plaindeny.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may share your personal information with our partners.</p>`,
		},
	}
	r := NewChecker(WithConstraintAnalysis()).Check(app)
	if len(r.Inconsistent) != 1 {
		t.Fatalf("plain denial no longer conflicts: %+v", r.Inconsistent)
	}
}
