package core

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"ppchecker/internal/esa"
	"ppchecker/internal/obs"
	"ppchecker/internal/policy"
)

// AnalysisCache memoizes library-policy analyses by policy text. The
// same ~81 library policies recur across a whole corpus, so a cache
// shared by every worker analyzes each unique policy text exactly once
// per run instead of once per worker.
//
// The cache is concurrency-safe and single-flight: when several
// workers ask for the same uncached text at once, one runs the
// analysis and the rest block until its result is ready, then share
// it. Entries are never evicted — the key space is the fixed library
// inventory, bounded by construction.
//
// Ownership contract: the runner (eval.EvaluateCorpusRobust and
// friends) constructs one cache per run and hands it to every worker's
// Checker via WithSharedAnalysisCache. A cache must only be shared
// between checkers with an identical policy-analyzer configuration —
// the cached Analysis is whatever the first checker's analyzer
// produced.
type AnalysisCache struct {
	entries sync.Map // policy text -> *cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64

	// backing, when non-nil, is a remote read-through tier consulted
	// on a local miss before computing, and written through (best
	// effort) after a local compute. See CacheBacking.
	backing     CacheBacking
	remoteHits  atomic.Int64
	remoteFails atomic.Int64
}

// CacheBacking is an optional remote tier behind an AnalysisCache —
// in the distributed topology, a consistent-hash-sharded artifact
// service hosted by the coordinator. Load returns the serialized
// analysis for a policy text, or false on miss OR error: the cache
// cannot tell the difference and does not need to, it just computes
// locally, so a dead shard degrades throughput, never correctness.
// Store is best-effort write-through; implementations swallow their
// own errors. Both must be safe for concurrent use.
//
// The key handed to Load/Store is the raw policy text; implementations
// are expected to content-address it (and bind any config namespace)
// themselves. Like local sharing, a backing must only ever be shared
// between checkers with an identical policy-analyzer configuration.
type CacheBacking interface {
	Load(key string) ([]byte, bool)
	Store(key string, data []byte)
}

// NewBackedAnalysisCache builds a cache with a remote read-through
// tier behind it.
func NewBackedAnalysisCache(b CacheBacking) *AnalysisCache {
	return &AnalysisCache{backing: b}
}

// cacheEntry is a single-flight latch for one policy text. It is NOT
// a sync.Once: Once marks itself done even when its function panics,
// which would leave analysis permanently nil while every later Get
// reports a cache hit — in a long-lived server one bad library policy
// would poison that key forever. Instead the entry's mutex is held
// for the duration of the compute, and a panicking compute abandons
// the entry (failed=true, removed from the map) so the next caller
// re-arms the key with a fresh entry.
type cacheEntry struct {
	mu       sync.Mutex
	done     bool
	failed   bool
	analysis *policy.Analysis
}

// NewAnalysisCache builds an empty shared cache.
func NewAnalysisCache() *AnalysisCache { return &AnalysisCache{} }

// Get returns the analysis for key, computing it at most once across
// all concurrent callers. It reports whether the value was served from
// cache (false for each caller whose compute ran — exactly once per
// key unless a compute panics, in which case the key is re-armed and
// a later caller computes again).
//
// A panic in compute propagates to its caller (the pipeline's stage
// recovery turns it into a degraded stage); concurrent waiters on the
// same key do not observe the panic — they retry against the re-armed
// key, and one of them becomes the new computer.
func (c *AnalysisCache) Get(key string, compute func() *policy.Analysis) (*policy.Analysis, bool) {
	for {
		v, _ := c.entries.LoadOrStore(key, &cacheEntry{})
		e := v.(*cacheEntry)
		e.mu.Lock()
		if e.done {
			e.mu.Unlock()
			c.hits.Add(1)
			return e.analysis, true
		}
		if e.failed {
			// A previous computer panicked and abandoned this entry
			// after we loaded it; it is already gone from the map.
			// Retry: LoadOrStore will install a fresh entry.
			e.mu.Unlock()
			continue
		}
		// This caller computes, holding the entry lock so concurrent
		// callers of the same key block until the result (or the
		// abandonment) is decided — the single-flight property. With a
		// backing configured, the remote tier is consulted first —
		// still under the entry lock, so a whole worker fleet asking
		// for the same cold key issues one remote read, not N.
		completed := false
		remote := false
		func() {
			defer func() {
				if !completed {
					e.failed = true
					c.entries.CompareAndDelete(key, v)
					e.mu.Unlock()
				}
			}()
			if a, ok := c.loadRemote(key); ok {
				e.analysis = a
				remote = true
			} else {
				e.analysis = compute()
				c.storeRemote(key, e.analysis)
			}
			completed = true
		}()
		e.done = true
		e.mu.Unlock()
		if remote {
			c.hits.Add(1)
			return e.analysis, true
		}
		c.misses.Add(1)
		return e.analysis, false
	}
}

// loadRemote asks the backing for a serialized analysis. Any failure —
// transport, decode, no backing at all — is a miss; the caller falls
// back to local compute, so a dead or corrupt shard degrades rather
// than fails.
func (c *AnalysisCache) loadRemote(key string) (*policy.Analysis, bool) {
	if c.backing == nil {
		return nil, false
	}
	data, ok := c.backing.Load(key)
	if !ok {
		return nil, false
	}
	var a policy.Analysis
	if err := json.Unmarshal(data, &a); err != nil {
		c.remoteFails.Add(1)
		return nil, false
	}
	c.remoteHits.Add(1)
	return &a, true
}

// storeRemote writes a locally computed analysis through to the
// backing, best effort. A nil analysis (a policy that analyzes to
// nothing) is not written: nil round-trips ambiguously through JSON
// and recomputing it is free.
func (c *AnalysisCache) storeRemote(key string, a *policy.Analysis) {
	if c.backing == nil || a == nil {
		return
	}
	data, err := json.Marshal(a)
	if err != nil {
		c.remoteFails.Add(1)
		return
	}
	c.backing.Store(key, data)
}

// BackingStats returns the remote tier's serve count and its
// decode/encode failure count (zero without a backing).
func (c *AnalysisCache) BackingStats() (remoteHits, remoteFails int64) {
	return c.remoteHits.Load(), c.remoteFails.Load()
}

// Stats returns the cumulative hit and miss counts. Misses equal the
// number of analyses actually performed.
func (c *AnalysisCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of unique policy texts seen.
func (c *AnalysisCache) Len() int {
	n := 0
	c.entries.Range(func(any, any) bool { n++; return true })
	return n
}

// RecordESACacheCounters folds an ESA cache-stats delta (taken with
// esa.AggregateCacheStats around a run) into the observer's named
// counters, so the -metrics exposition shows the interpret-memo and
// vector-pool economics. Nil-safe on the observer.
func RecordESACacheCounters(o *obs.Observer, d esa.CacheStats) {
	o.AddCounter("esa-interpret-hits", d.Hits)
	o.AddCounter("esa-interpret-misses", d.Misses)
	o.AddCounter("esa-interpret-evictions", d.Evictions)
	o.AddCounter("esa-vec-pool-gets", d.PoolGets)
	o.AddCounter("esa-vec-pool-allocs", d.PoolNews)
	o.AddCounter("esa-remote-hits", d.RemoteHits)
	o.AddCounter("esa-remote-fails", d.RemoteFails)
}
