package core

import (
	"sync"
	"sync/atomic"

	"ppchecker/internal/esa"
	"ppchecker/internal/obs"
	"ppchecker/internal/policy"
)

// AnalysisCache memoizes library-policy analyses by policy text. The
// same ~81 library policies recur across a whole corpus, so a cache
// shared by every worker analyzes each unique policy text exactly once
// per run instead of once per worker.
//
// The cache is concurrency-safe and single-flight: when several
// workers ask for the same uncached text at once, one runs the
// analysis and the rest block until its result is ready, then share
// it. Entries are never evicted — the key space is the fixed library
// inventory, bounded by construction.
//
// Ownership contract: the runner (eval.EvaluateCorpusRobust and
// friends) constructs one cache per run and hands it to every worker's
// Checker via WithSharedAnalysisCache. A cache must only be shared
// between checkers with an identical policy-analyzer configuration —
// the cached Analysis is whatever the first checker's analyzer
// produced.
type AnalysisCache struct {
	entries sync.Map // policy text -> *cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	once     sync.Once
	analysis *policy.Analysis
}

// NewAnalysisCache builds an empty shared cache.
func NewAnalysisCache() *AnalysisCache { return &AnalysisCache{} }

// Get returns the analysis for key, computing it at most once across
// all concurrent callers. It reports whether the value was served from
// cache (false exactly once per key, for the caller whose compute
// ran).
func (c *AnalysisCache) Get(key string, compute func() *policy.Analysis) (*policy.Analysis, bool) {
	v, _ := c.entries.LoadOrStore(key, &cacheEntry{})
	e := v.(*cacheEntry)
	ran := false
	e.once.Do(func() {
		e.analysis = compute()
		ran = true
	})
	if ran {
		c.misses.Add(1)
		return e.analysis, false
	}
	c.hits.Add(1)
	return e.analysis, true
}

// Stats returns the cumulative hit and miss counts. Misses equal the
// number of analyses actually performed.
func (c *AnalysisCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of unique policy texts seen.
func (c *AnalysisCache) Len() int {
	n := 0
	c.entries.Range(func(any, any) bool { n++; return true })
	return n
}

// RecordESACacheCounters folds an ESA cache-stats delta (taken with
// esa.AggregateCacheStats around a run) into the observer's named
// counters, so the -metrics exposition shows the interpret-memo and
// vector-pool economics. Nil-safe on the observer.
func RecordESACacheCounters(o *obs.Observer, d esa.CacheStats) {
	o.AddCounter("esa-interpret-hits", d.Hits)
	o.AddCounter("esa-interpret-misses", d.Misses)
	o.AddCounter("esa-interpret-evictions", d.Evictions)
	o.AddCounter("esa-vec-pool-gets", d.PoolGets)
	o.AddCounter("esa-vec-pool-allocs", d.PoolNews)
}
