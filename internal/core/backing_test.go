package core

import (
	"sync"
	"testing"

	"ppchecker/internal/policy"
)

// mapBacking is an in-memory CacheBacking; failGets makes every Load
// report a miss, the contract a dead remote shard degrades to.
type mapBacking struct {
	mu       sync.Mutex
	m        map[string][]byte
	loads    int
	stores   int
	failGets bool
}

func (b *mapBacking) Load(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	if b.failGets {
		return nil, false
	}
	data, ok := b.m[key]
	return data, ok
}

func (b *mapBacking) Store(key string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = append([]byte(nil), data...)
}

func TestBackedAnalysisCacheReadThrough(t *testing.T) {
	backing := &mapBacking{m: map[string][]byte{}}
	a := NewBackedAnalysisCache(backing)

	computes := 0
	compute := func() *policy.Analysis {
		computes++
		return &policy.Analysis{Collect: []string{"location"}, Disclaimer: true}
	}

	// Cold everywhere: local miss, remote miss, compute, write-through.
	got, cached := a.Get("policy-text", compute)
	if cached || computes != 1 || got == nil || !got.Disclaimer {
		t.Fatalf("cold get: cached=%v computes=%d got=%+v", cached, computes, got)
	}
	if backing.stores != 1 {
		t.Fatalf("stores = %d, want 1 (write-through after compute)", backing.stores)
	}

	// A second cache (another worker process) sharing the backing
	// serves the same key remotely, without computing.
	b := NewBackedAnalysisCache(backing)
	got2, cached2 := b.Get("policy-text", func() *policy.Analysis {
		t.Fatal("remote hit must not compute")
		return nil
	})
	if !cached2 || got2 == nil || !got2.Disclaimer || len(got2.Collect) != 1 || got2.Collect[0] != "location" {
		t.Fatalf("remote get: cached=%v got=%+v", cached2, got2)
	}
	if hits, fails := b.BackingStats(); hits != 1 || fails != 0 {
		t.Fatalf("backing stats = %d hits, %d fails", hits, fails)
	}

	// Local entries still short-circuit: no second remote load.
	loadsBefore := backing.loads
	if _, cached := b.Get("policy-text", compute); !cached {
		t.Fatal("local re-get must hit")
	}
	if backing.loads != loadsBefore {
		t.Fatal("local hit must not consult the backing")
	}
}

func TestBackedAnalysisCacheDeadShardFallsBack(t *testing.T) {
	backing := &mapBacking{m: map[string][]byte{}, failGets: true}
	a := NewBackedAnalysisCache(backing)
	computes := 0
	got, cached := a.Get("k", func() *policy.Analysis {
		computes++
		return &policy.Analysis{Use: []string{"contacts"}}
	})
	if cached || computes != 1 || got == nil {
		t.Fatalf("dead shard: cached=%v computes=%d", cached, computes)
	}
}

func TestBackedAnalysisCacheCorruptArtifactIsAMiss(t *testing.T) {
	backing := &mapBacking{m: map[string][]byte{"k": []byte("{torn")}}
	a := NewBackedAnalysisCache(backing)
	computes := 0
	_, cached := a.Get("k", func() *policy.Analysis {
		computes++
		return &policy.Analysis{}
	})
	if cached || computes != 1 {
		t.Fatalf("corrupt artifact: cached=%v computes=%d", cached, computes)
	}
	if _, fails := a.BackingStats(); fails != 1 {
		t.Fatalf("remote fails = %d, want 1", fails)
	}
}
