package core

import (
	"fmt"
	"strings"
	"time"

	"ppchecker/internal/desc"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/policy"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/static"
	"ppchecker/internal/verbs"
)

// Via records which evidence stream produced a finding.
type Via string

// Evidence streams.
const (
	ViaDescription Via = "description"
	ViaCode        Via = "code"
)

// IncompleteFinding is one missed information record (Algorithms 1–2).
type IncompleteFinding struct {
	Via  Via
	Info sensitive.Info
	// Permissions that imply the info (description findings; Table III).
	Permissions []string
	// Retained marks code findings whose info was also retained (the
	// "32 records of missed information are retained" statistic).
	Retained bool
	// Sources lists the APIs/URIs that collected the info (code
	// findings).
	Sources []string
}

// IncorrectFinding is one contradiction between a negative policy
// statement and observed behaviour (Algorithms 3–4).
type IncorrectFinding struct {
	Via      Via
	Info     sensitive.Info
	Category verbs.Category
	// Sentence is the contradicted negative policy sentence.
	Sentence string
	// Evidence describes the contradicting observation.
	Evidence string
}

// InconsistencyFinding is one app-policy/lib-policy conflict
// (Algorithm 5).
type InconsistencyFinding struct {
	Category    verbs.Category
	Resource    string
	AppSentence string
	LibName     string
	LibSentence string
}

// Disclose reports whether the finding is in the Sents^disclose group
// of Table IV (vs the collect/use/retain group).
func (f InconsistencyFinding) Disclose() bool { return f.Category == verbs.Disclose }

// Report is the output of Checker.Check for one app — the three
// problem lists plus the intermediate analyses (Fig. 4's outputs).
type Report struct {
	App string

	Incomplete   []IncompleteFinding
	Incorrect    []IncorrectFinding
	Inconsistent []InconsistencyFinding

	Policy *policy.Analysis
	Desc   *desc.Result
	Static *static.Result
	Libs   []libdetect.Library

	// Partial marks a degraded report: one or more pipeline stages
	// failed (listed in Degraded) and their findings may be missing.
	Partial bool
	// Degraded lists the stage failures behind a Partial report.
	Degraded []*StageError `json:",omitempty"`

	// Timings records how long each executed pipeline stage took, in
	// execution order. Always populated (no observer required); skipped
	// stages (cancellation, missing inputs) have no entry.
	Timings []StageTiming `json:",omitempty"`
}

// StageTiming is the measured duration of one executed pipeline stage.
type StageTiming struct {
	Stage    Stage
	Duration time.Duration
}

// StageDuration returns the recorded duration for a stage and whether
// the stage ran.
func (r *Report) StageDuration(s Stage) (time.Duration, bool) {
	for _, t := range r.Timings {
		if t.Stage == s {
			return t.Duration, true
		}
	}
	return 0, false
}

// TotalDuration sums the recorded stage durations — the analysis time
// spent on this app (excluding bundle I/O, which happens outside the
// pipeline).
func (r *Report) TotalDuration() time.Duration {
	var d time.Duration
	for _, t := range r.Timings {
		d += t.Duration
	}
	return d
}

// AddDegraded records a stage failure and marks the report partial.
func (r *Report) AddDegraded(e *StageError) {
	r.Partial = true
	r.Degraded = append(r.Degraded, e)
}

// DegradedStage reports whether the named stage failed.
func (r *Report) DegradedStage(s Stage) bool {
	for _, e := range r.Degraded {
		if e.Stage == s {
			return true
		}
	}
	return false
}

// degradedRecovered reports whether the named stage failed through
// panic recovery — its borrowed scratch state may have been abandoned
// mid-mutation and must not be pooled again.
func (r *Report) degradedRecovered(s Stage) bool {
	for _, e := range r.Degraded {
		if e.Stage == s && e.Recovered {
			return true
		}
	}
	return false
}

// HasProblem reports whether any detector fired.
func (r *Report) HasProblem() bool {
	return len(r.Incomplete) > 0 || len(r.Incorrect) > 0 || len(r.Inconsistent) > 0
}

// IncompleteVia returns the incomplete findings from one evidence
// stream.
func (r *Report) IncompleteVia(v Via) []IncompleteFinding {
	var out []IncompleteFinding
	for _, f := range r.Incomplete {
		if f.Via == v {
			out = append(out, f)
		}
	}
	return out
}

// IncorrectVia returns the incorrect findings from one evidence stream.
func (r *Report) IncorrectVia(v Via) []IncorrectFinding {
	var out []IncorrectFinding
	for _, f := range r.Incorrect {
		if f.Via == v {
			out = append(out, f)
		}
	}
	return out
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "app %s:\n", r.App)
	if r.Partial {
		fmt.Fprintf(&b, "  PARTIAL analysis (degraded stages: %s)\n", degradedStages(r.Degraded))
	}
	if !r.HasProblem() {
		b.WriteString("  no problems found\n")
		return b.String()
	}
	for _, f := range r.Incomplete {
		fmt.Fprintf(&b, "  INCOMPLETE (via %s): policy does not mention %q", f.Via, f.Info)
		if len(f.Permissions) > 0 {
			fmt.Fprintf(&b, " (implied by %s)", strings.Join(f.Permissions, ", "))
		}
		if f.Retained {
			b.WriteString(" [retained]")
		}
		b.WriteByte('\n')
		for _, s := range f.Sources {
			fmt.Fprintf(&b, "      source: %s\n", s)
		}
	}
	for _, f := range r.Incorrect {
		fmt.Fprintf(&b, "  INCORRECT (via %s): policy says %q, but %s\n", f.Via, f.Sentence, f.Evidence)
	}
	for _, f := range r.Inconsistent {
		fmt.Fprintf(&b, "  INCONSISTENT (%s, %q): app policy %q vs %s policy %q\n",
			f.Category, f.Resource, f.AppSentence, f.LibName, f.LibSentence)
	}
	return b.String()
}
