package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"

	"ppchecker/internal/apg"
	"ppchecker/internal/htmltext"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/nlp"
	"ppchecker/internal/policy"
	"ppchecker/internal/static"
)

// CheckSafe runs the full pipeline with every stage isolated: panics
// are recovered into StageError values, ctx cancellation/deadline is
// honoured between stages, and a failed stage degrades the report
// instead of aborting it — the detectors still run over whatever
// analyses succeeded, and the report is marked Partial with the list of
// degraded stages.
//
// The returned error is non-nil only for ctx cancellation (the partial
// report is still returned) or a nil app; every per-stage failure is
// reported through Report.Degraded.
func (c *Checker) CheckSafe(ctx context.Context, app *App) (*Report, error) {
	if app == nil {
		return nil, errors.New("core: nil app")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &Report{App: appName(app)}

	// HTML extraction.
	var policyText string
	okExtract := c.stage(ctx, r, StageExtract, func() error {
		if !utf8.ValidString(app.PolicyHTML) {
			return errors.New("policy is not valid UTF-8")
		}
		policyText = htmltext.Extract(app.PolicyHTML)
		if strings.TrimSpace(app.PolicyHTML) != "" && strings.TrimSpace(policyText) == "" {
			return errors.New("no text extracted from non-empty policy HTML")
		}
		return nil
	})

	// Policy NLP.
	policyOK := false
	if okExtract {
		policyOK = c.stage(ctx, r, StagePolicy, func() error {
			if err := nlp.GuardText(policyText); err != nil {
				return err
			}
			r.Policy = c.policyAnalyzer.AnalyzeText(policyText)
			return nil
		})
	}
	if r.Policy == nil {
		// The detectors dereference r.Policy; an empty analysis keeps
		// them nil-safe without inventing statements.
		r.Policy = &policy.Analysis{}
	}

	// Description analysis. A nil Desc is already understood by the
	// detectors as "no description evidence".
	c.stage(ctx, r, StageDesc, func() error {
		r.Desc = c.descAnalyzer.Analyze(app.Description)
		return nil
	})

	// Static analysis over the APK, when present: APG build + site scan
	// first, then taint as a separately-degradable stage.
	if app.APK != nil {
		// The pooled arena feeds both static stages; it is returned
		// only on the clean path — a panicking stage may leave scratch
		// state mid-mutation, and dropping the arena is always safe.
		ar := arenaPool.Get().(*arena)
		arenaOK := true
		var p *apg.APG
		okStatic := c.stage(ctx, r, StageStatic, func() error {
			res, pg, err := static.CollectWith(ctx, app.APK, c.staticOpts, &ar.build)
			if err != nil {
				return err
			}
			r.Static, p = res, pg
			return nil
		})
		arenaOK = arenaOK && !r.degradedRecovered(StageStatic)
		if okStatic {
			c.stage(ctx, r, StageTaint, func() error {
				leaks, err := static.TaintLeaksWith(ctx, p, &ar.taint)
				if err != nil {
					return err
				}
				r.Static.Leaks = leaks
				return nil
			})
			arenaOK = arenaOK && !r.degradedRecovered(StageTaint)
		}
		if arenaOK {
			arenaPool.Put(ar)
		}
		c.stage(ctx, r, StageLibs, func() error {
			if app.APK.Dex == nil {
				return errors.New("no bytecode to scan for libraries")
			}
			r.Libs = libdetect.Detect(app.APK.Dex)
			return nil
		})
	}

	// Detectors. When the policy analysis itself failed, the policy
	// detectors would report every collected info as unmentioned —
	// noise, not findings — so they are suppressed and the degradation
	// already recorded for the policy stage stands. Each detector gets
	// its own sub-span under the detectors stage.
	if policyOK {
		c.stage(ctx, r, StageDetect, func() error {
			c.detectorSpan(r, SpanDetectIncomplete, func() { c.detectIncomplete(app, r) })
			c.detectorSpan(r, SpanDetectIncorrect, func() { c.detectIncorrect(app, r) })
			c.detectorSpan(r, SpanDetectInconsistent, func() { c.detectInconsistent(app, r) })
			return nil
		})
	}

	if err := ctx.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// stage runs one pipeline stage behind panic recovery and a
// cancellation check, recording any failure on the report. It reports
// whether the stage completed successfully. Every executed stage is
// timed: the duration lands on Report.Timings and, when an observer is
// attached, in its per-stage metrics and trace sink.
func (c *Checker) stage(ctx context.Context, r *Report, s Stage, fn func() error) bool {
	if err := ctx.Err(); err != nil {
		r.AddDegraded(&StageError{Stage: s, App: r.App, Err: err})
		return false
	}
	sp := c.obs.Start(string(s), r.App, "")
	err, recovered := runRecovered(fn)
	d := sp.End(err, recovered)
	r.Timings = append(r.Timings, StageTiming{Stage: s, Duration: d})
	if err != nil {
		r.AddDegraded(&StageError{Stage: s, App: r.App, Err: err, Recovered: recovered})
		return false
	}
	return true
}

// detectorSpan times one detector as a sub-span of the detectors
// stage. Detectors run inside the stage's panic recovery, so the span
// itself adds no error handling.
func (c *Checker) detectorSpan(r *Report, name string, fn func()) {
	sp := c.obs.Start(name, r.App, string(StageDetect))
	fn()
	sp.End(nil, false)
}

// runRecovered invokes fn, converting a panic into an error. Note that
// stack exhaustion is not recoverable in Go; the size guards in apg,
// taint, and nlp exist precisely so no input can reach that state.
func runRecovered(fn func() error) (err error, recovered bool) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
			recovered = true
		}
	}()
	return fn(), false
}
