package core

import (
	"context"
	"errors"
	"strings"
	"unicode/utf8"

	"ppchecker/internal/apk"
	"ppchecker/internal/desc"
	"ppchecker/internal/htmltext"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/nlp"
	"ppchecker/internal/policy"
	"ppchecker/internal/static"
)

// substages.go exposes the CheckSafe pipeline stages as standalone
// computations, so callers that cache stage outputs (the longitudinal
// engine in internal/longi) can recompute exactly one stage from its
// inputs. Each method matches the corresponding CheckSafe stage
// byte-for-byte on success; failure handling (panic recovery, report
// degradation) stays with the caller, which knows whether a failed
// stage should poison a cache entry (it must not).

// AppName exposes the report-name rule used by CheckSafe (explicit
// name, else manifest package, else a placeholder).
func AppName(app *App) string { return appName(app) }

// PolicyStage runs HTML extraction plus policy NLP over raw policy
// HTML, the combined StageExtract + StagePolicy computation. The
// result depends only on the policy bytes and the checker's analyzer
// configuration.
func (c *Checker) PolicyStage(policyHTML string) (*policy.Analysis, error) {
	if !utf8.ValidString(policyHTML) {
		return nil, errors.New("policy is not valid UTF-8")
	}
	policyText := htmltext.Extract(policyHTML)
	if strings.TrimSpace(policyHTML) != "" && strings.TrimSpace(policyText) == "" {
		return nil, errors.New("no text extracted from non-empty policy HTML")
	}
	if err := nlp.GuardText(policyText); err != nil {
		return nil, err
	}
	return c.policyAnalyzer.AnalyzeText(policyText), nil
}

// DescStage runs the description analysis, the StageDesc computation.
func (c *Checker) DescStage(description string) *desc.Result {
	return c.descAnalyzer.Analyze(description)
}

// StaticStage runs static collection plus taint tracking over an APK,
// the combined StageStatic + StageTaint computation. Unlike CheckSafe —
// which keeps the collected sites when only taint fails — a failure in
// either half fails the whole stage, because a cacheable artifact must
// be complete or absent.
func (c *Checker) StaticStage(ctx context.Context, a *apk.APK) (*static.Result, error) {
	if a == nil {
		return nil, errors.New("core: nil apk")
	}
	res, p, err := static.Collect(ctx, a, c.staticOpts)
	if err != nil {
		return nil, err
	}
	leaks, err := static.TaintLeaks(ctx, p)
	if err != nil {
		return nil, err
	}
	res.Leaks = leaks
	return res, nil
}

// LibsStage runs third-party library detection, the StageLibs
// computation.
func (c *Checker) LibsStage(a *apk.APK) ([]libdetect.Library, error) {
	if a == nil || a.Dex == nil {
		return nil, errors.New("no bytecode to scan for libraries")
	}
	return libdetect.Detect(a.Dex), nil
}

// DetectStage runs the three finding detectors over the analyses
// already assembled on r (Policy, Desc, Static, Libs), appending to the
// report's finding slices — the StageDetect computation. r.Policy must
// be non-nil. As in CheckSafe, each detector gets its own sub-span.
func (c *Checker) DetectStage(app *App, r *Report) {
	c.detectorSpan(r, SpanDetectIncomplete, func() { c.detectIncomplete(app, r) })
	c.detectorSpan(r, SpanDetectIncorrect, func() { c.detectIncorrect(app, r) })
	c.detectorSpan(r, SpanDetectInconsistent, func() { c.detectInconsistent(app, r) })
}
