package core_test

import (
	"context"
	"sync"
	"testing"

	"ppchecker/internal/core"
)

// TestCheckSafeConcurrentArenaReuse hammers one shared Checker from
// many goroutines on the same app. Every CheckSafe call grabs a pooled
// per-app arena (graph, taint scratch, collection-scan register maps,
// parse buffers), so goroutines constantly exchange recycled state
// through the pool; any reset that leaks data across apps or any write
// to shared frozen structures shows up as a report mismatch here — or
// as a data race under deflake_stress.sh's -race run.
func TestCheckSafeConcurrentArenaReuse(t *testing.T) {
	app := testApp(t)
	checker := core.NewChecker()
	ctx := context.Background()
	want, err := checker.CheckSafe(ctx, app)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := want.Summary()

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r, err := checker.CheckSafe(ctx, app)
				if err != nil {
					errs <- "CheckSafe: " + err.Error()
					return
				}
				if r.Partial {
					errs <- "clean app degraded under concurrency"
					return
				}
				if got := r.Summary(); got != wantSum {
					errs <- "summary diverged under concurrency:\n" + got + "\nvs\n" + wantSum
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}
