package core_test

import (
	"context"
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/dex"
	"ppchecker/internal/nlp"
	"ppchecker/internal/sensitive"

	"strings"
)

// testApp builds a small valid app: the code reads location, the
// policy discloses it, so the full pipeline runs with no findings.
func testApp(t *testing.T) *core.App {
	t.Helper()
	d, err := dex.Assemble(`
.class Lcom/example/safe/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package:     "com.example.safe",
		Permissions: []apk.Permission{{Name: sensitive.PermFineLocation}},
		Application: apk.Application{Activities: []apk.Component{{Name: "com.example.safe.Main"}}},
	}
	return &core.App{
		Name:        "com.example.safe",
		PolicyHTML:  "<html><body><p>We collect your location information.</p></body></html>",
		Description: "A handy example app.",
		APK:         apk.New(m, d),
	}
}

// TestCheckSafeParity: on a valid app, CheckSafe must be exactly Check
// — same findings, no degradation. Check itself delegates to
// CheckSafe, so this pins the never-regress contract for clean input.
func TestCheckSafeParity(t *testing.T) {
	app := testApp(t)
	r1 := core.NewChecker().Check(app)
	r2, err := core.NewChecker().CheckSafe(context.Background(), app)
	if err != nil {
		t.Fatalf("CheckSafe: %v", err)
	}
	if r2.Partial {
		t.Fatalf("clean app degraded: %v", r2.Degraded)
	}
	if r1.Summary() != r2.Summary() {
		t.Fatalf("Check and CheckSafe disagree:\n%s\nvs\n%s", r1.Summary(), r2.Summary())
	}
}

func TestCheckSafeNilApp(t *testing.T) {
	if _, err := core.NewChecker().CheckSafe(context.Background(), nil); err == nil {
		t.Fatal("nil app accepted")
	}
}

// TestCheckSafeCanceled: a pre-canceled context yields a partial
// report (every stage degraded with the context error) plus the
// context error itself, instead of hanging or panicking.
func TestCheckSafeCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := core.NewChecker().CheckSafe(ctx, testApp(t))
	if err == nil {
		t.Fatal("no error from canceled context")
	}
	if r == nil || !r.Partial {
		t.Fatalf("canceled run not partial: %+v", r)
	}
	for _, e := range r.Degraded {
		if !strings.Contains(e.Err.Error(), "context canceled") {
			t.Fatalf("stage %s degraded with %v, want context error", e.Stage, e.Err)
		}
	}
}

// TestCheckSafePanicIsolated: a panic inside one stage (here a nil
// method planted in the dex, which the APG walk dereferences) becomes
// a Recovered StageError while the rest of the pipeline completes.
func TestCheckSafePanicIsolated(t *testing.T) {
	app := testApp(t)
	cls := app.APK.Dex.Classes[0]
	cls.Methods = append(cls.Methods, nil)
	r, err := core.NewChecker().CheckSafe(context.Background(), app)
	if err != nil {
		t.Fatalf("CheckSafe: %v", err)
	}
	if !r.Partial || !r.DegradedStage(core.StageStatic) {
		t.Fatalf("static panic not recorded: partial=%v degraded=%v", r.Partial, r.Degraded)
	}
	var found bool
	for _, e := range r.Degraded {
		if e.Stage == core.StageStatic && e.Recovered {
			found = true
		}
	}
	if !found {
		t.Fatalf("static failure not marked Recovered: %v", r.Degraded)
	}
	// The policy side of the pipeline survived.
	if r.DegradedStage(core.StagePolicy) || r.Policy == nil {
		t.Fatal("policy stage should be unaffected by a static panic")
	}
}

// TestCheckSafePolicyBombSuppressesDetectors: a policy that trips the
// NLP tractability guard degrades the policy stage, and the detectors
// are suppressed (their output would be all-noise) rather than run.
func TestCheckSafePolicyBombSuppressesDetectors(t *testing.T) {
	app := testApp(t)
	app.PolicyHTML = strings.Repeat("endless tokens without any boundary ", nlp.MaxSentenceBytes/36+64)
	r, err := core.NewChecker().CheckSafe(context.Background(), app)
	if err != nil {
		t.Fatalf("CheckSafe: %v", err)
	}
	if !r.Partial || !r.DegradedStage(core.StagePolicy) {
		t.Fatalf("policy bomb not degraded: %v", r.Degraded)
	}
	if r.HasProblem() {
		t.Fatalf("detectors ran on a failed policy analysis: %s", r.Summary())
	}
	if r.Policy == nil {
		t.Fatal("Policy must stay non-nil for downstream consumers")
	}
}

// TestCheckSafeEmptyExtraction: markup that swallows the whole
// document (an unclosed <script>) fails the extract stage explicitly.
func TestCheckSafeEmptyExtraction(t *testing.T) {
	app := testApp(t)
	app.PolicyHTML = "<script>" + app.PolicyHTML
	r, err := core.NewChecker().CheckSafe(context.Background(), app)
	if err != nil {
		t.Fatalf("CheckSafe: %v", err)
	}
	if !r.DegradedStage(core.StageExtract) {
		t.Fatalf("empty extraction not degraded: %v", r.Degraded)
	}
}

// TestCheckSafeBadUTF8 covers the invalid-encoding path of the extract
// stage.
func TestCheckSafeBadUTF8(t *testing.T) {
	app := testApp(t)
	app.PolicyHTML = "we collect \xff\xfe location"
	r, err := core.NewChecker().CheckSafe(context.Background(), app)
	if err != nil {
		t.Fatalf("CheckSafe: %v", err)
	}
	if !r.DegradedStage(core.StageExtract) {
		t.Fatalf("invalid UTF-8 not degraded: %v", r.Degraded)
	}
}
