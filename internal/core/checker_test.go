package core

import (
	"strings"
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/verbs"
)

func mustAPK(t *testing.T, pkg string, perms []string, asm string, comps ...apk.Component) *apk.APK {
	t.Helper()
	d, err := dex.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{Package: pkg}
	for _, p := range perms {
		m.Permissions = append(m.Permissions, apk.Permission{Name: p})
	}
	m.Application.Activities = comps
	return apk.New(m, d)
}

// TestIncompleteDooing reproduces the §II-B com.dooing.dooing case:
// location in description and code, absent from the policy.
func TestIncompleteDooing(t *testing.T) {
	app := &App{
		Name: "com.dooing.dooing",
		PolicyHTML: `<html><body>
<p>We may collect your email address when you create an account.</p>
<p>We will use your name to personalize the service.</p>
</body></html>`,
		Description: "Location aware tasks will help you to utilize your field force in optimum way.",
		APK: mustAPK(t, "com.dooing.dooing", []string{sensitive.PermFineLocation}, `
.class Lcom/dooing/dooing/ee; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-virtual {v0}, Landroid/location/Location;->getLongitude()D -> v2
    return-void
.end method
.end class
`, apk.Component{Name: "com.dooing.dooing.ee"}),
	}
	r := NewChecker().Check(app)
	if !r.HasProblem() {
		t.Fatal("no problem found")
	}
	descFindings := r.IncompleteVia(ViaDescription)
	if len(descFindings) != 1 || descFindings[0].Info != sensitive.InfoLocation {
		t.Fatalf("description findings = %+v", descFindings)
	}
	codeFindings := r.IncompleteVia(ViaCode)
	if len(codeFindings) != 1 || codeFindings[0].Info != sensitive.InfoLocation {
		t.Fatalf("code findings = %+v", codeFindings)
	}
	if len(codeFindings[0].Sources) == 0 {
		t.Fatal("no sources recorded")
	}
}

// TestCompletePolicyNoFindings: an app whose policy covers its
// behaviour is clean.
func TestCompletePolicyNoFindings(t *testing.T) {
	app := &App{
		Name: "com.example.clean",
		PolicyHTML: `<p>We may collect your location to provide local results.</p>
<p>We may collect your email address when you register.</p>`,
		Description: "Find places near you with live navigation and maps.",
		APK: mustAPK(t, "com.example.clean", []string{sensitive.PermFineLocation}, `
.class Lcom/example/clean/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.clean.Main"}),
	}
	r := NewChecker().Check(app)
	if r.HasProblem() {
		t.Fatalf("unexpected findings: %s", r.Summary())
	}
}

// TestIncorrectEasyxapp reproduces §II-B/§V-D: policy says "we will
// not store your real phone number, name and contacts", code queries
// contacts and logs them.
func TestIncorrectEasyxapp(t *testing.T) {
	app := &App{
		Name:        "com.easyxapp.secret",
		PolicyHTML:  `<p>We will not store your real phone number, name and contacts.</p>`,
		Description: "Share secrets anonymously with people around you.",
		APK: mustAPK(t, "com.easyxapp.secret", []string{sensitive.PermReadContacts}, `
.class Lcom/easyxapp/secret/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    sget v1, Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;
    invoke-virtual {v0, v1}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v2
    invoke-static {v3, v2}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.easyxapp.secret.Main"}),
	}
	r := NewChecker().Check(app)
	codeFindings := r.IncorrectVia(ViaCode)
	if len(codeFindings) == 0 {
		t.Fatalf("no incorrect findings; report: %s", r.Summary())
	}
	foundRetain := false
	for _, f := range codeFindings {
		if f.Category == verbs.Retain && f.Info == sensitive.InfoContact {
			foundRetain = true
			if !strings.Contains(f.Evidence, "path from") {
				t.Errorf("evidence = %q", f.Evidence)
			}
		}
	}
	if !foundRetain {
		t.Fatalf("retain contradiction missing: %+v", codeFindings)
	}
}

// TestIncorrectBirthdaylist reproduces §V-D: the policy denies
// collecting contacts while the description (and code) rely on them.
func TestIncorrectBirthdaylist(t *testing.T) {
	app := &App{
		Name:        "com.marcow.birthdaylist",
		PolicyHTML:  `<p>We are not collecting your date of birth, phone number, name or other personal information, nor those of your contacts.</p>`,
		Description: "This app synchronizes all birthdays with your contacts list and facebook.",
		APK: mustAPK(t, "com.marcow.birthdaylist", []string{sensitive.PermReadContacts}, `
.class Lcom/marcow/birthdaylist/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    const-string v1, "content://com.android.contacts"
    invoke-static {v1}, Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri; -> v2
    invoke-virtual {v0, v2}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v3
    return-void
.end method
.end class
`, apk.Component{Name: "com.marcow.birthdaylist.Main"}),
	}
	r := NewChecker().Check(app)
	if len(r.IncorrectVia(ViaDescription)) == 0 {
		t.Fatalf("description contradiction missing: %s", r.Summary())
	}
	if len(r.IncorrectVia(ViaCode)) == 0 {
		t.Fatalf("code contradiction missing: %s", r.Summary())
	}
}

const templeRunAsm = `
.class Lcom/imangi/templerun2/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    return-void
.end method
.end class
.class Lcom/unity3d/player/UnityPlayer;
.method onClick(Landroid/view/View;)V regs=4
    return-void
.end method
.end class
`

// TestInconsistentTempleRun reproduces Fig. 3: the app policy denies
// using location while the bundled Unity3d policy collects it.
func TestInconsistentTempleRun(t *testing.T) {
	app := &App{
		Name:        "com.imangi.templerun2",
		PolicyHTML:  `<p>We will not collect your location information.</p>`,
		Description: "Run, jump and slide through ancient temples.",
		APK:         mustAPK(t, "com.imangi.templerun2", nil, templeRunAsm, apk.Component{Name: "com.imangi.templerun2.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may receive your location information to improve our services.</p>`,
		},
	}
	r := NewChecker().Check(app)
	if len(r.Inconsistent) != 1 {
		t.Fatalf("inconsistencies = %+v (report %s)", r.Inconsistent, r.Summary())
	}
	f := r.Inconsistent[0]
	if f.LibName != "Unity3d" || f.Category != verbs.Collect {
		t.Fatalf("finding = %+v", f)
	}
	if f.Disclose() {
		t.Fatal("collect finding classified as disclose")
	}
}

// TestDisclaimerSuppressesInconsistency reproduces §IV-C: a disclaimer
// sentence suppresses the lib conflict.
func TestDisclaimerSuppressesInconsistency(t *testing.T) {
	app := &App{
		Name: "com.shortbreakstudios.hammertime",
		PolicyHTML: `<p>We will not collect your location information.</p>
<p>We encourage you to review the privacy practices of these third parties before disclosing any personally identifiable information, as we are not responsible for the privacy practices of those sites.</p>`,
		Description: "Swing the hammer!",
		APK:         mustAPK(t, "com.shortbreakstudios.hammertime", nil, templeRunAsm, apk.Component{Name: "com.shortbreakstudios.hammertime.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may receive your location information to improve our services.</p>`,
		},
	}
	r := NewChecker().Check(app)
	if len(r.Inconsistent) != 0 {
		t.Fatalf("disclaimer ignored: %+v", r.Inconsistent)
	}
	// Ablation: with disclaimer handling off, the conflict resurfaces.
	r = NewChecker(WithDisclaimerHandling(false)).Check(app)
	if len(r.Inconsistent) != 1 {
		t.Fatalf("ablation found %d inconsistencies", len(r.Inconsistent))
	}
}

// TestInconsistentDisclose: a disclose-category conflict lands in the
// Sents^disclose group of Table IV.
func TestInconsistentDisclose(t *testing.T) {
	app := &App{
		Name:        "com.example.shareless",
		PolicyHTML:  `<p>We will not share your device identifier with anyone.</p>`,
		Description: "A flashlight.",
		APK:         mustAPK(t, "com.example.shareless", nil, templeRunAsm, apk.Component{Name: "com.example.shareless.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may share your device identifier with advertising partners.</p>`,
		},
	}
	r := NewChecker().Check(app)
	if len(r.Inconsistent) != 1 || !r.Inconsistent[0].Disclose() {
		t.Fatalf("inconsistencies = %+v", r.Inconsistent)
	}
}

// TestLibWithoutPolicySkipped: detected lib with no supplied policy is
// skipped (the paper only examines libs with English policies).
func TestLibWithoutPolicySkipped(t *testing.T) {
	app := &App{
		Name:        "com.example.nolib",
		PolicyHTML:  `<p>We will not collect your location information.</p>`,
		Description: "A game.",
		APK:         mustAPK(t, "com.example.nolib", nil, templeRunAsm, apk.Component{Name: "com.example.nolib.Main"}),
		LibPolicies: map[string]string{},
	}
	r := NewChecker().Check(app)
	if len(r.Inconsistent) != 0 {
		t.Fatalf("inconsistencies without lib policy: %+v", r.Inconsistent)
	}
}

// TestHkoLocationLog reproduces §V-D's hko.MyObservatory_v1_0: the
// policy says locations are not transmitted out, the code logs
// latitude.
func TestHkoLocationLog(t *testing.T) {
	app := &App{
		Name:        "hko.MyObservatory_v1_0",
		PolicyHTML:  `<p>Users locations would not be stored or transmitted out from the app.</p>`,
		Description: "The official weather app.",
		APK: mustAPK(t, "hko.MyObservatory_v1_0", []string{sensitive.PermFineLocation}, `
.class Lhko/MyObservatory_v1_0/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "hko.MyObservatory_v1_0.Main"}),
	}
	r := NewChecker().Check(app)
	found := false
	for _, f := range r.IncorrectVia(ViaCode) {
		if f.Category == verbs.Retain && f.Info == sensitive.InfoLocation {
			found = true
		}
	}
	if !found {
		t.Fatalf("hko retain contradiction missing: %s", r.Summary())
	}
}

func TestReportSummaryRendering(t *testing.T) {
	r := &Report{App: "com.example.x"}
	if !strings.Contains(r.Summary(), "no problems") {
		t.Fatalf("clean summary = %q", r.Summary())
	}
	r.Incomplete = append(r.Incomplete, IncompleteFinding{Via: ViaCode, Info: sensitive.InfoLocation, Retained: true, Sources: []string{"x"}})
	r.Incorrect = append(r.Incorrect, IncorrectFinding{Via: ViaCode, Sentence: "s", Evidence: "e"})
	r.Inconsistent = append(r.Inconsistent, InconsistencyFinding{LibName: "L", Category: verbs.Disclose})
	s := r.Summary()
	for _, want := range []string{"INCOMPLETE", "INCORRECT", "INCONSISTENT", "[retained]"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestThresholdOption: a stricter ESA threshold stops paraphrase
// matches (device id vs device identifier), loosening detection.
func TestThresholdOption(t *testing.T) {
	app := &App{
		Name:        "com.example.thresh",
		PolicyHTML:  `<p>We will not collect your device id.</p>`,
		Description: "A game.",
		APK:         mustAPK(t, "com.example.thresh", nil, templeRunAsm, apk.Component{Name: "com.example.thresh.Main"}),
		LibPolicies: map[string]string{
			"Unity3d": `<p>We may collect your device identifier.</p>`,
		},
	}
	// Default threshold: "device id" ≈ "device identifier" → conflict.
	if r := NewChecker().Check(app); len(r.Inconsistent) != 1 {
		t.Fatalf("default threshold found %d conflicts", len(r.Inconsistent))
	}
	// Absurdly strict threshold: the paraphrase no longer matches.
	if r := NewChecker(WithESAThreshold(0.999)).Check(app); len(r.Inconsistent) != 0 {
		t.Fatalf("strict threshold still found conflicts: %+v", r.Inconsistent)
	}
}

// TestCheckWithoutAPK: policy-only checking degrades gracefully.
func TestCheckWithoutAPK(t *testing.T) {
	app := &App{
		Name:        "com.example.noapk",
		PolicyHTML:  `<p>We may collect your location.</p>`,
		Description: "Get the local weather forecast for your area and nearby cities.",
	}
	r := NewChecker().Check(app)
	if r.Static != nil {
		t.Fatal("static result without APK")
	}
	// Description evidence still works: location is covered, so clean.
	if r.HasProblem() {
		t.Fatalf("unexpected findings: %s", r.Summary())
	}
}

// TestLibPolicyCacheConsistency: cached lib analyses produce identical
// results across apps.
func TestLibPolicyCacheConsistency(t *testing.T) {
	libPolicy := `<p>We may collect your location information.</p>`
	checker := NewChecker()
	var first int
	for i := 0; i < 3; i++ {
		app := &App{
			Name:        "com.example.cache",
			PolicyHTML:  `<p>We will not collect your location information.</p>`,
			Description: "A game.",
			APK:         mustAPK(t, "com.example.cache", nil, templeRunAsm, apk.Component{Name: "com.example.cache.Main"}),
			LibPolicies: map[string]string{"Unity3d": libPolicy},
		}
		r := checker.Check(app)
		if i == 0 {
			first = len(r.Inconsistent)
			if first != 1 {
				t.Fatalf("first run found %d", first)
			}
		} else if len(r.Inconsistent) != first {
			t.Fatalf("run %d found %d, first found %d", i, len(r.Inconsistent), first)
		}
	}
}
