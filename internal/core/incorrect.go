package core

import (
	"ppchecker/internal/esa"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/verbs"
)

// detectIncorrect implements Algorithms 3 and 4: negative policy
// statements ("we will not collect/store X") contradicted by the
// description or by observed code behaviour.
func (c *Checker) detectIncorrect(app *App, r *Report) {
	// Algorithm 3: through the description — information the
	// description implies but a negative sentence denies.
	if r.Desc != nil {
		for _, info := range r.Desc.Infos {
			for _, cat := range verbs.Categories() {
				sentence, ok := c.negatedSentenceFor(r, cat, string(info))
				if !ok {
					continue
				}
				r.Incorrect = append(r.Incorrect, IncorrectFinding{
					Via: ViaDescription, Info: info, Category: cat,
					Sentence: sentence,
					Evidence: "the description implies the app uses " + string(info),
				})
			}
		}
	}

	if r.Static == nil {
		return
	}
	// Algorithm 4a: NotCollect (and NotUse — accessing is using, which
	// is how the paper's zoho.mail false positive arises) vs
	// Collect_code.
	for _, info := range r.Static.CollectedInfo() {
		for _, cat := range []verbs.Category{verbs.Collect, verbs.Use} {
			if sentence, ok := c.negatedSentenceFor(r, cat, string(info)); ok {
				r.Incorrect = append(r.Incorrect, IncorrectFinding{
					Via: ViaCode, Info: info, Category: cat,
					Sentence: sentence,
					Evidence: "the code collects " + string(info) + " (" + firstSource(r, info) + ")",
				})
				break
			}
		}
	}
	// Algorithm 4b: NotRetain vs Retain_code.
	for _, info := range r.Static.RetainedInfo() {
		if sentence, ok := c.negatedSentenceFor(r, verbs.Retain, string(info)); ok {
			r.Incorrect = append(r.Incorrect, IncorrectFinding{
				Via: ViaCode, Info: info, Category: verbs.Retain,
				Sentence: sentence,
				Evidence: "the code retains " + string(info) + " (" + firstLeak(r, info) + ")",
			})
		}
	}
}

// negatedSentenceFor finds a negative statement of the category whose
// resource matches info, returning its sentence. The info side is
// interpreted once (usually a precompiled vector); statement resources
// resolve through the interpret memo.
func (c *Checker) negatedSentenceFor(r *Report, cat verbs.Category, info string) (string, bool) {
	iv := c.vec(info)
	for _, st := range r.Policy.Statements {
		if !st.Negative || st.Category != cat {
			continue
		}
		for _, res := range st.Resources {
			if esa.CosineVec(iv, c.index.InterpretVecScoped(res, c.esaScope)) >= c.threshold {
				return st.Sentence, true
			}
		}
	}
	return "", false
}

func firstSource(r *Report, info sensitive.Info) string {
	for _, s := range r.Static.Sites {
		if s.ByApp && s.Info == info {
			return s.Source
		}
	}
	return "unknown source"
}

func firstLeak(r *Report, info sensitive.Info) string {
	for _, l := range r.Static.Leaks {
		if l.Info == info {
			return "path from " + l.Source + " to " + l.Sink.String()
		}
	}
	return "unknown path"
}
