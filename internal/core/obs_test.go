package core_test

import (
	"bytes"
	"context"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

// TestObserverStageSpans: a checked app reports one span per executed
// stage, the detector sub-spans, and matching Report.Timings.
func TestObserverStageSpans(t *testing.T) {
	o := obs.New()
	checker := core.NewChecker(core.WithObserver(o))
	app := testApp(t)
	r, err := checker.CheckSafe(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	for _, stage := range []string{
		string(core.StageExtract), string(core.StagePolicy),
		string(core.StageDesc), string(core.StageStatic),
		string(core.StageTaint), string(core.StageLibs),
		string(core.StageDetect),
		core.SpanDetectIncomplete, core.SpanDetectIncorrect,
		core.SpanDetectInconsistent,
	} {
		st, ok := snap.Stage(stage)
		if !ok {
			t.Errorf("no metrics for stage %s", stage)
			continue
		}
		if st.Runs != 1 || st.Errors != 0 {
			t.Errorf("stage %s: runs=%d errors=%d, want 1/0", stage, st.Runs, st.Errors)
		}
	}
	// Timings mirror the top-level stages (not the detector sub-spans).
	if len(r.Timings) != 7 {
		t.Fatalf("timings = %v, want 7 stages", r.Timings)
	}
	if d, ok := r.StageDuration(core.StagePolicy); !ok || d <= 0 {
		t.Fatalf("policy-nlp timing = %v ok=%v", d, ok)
	}
	if r.TotalDuration() <= 0 {
		t.Fatal("total duration not positive")
	}
}

// TestObserverErrorAndPanicCounters: failed and panicking stages are
// counted where they happen.
func TestObserverErrorAndPanicCounters(t *testing.T) {
	o := obs.New()
	checker := core.NewChecker(core.WithObserver(o))
	app := testApp(t)
	app.PolicyHTML = "we collect \xff\xfe location" // fails extract
	cls := app.APK.Dex.Classes[0]
	cls.Methods = append(cls.Methods, nil) // panics static
	if _, err := checker.CheckSafe(context.Background(), app); err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	if st, _ := snap.Stage(string(core.StageExtract)); st.Errors != 1 || st.Panics != 0 {
		t.Errorf("extract: %+v, want 1 error 0 panics", st)
	}
	if st, _ := snap.Stage(string(core.StageStatic)); st.Errors != 1 || st.Panics != 1 {
		t.Errorf("static: %+v, want 1 error 1 panic", st)
	}
}

// TestObserverLibCacheCounters: re-analyzing apps that share library
// policies produces misses on first sight and hits afterwards.
func TestObserverLibCacheCounters(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	checker := core.NewChecker(core.WithObserver(o))
	// Find an app with library policies and check it twice: the second
	// pass must be all hits.
	var checked int
	for _, ga := range ds.Apps {
		if len(ga.App.LibPolicies) == 0 {
			continue
		}
		checker.Check(ga.App)
		checker.Check(ga.App)
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no apps with library policies in dataset")
	}
	snap := o.Snapshot()
	if snap.CacheMisses == 0 {
		t.Fatal("no cache misses recorded")
	}
	if snap.CacheHits < snap.CacheMisses {
		t.Fatalf("hits=%d < misses=%d; memoization not effective",
			snap.CacheHits, snap.CacheMisses)
	}
}

// TestObserverTraceSink: the JSONL trace of one app's check contains a
// record for every top-level stage, parented detector sub-spans
// included.
func TestObserverTraceSink(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	o := obs.New(obs.WithSink(sink))
	checker := core.NewChecker(core.WithObserver(o))
	checker.Check(testApp(t))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != 10 { // 7 stages + 3 detector sub-spans
		t.Fatalf("trace lines = %d, want 10:\n%s", lines, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"parent":"detectors"`)) {
		t.Fatalf("detector sub-spans not parented:\n%s", buf.String())
	}
}

// TestTimingsWithoutObserver: Report.Timings populate with no observer
// attached — per-app timing is always on.
func TestTimingsWithoutObserver(t *testing.T) {
	r := core.NewChecker().Check(testApp(t))
	if len(r.Timings) == 0 {
		t.Fatal("no timings on un-instrumented checker")
	}
	for _, tm := range r.Timings {
		if tm.Duration < 0 {
			t.Fatalf("negative duration for %s", tm.Stage)
		}
	}
}
