// Package static is the static-analysis module of §III-C: given an APK
// it determines the private information the app collects (Collect_code)
// and retains (Retain_code), using the APG for reachability and the
// taint engine for source→sink flows. It also reports which third-party
// code collects information, which the inconsistency detector uses.
package static

import (
	"context"
	"errors"
	"sort"
	"strings"

	"ppchecker/internal/apg"
	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/taint"
)

// CollectionSite is one reachable sensitive access.
type CollectionSite struct {
	Info sensitive.Info
	// Source describes the access: an API reference or "query(<uri>)".
	Source string
	// Method is the containing method.
	Method dex.MethodRef
	// Index is the instruction index within Method.
	Index int
	// ByApp reports whether the containing class shares the app's
	// package prefix (the paper's attribution rule); false means a
	// bundled library performs the access.
	ByApp bool
	// Permission guards the access ("" when unguarded).
	Permission string
}

// Result is the static-analysis output.
type Result struct {
	// Sites are all reachable sensitive accesses.
	Sites []CollectionSite
	// Leaks are the source→sink flows found by taint analysis.
	Leaks []taint.Leak
	// Packed reports whether the app arrived packed and was unpacked.
	Packed bool
}

// CollectedInfo returns Collect_code: the information collected by
// app-attributed reachable code, filtered (per Algorithm 2's note) to
// information whose permissions — when required — are requested in the
// manifest.
func (r *Result) CollectedInfo() []sensitive.Info {
	seen := map[sensitive.Info]bool{}
	for _, s := range r.Sites {
		if s.ByApp {
			seen[s.Info] = true
		}
	}
	return sortedInfos(seen)
}

// LibCollectedInfo returns the information collected by library code.
func (r *Result) LibCollectedInfo() []sensitive.Info {
	seen := map[sensitive.Info]bool{}
	for _, s := range r.Sites {
		if !s.ByApp {
			seen[s.Info] = true
		}
	}
	return sortedInfos(seen)
}

// RetainedInfo returns Retain_code: information flowing to any sink.
func (r *Result) RetainedInfo() []sensitive.Info {
	seen := map[sensitive.Info]bool{}
	for _, l := range r.Leaks {
		seen[l.Info] = true
	}
	return sortedInfos(seen)
}

func sortedInfos(set map[sensitive.Info]bool) []sensitive.Info {
	out := make([]sensitive.Info, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Options configures the analysis (ablation switches flow through to
// the APG builder).
type Options struct {
	APG apg.Options
	// URIAnalysis enables content-provider URI tracking in addition to
	// API tracking (the paper's delta over Slavin et al.).
	URIAnalysis bool
	// Reachability filters sensitive accesses to those reachable from
	// entry points.
	Reachability bool
}

// DefaultOptions enables every feature.
func DefaultOptions() Options {
	return Options{APG: apg.DefaultOptions(), URIAnalysis: true, Reachability: true}
}

// Analyze runs the full static-analysis module over an APK.
func Analyze(a *apk.APK, opts Options) (*Result, error) {
	return AnalyzeCtx(context.Background(), a, opts)
}

// AnalyzeCtx runs the full static-analysis module — collection-site
// scan plus taint analysis — honouring ctx cancellation.
func AnalyzeCtx(ctx context.Context, a *apk.APK, opts Options) (*Result, error) {
	res, p, err := Collect(ctx, a, opts)
	if err != nil {
		return nil, err
	}
	leaks, err := TaintLeaks(ctx, p)
	if err != nil {
		return res, err
	}
	res.Leaks = leaks
	return res, nil
}

// Scratch is the collection pass's reusable per-worker state: the APG
// build buffers plus the per-method URI register maps. A zero value is
// ready to use; worker pools keep one per arena so repeated collection
// passes stop re-allocating per app.
type Scratch struct {
	Build apg.BuildScratch
	uri   uriScratch
}

// Collect runs the APG build and the collection-site scan — everything
// except the taint analysis — and returns the APG so the caller can run
// TaintLeaks as a separately-degradable stage.
func Collect(ctx context.Context, a *apk.APK, opts Options) (*Result, *apg.APG, error) {
	return CollectWith(ctx, a, opts, nil)
}

// CollectWith is Collect with caller-provided scratch (nil falls back
// to internal pools); worker pools pass a per-arena scratch to avoid
// re-allocating per app.
func CollectWith(ctx context.Context, a *apk.APK, opts Options, s *Scratch) (*Result, *apg.APG, error) {
	if a == nil || a.Dex == nil {
		return nil, nil, errors.New("static: nil apk or bytecode")
	}
	if a.Manifest == nil {
		return nil, nil, errors.New("static: nil manifest")
	}
	var build *apg.BuildScratch
	us := &uriScratch{}
	if s != nil {
		build, us = &s.Build, &s.uri
	}
	p, err := apg.BuildCtxWith(ctx, a, opts.APG, build)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Packed: a.Packed}
	pkg := a.Manifest.Package

	for _, cls := range a.Dex.Classes {
		for _, m := range cls.Methods {
			// The entry-point closure is memoized on the APG and shared
			// with the taint stage.
			if opts.Reachability && !p.MethodReachable(m.Ref()) {
				continue
			}
			res.Sites = append(res.Sites, scanMethod(a, m, pkg, opts, us)...)
		}
	}
	// Permission filter: drop sites whose guarding permission the app
	// does not request (§IV-A: "we only consider the app that requires
	// the corresponding permissions").
	kept := make([]CollectionSite, 0, len(res.Sites))
	for _, s := range res.Sites {
		if s.Permission != "" && !a.Manifest.HasPermission(s.Permission) {
			// Location is guarded by either of two permissions.
			if !permissionSatisfied(a, s.Info) {
				continue
			}
		}
		kept = append(kept, s)
	}
	res.Sites = kept
	return res, p, nil
}

// TaintLeaks runs the taint stage over a previously built APG.
func TaintLeaks(ctx context.Context, p *apg.APG) ([]taint.Leak, error) {
	return TaintLeaksWith(ctx, p, nil)
}

// TaintLeaksWith is TaintLeaks with caller-provided fixpoint scratch
// (nil falls back to the taint package's internal pool).
func TaintLeaksWith(ctx context.Context, p *apg.APG, s *taint.Scratch) ([]taint.Leak, error) {
	tres, err := taint.AnalyzeCtxWith(ctx, p, s)
	if err != nil {
		return nil, err
	}
	return tres.Leaks, nil
}

// permissionSatisfied reports whether any permission guarding info is
// requested.
func permissionSatisfied(a *apk.APK, info sensitive.Info) bool {
	for _, perm := range sensitive.PermissionsForInfo(info) {
		if a.Manifest.HasPermission(perm) {
			return true
		}
	}
	return false
}

// hasStringInstr reports whether any instruction can introduce a string
// value (const-string or sget) into a register.
func hasStringInstr(m *dex.Method) bool {
	for _, ins := range m.Code {
		if ins.Op == dex.OpConstString || ins.Op == dex.OpSGet {
			return true
		}
	}
	return false
}

// scanMethod finds the sensitive accesses in one method.
func scanMethod(a *apk.APK, m *dex.Method, pkg string, opts Options, us *uriScratch) []CollectionSite {
	var sites []CollectionSite
	byApp := strings.HasPrefix(m.Class.ClassName(), pkg)
	uriOf := uriRegisters(m, opts.URIAnalysis, us)
	for i, ins := range m.Code {
		if ins.Op != dex.OpInvokeVirtual && ins.Op != dex.OpInvokeStatic {
			continue
		}
		if api, ok := sensitive.LookupAPI(ins.Method); ok {
			sites = append(sites, CollectionSite{
				Info: api.Info, Source: ins.Method.String(),
				Method: m.Ref(), Index: i, ByApp: byApp,
				Permission: api.Permission,
			})
			continue
		}
		if !opts.URIAnalysis {
			continue
		}
		if ins.Method.Name == "query" {
			for _, arg := range ins.Args {
				if u, ok := uriOf[arg]; ok {
					sites = append(sites, CollectionSite{
						Info: u.Info, Source: "query(" + u.URI + ")",
						Method: m.Ref(), Index: i, ByApp: byApp,
						Permission: u.Permission,
					})
				}
			}
		}
	}
	return sites
}

// uriScratch holds the per-method register maps of uriRegisters,
// cleared and refilled for each method so one collection pass allocates
// the maps at most once.
type uriScratch struct {
	out      map[int]sensitive.URIString
	strConst map[int]string
}

// uriRegisters mirrors the taint engine's intra-method URI tracking for
// the collection scan. The returned map aliases us and is valid only
// until the next call with the same scratch.
func uriRegisters(m *dex.Method, enabled bool, us *uriScratch) map[int]sensitive.URIString {
	if !enabled || !hasStringInstr(m) {
		// URI values only enter a register through a const-string or
		// sget; methods without either — the common case — get no maps
		// at all, and lookups on the nil map simply miss.
		return nil
	}
	if us.out == nil {
		us.out = map[int]sensitive.URIString{}
		us.strConst = map[int]string{}
	}
	clear(us.out)
	clear(us.strConst)
	out, strConst := us.out, us.strConst
	for pass := 0; pass < 2; pass++ {
		for _, ins := range m.Code {
			switch ins.Op {
			case dex.OpConstString:
				strConst[ins.A] = ins.Str
				if u, ok := sensitive.LookupURI(ins.Str); ok {
					out[ins.A] = u
				}
			case dex.OpSGet:
				if f, ok := sensitive.LookupURIField(ins.Str); ok {
					if u, ok2 := sensitive.LookupURI(f.Value); ok2 {
						out[ins.A] = u
					} else if infos := sensitive.InfoForPermission(f.Permission); len(infos) > 0 {
						out[ins.A] = sensitive.URIString{URI: f.Value, Info: infos[0], Permission: f.Permission}
					}
				}
			case dex.OpMove:
				if u, ok := out[ins.B]; ok {
					out[ins.A] = u
				}
				if s, ok := strConst[ins.B]; ok {
					strConst[ins.A] = s
				}
			case dex.OpInvokeStatic, dex.OpInvokeVirtual:
				if ins.Method.Name == "parse" && len(ins.Args) > 0 {
					if s, ok := strConst[ins.Args[len(ins.Args)-1]]; ok {
						if u, ok2 := sensitive.LookupURI(s); ok2 {
							out[ins.A] = u
						}
					}
				}
			}
		}
	}
	return out
}
