package static

import (
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/sensitive"
)

func buildAPK(t *testing.T, pkg string, perms []string, asm string, comps ...apk.Component) *apk.APK {
	t.Helper()
	d, err := dex.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{Package: pkg}
	for _, p := range perms {
		m.Permissions = append(m.Permissions, apk.Permission{Name: p})
	}
	m.Application.Activities = comps
	return apk.New(m, d)
}

const locAppAsm = `
.class Lcom/dooing/dooing/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-virtual {v0}, Landroid/location/Location;->getLongitude()D -> v2
    return-void
.end method
.end class
.class Lcom/adnetwork/sdk/Tracker;
.method track()V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    return-void
.end method
.method onClick(Landroid/view/View;)V regs=2
    invoke-virtual {v0}, Lcom/adnetwork/sdk/Tracker;->track()V
    return-void
.end method
.end class
`

func TestCollectedInfoAttribution(t *testing.T) {
	// The paper's com.dooing.dooing case: app code reads location; a
	// bundled lib reads the device id. Attribution follows the package
	// prefix rule.
	a := buildAPK(t, "com.dooing.dooing",
		[]string{sensitive.PermFineLocation, sensitive.PermPhoneState},
		locAppAsm, apk.Component{Name: "com.dooing.dooing.Main"})
	res := mustAnalyze(t, a, DefaultOptions())
	app := res.CollectedInfo()
	if len(app) != 1 || app[0] != sensitive.InfoLocation {
		t.Fatalf("app collected = %v", app)
	}
	lib := res.LibCollectedInfo()
	if len(lib) != 1 || lib[0] != sensitive.InfoDeviceID {
		t.Fatalf("lib collected = %v", lib)
	}
}

func TestPermissionFilter(t *testing.T) {
	// Same app without the location permissions: the location sites are
	// dropped (§IV-A note).
	a := buildAPK(t, "com.dooing.dooing", []string{sensitive.PermPhoneState},
		locAppAsm, apk.Component{Name: "com.dooing.dooing.Main"})
	res := mustAnalyze(t, a, DefaultOptions())
	if got := res.CollectedInfo(); len(got) != 0 {
		t.Fatalf("collected without permission = %v", got)
	}
}

func TestCoarsePermissionSatisfiesLocation(t *testing.T) {
	// ACCESS_COARSE_LOCATION alone still admits location sites guarded
	// by ACCESS_FINE_LOCATION in the table (either permission grants
	// location).
	a := buildAPK(t, "com.dooing.dooing", []string{sensitive.PermCoarseLocation},
		locAppAsm, apk.Component{Name: "com.dooing.dooing.Main"})
	res := mustAnalyze(t, a, DefaultOptions())
	if got := res.CollectedInfo(); len(got) != 1 || got[0] != sensitive.InfoLocation {
		t.Fatalf("collected = %v", got)
	}
}

func TestReachabilityFiltersDeadSites(t *testing.T) {
	asm := `
.class Lcom/example/app/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    return-void
.end method
.method unusedHelper()V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`
	a := buildAPK(t, "com.example.app", []string{sensitive.PermFineLocation},
		asm, apk.Component{Name: "com.example.app.Main"})
	res := mustAnalyze(t, a, DefaultOptions())
	if got := res.CollectedInfo(); len(got) != 0 {
		t.Fatalf("dead site collected = %v", got)
	}
	// Ablation: with reachability off, the dead site is counted — the
	// imprecision the paper's reachability analysis removes.
	opts := DefaultOptions()
	opts.Reachability = false
	res = mustAnalyze(t, a, opts)
	if got := res.CollectedInfo(); len(got) != 1 {
		t.Fatalf("ablation collected = %v", got)
	}
}

func TestURIAnalysisAblation(t *testing.T) {
	asm := `
.class Lcom/example/app/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    const-string v1, "content://com.android.contacts"
    invoke-static {v1}, Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri; -> v2
    invoke-virtual {v0, v2}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v3
    return-void
.end method
.end class
`
	a := buildAPK(t, "com.example.app", []string{sensitive.PermReadContacts},
		asm, apk.Component{Name: "com.example.app.Main"})
	res := mustAnalyze(t, a, DefaultOptions())
	if got := res.CollectedInfo(); len(got) != 1 || got[0] != sensitive.InfoContact {
		t.Fatalf("collected = %v", got)
	}
	// With URI analysis off (Slavin et al.'s API-only model), the
	// query is invisible.
	opts := DefaultOptions()
	opts.URIAnalysis = false
	res = mustAnalyze(t, a, opts)
	if got := res.CollectedInfo(); len(got) != 0 {
		t.Fatalf("API-only collected = %v", got)
	}
}

func TestPackedAppAnalyzed(t *testing.T) {
	a := buildAPK(t, "com.example.packed", []string{sensitive.PermFineLocation}, `
.class Lcom/example/packed/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.packed.Main"})
	a.Packed = true
	data, err := apk.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := apk.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	res := mustAnalyze(t, loaded, DefaultOptions())
	if !res.Packed {
		t.Fatal("packed flag lost")
	}
	if got := res.CollectedInfo(); len(got) != 1 || got[0] != sensitive.InfoLocation {
		t.Fatalf("packed app collected = %v", got)
	}
}

func TestRetainedInfoFromLeak(t *testing.T) {
	a := buildAPK(t, "com.example.retain", []string{sensitive.PermFineLocation}, `
.class Lcom/example/retain/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.retain.Main"})
	res := mustAnalyze(t, a, DefaultOptions())
	if got := res.RetainedInfo(); len(got) != 1 || got[0] != sensitive.InfoLocation {
		t.Fatalf("retained = %v", got)
	}
}

func mustAnalyze(t *testing.T, a *apk.APK, opts Options) *Result {
	t.Helper()
	res, err := Analyze(a, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}
