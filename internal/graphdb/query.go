package graphdb

// view abstracts the traversal surface shared by the mutable Graph and
// the frozen CSR representation, so one Query implementation serves
// both; queries started from a Frozen run entirely on the CSR arrays.
type view interface {
	Node(NodeID) *Node
	NodesByLabel(string) []NodeID
	outInto(dst []NodeID, id NodeID, label string) []NodeID
	inInto(dst []NodeID, id NodeID, label string) []NodeID
}

func (g *Graph) outInto(dst []NodeID, id NodeID, label string) []NodeID {
	if g.node(id) == nil {
		return dst
	}
	for _, e := range g.out[id-1] {
		if label == "" || e.Label == label {
			dst = append(dst, e.To)
		}
	}
	return dst
}

func (g *Graph) inInto(dst []NodeID, id NodeID, label string) []NodeID {
	if g.node(id) == nil {
		return dst
	}
	for _, e := range g.in[id-1] {
		if label == "" || e.Label == label {
			dst = append(dst, e.From)
		}
	}
	return dst
}

func (f *Frozen) outInto(dst []NodeID, id NodeID, label string) []NodeID {
	return f.OutInto(dst, id, label)
}

func (f *Frozen) inInto(dst []NodeID, id NodeID, label string) []NodeID {
	return f.InInto(dst, id, label)
}

// Query is a fluent traversal over the graph, mirroring how the paper
// phrases its analyses ("by querying the graph database"). A query
// holds a frontier of node ids that each step transforms.
type Query struct {
	v        view
	frontier []NodeID
}

// Query starts a traversal over all nodes with the given label.
func (g *Graph) Query(label string) *Query {
	return &Query{v: g, frontier: g.NodesByLabel(label)}
}

// QueryFrom starts a traversal from explicit seeds.
func (g *Graph) QueryFrom(ids ...NodeID) *Query {
	return &Query{v: g, frontier: append([]NodeID(nil), ids...)}
}

// Query starts a traversal over the frozen view's nodes with the given
// label.
func (f *Frozen) Query(label string) *Query {
	return &Query{v: f, frontier: f.NodesByLabel(label)}
}

// QueryFrom starts a frozen-view traversal from explicit seeds.
func (f *Frozen) QueryFrom(ids ...NodeID) *Query {
	return &Query{v: f, frontier: append([]NodeID(nil), ids...)}
}

// Where keeps nodes whose property key equals value.
func (q *Query) Where(key, value string) *Query {
	keep := q.frontier[:0]
	for _, id := range q.frontier {
		if n := q.v.Node(id); n != nil && n.Props.Get(key) == value {
			keep = append(keep, id)
		}
	}
	q.frontier = keep
	return q
}

// WhereFunc keeps nodes satisfying the predicate.
func (q *Query) WhereFunc(pred func(*Node) bool) *Query {
	keep := q.frontier[:0]
	for _, id := range q.frontier {
		if n := q.v.Node(id); n != nil && pred(n) {
			keep = append(keep, id)
		}
	}
	q.frontier = keep
	return q
}

// Out replaces the frontier with targets of edges having the label
// ("" = any), deduplicated in first-seen order.
func (q *Query) Out(label string) *Query {
	q.frontier = dedupe(q.expand(label, true))
	return q
}

// In replaces the frontier with sources of edges having the label.
func (q *Query) In(label string) *Query {
	q.frontier = dedupe(q.expand(label, false))
	return q
}

func (q *Query) expand(label string, forward bool) []NodeID {
	var next []NodeID
	for _, id := range q.frontier {
		if forward {
			next = q.v.outInto(next, id, label)
		} else {
			next = q.v.inInto(next, id, label)
		}
	}
	return next
}

// Collect returns the frontier node ids.
func (q *Query) Collect() []NodeID { return append([]NodeID(nil), q.frontier...) }

// Nodes returns the frontier nodes.
func (q *Query) Nodes() []*Node {
	out := make([]*Node, 0, len(q.frontier))
	for _, id := range q.frontier {
		if n := q.v.Node(id); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Count returns the frontier size.
func (q *Query) Count() int { return len(q.frontier) }

func dedupe(ids []NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
