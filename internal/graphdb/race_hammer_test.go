package graphdb

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestFrozenConcurrentReads hammers one frozen view from many
// goroutines at once. Frozen is a read-only snapshot, so every query —
// label scans, adjacency (including the caller-buffer OutInto/InInto
// forms), property lookup, reachability, and the pooled-BFS Path — must
// be safe to run concurrently and return the same answer every
// goroutine, every iteration. Run under -race via deflake_stress.sh.
func TestFrozenConcurrentReads(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, ids := randomGraph(r)
	f := g.Freeze()

	// Reference answers computed single-threaded.
	wantMethods := f.NodesByLabel("method")
	wantOut := f.Out(ids[0], "")
	wantReach := f.Reachable(ids[:1], nil)
	wantPath := f.Path(ids[0], ids[len(ids)-1], nil)

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []NodeID
			for i := 0; i < iters; i++ {
				if got := f.NodesByLabel("method"); !reflect.DeepEqual(got, wantMethods) {
					errs <- "NodesByLabel diverged"
					return
				}
				buf = f.OutInto(buf[:0], ids[0], "")
				if !reflect.DeepEqual(append([]NodeID(nil), buf...), wantOut) && !(len(buf) == 0 && len(wantOut) == 0) {
					errs <- "OutInto diverged"
					return
				}
				if got := f.Reachable(ids[:1], nil); !reflect.DeepEqual(got, wantReach) {
					errs <- "Reachable diverged"
					return
				}
				if got := f.Path(ids[0], ids[len(ids)-1], nil); !reflect.DeepEqual(got, wantPath) {
					errs <- "Path diverged"
					return
				}
				for _, id := range ids {
					_ = f.OutDegree(id)
					_ = f.Node(id).Props.Get("name")
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}
