package graphdb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New()
	ids := map[string]NodeID{}
	for _, name := range []string{"main", "helper", "leaf", "island"} {
		ids[name] = g.AddNode("method", map[string]string{"name": name})
	}
	mustEdge := func(a, b string) {
		t.Helper()
		if err := g.AddEdge(ids[a], ids[b], "calls"); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge("main", "helper")
	mustEdge("helper", "leaf")
	return g, ids
}

func TestAddAndLookup(t *testing.T) {
	g, ids := buildSample(t)
	if g.NodeCount() != 4 || g.EdgeCount() != 2 {
		t.Fatalf("counts = %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
	if n := g.Node(ids["main"]); n == nil || n.Prop("name") != "main" {
		t.Fatalf("node lookup failed: %+v", n)
	}
	if got := g.NodesByLabel("method"); len(got) != 4 {
		t.Fatalf("by label = %v", got)
	}
	if got := g.FindByProp("name", "leaf"); len(got) != 1 || got[0] != ids["leaf"] {
		t.Fatalf("FindByProp = %v", got)
	}
}

func TestIndexConsistentWithScan(t *testing.T) {
	g, ids := buildSample(t)
	scan := g.FindByProp("name", "helper")
	g.CreateIndex("name")
	indexed := g.FindByProp("name", "helper")
	if len(scan) != 1 || len(indexed) != 1 || scan[0] != indexed[0] {
		t.Fatalf("scan %v vs indexed %v", scan, indexed)
	}
	// New nodes keep the index fresh.
	id := g.AddNode("method", map[string]string{"name": "helper"})
	if got := g.FindByProp("name", "helper"); len(got) != 2 {
		t.Fatalf("index missed new node: %v (want 2, got ids %v %v)", got, id, ids["helper"])
	}
}

func TestEdgesRequireNodes(t *testing.T) {
	g := New()
	id := g.AddNode("x", nil)
	if err := g.AddEdge(id, 999, "e"); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge(999, id, "e"); err == nil {
		t.Error("edge from unknown node accepted")
	}
}

func TestReachable(t *testing.T) {
	g, ids := buildSample(t)
	seen := g.Reachable([]NodeID{ids["main"]}, []string{"calls"})
	for _, name := range []string{"main", "helper", "leaf"} {
		if !seen[ids[name]] {
			t.Errorf("%s not reachable", name)
		}
	}
	if seen[ids["island"]] {
		t.Error("island reachable")
	}
	// Label filtering: no "calls" edges allowed means only the seed.
	seen = g.Reachable([]NodeID{ids["main"]}, []string{"other"})
	if len(seen) != 1 {
		t.Errorf("label filter ignored: %v", seen)
	}
}

func TestPath(t *testing.T) {
	g, ids := buildSample(t)
	path := g.Path(ids["main"], ids["leaf"], nil)
	if len(path) != 3 || path[0] != ids["main"] || path[2] != ids["leaf"] {
		t.Fatalf("path = %v", path)
	}
	if p := g.Path(ids["main"], ids["island"], nil); p != nil {
		t.Fatalf("phantom path = %v", p)
	}
	if p := g.Path(ids["main"], 999, nil); p != nil {
		t.Fatalf("path to unknown node = %v", p)
	}
	// Path to self is the single node.
	if p := g.Path(ids["main"], ids["main"], nil); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestQueryTraversal(t *testing.T) {
	g, ids := buildSample(t)
	got := g.Query("method").Where("name", "main").Out("calls").Collect()
	if len(got) != 1 || got[0] != ids["helper"] {
		t.Fatalf("query = %v", got)
	}
	got = g.Query("method").Where("name", "leaf").In("calls").Collect()
	if len(got) != 1 || got[0] != ids["helper"] {
		t.Fatalf("reverse query = %v", got)
	}
	n := g.Query("method").WhereFunc(func(n *Node) bool { return n.Prop("name") != "island" }).Count()
	if n != 3 {
		t.Fatalf("WhereFunc count = %d", n)
	}
	if nodes := g.QueryFrom(ids["main"]).Out("calls").Nodes(); len(nodes) != 1 || nodes[0].Prop("name") != "helper" {
		t.Fatalf("QueryFrom = %v", nodes)
	}
}

// TestAdjacencySymmetryProperty: every out edge is visible from its
// target's in-list, and path endpoints are correct, over random graphs.
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + r.Intn(20)
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode("n", nil)
		}
		for i := 0; i < n*2; i++ {
			a, b := ids[r.Intn(n)], ids[r.Intn(n)]
			if err := g.AddEdge(a, b, "e"); err != nil {
				return false
			}
		}
		// symmetry
		for _, id := range ids {
			for _, to := range g.Out(id, "e") {
				found := false
				for _, back := range g.In(to, "e") {
					if back == id {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		// any reported path is a real edge walk
		from, to := ids[r.Intn(n)], ids[r.Intn(n)]
		path := g.Path(from, to, nil)
		if path != nil {
			if path[0] != from || path[len(path)-1] != to {
				return false
			}
			for i := 0; i+1 < len(path); i++ {
				hop := false
				for _, nxt := range g.Out(path[i], "") {
					if nxt == path[i+1] {
						hop = true
						break
					}
				}
				if !hop {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReachableMatchesPath: to is reachable iff a path exists.
func TestReachableMatchesPath(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + r.Intn(15)
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode("n", nil)
		}
		for i := 0; i < n; i++ {
			_ = g.AddEdge(ids[r.Intn(n)], ids[r.Intn(n)], "e")
		}
		from, to := ids[r.Intn(n)], ids[r.Intn(n)]
		reach := g.Reachable([]NodeID{from}, nil)
		path := g.Path(from, to, nil)
		return reach[to] == (path != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOutEdgesCopies(t *testing.T) {
	g, ids := buildSample(t)
	edges := g.OutEdges(ids["main"])
	if len(edges) != 1 || edges[0].To != ids["helper"] {
		t.Fatalf("edges = %+v", edges)
	}
	// Mutating the copy must not corrupt the graph.
	edges[0].To = 999
	if g.Out(ids["main"], "calls")[0] != ids["helper"] {
		t.Fatal("graph mutated through OutEdges copy")
	}
}

func TestReachableFromUnknownSeed(t *testing.T) {
	g, _ := buildSample(t)
	if seen := g.Reachable([]NodeID{12345}, nil); len(seen) != 0 {
		t.Fatalf("unknown seed reachable set = %v", seen)
	}
}

func TestCreateIndexIdempotent(t *testing.T) {
	g, ids := buildSample(t)
	g.CreateIndex("name")
	g.CreateIndex("name") // second call is a no-op
	if got := g.FindByProp("name", "main"); len(got) != 1 || got[0] != ids["main"] {
		t.Fatalf("FindByProp = %v", got)
	}
}
