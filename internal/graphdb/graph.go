// Package graphdb is a small in-memory property-graph database. The
// paper stores the Android Property Graph in a graph database and
// answers every static-analysis question as a graph query; this package
// provides the same contract: labelled nodes with string properties,
// labelled edges, property indexes, traversals, reachability, and path
// search.
package graphdb

import (
	"fmt"
	"sort"
)

// NodeID identifies a node.
type NodeID int64

// Node is a labelled node with properties.
type Node struct {
	ID    NodeID
	Label string
	Props map[string]string
}

// Prop returns a property value ("" when absent).
func (n *Node) Prop(key string) string { return n.Props[key] }

// Edge is a directed labelled edge.
type Edge struct {
	From, To NodeID
	Label    string
}

// Graph is the database. It is not safe for concurrent mutation;
// concurrent reads are safe after construction.
type Graph struct {
	nodes   map[NodeID]*Node
	out     map[NodeID][]Edge
	in      map[NodeID][]Edge
	byLabel map[string][]NodeID
	// indexes[key][value] lists nodes with Props[key]==value, for keys
	// registered via CreateIndex.
	indexes map[string]map[string][]NodeID
	nextID  NodeID
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes:   map[NodeID]*Node{},
		out:     map[NodeID][]Edge{},
		in:      map[NodeID][]Edge{},
		byLabel: map[string][]NodeID{},
		indexes: map[string]map[string][]NodeID{},
	}
}

// AddNode inserts a node and returns its id. props may be nil.
func (g *Graph) AddNode(label string, props map[string]string) NodeID {
	g.nextID++
	id := g.nextID
	if props == nil {
		props = map[string]string{}
	}
	n := &Node{ID: id, Label: label, Props: props}
	g.nodes[id] = n
	g.byLabel[label] = append(g.byLabel[label], id)
	for key, byVal := range g.indexes {
		if v, ok := props[key]; ok {
			byVal[v] = append(byVal[v], id)
		}
	}
	return id
}

// AddEdge inserts a directed edge. Both endpoints must exist.
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	if g.nodes[from] == nil {
		return fmt.Errorf("graphdb: edge from unknown node %d", from)
	}
	if g.nodes[to] == nil {
		return fmt.Errorf("graphdb: edge to unknown node %d", to)
	}
	e := Edge{From: from, To: to, Label: label}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// Node returns a node by id (nil when absent).
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// NodesByLabel returns node ids with the given label, in insertion
// order.
func (g *Graph) NodesByLabel(label string) []NodeID {
	return append([]NodeID(nil), g.byLabel[label]...)
}

// CreateIndex registers a property key for indexed lookup; existing
// nodes are back-filled.
func (g *Graph) CreateIndex(key string) {
	if _, ok := g.indexes[key]; ok {
		return
	}
	byVal := map[string][]NodeID{}
	var ids []NodeID
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if v, ok := g.nodes[id].Props[key]; ok {
			byVal[v] = append(byVal[v], id)
		}
	}
	g.indexes[key] = byVal
}

// FindByProp returns nodes whose property key equals value, using the
// index when available and a label-agnostic scan otherwise.
func (g *Graph) FindByProp(key, value string) []NodeID {
	if byVal, ok := g.indexes[key]; ok {
		return append([]NodeID(nil), byVal[value]...)
	}
	var out []NodeID
	var ids []NodeID
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if g.nodes[id].Props[key] == value {
			out = append(out, id)
		}
	}
	return out
}

// Out returns the targets of edges leaving id; label == "" matches all.
func (g *Graph) Out(id NodeID, label string) []NodeID {
	var out []NodeID
	for _, e := range g.out[id] {
		if label == "" || e.Label == label {
			out = append(out, e.To)
		}
	}
	return out
}

// In returns the sources of edges entering id; label == "" matches all.
func (g *Graph) In(id NodeID, label string) []NodeID {
	var out []NodeID
	for _, e := range g.in[id] {
		if label == "" || e.Label == label {
			out = append(out, e.From)
		}
	}
	return out
}

// OutEdges returns copies of the outgoing edges of id.
func (g *Graph) OutEdges(id NodeID) []Edge { return append([]Edge(nil), g.out[id]...) }

// Reachable computes the forward closure from the seed set following
// edges whose label is in labels (nil = all labels).
func (g *Graph) Reachable(seeds []NodeID, labels []string) map[NodeID]bool {
	allow := labelSet(labels)
	seen := map[NodeID]bool{}
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if g.nodes[s] != nil && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.out[cur] {
			if allow != nil && !allow[e.Label] {
				continue
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// Path returns one shortest path from from to to following edges whose
// label is in labels (nil = all), or nil when unreachable.
func (g *Graph) Path(from, to NodeID, labels []string) []NodeID {
	if g.nodes[from] == nil || g.nodes[to] == nil {
		return nil
	}
	allow := labelSet(labels)
	prev := map[NodeID]NodeID{from: from}
	queue := []NodeID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			break
		}
		for _, e := range g.out[cur] {
			if allow != nil && !allow[e.Label] {
				continue
			}
			if _, seen := prev[e.To]; !seen {
				prev[e.To] = cur
				queue = append(queue, e.To)
			}
		}
	}
	if _, ok := prev[to]; !ok {
		return nil
	}
	var path []NodeID
	for cur := to; ; cur = prev[cur] {
		path = append(path, cur)
		if cur == from {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func labelSet(labels []string) map[string]bool {
	if labels == nil {
		return nil
	}
	m := make(map[string]bool, len(labels))
	for _, l := range labels {
		m[l] = true
	}
	return m
}
