// Package graphdb is a small in-memory property-graph database. The
// paper stores the Android Property Graph in a graph database and
// answers every static-analysis question as a graph query; this package
// provides the same contract: labelled nodes with string properties,
// labelled edges, property indexes, traversals, reachability, and path
// search.
//
// The package has two layers. *Graph is the mutable build-time
// representation: slice-backed adjacency keyed by dense sequential
// NodeIDs, cheap to append to. Freeze compiles a Graph into a *Frozen
// compressed-sparse-row view (see freeze.go) that answers the same
// traversal queries with contiguous arrays and interned labels; the
// analysis passes build mutably and query frozen.
package graphdb

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense and sequential starting at 1,
// in insertion order.
type NodeID int64

// Props stores node properties as flattened key/value pairs:
// [k0, v0, k1, v1, ...]. Nodes have few properties (≤5 in every APG
// node shape), so linear scan beats a map and the whole set is one
// allocation.
type Props []string

// Get returns the value for key ("" when absent).
func (p Props) Get(key string) string {
	for i := 0; i+1 < len(p); i += 2 {
		if p[i] == key {
			return p[i+1]
		}
	}
	return ""
}

// Has reports whether key is present.
func (p Props) Has(key string) bool {
	for i := 0; i+1 < len(p); i += 2 {
		if p[i] == key {
			return true
		}
	}
	return false
}

// Len returns the number of key/value pairs.
func (p Props) Len() int { return len(p) / 2 }

// Node is a labelled node with properties.
type Node struct {
	ID    NodeID
	Label string
	Props Props
}

// Prop returns a property value ("" when absent).
func (n *Node) Prop(key string) string { return n.Props.Get(key) }

// Edge is a directed labelled edge.
type Edge struct {
	From, To NodeID
	Label    string
}

// Graph is the mutable database. It is not safe for concurrent
// mutation; concurrent reads are safe after construction.
type Graph struct {
	// nodes[i] is the node with ID i+1, stored by value; IDs are dense
	// so a slice replaces the former map[NodeID]*Node, every iteration
	// is ID-ordered by construction, and there is no per-node heap
	// object — Node pointers handed out point into this backing array.
	nodes   []Node
	out     [][]Edge
	in      [][]Edge
	byLabel map[string][]NodeID
	// indexes[key][value] lists nodes with Props.Get(key)==value, for
	// keys registered via CreateIndex. Slices are ID-sorted because
	// nodes are indexed in insertion order.
	indexes   map[string]map[string][]NodeID
	edgeCount int

	// propCur/propFull/propSpare form a chunked arena holding node
	// property storage: addNode copies incoming key/value pairs into the
	// current block and each Node.Props aliases its span. Blocks are
	// fixed-capacity and never reallocate, so earlier views stay valid;
	// Reset clears and recycles them.
	propCur   []string
	propFull  [][]string
	propSpare [][]string

	// last is the most recent Frozen view; Reset reclaims its arrays
	// into spare so the next Freeze builds without reallocating.
	last, spare *Frozen
}

// propBlockSize is the string capacity of one property-arena block.
const propBlockSize = 512

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		byLabel: map[string][]NodeID{},
		indexes: map[string]map[string][]NodeID{},
	}
}

// node returns the node for id, or nil when out of range.
func (g *Graph) node(id NodeID) *Node {
	if id < 1 || int64(id) > int64(len(g.nodes)) {
		return nil
	}
	return &g.nodes[id-1]
}

// Reset clears the graph for rebuilding while keeping every allocated
// buffer: node storage, per-node adjacency runs, label lists, index
// buckets, and the arrays of the last Frozen view (which the next
// Freeze reuses). Registered indexes stay registered. Reset invalidates
// everything previously obtained from this graph — *Node pointers,
// Frozen views, and slices they returned — so it is only for
// arena-style reuse where the previous analysis is completely finished,
// e.g. one worker re-analysing app after app.
func (g *Graph) Reset() {
	clear(g.nodes) // release retained label/property strings
	g.nodes = g.nodes[:0]
	// Truncating the outer slices keeps the per-node edge runs in the
	// backing array; growAdj reclaims their capacity one node at a time.
	g.out = g.out[:0]
	g.in = g.in[:0]
	for label, ids := range g.byLabel {
		g.byLabel[label] = ids[:0]
	}
	for _, byVal := range g.indexes {
		for v, ids := range byVal {
			byVal[v] = ids[:0]
		}
	}
	g.edgeCount = 0
	for _, b := range g.propFull {
		clear(b) // release retained property strings
		g.propSpare = append(g.propSpare, b[:0])
	}
	g.propFull = g.propFull[:0]
	clear(g.propCur)
	g.propCur = g.propCur[:0]
	if g.last != nil {
		g.spare, g.last = g.last, nil
	}
}

// AddNode inserts a node and returns its id. props may be nil.
func (g *Graph) AddNode(label string, props map[string]string) NodeID {
	kv := make(Props, 0, len(props)*2)
	if len(props) > 0 {
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			kv = append(kv, k, props[k])
		}
	}
	return g.addNode(label, kv)
}

// AddNodeKV inserts a node whose properties are given as alternating
// key/value pairs, avoiding the map allocation of AddNode. The pairs
// are copied into graph-owned storage, so callers may reuse the backing
// slice immediately.
func (g *Graph) AddNodeKV(label string, kv ...string) NodeID {
	if len(kv)%2 != 0 {
		panic("graphdb: AddNodeKV requires an even number of key/value strings")
	}
	return g.addNode(label, kv)
}

// internProps copies kv into the property arena and returns the aliased
// span. Blocks never reallocate, so previously returned spans survive
// later inserts; oversized records get their own allocation.
func (g *Graph) internProps(kv []string) Props {
	if len(kv) == 0 {
		return nil
	}
	if len(kv) > propBlockSize {
		out := make(Props, len(kv))
		copy(out, kv)
		return out
	}
	if len(g.propCur)+len(kv) > cap(g.propCur) {
		if g.propCur != nil {
			g.propFull = append(g.propFull, g.propCur)
		}
		if n := len(g.propSpare); n > 0 {
			g.propCur, g.propSpare = g.propSpare[n-1], g.propSpare[:n-1]
		} else {
			g.propCur = make([]string, 0, propBlockSize)
		}
	}
	off := len(g.propCur)
	g.propCur = append(g.propCur, kv...)
	return Props(g.propCur[off:len(g.propCur):len(g.propCur)])
}

func (g *Graph) addNode(label string, kv []string) NodeID {
	id := NodeID(len(g.nodes) + 1)
	g.nodes = append(g.nodes, Node{ID: id, Label: label, Props: g.internProps(kv)})
	g.out = growAdj(g.out)
	g.in = growAdj(g.in)
	g.byLabel[label] = append(g.byLabel[label], id)
	for key, byVal := range g.indexes {
		for i := 0; i+1 < len(kv); i += 2 {
			if kv[i] == key {
				byVal[kv[i+1]] = append(byVal[kv[i+1]], id)
				break
			}
		}
	}
	return id
}

// growAdj extends an adjacency column by one empty edge run, reusing
// the run capacity a Reset left behind in the backing array when
// possible.
func growAdj(adj [][]Edge) [][]Edge {
	if len(adj) < cap(adj) {
		adj = adj[:len(adj)+1]
		adj[len(adj)-1] = adj[len(adj)-1][:0]
		return adj
	}
	return append(adj, nil)
}

// AddEdge inserts a directed edge. Both endpoints must exist.
func (g *Graph) AddEdge(from, to NodeID, label string) error {
	if g.node(from) == nil {
		return fmt.Errorf("graphdb: edge from unknown node %d", from)
	}
	if g.node(to) == nil {
		return fmt.Errorf("graphdb: edge to unknown node %d", to)
	}
	e := Edge{From: from, To: to, Label: label}
	g.out[from-1] = append(g.out[from-1], e)
	g.in[to-1] = append(g.in[to-1], e)
	g.edgeCount++
	return nil
}

// Node returns a node by id (nil when absent).
func (g *Graph) Node(id NodeID) *Node { return g.node(id) }

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// Nodes returns all nodes in ascending ID order. The slice is fresh;
// the pointers share the graph's node storage.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.nodes))
	for i := range g.nodes {
		out[i] = &g.nodes[i]
	}
	return out
}

// NodesByLabel returns node ids with the given label, in insertion
// (= ascending ID) order.
func (g *Graph) NodesByLabel(label string) []NodeID {
	return append([]NodeID(nil), g.byLabel[label]...)
}

// CreateIndex registers a property key for indexed lookup; existing
// nodes are back-filled in ID order, so indexed lookups return
// ID-sorted slices.
func (g *Graph) CreateIndex(key string) {
	if _, ok := g.indexes[key]; ok {
		return
	}
	byVal := map[string][]NodeID{}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Props.Has(key) {
			v := n.Props.Get(key)
			byVal[v] = append(byVal[v], n.ID)
		}
	}
	g.indexes[key] = byVal
}

// FindByProp returns nodes whose property key equals value, using the
// index when available and a label-agnostic ID-ordered scan otherwise.
func (g *Graph) FindByProp(key, value string) []NodeID {
	if byVal, ok := g.indexes[key]; ok {
		return append([]NodeID(nil), byVal[value]...)
	}
	var out []NodeID
	for i := range g.nodes {
		if g.nodes[i].Props.Get(key) == value {
			out = append(out, g.nodes[i].ID)
		}
	}
	return out
}

// Out returns the targets of edges leaving id; label == "" matches all.
func (g *Graph) Out(id NodeID, label string) []NodeID {
	if g.node(id) == nil {
		return nil
	}
	var out []NodeID
	for _, e := range g.out[id-1] {
		if label == "" || e.Label == label {
			out = append(out, e.To)
		}
	}
	return out
}

// In returns the sources of edges entering id; label == "" matches all.
func (g *Graph) In(id NodeID, label string) []NodeID {
	if g.node(id) == nil {
		return nil
	}
	var out []NodeID
	for _, e := range g.in[id-1] {
		if label == "" || e.Label == label {
			out = append(out, e.From)
		}
	}
	return out
}

// OutEdges returns copies of the outgoing edges of id.
func (g *Graph) OutEdges(id NodeID) []Edge {
	if g.node(id) == nil {
		return nil
	}
	return append([]Edge(nil), g.out[id-1]...)
}

// Reachable computes the forward closure from the seed set following
// edges whose label is in labels (nil = all labels).
func (g *Graph) Reachable(seeds []NodeID, labels []string) map[NodeID]bool {
	allow := labelSet(labels)
	seen := map[NodeID]bool{}
	queue := make([]NodeID, 0, len(seeds))
	for _, s := range seeds {
		if g.node(s) != nil && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.out[cur-1] {
			if allow != nil && !allow[e.Label] {
				continue
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// Path returns one shortest path from from to to following edges whose
// label is in labels (nil = all), or nil when unreachable.
func (g *Graph) Path(from, to NodeID, labels []string) []NodeID {
	if g.node(from) == nil || g.node(to) == nil {
		return nil
	}
	allow := labelSet(labels)
	prev := map[NodeID]NodeID{from: from}
	queue := []NodeID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			break
		}
		for _, e := range g.out[cur-1] {
			if allow != nil && !allow[e.Label] {
				continue
			}
			if _, seen := prev[e.To]; !seen {
				prev[e.To] = cur
				queue = append(queue, e.To)
			}
		}
	}
	if _, ok := prev[to]; !ok {
		return nil
	}
	var path []NodeID
	for cur := to; ; cur = prev[cur] {
		path = append(path, cur)
		if cur == from {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func labelSet(labels []string) map[string]bool {
	if labels == nil {
		return nil
	}
	m := make(map[string]bool, len(labels))
	for _, l := range labels {
		m[l] = true
	}
	return m
}
