package graphdb

import "sync"

// Frozen is the compressed-sparse-row (CSR) view of a Graph produced by
// Freeze. Node and edge labels are interned into int32 symbol tables,
// adjacency is stored as contiguous edge arrays with per-node offset
// slices (out- and in-side), and property indexes are resolved to
// ID-sorted NodeID slices. A Frozen view is immutable and safe for
// concurrent readers.
//
// Freeze is a snapshot: mutations applied to the builder Graph after
// Freeze are not reflected in the frozen view. Per-node edge runs keep
// the builder's insertion order, so Out/In on the frozen view return
// exactly the same sequences as the mutable methods.
type Frozen struct {
	nodes []Node // shares the builder's backing array; index = NodeID-1

	nodeLabels  []string         // node-label symbol table, first-seen order
	nodeLabelID map[string]int32 // inverse of nodeLabels
	nodeLabel   []int32          // per-node interned label

	edgeLabels  []string         // edge-label symbol table, first-seen order
	edgeLabelID map[string]int32 // inverse of edgeLabels

	// CSR adjacency: the out-edges of node id are
	// outTo[outOff[id-1]:outOff[id]] with labels in the parallel
	// outLab run; likewise for the in-side.
	outOff, inOff []int32
	outTo, inTo   []NodeID
	outLab, inLab []int32

	byLabel map[string][]NodeID            // snapshot of the builder's label lists
	indexes map[string]map[string][]NodeID // property key -> value -> ID-sorted nodes

	edgeCount int
}

// Freeze compiles the graph into its CSR form. The builder stays
// usable for further construction, but those mutations are invisible
// to the returned view; freeze once, after the build completes.
//
// When the graph has been Reset since its previous Freeze, the arrays
// of that earlier (now invalidated) view are reused, so a worker
// rebuilding and refreezing graphs of similar shape reaches a
// steady state with no per-freeze allocation.
func (g *Graph) Freeze() *Frozen {
	n := len(g.nodes)
	f := g.spare
	g.spare = nil
	if f == nil {
		f = &Frozen{
			nodeLabelID: make(map[string]int32, 8),
			edgeLabelID: make(map[string]int32, 8),
			byLabel:     make(map[string][]NodeID, len(g.byLabel)),
			indexes:     make(map[string]map[string][]NodeID, len(g.indexes)),
		}
	} else {
		clear(f.nodeLabelID)
		clear(f.edgeLabelID)
		clear(f.byLabel)
		f.nodeLabels = f.nodeLabels[:0]
		f.edgeLabels = f.edgeLabels[:0]
		f.outTo, f.outLab = f.outTo[:0], f.outLab[:0]
		f.inTo, f.inLab = f.inTo[:0], f.inLab[:0]
	}
	f.nodes = g.nodes[:n:n]
	f.nodeLabel = resizeInt32(f.nodeLabel, n)
	f.outOff = resizeInt32(f.outOff, n+1)
	f.inOff = resizeInt32(f.inOff, n+1)
	f.edgeCount = g.edgeCount
	for i := range f.nodes {
		label := f.nodes[i].Label
		id, ok := f.nodeLabelID[label]
		if !ok {
			id = int32(len(f.nodeLabels))
			f.nodeLabels = append(f.nodeLabels, label)
			f.nodeLabelID[label] = id
		}
		f.nodeLabel[i] = id
	}
	if cap(f.outTo) < g.edgeCount {
		f.outTo = make([]NodeID, 0, g.edgeCount)
		f.outLab = make([]int32, 0, g.edgeCount)
		f.inTo = make([]NodeID, 0, g.edgeCount)
		f.inLab = make([]int32, 0, g.edgeCount)
	}
	intern := func(label string) int32 {
		id, ok := f.edgeLabelID[label]
		if !ok {
			id = int32(len(f.edgeLabels))
			f.edgeLabels = append(f.edgeLabels, label)
			f.edgeLabelID[label] = id
		}
		return id
	}
	f.outOff[0], f.inOff[0] = 0, 0
	for i := 0; i < n; i++ {
		for _, e := range g.out[i] {
			f.outTo = append(f.outTo, e.To)
			f.outLab = append(f.outLab, intern(e.Label))
		}
		f.outOff[i+1] = int32(len(f.outTo))
		for _, e := range g.in[i] {
			f.inTo = append(f.inTo, e.From)
			f.inLab = append(f.inLab, intern(e.Label))
		}
		f.inOff[i+1] = int32(len(f.inTo))
	}
	// Label lists and property indexes are append-only in the builder,
	// so capturing the slice headers (length-capped) is a stable
	// snapshot even if the builder keeps growing. Empty lists (possible
	// only for keys left behind by Reset) are skipped: a missing map
	// entry answers lookups identically.
	for label, ids := range g.byLabel {
		if len(ids) > 0 {
			f.byLabel[label] = ids[:len(ids):len(ids)]
		}
	}
	for key := range f.indexes {
		if _, ok := g.indexes[key]; !ok {
			delete(f.indexes, key)
		}
	}
	for key, byVal := range g.indexes {
		vals := f.indexes[key]
		if vals == nil {
			vals = make(map[string][]NodeID, len(byVal))
			f.indexes[key] = vals
		} else {
			clear(vals)
		}
		for v, ids := range byVal {
			if len(ids) > 0 {
				vals[v] = ids[:len(ids):len(ids)]
			}
		}
	}
	g.last = f
	return f
}

// resizeInt32 returns s with length n, reusing its capacity when it
// suffices. Contents are unspecified; callers overwrite every element.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// node returns the node for id, or nil when out of range.
func (f *Frozen) node(id NodeID) *Node {
	if id < 1 || int64(id) > int64(len(f.nodes)) {
		return nil
	}
	return &f.nodes[id-1]
}

// Node returns a node by id (nil when absent).
func (f *Frozen) Node(id NodeID) *Node { return f.node(id) }

// NodeCount returns the number of nodes.
func (f *Frozen) NodeCount() int { return len(f.nodes) }

// EdgeCount returns the number of edges.
func (f *Frozen) EdgeCount() int { return f.edgeCount }

// Nodes returns all nodes in ascending ID order. The slice is fresh;
// the pointers share the snapshot's node storage.
func (f *Frozen) Nodes() []*Node {
	out := make([]*Node, len(f.nodes))
	for i := range f.nodes {
		out[i] = &f.nodes[i]
	}
	return out
}

// NodesByLabel returns node ids with the given label, in insertion
// (= ascending ID) order.
func (f *Frozen) NodesByLabel(label string) []NodeID {
	return append([]NodeID(nil), f.byLabel[label]...)
}

// edgeMask resolves a label filter to a bitmask over interned edge
// labels. all reports "no filter"; a label unknown to the graph simply
// contributes no bit (it can match no edge). ok is false when the mask
// cannot represent the filter (≥64 distinct edge labels) and the
// caller must fall back to set-based filtering.
func (f *Frozen) edgeMask(labels []string) (mask uint64, all, ok bool) {
	if labels == nil {
		return 0, true, true
	}
	for _, l := range labels {
		id, found := f.edgeLabelID[l]
		if !found {
			continue
		}
		if id >= 64 {
			return 0, false, false
		}
		mask |= uint64(1) << uint(id)
	}
	return mask, false, true
}

// labelFallback builds the set-based filter used when edgeMask
// overflows (≥64 distinct edge labels in one graph — never the case
// for APGs, but the contract stays total).
func (f *Frozen) labelFallback(labels []string) map[int32]bool {
	m := make(map[int32]bool, len(labels))
	for _, l := range labels {
		if id, ok := f.edgeLabelID[l]; ok {
			m[id] = true
		}
	}
	return m
}

// Out returns the targets of edges leaving id; label == "" matches
// all. For label == "" the returned slice aliases the CSR arrays
// (zero-copy) and must not be mutated; filtered lookups allocate.
func (f *Frozen) Out(id NodeID, label string) []NodeID {
	if f.node(id) == nil {
		return nil
	}
	lo, hi := f.outOff[id-1], f.outOff[id]
	if label == "" {
		return f.outTo[lo:hi:hi]
	}
	return f.filter(nil, f.outTo, f.outLab, lo, hi, label)
}

// OutInto appends the targets of id's label-filtered out-edges to dst
// and returns it, allocating only when dst lacks capacity.
func (f *Frozen) OutInto(dst []NodeID, id NodeID, label string) []NodeID {
	if f.node(id) == nil {
		return dst
	}
	lo, hi := f.outOff[id-1], f.outOff[id]
	if label == "" {
		return append(dst, f.outTo[lo:hi]...)
	}
	return f.filter(dst, f.outTo, f.outLab, lo, hi, label)
}

// In returns the sources of edges entering id; label == "" matches
// all. The label == "" result aliases the CSR arrays.
func (f *Frozen) In(id NodeID, label string) []NodeID {
	if f.node(id) == nil {
		return nil
	}
	lo, hi := f.inOff[id-1], f.inOff[id]
	if label == "" {
		return f.inTo[lo:hi:hi]
	}
	return f.filter(nil, f.inTo, f.inLab, lo, hi, label)
}

// InInto appends the sources of id's label-filtered in-edges to dst.
func (f *Frozen) InInto(dst []NodeID, id NodeID, label string) []NodeID {
	if f.node(id) == nil {
		return dst
	}
	lo, hi := f.inOff[id-1], f.inOff[id]
	if label == "" {
		return append(dst, f.inTo[lo:hi]...)
	}
	return f.filter(dst, f.inTo, f.inLab, lo, hi, label)
}

func (f *Frozen) filter(dst []NodeID, to []NodeID, lab []int32, lo, hi int32, label string) []NodeID {
	want, ok := f.edgeLabelID[label]
	if !ok {
		return dst
	}
	for i := lo; i < hi; i++ {
		if lab[i] == want {
			dst = append(dst, to[i])
		}
	}
	return dst
}

// OutDegree returns the number of out-edges of id (all labels).
func (f *Frozen) OutDegree(id NodeID) int {
	if f.node(id) == nil {
		return 0
	}
	return int(f.outOff[id] - f.outOff[id-1])
}

// FindByProp returns nodes whose property key equals value, using the
// snapshot index when available and an ID-ordered scan otherwise.
func (f *Frozen) FindByProp(key, value string) []NodeID {
	if byVal, ok := f.indexes[key]; ok {
		return append([]NodeID(nil), byVal[value]...)
	}
	var out []NodeID
	for i := range f.nodes {
		if f.nodes[i].Props.Get(key) == value {
			out = append(out, f.nodes[i].ID)
		}
	}
	return out
}

// scratch holds reusable BFS state. marks is an epoch-stamped visited
// array: marks[i] == epoch means node i+1 was visited in the current
// traversal, so resets are O(1) (bump the epoch) instead of O(n).
type scratch struct {
	marks []uint32
	epoch uint32
	queue []NodeID
	prev  []int32 // predecessor node index +1, for path reconstruction
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// begin prepares the scratch for a traversal over n nodes.
func (s *scratch) begin(n int) {
	if len(s.marks) < n {
		s.marks = make([]uint32, n)
		s.prev = make([]int32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: clear stale stamps once
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
}

// VisitSet is the result of a frozen reachability traversal: an
// epoch-stamped membership structure plus the visit order. It is
// immutable after ReachableVisit returns and safe for concurrent
// readers.
type VisitSet struct {
	marks []uint32
	epoch uint32
	// Order lists the visited nodes in BFS order (seeds first).
	Order []NodeID
}

// Has reports whether id was visited.
func (v *VisitSet) Has(id NodeID) bool {
	return id >= 1 && int64(id) <= int64(len(v.marks)) && v.marks[id-1] == v.epoch
}

// Len returns the number of visited nodes.
func (v *VisitSet) Len() int { return len(v.Order) }

// ReachableVisit computes the forward closure from the seed set
// following edges whose label is in labels (nil = all labels). The
// result owns its storage (it is retained, e.g. memoized per-APG), so
// this allocates O(nodes) once rather than using pooled scratch.
func (f *Frozen) ReachableVisit(seeds []NodeID, labels []string) *VisitSet {
	n := len(f.nodes)
	v := &VisitSet{marks: make([]uint32, n), epoch: 1}
	mask, all, ok := f.edgeMask(labels)
	var fallback map[int32]bool
	if !ok {
		fallback = f.labelFallback(labels)
	}
	for _, s := range seeds {
		if f.node(s) != nil && v.marks[s-1] != v.epoch {
			v.marks[s-1] = v.epoch
			v.Order = append(v.Order, s)
		}
	}
	for head := 0; head < len(v.Order); head++ {
		cur := v.Order[head]
		lo, hi := f.outOff[cur-1], f.outOff[cur]
		for i := lo; i < hi; i++ {
			if !all {
				if ok {
					if mask&(uint64(1)<<uint(f.outLab[i])) == 0 {
						continue
					}
				} else if !fallback[f.outLab[i]] {
					continue
				}
			}
			to := f.outTo[i]
			if v.marks[to-1] != v.epoch {
				v.marks[to-1] = v.epoch
				v.Order = append(v.Order, to)
			}
		}
	}
	return v
}

// Reachable computes the forward closure as a map, mirroring
// Graph.Reachable for drop-in compatibility.
func (f *Frozen) Reachable(seeds []NodeID, labels []string) map[NodeID]bool {
	v := f.ReachableVisit(seeds, labels)
	seen := make(map[NodeID]bool, len(v.Order))
	for _, id := range v.Order {
		seen[id] = true
	}
	return seen
}

// Path returns one shortest path from from to to following edges whose
// label is in labels (nil = all), or nil when unreachable. BFS state
// comes from an internal pool, so steady-state calls allocate only the
// returned path.
func (f *Frozen) Path(from, to NodeID, labels []string) []NodeID {
	if f.node(from) == nil || f.node(to) == nil {
		return nil
	}
	mask, all, ok := f.edgeMask(labels)
	var fallback map[int32]bool
	if !ok {
		fallback = f.labelFallback(labels)
	}
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	s.begin(len(f.nodes))
	s.marks[from-1] = s.epoch
	s.prev[from-1] = int32(from)
	s.queue = append(s.queue, from)
	found := from == to
	for head := 0; head < len(s.queue) && !found; head++ {
		cur := s.queue[head]
		lo, hi := f.outOff[cur-1], f.outOff[cur]
		for i := lo; i < hi; i++ {
			if !all {
				if ok {
					if mask&(uint64(1)<<uint(f.outLab[i])) == 0 {
						continue
					}
				} else if !fallback[f.outLab[i]] {
					continue
				}
			}
			next := f.outTo[i]
			if s.marks[next-1] == s.epoch {
				continue
			}
			s.marks[next-1] = s.epoch
			s.prev[next-1] = int32(cur)
			if next == to {
				found = true
				break
			}
			s.queue = append(s.queue, next)
		}
	}
	if !found {
		return nil
	}
	var path []NodeID
	for cur := to; ; cur = NodeID(s.prev[cur-1]) {
		path = append(path, cur)
		if cur == from {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
