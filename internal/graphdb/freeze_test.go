package graphdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomGraph builds a random labelled graph: nLo..nHi nodes over a few
// node labels, ~2 edges per node over a few edge labels, and properties
// drawn from a small vocabulary so FindByProp has collisions to find.
func randomGraph(r *rand.Rand) (*Graph, []NodeID) {
	g := New()
	nodeLabels := []string{"class", "method", "stmt"}
	edgeLabels := []string{"calls", "cfg", "du", "contains"}
	props := []string{"a", "b", "c"}
	n := 2 + r.Intn(24)
	ids := make([]NodeID, n)
	for i := range ids {
		if r.Intn(3) == 0 {
			ids[i] = g.AddNode(nodeLabels[r.Intn(len(nodeLabels))], map[string]string{
				"name": props[r.Intn(len(props))],
				"kind": props[r.Intn(len(props))],
			})
		} else {
			ids[i] = g.AddNodeKV(nodeLabels[r.Intn(len(nodeLabels))],
				"name", props[r.Intn(len(props))])
		}
	}
	for i := 0; i < n*2; i++ {
		_ = g.AddEdge(ids[r.Intn(n)], ids[r.Intn(n)], edgeLabels[r.Intn(len(edgeLabels))])
	}
	return g, ids
}

// TestFrozenNeighborsDifferential: Out/In on the frozen view equal the
// mutable graph exactly (order included) for every node and label,
// including the unfiltered "" label and labels absent from the graph.
func TestFrozenNeighborsDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, ids := randomGraph(r)
		fz := g.Freeze()
		labels := []string{"", "calls", "cfg", "du", "contains", "nosuch"}
		for _, id := range append(ids, 0, NodeID(len(ids)+5)) {
			for _, lab := range labels {
				if !sameIDs(g.Out(id, lab), fz.Out(id, lab)) {
					t.Logf("Out(%d,%q): %v vs %v", id, lab, g.Out(id, lab), fz.Out(id, lab))
					return false
				}
				if !sameIDs(g.In(id, lab), fz.In(id, lab)) {
					t.Logf("In(%d,%q): %v vs %v", id, lab, g.In(id, lab), fz.In(id, lab))
					return false
				}
				if !sameIDs(g.Out(id, lab), fz.OutInto(nil, id, lab)) {
					return false
				}
				if !sameIDs(g.In(id, lab), fz.InInto(nil, id, lab)) {
					return false
				}
			}
			if len(g.Out(id, "")) != fz.OutDegree(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenReachableDifferential: frozen reachability (both the map
// form and the VisitSet form) equals the mutable BFS closure for every
// label-filter shape.
func TestFrozenReachableDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, ids := randomGraph(r)
		fz := g.Freeze()
		filters := [][]string{nil, {"calls"}, {"calls", "cfg"}, {"nosuch"}, {}}
		for _, labels := range filters {
			seeds := []NodeID{ids[r.Intn(len(ids))], ids[r.Intn(len(ids))], 999}
			want := g.Reachable(seeds, labels)
			got := fz.Reachable(seeds, labels)
			if !reflect.DeepEqual(want, got) {
				t.Logf("Reachable(%v,%v): %v vs %v", seeds, labels, want, got)
				return false
			}
			vs := fz.ReachableVisit(seeds, labels)
			if vs.Len() != len(want) {
				return false
			}
			for id := range want {
				if !vs.Has(id) {
					return false
				}
			}
			for _, id := range append(ids, 999) {
				if vs.Has(id) != want[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenPathDifferential: frozen path search returns exactly the
// mutable graph's shortest path — both BFS implementations visit edges
// in insertion order, so even tie-breaks agree.
func TestFrozenPathDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, ids := randomGraph(r)
		fz := g.Freeze()
		filters := [][]string{nil, {"calls", "du"}, {"nosuch"}}
		for trial := 0; trial < 8; trial++ {
			from, to := ids[r.Intn(len(ids))], ids[r.Intn(len(ids))]
			for _, labels := range filters {
				want := g.Path(from, to, labels)
				got := fz.Path(from, to, labels)
				if !reflect.DeepEqual(want, got) {
					t.Logf("Path(%d,%d,%v): %v vs %v", from, to, labels, want, got)
					return false
				}
			}
		}
		// Unknown endpoints stay nil on both sides.
		return g.Path(ids[0], 999, nil) == nil && fz.Path(ids[0], 999, nil) == nil &&
			g.Path(999, ids[0], nil) == nil && fz.Path(999, ids[0], nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenLookupDifferential: node lookups, label lists, property
// scans/indexes, and the fluent Query API agree between the two views.
func TestFrozenLookupDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, ids := randomGraph(r)
		g.CreateIndex("name")
		fz := g.Freeze()
		if g.NodeCount() != fz.NodeCount() || g.EdgeCount() != fz.EdgeCount() {
			return false
		}
		for _, label := range []string{"class", "method", "stmt", "nosuch"} {
			if !sameIDs(g.NodesByLabel(label), fz.NodesByLabel(label)) {
				return false
			}
		}
		for _, key := range []string{"name", "kind", "nosuch"} {
			for _, val := range []string{"a", "b", "c", ""} {
				if !sameIDs(g.FindByProp(key, val), fz.FindByProp(key, val)) {
					t.Logf("FindByProp(%q,%q): %v vs %v", key, val,
						g.FindByProp(key, val), fz.FindByProp(key, val))
					return false
				}
			}
		}
		for _, id := range ids {
			if g.Node(id) != fz.Node(id) {
				return false
			}
		}
		mq := g.Query("method").Where("name", "a").Out("calls").Collect()
		fq := fz.Query("method").Where("name", "a").Out("calls").Collect()
		if !sameIDs(mq, fq) {
			return false
		}
		mq = g.QueryFrom(ids...).In("cfg").Collect()
		fq = fz.QueryFrom(ids...).In("cfg").Collect()
		return sameIDs(mq, fq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeSnapshot: mutations after Freeze are invisible to the
// frozen view.
func TestFreezeSnapshot(t *testing.T) {
	g := New()
	a := g.AddNodeKV("m", "name", "a")
	b := g.AddNodeKV("m", "name", "b")
	if err := g.AddEdge(a, b, "calls"); err != nil {
		t.Fatal(err)
	}
	fz := g.Freeze()
	c := g.AddNodeKV("m", "name", "a")
	_ = g.AddEdge(b, c, "calls")
	if fz.NodeCount() != 2 || fz.EdgeCount() != 1 {
		t.Fatalf("snapshot grew: %d nodes %d edges", fz.NodeCount(), fz.EdgeCount())
	}
	if fz.Node(c) != nil {
		t.Fatal("snapshot sees post-freeze node")
	}
	if got := fz.NodesByLabel("m"); len(got) != 2 {
		t.Fatalf("snapshot label list grew: %v", got)
	}
	if got := fz.FindByProp("name", "a"); len(got) != 1 || got[0] != a {
		t.Fatalf("snapshot prop scan = %v", got)
	}
	if got := fz.Reachable([]NodeID{b}, nil); len(got) != 1 {
		t.Fatalf("snapshot reachability sees new edge: %v", got)
	}
	// The builder keeps working.
	if got := g.Reachable([]NodeID{a}, nil); len(got) != 3 {
		t.Fatalf("builder closure = %v", got)
	}
}

// TestNodesSorted: Nodes() returns ascending IDs on both views.
func TestNodesSorted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, _ := randomGraph(r)
	fz := g.Freeze()
	for name, nodes := range map[string][]*Node{"graph": g.Nodes(), "frozen": fz.Nodes()} {
		if len(nodes) != g.NodeCount() {
			t.Fatalf("%s Nodes() len = %d", name, len(nodes))
		}
		for i, n := range nodes {
			if n.ID != NodeID(i+1) {
				t.Fatalf("%s Nodes()[%d].ID = %d", name, i, n.ID)
			}
		}
	}
}

// TestPropsKV: kv-slice properties behave like the former map.
func TestPropsKV(t *testing.T) {
	g := New()
	id := g.AddNodeKV("x", "op", "invoke", "index", "3")
	n := g.Node(id)
	if n.Prop("op") != "invoke" || n.Prop("index") != "3" || n.Prop("nosuch") != "" {
		t.Fatalf("props = %v", n.Props)
	}
	if !n.Props.Has("op") || n.Props.Has("nosuch") || n.Props.Len() != 2 {
		t.Fatalf("Has/Len wrong: %v", n.Props)
	}
	// AddNode's map form sorts keys for deterministic storage.
	id2 := g.AddNode("x", map[string]string{"b": "2", "a": "1"})
	if got := fmt.Sprint(g.Node(id2).Props); got != "[a 1 b 2]" {
		t.Fatalf("map-form props = %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd kv accepted")
		}
	}()
	g.AddNodeKV("x", "dangling")
}

func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
