package apg

import (
	"fmt"
	"io"
	"sort"

	"ppchecker/internal/graphdb"
)

// WriteDot renders the APG's class/method layer as a Graphviz dot
// document: class clusters containing method nodes, with call,
// callback, and icc edges. Statement nodes are omitted — the method
// graph is what one inspects when debugging reachability.
func (p *APG) WriteDot(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph apg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")

	// Stable ordering: methods by node id.
	type methodInfo struct {
		id    graphdb.NodeID
		class string
		name  string
	}
	var methods []methodInfo
	for _, id := range p.G.NodesByLabel(LabelMethod) {
		n := p.G.Node(id)
		methods = append(methods, methodInfo{id: id, class: n.Prop("class"), name: n.Prop("name")})
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].id < methods[j].id })

	byClass := map[string][]methodInfo{}
	var classes []string
	for _, m := range methods {
		if len(byClass[m.class]) == 0 {
			classes = append(classes, m.class)
		}
		byClass[m.class] = append(byClass[m.class], m)
	}
	entries := map[graphdb.NodeID]bool{}
	for _, e := range p.Entries() {
		if id, ok := p.methodNode[e]; ok {
			entries[id] = true
		}
	}
	for ci, cls := range classes {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=%q;\n", ci, cls)
		for _, m := range byClass[cls] {
			attrs := ""
			if entries[m.id] {
				attrs = ", style=filled, fillcolor=lightblue"
			}
			fmt.Fprintf(w, "    n%d [label=%q%s];\n", m.id, m.name, attrs)
		}
		fmt.Fprintln(w, "  }")
	}
	styles := map[string]string{
		EdgeCalls:    "",
		EdgeCallback: " [style=dashed, color=darkorange, label=\"cb\"]",
		EdgeICC:      " [style=dotted, color=purple, label=\"icc\"]",
	}
	for _, m := range methods {
		for _, e := range p.G.OutEdges(m.id) {
			style, ok := styles[e.Label]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.From, e.To, style)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
