package apg

import (
	"strings"
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/graphdb"
)

// fixtureApp builds an app exercising explicit calls, EdgeMiner
// callbacks, ICC, and dead code.
const fixtureAsm = `
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Lcom/example/app/MainActivity;->loadData()V
    new-instance v1, Lcom/example/app/ClickHandler;
    invoke-virtual {v2, v1}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    new-instance v3, Landroid/content/Intent;
    const-string v4, "com.example.app.SyncService"
    invoke-virtual {v3, v4}, Landroid/content/Intent;->setClassName(Ljava/lang/String;)Landroid/content/Intent;
    invoke-virtual {v0, v3}, Landroid/content/Context;->startService(Landroid/content/Intent;)Landroid/content/ComponentName;
    return-void
.end method
.method loadData()V regs=4
    invoke-virtual {v0}, Lcom/example/app/MainActivity;->helper()V
    return-void
.end method
.method helper()V regs=2
    return-void
.end method
.method deadCode()V regs=2
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    return-void
.end method
.end class
.class Lcom/example/app/ClickHandler;
.method onClick(Landroid/view/View;)V regs=4
    invoke-virtual {v0}, Lcom/example/app/ClickHandler;->handleClick()V
    return-void
.end method
.method handleClick()V regs=2
    return-void
.end method
.end class
.class Lcom/example/app/SyncService; extends Landroid/app/Service;
.method onStartCommand(Landroid/content/Intent;II)I regs=4
    invoke-virtual {v0}, Lcom/example/app/SyncService;->syncWork()V
    const v1, 1
    return v1
.end method
.method syncWork()V regs=2
    return-void
.end method
.end class
.class Lcom/example/app/Worker; extends Ljava/lang/Thread;
.method run()V regs=2
    return-void
.end method
.end class
`

func fixtureAPK(t *testing.T) *apk.APK {
	t.Helper()
	d, err := dex.Assemble(fixtureAsm)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package: "com.example.app",
		Application: apk.Application{
			Activities: []apk.Component{{Name: "com.example.app.MainActivity"}},
			Services:   []apk.Component{{Name: "com.example.app.SyncService"}},
		},
	}
	return apk.New(m, d)
}

func methodRef(cls, name, sig string) dex.MethodRef {
	return dex.MethodRef{Class: dex.TypeDesc(cls), Name: name, Sig: sig}
}

func TestBuildStructure(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	if got := len(p.G.NodesByLabel(LabelClass)); got != 4 {
		t.Fatalf("class nodes = %d", got)
	}
	if got := len(p.G.NodesByLabel(LabelMethod)); got != 9 {
		t.Fatalf("method nodes = %d", got)
	}
	if len(p.G.NodesByLabel(LabelStmt)) == 0 {
		t.Fatal("no stmt nodes")
	}
}

func TestCallEdges(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	onCreate, ok := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	if !ok {
		t.Fatal("onCreate node missing")
	}
	callees := p.G.Out(onCreate, EdgeCalls)
	found := false
	for _, id := range callees {
		if p.G.Node(id).Prop("name") == "loadData" {
			found = true
		}
	}
	if !found {
		t.Fatalf("onCreate calls = %v", callees)
	}
}

func TestEdgeMinerCallback(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	reach := p.ReachableMethods()
	// handleClick is reached only through the onClick callback edge —
	// but onClick is itself a UI entry, so check the callback edge
	// directly instead.
	onCreate, _ := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	cbs := p.G.Out(onCreate, EdgeCallback)
	if len(cbs) != 1 || p.G.Node(cbs[0]).Prop("name") != "onClick" {
		t.Fatalf("callback edges from onCreate = %v", cbs)
	}
	if !reach[methodRef("Lcom/example/app/ClickHandler;", "handleClick", "()V")] {
		t.Fatal("handleClick unreachable")
	}
}

func TestICCEdge(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	onCreate, _ := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	iccs := p.G.Out(onCreate, EdgeICC)
	foundStart := false
	for _, id := range iccs {
		if p.G.Node(id).Prop("name") == "onStartCommand" {
			foundStart = true
		}
	}
	if !foundStart {
		t.Fatalf("icc edges = %v", iccs)
	}
	// syncWork reached transitively through the ICC edge.
	if !p.ReachableMethods()[methodRef("Lcom/example/app/SyncService;", "syncWork", "()V")] {
		t.Fatal("syncWork unreachable through ICC")
	}
}

func TestICCDisabled(t *testing.T) {
	// Component entries remain entry points without ICC (the paper's
	// entry model), so reachability is unchanged — but the icc edges
	// themselves must be absent.
	p := mustBuild(t, fixtureAPK(t), Options{EdgeMiner: true, ICC: false})
	onCreate, _ := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	if iccs := p.G.Out(onCreate, EdgeICC); len(iccs) != 0 {
		t.Fatalf("icc edges with ICC disabled: %v", iccs)
	}
}

func TestEdgeMinerDisabled(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), Options{EdgeMiner: false, ICC: true})
	onCreate, _ := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	if cbs := p.G.Out(onCreate, EdgeCallback); len(cbs) != 0 {
		t.Fatalf("callback edges with EdgeMiner disabled: %v", cbs)
	}
}

func TestDeadCodeUnreachable(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	if p.ReachableMethods()[methodRef("Lcom/example/app/MainActivity;", "deadCode", "()V")] {
		t.Fatal("deadCode reported reachable")
	}
}

func TestEntries(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	entries := p.Entries()
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	for _, want := range []string{"onCreate", "onStartCommand", "onClick"} {
		if !names[want] {
			t.Errorf("entry %s missing from %v", want, entries)
		}
	}
	if names["deadCode"] || names["helper"] {
		t.Errorf("non-entry method listed: %v", entries)
	}
}

func TestCallPath(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	path := p.CallPath(methodRef("Lcom/example/app/MainActivity;", "helper", "()V"))
	if len(path) < 2 {
		t.Fatalf("path = %v", path)
	}
	last := path[len(path)-1]
	if last.Name != "helper" {
		t.Fatalf("path end = %v", last)
	}
	if p.CallPath(methodRef("Lcom/example/app/MainActivity;", "deadCode", "()V")) != nil {
		t.Fatal("path to dead code found")
	}
}

func TestThreadStartCallback(t *testing.T) {
	// Worker extends Thread; calling start() on it should add a
	// callback edge to Worker.run().
	src := `
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    new-instance v1, Lcom/example/app/Worker;
    invoke-virtual {v1}, Lcom/example/app/Worker;->start()V
    return-void
.end method
.end class
.class Lcom/example/app/Worker; extends Ljava/lang/Thread;
.method run()V regs=2
    invoke-virtual {v0}, Lcom/example/app/Worker;->work()V
    return-void
.end method
.method work()V regs=2
    return-void
.end method
.end class
`
	d, err := dex.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package: "com.example.app",
		Application: apk.Application{
			Activities: []apk.Component{{Name: "com.example.app.MainActivity"}},
		},
	}
	p := mustBuild(t, apk.New(m, d), DefaultOptions())
	if !p.ReachableMethods()[methodRef("Lcom/example/app/Worker;", "work", "()V")] {
		t.Fatal("Worker.work unreachable through Thread.start callback")
	}
}

func TestWriteDot(t *testing.T) {
	p := mustBuild(t, fixtureAPK(t), DefaultOptions())
	var buf strings.Builder
	if err := p.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph apg", "onCreate", "SyncService", "icc", "cb", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Every edge references declared nodes.
	if strings.Count(out, "subgraph") != 4 {
		t.Errorf("expected 4 class clusters, got %d", strings.Count(out, "subgraph"))
	}
}

func TestResolveIntentThroughMove(t *testing.T) {
	// The intent register is moved before launching; resolution must
	// follow the move chain.
	src := `
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    new-instance v1, Landroid/content/Intent;
    const-string v2, "com.example.app.SyncService"
    invoke-virtual {v1, v2}, Landroid/content/Intent;->setClassName(Ljava/lang/String;)Landroid/content/Intent;
    move v3, v1
    invoke-virtual {v0, v3}, Landroid/content/Context;->startService(Landroid/content/Intent;)Landroid/content/ComponentName;
    return-void
.end method
.end class
.class Lcom/example/app/SyncService; extends Landroid/app/Service;
.method onStartCommand(Landroid/content/Intent;II)I regs=4
    const v1, 1
    return v1
.end method
.end class
`
	d, err := dex.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package: "com.example.app",
		Application: apk.Application{
			Activities: []apk.Component{{Name: "com.example.app.MainActivity"}},
			Services:   []apk.Component{{Name: "com.example.app.SyncService"}},
		},
	}
	p := mustBuild(t, apk.New(m, d), DefaultOptions())
	onCreate, _ := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	if iccs := p.G.Out(onCreate, EdgeICC); len(iccs) == 0 {
		t.Fatal("icc edge missing through move chain")
	}
}

func TestIntentWithoutTargetIgnored(t *testing.T) {
	src := `
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    new-instance v1, Landroid/content/Intent;
    invoke-virtual {v0, v1}, Landroid/content/Context;->startActivity(Landroid/content/Intent;)V
    return-void
.end method
.end class
`
	d, err := dex.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package: "com.example.app",
		Application: apk.Application{
			Activities: []apk.Component{{Name: "com.example.app.MainActivity"}},
		},
	}
	p := mustBuild(t, apk.New(m, d), DefaultOptions())
	onCreate, _ := p.MethodNode(methodRef("Lcom/example/app/MainActivity;", "onCreate", "(Landroid/os/Bundle;)V"))
	if iccs := p.G.Out(onCreate, EdgeICC); len(iccs) != 0 {
		t.Fatalf("icc edge for targetless intent: %v", iccs)
	}
}

func TestRegistrationsTable(t *testing.T) {
	regs := Registrations()
	if len(regs) == 0 {
		t.Fatal("no registrations")
	}
	seen := map[string]bool{}
	for _, r := range regs {
		key := string(r.Class) + "->" + r.Name
		if seen[key] {
			t.Errorf("duplicate registration %s", key)
		}
		seen[key] = true
		if r.Callback == "" {
			t.Errorf("registration %s has no callback", key)
		}
	}
}

// TestDataDependenceEdges: the graph answers source→sink questions
// directly, the way the paper phrases FlowDroid integration ("include
// the source-sink paths ... in the graph database").
func TestDataDependenceEdges(t *testing.T) {
	src := `
.class Lcom/example/app/MainActivity; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    move v2, v1
    invoke-static {v3, v2}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`
	d, err := dex.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{
		Package: "com.example.app",
		Application: apk.Application{
			Activities: []apk.Component{{Name: "com.example.app.MainActivity"}},
		},
	}
	p := mustBuild(t, apk.New(m, d), DefaultOptions())
	// Find the source and sink statement nodes by their target method.
	var srcID, sinkID graphdb.NodeID
	for _, id := range p.G.NodesByLabel(LabelStmt) {
		n := p.G.Node(id)
		if strings.Contains(n.Prop("target"), "getDeviceId") {
			srcID = id
		}
		if strings.Contains(n.Prop("target"), "Log;->d") {
			sinkID = id
		}
	}
	if srcID == 0 || sinkID == 0 {
		t.Fatal("source or sink statement not found")
	}
	// The source must reach the sink over def-use edges alone.
	path := p.G.Path(srcID, sinkID, []string{EdgeDU})
	if path == nil {
		t.Fatal("no du path from source to sink in the graph")
	}
	if len(path) != 3 { // source → move → sink
		t.Fatalf("du path = %v (len %d, want 3)", path, len(path))
	}
}

func mustBuild(t *testing.T, a *apk.APK, opts Options) *APG {
	t.Helper()
	p, err := Build(a, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}
