// Package apg builds the Android Property Graph of §III-C1: a property
// graph integrating the app's structure (classes, methods, statements),
// interprocedural control flow (call graph, CFG), implicit callback
// edges (the EdgeMiner role), and inter-component edges resolved from
// intents (the IccTA role). The graph is stored in the graphdb
// substrate and queried for entry-point reachability.
package apg

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/graphdb"
)

// Node labels in the APG.
const (
	LabelClass  = "class"
	LabelMethod = "method"
	LabelStmt   = "stmt"
)

// Edge labels in the APG.
const (
	EdgeContains = "contains" // class -> method
	EdgeCode     = "code"     // method -> stmt
	EdgeCFG      = "cfg"      // stmt -> stmt
	EdgeCalls    = "calls"    // method -> method (explicit invoke)
	EdgeCallback = "callback" // method -> method (EdgeMiner implicit)
	EdgeICC      = "icc"      // method -> method (IccTA intent edge)
	EdgeDU       = "du"       // stmt -> stmt (register def-use, the SDG layer)
)

// Options toggles analysis features (used by the ablation benchmarks).
type Options struct {
	// EdgeMiner enables implicit callback edges.
	EdgeMiner bool
	// ICC enables intent-resolved inter-component edges.
	ICC bool
}

// DefaultOptions enables everything, as the paper's system does.
func DefaultOptions() Options { return Options{EdgeMiner: true, ICC: true} }

// Size guards. Adversarial images (cycle-heavy generated call graphs,
// fuzzed bytecode) must terminate with an error instead of exhausting
// memory or wall clock: any method whose code exceeds MaxMethodCode
// instructions, or any image whose statement total exceeds
// maxTotalStmts, aborts the build. Legitimate synthetic corpus methods
// are two orders of magnitude below both limits.
const (
	// MaxMethodCode is the per-method instruction ceiling.
	MaxMethodCode = 4096
	// maxTotalStmts is the whole-image statement ceiling.
	maxTotalStmts = 1 << 20
)

// ErrTooLarge marks a build aborted by a size guard.
var ErrTooLarge = errors.New("apg: input exceeds analysis size limits")

// APG is the built graph plus lookup maps. After construction the
// graph is compiled to its frozen CSR view (Frozen); all traversal
// queries — reachability, path search, icc-edge lookups — run against
// that view, while G stays available as the mutable builder.
type APG struct {
	G   *graphdb.Graph
	APK *apk.APK

	methodNode map[dex.MethodRef]graphdb.NodeID
	classNode  map[dex.TypeDesc]graphdb.NodeID
	opts       Options

	frozenOnce sync.Once
	frozen     *graphdb.Frozen

	entriesOnce sync.Once
	entries     []dex.MethodRef
	entrySeeds  []graphdb.NodeID

	reachOnce sync.Once
	reach     *graphdb.VisitSet

	reachMapOnce sync.Once
	reachMap     map[dex.MethodRef]bool
}

// Frozen returns the CSR view of the graph, freezing it on first use.
// The returned view is immutable and safe for concurrent readers; it
// snapshots the graph as of the first call, so mutate (if at all) only
// before querying.
func (p *APG) Frozen() *graphdb.Frozen {
	p.frozenOnce.Do(func() { p.frozen = p.G.Freeze() })
	return p.frozen
}

// itoaSmall returns the decimal rendering of i without allocating for
// the indexes that occur in practice (instruction indexes are bounded
// by MaxMethodCode).
var smallInts = func() [1024]string {
	var a [1024]string
	for i := range a {
		a[i] = strconv.Itoa(i)
	}
	return a
}()

func itoaSmall(i int) string {
	if i >= 0 && i < len(smallInts) {
		return smallInts[i]
	}
	return strconv.Itoa(i)
}

// BuildScratch holds reusable APG build buffers. Callers running many
// builds (the eval/serve/stream worker pools) pass one via
// BuildCtxWith to stop re-allocating per app; a zero value is ready to
// use and a nil scratch falls back to an internal pool.
type BuildScratch struct {
	stmtIDs []graphdb.NodeID
	defs    map[int][]int
	defRegs []int
	kv      []string // statement property pairs; graphdb copies them out

	// Arena state reused across builds when the caller owns the
	// scratch: the graph database itself plus the APG lookup maps. A
	// caller-provided scratch must outlive the APG built from it, and
	// the next build from the same scratch invalidates that APG (its
	// graph storage is reset in place). The internal pool cannot make
	// that guarantee — pooled scratches are recycled before the APG is
	// discarded — so the pool path allocates these fresh per build.
	graph      *graphdb.Graph
	methodNode map[dex.MethodRef]graphdb.NodeID
	classNode  map[dex.TypeDesc]graphdb.NodeID
}

var buildScratchPool = sync.Pool{New: func() any { return new(BuildScratch) }}

// Build constructs the APG for an app.
func Build(a *apk.APK, opts Options) (*APG, error) {
	return BuildCtx(context.Background(), a, opts)
}

// BuildCtx constructs the APG for an app, honouring ctx cancellation
// between classes. Malformed input — nil image, branch targets outside
// their method, methods or images beyond the size guards — returns an
// error instead of panicking.
func BuildCtx(ctx context.Context, a *apk.APK, opts Options) (*APG, error) {
	return BuildCtxWith(ctx, a, opts, nil)
}

// BuildCtxWith is BuildCtx with caller-provided build buffers; a nil
// scratch borrows one from an internal pool.
func BuildCtxWith(ctx context.Context, a *apk.APK, opts Options, s *BuildScratch) (*APG, error) {
	if a == nil || a.Dex == nil {
		return nil, errors.New("apg: nil apk or bytecode")
	}
	p := &APG{APK: a, opts: opts}
	if s != nil {
		// Caller-owned scratch: reuse the whole graph arena (see
		// BuildScratch). Reset reclaims the node, adjacency and
		// frozen-view storage of the previous build.
		if s.graph == nil {
			s.graph = graphdb.New()
			s.methodNode = make(map[dex.MethodRef]graphdb.NodeID, 64)
			s.classNode = make(map[dex.TypeDesc]graphdb.NodeID, 16)
		}
		s.graph.Reset()
		clear(s.methodNode)
		clear(s.classNode)
		p.G, p.methodNode, p.classNode = s.graph, s.methodNode, s.classNode
	} else {
		s = buildScratchPool.Get().(*BuildScratch)
		defer buildScratchPool.Put(s)
		nm := 0
		for _, cls := range a.Dex.Classes {
			nm += len(cls.Methods)
		}
		p.G = graphdb.New()
		p.methodNode = make(map[dex.MethodRef]graphdb.NodeID, nm)
		p.classNode = make(map[dex.TypeDesc]graphdb.NodeID, len(a.Dex.Classes))
	}
	p.G.CreateIndex("name")
	if err := p.addStructure(ctx, s); err != nil {
		return nil, err
	}
	if err := p.addCallEdges(); err != nil {
		return nil, err
	}
	if opts.EdgeMiner {
		if err := p.addCallbackEdges(); err != nil {
			return nil, err
		}
	}
	if opts.ICC {
		if err := p.addICCEdges(); err != nil {
			return nil, err
		}
	}
	// Construction is complete: compile the CSR view every traversal
	// below (reachability, path search, icc lookups) runs against.
	p.Frozen()
	return p, nil
}

// addStructure inserts class, method and statement nodes with
// contains/code/cfg edges.
func (p *APG) addStructure(ctx context.Context, s *BuildScratch) error {
	totalStmts := 0
	for _, cls := range p.APK.Dex.Classes {
		if err := ctx.Err(); err != nil {
			return err
		}
		cid := p.G.AddNodeKV(LabelClass,
			"name", string(cls.Name),
			"super", string(cls.Super))
		p.classNode[cls.Name] = cid
		for _, m := range cls.Methods {
			if len(m.Code) > MaxMethodCode {
				return fmt.Errorf("%w: method %s has %d instructions (limit %d)",
					ErrTooLarge, m.Ref(), len(m.Code), MaxMethodCode)
			}
			totalStmts += len(m.Code)
			if totalStmts > maxTotalStmts {
				return fmt.Errorf("%w: image exceeds %d statements", ErrTooLarge, maxTotalStmts)
			}
			mid := p.G.AddNodeKV(LabelMethod,
				"class", string(cls.Name),
				"name", m.Name,
				"sig", m.Sig)
			p.methodNode[m.Ref()] = mid
			if err := p.G.AddEdge(cid, mid, EdgeContains); err != nil {
				return fmt.Errorf("apg: %w", err)
			}
			refStr := m.Ref().String()
			// statement nodes and intra-method CFG
			if cap(s.stmtIDs) < len(m.Code) {
				s.stmtIDs = make([]graphdb.NodeID, len(m.Code))
			}
			stmtIDs := s.stmtIDs[:len(m.Code)]
			for i, ins := range m.Code {
				isInvoke := ins.Op == dex.OpInvokeVirtual || ins.Op == dex.OpInvokeStatic
				// AddNodeKV copies the pairs into the graph's property
				// arena, so one scratch buffer serves every statement.
				kv := append(s.kv[:0], "index", itoaSmall(i), "method", refStr, "op", ins.Op.String())
				if ins.Str != "" {
					kv = append(kv, "str", ins.Str)
				}
				if isInvoke {
					kv = append(kv, "target", ins.Method.String())
				}
				stmtIDs[i] = p.G.AddNodeKV(LabelStmt, kv...)
				s.kv = kv[:0]
				if err := p.G.AddEdge(mid, stmtIDs[i], EdgeCode); err != nil {
					return fmt.Errorf("apg: %w", err)
				}
			}
			for i, ins := range m.Code {
				switch ins.Op {
				case dex.OpGoto, dex.OpIfZ:
					if ins.Target < 0 || ins.Target >= len(stmtIDs) {
						return fmt.Errorf("apg: method %s: instruction %d: branch target %d outside [0,%d)",
							m.Ref(), i, ins.Target, len(stmtIDs))
					}
					if err := p.G.AddEdge(stmtIDs[i], stmtIDs[ins.Target], EdgeCFG); err != nil {
						return fmt.Errorf("apg: %w", err)
					}
					if ins.Op == dex.OpIfZ && i+1 < len(stmtIDs) {
						if err := p.G.AddEdge(stmtIDs[i], stmtIDs[i+1], EdgeCFG); err != nil {
							return fmt.Errorf("apg: %w", err)
						}
					}
				case dex.OpReturn, dex.OpReturnVoid:
					// no fallthrough
				default:
					if i+1 < len(stmtIDs) {
						if err := p.G.AddEdge(stmtIDs[i], stmtIDs[i+1], EdgeCFG); err != nil {
							return fmt.Errorf("apg: %w", err)
						}
					}
				}
			}
			if err := p.addDataDeps(m, stmtIDs, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// addDataDeps emits def-use edges between statements — the system
// dependency graph layer of §III-C1, matching the taint engine's
// flow-insensitive register model: every definition of a register
// links to every use of it within the method.
func (p *APG) addDataDeps(m *dex.Method, stmtIDs []graphdb.NodeID, s *BuildScratch) error {
	if s.defs == nil {
		s.defs = map[int][]int{} // register -> defining instruction indexes
	}
	defs := s.defs
	// Reset only the registers touched last time (tracked in defRegs)
	// so the map and its per-register slices are reused across methods.
	for _, r := range s.defRegs {
		defs[r] = defs[r][:0]
	}
	s.defRegs = s.defRegs[:0]
	for i, ins := range m.Code {
		if regDefined(ins) >= 0 {
			if len(defs[ins.A]) == 0 {
				s.defRegs = append(s.defRegs, ins.A)
			}
			defs[ins.A] = append(defs[ins.A], i)
		}
	}
	for i, ins := range m.Code {
		for _, r := range regsUsed(ins) {
			for _, d := range defs[r] {
				if d != i {
					if err := p.G.AddEdge(stmtIDs[d], stmtIDs[i], EdgeDU); err != nil {
						return fmt.Errorf("apg: %w", err)
					}
				}
			}
		}
	}
	return nil
}

// regDefined returns the register an instruction writes, or -1.
func regDefined(ins dex.Instr) int {
	switch ins.Op {
	case dex.OpConstString, dex.OpConst, dex.OpMove, dex.OpNewInstance,
		dex.OpSGet, dex.OpIGet:
		return ins.A
	case dex.OpInvokeVirtual, dex.OpInvokeStatic:
		return ins.A // -1 when the result is discarded
	}
	return -1
}

// regsUsed returns the registers an instruction reads.
func regsUsed(ins dex.Instr) []int {
	switch ins.Op {
	case dex.OpMove:
		return []int{ins.B}
	case dex.OpInvokeVirtual, dex.OpInvokeStatic:
		return ins.Args
	case dex.OpIGet:
		return ins.Args
	case dex.OpIPut:
		return append(append([]int(nil), ins.Args...), ins.B)
	case dex.OpIfZ, dex.OpReturn:
		return []int{ins.A}
	}
	return nil
}

// addCallEdges resolves every invoke to a defined method (through the
// superclass chain, class-hierarchy style) and adds calls edges.
func (p *APG) addCallEdges() error {
	return p.eachInvoke(func(caller *dex.Method, i int, ins dex.Instr) error {
		target := p.APK.Dex.Lookup(ins.Method)
		if target == nil {
			return nil
		}
		if err := p.G.AddEdge(p.methodNode[caller.Ref()], p.methodNode[target.Ref()], EdgeCalls); err != nil {
			return fmt.Errorf("apg: %w", err)
		}
		return nil
	})
}

// eachInvoke visits every invoke instruction in the app, stopping at
// the first error the visitor returns.
func (p *APG) eachInvoke(f func(m *dex.Method, idx int, ins dex.Instr) error) error {
	for _, cls := range p.APK.Dex.Classes {
		for _, m := range cls.Methods {
			for i, ins := range m.Code {
				if ins.Op == dex.OpInvokeVirtual || ins.Op == dex.OpInvokeStatic {
					if err := f(m, i, ins); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// MethodNode returns the node of a method reference.
func (p *APG) MethodNode(ref dex.MethodRef) (graphdb.NodeID, bool) {
	id, ok := p.methodNode[ref]
	return id, ok
}

// Methods returns all defined method references in deterministic order.
func (p *APG) Methods() []dex.MethodRef {
	var out []dex.MethodRef
	for _, cls := range p.APK.Dex.Classes {
		for _, m := range cls.Methods {
			out = append(out, m.Ref())
		}
	}
	return out
}

// regType scans backwards from instruction idx for the type held in
// register reg: the most recent new-instance into it, or a const-string
// (returned as a class name string for setClassName-style intents).
func regType(m *dex.Method, idx, reg int) (typeDesc dex.TypeDesc, constStr string) {
	for i := idx - 1; i >= 0; i-- {
		ins := m.Code[i]
		switch ins.Op {
		case dex.OpNewInstance:
			if ins.A == reg {
				return dex.TypeDesc(ins.Str), ""
			}
		case dex.OpConstString:
			if ins.A == reg {
				return "", ins.Str
			}
		case dex.OpMove:
			if ins.A == reg {
				reg = ins.B
			}
		case dex.OpInvokeVirtual, dex.OpInvokeStatic:
			if ins.A == reg {
				// result of a call: give up on the literal but keep
				// scanning is unsound; report the declared return type.
				return dex.ReturnType(ins.Method.Sig), ""
			}
		}
	}
	return "", ""
}

// classHasPrefix reports whether a class descriptor's dotted name
// starts with the app's package name — the paper's test for "the app
// is the caller of this API".
func classHasPrefix(cls dex.TypeDesc, pkg string) bool {
	return strings.HasPrefix(cls.ClassName(), pkg)
}
