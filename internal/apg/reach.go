package apg

import (
	"sort"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/graphdb"
)

// Entry-point model of §III-C2: life-cycle callbacks of declared
// components, major components' entry functions, and UI callbacks.

// lifecycleByKind lists life-cycle entry names per component kind.
var lifecycleByKind = map[apk.ComponentKind][]string{
	apk.KindActivity: {"onCreate", "onStart", "onResume", "onPause",
		"onStop", "onDestroy", "onRestart", "onNewIntent",
		"onActivityResult", "onCreateOptionsMenu"},
	apk.KindService: {"onCreate", "onStartCommand", "onBind",
		"onUnbind", "onDestroy", "onHandleIntent"},
	apk.KindReceiver: {"onReceive"},
	apk.KindProvider: {"onCreate", "query", "insert", "update", "delete",
		"getType"},
}

// uiCallbackNames are UI-related callbacks treated as entry points.
var uiCallbackNames = map[string]bool{
	"onClick": true, "onLongClick": true, "onItemClick": true,
	"onTouch": true, "onOptionsItemSelected": true,
	"onMenuItemSelected": true, "onCheckedChanged": true,
	"onProgressChanged": true,
}

// Entries returns the entry-point methods of the app.
func (p *APG) Entries() []dex.MethodRef {
	var out []dex.MethodRef
	seen := map[dex.MethodRef]bool{}
	add := func(m *dex.Method) {
		if m == nil || seen[m.Ref()] {
			return
		}
		seen[m.Ref()] = true
		out = append(out, m.Ref())
	}
	// Component life-cycle entries.
	for _, comp := range p.APK.Manifest.Components() {
		cls := p.APK.Dex.Class(dex.ObjectType(comp.Name))
		if cls == nil {
			continue
		}
		for _, name := range lifecycleByKind[comp.Kind] {
			add(cls.Method(name, ""))
		}
	}
	// UI callbacks anywhere in the app.
	for _, cls := range p.APK.Dex.Classes {
		for _, m := range cls.Methods {
			if uiCallbackNames[m.Name] {
				add(m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// reachEdgeLabels are the edges reachability follows.
var reachEdgeLabels = []string{EdgeCalls, EdgeCallback, EdgeICC}

// ReachableMethods computes the set of methods reachable from the entry
// points over calls, callback, and icc edges — the feasibility check of
// §III-C2 ("we do not consider those sensitive APIs to which there are
// not feasible paths from entry points").
func (p *APG) ReachableMethods() map[dex.MethodRef]bool {
	var seeds []graphdb.NodeID
	entries := p.Entries()
	for _, e := range entries {
		if id, ok := p.methodNode[e]; ok {
			seeds = append(seeds, id)
		}
	}
	reached := p.G.Reachable(seeds, reachEdgeLabels)
	out := make(map[dex.MethodRef]bool, len(reached))
	for ref, id := range p.methodNode {
		if reached[id] {
			out[ref] = true
		}
	}
	return out
}

// CallPath returns one call path (as method references) from an entry
// point to the given method, or nil when the method is unreachable.
func (p *APG) CallPath(to dex.MethodRef) []dex.MethodRef {
	toID, ok := p.methodNode[to]
	if !ok {
		return nil
	}
	for _, e := range p.Entries() {
		fromID, ok := p.methodNode[e]
		if !ok {
			continue
		}
		nodes := p.G.Path(fromID, toID, reachEdgeLabels)
		if nodes == nil {
			continue
		}
		var refs []dex.MethodRef
		for _, id := range nodes {
			n := p.G.Node(id)
			if n == nil || n.Label != LabelMethod {
				continue
			}
			ref := dex.MethodRef{
				Class: dex.TypeDesc(n.Prop("class")),
				Name:  n.Prop("name"),
				Sig:   n.Prop("sig"),
			}
			refs = append(refs, ref)
		}
		return refs
	}
	return nil
}
