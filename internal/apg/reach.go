package apg

import (
	"sort"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/graphdb"
)

// Entry-point model of §III-C2: life-cycle callbacks of declared
// components, major components' entry functions, and UI callbacks.

// lifecycleByKind lists life-cycle entry names per component kind.
var lifecycleByKind = map[apk.ComponentKind][]string{
	apk.KindActivity: {"onCreate", "onStart", "onResume", "onPause",
		"onStop", "onDestroy", "onRestart", "onNewIntent",
		"onActivityResult", "onCreateOptionsMenu"},
	apk.KindService: {"onCreate", "onStartCommand", "onBind",
		"onUnbind", "onDestroy", "onHandleIntent"},
	apk.KindReceiver: {"onReceive"},
	apk.KindProvider: {"onCreate", "query", "insert", "update", "delete",
		"getType"},
}

// uiCallbackNames are UI-related callbacks treated as entry points.
var uiCallbackNames = map[string]bool{
	"onClick": true, "onLongClick": true, "onItemClick": true,
	"onTouch": true, "onOptionsItemSelected": true,
	"onMenuItemSelected": true, "onCheckedChanged": true,
	"onProgressChanged": true,
}

// Entries returns the entry-point methods of the app. The result is
// computed once per APG and shared; callers must not mutate it.
func (p *APG) Entries() []dex.MethodRef {
	p.entriesOnce.Do(p.computeEntries)
	return p.entries
}

func (p *APG) computeEntries() {
	var out []dex.MethodRef
	seen := map[dex.MethodRef]bool{}
	add := func(m *dex.Method) {
		if m == nil || seen[m.Ref()] {
			return
		}
		seen[m.Ref()] = true
		out = append(out, m.Ref())
	}
	// Component life-cycle entries.
	for _, comp := range p.APK.Manifest.Components() {
		cls := p.APK.Dex.Class(dex.ObjectType(comp.Name))
		if cls == nil {
			continue
		}
		for _, name := range lifecycleByKind[comp.Kind] {
			add(cls.Method(name, ""))
		}
	}
	// UI callbacks anywhere in the app.
	for _, cls := range p.APK.Dex.Classes {
		for _, m := range cls.Methods {
			if uiCallbackNames[m.Name] {
				add(m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	p.entries = out
	for _, e := range out {
		if id, ok := p.methodNode[e]; ok {
			p.entrySeeds = append(p.entrySeeds, id)
		}
	}
}

// reachEdgeLabels are the edges reachability follows.
var reachEdgeLabels = []string{EdgeCalls, EdgeCallback, EdgeICC}

// reachVisit computes (once per APG) the entry-point closure over the
// frozen view; both the static collection scan and the taint engine
// share the result.
func (p *APG) reachVisit() *graphdb.VisitSet {
	p.reachOnce.Do(func() {
		p.Entries()
		p.reach = p.Frozen().ReachableVisit(p.entrySeeds, reachEdgeLabels)
	})
	return p.reach
}

// MethodReachable reports whether a method is reachable from the entry
// points over calls, callback, and icc edges — the feasibility check of
// §III-C2 ("we do not consider those sensitive APIs to which there are
// not feasible paths from entry points"). The underlying closure is
// computed once per APG; lookups are O(1).
func (p *APG) MethodReachable(ref dex.MethodRef) bool {
	id, ok := p.methodNode[ref]
	if !ok {
		return false
	}
	return p.reachVisit().Has(id)
}

// ReachableMethods returns the reachable-method set as a map. It is
// memoized and shared; callers must treat it as read-only (use
// MethodReachable for single lookups).
func (p *APG) ReachableMethods() map[dex.MethodRef]bool {
	p.reachMapOnce.Do(func() {
		reached := p.reachVisit()
		out := make(map[dex.MethodRef]bool, reached.Len())
		for ref, id := range p.methodNode {
			if reached.Has(id) {
				out[ref] = true
			}
		}
		p.reachMap = out
	})
	return p.reachMap
}

// CallPath returns one call path (as method references) from an entry
// point to the given method, or nil when the method is unreachable.
func (p *APG) CallPath(to dex.MethodRef) []dex.MethodRef {
	toID, ok := p.methodNode[to]
	if !ok {
		return nil
	}
	f := p.Frozen()
	for _, e := range p.Entries() {
		fromID, ok := p.methodNode[e]
		if !ok {
			continue
		}
		nodes := f.Path(fromID, toID, reachEdgeLabels)
		if nodes == nil {
			continue
		}
		var refs []dex.MethodRef
		for _, id := range nodes {
			n := p.G.Node(id)
			if n == nil || n.Label != LabelMethod {
				continue
			}
			ref := dex.MethodRef{
				Class: dex.TypeDesc(n.Prop("class")),
				Name:  n.Prop("name"),
				Sig:   n.Prop("sig"),
			}
			refs = append(refs, ref)
		}
		return refs
	}
	return nil
}
