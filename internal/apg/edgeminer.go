package apg

import (
	"fmt"

	"ppchecker/internal/dex"
)

// Registration describes one implicit control-flow transition of the
// Android framework: calling the registration method later causes the
// framework to invoke the callback on the listener object. This is the
// knowledge EdgeMiner extracts from the framework; here it is a curated
// table covering the registrations the paper's example apps use.
type Registration struct {
	// Class and Name identify the registration method.
	Class dex.TypeDesc
	Name  string
	// ListenerArg is the argument position holding the listener object
	// (0 = receiver, so Thread.start() maps the receiver's run()).
	ListenerArg int
	// Callback is the method the framework invokes on the listener.
	Callback string
	// CallbackSig is the callback's signature.
	CallbackSig string
}

// registrations is the EdgeMiner table.
var registrations = []Registration{
	{"Landroid/view/View;", "setOnClickListener", 1, "onClick", "(Landroid/view/View;)V"},
	{"Landroid/view/View;", "setOnLongClickListener", 1, "onLongClick", "(Landroid/view/View;)Z"},
	{"Landroid/view/View;", "setOnTouchListener", 1, "onTouch", "(Landroid/view/View;Landroid/view/MotionEvent;)Z"},
	{"Landroid/widget/AdapterView;", "setOnItemClickListener", 1, "onItemClick", "(Landroid/widget/AdapterView;Landroid/view/View;IJ)V"},
	{"Landroid/widget/CompoundButton;", "setOnCheckedChangeListener", 1, "onCheckedChanged", "(Landroid/widget/CompoundButton;Z)V"},
	{"Landroid/widget/SeekBar;", "setOnSeekBarChangeListener", 1, "onProgressChanged", "(Landroid/widget/SeekBar;IZ)V"},
	{"Ljava/lang/Thread;", "start", 0, "run", "()V"},
	{"Landroid/os/Handler;", "post", 1, "run", "()V"},
	{"Landroid/os/Handler;", "postDelayed", 1, "run", "()V"},
	{"Ljava/util/Timer;", "schedule", 1, "run", "()V"},
	{"Landroid/os/AsyncTask;", "execute", 0, "doInBackground", "([Ljava/lang/Object;)Ljava/lang/Object;"},
	{"Landroid/location/LocationManager;", "requestLocationUpdates", 4, "onLocationChanged", "(Landroid/location/Location;)V"},
	{"Landroid/content/Context;", "registerReceiver", 1, "onReceive", "(Landroid/content/Context;Landroid/content/Intent;)V"},
	{"Landroid/hardware/SensorManager;", "registerListener", 1, "onSensorChanged", "(Landroid/hardware/SensorEvent;)V"},
}

// Registrations returns a copy of the EdgeMiner table.
func Registrations() []Registration {
	return append([]Registration(nil), registrations...)
}

// lookupRegistration matches an invoke target against the table. The
// class must match exactly or be a defined subclass of the table class.
func (p *APG) lookupRegistration(ref dex.MethodRef) (Registration, bool) {
	for _, r := range registrations {
		if r.Name != ref.Name {
			continue
		}
		if r.Class == ref.Class || p.isSubclassOf(ref.Class, r.Class) {
			return r, true
		}
	}
	return Registration{}, false
}

// isSubclassOf walks the defined class hierarchy.
func (p *APG) isSubclassOf(cls, super dex.TypeDesc) bool {
	for c := p.APK.Dex.Class(cls); c != nil; c = p.APK.Dex.Class(c.Super) {
		if c.Super == super {
			return true
		}
		if c.Super == "" {
			return false
		}
	}
	return false
}

// addCallbackEdges adds method→callback edges for every registration
// site whose listener type can be resolved to a defined class.
func (p *APG) addCallbackEdges() error {
	return p.eachInvoke(func(caller *dex.Method, idx int, ins dex.Instr) error {
		reg, ok := p.lookupRegistration(ins.Method)
		if !ok {
			return nil
		}
		if reg.ListenerArg >= len(ins.Args) {
			return nil
		}
		listenerType, _ := regType(caller, idx, ins.Args[reg.ListenerArg])
		if listenerType == "" {
			// Receiver-position registrations on a defined subclass:
			// fall back to the static type of the invoke.
			listenerType = ins.Method.Class
		}
		cb := p.findCallback(listenerType, reg.Callback)
		if cb == nil {
			return nil
		}
		if err := p.G.AddEdge(p.methodNode[caller.Ref()], p.methodNode[cb.Ref()], EdgeCallback); err != nil {
			return fmt.Errorf("apg: %w", err)
		}
		return nil
	})
}

// findCallback resolves the callback implementation on the listener
// class, walking up the superclass chain.
func (p *APG) findCallback(cls dex.TypeDesc, name string) *dex.Method {
	for c := p.APK.Dex.Class(cls); c != nil; {
		if m := c.Method(name, ""); m != nil {
			return m
		}
		if c.Super == "" {
			return nil
		}
		c = p.APK.Dex.Class(c.Super)
	}
	return nil
}
