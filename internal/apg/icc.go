package apg

import (
	"fmt"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
)

// Inter-component communication (the IccTA role): resolve the target of
// intents passed to startActivity/startService/sendBroadcast and add
// icc edges from the launching method to the target component's entry
// methods.

// iccLaunchers maps launcher method names to the argument position of
// the intent.
var iccLaunchers = map[string]int{
	"startActivity":          1,
	"startActivityForResult": 1,
	"startService":           1,
	"sendBroadcast":          1,
	"bindService":            1,
}

// intentEntryByKind lists the entry methods the framework invokes on
// the launched component.
var intentEntryByKind = map[apk.ComponentKind][]string{
	apk.KindActivity: {"onCreate", "onStart", "onResume", "onNewIntent"},
	apk.KindService:  {"onCreate", "onStartCommand", "onBind", "onHandleIntent"},
	apk.KindReceiver: {"onReceive"},
	apk.KindProvider: {"onCreate", "query"},
}

// addICCEdges finds launcher invocations, traces the intent register to
// its component target, and wires the launching method to the target's
// entries.
func (p *APG) addICCEdges() error {
	if p.APK.Manifest == nil {
		return fmt.Errorf("apg: nil manifest")
	}
	components := p.APK.Manifest.Components()
	return p.eachInvoke(func(caller *dex.Method, idx int, ins dex.Instr) error {
		argPos, ok := iccLaunchers[ins.Method.Name]
		if !ok || argPos >= len(ins.Args) {
			return nil
		}
		targetClass := p.resolveIntentTarget(caller, idx, ins.Args[argPos])
		if targetClass == "" {
			return nil
		}
		for _, comp := range components {
			if comp.Name != targetClass {
				continue
			}
			cls := p.APK.Dex.Class(dex.ObjectType(comp.Name))
			if cls == nil {
				continue
			}
			for _, entry := range intentEntryByKind[comp.Kind] {
				if m := cls.Method(entry, ""); m != nil {
					if err := p.G.AddEdge(p.methodNode[caller.Ref()], p.methodNode[m.Ref()], EdgeICC); err != nil {
						return fmt.Errorf("apg: %w", err)
					}
				}
			}
		}
		return nil
	})
}

// resolveIntentTarget traces an intent register backwards to the
// component class name it was pointed at: a setClassName/setClass call
// on the same register whose argument is a const-string.
func (p *APG) resolveIntentTarget(m *dex.Method, idx, intentReg int) string {
	for i := idx - 1; i >= 0; i-- {
		ins := m.Code[i]
		switch ins.Op {
		case dex.OpMove:
			if ins.A == intentReg {
				intentReg = ins.B
			}
		case dex.OpInvokeVirtual:
			if ins.Method.Name != "setClassName" && ins.Method.Name != "setClass" {
				continue
			}
			if len(ins.Args) < 2 || ins.Args[0] != intentReg {
				continue
			}
			_, s := regType(m, i, ins.Args[len(ins.Args)-1])
			if s != "" {
				return s
			}
		case dex.OpNewInstance:
			if ins.A == intentReg {
				return "" // intent creation reached without a target
			}
		}
	}
	return ""
}
