package libdetect

import (
	"testing"

	"ppchecker/internal/dex"
)

// TestRegistryCounts pins the registry to the paper's data set: 52 ad
// libs, 9 social libs, 20 development tools (§V-A).
func TestRegistryCounts(t *testing.T) {
	if got := len(ByCategory(CategoryAd)); got != 52 {
		t.Errorf("ad libs = %d, want 52", got)
	}
	if got := len(ByCategory(CategorySocial)); got != 9 {
		t.Errorf("social libs = %d, want 9", got)
	}
	if got := len(ByCategory(CategoryDev)); got != 20 {
		t.Errorf("dev tools = %d, want 20", got)
	}
	if got := len(Registry()); got != 81 {
		t.Errorf("total = %d, want 81", got)
	}
}

func TestRegistryWellFormed(t *testing.T) {
	names := map[string]bool{}
	prefixes := map[string]bool{}
	for _, l := range Registry() {
		if names[l.Name] {
			t.Errorf("duplicate name %q", l.Name)
		}
		names[l.Name] = true
		if prefixes[l.Prefix] {
			t.Errorf("duplicate prefix %q", l.Prefix)
		}
		prefixes[l.Prefix] = true
		if l.Prefix == "" || l.Name == "" {
			t.Errorf("empty entry: %+v", l)
		}
	}
}

func TestDetect(t *testing.T) {
	d, err := dex.Assemble(`
.class Lcom/example/app/Main;
.end class
.class Lcom/google/ads/AdView;
.end class
.class Lcom/unity3d/player/UnityPlayer;
.end class
.class Lcom/facebook/Session;
.end class
`)
	if err != nil {
		t.Fatal(err)
	}
	libs := Detect(d)
	if len(libs) != 3 {
		t.Fatalf("detected = %+v", libs)
	}
	want := []string{"AdMob", "Facebook", "Unity3d"}
	for i, l := range libs {
		if l.Name != want[i] {
			t.Errorf("lib[%d] = %q, want %q", i, l.Name, want[i])
		}
	}
}

func TestDetectNone(t *testing.T) {
	d, err := dex.Assemble(".class Lcom/example/app/Main;\n.end class\n")
	if err != nil {
		t.Fatal(err)
	}
	if libs := Detect(d); len(libs) != 0 {
		t.Fatalf("detected = %+v", libs)
	}
}

func TestByName(t *testing.T) {
	l, ok := ByName("Unity3d")
	if !ok || l.Category != CategoryDev {
		t.Fatalf("ByName = %+v ok=%v", l, ok)
	}
	if _, ok := ByName("Nonexistent"); ok {
		t.Fatal("unknown lib found")
	}
}
