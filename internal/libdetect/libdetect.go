// Package libdetect identifies third-party libraries bundled in an app
// by class-name prefix, as §IV-C of the paper does, and carries the
// registry of libraries whose privacy policies PPChecker examines:
// 52 advertising libraries, 9 social-network libraries, and 20
// development tools (the paper's §V-A data set).
package libdetect

import (
	"sort"
	"strings"

	"ppchecker/internal/dex"
)

// Category classifies a library.
type Category string

// Library categories.
const (
	CategoryAd     Category = "ad"
	CategorySocial Category = "social"
	CategoryDev    Category = "devtool"
)

// Library is one registry entry.
type Library struct {
	Name     string
	Prefix   string // dotted class-name prefix
	Category Category
}

// registry lists the libraries with English privacy policies from the
// paper's data set (§V-A): 52 ad, 9 social, 20 development tools.
var registry = []Library{
	// --- 52 advertising libraries ---
	{"AdMob", "com.google.ads", CategoryAd},
	{"Flurry", "com.flurry.android", CategoryAd},
	{"InMobi", "com.inmobi", CategoryAd},
	{"MoPub", "com.mopub", CategoryAd},
	{"Millennial Media", "com.millennialmedia", CategoryAd},
	{"Chartboost", "com.chartboost.sdk", CategoryAd},
	{"AdColony", "com.jirbo.adcolony", CategoryAd},
	{"AppLovin", "com.applovin", CategoryAd},
	{"Vungle", "com.vungle", CategoryAd},
	{"Tapjoy", "com.tapjoy", CategoryAd},
	{"StartApp", "com.startapp.android", CategoryAd},
	{"Airpush", "com.airpush.android", CategoryAd},
	{"LeadBolt", "com.pad.android", CategoryAd},
	{"Smaato", "com.smaato.soma", CategoryAd},
	{"AdWhirl", "com.adwhirl", CategoryAd},
	{"Mobclix", "com.mobclix.android", CategoryAd},
	{"Jumptap", "com.jumptap.adtag", CategoryAd},
	{"Greystripe", "com.greystripe.sdk", CategoryAd},
	{"Madvertise", "de.madvertise.android", CategoryAd},
	{"MobFox", "com.mobfox.sdk", CategoryAd},
	{"Inneractive", "com.inneractive.api.ads", CategoryAd},
	{"RevMob", "com.revmob", CategoryAd},
	{"AppBrain", "com.appbrain", CategoryAd},
	{"Pollfish", "com.pollfish", CategoryAd},
	{"Heyzap", "com.heyzap.sdk", CategoryAd},
	{"Supersonic", "com.supersonicads.sdk", CategoryAd},
	{"Fyber", "com.fyber", CategoryAd},
	{"AppNext", "com.appnext.ads", CategoryAd},
	{"Avocarrot", "com.avocarrot.androidsdk", CategoryAd},
	{"LoopMe", "com.loopme", CategoryAd},
	{"NativeX", "com.nativex.monetization", CategoryAd},
	{"SmartAdServer", "com.smartadserver.android", CategoryAd},
	{"AdBuddiz", "com.purplebrain.adbuddiz", CategoryAd},
	{"Appodeal", "com.appodeal.ads", CategoryAd},
	{"Mobvista", "com.mobvista.msdk", CategoryAd},
	{"Yandex Ads", "com.yandex.mobile.ads", CategoryAd},
	{"Baidu Ad", "com.baidu.mobads", CategoryAd},
	{"Tencent GDT", "com.qq.e.ads", CategoryAd},
	{"Domob", "cn.domob.android", CategoryAd},
	{"Youmi", "net.youmi.android", CategoryAd},
	{"Waps", "com.waps", CategoryAd},
	{"AdView", "com.kyview.adview", CategoryAd},
	{"Casee", "com.casee.adsdk", CategoryAd},
	{"Vpon", "com.vpon.adon", CategoryAd},
	{"AdsMogo", "com.adsmogo", CategoryAd},
	{"AdChina", "com.adchina.android.ads", CategoryAd},
	{"Madhouse", "com.madhouse.android.ads", CategoryAd},
	{"Wooboo", "com.wooboo.adlib_android", CategoryAd},
	{"Zestadz", "com.zestadz.android", CategoryAd},
	{"AdKnowledge", "com.adknowledge.superrewards", CategoryAd},
	{"MdotM", "com.mdotm.android", CategoryAd},
	{"Everbadge", "com.everbadge.connect", CategoryAd},
	// --- 9 social libraries ---
	{"Facebook", "com.facebook", CategorySocial},
	{"Twitter", "com.twitter.sdk", CategorySocial},
	{"Google Plus", "com.google.android.gms.plus", CategorySocial},
	{"LinkedIn", "com.linkedin.platform", CategorySocial},
	{"Weibo", "com.sina.weibo.sdk", CategorySocial},
	{"WeChat", "com.tencent.mm.sdk", CategorySocial},
	{"QQ", "com.tencent.connect", CategorySocial},
	{"Instagram", "com.instagram.android", CategorySocial},
	{"VK", "com.vk.sdk", CategorySocial},
	// --- 20 development tools ---
	{"Unity3d", "com.unity3d", CategoryDev},
	{"Cocos2d-x", "org.cocos2dx", CategoryDev},
	{"Parse", "com.parse", CategoryDev},
	{"Urban Airship", "com.urbanairship", CategoryDev},
	{"Crashlytics", "com.crashlytics.android", CategoryDev},
	{"BugSense", "com.bugsense.trace", CategoryDev},
	{"ACRA", "org.acra", CategoryDev},
	{"New Relic", "com.newrelic.agent.android", CategoryDev},
	{"TestFlight", "com.testflightapp.lib", CategoryDev},
	{"Amazon AWS", "com.amazonaws", CategoryDev},
	{"Dropbox", "com.dropbox.client2", CategoryDev},
	{"Box", "com.box.androidsdk", CategoryDev},
	{"Evernote", "com.evernote.client", CategoryDev},
	{"PayPal", "com.paypal.android.sdk", CategoryDev},
	{"Stripe", "com.stripe.android", CategoryDev},
	{"Zendesk", "com.zendesk.sdk", CategoryDev},
	{"Mixpanel", "com.mixpanel.android", CategoryDev},
	{"Localytics", "com.localytics.android", CategoryDev},
	{"Kontagent", "com.kontagent", CategoryDev},
	{"Apsalar", "com.apsalar.sdk", CategoryDev},
}

// Registry returns a copy of the library registry.
func Registry() []Library { return append([]Library(nil), registry...) }

// ByCategory returns the registry entries of one category.
func ByCategory(c Category) []Library {
	var out []Library
	for _, l := range registry {
		if l.Category == c {
			out = append(out, l)
		}
	}
	return out
}

// ByName finds a registry entry by library name.
func ByName(name string) (Library, bool) {
	for _, l := range registry {
		if l.Name == name {
			return l, true
		}
	}
	return Library{}, false
}

// Detect returns the libraries whose class prefix appears in the dex
// image, sorted by name.
func Detect(d *dex.Dex) []Library {
	seen := map[string]Library{}
	for _, cls := range d.Classes {
		name := cls.Name.ClassName()
		for _, lib := range registry {
			if strings.HasPrefix(name, lib.Prefix) {
				seen[lib.Name] = lib
			}
		}
	}
	out := make([]Library, 0, len(seen))
	for _, l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
