package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"ppchecker/internal/core"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/sensitive"
)

// versions.go — the deterministic versioned-corpus generator feeding the
// incremental longitudinal engine (internal/longi). An app's history is
// a seeded mutation chain over its AppPlan: each release applies one
// mutation (add a data collection, weaken or fix a disclosure, reword
// the policy or description, bundle a library), and every version is a
// pure function of (seed, app index), so histories replay bit-identical
// across processes.
//
// The three inputs the longitudinal engine content-addresses — policy
// HTML, description, bytecode — are versioned independently: each is
// rendered from its own rand stream derived from (seed, app index)
// only, never the version number. A mutation that leaves a section's
// plan fields untouched therefore leaves that section's bytes
// untouched, which is what gives a delta run its cache hits.

// Mutation names one plan edit between consecutive versions.
type Mutation string

const (
	// MutNone leaves the release identical to its predecessor.
	MutNone Mutation = "none"
	// MutAddCollection makes the code start collecting an info the
	// policy never mentions: the silent-behavior-change drift.
	MutAddCollection Mutation = "add-collection"
	// MutWeakenPolicy drops a disclosure while the code keeps
	// collecting: the policy-weakened drift.
	MutWeakenPolicy Mutation = "weaken-policy"
	// MutFixPolicy adds the missing disclosure for an undisclosed
	// collection: the resolved drift.
	MutFixPolicy Mutation = "fix-policy"
	// MutPolicyChurn rewords the policy without changing any
	// disclosure; no finding may drift.
	MutPolicyChurn Mutation = "policy-churn"
	// MutDescChurn rewords the description without implying a new
	// permission; no finding may drift.
	MutDescChurn Mutation = "desc-churn"
	// MutAddLibrary bundles one more third-party library; the code
	// changes but no finding drifts (the corpus plants no negative
	// sentences for lib conflicts).
	MutAddLibrary Mutation = "add-library"
)

// mutationMenu is rotated by (app index + version), not rng, so every
// drift class appears at an exactly known density in any corpus slice.
var mutationMenu = []Mutation{
	MutAddCollection, MutPolicyChurn, MutWeakenPolicy,
	MutDescChurn, MutFixPolicy, MutAddLibrary, MutNone,
}

// PlantedDrift is generator ground truth for one expected drift
// finding between consecutive versions. It records the structural
// facts (what changed, what appeared) rather than any detector
// classification, so synth stays independent of the engine that
// interprets them.
type PlantedDrift struct {
	FromVersion int
	ToVersion   int
	// Info is the information whose finding appears or disappears.
	Info sensitive.Info
	// Appeared is true when ToVersion gains a finding FromVersion did
	// not have, false when a finding is resolved.
	Appeared bool
	// PolicyChanged / CodeChanged record which inputs the mutation
	// touched across the transition.
	PolicyChanged bool
	CodeChanged   bool
}

// AppVersion is one release of one app.
type AppVersion struct {
	Version  int // 1-based
	Mutation Mutation
	App      *core.App
	Truth    GroundTruth
}

// VersionedApp is one app's full release history plus drift truth.
type VersionedApp struct {
	Pkg      string
	Versions []AppVersion
	Drifts   []PlantedDrift
}

// VersionedCorpus is a materialized set of app histories.
type VersionedCorpus struct {
	Seed        int64
	Apps        []VersionedApp
	LibPolicies map[string]string
}

// VersionedConfig sizes GenerateVersioned.
type VersionedConfig struct {
	Seed     int64
	Apps     int
	Versions int // releases per app, >= 1
}

// VersionedFirehose generates app histories on demand; History(i) is a
// pure function of (seed, i, versions-per-app), mirroring Firehose.App.
type VersionedFirehose struct {
	seed        int64
	versions    int
	libPolicies map[string]string
	libNames    []string
	perms       []string
}

// NewVersionedFirehose builds a history generator producing
// versionsPerApp releases per app.
func NewVersionedFirehose(seed int64, versionsPerApp int) *VersionedFirehose {
	f := &VersionedFirehose{
		seed:        seed,
		versions:    versionsPerApp,
		libPolicies: GenerateLibPolicies(),
	}
	for _, lib := range libdetect.Registry() {
		if _, ok := f.libPolicies[lib.Name]; ok {
			f.libNames = append(f.libNames, lib.Name)
		}
	}
	for perm := range descTriggers {
		f.perms = append(f.perms, perm)
	}
	sort.Strings(f.libNames)
	sort.Strings(f.perms)
	return f
}

// Seed returns the generator seed (part of every version's identity).
func (f *VersionedFirehose) Seed() int64 { return f.seed }

// VersionsPerApp returns the history length.
func (f *VersionedFirehose) VersionsPerApp() int { return f.versions }

// LibPolicies exposes the shared library policy menu.
func (f *VersionedFirehose) LibPolicies() map[string]string { return f.libPolicies }

// History generates app i's full release chain.
func (f *VersionedFirehose) History(i int64) (VersionedApp, error) {
	if i < 0 {
		return VersionedApp{}, fmt.Errorf("synth: negative history index %d", i)
	}
	if f.versions < 1 {
		return VersionedApp{}, fmt.Errorf("synth: versions per app must be >= 1, have %d", f.versions)
	}
	planRng := rand.New(rand.NewSource(mixVersioned(f.seed, i, 0)))
	plan := f.basePlan(i, planRng)
	va := VersionedApp{Pkg: plan.Pkg}
	for v := 1; v <= f.versions; v++ {
		mut := MutNone
		if v > 1 {
			var drift *PlantedDrift
			mut, drift = f.applyMutation(plan, mutationMenu[(int(i)+v)%len(mutationMenu)], v)
			if drift != nil {
				va.Drifts = append(va.Drifts, *drift)
			}
		}
		app, truth, err := f.buildVersion(i, plan)
		if err != nil {
			return VersionedApp{}, fmt.Errorf("synth: history app %d v%d: %w", i, v, err)
		}
		va.Versions = append(va.Versions, AppVersion{
			Version: v, Mutation: mut, App: app, Truth: truth,
		})
	}
	return va, nil
}

// GenerateVersioned materializes a whole versioned corpus.
func GenerateVersioned(cfg VersionedConfig) (*VersionedCorpus, error) {
	if cfg.Apps < 1 {
		return nil, fmt.Errorf("synth: versioned corpus needs >= 1 app, have %d", cfg.Apps)
	}
	f := NewVersionedFirehose(cfg.Seed, cfg.Versions)
	corpus := &VersionedCorpus{Seed: cfg.Seed, LibPolicies: f.LibPolicies()}
	for i := 0; i < cfg.Apps; i++ {
		va, err := f.History(int64(i))
		if err != nil {
			return nil, err
		}
		corpus.Apps = append(corpus.Apps, va)
	}
	return corpus, nil
}

// basePlan lays out version 1. Covered infos avoid anything the
// description implies, so later policy mutations can never interact
// with description findings and pollute the planted drift truth.
func (f *VersionedFirehose) basePlan(i int64, rng *rand.Rand) *AppPlan {
	plan := &AppPlan{
		Index: int(i),
		Pkg:   fmt.Sprintf("com.longi.app%06d", i),
	}
	// A third of apps imply a permission in the description, so desc
	// analysis earns its cache entry.
	if i%3 == 0 {
		plan.DescPerms = []string{f.perms[rng.Intn(len(f.perms))]}
	}
	banned := map[sensitive.Info]bool{}
	for _, perm := range plan.DescPerms {
		for _, info := range sensitive.InfoForPermission(perm) {
			banned[info] = true
		}
	}
	var pool []sensitive.Info
	for _, info := range firehoseInfos {
		if !banned[info] {
			pool = append(pool, info)
		}
	}
	// 2-3 covered infos, so weaken-policy always has one to strip.
	n := 2 + rng.Intn(2)
	seen := map[sensitive.Info]bool{}
	for len(plan.CoveredInfos) < n {
		info := pool[rng.Intn(len(pool))]
		if !seen[info] {
			seen[info] = true
			plan.CoveredInfos = append(plan.CoveredInfos, info)
		}
	}
	// Half the apps ship v1 with an undisclosed collection already in
	// place, so fix-policy has a finding to resolve from the start.
	if i%2 == 1 {
		for _, info := range pool {
			if !seen[info] {
				seen[info] = true
				plan.Missed = append(plan.Missed, MissedRecord{Info: info})
				break
			}
		}
	}
	if i%3 != 2 && len(f.libNames) > 0 {
		plan.Libs = append(plan.Libs, f.libNames[rng.Intn(len(f.libNames))])
	}
	return plan
}

// applyMutation edits the working plan in place. Mutations draw nothing
// from rng — their choices are plan-deterministic — so the per-section
// rand streams stay aligned across the whole chain. When a mutation is
// inapplicable it falls back to the next one in a cycle that always
// terminates at a churn mutation.
func (f *VersionedFirehose) applyMutation(plan *AppPlan, want Mutation, v int) (Mutation, *PlantedDrift) {
	switch want {
	case MutAddCollection:
		info, ok := f.unusedInfo(plan)
		if !ok {
			return f.applyMutation(plan, MutPolicyChurn, v)
		}
		// Appending to Missed appends the plant after all existing ones,
		// so every prior access keeps its bytecode position.
		plan.Missed = append(plan.Missed, MissedRecord{Info: info})
		return want, &PlantedDrift{
			FromVersion: v - 1, ToVersion: v, Info: info,
			Appeared: true, CodeChanged: true,
		}
	case MutWeakenPolicy:
		n := len(plan.CoveredInfos)
		if n == 0 {
			return f.applyMutation(plan, MutAddCollection, v)
		}
		info := plan.CoveredInfos[n-1]
		plan.CoveredInfos = plan.CoveredInfos[:n-1]
		// The dex plants covered infos before missed ones; moving the
		// LAST covered record to the FRONT of missed keeps the plant
		// sequence — and the bytecode — byte-identical.
		plan.Missed = append([]MissedRecord{{Info: info}}, plan.Missed...)
		return want, &PlantedDrift{
			FromVersion: v - 1, ToVersion: v, Info: info,
			Appeared: true, PolicyChanged: true,
		}
	case MutFixPolicy:
		// Only the FIRST missed record can move to the END of covered
		// without reordering plants; retained records never move (their
		// Log.d plant would vanish and change the bytecode).
		if len(plan.Missed) == 0 || plan.Missed[0].Retained {
			return f.applyMutation(plan, MutPolicyChurn, v)
		}
		rec := plan.Missed[0]
		plan.Missed = append([]MissedRecord(nil), plan.Missed[1:]...)
		plan.CoveredInfos = append(plan.CoveredInfos, rec.Info)
		return want, &PlantedDrift{
			FromVersion: v - 1, ToVersion: v, Info: rec.Info,
			Appeared: false, PolicyChanged: true,
		}
	case MutPolicyChurn:
		plan.PolicyChurn++
		return want, nil
	case MutDescChurn:
		plan.DescChurn++
		return want, nil
	case MutAddLibrary:
		for _, name := range f.libNames {
			have := false
			for _, l := range plan.Libs {
				have = have || l == name
			}
			if !have {
				plan.Libs = append(append([]string(nil), plan.Libs...), name)
				return want, nil
			}
		}
		return f.applyMutation(plan, MutDescChurn, v)
	default: // MutNone
		return MutNone, nil
	}
}

// unusedInfo returns the first rotation info the plan does not already
// touch in code, policy, or description.
func (f *VersionedFirehose) unusedInfo(plan *AppPlan) (sensitive.Info, bool) {
	used := map[sensitive.Info]bool{}
	for _, info := range plan.CoveredInfos {
		used[info] = true
	}
	for _, rec := range plan.Missed {
		used[rec.Info] = true
	}
	for _, perm := range plan.DescPerms {
		for _, info := range sensitive.InfoForPermission(perm) {
			used[info] = true
		}
	}
	for _, info := range firehoseInfos {
		if !used[info] {
			return info, true
		}
	}
	return "", false
}

// buildVersion renders the plan's current state into an app. Policy and
// description each render from a private rand stream keyed by (seed,
// app) — never the version — so an untouched section reproduces its
// previous bytes exactly.
func (f *VersionedFirehose) buildVersion(i int64, plan *AppPlan) (*core.App, GroundTruth, error) {
	snap := clonePlan(plan)
	policyRng := rand.New(rand.NewSource(mixVersioned(f.seed, i, 1)))
	descRng := rand.New(rand.NewSource(mixVersioned(f.seed, i, 2)))
	html := buildPolicyHTML(snap, policyRng)
	description := buildDescription(snap, descRng)
	a, err := buildAPK(snap)
	if err != nil {
		return nil, GroundTruth{}, err
	}
	libPol := map[string]string{}
	for _, name := range snap.Libs {
		if p, ok := f.libPolicies[name]; ok {
			libPol[name] = p
		}
	}
	app := &core.App{
		Name:        snap.Pkg,
		PolicyHTML:  html,
		Description: description,
		APK:         a,
		LibPolicies: libPol,
	}
	return app, truthFor(snap), nil
}

// clonePlan deep-copies a plan so each version's ground truth keeps the
// plan state it was built from, immune to later mutations.
func clonePlan(p *AppPlan) *AppPlan {
	c := *p
	c.CoveredInfos = append([]sensitive.Info(nil), p.CoveredInfos...)
	c.Missed = append([]MissedRecord(nil), p.Missed...)
	c.DescPerms = append([]string(nil), p.DescPerms...)
	c.Inconsistencies = append([]InconsistencyPlant(nil), p.Inconsistencies...)
	c.Libs = append([]string(nil), p.Libs...)
	if p.IncorrectRetain != nil {
		v := *p.IncorrectRetain
		c.IncorrectRetain = &v
	}
	return &c
}

// mixVersioned derives the per-(app, section) stream seed with a
// splitmix64-style finalizer; section 0 is the plan/mutation stream,
// 1 the policy renderer, 2 the description renderer.
func mixVersioned(seed, i int64, section uint64) int64 {
	z := uint64(seed) ^ (uint64(i)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	z ^= (section + 1) * 0x94d049bb133111eb
	z ^= z >> 27
	return int64(z)
}
