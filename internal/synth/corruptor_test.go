package synth_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ppchecker/internal/apg"
	"ppchecker/internal/apk"
	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/dex"
	"ppchecker/internal/eval"
	"ppchecker/internal/synth"
)

func sampleApp(t *testing.T) *core.App {
	t.Helper()
	ds, err := synth.Generate(synth.Config{Seed: 21, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Apps[0].App
}

// TestEveryFaultDegradesNeverCrashes is the fault-injection matrix:
// each fault class, injected into an otherwise clean bundle, must
// leave the robust runner standing and mark exactly that app Partial,
// degraded at the stage the fault targets.
func TestEveryFaultDegradesNeverCrashes(t *testing.T) {
	app := sampleApp(t)
	wantStage := map[synth.Fault]core.Stage{
		synth.FaultDexTruncated:    core.StageDecode,
		synth.FaultDexBitFlip:      core.StageDecode,
		synth.FaultPackGarbage:     core.StageDecode,
		synth.FaultCallCycle:       core.StageStatic,
		synth.FaultPolicyBadUTF8:   core.StageExtract,
		synth.FaultPolicyUnclosed:  core.StageExtract,
		synth.FaultPolicyEnumBomb:  core.StagePolicy,
		synth.FaultPolicyTokenBomb: core.StagePolicy,
	}
	for _, fault := range synth.AllFaults() {
		fault := fault
		t.Run(string(fault), func(t *testing.T) {
			want, ok := wantStage[fault]
			if !ok {
				t.Fatalf("no expected stage for fault %s — extend the table", fault)
			}
			dir := t.TempDir()
			appDir := filepath.Join(dir, bundle.DirApps, app.Name)
			if err := bundle.WriteApp(appDir, app); err != nil {
				t.Fatal(err)
			}
			if err := synth.NewCorruptor(7).CorruptBundle(appDir, fault); err != nil {
				t.Fatal(err)
			}
			res, stats, err := eval.EvaluateCorpusDirRobust(
				context.Background(), dir, eval.DefaultRunOptions())
			if err != nil {
				t.Fatalf("run failed outright: %v", err)
			}
			if stats.Degraded != 1 || stats.Failed != 0 {
				t.Fatalf("want one degraded app: %s", stats.Render())
			}
			rep := res.Reports[0]
			if !rep.Partial {
				t.Fatal("corrupted app not marked Partial")
			}
			if !rep.DegradedStage(want) {
				t.Fatalf("fault %s degraded %v, want stage %s", fault, rep.Degraded, want)
			}
		})
	}
}

// TestBombDex: the call-cycle payload must pass the dex verifier (so
// it reaches the analyses) and then trip the APG size guard — if it
// failed Verify it would be caught too early to test the guard.
func TestBombDex(t *testing.T) {
	d := synth.BombDex()
	if err := dex.Verify(d); err != nil {
		t.Fatalf("bomb dex must verify: %v", err)
	}
	rt, err := dex.Decode(dex.Encode(d))
	if err != nil {
		t.Fatalf("bomb dex must round-trip: %v", err)
	}
	a := apk.New(&apk.Manifest{Package: "com.synth.bomb"}, rt)
	if _, err := apg.Build(a, apg.DefaultOptions()); !errors.Is(err, apg.ErrTooLarge) {
		t.Fatalf("apg.Build err = %v, want ErrTooLarge", err)
	}
}

// TestCorruptAPKFaultsFailDecode: every container-level fault must
// make apk.Decode reject the bytes.
func TestCorruptAPKFaultsFailDecode(t *testing.T) {
	app := sampleApp(t)
	data, err := apk.Encode(app.APK)
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []synth.Fault{
		synth.FaultDexTruncated, synth.FaultDexBitFlip, synth.FaultPackGarbage,
	} {
		out, err := synth.NewCorruptor(3).CorruptAPK(data, fault)
		if err != nil {
			t.Fatalf("%s: %v", fault, err)
		}
		if _, err := apk.Decode(out); err == nil {
			t.Errorf("%s: corrupted apk still decodes", fault)
		}
	}
	// The call-cycle payload is the exception: it must still decode.
	out, err := synth.NewCorruptor(3).CorruptAPK(data, synth.FaultCallCycle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apk.Decode(out); err != nil {
		t.Errorf("call-cycle apk must decode (the guard lives in apg): %v", err)
	}
}

// TestCorruptorDeterministic: the same seed corrupts the same apps the
// same way, so failures found in CI reproduce locally.
func TestCorruptorDeterministic(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 21, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	var got []map[string]synth.Fault
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		if err := bundle.WriteDataset(ds, dir); err != nil {
			t.Fatal(err)
		}
		m, err := synth.NewCorruptor(5).CorruptCorpus(dir, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	if len(got[0]) == 0 || !reflect.DeepEqual(got[0], got[1]) {
		t.Fatalf("corruption not deterministic: %v vs %v", got[0], got[1])
	}
}

// TestMangle: seeded generic corruptions for fuzz seeding.
func TestMangle(t *testing.T) {
	data := []byte("SAPK\x01some entries")
	a := synth.NewCorruptor(9).Mangle(data, 8)
	b := synth.NewCorruptor(9).Mangle(data, 8)
	if len(a) != 8 || !reflect.DeepEqual(a, b) {
		t.Fatalf("Mangle not deterministic: %v vs %v", a, b)
	}
}
