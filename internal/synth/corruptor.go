package synth

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ppchecker/internal/apg"
	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/nlp"
)

// Fault names one fault-injection class. Each class is designed to
// trip a specific guard in the pipeline, so a corrupted app degrades
// at a predictable stage instead of crashing the run:
//
//	dex faults        → apk.Decode fails        → apk-decode stage
//	pack-garbage      → packer stub unreadable  → apk-decode stage
//	dex-call-cycle    → apg size guard          → apg-static stage
//	policy-bad-utf8   → UTF-8 validation        → html-extract stage
//	policy-unclosed   → extraction swallows all → html-extract stage
//	policy-*-bomb     → nlp.GuardText           → policy-nlp stage
type Fault string

// The fault classes.
const (
	// FaultDexTruncated cuts the APK container mid-entry.
	FaultDexTruncated Fault = "dex-truncated"
	// FaultDexBitFlip flips a bit in the container magic.
	FaultDexBitFlip Fault = "dex-bitflip"
	// FaultPackGarbage repacks the app behind a garbage loader stub.
	FaultPackGarbage Fault = "pack-garbage"
	// FaultCallCycle swaps in a structurally valid dex whose call graph
	// is a tight cycle plus one method over the APG instruction ceiling.
	FaultCallCycle Fault = "dex-call-cycle"
	// FaultPolicyBadUTF8 splices invalid UTF-8 bytes into the policy.
	FaultPolicyBadUTF8 Fault = "policy-bad-utf8"
	// FaultPolicyUnclosed prepends an unclosed <script> tag that
	// swallows the whole document during extraction.
	FaultPolicyUnclosed Fault = "policy-unclosed-tag"
	// FaultPolicyEnumBomb appends an enumeration of more fragments than
	// the NLP enumeration repair will merge.
	FaultPolicyEnumBomb Fault = "policy-enum-bomb"
	// FaultPolicyTokenBomb appends a single boundary-free sentence
	// beyond the per-sentence size ceiling.
	FaultPolicyTokenBomb Fault = "policy-token-bomb"
)

// AllFaults returns every fault class in a fixed order.
func AllFaults() []Fault {
	return []Fault{
		FaultDexTruncated, FaultDexBitFlip, FaultPackGarbage, FaultCallCycle,
		FaultPolicyBadUTF8, FaultPolicyUnclosed, FaultPolicyEnumBomb,
		FaultPolicyTokenBomb,
	}
}

// PolicyFault reports whether the fault targets the policy file (vs
// the APK).
func (f Fault) PolicyFault() bool {
	return strings.HasPrefix(string(f), "policy-")
}

// Corruptor injects faults into app bundles, deterministically for a
// given seed. It backs the fault-injection tests and generates seeds
// for the fuzz targets.
type Corruptor struct {
	rng *rand.Rand
}

// NewCorruptor returns a Corruptor with a seeded generator.
func NewCorruptor(seed int64) *Corruptor {
	return &Corruptor{rng: rand.New(rand.NewSource(seed))}
}

// CorruptPolicy applies a policy fault to privacy-policy HTML.
func (c *Corruptor) CorruptPolicy(html string, f Fault) (string, error) {
	switch f {
	case FaultPolicyBadUTF8:
		pos := c.rng.Intn(len(html) + 1)
		return html[:pos] + "\xff\xfe\xfd" + html[pos:], nil
	case FaultPolicyUnclosed:
		// No matching </script> ever arrives, so extraction drops the
		// entire document.
		return "<script>" + html, nil
	case FaultPolicyEnumBomb:
		bomb := strings.Repeat("we may collect usage data;\n", nlp.MaxEnumerationRun+50)
		return html + "<p>" + bomb + "</p>", nil
	case FaultPolicyTokenBomb:
		word := "tracking identifier telemetry "
		bomb := strings.Repeat(word, nlp.MaxSentenceBytes/len(word)+64)
		return html + "<p>" + bomb + "</p>", nil
	}
	return "", fmt.Errorf("synth: %s is not a policy fault", f)
}

// CorruptAPK applies an APK fault to an encoded SAPK container.
func (c *Corruptor) CorruptAPK(data []byte, f Fault) ([]byte, error) {
	switch f {
	case FaultDexTruncated:
		if len(data) < 8 {
			return nil, fmt.Errorf("synth: apk too small to truncate")
		}
		// Keep the header so the failure is a mid-entry truncation, not
		// a trivial magic mismatch.
		cut := 5 + (len(data)-5)/2
		return append([]byte(nil), data[:cut]...), nil
	case FaultDexBitFlip:
		if len(data) < 4 {
			return nil, fmt.Errorf("synth: apk too small to corrupt")
		}
		out := append([]byte(nil), data...)
		out[c.rng.Intn(4)] ^= byte(1 << c.rng.Intn(8))
		return out, nil
	case FaultPackGarbage:
		a, err := apk.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("synth: pack-garbage needs a valid apk: %w", err)
		}
		a.Packed = true
		enc, err := apk.Encode(a)
		if err != nil {
			return nil, err
		}
		idx := bytes.Index(enc, []byte("STUB"))
		if idx < 0 {
			return nil, fmt.Errorf("synth: packed apk has no stub")
		}
		enc[idx] ^= 0xFF
		return enc, nil
	case FaultCallCycle:
		a, err := apk.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("synth: call-cycle needs a valid apk: %w", err)
		}
		a.Dex = BombDex()
		return apk.Encode(a)
	}
	return nil, fmt.Errorf("synth: %s is not an apk fault", f)
}

// BombDex builds a dex image that passes dex.Verify but trips the APG
// size guards: two mutually recursive methods form a call cycle, and a
// third exceeds apg.MaxMethodCode instructions.
func BombDex() *dex.Dex {
	cls := &dex.Class{Name: "Lcom/synth/bomb/Bomb;"}
	ret := dex.Instr{Op: dex.OpReturnVoid, A: -1, B: -1}
	call := func(name string) dex.Instr {
		return dex.Instr{Op: dex.OpInvokeStatic, A: -1, B: -1,
			Method: dex.MethodRef{Class: cls.Name, Name: name, Sig: "()V"}}
	}
	spinA := &dex.Method{Name: "spinA", Sig: "()V", Static: true, NumRegs: 1,
		Code: []dex.Instr{call("spinB"), ret}}
	spinB := &dex.Method{Name: "spinB", Sig: "()V", Static: true, NumRegs: 1,
		Code: []dex.Instr{call("spinA"), ret}}
	huge := &dex.Method{Name: "blowup", Sig: "()V", Static: true, NumRegs: 1}
	huge.Code = make([]dex.Instr, apg.MaxMethodCode+1)
	for i := range huge.Code {
		huge.Code[i] = dex.Instr{Op: dex.OpNop, A: -1, B: -1}
	}
	huge.Code[len(huge.Code)-1] = ret
	cls.AddMethod(spinA)
	cls.AddMethod(spinB)
	cls.AddMethod(huge)
	return &dex.Dex{Classes: []*dex.Class{cls}}
}

// Bundle file names, duplicated from the bundle package (which imports
// synth and so cannot be imported from here).
const (
	bundlePolicyFile = "policy.html"
	bundleAPKFile    = "app.apk"
)

// CorruptBundle applies one fault to an on-disk app bundle directory.
func (c *Corruptor) CorruptBundle(dir string, f Fault) error {
	name := bundleAPKFile
	if f.PolicyFault() {
		name = bundlePolicyFile
	}
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var out []byte
	if f.PolicyFault() {
		s, err := c.CorruptPolicy(string(data), f)
		if err != nil {
			return err
		}
		out = []byte(s)
	} else {
		if out, err = c.CorruptAPK(data, f); err != nil {
			return err
		}
	}
	return os.WriteFile(path, out, 0o644)
}

// CorruptCorpus corrupts the given fraction of an on-disk corpus'
// apps, cycling through every fault class. The victims are chosen by
// the seeded generator, so a given (corpus, seed) pair always corrupts
// the same apps the same way. It returns app name → injected fault.
func (c *Corruptor) CorruptCorpus(dir string, fraction float64) (map[string]Fault, error) {
	entries, err := os.ReadDir(filepath.Join(dir, "apps"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	n := int(float64(len(names)) * fraction)
	perm := c.rng.Perm(len(names))
	faults := AllFaults()
	out := make(map[string]Fault, n)
	for i := 0; i < n; i++ {
		name := names[perm[i]]
		f := faults[i%len(faults)]
		if err := c.CorruptBundle(filepath.Join(dir, "apps", name), f); err != nil {
			return out, err
		}
		out[name] = f
	}
	return out, nil
}

// Mangle returns n generic corruptions of data — truncations and
// single-bit flips at seeded offsets — for seeding fuzz targets.
func (c *Corruptor) Mangle(data []byte, n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if c.rng.Intn(2) == 0 && len(data) > 0 {
			out = append(out, append([]byte(nil), data[:c.rng.Intn(len(data))]...))
			continue
		}
		cp := append([]byte(nil), data...)
		if len(cp) > 0 {
			cp[c.rng.Intn(len(cp))] ^= byte(1 << c.rng.Intn(8))
		}
		out = append(out, cp)
	}
	return out
}
