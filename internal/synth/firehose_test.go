package synth

import (
	"bytes"
	"sync"
	"testing"

	"ppchecker/internal/apk"
)

// TestFirehoseDeterministic: app i is a pure function of (seed, i) —
// two independent generators produce byte-identical bundles, which is
// the property checkpoint/resume of a firehose run rests on.
func TestFirehoseDeterministic(t *testing.T) {
	a, b := NewFirehose(1234), NewFirehose(1234)
	for _, i := range []int64{0, 1, 7, 8, 63, 1000003} {
		ga, err := a.App(i)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.App(i)
		if err != nil {
			t.Fatal(err)
		}
		if ga.App.Name != gb.App.Name || ga.App.PolicyHTML != gb.App.PolicyHTML ||
			ga.App.Description != gb.App.Description {
			t.Fatalf("app %d text differs between generators", i)
		}
		apkA, err := apk.Encode(ga.App.APK)
		if err != nil {
			t.Fatal(err)
		}
		apkB, err := apk.Encode(gb.App.APK)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(apkA, apkB) {
			t.Fatalf("app %d APK bytes differ between generators", i)
		}
		ta, tb := ga.Truth, gb.Truth
		ta.Plan, tb.Plan = nil, nil
		if ta != tb {
			t.Fatalf("app %d ground truth differs: %+v vs %+v", i, ta, tb)
		}
	}
}

// TestFirehoseSeedMatters: a different seed produces different apps.
func TestFirehoseSeedMatters(t *testing.T) {
	a, b := NewFirehose(1), NewFirehose(2)
	same := 0
	for i := int64(0); i < 8; i++ {
		ga, err := a.App(i)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.App(i)
		if err != nil {
			t.Fatal(err)
		}
		if ga.App.PolicyHTML == gb.App.PolicyHTML && ga.App.Description == gb.App.Description {
			same++
		}
	}
	if same == 8 {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
}

// TestFirehoseArchetypeRotation: the i%8 rotation plants each
// archetype at its slot, so any window of the stream exercises every
// pipeline path.
func TestFirehoseArchetypeRotation(t *testing.T) {
	fh := NewFirehose(55)
	for i := int64(0); i < 16; i++ {
		ga, err := fh.App(i)
		if err != nil {
			t.Fatal(err)
		}
		plan := ga.Truth.Plan
		if plan == nil {
			t.Fatalf("app %d has no plan", i)
		}
		switch i % 8 {
		case 1:
			if len(plan.Missed) == 0 {
				t.Errorf("app %d (missed slot) has no missed infos", i)
			}
		case 2:
			if len(plan.DescPerms) == 0 {
				t.Errorf("app %d (desc slot) has no desc perms", i)
			}
		case 4:
			if !plan.CallbackReached {
				t.Errorf("app %d (callback slot) not callback-reached", i)
			}
		case 5:
			if !plan.Packed {
				t.Errorf("app %d (packed slot) not packed", i)
			}
			if !ga.App.APK.Packed {
				t.Errorf("app %d built unpacked despite packed plan", i)
			}
		case 6:
			if !plan.ColonFP {
				t.Errorf("app %d (colon slot) has no colon shape", i)
			}
		case 7:
			if plan.IncorrectRetain == nil {
				t.Errorf("app %d (incorrect slot) has no incorrect retain", i)
			}
		}
		if len(plan.CoveredInfos) == 0 {
			t.Errorf("app %d covers no infos", i)
		}
	}
}

// TestFirehoseConcurrent: App is safe to call from multiple goroutines
// and still deterministic.
func TestFirehoseConcurrent(t *testing.T) {
	fh := NewFirehose(9)
	want, err := fh.App(13)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := fh.App(13)
			if err != nil {
				t.Error(err)
				return
			}
			if got.App.PolicyHTML != want.App.PolicyHTML || got.App.Name != want.App.Name {
				t.Error("concurrent generation diverged")
			}
		}()
	}
	wg.Wait()
}

// TestFirehoseNegativeIndex: negative indexes are rejected, not mixed.
func TestFirehoseNegativeIndex(t *testing.T) {
	if _, err := NewFirehose(1).App(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}
