package synth

import (
	"math/rand"

	"ppchecker/internal/libdetect"
	"ppchecker/internal/verbs"
)

// libBehavior is one declared behaviour of a library's privacy policy.
type libBehavior struct {
	Cat      verbs.Category
	Resource string
}

// libBehaviors returns the behaviour menu of a library, from which its
// policy is generated. Menus are deterministic per category so
// inconsistency plants know what each lib declares.
func libBehaviors(lib libdetect.Library) []libBehavior {
	base := []libBehavior{
		{verbs.Collect, "device identifier"},
		{verbs.Collect, "usage information"},
		{verbs.Disclose, "personal information"},
	}
	switch lib.Category {
	case libdetect.CategoryAd:
		return append(base,
			libBehavior{verbs.Collect, "location information"},
			libBehavior{verbs.Use, "advertising identifier"},
			libBehavior{verbs.Retain, "device identifier"},
			libBehavior{verbs.Disclose, "device identifier"},
		)
	case libdetect.CategorySocial:
		return append(base,
			libBehavior{verbs.Collect, "contact information"},
			libBehavior{verbs.Collect, "personal information"},
		)
	default: // development tools
		return append(base,
			libBehavior{verbs.Collect, "location information"},
			libBehavior{verbs.Retain, "usage information"},
		)
	}
}

// hasBehavior reports whether a lib's menu includes (cat, resource).
func hasBehavior(lib libdetect.Library, cat verbs.Category, resource string) bool {
	for _, b := range libBehaviors(lib) {
		if b.Cat == cat && b.Resource == resource {
			return true
		}
	}
	return false
}

// libWithBehavior returns the nth registry lib (round-robin) whose menu
// includes the behaviour.
func libWithBehavior(cat verbs.Category, resource string, n int) libdetect.Library {
	var candidates []libdetect.Library
	for _, lib := range libdetect.Registry() {
		if hasBehavior(lib, cat, resource) {
			candidates = append(candidates, lib)
		}
	}
	if len(candidates) == 0 {
		panic("synth: no lib declares " + cat.String() + " " + resource)
	}
	return candidates[n%len(candidates)]
}

// GenerateLibPolicies produces the policy document for every registry
// library, keyed by library name. Policies are deterministic: the same
// library always gets the same policy.
func GenerateLibPolicies() map[string]string {
	out := make(map[string]string, len(libdetect.Registry()))
	for _, lib := range libdetect.Registry() {
		rng := rand.New(rand.NewSource(hashName(lib.Name)))
		b := NewPolicyBuilder(rng)
		b.Boilerplate(2)
		for _, beh := range libBehaviors(lib) {
			switch beh.Cat {
			case verbs.Collect:
				b.Add("We may collect your " + beh.Resource + ".")
			case verbs.Use:
				b.Add("We may use your " + beh.Resource + " to serve relevant content.")
			case verbs.Retain:
				b.Add("We may store your " + beh.Resource + " on our servers.")
			case verbs.Disclose:
				b.Add("We may share your " + beh.Resource + " with our partners.")
			}
		}
		b.Boilerplate(1)
		out[lib.Name] = b.HTML()
	}
	return out
}

func hashName(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// allLibNames lists the registry library names in stable order.
func allLibNames() []string {
	regs := libdetect.Registry()
	out := make([]string, len(regs))
	for i, l := range regs {
		out[i] = l.Name
	}
	return out
}
