package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"ppchecker/internal/libdetect"
	"ppchecker/internal/sensitive"
)

// Firehose is the continuous Play-store app generator behind the
// streaming soak workload: an endless, deterministic sequence of app
// bundles. App i is a pure function of (seed, i) — generating it
// twice, in the same or a different process, yields the same package
// name, policy, description and bytecode — which is what makes a
// checkpointed firehose run resumable.
//
// Unlike Generate, which lays out a fixed-size corpus to the paper's
// exact quotas, the firehose rotates through lighter-weight app
// archetypes chosen to exercise every pipeline stage (clean apps,
// missed-information apps, desc-incomplete apps, retained leaks,
// callback-reached code, packed apps, lib-bundling apps) without any
// global corpus bookkeeping, so it can run forever in bounded memory.
type Firehose struct {
	seed        int64
	libPolicies map[string]string
	libNames    []string
	perms       []string
}

// NewFirehose builds a generator. The library policy set is the fixed
// shared menu GenerateLibPolicies produces, so the lib-policy analysis
// cache sees a bounded universe of texts no matter how long the
// firehose runs.
func NewFirehose(seed int64) *Firehose {
	f := &Firehose{seed: seed, libPolicies: GenerateLibPolicies()}
	for _, lib := range libdetect.Registry() {
		if _, ok := f.libPolicies[lib.Name]; ok {
			f.libNames = append(f.libNames, lib.Name)
		}
	}
	for perm := range descTriggers {
		f.perms = append(f.perms, perm)
	}
	// Map iteration order is random; fix it so app i is deterministic.
	sort.Strings(f.libNames)
	sort.Strings(f.perms)
	return f
}

// Seed returns the generator seed (part of each app's resume identity).
func (f *Firehose) Seed() int64 { return f.seed }

// LibPolicies exposes the shared library policy menu.
func (f *Firehose) LibPolicies() map[string]string { return f.libPolicies }

// firehoseInfos is the rotation of plantable information types (every
// info with both policy phrases and code in the spec table).
var firehoseInfos = []sensitive.Info{
	sensitive.InfoLocation, sensitive.InfoContact, sensitive.InfoDeviceID,
	sensitive.InfoPhone, sensitive.InfoAccount, sensitive.InfoCalendar,
	sensitive.InfoCamera, sensitive.InfoAudio, sensitive.InfoSMS,
	sensitive.InfoAppList,
}

// App generates app number i. Safe for concurrent use: each call
// derives a private rand stream from (seed, i).
func (f *Firehose) App(i int64) (GeneratedApp, error) {
	if i < 0 {
		return GeneratedApp{}, fmt.Errorf("synth: negative firehose index %d", i)
	}
	// Mix seed and index into the per-app stream (splitmix64-style
	// finalizer, so consecutive indexes land far apart).
	z := uint64(f.seed) ^ (uint64(i)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	z ^= z >> 27
	rng := rand.New(rand.NewSource(int64(z)))

	plan := f.plan(i, rng)
	app, err := buildApp(plan, rng, f.libPolicies)
	if err != nil {
		return GeneratedApp{}, fmt.Errorf("synth: firehose app %d: %w", i, err)
	}
	return GeneratedApp{App: app, Truth: truthFor(plan)}, nil
}

// plan lays out app i's archetype. The rotation is by index, not rng,
// so the archetype mix stays exact over any window.
func (f *Firehose) plan(i int64, rng *rand.Rand) *AppPlan {
	plan := &AppPlan{
		Index: int(i),
		Pkg:   fmt.Sprintf("com.firehose.app%08d", i),
	}
	// Every app covers 1-3 infos in both code and policy.
	n := 1 + rng.Intn(3)
	seen := map[sensitive.Info]bool{}
	for len(plan.CoveredInfos) < n {
		info := firehoseInfos[rng.Intn(len(firehoseInfos))]
		if !seen[info] {
			seen[info] = true
			plan.CoveredInfos = append(plan.CoveredInfos, info)
		}
	}
	// Two thirds of apps bundle 1-2 libraries, keeping the shared
	// lib-policy cache hot.
	if i%3 != 2 && len(f.libNames) > 0 {
		nl := 1 + rng.Intn(2)
		for len(plan.Libs) < nl {
			name := f.libNames[rng.Intn(len(f.libNames))]
			dup := false
			for _, have := range plan.Libs {
				dup = dup || have == name
			}
			if !dup {
				plan.Libs = append(plan.Libs, name)
			}
		}
	}
	switch i % 8 {
	case 1: // missed information (code-incomplete)
		for len(plan.Missed) < 1+rng.Intn(2) {
			info := firehoseInfos[rng.Intn(len(firehoseInfos))]
			if !seen[info] {
				seen[info] = true
				plan.Missed = append(plan.Missed, MissedRecord{Info: info})
			}
		}
	case 2: // desc-incomplete
		plan.DescPerms = []string{f.perms[rng.Intn(len(f.perms))]}
	case 3: // retained leak
		for _, info := range firehoseInfos {
			if !seen[info] {
				seen[info] = true
				plan.Missed = append(plan.Missed, MissedRecord{Info: info, Retained: true})
				break
			}
		}
	case 4: // callback-reached access (EdgeMiner path)
		plan.CallbackReached = true
	case 5: // packed app (unpacking path)
		plan.Packed = true
	case 6: // colon-extraction false-positive shape
		plan.ColonFP = true
	case 7: // incorrect policy (negative retain + retained leak)
		info := firehoseInfos[rng.Intn(len(firehoseInfos))]
		plan.IncorrectRetain = &info
		if !seen[info] {
			seen[info] = true
			plan.Missed = append(plan.Missed, MissedRecord{Info: info, Retained: true})
		}
	}
	return plan
}
