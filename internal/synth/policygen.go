package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"ppchecker/internal/verbs"
)

// PolicyBuilder assembles a privacy policy document sentence by
// sentence and renders it as HTML, the form policies are published in.
type PolicyBuilder struct {
	rng       *rand.Rand
	sentences []string
}

// NewPolicyBuilder returns a builder with its own deterministic stream.
func NewPolicyBuilder(rng *rand.Rand) *PolicyBuilder {
	return &PolicyBuilder{rng: rng}
}

// Add appends a raw sentence.
func (b *PolicyBuilder) Add(sentence string) { b.sentences = append(b.sentences, sentence) }

// boilerplate sentences carry no information behaviour; none matches
// the pattern set.
var boilerplate = []string{
	"Please read this privacy policy carefully.",
	"We take your privacy very seriously.",
	"This policy explains our privacy practices in plain language.",
	"We may update this policy from time to time.",
	"If you have any questions about this policy, please email our support team.",
	"By installing the application you agree to this policy.",
	"This policy applies to the mobile application only.",
	"We work hard to protect the security of your data.",
}

// Boilerplate appends n boilerplate sentences.
func (b *PolicyBuilder) Boilerplate(n int) {
	for i := 0; i < n; i++ {
		b.Add(boilerplate[b.rng.Intn(len(boilerplate))])
	}
}

// verbFor picks a verb lemma of the category.
func (b *PolicyBuilder) verbFor(cat verbs.Category) string {
	var pool []string
	switch cat {
	case verbs.Collect:
		pool = []string{"collect", "gather", "obtain", "receive", "access"}
	case verbs.Use:
		pool = []string{"use", "process"}
	case verbs.Retain:
		pool = []string{"store", "retain", "keep", "save"}
	case verbs.Disclose:
		pool = []string{"share", "disclose", "transfer", "provide"}
	default:
		pool = []string{"collect"}
	}
	return pool[b.rng.Intn(len(pool))]
}

// pastParticiple inflects the verbs the builder uses.
func pastParticiple(lemma string) string {
	switch lemma {
	case "keep":
		return "kept"
	case "hold":
		return "held"
	case "send":
		return "sent"
	case "sell":
		return "sold"
	case "give":
		return "given"
	case "get":
		return "gotten"
	case "read":
		return "read"
	case "log":
		return "logged"
	}
	if strings.HasSuffix(lemma, "e") {
		return lemma + "d"
	}
	return lemma + "ed"
}

// Cover appends a positive sentence declaring the behaviour on the
// resource phrase, in one of the pattern shapes P1–P5.
func (b *PolicyBuilder) Cover(cat verbs.Category, resource string) {
	v := b.verbFor(cat)
	switch b.rng.Intn(5) {
	case 0:
		b.Add(fmt.Sprintf("We may %s your %s.", v, resource))
	case 1:
		b.Add(fmt.Sprintf("Your %s may be %s by us.", resource, pastParticiple(v)))
	case 2:
		b.Add(fmt.Sprintf("We are allowed to %s your %s.", v, resource))
	case 3:
		b.Add(fmt.Sprintf("We are able to %s your %s.", v, resource))
	default:
		if cat == verbs.Disclose {
			b.Add(fmt.Sprintf("We will %s your %s with our partners.", v, resource))
		} else {
			b.Add(fmt.Sprintf("We will %s your %s to improve our services.", v, resource))
		}
	}
}

// Negative appends a negative sentence denying the behaviour.
func (b *PolicyBuilder) Negative(cat verbs.Category, resource string) {
	v := b.verbFor(cat)
	switch b.rng.Intn(3) {
	case 0:
		b.Add(fmt.Sprintf("We will not %s your %s.", v, resource))
	case 1:
		b.Add(fmt.Sprintf("We do not %s your %s.", v, resource))
	default:
		b.Add(fmt.Sprintf("We will never %s your %s.", v, resource))
	}
}

// NegativeVerb appends a negative sentence with an explicit verb (used
// to plant the "display" false-negative mode).
func (b *PolicyBuilder) NegativeVerb(verb, resource string) {
	b.Add(fmt.Sprintf("We will not %s any of your %s.", verb, resource))
}

// ColonFP appends the §V-C false-positive sentence: the device
// identifiers are covered by this sentence, but the extractor only
// reaches "name".
func (b *PolicyBuilder) ColonFP() {
	b.Add("In addition to your device identifiers, we may also collect: the name you have associated with your device.")
}

// ZohoPair appends the §V-D false-positive pair: a context-limited
// negative sentence plus a positive sentence that actually covers the
// behaviour.
func (b *PolicyBuilder) ZohoPair() {
	b.Add("We also do not process the contents of your user account for serving targeted advertisements.")
	b.Add("We may need to provide access to your personal information and the contents of your user account to our employees.")
}

// Disclaimer appends the §IV-C third-party responsibility disclaimer.
func (b *PolicyBuilder) Disclaimer() {
	b.Add("We encourage you to review the privacy practices of these third parties before disclosing any personally identifiable information, as we are not responsible for the privacy practices of those sites.")
}

// Sentences returns the accumulated sentences.
func (b *PolicyBuilder) Sentences() []string { return append([]string(nil), b.sentences...) }

// HTML renders the policy as a web page.
func (b *PolicyBuilder) HTML() string {
	var sb strings.Builder
	sb.WriteString("<html><head><title>Privacy Policy</title></head><body>\n<h1>Privacy Policy</h1>\n")
	for _, s := range b.sentences {
		sb.WriteString("<p>" + s + "</p>\n")
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}
