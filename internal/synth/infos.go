// Package synth generates the synthetic evaluation corpus standing in
// for the paper's 1,197 Google Play apps (see DESIGN.md on
// substitutions): for each app a privacy policy (HTML), a Google Play
// description, an app package (manifest + SDEX bytecode), bundled
// third-party libraries with their own generated policies, and ground
// truth describing exactly which phenomena were planted. The detector
// is then run for real against the generated artifacts.
package synth

import (
	"fmt"

	"ppchecker/internal/sensitive"
)

// infoSpec carries everything the generators need for one information
// type.
type infoSpec struct {
	Info sensitive.Info
	// PolicyPhrases are resource phrases a policy uses to cover the
	// info; each must ESA-match the info name.
	PolicyPhrases []string
	// Permission to request in the manifest (first of the guarding
	// permissions).
	Permission string
	// Code emits assembly lines that read the info into register reg
	// (registers reg and reg+1 are free for scratch).
	Code func(reg int) []string
}

var infoSpecs = []infoSpec{
	{
		Info:          sensitive.InfoLocation,
		PolicyPhrases: []string{"location", "location information", "precise location", "gps location"},
		Permission:    sensitive.PermFineLocation,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v%d", r),
				fmt.Sprintf("invoke-virtual {v0}, Landroid/location/Location;->getLongitude()D -> v%d", r+1),
			}
		},
	},
	{
		Info:          sensitive.InfoContact,
		PolicyPhrases: []string{"contacts", "contact information", "address book", "contact list"},
		Permission:    sensitive.PermReadContacts,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("sget v%d, Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;", r+1),
				fmt.Sprintf("invoke-virtual {v0, v%d}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v%d", r+1, r),
			}
		},
	},
	{
		Info:          sensitive.InfoDeviceID,
		PolicyPhrases: []string{"device identifier", "device id", "unique device identifier", "imei"},
		Permission:    sensitive.PermPhoneState,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v%d", r),
			}
		},
	},
	{
		Info:          sensitive.InfoPhone,
		PolicyPhrases: []string{"phone number", "telephone number", "mobile number"},
		Permission:    sensitive.PermPhoneState,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getLine1Number()Ljava/lang/String; -> v%d", r),
			}
		},
	},
	{
		Info:          sensitive.InfoAccount,
		PolicyPhrases: []string{"account information", "user account", "account details"},
		Permission:    sensitive.PermGetAccounts,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0}, Landroid/accounts/AccountManager;->getAccounts()[Landroid/accounts/Account; -> v%d", r),
			}
		},
	},
	{
		Info:          sensitive.InfoCalendar,
		PolicyPhrases: []string{"calendar entries", "calendar events", "calendar information"},
		Permission:    sensitive.PermReadCalendar,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("const-string v%d, \"content://com.android.calendar/events\"", r+1),
				fmt.Sprintf("invoke-static {v%d}, Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri; -> v%d", r+1, r+2),
				fmt.Sprintf("invoke-virtual {v0, v%d}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v%d", r+2, r),
			}
		},
	},
	{
		Info:          sensitive.InfoCamera,
		PolicyPhrases: []string{"camera", "photos", "pictures taken with the camera"},
		Permission:    sensitive.PermCamera,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-static {}, Landroid/hardware/Camera;->open()Landroid/hardware/Camera; -> v%d", r),
			}
		},
	},
	{
		Info:          sensitive.InfoAudio,
		PolicyPhrases: []string{"audio recordings", "microphone audio", "voice recordings"},
		Permission:    sensitive.PermRecordAudio,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0}, Landroid/media/AudioRecord;->startRecording()V"),
				fmt.Sprintf("invoke-virtual {v0, v%d, v%d, v%d}, Landroid/media/AudioRecord;->read([BII)I -> v%d", r+1, r+2, r+3, r),
			}
		},
	},
	{
		Info:          sensitive.InfoSMS,
		PolicyPhrases: []string{"sms messages", "text messages", "message content"},
		Permission:    sensitive.PermReadSMS,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("sget v%d, Landroid/provider/Telephony$Sms;->CONTENT_URI:Landroid/net/Uri;", r+1),
				fmt.Sprintf("invoke-virtual {v0, v%d}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v%d", r+1, r),
			}
		},
	},
	{
		Info:          sensitive.InfoCallLog,
		PolicyPhrases: []string{"call log", "call history", "phone call records"},
		Permission:    sensitive.PermReadCallLog,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("const-string v%d, \"content://call_log/calls\"", r+1),
				fmt.Sprintf("invoke-static {v%d}, Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri; -> v%d", r+1, r+2),
				fmt.Sprintf("invoke-virtual {v0, v%d}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v%d", r+2, r),
			}
		},
	},
	{
		Info:          sensitive.InfoAppList,
		PolicyPhrases: []string{"installed applications", "app list", "list of installed applications"},
		Permission:    "", // no permission guards getInstalledPackages
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0, v%d}, Landroid/content/pm/PackageManager;->getInstalledPackages(I)Ljava/util/List; -> v%d", r+1, r),
			}
		},
	},
	{
		Info:          sensitive.InfoCookie,
		PolicyPhrases: []string{"cookies", "browser cookies", "tracking cookies"},
		Permission:    "",
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0, v%d}, Landroid/webkit/CookieManager;->getCookie(Ljava/lang/String;)Ljava/lang/String; -> v%d", r+1, r),
			}
		},
	},
	{
		Info:          sensitive.InfoIPAddress,
		PolicyPhrases: []string{"ip address", "internet protocol address"},
		Permission:    sensitive.PermWifiState,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-virtual {v0}, Landroid/net/wifi/WifiInfo;->getIpAddress()I -> v%d", r),
			}
		},
	},
	{
		Info:          sensitive.InfoEmail,
		PolicyPhrases: []string{"email address", "e-mail address"},
		Permission:    sensitive.PermGetAccounts,
		Code: func(r int) []string {
			return []string{
				fmt.Sprintf("invoke-static {v%d}, Landroid/util/Patterns;->matchEmail(Ljava/lang/CharSequence;)Ljava/lang/String; -> v%d", r+1, r),
			}
		},
	},
}

// specFor returns the spec of an info type.
func specFor(info sensitive.Info) infoSpec {
	for _, s := range infoSpecs {
		if s.Info == info {
			return s
		}
	}
	panic("synth: no spec for info " + string(info))
}

// descTriggers maps each Table III permission to a description sentence
// that makes the description analyzer infer it.
var descTriggers = map[string]string{
	sensitive.PermFineLocation:   "Track your runs with precise GPS navigation and turn-by-turn directions.",
	sensitive.PermCoarseLocation: "Get the local weather forecast for your area and nearby cities.",
	sensitive.PermCamera:         "Scan any barcode or QR code instantly with your camera.",
	sensitive.PermGetAccounts:    "Sign in with your Google account to sync progress across devices.",
	sensitive.PermReadCalendar:   "See all your calendar events and meetings in one simple agenda.",
	sensitive.PermReadContacts:   "Find friends from your contacts list and never miss their birthdays.",
	sensitive.PermWriteContacts:  "Quickly save new contacts and merge duplicate contacts.",
}

// neutralDescriptions never imply a permission.
var neutralDescriptions = []string{
	"A simple and relaxing puzzle game with hundreds of levels.",
	"Swipe tiles to combine matching numbers and reach the highest score.",
	"Beautiful minimalist graphics and soothing music.",
	"Challenge yourself with daily brain teasers.",
	"The fastest way to read the news that matters to you.",
	"Enjoy classic card games with players around the world.",
	"Turn your screen into a handy flashlight with one tap.",
	"Stay productive with a clean and simple to-do list.",
	"Learn a new language with bite-sized daily lessons.",
	"Watch the best cooking recipes in short videos.",
}
