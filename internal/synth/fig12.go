package synth

import (
	"fmt"
	"math/rand"

	"ppchecker/internal/nlp"
	"ppchecker/internal/patterns"
	"ppchecker/internal/verbs"
)

// Fig12Data is the corpus behind the paper's pattern-selection
// experiment (§V-B): a mining corpus drawn from 100 policies plus the
// manually-labelled positive and negative sentence sets (250 each).
type Fig12Data struct {
	// Corpus is the sentence pool the bootstrapping miner runs on.
	Corpus []string
	// Positive are sentences about information collection, usage,
	// retention, or disclosure.
	Positive []string
	// Negative are unrelated sentences.
	Negative []string
}

// Resource vocabulary for pattern sentences; a small pool keeps the
// bootstrapping object list dense.
var fig12Resources = []string{
	"location", "information", "contacts", "data", "identifiers",
	"preferences", "history",
}

// patternShape realizes one dependency-path pattern as a sentence.
type patternShape struct {
	// Key is a human identity for dedupe (mirrors patterns.Pattern.Key).
	Key string
	// Render produces a sentence instance over a resource.
	Render func(res string) string
	// Dual marks P5 shapes that realize two patterns per sentence.
	Dual bool
}

func activeShape(v string) patternShape {
	return patternShape{
		Key:    "active:" + v,
		Render: func(res string) string { return fmt.Sprintf("We may %s your %s.", v, res) },
	}
}

func passiveShape(v string) patternShape {
	return patternShape{
		Key:    "passive:" + v,
		Render: func(res string) string { return fmt.Sprintf("Your %s will be %s.", res, pastParticiple(v)) },
	}
}

func allowShape(v string) patternShape {
	return patternShape{
		Key:    "active:allow-" + v,
		Render: func(res string) string { return fmt.Sprintf("We are allowed to %s your %s.", v, res) },
	}
}

func ableShape(v string) patternShape {
	return patternShape{
		Key:    "active:able-" + v,
		Render: func(res string) string { return fmt.Sprintf("We are able to %s your %s.", v, res) },
	}
}

func purposeShape(u, v string) patternShape {
	return patternShape{
		Key:  "active:" + u + "-" + v,
		Dual: true,
		Render: func(res string) string {
			return fmt.Sprintf("We %s your data to %s your %s.", u, v, res)
		},
	}
}

// frequentShapes are the high-frequency patterns (the seeds and their
// close variants).
func frequentShapes() []patternShape {
	var out []patternShape
	for _, v := range []string{"collect", "use", "share", "store", "gather",
		"obtain", "receive", "access", "retain", "disclose"} {
		out = append(out, activeShape(v))
	}
	for _, v := range []string{"collect", "use", "share", "store", "track",
		"save", "transfer", "process", "record", "keep"} {
		out = append(out, passiveShape(v))
	}
	return out
}

// rareShapes enumerates the long tail of shapes the miner must
// bootstrap; count bounds the list. Frequent-shape keys are excluded.
func rareShapes(count int) []patternShape {
	catVerbs := verbs.Lemmas()
	freqKeys := map[string]bool{}
	for _, s := range frequentShapes() {
		freqKeys[s.Key] = true
	}
	var out []patternShape
	add := func(s patternShape) {
		if len(out) < count && !freqKeys[s.Key] && shapeRealizes(s) {
			out = append(out, s)
		}
	}
	for _, v := range catVerbs {
		add(allowShape(v))
	}
	for _, v := range catVerbs {
		add(ableShape(v))
	}
	for _, v := range catVerbs {
		add(passiveShape(v))
	}
	for _, u := range verbs.UseVerbs {
		for _, v := range verbs.CollectVerbs {
			add(purposeShape(u, v))
		}
	}
	for _, u := range verbs.UseVerbs {
		for _, v := range verbs.RetainVerbs {
			add(purposeShape(u, v))
		}
	}
	for _, u := range verbs.UseVerbs {
		for _, v := range verbs.DiscloseVerbs {
			add(purposeShape(u, v))
		}
	}
	return out
}

// shapeRealizes verifies that the shape's rendered sentence actually
// yields the shape's pattern key under the parser, so broken shapes
// cannot silently distort the experiment's floors.
func shapeRealizes(s patternShape) bool {
	sents := nlp.SplitSentences(s.Render("location"))
	if len(sents) == 0 {
		return false
	}
	p := nlp.ParseSentence(sents[0])
	for _, c := range patterns.Extract(p) {
		if c.Pattern.Key() == s.Key {
			return true
		}
	}
	return false
}

// unmatchableSentences use verbs outside the category lists, so no
// mined pattern ever matches them — the paper's false-negative floor.
var unmatchableVerbs = []string{"display", "show", "present", "check", "view"}

// junkSentences use non-category verbs over harmless objects; the
// miner may bootstrap their patterns, which then match negative
// sentences and raise the false-positive rate for large n.
var junkVerbs = []string{"offer", "suggest", "recommend", "deliver", "improve"}
var junkObjects = []string{"notifications", "advertisements", "recommendations",
	"updates", "banners", "offers"}

// neutralNegatives never match any pattern.
var neutralNegatives = []string{
	"Please read this privacy policy carefully.",
	"This policy explains our privacy practices in plain language.",
	"By installing the application you agree to this policy.",
	"This policy applies to the mobile application only.",
	"If you have any questions, please email our support team.",
	"The policy was last updated in January.",
	"Our team works hard on the quality of the application.",
	"The application is free of charge.",
}

// Fig12Config tunes the experiment corpus. The defaults are calibrated
// so the optimum pattern count lands at the paper's n = 230 with
// FN ≈ 12% and FP ≈ 2.8%.
type Fig12Config struct {
	Seed int64
	// PositiveRareCount is how many rare shapes are realized in the
	// positive test set (one sentence each).
	PositiveRareCount int
	// CorpusRareCount is how many rare shapes occur in the mining
	// corpus; shapes beyond PositiveRareCount become harmless mined
	// patterns that pad the sweep plateau.
	CorpusRareCount int
	// FrequentSentences is how many positive sentences use frequent
	// shapes.
	FrequentSentences int
	// UnmatchablePositives is the FN floor (sentences no pattern
	// matches).
	UnmatchablePositives int
	// SeedFPNegatives is the FP floor (negatives matched by seed
	// patterns).
	SeedFPNegatives int
}

// DefaultFig12Config returns the calibrated configuration.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{
		Seed:                 160628,
		PositiveRareCount:    150,
		CorpusRareCount:      206,
		FrequentSentences:    40,
		UnmatchablePositives: 30,
		SeedFPNegatives:      7,
	}
}

// GenerateFig12 builds the experiment corpus.
func GenerateFig12(cfg Fig12Config) *Fig12Data {
	rng := rand.New(rand.NewSource(cfg.Seed))
	freq := frequentShapes()
	corpusRare := rareShapes(cfg.CorpusRareCount)
	posRare := corpusRare
	if cfg.PositiveRareCount < len(posRare) {
		posRare = corpusRare[:cfg.PositiveRareCount]
	}
	res := func() string { return fig12Resources[rng.Intn(len(fig12Resources))] }

	d := &Fig12Data{}
	// Positive set: frequent sentences + one sentence per realized rare
	// shape, topped up with more frequent instances, + the unmatchable
	// floor.
	for i := 0; i < cfg.FrequentSentences; i++ {
		d.Positive = append(d.Positive, freq[i%len(freq)].Render(res()))
	}
	for _, s := range posRare {
		d.Positive = append(d.Positive, s.Render(res()))
	}
	for len(d.Positive) < 250-cfg.UnmatchablePositives {
		d.Positive = append(d.Positive, freq[rng.Intn(len(freq))].Render(res()))
	}
	for i := 0; len(d.Positive) < 250; i++ {
		v := unmatchableVerbs[i%len(unmatchableVerbs)]
		d.Positive = append(d.Positive, fmt.Sprintf("We will %s your %s.", v, res()))
	}
	d.Positive = d.Positive[:250]

	// Negative set: the seed-FP sentences (category verbs over
	// non-personal objects, spread across verbs so no single pattern's
	// confidence collapses), junk-verb sentences (matched only by
	// bootstrapped junk patterns), and neutral filler.
	fpVerbs := []string{"collect", "use", "share", "store", "gather", "obtain", "receive"}
	for i := 0; i < cfg.SeedFPNegatives; i++ {
		d.Negative = append(d.Negative,
			fmt.Sprintf("We may %s anonymous %s.", fpVerbs[i%len(fpVerbs)], junkObjects[i%len(junkObjects)]))
	}
	for i := 0; len(d.Negative) < 80; i++ {
		v := junkVerbs[i%len(junkVerbs)]
		o := junkObjects[(i/len(junkVerbs))%len(junkObjects)]
		d.Negative = append(d.Negative, fmt.Sprintf("We may %s new %s.", v, o))
	}
	for i := 0; len(d.Negative) < 250; i++ {
		d.Negative = append(d.Negative, neutralNegatives[i%len(neutralNegatives)])
	}
	d.Negative = d.Negative[:250]

	// Mining corpus: 100 policies' worth of sentences — 2–3 instances
	// of every shape (frequent shapes many more), plus junk-verb
	// sentences with harvested objects so the miner bootstraps junk
	// patterns too, plus boilerplate.
	// Every shape gets one instance over "information" — the highest
	// frequency object — so the miner's above-median object filter
	// cannot starve a shape whose other instances drew rare resources.
	for _, s := range freq {
		d.Corpus = append(d.Corpus, s.Render("information"))
		for i := 0; i < 5; i++ {
			d.Corpus = append(d.Corpus, s.Render(res()))
		}
	}
	for _, s := range corpusRare {
		d.Corpus = append(d.Corpus, s.Render("information"), s.Render(res()))
	}
	for i := 0; i < 60; i++ {
		v := junkVerbs[i%len(junkVerbs)]
		// Junk sentences over frequent resources so the object-list
		// filter admits them.
		d.Corpus = append(d.Corpus, fmt.Sprintf("We may %s your %s.", v, res()))
	}
	for i := 0; i < 120; i++ {
		d.Corpus = append(d.Corpus, neutralNegatives[i%len(neutralNegatives)])
	}
	rng.Shuffle(len(d.Corpus), func(i, j int) { d.Corpus[i], d.Corpus[j] = d.Corpus[j], d.Corpus[i] })
	return d
}
