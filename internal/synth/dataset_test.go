package synth

import (
	"math/rand"
	"strings"
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/sensitive"
)

func paperPlans(t *testing.T) []*AppPlan {
	t.Helper()
	rng := rand.New(rand.NewSource(DefaultConfig().Seed))
	plans, err := buildPlans(DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

// TestPlanQuotas verifies the quota arithmetic behind §V-F before any
// app is even built.
func TestPlanQuotas(t *testing.T) {
	plans := paperPlans(t)
	var (
		codeApps, descApps, records, retained int
		incorrectApps, colonApps, zohoApps    int
		curApps, discApps, fnApps             int
		withLibs, packed, disclaimer          int
	)
	for _, p := range plans {
		if len(p.Missed) > 0 {
			codeApps++
			records += len(p.Missed)
			for _, r := range p.Missed {
				if r.Retained {
					retained++
				}
			}
		}
		if len(p.DescPerms) > 0 {
			descApps++
		}
		if p.IncorrectDesc || p.IncorrectRetain != nil {
			incorrectApps++
		}
		if p.ColonFP {
			colonApps++
		}
		if p.ZohoFP {
			zohoApps++
		}
		cur, disc := false, false
		for _, inc := range p.Inconsistencies {
			if inc.Disclose() {
				disc = true
			} else {
				cur = true
			}
			if inc.FN {
				fnApps++
			}
		}
		if cur {
			curApps++
		}
		if disc {
			discApps++
		}
		if len(p.Libs) > 0 {
			withLibs++
		}
		if p.Packed {
			packed++
		}
		if p.DisclaimerSuppressed {
			disclaimer++
		}
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"code-incomplete apps", codeApps, 180},
		{"missed records", records, 234},
		{"retained records", retained, 32},
		{"desc-incomplete apps", descApps, 64},
		{"incorrect apps", incorrectApps, 4},
		{"colon FP apps", colonApps, 15},
		{"zoho FP apps", zohoApps, 2},
		{"CUR inconsistency apps", curApps, 45},       // 41 detectable + 4 FN
		{"disclose inconsistency apps", discApps, 42}, // 39 detectable + 3 FN
		{"FN plants", fnApps, 7},
		{"apps with libs", withLibs, 879},
		{"disclaimer apps", disclaimer, 6},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if packed == 0 {
		t.Error("no packed apps planned")
	}
}

// TestPlanTwoRecordAppsDistinctInfos: no app carries two missed records
// of the same information (they would collapse into one finding).
func TestPlanTwoRecordAppsDistinctInfos(t *testing.T) {
	for _, p := range paperPlans(t) {
		seen := map[sensitive.Info]bool{}
		for _, r := range p.Missed {
			if seen[r.Info] {
				t.Fatalf("app %d has duplicate missed info %s", p.Index, r.Info)
			}
			seen[r.Info] = true
		}
	}
}

// TestPlanOverlapConsistency: every desc-incomplete overlap app inside
// the code pool has a missed info matching its permission.
func TestPlanOverlapConsistency(t *testing.T) {
	for _, p := range paperPlans(t) {
		if p.Index >= codeIncompleteCount || len(p.DescPerms) == 0 {
			continue
		}
		for _, perm := range p.DescPerms {
			infos := sensitive.InfoForPermission(perm)
			matched := false
			for _, r := range p.Missed {
				for _, info := range infos {
					if r.Info == info {
						matched = true
					}
				}
			}
			if !matched {
				t.Errorf("app %d: perm %s has no matching missed info %v", p.Index, perm, p.Missed)
			}
		}
	}
}

// TestPlanInconsistencyLibsDeclareBehaviour: every planted conflict
// references a lib whose policy menu actually declares the behaviour.
func TestPlanInconsistencyLibsDeclareBehaviour(t *testing.T) {
	for _, p := range paperPlans(t) {
		for _, inc := range p.Inconsistencies {
			lib, ok := libdetect.ByName(inc.LibName)
			if !ok {
				t.Fatalf("app %d: unknown lib %q", p.Index, inc.LibName)
			}
			if !hasBehavior(lib, inc.Category, inc.Resource) {
				t.Errorf("app %d: %s does not declare %v %q", p.Index, inc.LibName, inc.Category, inc.Resource)
			}
		}
	}
}

// TestGeneratedAppsVerify: every generated APK passes the bytecode
// verifier and round-trips through the container.
func TestGeneratedAppsVerify(t *testing.T) {
	ds, err := Generate(Config{Seed: 5, NumApps: MinApps})
	if err != nil {
		t.Fatal(err)
	}
	for i, ga := range ds.Apps {
		if err := dex.Verify(ga.App.APK.Dex); err != nil {
			t.Fatalf("app %d fails verification: %v", i, err)
		}
		if i%37 == 0 { // round-trip a sample
			data, err := apk.Encode(ga.App.APK)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := apk.Decode(data); err != nil {
				t.Fatalf("app %d round trip: %v", i, err)
			}
		}
	}
}

// TestGeneratedLibsMatchPlan: detected libraries equal the planned set.
func TestGeneratedLibsMatchPlan(t *testing.T) {
	ds, err := Generate(Config{Seed: 5, NumApps: MinApps})
	if err != nil {
		t.Fatal(err)
	}
	for i, ga := range ds.Apps {
		detected := libdetect.Detect(ga.App.APK.Dex)
		if len(detected) != len(ga.Truth.Plan.Libs) {
			t.Fatalf("app %d: detected %d libs, planned %d", i, len(detected), len(ga.Truth.Plan.Libs))
		}
		for _, d := range detected {
			found := false
			for _, name := range ga.Truth.Plan.Libs {
				if name == d.Name {
					found = true
				}
			}
			if !found {
				t.Fatalf("app %d: unplanned lib %s", i, d.Name)
			}
		}
	}
}

// TestPackageNamesUnique: package names never collide.
func TestPackageNamesUnique(t *testing.T) {
	ds, err := Generate(Config{Seed: 5, NumApps: MinApps})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ga := range ds.Apps {
		if seen[ga.App.Name] {
			t.Fatalf("duplicate package %s", ga.App.Name)
		}
		seen[ga.App.Name] = true
		if !strings.HasPrefix(ga.App.Name, "com.") {
			t.Fatalf("odd package name %q", ga.App.Name)
		}
	}
}
