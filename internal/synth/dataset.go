package synth

import (
	"fmt"
	"math/rand"

	"ppchecker/internal/core"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/verbs"
)

// Config controls dataset generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumApps is the corpus size; the paper's corpus has 1,197 apps.
	// Values below MinApps are rejected because the planted quotas
	// would not fit.
	NumApps int
}

// DefaultConfig reproduces the paper's corpus shape.
func DefaultConfig() Config { return Config{Seed: 20160628, NumApps: PaperNumApps} }

// Corpus-shape constants from §V of the paper.
const (
	// PaperNumApps is the paper's corpus size.
	PaperNumApps = 1197
	// MinApps is the smallest corpus that fits all planted quotas.
	MinApps = 400
	// appsWithLibs is the number of apps bundling at least one library
	// (879, i.e. 73%).
	appsWithLibs = 879
)

// Index-layout constants: which app indexes carry which plants.
const (
	codeIncompleteCount = 180 // code-incomplete true positives
	colonFPStart        = 180 // 15 colon-extraction false positives
	colonFPCount        = 15
	zohoFPStart         = 195 // 2 context false positives (incorrect)
	zohoFPCount         = 2
	freshDescStart      = 197 // 42 desc-incomplete apps outside the code pool
	freshDescCount      = 42
	curOnlyStart        = 239 // fresh CUR-only inconsistency TPs
	curOnlyCount        = 28
	discOnlyStart       = 267 // fresh disclose-only inconsistency TPs
	discOnlyCount       = 27
	bothGroupStart      = 294 // inconsistency TPs in both groups
	bothGroupCount      = 5
	curFPStart          = 299 // ESA over-match FPs, CUR group
	curFPCount          = 5
	discFPStart         = 304 // ESA over-match FPs, disclose group
	discFPCount         = 4
	curFNStart          = 308 // verb-gap FNs, CUR group
	curFNCount          = 4
	discFNStart         = 312 // verb-gap FNs, disclose group
	discFNCount         = 3
	disclaimerStart     = 315 // disclaimer-suppressed conflicts
	disclaimerCount     = 6
	fillerStart         = 321
)

// fig13Records is the missed-information record distribution behind
// Fig. 13: info → (total records, retained records). Totals sum to 234
// and retained to 32, the §V-C counts.
var fig13Records = []struct {
	Info     sensitive.Info
	Total    int
	Retained int
}{
	{sensitive.InfoLocation, 58, 9},
	{sensitive.InfoContact, 40, 7},
	{sensitive.InfoDeviceID, 33, 6},
	{sensitive.InfoAccount, 24, 4},
	{sensitive.InfoPhone, 19, 3},
	{sensitive.InfoAppList, 16, 3},
	{sensitive.InfoCalendar, 12, 0},
	{sensitive.InfoCamera, 10, 0},
	{sensitive.InfoAudio, 8, 0},
	{sensitive.InfoSMS, 6, 0},
	{sensitive.InfoCookie, 4, 0},
	{sensitive.InfoIPAddress, 4, 0},
}

// tableIIIOverlap is how many of each Table III permission's apps live
// inside the code-incomplete pool (22 overlap apps in total, giving
// 64 + 180 − 22 = 222 unique incomplete apps).
var tableIIIOverlap = map[string]int{
	sensitive.PermFineLocation:   8,
	sensitive.PermCoarseLocation: 6,
	sensitive.PermReadContacts:   4, // includes the two incorrect-desc apps
	sensitive.PermGetAccounts:    2,
	sensitive.PermReadCalendar:   1,
	sensitive.PermCamera:         1,
}

// tableIIIFresh is the per-permission count of desc-incomplete apps
// outside the code pool. One fresh app carries two permissions
// (CAMERA + GET_ACCOUNTS), so these 43 records cover 42 apps and the
// grand totals match Table III exactly.
var tableIIIFresh = map[string]int{
	sensitive.PermFineLocation:   11,
	sensitive.PermCoarseLocation: 8,
	sensitive.PermReadContacts:   8,
	sensitive.PermGetAccounts:    9,
	sensitive.PermReadCalendar:   1,
	sensitive.PermCamera:         5,
	sensitive.PermWriteContacts:  1,
}

// permForInfo maps a code-missed info to the Table III permission used
// for its desc-overlap plant.
var permForInfo = map[sensitive.Info][]string{
	sensitive.InfoLocation: {sensitive.PermFineLocation, sensitive.PermCoarseLocation},
	sensitive.InfoContact:  {sensitive.PermReadContacts},
	sensitive.InfoAccount:  {sensitive.PermGetAccounts},
	sensitive.InfoCalendar: {sensitive.PermReadCalendar},
	sensitive.InfoCamera:   {sensitive.PermCamera},
}

// MissedRecord is one planted missed-information record.
type MissedRecord struct {
	Info     sensitive.Info
	Retained bool
}

// InconsistencyPlant is one planted app/lib conflict.
type InconsistencyPlant struct {
	LibName  string
	Category verbs.Category
	Resource string
	// Verb is the negative sentence's verb; "" selects a category verb.
	// A non-category verb makes the plant a false negative.
	Verb string
	// FN marks plants the detector is expected to miss.
	FN bool
}

// Disclose reports whether the plant belongs to the Sents^disclose
// group of Table IV.
func (p InconsistencyPlant) Disclose() bool { return p.Category == verbs.Disclose }

// AppPlan describes everything planted into one app.
type AppPlan struct {
	Index int
	Pkg   string

	// CoveredInfos are collected by code and covered by the policy.
	CoveredInfos []sensitive.Info
	// Missed are collected (and possibly retained) by code but absent
	// from the policy.
	Missed []MissedRecord
	// DescPerms are Table III permissions implied by the description
	// while the policy omits their information.
	DescPerms []string
	// ColonFP plants the §V-C colon-extraction false positive.
	ColonFP bool
	// ZohoFP plants the §V-D context false positive.
	ZohoFP bool
	// IncorrectDesc plants the birthdaylist-style contradiction
	// (negative collect sentence + contacts description + contacts
	// code).
	IncorrectDesc bool
	// IncorrectRetain plants the easyxapp/hko-style contradiction
	// (negative retain sentence + code leaking the info to the log).
	IncorrectRetain *sensitive.Info
	// Inconsistencies are the planted lib conflicts.
	Inconsistencies []InconsistencyPlant
	// ESAFP plants an over-match false positive in the given category
	// group: a vague "that information" denial colliding with the libs'
	// "personal information".
	ESAFP verbs.Category
	// DisclaimerSuppressed plants a disclaimer plus a conflict that the
	// disclaimer rule must suppress.
	DisclaimerSuppressed bool
	// Libs are the bundled third-party library names.
	Libs []string
	// Packed marks apps generated in packed form.
	Packed bool
	// CallbackReached moves the last missed-record access into a
	// Thread.run callback, so only EdgeMiner's implicit edges make it
	// reachable.
	CallbackReached bool
	// DeadLocationCode adds an unreachable method reading location:
	// invisible under reachability analysis, a false positive without
	// it (the reachability ablation).
	DeadLocationCode bool
	// PolicyChurn appends that many inert revision-log sentences to the
	// policy: the text changes, the disclosures do not. Used by the
	// versioned-corpus generator; zero (the default) adds nothing.
	PolicyChurn int
	// DescChurn is the description-side counterpart of PolicyChurn.
	DescChurn int
}

// GroundTruth is the label set for one app.
type GroundTruth struct {
	Plan *AppPlan

	IncompleteDesc bool // truly incomplete, description evidence
	IncompleteCode bool // truly incomplete, code evidence
	Incorrect      bool
	InconsistCUR   bool // truly inconsistent, collect/use/retain group
	InconsistDisc  bool // truly inconsistent, disclose group
}

// Problem reports whether the app truly has at least one problem.
func (g *GroundTruth) Problem() bool {
	return g.IncompleteDesc || g.IncompleteCode || g.Incorrect ||
		g.InconsistCUR || g.InconsistDisc
}

// GeneratedApp pairs an app bundle with its labels.
type GeneratedApp struct {
	App   *core.App
	Truth GroundTruth
}

// Dataset is the full corpus.
type Dataset struct {
	Apps []GeneratedApp
	// LibPolicies is the shared library policy store.
	LibPolicies map[string]string
}

// Generate builds the corpus.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumApps < MinApps {
		return nil, fmt.Errorf("synth: NumApps %d below minimum %d", cfg.NumApps, MinApps)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plans, err := buildPlans(cfg, rng)
	if err != nil {
		return nil, err
	}
	libPolicies := GenerateLibPolicies()
	ds := &Dataset{LibPolicies: libPolicies, Apps: make([]GeneratedApp, 0, len(plans))}
	for _, plan := range plans {
		app, err := buildApp(plan, rng, libPolicies)
		if err != nil {
			return nil, fmt.Errorf("synth: app %d (%s): %w", plan.Index, plan.Pkg, err)
		}
		ds.Apps = append(ds.Apps, GeneratedApp{App: app, Truth: truthFor(plan)})
	}
	return ds, nil
}

// truthFor derives the labels from a plan.
func truthFor(plan *AppPlan) GroundTruth {
	g := GroundTruth{Plan: plan}
	g.IncompleteDesc = len(plan.DescPerms) > 0
	g.IncompleteCode = len(plan.Missed) > 0
	g.Incorrect = plan.IncorrectDesc || plan.IncorrectRetain != nil
	for _, inc := range plan.Inconsistencies {
		if inc.Disclose() {
			g.InconsistDisc = true
		} else {
			g.InconsistCUR = true
		}
	}
	return g
}

// buildPlans lays out the corpus according to the quota constants.
func buildPlans(cfg Config, rng *rand.Rand) ([]*AppPlan, error) {
	plans := make([]*AppPlan, cfg.NumApps)
	for i := range plans {
		plans[i] = &AppPlan{Index: i, Pkg: pkgName(i, rng)}
	}

	if err := assignMissedRecords(plans); err != nil {
		return nil, err
	}
	assignIncorrect(plans)
	if err := assignDescIncomplete(plans); err != nil {
		return nil, err
	}
	assignColonAndZoho(plans)
	if err := assignInconsistencies(plans); err != nil {
		return nil, err
	}
	assignCoveredAndLibs(plans, rng)
	return plans, nil
}

// assignMissedRecords deals the 234 Fig. 13 records onto the 180
// code-incomplete apps: four special apps for the incorrect plants get
// fixed records, 54 apps get two records, the rest one.
func assignMissedRecords(plans []*AppPlan) error {
	var queue []MissedRecord
	for _, e := range fig13Records {
		for i := 0; i < e.Total; i++ {
			queue = append(queue, MissedRecord{Info: e.Info, Retained: i < e.Retained})
		}
	}
	take := func(info sensitive.Info, retained bool) (MissedRecord, error) {
		for i, r := range queue {
			if r.Info == info && r.Retained == retained {
				queue = append(queue[:i], queue[i+1:]...)
				return r, nil
			}
		}
		return MissedRecord{}, fmt.Errorf("no %s record (retained=%v) left", info, retained)
	}
	// Special apps 0..3 back the incorrect-policy case studies.
	for i, want := range []struct {
		info     sensitive.Info
		retained bool
	}{
		{sensitive.InfoContact, false}, // birthdaylist-style
		{sensitive.InfoContact, false},
		{sensitive.InfoContact, true},  // easyxapp-style
		{sensitive.InfoLocation, true}, // hko-style
	} {
		r, err := take(want.info, want.retained)
		if err != nil {
			return err
		}
		plans[i].Missed = []MissedRecord{r}
	}
	// Interleave the remaining queue so identical infos spread out and
	// two-record apps get distinct infos.
	byInfo := map[sensitive.Info][]MissedRecord{}
	var order []sensitive.Info
	for _, r := range queue {
		if len(byInfo[r.Info]) == 0 {
			order = append(order, r.Info)
		}
		byInfo[r.Info] = append(byInfo[r.Info], r)
	}
	var interleaved []MissedRecord
	for len(interleaved) < len(queue) {
		for _, info := range order {
			if rs := byInfo[info]; len(rs) > 0 {
				interleaved = append(interleaved, rs[0])
				byInfo[info] = rs[1:]
			}
		}
	}
	pos := 0
	for i := 4; i < codeIncompleteCount; i++ {
		n := 1
		if i < 4+54 {
			n = 2
		}
		for k := 0; k < n; k++ {
			plans[i].Missed = append(plans[i].Missed, interleaved[pos])
			pos++
		}
		if n == 2 && plans[i].Missed[0].Info == plans[i].Missed[1].Info {
			return fmt.Errorf("app %d got duplicate missed info %s", i, plans[i].Missed[0].Info)
		}
	}
	if pos != len(interleaved) {
		return fmt.Errorf("record assignment mismatch: %d of %d placed", pos, len(interleaved))
	}
	return nil
}

// assignIncorrect marks apps 0..3 with the incorrect-policy plants.
func assignIncorrect(plans []*AppPlan) {
	plans[0].IncorrectDesc = true
	plans[1].IncorrectDesc = true
	contact := sensitive.InfoContact
	location := sensitive.InfoLocation
	plans[2].IncorrectRetain = &contact
	plans[3].IncorrectRetain = &location
}

// assignDescIncomplete places the Table III permissions: overlap apps
// inside the code pool (matched to their missed info) and fresh apps
// after the zoho block.
func assignDescIncomplete(plans []*AppPlan) error {
	remaining := map[string]int{}
	for perm, n := range tableIIIOverlap {
		remaining[perm] = n
	}
	// The two incorrect-desc apps are READ_CONTACTS overlap apps.
	for i := 0; i < 2; i++ {
		plans[i].DescPerms = []string{sensitive.PermReadContacts}
		remaining[sensitive.PermReadContacts]--
	}
	for i := 4; i < codeIncompleteCount; i++ {
		if len(plans[i].DescPerms) > 0 {
			continue
		}
		for _, rec := range plans[i].Missed {
			perms, ok := permForInfo[rec.Info]
			if !ok {
				continue
			}
			placed := false
			for _, perm := range perms {
				if remaining[perm] > 0 {
					plans[i].DescPerms = []string{perm}
					remaining[perm]--
					placed = true
					break
				}
			}
			if placed {
				break
			}
		}
	}
	for perm, n := range remaining {
		if n > 0 {
			return fmt.Errorf("could not place %d overlap apps for %s", n, perm)
		}
	}
	// Fresh desc-incomplete apps.
	var freshPerms []string
	for _, perm := range []string{
		sensitive.PermFineLocation, sensitive.PermCoarseLocation,
		sensitive.PermReadContacts, sensitive.PermGetAccounts,
		sensitive.PermReadCalendar, sensitive.PermCamera,
		sensitive.PermWriteContacts,
	} {
		for i := 0; i < tableIIIFresh[perm]; i++ {
			freshPerms = append(freshPerms, perm)
		}
	}
	// One fresh app doubles up CAMERA + GET_ACCOUNTS: pull one of each
	// off the list for the first fresh slot.
	idx := freshDescStart
	plans[idx].DescPerms = []string{sensitive.PermCamera, sensitive.PermGetAccounts}
	freshPerms = removeOne(freshPerms, sensitive.PermCamera)
	freshPerms = removeOne(freshPerms, sensitive.PermGetAccounts)
	idx++
	for _, perm := range freshPerms {
		if idx >= freshDescStart+freshDescCount {
			return fmt.Errorf("fresh desc-incomplete overflow")
		}
		plans[idx].DescPerms = []string{perm}
		idx++
	}
	if idx != freshDescStart+freshDescCount {
		return fmt.Errorf("fresh desc-incomplete underflow: stopped at %d", idx)
	}
	return nil
}

func removeOne(ss []string, v string) []string {
	for i, s := range ss {
		if s == v {
			return append(ss[:i:i], ss[i+1:]...)
		}
	}
	return ss
}

// assignColonAndZoho marks the false-positive apps.
func assignColonAndZoho(plans []*AppPlan) {
	for i := colonFPStart; i < colonFPStart+colonFPCount; i++ {
		plans[i].ColonFP = true
	}
	for i := zohoFPStart; i < zohoFPStart+zohoFPCount; i++ {
		plans[i].ZohoFP = true
	}
}

// assignInconsistencies places Table IV's plants.
func assignInconsistencies(plans []*AppPlan) error {
	// curMenu rotates the CUR-group conflicts (all detectable).
	curMenu := []InconsistencyPlant{
		{Category: verbs.Collect, Resource: "location information"},
		{Category: verbs.Collect, Resource: "device identifier"},
		{Category: verbs.Collect, Resource: "contact information"},
		{Category: verbs.Use, Resource: "advertising identifier"},
		{Category: verbs.Retain, Resource: "device identifier"},
	}
	discPlant := InconsistencyPlant{Category: verbs.Disclose, Resource: "device identifier"}
	discAlt := InconsistencyPlant{Category: verbs.Disclose, Resource: "personal information"}

	withLib := func(p InconsistencyPlant, n int) InconsistencyPlant {
		p.LibName = libWithBehavior(p.Category, p.Resource, n).Name
		return p
	}

	// 15 overlap apps inside the code pool: device-identifier conflicts
	// (disjoint from every code-pool app's planted infos, so no
	// spurious incorrect findings arise).
	overlapCount := 0
	for i := 58; i < codeIncompleteCount && overlapCount < 15; i++ {
		conflictFree := true
		for _, rec := range plans[i].Missed {
			if rec.Info == sensitive.InfoDeviceID {
				conflictFree = false
			}
		}
		if !conflictFree {
			continue
		}
		if overlapCount < 8 {
			plans[i].Inconsistencies = []InconsistencyPlant{
				withLib(InconsistencyPlant{Category: verbs.Collect, Resource: "device identifier"}, overlapCount),
			}
		} else {
			plans[i].Inconsistencies = []InconsistencyPlant{withLib(discPlant, overlapCount)}
		}
		overlapCount++
	}
	if overlapCount != 15 {
		return fmt.Errorf("placed %d of 15 inconsistency overlap apps", overlapCount)
	}
	// Fresh CUR-only apps.
	for k := 0; k < curOnlyCount; k++ {
		p := curMenu[k%len(curMenu)]
		plans[curOnlyStart+k].Inconsistencies = []InconsistencyPlant{withLib(p, k)}
	}
	// Fresh disclose-only apps.
	for k := 0; k < discOnlyCount; k++ {
		p := discPlant
		if k%2 == 1 {
			p = discAlt
		}
		plans[discOnlyStart+k].Inconsistencies = []InconsistencyPlant{withLib(p, k)}
	}
	// Both-group apps.
	for k := 0; k < bothGroupCount; k++ {
		cur := curMenu[k%len(curMenu)]
		plans[bothGroupStart+k].Inconsistencies = []InconsistencyPlant{
			withLib(cur, k+7), withLib(discPlant, k+3),
		}
	}
	// ESA over-match FPs.
	for k := 0; k < curFPCount; k++ {
		plans[curFPStart+k].ESAFP = verbs.Collect
		plans[curFPStart+k].Libs = []string{libWithBehavior(verbs.Collect, "personal information", k).Name}
	}
	for k := 0; k < discFPCount; k++ {
		plans[discFPStart+k].ESAFP = verbs.Disclose
		plans[discFPStart+k].Libs = []string{libWithBehavior(verbs.Disclose, "personal information", k).Name}
	}
	// Verb-gap FNs: a real conflict denied with a verb outside the
	// category lists ("check", "display").
	for k := 0; k < curFNCount; k++ {
		plans[curFNStart+k].Inconsistencies = []InconsistencyPlant{
			withLib(InconsistencyPlant{
				Category: verbs.Collect, Resource: "location information",
				Verb: "check", FN: true,
			}, k),
		}
	}
	for k := 0; k < discFNCount; k++ {
		plans[discFNStart+k].Inconsistencies = []InconsistencyPlant{
			withLib(InconsistencyPlant{
				Category: verbs.Disclose, Resource: "personal information",
				Verb: "display", FN: true,
			}, k),
		}
	}
	// Disclaimer-suppressed conflicts: planted like a TP plus a
	// disclaimer; ground truth does NOT mark them inconsistent because
	// the policy's disclaimer defers to the lib policies.
	for k := 0; k < disclaimerCount; k++ {
		p := withLib(InconsistencyPlant{Category: verbs.Collect, Resource: "location information"}, k)
		plans[disclaimerStart+k].DisclaimerSuppressed = true
		plans[disclaimerStart+k].Libs = []string{p.LibName}
	}
	return nil
}

// assignCoveredAndLibs gives every app a base behaviour profile, bundles
// libraries up to the 879-app quota, and marks a few packed apps.
func assignCoveredAndLibs(plans []*AppPlan, rng *rand.Rand) {
	coverPool := []sensitive.Info{
		sensitive.InfoLocation, sensitive.InfoDeviceID, sensitive.InfoEmail,
		sensitive.InfoAccount, sensitive.InfoAppList, sensitive.InfoCookie,
		sensitive.InfoIPAddress, sensitive.InfoCamera,
	}
	// Base covered behaviours: 1–3 infos collected by code and covered
	// by the policy, never colliding with planted misses or conflicts.
	for _, plan := range plans {
		banned := map[sensitive.Info]bool{}
		for _, rec := range plan.Missed {
			banned[rec.Info] = true
		}
		for _, perm := range plan.DescPerms {
			for _, info := range sensitive.InfoForPermission(perm) {
				banned[info] = true
			}
		}
		for _, inc := range plan.Inconsistencies {
			// Keep code disjoint from conflict resources so no
			// incorrect finding arises (see assignInconsistencies).
			// "advertising identifier" ESA-matches "device identifier",
			// so device-id code would trigger a spurious incorrect
			// finding on those apps too.
			banned[sensitive.InfoDeviceID] = banned[sensitive.InfoDeviceID] ||
				inc.Resource == "device identifier" ||
				inc.Resource == "advertising identifier"
			banned[sensitive.InfoLocation] = banned[sensitive.InfoLocation] ||
				inc.Resource == "location information"
			banned[sensitive.InfoContact] = banned[sensitive.InfoContact] ||
				inc.Resource == "contact information"
		}
		if plan.ESAFP != verbs.None || plan.DisclaimerSuppressed {
			banned[sensitive.InfoLocation] = true
			banned[sensitive.InfoDeviceID] = true
		}
		if plan.ZohoFP {
			// Zoho apps collect account info, covered by the positive
			// half of the pair plus an explicit coverage sentence.
			plan.CoveredInfos = []sensitive.Info{sensitive.InfoAccount}
			continue
		}
		if plan.ColonFP {
			// Colon apps collect the device id; its coverage lives in
			// the colon sentence the extractor cannot parse.
			plan.CoveredInfos = nil
			continue
		}
		n := 1 + rng.Intn(3)
		for len(plan.CoveredInfos) < n {
			info := coverPool[rng.Intn(len(coverPool))]
			if banned[info] || containsInfo(plan.CoveredInfos, info) {
				continue
			}
			plan.CoveredInfos = append(plan.CoveredInfos, info)
		}
	}
	// Libraries: mandatory lib assignments already sit in plan.Libs or
	// in the inconsistency plants; top up to the 879 quota.
	withLibs := 0
	for _, plan := range plans {
		for _, inc := range plan.Inconsistencies {
			if !containsStr(plan.Libs, inc.LibName) {
				plan.Libs = append(plan.Libs, inc.LibName)
			}
		}
		if len(plan.Libs) > 0 {
			withLibs++
		}
	}
	// Scale the 879/1197 lib ratio to the configured corpus size.
	target := len(plans) * appsWithLibs / PaperNumApps
	if len(plans) >= PaperNumApps {
		target = appsWithLibs
	}
	libNames := allLibNames()
	for _, plan := range plans {
		if withLibs >= target {
			break
		}
		if len(plan.Libs) > 0 {
			continue
		}
		// Apps carrying negative-sentence plants must not receive
		// random libraries: a lib whose policy declares the denied
		// behaviour would add an unplanned inconsistency.
		if plan.IncorrectDesc || plan.IncorrectRetain != nil || plan.ZohoFP {
			continue
		}
		n := 1 + rng.Intn(3)
		for len(plan.Libs) < n {
			name := libNames[rng.Intn(len(libNames))]
			if !containsStr(plan.Libs, name) {
				plan.Libs = append(plan.Libs, name)
			}
		}
		withLibs++
	}
	// A handful of packed apps exercise the unpacking path.
	for i := 0; i < len(plans); i += 97 {
		plans[i].Packed = true
	}
	// Twelve code-incomplete apps access their (last) missed info only
	// from a Thread.run callback, exercising EdgeMiner's implicit
	// edges.
	for i := 100; i < 112; i++ {
		plans[i].CallbackReached = true
	}
	// Forty filler apps carry an unreachable location read: invisible
	// under reachability analysis, false positives without it.
	planted := 0
	for i := fillerStart; i < len(plans) && planted < 40; i++ {
		plan := plans[i]
		if len(plan.Missed) > 0 || len(plan.DescPerms) > 0 || containsInfo(plan.CoveredInfos, sensitive.InfoLocation) {
			continue
		}
		plan.DeadLocationCode = true
		planted++
	}
}

func containsInfo(infos []sensitive.Info, v sensitive.Info) bool {
	for _, i := range infos {
		if i == v {
			return true
		}
	}
	return false
}

func containsStr(ss []string, v string) bool {
	for _, s := range ss {
		if s == v {
			return true
		}
	}
	return false
}

// pkgName derives a package name from the app index.
func pkgName(i int, rng *rand.Rand) string {
	vendors := []string{"nimbus", "brightpath", "bluefir", "quarzo", "helios",
		"pixelwood", "softcreek", "dataspark", "moonlit", "coralbay"}
	kinds := []string{"weather", "tasks", "notes", "photo", "runner", "chat",
		"scanner", "music", "news", "puzzle", "fitness", "travel"}
	v := vendors[i%len(vendors)]
	k := kinds[(i/len(vendors))%len(kinds)]
	return fmt.Sprintf("com.%s.%s%d", v, k, i)
}
