package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/dex"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/verbs"
)

// coverPhrase picks the policy phrase used to cover an info.
func coverPhrase(info sensitive.Info, rng *rand.Rand) string {
	phrases := specFor(info).PolicyPhrases
	return phrases[rng.Intn(len(phrases))]
}

// buildApp materializes one planned app: policy, description, manifest,
// bytecode, bundled libs.
func buildApp(plan *AppPlan, rng *rand.Rand, libPolicies map[string]string) (*core.App, error) {
	policyHTML := buildPolicyHTML(plan, rng)
	description := buildDescription(plan, rng)
	a, err := buildAPK(plan)
	if err != nil {
		return nil, err
	}
	// Only pass policies for libs this app actually bundles, as the
	// pipeline would fetch them per detected lib.
	libPol := map[string]string{}
	for _, name := range plan.Libs {
		if p, ok := libPolicies[name]; ok {
			libPol[name] = p
		}
	}
	return &core.App{
		Name:        plan.Pkg,
		PolicyHTML:  policyHTML,
		Description: description,
		APK:         a,
		LibPolicies: libPol,
	}, nil
}

// buildPolicyHTML renders the plan's privacy policy. The rng draw order
// is part of the corpus contract (goldens and conformance tests pin the
// generated text), so the sentence sequence below must not be reordered.
// The churn sentences draw nothing from rng — a churn-only plan delta
// leaves every other sentence byte-identical.
func buildPolicyHTML(plan *AppPlan, rng *rand.Rand) string {
	pb := NewPolicyBuilder(rng)
	pb.Boilerplate(2)
	for _, info := range plan.CoveredInfos {
		cat := verbs.Categories()[rng.Intn(2)] // collect or use
		pb.Cover(cat, coverPhrase(info, rng))
	}
	if plan.ColonFP {
		pb.ColonFP()
	}
	if plan.ZohoFP {
		pb.ZohoPair()
	}
	if plan.IncorrectDesc {
		pb.Negative(verbs.Collect, "contacts")
	}
	if plan.IncorrectRetain != nil {
		switch *plan.IncorrectRetain {
		case sensitive.InfoContact:
			pb.Add("We will not store your real phone number, name and contacts.")
		case sensitive.InfoLocation:
			pb.Add("Your location information will not be stored by us.")
		default:
			pb.Negative(verbs.Retain, coverPhrase(*plan.IncorrectRetain, rng))
		}
	}
	for _, inc := range plan.Inconsistencies {
		if inc.Verb != "" {
			pb.NegativeVerb(inc.Verb, inc.Resource)
		} else {
			pb.Negative(inc.Category, inc.Resource)
		}
	}
	switch plan.ESAFP {
	case verbs.Collect:
		pb.Add("We will not collect that information.")
	case verbs.Disclose:
		pb.Add("We do not transmit that information over the internet.")
	}
	if plan.DisclaimerSuppressed {
		pb.Negative(verbs.Collect, "location information")
		pb.Disclaimer()
	}
	pb.Boilerplate(1 + rng.Intn(2))
	for i := 0; i < plan.PolicyChurn; i++ {
		pb.Add(policyChurnSentences[i%len(policyChurnSentences)])
	}
	return pb.HTML()
}

// policyChurnSentences are inert revision-log style sentences appended by
// the versioned-corpus generator to model a policy edit that changes the
// text without changing any disclosure. None of them mention a sensitive
// resource or a data-practice verb, so the analyzed statements are
// untouched.
var policyChurnSentences = []string{
	"This document was last revised to clarify its wording.",
	"Section headings were renumbered in this revision.",
	"Our legal team reviews this document on a regular schedule.",
	"Formatting and typography were improved in this edition.",
	"A table of contents will be added in a future revision.",
	"This revision corrects several typographical mistakes.",
}

// descChurnSentences play the same role for Play-store descriptions: a
// release-notes edit that implies no permission.
var descChurnSentences = []string{
	"This release includes minor bug fixes and polish.",
	"Performance was improved across older devices.",
	"The changelog is available on our website.",
	"Thanks for all the feedback on the previous release.",
	"Small translation updates are included in this version.",
	"Startup time was reduced in this update.",
}

// buildDescription assembles the Play Store description.
func buildDescription(plan *AppPlan, rng *rand.Rand) string {
	var sents []string
	n := 2 + rng.Intn(2)
	for i := 0; i < n; i++ {
		sents = append(sents, neutralDescriptions[rng.Intn(len(neutralDescriptions))])
	}
	for _, perm := range plan.DescPerms {
		if trigger, ok := descTriggers[perm]; ok {
			sents = append(sents, trigger)
		}
	}
	for i := 0; i < plan.DescChurn; i++ {
		sents = append(sents, descChurnSentences[i%len(descChurnSentences)])
	}
	return strings.Join(sents, "\n")
}

// buildAPK assembles the manifest and bytecode.
func buildAPK(plan *AppPlan) (*apk.APK, error) {
	// Everything the code touches, in order.
	type codePlant struct {
		info     sensitive.Info
		retained bool
	}
	var plants []codePlant
	for _, info := range plan.CoveredInfos {
		plants = append(plants, codePlant{info: info})
	}
	for _, rec := range plan.Missed {
		plants = append(plants, codePlant{info: rec.Info, retained: rec.Retained})
	}
	if plan.ColonFP {
		plants = append(plants, codePlant{info: sensitive.InfoDeviceID})
	}

	m := &apk.Manifest{Package: plan.Pkg}
	permSeen := map[string]bool{}
	addPerm := func(p string) {
		if p != "" && !permSeen[p] {
			permSeen[p] = true
			m.Permissions = append(m.Permissions, apk.Permission{Name: p})
		}
	}
	for _, pl := range plants {
		addPerm(specFor(pl.info).Permission)
	}
	for _, perm := range plan.DescPerms {
		addPerm(perm)
	}
	if plan.DeadLocationCode {
		addPerm(specFor(sensitive.InfoLocation).Permission)
	}
	mainClass := plan.Pkg + ".MainActivity"
	m.Application.Activities = []apk.Component{{Name: mainClass, Exported: true}}

	// CallbackReached apps move their last plant into a Thread.run
	// callback, reachable only through EdgeMiner's implicit edge.
	var callbackPlant *codePlant
	if plan.CallbackReached && len(plants) > 0 {
		callbackPlant = &plants[len(plants)-1]
		plants = plants[:len(plants)-1]
	}

	var asm strings.Builder
	fmt.Fprintf(&asm, ".class %s; extends Landroid/app/Activity;\n", slashed(mainClass))
	regs := 4 + 4*len(plants) + 8
	fmt.Fprintf(&asm, ".method onCreate(Landroid/os/Bundle;)V regs=%d\n", regs)
	reg := 4
	for _, pl := range plants {
		for _, line := range specFor(pl.info).Code(reg) {
			asm.WriteString("    " + line + "\n")
		}
		if pl.retained {
			fmt.Fprintf(&asm, "    invoke-static {v1, v%d}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I\n", reg)
		}
		reg += 4
	}
	workerClass := slashed(plan.Pkg + ".Worker")
	if callbackPlant != nil {
		fmt.Fprintf(&asm, "    new-instance v%d, %s;\n", reg, workerClass)
		fmt.Fprintf(&asm, "    invoke-virtual {v%d}, %s;->start()V\n", reg, workerClass)
	}
	asm.WriteString("    return-void\n.end method\n")
	if plan.DeadLocationCode {
		// A method no entry point reaches.
		asm.WriteString(".method unusedHelper()V regs=8\n")
		for _, line := range specFor(sensitive.InfoLocation).Code(4) {
			asm.WriteString("    " + line + "\n")
		}
		asm.WriteString("    return-void\n.end method\n")
	}
	asm.WriteString(".end class\n")
	if callbackPlant != nil {
		fmt.Fprintf(&asm, ".class %s; extends Ljava/lang/Thread;\n", workerClass)
		asm.WriteString(".method run()V regs=12\n")
		for _, line := range specFor(callbackPlant.info).Code(4) {
			asm.WriteString("    " + line + "\n")
		}
		if callbackPlant.retained {
			asm.WriteString("    invoke-static {v1, v4}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I\n")
		}
		asm.WriteString("    return-void\n.end method\n.end class\n")
	}

	for _, name := range plan.Libs {
		lib, ok := libdetect.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown lib %q", name)
		}
		fmt.Fprintf(&asm, ".class L%s/Sdk;\n.method init()V regs=4\n    return-void\n.end method\n.end class\n",
			strings.ReplaceAll(lib.Prefix, ".", "/"))
	}

	d, err := dex.Assemble(asm.String())
	if err != nil {
		return nil, fmt.Errorf("assemble: %w\n%s", err, asm.String())
	}
	a := apk.New(m, d)
	a.Packed = plan.Packed
	return a, nil
}

func slashed(cls string) string {
	return "L" + strings.ReplaceAll(cls, ".", "/")
}
