package synth

import (
	"testing"

	"ppchecker/internal/desc"
	"ppchecker/internal/esa"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/policy"
	"ppchecker/internal/sensitive"
)

// TestPolicyPhrasesMatchInfo: every coverage phrase must ESA-match its
// info name, or coverage would silently fail and pollute the quotas.
func TestPolicyPhrasesMatchInfo(t *testing.T) {
	x := esa.Default()
	for _, spec := range infoSpecs {
		for _, phrase := range spec.PolicyPhrases {
			if sim := x.Similarity(string(spec.Info), phrase); sim < esa.DefaultThreshold {
				t.Errorf("phrase %q does not match info %q (%.3f)", phrase, spec.Info, sim)
			}
		}
	}
}

// TestDescTriggersArePrecise: each trigger sentence must imply exactly
// its own permission — cross-triggering would corrupt Table III.
func TestDescTriggersArePrecise(t *testing.T) {
	a := desc.NewAnalyzer()
	for perm, sentence := range descTriggers {
		res := a.Analyze(sentence)
		found := false
		for _, p := range res.Permissions {
			if p == perm {
				found = true
				continue
			}
			// The two location permissions may not cross-trigger, nor
			// may read/write contacts.
			if conflictingPerm(perm, p) {
				t.Errorf("trigger for %s also implies %s: %q", perm, p, sentence)
			}
		}
		if !found {
			t.Errorf("trigger for %s does not imply it: %q (got %v)", perm, sentence, res.Permissions)
		}
	}
}

func conflictingPerm(want, got string) bool {
	pairs := map[string]string{
		sensitive.PermFineLocation:   sensitive.PermCoarseLocation,
		sensitive.PermCoarseLocation: sensitive.PermFineLocation,
		sensitive.PermReadContacts:   sensitive.PermWriteContacts,
		sensitive.PermWriteContacts:  sensitive.PermReadContacts,
	}
	return pairs[want] == got
}

// TestNeutralDescriptionsAreNeutral: the filler sentences must imply no
// permissions.
func TestNeutralDescriptionsAreNeutral(t *testing.T) {
	a := desc.NewAnalyzer()
	for _, s := range neutralDescriptions {
		if res := a.Analyze(s); len(res.Permissions) != 0 {
			t.Errorf("neutral description %q implies %v (evidence %v)", s, res.Permissions, res.Evidence)
		}
	}
}

// TestLibPoliciesDeclareTheirMenus: every generated lib policy must
// yield positive statements matching every menu behaviour, or
// inconsistency plants could not fire.
func TestLibPoliciesDeclareTheirMenus(t *testing.T) {
	pols := GenerateLibPolicies()
	if len(pols) != 81 {
		t.Fatalf("lib policies = %d, want 81", len(pols))
	}
	analyzer := policy.NewAnalyzer()
	x := esa.Default()
	// Spot-check three libs, one per category.
	for _, name := range []string{"AdMob", "Facebook", "Unity3d"} {
		analysis := analyzer.AnalyzeHTML(pols[name])
		lib, ok := libdetect.ByName(name)
		if !ok {
			t.Fatalf("lib %q not in registry", name)
		}
		for _, beh := range libBehaviors(lib) {
			set := analysis.PositiveSet(beh.Cat)
			matched := false
			for _, res := range set {
				if x.Similarity(res, beh.Resource) >= esa.DefaultThreshold {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s policy does not declare %s %q (set %v)", name, beh.Cat, beh.Resource, set)
			}
		}
	}
}

// TestGenerateSmall checks generation integrity at reduced scale.
func TestGenerateSmall(t *testing.T) {
	ds, err := Generate(Config{Seed: 7, NumApps: MinApps})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Apps) != MinApps {
		t.Fatalf("apps = %d", len(ds.Apps))
	}
	counts := quotaCounts(ds)
	if counts.incompleteCodeTrue != 180 {
		t.Errorf("code-incomplete true = %d, want 180", counts.incompleteCodeTrue)
	}
	if counts.incompleteDescTrue != 64 {
		t.Errorf("desc-incomplete true = %d, want 64", counts.incompleteDescTrue)
	}
	if counts.incorrectTrue != 4 {
		t.Errorf("incorrect true = %d, want 4", counts.incorrectTrue)
	}
	if counts.inconsistCURTrue != 45 { // 41 detectable + 4 FN plants
		t.Errorf("CUR inconsistent true = %d, want 45", counts.inconsistCURTrue)
	}
	if counts.inconsistDiscTrue != 42 { // 39 detectable + 3 FN plants
		t.Errorf("disclose inconsistent true = %d, want 42", counts.inconsistDiscTrue)
	}
	if counts.missedRecords != 234 {
		t.Errorf("missed records = %d, want 234", counts.missedRecords)
	}
	if counts.retainedRecords != 32 {
		t.Errorf("retained records = %d, want 32", counts.retainedRecords)
	}
}

// TestGenerateDeterministic: the same config yields the same corpus.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 42, NumApps: MinApps})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 42, NumApps: MinApps})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Apps {
		if a.Apps[i].App.PolicyHTML != b.Apps[i].App.PolicyHTML ||
			a.Apps[i].App.Description != b.Apps[i].App.Description {
			t.Fatalf("app %d differs between runs", i)
		}
	}
}

// TestGenerateRejectsTinyCorpus: quotas cannot fit under MinApps.
func TestGenerateRejectsTinyCorpus(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, NumApps: 50}); err == nil {
		t.Fatal("tiny corpus accepted")
	}
}

type quotas struct {
	incompleteDescTrue int
	incompleteCodeTrue int
	incorrectTrue      int
	inconsistCURTrue   int
	inconsistDiscTrue  int
	missedRecords      int
	retainedRecords    int
}

func quotaCounts(ds *Dataset) quotas {
	var q quotas
	for _, ga := range ds.Apps {
		tr := ga.Truth
		if tr.IncompleteDesc {
			q.incompleteDescTrue++
		}
		if tr.IncompleteCode {
			q.incompleteCodeTrue++
		}
		if tr.Incorrect {
			q.incorrectTrue++
		}
		if tr.InconsistCUR {
			q.inconsistCURTrue++
		}
		if tr.InconsistDisc {
			q.inconsistDiscTrue++
		}
		for _, rec := range tr.Plan.Missed {
			q.missedRecords++
			if rec.Retained {
				q.retainedRecords++
			}
		}
	}
	return q
}
