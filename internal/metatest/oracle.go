package metatest

import (
	"fmt"
	"math"
	"sort"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
)

// Divergence is one structural difference between the original and the
// transformed report.
type Divergence struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (d Divergence) String() string { return d.Kind + ": " + d.Detail }

// DiffReports diffs two reports structurally under the invariant:
// degradation surface (Partial flag, failed stages), the three finding
// lists, and the document-level disclaimer flag. InvIdentical compares
// findings as ordered sequences; InvUpToSentence compares them as
// multisets with cited-sentence text masked.
func DiffReports(orig, tr *core.Report, inv Invariant) []Divergence {
	var divs []Divergence
	if orig.Partial != tr.Partial {
		divs = append(divs, Divergence{"degraded",
			fmt.Sprintf("partial: %v vs %v (stages %v vs %v)",
				orig.Partial, tr.Partial, stageNames(orig), stageNames(tr))})
	} else if a, b := fmt.Sprint(stageNames(orig)), fmt.Sprint(stageNames(tr)); a != b {
		divs = append(divs, Divergence{"degraded", fmt.Sprintf("stages %s vs %s", a, b)})
	}
	if orig.Policy != nil && tr.Policy != nil && orig.Policy.Disclaimer != tr.Policy.Disclaimer {
		divs = append(divs, Divergence{"disclaimer",
			fmt.Sprintf("disclaimer flag %v vs %v", orig.Policy.Disclaimer, tr.Policy.Disclaimer)})
	}
	ok, tk := findingKeys(orig, inv), findingKeys(tr, inv)
	if inv == InvIdentical {
		for i := 0; i < len(ok) || i < len(tk); i++ {
			switch {
			case i >= len(ok):
				divs = append(divs, Divergence{"extra-finding", tk[i]})
			case i >= len(tk):
				divs = append(divs, Divergence{"missing-finding", ok[i]})
			case ok[i] != tk[i]:
				divs = append(divs, Divergence{"finding-order",
					fmt.Sprintf("position %d: %q vs %q", i, ok[i], tk[i])})
			}
		}
		return divs
	}
	counts := map[string]int{}
	for _, k := range ok {
		counts[k]++
	}
	for _, k := range tk {
		counts[k]--
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch n := counts[k]; {
		case n > 0:
			divs = append(divs, Divergence{"missing-finding", fmt.Sprintf("%s (x%d)", k, n)})
		case n < 0:
			divs = append(divs, Divergence{"extra-finding", fmt.Sprintf("%s (x%d)", k, -n)})
		}
	}
	return divs
}

func stageNames(r *core.Report) []string {
	names := make([]string, 0, len(r.Degraded))
	for _, e := range r.Degraded {
		names = append(names, string(e.Stage))
	}
	sort.Strings(names)
	return names
}

// findingKeys renders every finding as a comparable key. Under
// InvUpToSentence the cited sentence text is masked: a transform that
// rewrites or reorders sentences may change which equivalent sentence
// is cited, but never the finding itself.
func findingKeys(r *core.Report, inv Invariant) []string {
	keys := make([]string, 0, len(r.Incomplete)+len(r.Incorrect)+len(r.Inconsistent))
	for _, f := range r.Incomplete {
		keys = append(keys, fmt.Sprintf("incomplete|%v|%s|perms=%v|retained=%v|sources=%v",
			f.Via, f.Info, f.Permissions, f.Retained, f.Sources))
	}
	for _, f := range r.Incorrect {
		s := f.Sentence
		if inv >= InvUpToSentence {
			s = "*"
		}
		keys = append(keys, fmt.Sprintf("incorrect|%v|%s|%s|%s|sent=%q",
			f.Via, f.Info, f.Category, f.Evidence, s))
	}
	for _, f := range r.Inconsistent {
		s := f.AppSentence
		if inv >= InvUpToSentence {
			s = "*"
		}
		keys = append(keys, fmt.Sprintf("inconsistent|%s|%s|%s|lib=%q|sent=%q",
			f.Category, f.Resource, f.LibName, f.LibSentence, s))
	}
	return keys
}

// ESADifferential cross-checks the vectorized ESA path against the
// retained map-path reference over the given phrases: every
// interpretation must carry identical weights, and every pairwise
// cosine must agree within tol. Pairs are walked in order up to
// maxPairs so a big phrase set stays bounded.
func ESADifferential(x *esa.Index, phrases []string, maxPairs int, tol float64) []Divergence {
	var divs []Divergence
	maps := make([]esa.Vector, len(phrases))
	vecs := make([]*esa.ConceptVec, len(phrases))
	for i, ph := range phrases {
		maps[i] = x.Interpret(ph)
		vecs[i] = x.InterpretVec(ph)
		got := vecs[i].Map()
		if len(got) != len(maps[i]) {
			divs = append(divs, Divergence{"esa-weights",
				fmt.Sprintf("%q: %d concepts (vec) vs %d (map)", ph, len(got), len(maps[i]))})
			continue
		}
		for c, w := range maps[i] {
			if got[c] != w {
				divs = append(divs, Divergence{"esa-weights",
					fmt.Sprintf("%q concept %d: %g (vec) vs %g (map)", ph, c, got[c], w)})
				break
			}
		}
	}
	pairs := 0
	for i := 0; i < len(phrases) && pairs < maxPairs; i++ {
		for j := i + 1; j < len(phrases) && pairs < maxPairs; j++ {
			pairs++
			ref := esa.Cosine(maps[i], maps[j])
			vec := esa.CosineVec(vecs[i], vecs[j])
			if math.Abs(ref-vec) > tol {
				divs = append(divs, Divergence{"esa-cosine",
					fmt.Sprintf("%q vs %q: %.17g (vec) != %.17g (map)",
						phrases[i], phrases[j], vec, ref)})
			}
		}
	}
	return divs
}
