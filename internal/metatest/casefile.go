package metatest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Expectation values for a case file.
const (
	ExpectHold    = "hold"    // the invariant must hold (no divergences)
	ExpectDiverge = "diverge" // the chain must reproduce a divergence
)

// Case is a replayable (and committable) metamorphic test case: corpus
// coordinates, one app, a transform chain, and the expected outcome.
// Divergent cases are minimized repros promoted into
// testdata/metatest/; hold cases pin that long benign chains stay
// invariant.
type Case struct {
	Version    int    `json:"version"`
	Note       string `json:"note,omitempty"`
	CorpusSeed int64  `json:"corpus_seed"`
	NumApps    int    `json:"num_apps"`
	AppIndex   int    `json:"app_index"`
	Chain      []Step `json:"chain"`
	Expect     string `json:"expect"`

	// Path is where the case was loaded from (not serialized).
	Path string `json:"-"`
}

// CaseVersion is the current case-file schema version.
const CaseVersion = 1

// Validate checks the structural invariants of a case.
func (c *Case) Validate() error {
	if c.Version != CaseVersion {
		return fmt.Errorf("metatest: case version %d (want %d)", c.Version, CaseVersion)
	}
	if c.Expect != ExpectHold && c.Expect != ExpectDiverge {
		return fmt.Errorf("metatest: case expect %q (want %q or %q)", c.Expect, ExpectHold, ExpectDiverge)
	}
	if len(c.Chain) == 0 {
		return fmt.Errorf("metatest: case has an empty chain")
	}
	for _, s := range c.Chain {
		if _, ok := Lookup(s.Name); !ok {
			return fmt.Errorf("metatest: case uses unknown transform %q", s.Name)
		}
	}
	return nil
}

// LoadCase reads and validates one case file.
func LoadCase(path string) (*Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("metatest: %s: %w", path, err)
	}
	c.Path = path
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &c, nil
}

// LoadCases reads every *.json case in a directory, sorted by name.
func LoadCases(dir string) ([]*Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	cases := make([]*Case, 0, len(paths))
	for _, p := range paths {
		c, err := LoadCase(p)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// Write serializes the case as indented JSON.
func (c *Case) Write(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Run replays the case against its own corpus coordinates (harness
// instances are shared per corpus) and reports whether the outcome
// matches the expectation.
func (c *Case) Run() (*ChainResult, bool, error) {
	h, err := SharedHarness(c.CorpusSeed, c.NumApps)
	if err != nil {
		return nil, false, err
	}
	res, err := h.RunChain(c.AppIndex, c.Chain)
	if err != nil {
		return nil, false, err
	}
	want := c.Expect == ExpectDiverge
	return res, res.Diverged() == want, nil
}
