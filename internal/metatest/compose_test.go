package metatest

import (
	"context"
	"testing"
	"time"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/eval"
	"ppchecker/internal/synth"
)

// TestCorruptedThenTransformed: composing fault injection with the
// metamorphic transforms must never panic or hard-fail —
// corrupted-then-transformed (and transformed-then-corrupted) bundles
// degrade gracefully through eval.CheckApp, exactly like plain
// corrupted ones.
func TestCorruptedThenTransformed(t *testing.T) {
	h := testHarness(t)
	checker := core.NewChecker()
	opts := eval.AttemptOptions{Timeout: 30 * time.Second}
	appIdxs := []int{0, 7, 197}

	var policyFaults []synth.Fault
	for _, f := range synth.AllFaults() {
		if f.PolicyFault() {
			policyFaults = append(policyFaults, f)
		}
	}
	transforms := append(All(), Planted()...)

	runApp := func(t *testing.T, name, html string, base *core.App) eval.Outcome {
		t.Helper()
		app := *base
		app.PolicyHTML = html
		rep, outcome, _ := eval.CheckApp(context.Background(), checker, name,
			func(ctx context.Context, c *core.Checker) (*core.Report, error) {
				return c.CheckSafe(ctx, &app)
			}, opts)
		if rep == nil {
			t.Fatalf("%s: nil report", name)
		}
		if outcome == eval.OutcomeFailed || outcome == eval.OutcomeSkipped {
			t.Errorf("%s: outcome %v, want checked or degraded", name, outcome)
		}
		return outcome
	}

	for _, appIdx := range appIdxs {
		base := h.App(appIdx)
		for _, fault := range policyFaults {
			corruptor := synth.NewCorruptor(int64(appIdx)*100 + 1)
			corrupted, err := corruptor.CorruptPolicy(base.PolicyHTML, fault)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range transforms {
				// Corrupt, then transform: the transform sees damaged
				// HTML and must pass it through or rewrite it — never
				// panic — and the pipeline must still degrade, not die.
				steps := []Step{{Name: tr.Name, Seed: 31}}
				html, _, err := ApplyChain(corrupted, steps)
				if err != nil {
					t.Fatal(err)
				}
				runApp(t, string(fault)+"/then/"+tr.Name, html, base)

				// Transform, then corrupt.
				clean, _, err := ApplyChain(base.PolicyHTML, steps)
				if err != nil {
					t.Fatal(err)
				}
				recorrupted, err := synth.NewCorruptor(int64(appIdx)*100 + 2).CorruptPolicy(clean, fault)
				if err != nil {
					t.Fatal(err)
				}
				runApp(t, tr.Name+"/then/"+string(fault), recorrupted, base)
			}
		}
	}
}

// TestCorruptedAPKWithTransformedPolicy drives the APK-side faults
// alongside a transformed policy: static-analysis degradation and the
// metamorphic rewrites compose without losing either behaviour.
func TestCorruptedAPKWithTransformedPolicy(t *testing.T) {
	h := testHarness(t)
	checker := core.NewChecker()
	base := h.App(5)
	html, _, err := ApplyChain(base.PolicyHTML, []Step{
		{Name: "tag-churn", Seed: 3}, {Name: "verb-synonym", Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	app := *base
	app.PolicyHTML = html
	app.APK = &apk.APK{Manifest: base.APK.Manifest, Dex: synth.BombDex()}
	rep, outcome, _ := eval.CheckApp(context.Background(), checker, "bomb-dex",
		func(ctx context.Context, c *core.Checker) (*core.Report, error) {
			return c.CheckSafe(ctx, &app)
		}, eval.AttemptOptions{Timeout: 30 * time.Second})
	if outcome != eval.OutcomeDegraded {
		t.Errorf("outcome %v, want degraded (APG bomb)", outcome)
	}
	if rep == nil || !rep.Partial {
		t.Error("report not partial despite the APG bomb")
	}
	if rep != nil && rep.Policy == nil {
		t.Error("policy analysis lost alongside the APK fault")
	}
}
