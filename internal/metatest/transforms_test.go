package metatest

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ppchecker/internal/htmltext"
	"ppchecker/internal/patterns"
	"ppchecker/internal/policy"
	"ppchecker/internal/verbs"
)

func TestParseParasRoundTrip(t *testing.T) {
	html := renderParas([]string{"We may collect your location data.", "We take your privacy very seriously."})
	paras, ok := parseParas(html)
	if !ok || len(paras) != 2 {
		t.Fatalf("parseParas = %v, %v", paras, ok)
	}
	if renderParas(paras) != html {
		t.Error("render/parse round trip not stable")
	}
}

func TestParseParasOnSynthCorpus(t *testing.T) {
	h := testHarness(t)
	for _, i := range []int{0, 50, 180, 195, 239, 315, 399} {
		paras, ok := parseParas(h.App(i).PolicyHTML)
		if !ok || len(paras) == 0 {
			t.Errorf("app %d: synth policy did not parse", i)
		}
	}
}

func TestParseParasRejectsNested(t *testing.T) {
	if _, ok := parseParas("<p>outer <b>inner</b></p>"); ok {
		t.Error("nested markup accepted")
	}
	if _, ok := parseParas("no paragraphs at all"); ok {
		t.Error("paragraph-free text accepted")
	}
}

// Every transform's output must stay parseable, so chains compose.
func TestTransformOutputsStayParseable(t *testing.T) {
	h := testHarness(t)
	html := h.App(3).PolicyHTML
	for _, tr := range append(All(), Planted()...) {
		out, changed := tr.Apply(html, rand.New(rand.NewSource(9)))
		if !changed {
			continue
		}
		if _, ok := parseParas(out); !ok {
			t.Errorf("%s output is not parseable by the paragraph model", tr.Name)
		}
	}
}

// The catalog floor: the acceptance criteria demand >= 8 semantics-
// preserving transform classes plus planted fixtures.
func TestTransformCatalog(t *testing.T) {
	if n := len(All()); n < 8 {
		t.Errorf("catalog has %d non-planted transforms, want >= 8", n)
	}
	if n := len(Planted()); n < 2 {
		t.Errorf("catalog has %d planted transforms, want >= 2", n)
	}
	for _, tr := range All() {
		if tr.Doc == "" {
			t.Errorf("%s has no doc string", tr.Name)
		}
	}
}

// Identity-class transforms must leave the *extracted text* unchanged
// up to whitespace normalization — a sharper oracle than report
// equality for the pure-formatting transforms.
func TestIdenticalTransformsPreserveExtractedText(t *testing.T) {
	h := testHarness(t)
	// Extraction is case-preserving (the pipeline lowercases later, in
	// SplitSentences), so the comparison folds case as well as space.
	norm := func(s string) string { return strings.ToLower(strings.Join(strings.Fields(s), " ")) }
	for _, tr := range All() {
		if tr.Invariant != InvIdentical {
			continue
		}
		for _, appIdx := range []int{2, 180, 315} {
			html := h.App(appIdx).PolicyHTML
			out, changed := tr.Apply(html, rand.New(rand.NewSource(4)))
			if !changed {
				continue
			}
			a, b := norm(htmltext.Extract(html)), norm(htmltext.Extract(out))
			// tag-churn rewrites the (skipped) head/title, which never
			// reaches extraction; everything visible must match.
			if a != b {
				t.Errorf("%s app %d: extracted text changed\n orig: %.120q\ntrans: %.120q",
					tr.Name, appIdx, a, b)
			}
		}
	}
}

// Pool safety: every replacement verb must produce the same statement
// (category, polarity, resource) in the standard frames under the
// matcher the transform targets.
func TestVerbPoolsPreserveStatements(t *testing.T) {
	analyzers := map[string]*policy.Analyzer{
		"core": policy.NewAnalyzer(),
		"ext":  policy.NewAnalyzer(policy.WithMatcher(patterns.ExtendedMatcher())),
	}
	pools := map[string]map[verbs.Category][]string{"core": corePools, "ext": extPools}
	for variant, pool := range pools {
		an := analyzers[variant]
		for cat, vs := range pool {
			for _, v := range vs {
				for _, frame := range []string{
					"We may %s your location data.",
					"We will not %s your location data.",
					"Your location data may be %s by us.",
				} {
					verb := v
					if strings.Contains(frame, "be %s") {
						verb = pastParticiple(v)
					}
					sent := fmt.Sprintf(frame, verb)
					res := an.AnalyzeHTML("<html><body><p>" + sent + "</p></body></html>")
					var got []policy.Statement
					for _, st := range res.Statements {
						if st.Category != verbs.None {
							got = append(got, st)
						}
					}
					if len(got) != 1 {
						t.Errorf("[%s] %q: %d categorized statements, want 1", variant, sent, len(got))
						continue
					}
					st := got[0]
					wantNeg := strings.Contains(frame, "not")
					if st.Category != cat || st.Negative != wantNeg {
						t.Errorf("[%s] %q: category %s negative %v, want %s %v",
							variant, sent, st.Category, st.Negative, cat, wantNeg)
					}
					found := false
					for _, r := range st.Resources {
						if strings.Contains(r, "location data") {
							found = true
						}
					}
					if !found {
						t.Errorf("[%s] %q: resources %v lost the object", variant, sent, st.Resources)
					}
				}
			}
		}
	}
}

func TestChainFormatRoundTrip(t *testing.T) {
	chain := []Step{{Name: "tag-churn", Seed: 42}, {Name: "para-reorder", Seed: -7}}
	got, err := ParseChain(FormatChain(chain))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, chain) {
		t.Errorf("round trip = %v, want %v", got, chain)
	}
	if _, err := ParseChain("no-such-transform:1"); err == nil {
		t.Error("unknown transform accepted")
	}
	if _, err := ParseChain("tag-churn"); err == nil {
		t.Error("seedless step accepted")
	}
}

func TestChainInvariantIsWeakest(t *testing.T) {
	if inv := ChainInvariant([]Step{{Name: "tag-churn"}, {Name: "ncr-recode"}}); inv != InvIdentical {
		t.Errorf("formatting chain invariant = %s", inv)
	}
	if inv := ChainInvariant([]Step{{Name: "tag-churn"}, {Name: "para-reorder"}}); inv != InvUpToSentence {
		t.Errorf("mixed chain invariant = %s", inv)
	}
}
