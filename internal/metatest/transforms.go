package metatest

import (
	"fmt"
	"math/rand"
	"strings"

	"ppchecker/internal/nlp"
	"ppchecker/internal/verbs"
)

// ---- shared helpers ----

// inEntitySpans marks the byte ranges of character-entity references
// ("&nbsp;", "&#x61;") so letter-level transforms never rewrite inside
// one that an earlier chain step produced.
func inEntitySpans(s string) []bool {
	in := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '&' {
			continue
		}
		for j := i + 1; j < len(s) && j-i <= 10; j++ {
			if s[j] == ';' {
				for k := i; k <= j; k++ {
					in[k] = true
				}
				i = j
				break
			}
			if s[j] == ' ' || s[j] == '&' {
				break
			}
		}
	}
	return in
}

// splitTrailingPunct separates sentence punctuation from a word token.
func splitTrailingPunct(w string) (bare, punct string) {
	i := len(w)
	for i > 0 && strings.IndexByte(".,:;!?", w[i-1]) >= 0 {
		i--
	}
	return w[:i], w[i:]
}

// pastParticiple inflects the pool verbs for the passive frames,
// mirroring the synth generator's inflector.
func pastParticiple(lemma string) string {
	switch lemma {
	case "keep":
		return "kept"
	case "hold":
		return "held"
	case "send":
		return "sent"
	case "sell":
		return "sold"
	case "give":
		return "given"
	case "get":
		return "gotten"
	case "read":
		return "read"
	case "log":
		return "logged"
	}
	if strings.HasSuffix(lemma, "e") {
		return lemma + "d"
	}
	return lemma + "ed"
}

// corePools are per-category replacement verbs for the default
// checker: every member is a core category lemma (matched by the
// default pattern set) that slots into the synth sentence frames.
var corePools = map[verbs.Category][]string{
	verbs.Collect:  {"collect", "gather", "obtain", "acquire", "receive"},
	verbs.Use:      {"use", "process", "utilize", "employ"},
	verbs.Retain:   {"store", "retain", "keep", "save", "preserve"},
	verbs.Disclose: {"share", "disclose", "transfer", "provide", "transmit"},
}

// extPools additionally draw from verbs.ExtendedLemmas — the §VI
// synonym lists — and are only sound under core.WithSynonymExpansion.
var extPools = map[verbs.Category][]string{
	verbs.Collect:  {"collect", "gather", "check", "view", "inspect"},
	verbs.Use:      {"use", "process", "evaluate", "examine"},
	verbs.Retain:   {"store", "retain", "maintain", "keep"},
	verbs.Disclose: {"share", "disclose", "display", "show", "publish"},
}

// pickOther picks a pool member different from cur (or returns cur for
// a degenerate pool).
func pickOther(pool []string, cur string, rng *rand.Rand) string {
	var cands []string
	for _, v := range pool {
		if v != cur {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return cur
	}
	return cands[rng.Intn(len(cands))]
}

// determiners that may open a direct-object chunk; verb substitution
// only fires when the verb's object opens with one, which keeps it off
// frames like "provide access to ..." where the attachment is subtler.
var objectOpeners = map[string]bool{
	"your": true, "the": true, "any": true, "that": true, "this": true,
	"all": true,
}

// substituteVerbs rewrites category verbs in the active ("may collect
// your ...") and passive ("may be collected by ...") frames, keeping
// the verb's category. catOf decides membership; pools supplies the
// replacements.
func substituteVerbs(p string, rng *rand.Rand,
	catOf func(string) verbs.Category, pools map[verbs.Category][]string) string {
	words := strings.Split(p, " ")
	for k := 1; k < len(words); k++ {
		trig, _ := splitTrailingPunct(strings.ToLower(words[k-1]))
		bare, punct := splitTrailingPunct(words[k])
		lower := strings.ToLower(bare)
		if lower == "" {
			continue
		}
		if trig == "be" {
			// Passive frame: an inflected participle after "be".
			lem := nlp.Lemma(lower)
			cat := catOf(lem)
			if cat == verbs.None || lem == lower {
				continue
			}
			if rng.Float64() < 0.8 {
				words[k] = pastParticiple(pickOther(pools[cat], lem, rng)) + punct
			}
			continue
		}
		if !verbTriggers[trig] {
			continue
		}
		// Active frame: a base-form category verb whose object opens
		// with a determiner.
		if lower != nlp.Lemma(lower) {
			continue
		}
		cat := catOf(lower)
		if cat == verbs.None {
			continue
		}
		if punct == "" {
			if k+1 >= len(words) {
				continue
			}
			next, _ := splitTrailingPunct(strings.ToLower(words[k+1]))
			if !objectOpeners[next] {
				continue
			}
		} else if punct != ":" {
			continue // verb carries sentence punctuation: not our frame
		}
		if rng.Float64() < 0.8 {
			words[k] = pickOther(pools[cat], lower, rng) + punct
		}
	}
	return strings.Join(words, " ")
}

// verbTriggers precede a base-form main verb in the synth frames.
var verbTriggers = map[string]bool{
	"may": true, "will": true, "to": true, "not": true, "never": true,
	"also": true, "must": true, "can": true,
}

// ---- the transform catalog ----

func init() {
	register(&Transform{
		Name:      "tag-churn",
		Invariant: InvIdentical,
		Doc:       "re-renders paragraphs with varied block tags, attributes, and wrappers",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			paras, ok := parseParas(html)
			if !ok {
				return html, false
			}
			var sb strings.Builder
			sb.WriteString("<html><head><title>Privacy Policy &mdash; v2</title></head><body>\n")
			wrapped := rng.Intn(2) == 0
			if wrapped {
				sb.WriteString("<section class=\"policy\">\n")
			}
			sb.WriteString("<h1>Privacy Policy</h1>\n")
			for i, p := range paras {
				tag := "p"
				if rng.Intn(2) == 0 {
					tag = "div"
				}
				attr := ""
				switch rng.Intn(3) {
				case 0:
					attr = fmt.Sprintf(" class=\"s%d\"", i)
				case 1:
					attr = fmt.Sprintf(" id=\"para-%d\" data-k=\"1\"", i)
				}
				sb.WriteString("<" + tag + attr + ">" + p + "</" + tag + ">\n")
			}
			if wrapped {
				sb.WriteString("</section>\n")
			}
			sb.WriteString("</body></html>\n")
			return sb.String(), true
		},
	})

	register(&Transform{
		Name:      "inline-noise",
		Invariant: InvIdentical,
		Doc:       "inserts comments, script and style blocks between paragraphs",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			paras, ok := parseParas(html)
			if !ok {
				return html, false
			}
			var sb strings.Builder
			sb.WriteString("<html><head><title>Privacy Policy</title>" +
				"<style>body{margin:0}</style></head><body>\n<h1>Privacy Policy</h1>\n")
			for i, p := range paras {
				switch rng.Intn(4) {
				case 0:
					sb.WriteString(fmt.Sprintf("<!-- section %d -->\n", i))
				case 1:
					sb.WriteString(fmt.Sprintf("<script>var s%d=%d;</script>\n", i, rng.Intn(100)))
				case 2:
					sb.WriteString("<style>.x{display:none}</style>\n")
				}
				sb.WriteString("<p>" + p + "</p>\n")
			}
			sb.WriteString("<noscript>enable scripts</noscript></body></html>\n")
			return sb.String(), true
		},
	})

	register(&Transform{
		Name:      "whitespace-churn",
		Invariant: InvIdentical,
		Doc:       "varies inter-word spacing with extra spaces and tabs (never newlines)",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			return mapParas(html, func(_ int, p string) string {
				words := strings.Split(p, " ")
				seps := []string{" ", "  ", "   ", " \t "}
				var sb strings.Builder
				if rng.Intn(2) == 0 {
					sb.WriteString("  ")
				}
				for i, w := range words {
					if i > 0 {
						sb.WriteString(seps[rng.Intn(len(seps))])
					}
					sb.WriteString(w)
				}
				if rng.Intn(2) == 0 {
					sb.WriteString(" ")
				}
				return sb.String()
			})
		},
	})

	register(&Transform{
		Name:      "case-churn",
		Invariant: InvIdentical,
		Doc:       "uppercases random letters (the pipeline lowercases after sentence repair)",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			return mapParas(html, func(_ int, p string) string {
				in := inEntitySpans(p)
				b := []byte(p)
				for i := range b {
					if !in[i] && b[i] >= 'a' && b[i] <= 'z' && rng.Float64() < 0.3 {
						b[i] -= 32
					}
				}
				return string(b)
			})
		},
	})

	register(&Transform{
		Name:      "ncr-recode",
		Invariant: InvIdentical,
		Doc:       "re-encodes random letters as decimal/hex numeric character references",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			return mapParas(html, func(_ int, p string) string {
				in := inEntitySpans(p)
				var sb strings.Builder
				for i := 0; i < len(p); i++ {
					c := p[i]
					letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
					if !in[i] && letter && rng.Float64() < 0.15 {
						if rng.Intn(2) == 0 {
							fmt.Fprintf(&sb, "&#%d;", c)
						} else {
							fmt.Fprintf(&sb, "&#x%x;", c)
						}
						continue
					}
					sb.WriteByte(c)
				}
				return sb.String()
			})
		},
	})

	register(&Transform{
		Name:      "entity-recode",
		Invariant: InvIdentical,
		Doc:       "re-encodes spaces, hyphens and apostrophes as named entities",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			return mapParas(html, func(_ int, p string) string {
				in := inEntitySpans(p)
				var sb strings.Builder
				for i := 0; i < len(p); i++ {
					c := p[i]
					if !in[i] {
						switch {
						case c == ' ' && rng.Float64() < 0.15:
							sb.WriteString("&nbsp;")
							continue
						case c == '-' && rng.Float64() < 0.5:
							sb.WriteString("&ndash;")
							continue
						case c == '\'' && rng.Float64() < 0.5:
							sb.WriteString("&apos;")
							continue
						}
					}
					sb.WriteByte(c)
				}
				return sb.String()
			})
		},
	})

	register(&Transform{
		Name:      "para-reorder",
		Invariant: InvUpToSentence,
		Doc:       "shuffles paragraph order (enumeration groups move as one unit)",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			paras, ok := parseParas(html)
			if !ok || len(paras) < 2 {
				return html, false
			}
			// A paragraph ending ':', ';' or ',' glues the next one to it
			// (the enumeration repair would merge them), so such runs
			// move as a unit.
			var groups [][]string
			for i := 0; i < len(paras); {
				j := i
				for j < len(paras)-1 {
					t := strings.TrimSpace(paras[j])
					if strings.HasSuffix(t, ":") || strings.HasSuffix(t, ";") || strings.HasSuffix(t, ",") {
						j++
						continue
					}
					break
				}
				groups = append(groups, paras[i:j+1])
				i = j + 1
			}
			rng.Shuffle(len(groups), func(a, b int) { groups[a], groups[b] = groups[b], groups[a] })
			var out []string
			for _, g := range groups {
				out = append(out, g...)
			}
			return renderParas(out), true
		},
	})

	register(&Transform{
		Name:      "verb-synonym",
		Invariant: InvUpToSentence,
		Doc:       "swaps category verbs for same-category core lemmas in the standard frames",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			return mapParas(html, func(_ int, p string) string {
				return substituteVerbs(p, rng, verbs.CategoryOf, corePools)
			})
		},
	})

	register(&Transform{
		Name:          "verb-synonym-ext",
		Invariant:     InvUpToSentence,
		NeedsSynonyms: true,
		Doc:           "swaps category verbs for synonyms from verbs.ExtendedLemmas (synonym-expanded checker only)",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			return mapParas(html, func(_ int, p string) string {
				return substituteVerbs(p, rng, verbs.ExtendedCategoryOf, extPools)
			})
		},
	})

	register(&Transform{
		Name:      "negation-style",
		Invariant: InvUpToSentence,
		Doc:       "rewrites negated frames among 'will not' / 'do not' / 'will never'",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			styles := []string{" will not ", " do not ", " will never "}
			return mapParas(html, func(_ int, p string) string {
				for _, cur := range styles {
					i := strings.Index(strings.ToLower(p), cur)
					if i < 0 {
						continue
					}
					after := p[i+len(cur):]
					word, _ := splitTrailingPunct(strings.ToLower(strings.SplitN(after, " ", 2)[0]))
					// Only rewrite simple verbal negation: "will not be
					// stored" and friends keep their style.
					if verbs.CategoryOf(word) == verbs.None || word != nlp.Lemma(word) {
						continue
					}
					repl := pickOther(styles, cur, rng)
					return p[:i] + repl + after
				}
				return p
			})
		},
	})

	register(&Transform{
		Name:      "list-rewrite",
		Invariant: InvUpToSentence,
		Doc:       "splits 'We may <verb> your X.' across a colon-introduced list, exercising the enumeration repair",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			paras, ok := parseParas(html)
			if !ok {
				return html, false
			}
			var out []string
			changed := false
			for _, p := range paras {
				words := strings.Fields(p)
				if len(words) >= 5 && rng.Float64() < 0.7 {
					w0, w1 := strings.ToLower(words[0]), strings.ToLower(words[1])
					verb, _ := splitTrailingPunct(strings.ToLower(words[2]))
					obj, _ := splitTrailingPunct(strings.ToLower(words[3]))
					if w0 == "we" && w1 == "may" && verb == words[2] &&
						verbs.CategoryOf(verb) != verbs.None && verb == nlp.Lemma(verb) &&
						obj == "your" && strings.HasSuffix(words[len(words)-1], ".") {
						out = append(out, strings.Join(words[:3], " ")+":")
						out = append(out, strings.Join(words[3:], " "))
						changed = true
						continue
					}
				}
				out = append(out, p)
			}
			if !changed {
				return html, false
			}
			return renderParas(out), true
		},
	})

	// ---- planted divergences (oracle/shrinker validation only) ----

	register(&Transform{
		Name:      "plant-drop-statement",
		Invariant: InvIdentical,
		Planted:   true,
		Doc:       "deletes the first pattern-bearing statement (intentionally divergent)",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			paras, ok := parseParas(html)
			if !ok {
				return html, false
			}
			for i, p := range paras {
				if statementShaped(p) {
					return renderParas(append(paras[:i:i], paras[i+1:]...)), true
				}
			}
			return html, false
		},
	})

	register(&Transform{
		Name:      "plant-negate-statement",
		Invariant: InvIdentical,
		Planted:   true,
		Doc:       "turns the first 'We may <verb> ...' statement negative (intentionally divergent)",
		Apply: func(html string, rng *rand.Rand) (string, bool) {
			paras, ok := parseParas(html)
			if !ok {
				return html, false
			}
			for i, p := range paras {
				words := strings.Fields(p)
				if len(words) >= 4 && strings.ToLower(words[0]) == "we" &&
					strings.ToLower(words[1]) == "may" &&
					verbs.CategoryOf(strings.ToLower(words[2])) != verbs.None {
					paras[i] = "We will never " + strings.Join(words[2:], " ")
					return renderParas(paras), true
				}
			}
			return html, false
		},
	})
}

// statementShaped reports whether a paragraph looks like a
// pattern-bearing policy statement (vs boilerplate).
func statementShaped(p string) bool {
	words := strings.Fields(strings.ToLower(p))
	if len(words) < 4 {
		return false
	}
	opener := (words[0] == "we" || words[0] == "your")
	if !opener {
		return false
	}
	for _, w := range words {
		bare, _ := splitTrailingPunct(w)
		if verbs.CategoryOf(nlp.Lemma(bare)) != verbs.None {
			return true
		}
	}
	return false
}
