package metatest

import "fmt"

// Shrink reduces a divergent chain to a locally-minimal one: no single
// step can be removed without the divergence disappearing. The greedy
// left-to-right scan restarts after every successful removal, so the
// result is a deterministic function of (corpus, app, chain). It
// errors if the input chain does not diverge in the first place.
func (h *Harness) Shrink(appIdx int, chain []Step) ([]Step, *ChainResult, error) {
	res, err := h.RunChain(appIdx, chain)
	if err != nil {
		return nil, nil, err
	}
	if !res.Diverged() {
		return nil, res, fmt.Errorf("metatest: chain %s holds on app %d; nothing to shrink",
			FormatChain(chain), appIdx)
	}
	cur := append([]Step(nil), chain...)
	for improved := true; improved && len(cur) > 1; {
		improved = false
		for i := range cur {
			cand := make([]Step, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			r, err := h.RunChain(appIdx, cand)
			if err != nil {
				return nil, nil, err
			}
			if r.Diverged() {
				cur, res, improved = cand, r, true
				break
			}
		}
	}
	return cur, res, nil
}
