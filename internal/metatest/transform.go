// Package metatest is the metamorphic & differential correctness
// harness. It applies semantics-preserving transforms to the privacy
// policies of synth-generated app bundles, re-runs the full checker on
// the transformed bundle, and diffs the two reports structurally under
// the transform's declared invariant. Any divergence means a detector
// output depended on surface form rather than policy semantics — the
// failure mode behind the paper's §V-C false positives. A companion
// differential oracle cross-checks the vectorized ESA path against the
// retained map-path reference, and a deterministic shrinker reduces a
// divergent transform chain to a minimal, replayable repro.
package metatest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Invariant declares how strongly findings must agree between the
// original and the transformed bundle.
type Invariant int

const (
	// InvIdentical: the reports carry byte-identical findings in
	// identical order.
	InvIdentical Invariant = iota
	// InvUpToSentence: findings agree as multisets once the cited
	// sentence text is masked. Transforms that rewrite or reorder
	// sentences legitimately change which (equivalent) sentence a
	// detector cites, but never what it finds.
	InvUpToSentence
)

func (v Invariant) String() string {
	switch v {
	case InvIdentical:
		return "identical"
	case InvUpToSentence:
		return "up-to-sentence"
	}
	return fmt.Sprintf("invariant(%d)", int(v))
}

// Step is one seeded transform application in a chain.
type Step struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
}

func (s Step) String() string { return fmt.Sprintf("%s:%d", s.Name, s.Seed) }

// FormatChain renders a chain in the "name:seed,name:seed" form the
// ppmeta CLI accepts.
func FormatChain(chain []Step) string {
	parts := make([]string, len(chain))
	for i, s := range chain {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// ParseChain parses the "name:seed,name:seed" form.
func ParseChain(s string) ([]Step, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("metatest: empty chain")
	}
	var chain []Step
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		i := strings.LastIndexByte(part, ':')
		if i < 0 {
			return nil, fmt.Errorf("metatest: step %q is not name:seed", part)
		}
		var seed int64
		if _, err := fmt.Sscanf(part[i+1:], "%d", &seed); err != nil {
			return nil, fmt.Errorf("metatest: step %q has a bad seed: %v", part, err)
		}
		if _, ok := Lookup(part[:i]); !ok {
			return nil, fmt.Errorf("metatest: unknown transform %q", part[:i])
		}
		chain = append(chain, Step{Name: part[:i], Seed: seed})
	}
	return chain, nil
}

// Transform is one semantics-preserving rewrite of a policy document.
// Apply returns the rewritten HTML and whether the transform actually
// changed anything; a false return means the document had no applicable
// site (the step is recorded as skipped, never as a failure).
type Transform struct {
	Name      string
	Invariant Invariant
	// Planted marks an intentionally divergence-introducing transform
	// used to validate the oracle and the shrinker. Planted transforms
	// are excluded from All() and from the invariance sweep.
	Planted bool
	// NeedsSynonyms marks transforms whose invariant only holds under a
	// checker built with core.WithSynonymExpansion (replacement verbs
	// drawn from verbs.ExtendedLemmas are invisible to the default
	// matcher).
	NeedsSynonyms bool
	Doc           string
	Apply         func(html string, rng *rand.Rand) (string, bool)
}

var registry = map[string]*Transform{}

func register(t *Transform) {
	if _, dup := registry[t.Name]; dup {
		panic("metatest: duplicate transform " + t.Name)
	}
	registry[t.Name] = t
}

// Lookup returns the named transform.
func Lookup(name string) (*Transform, bool) {
	t, ok := registry[name]
	return t, ok
}

// All returns the non-planted transforms in stable (name) order.
func All() []*Transform {
	var out []*Transform
	for _, t := range registry {
		if !t.Planted {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Planted returns the intentionally-divergent transforms, in stable
// order.
func Planted() []*Transform {
	var out []*Transform
	for _, t := range registry {
		if t.Planted {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ChainInvariant is the weakest invariant of the chain's steps — the
// strongest guarantee the whole chain still makes.
func ChainInvariant(chain []Step) Invariant {
	inv := InvIdentical
	for _, s := range chain {
		if t, ok := registry[s.Name]; ok && t.Invariant > inv {
			inv = t.Invariant
		}
	}
	return inv
}

// ChainNeedsSynonyms reports whether any step requires the
// synonym-expanded checker.
func ChainNeedsSynonyms(chain []Step) bool {
	for _, s := range chain {
		if t, ok := registry[s.Name]; ok && t.NeedsSynonyms {
			return true
		}
	}
	return false
}

// ApplyChain applies each step in order, each with its own seeded
// generator, and returns the final HTML plus the names of the steps
// that actually changed the document. Unknown transform names error.
func ApplyChain(html string, chain []Step) (string, []string, error) {
	var applied []string
	for _, s := range chain {
		t, ok := registry[s.Name]
		if !ok {
			return "", nil, fmt.Errorf("metatest: unknown transform %q", s.Name)
		}
		out, changed := t.Apply(html, rand.New(rand.NewSource(s.Seed)))
		if changed {
			html = out
			applied = append(applied, s.Name)
		}
	}
	return html, applied, nil
}

// ---- policy-document paragraph model ----
//
// Synth policies (and every rendering this package produces) keep one
// sentence per <p>/<div> block. Transforms parse the document into its
// paragraph texts, rewrite them, and re-render canonically. Documents
// that do not fit the model (corrupted bundles, foreign HTML) simply
// report "no applicable site" and pass through unchanged.

// parseParas extracts the text of every <p>/<div> block. It fails (ok
// = false) on nested markup inside a paragraph, which this package
// never produces.
func parseParas(html string) ([]string, bool) {
	var paras []string
	i, n := 0, len(html)
	for i < n {
		j := strings.IndexByte(html[i:], '<')
		if j < 0 {
			break
		}
		i += j
		rest := html[i:]
		var tag string
		switch {
		case strings.HasPrefix(rest, "<p>") || strings.HasPrefix(rest, "<p "):
			tag = "p"
		case strings.HasPrefix(rest, "<div>") || strings.HasPrefix(rest, "<div "):
			tag = "div"
		default:
			i++
			continue
		}
		gt := strings.IndexByte(rest, '>')
		if gt < 0 {
			return nil, false
		}
		start := i + gt + 1
		end := strings.Index(html[start:], "</"+tag+">")
		if end < 0 {
			return nil, false
		}
		content := html[start : start+end]
		if strings.ContainsAny(content, "<>") {
			return nil, false
		}
		paras = append(paras, content)
		i = start + end + len(tag) + 3
	}
	return paras, len(paras) > 0
}

// renderParas renders paragraphs in the canonical synth document shape.
func renderParas(paras []string) string {
	var sb strings.Builder
	sb.WriteString("<html><head><title>Privacy Policy</title></head><body>\n<h1>Privacy Policy</h1>\n")
	for _, p := range paras {
		sb.WriteString("<p>" + p + "</p>\n")
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

// mapParas rewrites each paragraph through f and re-renders. changed
// is false when the document does not parse or no paragraph changed.
func mapParas(html string, f func(i int, p string) string) (string, bool) {
	paras, ok := parseParas(html)
	if !ok {
		return html, false
	}
	changed := false
	for i, p := range paras {
		if q := f(i, p); q != p {
			paras[i] = q
			changed = true
		}
	}
	if !changed {
		return html, false
	}
	return renderParas(paras), true
}
