package metatest

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate testdata/metatest seed cases")

const seedDir = "testdata/metatest"

// seedSpecs declare the committed seed corpus: diverge cases start
// from a planted fixture chain and are minimized before being written;
// hold cases pin long benign chains. Regenerate with
//
//	go test ./internal/metatest -run TestSeedCorpus -update
type seedSpec struct {
	file     string
	note     string
	appIndex int
	chain    []Step
	expect   string
}

func seedSpecs() []seedSpec {
	return []seedSpec{
		{
			file:     "diverge_drop_statement.json",
			note:     "plant-drop-statement buried in benign formatting churn, minimized",
			appIndex: 1,
			chain: []Step{
				{Name: "whitespace-churn", Seed: 7},
				{Name: "case-churn", Seed: 11},
				{Name: "plant-drop-statement", Seed: 3},
				{Name: "ncr-recode", Seed: 13},
				{Name: "para-reorder", Seed: 17},
			},
			expect: ExpectDiverge,
		},
		{
			file:     "diverge_negate_statement.json",
			note:     "plant-negate-statement buried in benign formatting churn, minimized",
			appIndex: 1,
			chain: []Step{
				{Name: "tag-churn", Seed: 5},
				{Name: "plant-negate-statement", Seed: 2},
				{Name: "entity-recode", Seed: 19},
				{Name: "inline-noise", Seed: 23},
			},
			expect: ExpectDiverge,
		},
		{
			file:     "hold_formatting_chain.json",
			note:     "every formatting-identity transform composed; findings must be byte-identical",
			appIndex: 42,
			chain: []Step{
				{Name: "tag-churn", Seed: 1},
				{Name: "inline-noise", Seed: 2},
				{Name: "whitespace-churn", Seed: 3},
				{Name: "case-churn", Seed: 4},
				{Name: "ncr-recode", Seed: 5},
				{Name: "entity-recode", Seed: 6},
			},
			expect: ExpectHold,
		},
		{
			file:     "hold_semantic_chain.json",
			note:     "reorder + verb synonyms + list rewrite; findings equal up to sentence text",
			appIndex: 120,
			chain: []Step{
				{Name: "para-reorder", Seed: 9},
				{Name: "verb-synonym", Seed: 10},
				{Name: "list-rewrite", Seed: 11},
				{Name: "negation-style", Seed: 12},
			},
			expect: ExpectHold,
		},
	}
}

// regenerateSeeds rebuilds the committed case files: diverge chains
// are shrunk to their minimal repro first (mirroring what cmd/ppmeta
// shrink emits), hold chains are verified and written as-is.
func regenerateSeeds(t *testing.T) {
	h := testHarness(t)
	if err := os.MkdirAll(seedDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, spec := range seedSpecs() {
		chain := spec.chain
		if spec.expect == ExpectDiverge {
			min, res, err := h.Shrink(spec.appIndex, spec.chain)
			if err != nil {
				t.Fatalf("%s: shrink: %v", spec.file, err)
			}
			if !res.Diverged() {
				t.Fatalf("%s: minimized chain no longer diverges", spec.file)
			}
			chain = min
		}
		c := &Case{
			Version:    CaseVersion,
			Note:       spec.note,
			CorpusSeed: testCorpusSeed,
			NumApps:    testNumApps,
			AppIndex:   spec.appIndex,
			Chain:      chain,
			Expect:     spec.expect,
		}
		if res, matched, err := c.Run(); err != nil {
			t.Fatalf("%s: %v", spec.file, err)
		} else if !matched {
			t.Fatalf("%s: outcome %v does not match expectation %s",
				spec.file, res.Divergences, spec.expect)
		}
		path := filepath.Join(seedDir, spec.file)
		if err := c.Write(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (chain %s)", path, FormatChain(chain))
	}
}

// TestSeedCorpus replays every committed testdata/metatest case and
// checks the recorded expectation still holds. Run with -update to
// re-minimize and rewrite the corpus after intentional behavior
// changes (mirrors the golden-report workflow).
func TestSeedCorpus(t *testing.T) {
	if *update {
		regenerateSeeds(t)
	}
	cases, err := LoadCases(seedDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 3 {
		t.Fatalf("seed corpus has %d cases, want >= 3 (run with -update?)", len(cases))
	}
	var divergeSeen, holdSeen bool
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.Path), func(t *testing.T) {
			res, matched, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !matched {
				t.Errorf("chain %s on app %d: diverged=%v, expected %s\ndivergences: %v",
					FormatChain(c.Chain), c.AppIndex, res.Diverged(), c.Expect, res.Divergences)
			}
			if c.Expect == ExpectDiverge {
				divergeSeen = true
				if len(c.Chain) > 2 {
					t.Errorf("committed diverge case has %d steps; re-minimize with -update", len(c.Chain))
				}
			} else {
				holdSeen = true
			}
		})
	}
	if !divergeSeen || !holdSeen {
		t.Errorf("seed corpus must contain both diverge and hold cases (diverge=%v hold=%v)",
			divergeSeen, holdSeen)
	}
}

// TestSeedCaseValidation covers the case-file schema guards.
func TestSeedCaseValidation(t *testing.T) {
	good := &Case{Version: CaseVersion, CorpusSeed: 1, AppIndex: 0,
		Chain: []Step{{Name: "tag-churn", Seed: 1}}, Expect: ExpectHold}
	if err := good.Validate(); err != nil {
		t.Errorf("valid case rejected: %v", err)
	}
	bad := []*Case{
		{Version: 99, Chain: good.Chain, Expect: ExpectHold},
		{Version: CaseVersion, Chain: good.Chain, Expect: "maybe"},
		{Version: CaseVersion, Chain: nil, Expect: ExpectHold},
		{Version: CaseVersion, Chain: []Step{{Name: "nope", Seed: 1}}, Expect: ExpectHold},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d accepted", i)
		}
	}
	if _, err := LoadCase(filepath.Join(seedDir, "no-such-case.json")); err == nil {
		t.Error("missing case file loaded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCases(dir); err == nil {
		t.Error("malformed case file accepted")
	}
}
