package metatest

import (
	"reflect"
	"testing"
)

// plantedFixtures are the chains the shrinker must reduce: one planted
// divergence buried in benign steps. App 1 exhibits both plant
// classes on the shared corpus.
func plantedFixtures() []struct {
	name     string
	appIndex int
	chain    []Step
} {
	return []struct {
		name     string
		appIndex int
		chain    []Step
	}{
		{"drop-statement", 1, []Step{
			{Name: "whitespace-churn", Seed: 7},
			{Name: "case-churn", Seed: 11},
			{Name: "plant-drop-statement", Seed: 3},
			{Name: "ncr-recode", Seed: 13},
			{Name: "para-reorder", Seed: 17},
		}},
		{"negate-statement", 1, []Step{
			{Name: "tag-churn", Seed: 5},
			{Name: "plant-negate-statement", Seed: 2},
			{Name: "entity-recode", Seed: 19},
			{Name: "inline-noise", Seed: 23},
		}},
	}
}

// TestPlantedDivergenceShrinks: an intentionally-planted divergence is
// detected through a longer benign chain, and the shrinker reduces it
// to <= 2 steps — deterministically, to the same minimal chain every
// time — with the planted step surviving the reduction.
func TestPlantedDivergenceShrinks(t *testing.T) {
	h := testHarness(t)
	for _, fx := range plantedFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			full, err := h.RunChain(fx.appIndex, fx.chain)
			if err != nil {
				t.Fatal(err)
			}
			if !full.Diverged() {
				t.Fatalf("planted chain %s does not diverge on app %d",
					FormatChain(fx.chain), fx.appIndex)
			}
			min1, res1, err := h.Shrink(fx.appIndex, fx.chain)
			if err != nil {
				t.Fatal(err)
			}
			if len(min1) > 2 {
				t.Errorf("minimized chain %s has %d steps, want <= 2", FormatChain(min1), len(min1))
			}
			if !res1.Diverged() {
				t.Errorf("minimized chain %s no longer diverges", FormatChain(min1))
			}
			planted := false
			for _, s := range min1 {
				if tr, _ := Lookup(s.Name); tr != nil && tr.Planted {
					planted = true
				}
			}
			if !planted {
				t.Errorf("minimized chain %s lost the planted step", FormatChain(min1))
			}
			// Determinism: shrinking again from the same seed chain must
			// land on the same minimal chain and the same divergences.
			min2, res2, err := h.Shrink(fx.appIndex, fx.chain)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(min1, min2) {
				t.Errorf("shrink not deterministic: %s vs %s", FormatChain(min1), FormatChain(min2))
			}
			if !reflect.DeepEqual(res1.Divergences, res2.Divergences) {
				t.Errorf("replayed divergences differ across shrink runs")
			}
		})
	}
}

// TestPlantedCoverage: the planted transforms diverge broadly across
// the corpus, so the oracle is demonstrably able to see real changes —
// a clean sweep is meaningful evidence, not a blind oracle.
func TestPlantedCoverage(t *testing.T) {
	h := testHarness(t)
	for _, tr := range Planted() {
		div := 0
		for i := 0; i < 40; i++ {
			res, err := h.RunChain(i, []Step{{Name: tr.Name, Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Diverged() {
				div++
			}
		}
		if div < 10 {
			t.Errorf("%s diverged on only %d/40 apps; the oracle may be blind", tr.Name, div)
		}
	}
}
