package metatest

import (
	"os"
	"testing"
)

// Corpus coordinates shared by the whole suite: same seed as the
// golden-report suite so the two harnesses pin the same corpus.
const (
	testCorpusSeed = 11
	testNumApps    = 0 // synth.MinApps
)

func testHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := SharedHarness(testCorpusSeed, testNumApps)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// sweepConfig sizes the invariance sweep. Short mode still meets the
// acceptance floor (>= 8 transform classes over >= 50 apps); the full
// matrix (nightly, or METATEST_FULL=1) widens apps, seeds, and chain
// composition.
func sweepConfig(t *testing.T) SweepConfig {
	full := os.Getenv("METATEST_FULL") != "" || !testing.Short()
	if full {
		return SweepConfig{AppCount: 134, Stride: 3, StepSeeds: []int64{1, 2, 3}, ChainLen: 4}
	}
	return SweepConfig{AppCount: 60, Stride: 6, StepSeeds: []int64{1}, ChainLen: 3}
}

// TestMetamorphicInvariance is the tentpole gate: every
// semantics-preserving transform (alone and composed) must leave the
// checker's findings unchanged under its declared invariant, across a
// corpus sample covering every planted verdict class.
func TestMetamorphicInvariance(t *testing.T) {
	h := testHarness(t)
	cfg := sweepConfig(t)
	stats, err := h.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transforms < 8 {
		t.Errorf("only %d transform classes in the sweep, want >= 8", stats.Transforms)
	}
	if stats.Apps < 50 {
		t.Errorf("only %d apps in the sweep, want >= 50", stats.Apps)
	}
	if stats.Applied == 0 {
		t.Error("no transform ever applied — the sweep tested nothing")
	}
	t.Logf("sweep: %d apps x %d transforms, %d runs, %d applications",
		stats.Apps, stats.Transforms, stats.Runs, stats.Applied)
	for _, d := range stats.Divergent {
		t.Errorf("app %d (%s) chain %s [%s]: %d divergences, first: %s",
			d.AppIndex, d.AppName, FormatChain(d.Chain), d.Invariant,
			len(d.Divergences), d.Divergences[0])
	}
}

// TestESADifferential cross-checks the vectorized ESA path against the
// retained map-path reference over phrases the corpus actually
// produces.
func TestESADifferential(t *testing.T) {
	h := testHarness(t)
	apps := SweepConfig{AppCount: 20, Stride: 17}.AppIndices(h.Len())
	divs := h.ESACheck(apps, 120, 2000)
	for _, d := range divs {
		t.Errorf("%s", d)
	}
}
