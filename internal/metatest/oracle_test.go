package metatest

import (
	"strings"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/policy"
	"ppchecker/internal/verbs"
)

func reportWith(incorrect ...core.IncorrectFinding) *core.Report {
	return &core.Report{
		App:       "app",
		Incorrect: incorrect,
		Policy:    &policy.Analysis{},
	}
}

func TestDiffReportsEqual(t *testing.T) {
	a := reportWith(core.IncorrectFinding{Category: verbs.Collect, Sentence: "s1", Evidence: "e"})
	b := reportWith(core.IncorrectFinding{Category: verbs.Collect, Sentence: "s1", Evidence: "e"})
	for _, inv := range []Invariant{InvIdentical, InvUpToSentence} {
		if divs := DiffReports(a, b, inv); len(divs) != 0 {
			t.Errorf("%s: equal reports diverge: %v", inv, divs)
		}
	}
}

func TestDiffReportsSentenceMasking(t *testing.T) {
	a := reportWith(core.IncorrectFinding{Category: verbs.Collect, Sentence: "we will not collect x.", Evidence: "e"})
	b := reportWith(core.IncorrectFinding{Category: verbs.Collect, Sentence: "we do not collect x.", Evidence: "e"})
	if divs := DiffReports(a, b, InvIdentical); len(divs) == 0 {
		t.Error("identical invariant missed a sentence-text change")
	}
	if divs := DiffReports(a, b, InvUpToSentence); len(divs) != 0 {
		t.Errorf("up-to-sentence invariant flagged a masked change: %v", divs)
	}
}

func TestDiffReportsOrderSensitivity(t *testing.T) {
	f1 := core.IncorrectFinding{Category: verbs.Collect, Sentence: "s", Evidence: "e1"}
	f2 := core.IncorrectFinding{Category: verbs.Retain, Sentence: "s", Evidence: "e2"}
	a, b := reportWith(f1, f2), reportWith(f2, f1)
	if divs := DiffReports(a, b, InvIdentical); len(divs) == 0 {
		t.Error("identical invariant missed a reorder")
	}
	if divs := DiffReports(a, b, InvUpToSentence); len(divs) != 0 {
		t.Errorf("multiset compare flagged a pure reorder: %v", divs)
	}
}

func TestDiffReportsMissingAndExtra(t *testing.T) {
	f1 := core.IncorrectFinding{Category: verbs.Collect, Sentence: "s", Evidence: "e1"}
	f2 := core.IncorrectFinding{Category: verbs.Retain, Sentence: "s", Evidence: "e2"}
	divs := DiffReports(reportWith(f1), reportWith(f2), InvUpToSentence)
	var kinds []string
	for _, d := range divs {
		kinds = append(kinds, d.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "missing-finding") || !strings.Contains(joined, "extra-finding") {
		t.Errorf("kinds = %v, want one missing and one extra", kinds)
	}
}

func TestDiffReportsDegradation(t *testing.T) {
	a := reportWith()
	b := reportWith()
	b.AddDegraded(&core.StageError{Stage: core.StagePolicy, App: "app"})
	divs := DiffReports(a, b, InvUpToSentence)
	if len(divs) == 0 || divs[0].Kind != "degraded" {
		t.Errorf("divs = %v, want a degraded divergence", divs)
	}
}

func TestESADifferentialCleanOnRealIndex(t *testing.T) {
	phrases := []string{
		"location information", "contact list", "device identifier",
		"email address", "phone number", "browsing history",
	}
	if divs := ESADifferential(esa.Default(), phrases, 100, 1e-12); len(divs) != 0 {
		t.Errorf("vec/map paths disagree: %v", divs)
	}
}

func TestESADifferentialCatchesMismatch(t *testing.T) {
	// A deliberately tight tolerance of -1 forces every pair to
	// "mismatch", proving the check is not vacuously green.
	phrases := []string{"location information", "contact list"}
	if divs := ESADifferential(esa.Default(), phrases, 10, -1); len(divs) == 0 {
		t.Error("impossible tolerance produced no divergence; the pair loop is dead")
	}
}
