package metatest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/synth"
)

// Harness runs transform chains against one deterministic synth corpus
// and diffs the resulting reports. A Harness is not safe for
// concurrent use (the underlying checkers are not); determinism is the
// point, so runs are serial.
type Harness struct {
	CorpusSeed int64
	NumApps    int

	ds   *synth.Dataset
	base *core.Checker
	syn  *core.Checker
}

// NewHarness generates the corpus for (seed, numApps) and builds the
// two checkers (default and synonym-expanded). numApps <= 0 selects
// synth.MinApps.
func NewHarness(corpusSeed int64, numApps int) (*Harness, error) {
	if numApps <= 0 {
		numApps = synth.MinApps
	}
	ds, err := synth.Generate(synth.Config{Seed: corpusSeed, NumApps: numApps})
	if err != nil {
		return nil, fmt.Errorf("metatest: corpus generation: %w", err)
	}
	return &Harness{
		CorpusSeed: corpusSeed,
		NumApps:    numApps,
		ds:         ds,
		base:       core.NewChecker(),
		syn:        core.NewChecker(core.WithSynonymExpansion()),
	}, nil
}

var (
	sharedMu       sync.Mutex
	sharedHarneses = map[string]*Harness{}
)

// SharedHarness memoizes NewHarness per (seed, numApps) so test files
// in one binary reuse the generated corpus.
func SharedHarness(corpusSeed int64, numApps int) (*Harness, error) {
	if numApps <= 0 {
		numApps = synth.MinApps
	}
	key := fmt.Sprintf("%d/%d", corpusSeed, numApps)
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if h, ok := sharedHarneses[key]; ok {
		return h, nil
	}
	h, err := NewHarness(corpusSeed, numApps)
	if err == nil {
		sharedHarneses[key] = h
	}
	return h, err
}

// App returns the i-th corpus app.
func (h *Harness) App(i int) *core.App { return h.ds.Apps[i].App }

// Len returns the corpus size.
func (h *Harness) Len() int { return len(h.ds.Apps) }

// ChainResult is the outcome of running one transform chain on one
// app: which steps actually applied, the chain's invariant, and every
// divergence the oracle found (empty = the invariant held).
type ChainResult struct {
	AppIndex    int          `json:"app_index"`
	AppName     string       `json:"app_name"`
	Chain       []Step       `json:"chain"`
	Applied     []string     `json:"applied,omitempty"`
	Invariant   string       `json:"invariant"`
	Divergences []Divergence `json:"divergences,omitempty"`
}

// Diverged reports whether the oracle found any divergence.
func (r *ChainResult) Diverged() bool { return len(r.Divergences) > 0 }

// RunChain applies the chain to app appIdx's policy, checks the
// original and transformed bundles with the same checker, and diffs
// the reports under the chain's invariant.
func (h *Harness) RunChain(appIdx int, chain []Step) (*ChainResult, error) {
	if appIdx < 0 || appIdx >= len(h.ds.Apps) {
		return nil, fmt.Errorf("metatest: app index %d out of range [0,%d)", appIdx, len(h.ds.Apps))
	}
	app := h.ds.Apps[appIdx].App
	html, applied, err := ApplyChain(app.PolicyHTML, chain)
	if err != nil {
		return nil, err
	}
	checker := h.base
	if ChainNeedsSynonyms(chain) {
		checker = h.syn
	}
	orig := checker.Check(app)
	tapp := *app
	tapp.PolicyHTML = html
	trans := checker.Check(&tapp)
	inv := ChainInvariant(chain)
	return &ChainResult{
		AppIndex:    appIdx,
		AppName:     app.Name,
		Chain:       chain,
		Applied:     applied,
		Invariant:   inv.String(),
		Divergences: DiffReports(orig, trans, inv),
	}, nil
}

// SweepConfig sizes an invariance sweep.
type SweepConfig struct {
	// AppCount apps are sampled at indices (i*Stride) mod corpus size,
	// covering every planted verdict class of the synth layout.
	AppCount int
	Stride   int
	// StepSeeds are applied to every transform on every sampled app.
	StepSeeds []int64
	// ChainLen > 0 additionally runs one composite chain of that many
	// randomly-chosen transforms per app (seeded deterministically).
	ChainLen int
	// Transforms defaults to All() (every non-planted transform).
	Transforms []*Transform
}

// SweepStats summarizes a sweep.
type SweepStats struct {
	Apps       int            `json:"apps"`
	Transforms int            `json:"transforms"`
	Runs       int            `json:"runs"`
	Applied    int            `json:"applied"`
	Divergent  []*ChainResult `json:"divergent,omitempty"`
}

// AppIndices returns the deduplicated sample the config selects from a
// corpus of n apps.
func (cfg SweepConfig) AppIndices(n int) []int {
	stride := cfg.Stride
	if stride <= 0 {
		stride = 1
	}
	seen := map[int]bool{}
	var out []int
	for i := 0; i < cfg.AppCount; i++ {
		idx := (i * stride) % n
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// Sweep runs every (app, transform, seed) single-step chain plus the
// optional composite chains, collecting divergent runs. Everything is
// deterministic in (corpus seed, config).
func (h *Harness) Sweep(cfg SweepConfig) (*SweepStats, error) {
	transforms := cfg.Transforms
	if transforms == nil {
		transforms = All()
	}
	seeds := cfg.StepSeeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	apps := cfg.AppIndices(h.Len())
	stats := &SweepStats{Apps: len(apps), Transforms: len(transforms)}
	for _, appIdx := range apps {
		for _, t := range transforms {
			for _, seed := range seeds {
				res, err := h.RunChain(appIdx, []Step{{Name: t.Name, Seed: seed}})
				if err != nil {
					return stats, err
				}
				stats.Runs++
				stats.Applied += len(res.Applied)
				if res.Diverged() {
					stats.Divergent = append(stats.Divergent, res)
				}
			}
		}
		if cfg.ChainLen > 0 {
			for _, seed := range seeds {
				chain := ComposeChain(transforms, cfg.ChainLen, seed*1_000_003+int64(appIdx))
				res, err := h.RunChain(appIdx, chain)
				if err != nil {
					return stats, err
				}
				stats.Runs++
				stats.Applied += len(res.Applied)
				if res.Diverged() {
					stats.Divergent = append(stats.Divergent, res)
				}
			}
		}
	}
	return stats, nil
}

// ComposeChain deterministically builds a chain of n distinct
// transforms (fewer when the pool is smaller) with derived step seeds.
func ComposeChain(pool []*Transform, n int, seed int64) []Step {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(pool))
	if n > len(pool) {
		n = len(pool)
	}
	chain := make([]Step, 0, n)
	for _, pi := range perm[:n] {
		chain = append(chain, Step{Name: pool[pi].Name, Seed: rng.Int63n(1 << 30)})
	}
	return chain
}

// HarvestPhrases collects the resource phrases the policy analyses of
// the sampled apps actually produced — the phrase population the ESA
// differential oracle should agree on.
func (h *Harness) HarvestPhrases(appIdxs []int, max int) []string {
	seen := map[string]bool{}
	var out []string
	for _, idx := range appIdxs {
		if idx < 0 || idx >= h.Len() {
			continue
		}
		r := h.base.Check(h.ds.Apps[idx].App)
		if r.Policy == nil {
			continue
		}
		for _, st := range r.Policy.Statements {
			for _, res := range st.Resources {
				if !seen[res] {
					seen[res] = true
					out = append(out, res)
					if len(out) >= max {
						return out
					}
				}
			}
		}
	}
	return out
}

// ESACheck runs the vec-vs-map differential over phrases harvested
// from the sampled apps.
func (h *Harness) ESACheck(appIdxs []int, maxPhrases, maxPairs int) []Divergence {
	phrases := h.HarvestPhrases(appIdxs, maxPhrases)
	return ESADifferential(esa.Default(), phrases, maxPairs, 1e-12)
}
