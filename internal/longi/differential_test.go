package longi

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"ppchecker/internal/synth"
)

// corpusShape returns the differential corpus size: the acceptance
// floor (20 apps × 5 versions) by default, a larger sweep when
// LONGI_FULL is set (the nightly CI job).
func corpusShape() (apps, versions int) {
	if os.Getenv("LONGI_FULL") != "" {
		return 40, 8
	}
	return 20, 5
}

func testCorpus(t *testing.T) *synth.VersionedCorpus {
	t.Helper()
	apps, versions := corpusShape()
	corpus, err := synth.GenerateVersioned(synth.VersionedConfig{Seed: 42, Apps: apps, Versions: versions})
	if err != nil {
		t.Fatalf("generate versioned corpus: %v", err)
	}
	return corpus
}

func runOver(t *testing.T, store Store, corpus *synth.VersionedCorpus) *Result {
	t.Helper()
	eng := NewEngine(store, Config{})
	res, err := RunCorpus(context.Background(), eng, corpus, RunOptions{Workers: 4})
	if err != nil {
		t.Fatalf("run corpus: %v", err)
	}
	return res
}

// TestDeltaVsColdDifferential is the tentpole's correctness bar: over
// a seeded versioned corpus, a delta re-run against the warm artifact
// store and a cold full run produce bit-identical reports, drift
// findings, and RunStats — and the delta run earns at least the 60%
// stage-cache hit rate the acceptance criteria demand (in practice it
// is 100%: every stage of every version is already stored).
func TestDeltaVsColdDifferential(t *testing.T) {
	corpus := testCorpus(t)
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	warmup := runOver(t, store, corpus) // populates the store
	delta := runOver(t, store, corpus)  // sparse delta run
	cold := runOver(t, NewMemStore(0), corpus)

	if diffs := CompareRuns(delta, cold); len(diffs) > 0 {
		t.Fatalf("delta run differs from cold run (%d diffs), first: %s", len(diffs), diffs[0])
	}
	if diffs := CompareRuns(warmup, cold); len(diffs) > 0 {
		t.Fatalf("warmup run differs from cold run (%d diffs), first: %s", len(diffs), diffs[0])
	}

	if hr := delta.Cache.HitRate(); hr < 0.60 {
		t.Errorf("delta-run stage-cache hit rate = %.2f, want >= 0.60 (%+v)", hr, delta.Cache)
	}
	if delta.Cache.Puts != 0 {
		t.Errorf("delta run stored %d new artifacts, want 0", delta.Cache.Puts)
	}
	// Even the first run is incremental across versions: unchanged
	// sections of version N+1 hit version N's artifacts.
	if warmup.Cache.Hits == 0 {
		t.Error("warmup run saw no intra-corpus cache hits; version chains share no artifacts?")
	}
	if warmup.Stats.Drift == 0 {
		t.Error("corpus produced no drift findings at all")
	}
}

// artifactFiles lists every artifact file under one stage of a
// DirStore root.
func artifactFiles(t *testing.T, root, stage string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(filepath.Join(root, stage), func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(p) == ".json" {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s artifacts: %v", stage, err)
	}
	return files
}

// TestDifferentialCatchesKeyCollision proves the oracle is not blind:
// if two distinct inputs ever mapped to one key — simulated by copying
// one policy artifact's bytes over another's — the delta run diverges
// and CompareRuns reports it.
func TestDifferentialCatchesKeyCollision(t *testing.T) {
	corpus := testCorpus(t)
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := runOver(t, store, corpus)

	// Find two policy artifacts with different content and alias them.
	files := artifactFiles(t, dir, stagePolicy)
	if len(files) < 2 {
		t.Fatalf("need >= 2 policy artifacts, have %d", len(files))
	}
	var src, dst string
	srcData, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files[1:] {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, srcData) {
			src, dst = files[0], f
			break
		}
	}
	if dst == "" {
		t.Fatal("all policy artifacts identical; corpus too uniform for a collision plant")
	}
	if err := os.WriteFile(dst, srcData, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("planted collision: %s now carries %s's output", filepath.Base(dst), filepath.Base(src))

	delta := runOver(t, store, corpus)
	if diffs := CompareRuns(delta, cold); len(diffs) == 0 {
		t.Fatal("oracle is blind: planted cache-key collision produced an identical run")
	}
}

// TestDifferentialCatchesStaleArtifact plants the other corruption
// mode: an artifact that decodes fine but holds outdated content (a
// detect artifact emptied of its findings, as if an input change had
// failed to invalidate it). The differential must notice.
func TestDifferentialCatchesStaleArtifact(t *testing.T) {
	corpus := testCorpus(t)
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := runOver(t, store, corpus)

	// Overwrite every detect artifact that holds findings with a valid
	// empty one.
	stale := []byte(`{"incomplete":null,"incorrect":null,"inconsistent":null}`)
	planted := 0
	for _, f := range artifactFiles(t, dir, stageDetect) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(data, stale) {
			continue
		}
		if err := os.WriteFile(f, stale, 0o644); err != nil {
			t.Fatal(err)
		}
		planted++
	}
	if planted == 0 {
		t.Fatal("no detect artifact carried findings; nothing to stale out")
	}

	delta := runOver(t, store, corpus)
	if diffs := CompareRuns(delta, cold); len(diffs) == 0 {
		t.Fatalf("oracle is blind: %d stale artifacts produced an identical run", planted)
	}
}

// TestPlantedDriftClasses checks the drift differ against generator
// ground truth: every planted drift surfaces with the expected class,
// every drift class is exercised somewhere in the corpus, and
// churn-only transitions (policy reworded, description reworded,
// library added) emit no drift at all.
func TestPlantedDriftClasses(t *testing.T) {
	corpus := testCorpus(t)
	res := runOver(t, NewMemStore(0), corpus)

	classOf := func(p synth.PlantedDrift) DriftClass {
		switch {
		case !p.Appeared:
			return DriftResolved
		case p.PolicyChanged:
			return DriftPolicyWeakened
		default:
			return DriftSilentBehavior
		}
	}

	seenClass := map[DriftClass]int{}
	for ai, va := range corpus.Apps {
		hist := res.Histories[ai]
		// Which transitions have planted drift.
		plantedAt := map[int]bool{}
		for _, p := range va.Drifts {
			plantedAt[p.ToVersion] = true
			want := classOf(p)
			found := false
			for _, d := range hist.Drift {
				if d.FromVersion == p.FromVersion && d.ToVersion == p.ToVersion &&
					d.Class == want && d.Info == string(p.Info) && d.Kind == "incomplete" {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: planted %s drift on %q at v%d→v%d not reported; emitted: %+v",
					va.Pkg, want, p.Info, p.FromVersion, p.ToVersion, hist.Drift)
				continue
			}
			seenClass[want]++
		}
		// No drift may surface at transitions with no planted drift.
		for _, d := range hist.Drift {
			if !plantedAt[d.ToVersion] {
				t.Errorf("%s: unplanted drift at v%d→v%d: %+v (mutation %q)",
					va.Pkg, d.FromVersion, d.ToVersion, d, va.Versions[d.ToVersion-1].Mutation)
			}
		}
	}
	for _, c := range []DriftClass{DriftSilentBehavior, DriftPolicyWeakened, DriftResolved} {
		if seenClass[c] == 0 {
			t.Errorf("drift class %s never exercised by the corpus", c)
		}
	}
}

// TestVersionedCorpusDeterminism: History(i) is a pure function — two
// generators with the same seed produce byte-identical versions, and
// sections untouched by a mutation reproduce their bytes exactly.
func TestVersionedCorpusDeterminism(t *testing.T) {
	a := synth.NewVersionedFirehose(17, 5)
	b := synth.NewVersionedFirehose(17, 5)
	for i := int64(0); i < 6; i++ {
		va, err := a.History(i)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.History(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(va.Versions) != len(vb.Versions) {
			t.Fatalf("app %d: version counts differ", i)
		}
		for v := range va.Versions {
			x, y := va.Versions[v].App, vb.Versions[v].App
			if x.PolicyHTML != y.PolicyHTML || x.Description != y.Description {
				t.Errorf("app %d v%d: text not deterministic", i, v+1)
			}
		}
		// Churn-only mutations leave the other sections byte-identical.
		for v := 1; v < len(va.Versions); v++ {
			prev, cur := va.Versions[v-1], va.Versions[v]
			switch cur.Mutation {
			case synth.MutPolicyChurn:
				if cur.App.PolicyHTML == prev.App.PolicyHTML {
					t.Errorf("app %d v%d: policy churn changed nothing", i, v+1)
				}
				if cur.App.Description != prev.App.Description {
					t.Errorf("app %d v%d: policy churn touched the description", i, v+1)
				}
			case synth.MutDescChurn:
				if cur.App.Description == prev.App.Description {
					t.Errorf("app %d v%d: desc churn changed nothing", i, v+1)
				}
				if cur.App.PolicyHTML != prev.App.PolicyHTML {
					t.Errorf("app %d v%d: desc churn touched the policy", i, v+1)
				}
			case synth.MutWeakenPolicy, synth.MutFixPolicy:
				if cur.App.PolicyHTML == prev.App.PolicyHTML {
					t.Errorf("app %d v%d: %s did not change the policy", i, v+1, cur.Mutation)
				}
			}
		}
	}
}
