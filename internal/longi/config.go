package longi

import (
	"encoding/json"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/static"
)

// Config is the checker configuration the engine fingerprints into
// every stage key. It deliberately covers only the knobs that change
// analysis *results*; observers, caches, and stat scopes are
// execution details and stay out of the fingerprint. The zero value is
// the paper-default configuration.
//
// Fields are phrased so that the zero value means "default" (disable
// flags instead of enable flags where the default is on): two callers
// that mean the same configuration must produce the same fingerprint.
type Config struct {
	// Threshold overrides the ESA similarity threshold; 0 means the
	// default.
	Threshold float64 `json:"threshold"`
	// SynonymExpansion switches the policy analyzer to the extended
	// verb matcher.
	SynonymExpansion bool `json:"synonym_expansion"`
	// ConstraintAnalysis enables conditional-statement analysis.
	ConstraintAnalysis bool `json:"constraint_analysis"`
	// DisableDisclaimers turns off disclaimer suppression (on by
	// default).
	DisableDisclaimers bool `json:"disable_disclaimers"`
	// DisableURIAnalysis / DisableReachability turn off the static
	// ablations that default to on.
	DisableURIAnalysis  bool `json:"disable_uri_analysis"`
	DisableReachability bool `json:"disable_reachability"`
}

// Fingerprint returns the canonical byte form of the configuration,
// mixed into every stage key so artifacts computed under one
// configuration can never satisfy another. Thresholds are normalized
// (0 → the concrete default) before encoding, so spelling the default
// explicitly does not split the cache.
func (c Config) Fingerprint() []byte {
	norm := c
	if norm.Threshold == 0 {
		norm.Threshold = esa.DefaultThreshold
	}
	// Struct field order is fixed at compile time, so this marshal is
	// canonical.
	b, err := json.Marshal(norm)
	if err != nil {
		// A flat struct of bools and a float cannot fail to marshal.
		panic("longi: config fingerprint: " + err.Error())
	}
	return b
}

// CheckerOptions translates the configuration into core checker
// options. Shared caches, observers, and stat scopes are appended by
// the caller; they do not affect results and are not fingerprinted.
func (c Config) CheckerOptions() []core.CheckerOption {
	var opts []core.CheckerOption
	if c.SynonymExpansion {
		opts = append(opts, core.WithSynonymExpansion())
	}
	if c.ConstraintAnalysis {
		opts = append(opts, core.WithConstraintAnalysis())
	}
	if c.Threshold != 0 {
		opts = append(opts, core.WithESAThreshold(c.Threshold))
	}
	if c.DisableDisclaimers {
		opts = append(opts, core.WithDisclaimerHandling(false))
	}
	so := static.DefaultOptions()
	so.URIAnalysis = !c.DisableURIAnalysis
	so.Reachability = !c.DisableReachability
	opts = append(opts, core.WithStaticOptions(so))
	return opts
}
