package longi

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// reportJSON serializes a report with its Timings stripped — the one
// field CheckSafe populates and the longitudinal engine deliberately
// does not.
func reportJSON(t *testing.T, r *core.Report) []byte {
	t.Helper()
	clone := *r
	clone.Timings = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

// TestCheckVersionMatchesCheckSafe proves the incremental engine is a
// drop-in for the monolithic pipeline on healthy inputs: for a slice
// of firehose apps, CheckVersion (cold store) and CheckSafe produce
// the same findings, analyses, and degradation state. Because the
// engine canonicalizes fresh computes through a JSON round trip, the
// comparison also round-trips the CheckSafe report, which erases only
// encoding-invisible differences (nil vs empty slices).
func TestCheckVersionMatchesCheckSafe(t *testing.T) {
	fh := synth.NewFirehose(99)
	eng := NewEngine(NewMemStore(0), Config{})
	checker := core.NewChecker(eng.Config().CheckerOptions()...)
	ref := core.NewChecker(eng.Config().CheckerOptions()...)
	ctx := context.Background()

	for i := int64(0); i < 16; i++ {
		ga, err := fh.App(i)
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		got, err := eng.CheckVersion(ctx, checker, ga.App)
		if err != nil {
			t.Fatalf("app %d: CheckVersion: %v", i, err)
		}
		want, err := ref.CheckSafe(ctx, ga.App)
		if err != nil {
			t.Fatalf("app %d: CheckSafe: %v", i, err)
		}
		// Round-trip the reference the same way the engine's artifact
		// store does, so the comparison is encoding-canonical.
		var wantCanon core.Report
		if err := json.Unmarshal(reportJSON(t, want), &wantCanon); err != nil {
			t.Fatalf("app %d: canonicalize: %v", i, err)
		}
		g, w := reportJSON(t, got), reportJSON(t, &wantCanon)
		if !bytes.Equal(g, w) {
			t.Errorf("app %d: CheckVersion != CheckSafe\n got: %s\nwant: %s", i, g, w)
		}
	}
	if s := eng.Stats(); s.Puts == 0 {
		t.Fatalf("cold run stored no artifacts: %+v", s)
	}
}

// TestCheckVersionCacheHitIdentical proves that re-analyzing the same
// version against the warm store returns a byte-identical report
// without recomputing any stage.
func TestCheckVersionCacheHitIdentical(t *testing.T) {
	fh := synth.NewFirehose(7)
	eng := NewEngine(NewMemStore(0), Config{})
	checker := core.NewChecker(eng.Config().CheckerOptions()...)
	ctx := context.Background()

	ga, err := fh.App(1) // archetype with missed info → findings present
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.CheckVersion(ctx, checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()

	// Second pass must be all hits, no computes: poison the hook so any
	// compute fails loudly.
	eng.stageHook = func(ctx context.Context, stage string) error {
		t.Errorf("stage %q recomputed on warm store", stage)
		return nil
	}
	second, err := eng.CheckVersion(ctx, checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	warm := eng.Stats()
	if got, want := warm.Hits-cold.Hits, int64(4); got != want {
		t.Errorf("warm pass hits = %d, want %d", got, want)
	}
	if warm.Puts != cold.Puts {
		t.Errorf("warm pass stored artifacts: %d -> %d", cold.Puts, warm.Puts)
	}
	a, b := reportJSON(t, first), reportJSON(t, second)
	if !bytes.Equal(a, b) {
		t.Errorf("warm report differs from cold:\ncold: %s\nwarm: %s", a, b)
	}
	if !second.HasProblem() {
		t.Error("archetype 1 app should carry findings")
	}
}

// TestStageKeyConfigSeparation: the same inputs under a different
// checker configuration must never share artifacts.
func TestStageKeyConfigSeparation(t *testing.T) {
	store := NewMemStore(0)
	a := NewEngine(store, Config{})
	b := NewEngine(store, Config{SynonymExpansion: true})
	fh := synth.NewFirehose(3)
	ga, err := fh.App(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := a.CheckVersion(ctx, core.NewChecker(a.Config().CheckerOptions()...), ga.App); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CheckVersion(ctx, core.NewChecker(b.Config().CheckerOptions()...), ga.App); err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.Hits != 0 {
		t.Errorf("different config hit the other config's artifacts: %+v", s)
	}
}

// TestDirStoreRoundTrip exercises the durable store through the
// engine: a second engine over the same directory must hit every
// artifact the first one stored.
func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fh := synth.NewFirehose(11)
	ga, err := fh.App(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng1 := NewEngine(store1, Config{})
	r1, err := eng1.CheckVersion(ctx, core.NewChecker(eng1.Config().CheckerOptions()...), ga.App)
	if err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(store2, Config{})
	eng2.stageHook = func(ctx context.Context, stage string) error {
		t.Errorf("stage %q recomputed against durable warm store", stage)
		return nil
	}
	r2, err := eng2.CheckVersion(ctx, core.NewChecker(eng2.Config().CheckerOptions()...), ga.App)
	if err != nil {
		t.Fatal(err)
	}
	if s := eng2.Stats(); s.Misses != 0 {
		t.Errorf("durable store missed: %+v", s)
	}
	a, b := reportJSON(t, r1), reportJSON(t, r2)
	if !bytes.Equal(a, b) {
		t.Errorf("durable round trip changed the report:\n1: %s\n2: %s", a, b)
	}
}

// TestCorruptArtifactIsMissNotError: a truncated artifact file must
// degrade to a recompute that still yields the cold-run report.
func TestCorruptArtifactIsMissNotError(t *testing.T) {
	store := NewMemStore(0)
	eng := NewEngine(store, Config{})
	fh := synth.NewFirehose(5)
	ga, err := fh.App(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	checker := core.NewChecker(eng.Config().CheckerOptions()...)
	r1, err := eng.CheckVersion(ctx, checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every stored artifact in place.
	store.mu.Lock()
	for k := range store.m {
		store.m[k] = []byte(`{"truncated`)
	}
	store.mu.Unlock()

	r2, err := eng.CheckVersion(ctx, checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.StoreErrors == 0 {
		t.Error("corrupt artifacts went unnoticed in stats")
	}
	a, b := reportJSON(t, r1), reportJSON(t, r2)
	if !bytes.Equal(a, b) {
		t.Errorf("recompute after corruption changed the report:\n1: %s\n2: %s", a, b)
	}
}
