// Package longi is the incremental longitudinal compliance engine: it
// analyzes an app as a *sequence of versions*, content-addresses every
// pipeline stage input (policy-text hash, dex hash, description hash,
// checker-config fingerprint), and caches stage outputs in a durable
// artifact store keyed by those hashes. Re-analyzing version N+1 then
// recomputes only the stages whose inputs actually changed — a full
// corpus re-run becomes a sparse delta run — and a cross-version
// differ turns the per-version reports into DriftFindings ("v7 started
// reading contacts but the policy never changed").
//
// The correctness bar, enforced by the differential tests: a delta run
// against a warm store and a cold run from scratch produce
// bit-identical reports and run statistics.
package longi

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Frame canonically serializes a stage identity plus its input
// sections into the hash pre-image behind StageKey. The layout is
// injective by construction — every variable-length component is
// length-prefixed and the section count is explicit — so no two
// distinct (stage, sections) tuples share a frame:
//
//	uvarint(len(stage)) stage
//	uvarint(len(sections))
//	{ uvarint(len(section)) section }*
//
// Injectivity of the frame (not just collision resistance of the hash)
// is what the FuzzStageKey target checks: concatenation-style
// ambiguities ("ab"+"c" vs "a"+"bc") must be impossible at the framing
// layer, before sha256 is even involved.
func Frame(stage string, sections ...[]byte) []byte {
	n := len(stage) + 3*binary.MaxVarintLen64
	for _, s := range sections {
		n += len(s) + binary.MaxVarintLen64
	}
	buf := make([]byte, 0, n)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	put(uint64(len(stage)))
	buf = append(buf, stage...)
	put(uint64(len(sections)))
	for _, s := range sections {
		put(uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// StageKey is the content address of one stage computation: the sha256
// of the canonical frame, hex-encoded. The stage name acts as a domain
// separator, so identical inputs fed to different stages can never
// alias each other's artifacts.
func StageKey(stage string, sections ...[]byte) string {
	sum := sha256.Sum256(Frame(stage, sections...))
	return hex.EncodeToString(sum[:])
}
