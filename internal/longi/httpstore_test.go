package longi

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPStoreRoundTrip(t *testing.T) {
	backend := NewMemStore(0)
	srv := httptest.NewServer(NewStoreHandler(backend))
	defer srv.Close()
	client := NewHTTPStore(srv.URL, nil)

	key := strings.Repeat("ab", 16)
	if _, hit, err := client.Get("policy", key); err != nil || hit {
		t.Fatalf("empty store: hit=%v err=%v", hit, err)
	}
	want := []byte(`{"stage":"policy"}`)
	if err := client.Put("policy", key, want); err != nil {
		t.Fatal(err)
	}
	data, hit, err := client.Get("policy", key)
	if err != nil || !hit || string(data) != string(want) {
		t.Fatalf("get after put: %q hit=%v err=%v", data, hit, err)
	}
	// The artifact landed in the backing store under the same address.
	data, hit, err = backend.Get("policy", key)
	if err != nil || !hit || string(data) != string(want) {
		t.Fatalf("backend: %q hit=%v err=%v", data, hit, err)
	}
	// A different stage is a different address space.
	if _, hit, _ := client.Get("desc", key); hit {
		t.Fatal("stage must namespace artifacts")
	}
}

func TestHTTPStoreRejectsBadAddresses(t *testing.T) {
	srv := httptest.NewServer(NewStoreHandler(NewMemStore(0)))
	defer srv.Close()
	client := NewHTTPStore(srv.URL, nil)

	// Client-side validation refuses before any request is made.
	if _, _, err := client.Get("Policy!", strings.Repeat("ab", 16)); err == nil {
		t.Fatal("invalid stage accepted")
	}
	if err := client.Put("policy", "../../etc/passwd", nil); err == nil {
		t.Fatal("traversal key accepted")
	}
}

func TestHTTPStoreDeadShardIsAnError(t *testing.T) {
	srv := httptest.NewServer(NewStoreHandler(NewMemStore(0)))
	srv.Close() // dead on arrival
	client := NewHTTPStore(srv.URL, nil)
	if _, _, err := client.Get("policy", strings.Repeat("ab", 16)); err == nil {
		t.Fatal("dead shard must surface as an error (the sharded layer degrades it to a miss)")
	}
	if err := client.Put("policy", strings.Repeat("ab", 16), []byte("x")); err == nil {
		t.Fatal("dead shard put must error")
	}
}
