package longi

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"ppchecker/internal/stream"
	"ppchecker/internal/synth"
)

// collectResults runs a VersionSource through the streaming layer and
// returns the per-item reports keyed by item name, plus the stats.
func collectResults(t *testing.T, eng *Engine, apps int64, j *stream.Journal, rp *stream.Replay) (map[string][]byte, stream.Stats) {
	t.Helper()
	fh := synth.NewVersionedFirehose(31, 4)
	src := NewVersionSource(eng, fh, apps)
	got := map[string][]byte{}
	var mu sync.Mutex // OnResult fires from concurrent workers
	stats, err := stream.Run(context.Background(), src, stream.Options{
		Workers:        4,
		CheckerOptions: eng.Config().CheckerOptions(),
		Journal:        j,
		Replay:         rp,
		OnResult: func(r stream.Result) {
			if r.Report == nil {
				return // replayed-over items carry no report
			}
			mu.Lock()
			got[r.Name] = reportJSON(t, r.Report)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("stream run: %v", err)
	}
	return got, stats
}

// TestVersionSourceThroughStream drives app histories through the
// bounded-queue streaming layer with the incremental engine doing the
// analysis: a second pass over the same source and warm store must be
// all cache hits and byte-identical per-version reports, in any worker
// interleaving.
func TestVersionSourceThroughStream(t *testing.T) {
	const apps = 6
	store := NewMemStore(0)
	eng := NewEngine(store, Config{})

	first, s1 := collectResults(t, eng, apps, nil, nil)
	if s1.Checked == 0 {
		t.Fatalf("stream checked nothing: %+v", s1.RunStats)
	}
	if int64(len(first)) != int64(s1.Checked+s1.Degraded) {
		t.Fatalf("collected %d reports, stream counted %d", len(first), s1.Checked+s1.Degraded)
	}
	cold := eng.Stats()
	if cold.Puts == 0 {
		t.Fatal("first pass stored no artifacts")
	}

	eng.stageHook = func(ctx context.Context, stage string) error {
		t.Errorf("stage %q recomputed on warm store", stage)
		return nil
	}
	second, s2 := collectResults(t, eng, apps, nil, nil)
	if s2.Checked != s1.Checked || s2.Degraded != s1.Degraded {
		t.Errorf("second pass stats differ: %+v vs %+v", s2.RunStats, s1.RunStats)
	}
	warm := eng.Stats()
	if warm.Puts != cold.Puts {
		t.Errorf("warm pass stored artifacts: %d -> %d", cold.Puts, warm.Puts)
	}
	if warm.Hits == cold.Hits {
		t.Error("warm pass hit nothing")
	}
	var names []string
	for name := range first {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !bytes.Equal(first[name], second[name]) {
			t.Errorf("%s: warm report differs from cold:\ncold: %s\nwarm: %s",
				name, first[name], second[name])
		}
	}
}

// TestVersionSourceJournalResume proves version items checkpoint and
// replay like any other stream item: a resumed run over the journal of
// a completed run re-analyzes nothing and folds to identical RunStats.
func TestVersionSourceJournalResume(t *testing.T) {
	const apps = 4
	path := filepath.Join(t.TempDir(), "longi.journal")
	j, replay, err := stream.OpenJournal(path, "longi-test", stream.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay != nil && len(replay.Done) != 0 {
		t.Fatalf("fresh journal has replay state: %+v", replay)
	}
	eng := NewEngine(NewMemStore(0), Config{})
	_, s1 := collectResults(t, eng, apps, j, replay)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replay2, err := stream.OpenJournal(path, "longi-test", stream.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replay2.Done) == 0 {
		t.Fatal("journal recovered no completed items")
	}
	// The resumed engine has a cold store — if any item were wrongly
	// re-analyzed it would still succeed, so assert via Replayed.
	eng2 := NewEngine(NewMemStore(0), Config{})
	eng2.stageHook = func(ctx context.Context, stage string) error {
		t.Errorf("stage %q analyzed during a full-journal resume", stage)
		return nil
	}
	_, s2 := collectResults(t, eng2, apps, j2, replay2)
	if s2.Replayed == 0 || s2.Reanalyzed != 0 {
		t.Errorf("resume replayed=%d reanalyzed=%d, want all replayed", s2.Replayed, s2.Reanalyzed)
	}
	a, _ := json.Marshal(s1.RunStats)
	b, _ := json.Marshal(s2.RunStats)
	if !bytes.Equal(a, b) {
		t.Errorf("resumed RunStats differ:\nfirst:  %s\nresume: %s", a, b)
	}
}

// TestVersionSourceHashBindsConfig: the journal hash must change when
// the checker configuration changes, so a resume under a different
// config re-analyzes rather than replaying stale outcomes.
func TestVersionSourceHashBindsConfig(t *testing.T) {
	hashesOf := func(cfg Config) map[string]string {
		eng := NewEngine(NewMemStore(0), cfg)
		src := NewVersionSource(eng, synth.NewVersionedFirehose(31, 3), 2)
		out := map[string]string{}
		for {
			it, err := src.Next(context.Background())
			if err != nil {
				break
			}
			out[it.Name] = it.Hash
		}
		return out
	}
	base := hashesOf(Config{})
	same := hashesOf(Config{})
	other := hashesOf(Config{SynonymExpansion: true})
	if len(base) == 0 {
		t.Fatal("source yielded no items")
	}
	for name, h := range base {
		if same[name] != h {
			t.Errorf("%s: hash not deterministic", name)
		}
		if other[name] == h {
			t.Errorf("%s: hash ignores checker config", name)
		}
	}
}
