package longi

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/eval"
	"ppchecker/internal/synth"
)

// These tests are the artifact-store twin of core's AnalysisCache
// panic-poisoning regression: an exhausted retry budget (or a panicking
// stage) must never leave a partial stage output in the store. The
// invariant under test: artifacts exist for exactly the stages that
// completed, and once the fault clears, a run over the same store is
// bit-identical to a cold run — nothing stale, nothing partial.

// storeKeysFor computes the version's stage keys the way the engine
// does (in-package test, so we can reach the fingerprint).
func storeKeysFor(t *testing.T, e *Engine, app *core.App) (pkey, dkey, skey string) {
	t.Helper()
	pkey = StageKey(stagePolicy, e.fp, []byte(app.PolicyHTML))
	dkey = StageKey(stageDesc, e.fp, []byte(app.Description))
	apkBytes, err := apk.Encode(app.APK)
	if err != nil {
		t.Fatalf("encode apk: %v", err)
	}
	skey = StageKey(stageStatic, e.fp, apkBytes)
	return pkey, dkey, skey
}

func mustHave(t *testing.T, s Store, stage, key string, want bool) {
	t.Helper()
	_, ok, err := s.Get(stage, key)
	if err != nil {
		t.Fatalf("store get %s: %v", stage, err)
	}
	if ok != want {
		t.Errorf("store %s artifact present = %v, want %v", stage, ok, want)
	}
}

// TestExhaustedRetriesNeverPoisonStore drives eval.CheckApp to retry
// exhaustion — every attempt's static stage blocks until the per-
// attempt timeout — and proves the store holds the completed stages
// (policy, desc) but no static or detect artifact. A follow-up healthy
// run over the same store must then match a cold run byte-for-byte.
func TestExhaustedRetriesNeverPoisonStore(t *testing.T) {
	fh := synth.NewFirehose(23)
	ga, err := fh.App(1)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore(0)
	eng := NewEngine(store, Config{})
	eng.stageHook = func(ctx context.Context, stage string) error {
		if stage == stageStatic {
			<-ctx.Done() // hold the stage until the attempt deadline
			return ctx.Err()
		}
		return nil
	}
	checker := core.NewChecker(eng.Config().CheckerOptions()...)
	opts := eval.AttemptOptions{
		Timeout:      50 * time.Millisecond,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}
	run := func(ctx context.Context, c *core.Checker) (*core.Report, error) {
		return eng.CheckVersion(ctx, c, ga.App)
	}
	rep, outcome, retries := eval.CheckApp(context.Background(), checker, ga.App.Name, run, opts)
	if !opts.Exhausted(outcome, rep, retries) {
		t.Fatalf("retry budget not exhausted: outcome=%v retries=%d partial=%v",
			outcome, retries, rep.Partial)
	}

	pkey, dkey, skey := storeKeysFor(t, eng, ga.App)
	mustHave(t, store, stagePolicy, pkey, true)
	mustHave(t, store, stageDesc, dkey, true)
	mustHave(t, store, stageStatic, skey, false)
	// No detect artifact of any kind may exist: findings computed over
	// a degraded pipeline are partial outputs.
	if n := countStage(store, stageDetect); n != 0 {
		t.Errorf("%d detect artifacts cached from a degraded run, want 0", n)
	}

	// Fault cleared: the same store must now converge to the cold
	// answer.
	eng.stageHook = nil
	healed, err := eng.CheckVersion(context.Background(), checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := NewEngine(NewMemStore(0), Config{})
	cold, err := coldEng.CheckVersion(context.Background(),
		core.NewChecker(coldEng.Config().CheckerOptions()...), ga.App)
	if err != nil {
		t.Fatal(err)
	}
	h, c := reportJSON(t, healed), reportJSON(t, cold)
	if !bytes.Equal(h, c) {
		t.Errorf("healed run differs from cold run:\nhealed: %s\ncold:   %s", h, c)
	}
}

// TestPanickingStageNeverPoisonsStore is the panic variant: a stage
// that panics mid-compute degrades the report (recovered) and stores
// nothing; the next run recomputes and matches cold.
func TestPanickingStageNeverPoisonsStore(t *testing.T) {
	fh := synth.NewFirehose(29)
	ga, err := fh.App(2)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore(0)
	eng := NewEngine(store, Config{})
	eng.stageHook = func(ctx context.Context, stage string) error {
		if stage == stagePolicy {
			panic("synthetic analyzer fault")
		}
		return nil
	}
	checker := core.NewChecker(eng.Config().CheckerOptions()...)
	rep, err := eng.CheckVersion(context.Background(), checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || !rep.DegradedStage(core.StagePolicy) {
		t.Fatalf("panicking policy stage not degraded: %+v", rep.Degraded)
	}

	pkey, dkey, _ := storeKeysFor(t, eng, ga.App)
	mustHave(t, store, stagePolicy, pkey, false)
	mustHave(t, store, stageDesc, dkey, true)
	if n := countStage(store, stageDetect); n != 0 {
		t.Errorf("%d detect artifacts cached from a panicked run, want 0", n)
	}

	eng.stageHook = nil
	healed, err := eng.CheckVersion(context.Background(), checker, ga.App)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := NewEngine(NewMemStore(0), Config{})
	cold, err := coldEng.CheckVersion(context.Background(),
		core.NewChecker(coldEng.Config().CheckerOptions()...), ga.App)
	if err != nil {
		t.Fatal(err)
	}
	h, c := reportJSON(t, healed), reportJSON(t, cold)
	if !bytes.Equal(h, c) {
		t.Errorf("healed run differs from cold run:\nhealed: %s\ncold:   %s", h, c)
	}
}

// countStage counts a MemStore's artifacts under one stage prefix.
func countStage(s *MemStore, stage string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.m {
		if len(k) > len(stage) && k[:len(stage)] == stage && k[len(stage)] == '/' {
			n++
		}
	}
	return n
}
