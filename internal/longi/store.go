package longi

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the artifact store behind the engine: a durable map from
// (stage, content key) to the serialized stage output. Implementations
// must be safe for concurrent use and must make Put atomic — a reader
// may see the artifact or miss it, never a torn write.
//
// The engine's poison-safety contract lives one level up: only
// complete, successful stage outputs are ever handed to Put. A store
// is free to drop entries (eviction, crash, corruption); a dropped or
// unreadable artifact is just a miss and the stage recomputes.
type Store interface {
	// Get returns the artifact bytes and whether they were present.
	Get(stage, key string) ([]byte, bool, error)
	// Put durably records the artifact bytes under (stage, key).
	Put(stage, key string, data []byte) error
}

// DirStore is the durable on-disk store: one file per artifact at
//
//	<root>/<stage>/<key[:2]>/<key>.json
//
// fanned out over the first key byte so no directory grows unbounded.
// Writes go through a temp file + rename, so crashed writers leave at
// worst an orphaned temp file, never a torn artifact.
type DirStore struct {
	root string
}

// NewDirStore opens (creating if needed) an on-disk artifact store.
func NewDirStore(root string) (*DirStore, error) {
	if root == "" {
		return nil, errors.New("longi: empty store root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("longi: create store root: %w", err)
	}
	return &DirStore{root: root}, nil
}

// Root returns the store's directory.
func (s *DirStore) Root() string { return s.root }

func (s *DirStore) path(stage, key string) (string, error) {
	if err := validateAddr(stage, key); err != nil {
		return "", err
	}
	return filepath.Join(s.root, stage, key[:2], key+".json"), nil
}

// Get reads one artifact. A missing file is a miss, not an error.
func (s *DirStore) Get(stage, key string) ([]byte, bool, error) {
	p, err := s.path(stage, key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("longi: read artifact: %w", err)
	}
	return data, true, nil
}

// Put writes one artifact atomically. Concurrent writers racing on the
// same key both rename identical content-addressed bytes into place,
// so the race is benign.
func (s *DirStore) Put(stage, key string, data []byte) error {
	p, err := s.path(stage, key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("longi: create artifact dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("longi: create temp artifact: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("longi: write artifact: %w", werr)
		}
		return fmt.Errorf("longi: close artifact: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("longi: commit artifact: %w", err)
	}
	return nil
}

// validateAddr refuses anything that is not a plain stage name plus a
// lowercase-hex key, so a store can never be steered outside its root.
func validateAddr(stage, key string) error {
	if stage == "" {
		return errors.New("longi: empty stage")
	}
	for _, r := range stage {
		if (r < 'a' || r > 'z') && r != '-' {
			return fmt.Errorf("longi: invalid stage name %q", stage)
		}
	}
	if len(key) < 2 {
		return fmt.Errorf("longi: artifact key too short: %q", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("longi: invalid artifact key %q", key)
		}
	}
	return nil
}

// MemStore is the in-memory store used by tests and by ppserve's
// process-lifetime history cache. A positive cap bounds the entry
// count; at the cap an arbitrary entry is evicted, which costs a
// future recompute but never correctness.
type MemStore struct {
	mu  sync.Mutex
	cap int
	m   map[string][]byte
}

// NewMemStore builds an in-memory store holding at most cap artifacts
// (cap <= 0 means unbounded).
func NewMemStore(cap int) *MemStore {
	return &MemStore{cap: cap, m: map[string][]byte{}}
}

func memKey(stage, key string) string { return stage + "/" + key }

// Get returns a copy of the stored artifact.
func (s *MemStore) Get(stage, key string) ([]byte, bool, error) {
	if err := validateAddr(stage, key); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[memKey(stage, key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

// Put stores a copy of the artifact, evicting one arbitrary entry when
// the cap is reached.
func (s *MemStore) Put(stage, key string, data []byte) error {
	if err := validateAddr(stage, key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mk := memKey(stage, key)
	if _, have := s.m[mk]; !have && s.cap > 0 && len(s.m) >= s.cap {
		for k := range s.m {
			delete(s.m, k)
			break
		}
	}
	s.m[mk] = append([]byte(nil), data...)
	return nil
}

// Len reports the number of stored artifacts.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
