package longi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/desc"
	"ppchecker/internal/libdetect"
	"ppchecker/internal/policy"
	"ppchecker/internal/static"
)

// Artifact-store stage names. These are the cache's domain separators,
// distinct from core.Stage (which names report degradations): the
// pipeline's seven runtime stages collapse into four cacheable
// computations — extract+policy, desc, static+taint+libs, detect.
const (
	stagePolicy = "policy"
	stageDesc   = "desc"
	stageStatic = "static"
	stageDetect = "detect"
)

// Serialized stage outputs. Everything in them is plain exported data,
// so a JSON round trip is lossless — the engine relies on that to make
// a freshly computed artifact and a reloaded one structurally
// identical (see putArtifact).
type policyArtifact struct {
	Analysis *policy.Analysis `json:"analysis"`
}

type descArtifact struct {
	Result *desc.Result `json:"result"`
}

type staticArtifact struct {
	Result *static.Result      `json:"result"`
	Libs   []libdetect.Library `json:"libs"`
}

type detectArtifact struct {
	Incomplete   []core.IncompleteFinding    `json:"incomplete"`
	Incorrect    []core.IncorrectFinding     `json:"incorrect"`
	Inconsistent []core.InconsistencyFinding `json:"inconsistent"`
}

// CacheStats counts artifact-store traffic. It is execution metadata,
// not analysis output: the differential oracle compares reports and
// run stats, never cache stats (those are exactly what differs between
// a cold and a delta run).
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	StoreErrors int64 `json:"store_errors"`
}

// Lookups is the total number of stage-cache probes.
func (s CacheStats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate is Hits/Lookups in [0,1]; 0 when nothing was looked up.
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Engine runs the content-addressed incremental pipeline. It is
// stateless apart from the store handle, the config fingerprint, and
// atomic counters, so one engine serves any number of concurrent
// workers; per-worker state (analyzers) lives in the core.Checker each
// caller passes in, which must be built from Config.CheckerOptions().
type Engine struct {
	store Store
	cfg   Config
	fp    []byte

	hits, misses, puts, storeErrs atomic.Int64

	// stageHook, when set by a test, runs before each stage compute
	// (cache hits bypass it); returning an error fails the stage. It
	// exists to prove failure paths — timeouts, panics, exhausted retry
	// budgets — never write artifacts.
	stageHook func(ctx context.Context, stage string) error
}

// NewEngine builds an engine over the given artifact store and checker
// configuration.
func NewEngine(store Store, cfg Config) *Engine {
	return &Engine{store: store, cfg: cfg, fp: cfg.Fingerprint()}
}

// Config returns the engine's checker configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats snapshots the cache counters accumulated so far.
func (e *Engine) Stats() CacheStats {
	return CacheStats{
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Puts:        e.puts.Load(),
		StoreErrors: e.storeErrs.Load(),
	}
}

// CheckVersion analyzes one app version through the artifact store:
// each stage's output is fetched by content address when present and
// computed (then stored) when not. The report matches core.CheckSafe
// finding-for-finding on a healthy run, except that it carries no
// Timings — a longitudinal report must be bit-identical however its
// stages were satisfied, and wall-clock timings are the one field that
// never could be.
//
// Failure handling mirrors CheckSafe: a failed stage degrades the
// report and the rest of the pipeline continues. A failed or partial
// stage output is NEVER stored — the store holds only complete,
// successful computations — so a version that degraded under a timeout
// or an exhausted retry budget leaves no trace to poison later runs.
func (e *Engine) CheckVersion(ctx context.Context, checker *core.Checker, app *core.App) (*core.Report, error) {
	if app == nil {
		return nil, errors.New("longi: nil app")
	}
	if checker == nil {
		return nil, errors.New("longi: nil checker")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &core.Report{App: core.AppName(app)}

	// Policy: extraction + NLP, keyed by the raw policy bytes.
	pkey := StageKey(stagePolicy, e.fp, []byte(app.PolicyHTML))
	var pol policyArtifact
	policyOK := false
	if loadArtifact(e, stagePolicy, pkey, &pol) {
		policyOK = true
	} else if e.stage(ctx, r, core.StagePolicy, stagePolicy, func() error {
		a, err := checker.PolicyStage(app.PolicyHTML)
		if err != nil {
			return err
		}
		pol.Analysis = a
		return nil
	}) {
		putArtifact(e, stagePolicy, pkey, &pol)
		policyOK = true
	}
	if policyOK {
		r.Policy = pol.Analysis
	}

	// Description, keyed by the description bytes.
	dkey := StageKey(stageDesc, e.fp, []byte(app.Description))
	var de descArtifact
	descOK := false
	if loadArtifact(e, stageDesc, dkey, &de) {
		descOK = true
	} else if e.stage(ctx, r, core.StageDesc, stageDesc, func() error {
		de.Result = checker.DescStage(app.Description)
		return nil
	}) {
		putArtifact(e, stageDesc, dkey, &de)
		descOK = true
	}
	if descOK {
		r.Desc = de.Result
	}

	// Static + taint + libs as one artifact, keyed by the encoded APK
	// (manifest + dex in the deterministic container layout).
	skey := "no-apk"
	staticOK := true
	if app.APK != nil {
		staticOK = false
		apkBytes, err := apk.Encode(app.APK)
		if err != nil {
			r.AddDegraded(&core.StageError{
				Stage: core.StageStatic, App: r.App,
				Err: fmt.Errorf("encode apk for content address: %w", err),
			})
		} else {
			key := StageKey(stageStatic, e.fp, apkBytes)
			var st staticArtifact
			if loadArtifact(e, stageStatic, key, &st) {
				staticOK = true
			} else if e.stage(ctx, r, core.StageStatic, stageStatic, func() error {
				res, err := checker.StaticStage(ctx, app.APK)
				if err != nil {
					return err
				}
				libs, err := checker.LibsStage(app.APK)
				if err != nil {
					return err
				}
				st.Result, st.Libs = res, libs
				return nil
			}) {
				putArtifact(e, stageStatic, key, &st)
				staticOK = true
			}
			if staticOK {
				r.Static, r.Libs = st.Result, st.Libs
				skey = key
			}
		}
	}

	// Detectors, gated on a usable policy analysis exactly like
	// CheckSafe. The artifact is keyed by the upstream stage keys plus
	// the library-policy set; it is only cached when every upstream
	// analysis is complete — findings over a degraded pipeline are
	// partial outputs and must not outlive this run.
	if policyOK {
		if descOK && staticOK {
			tkey := StageKey(stageDetect, e.fp,
				[]byte(pkey), []byte(dkey), []byte(skey), libPolicyBytes(app.LibPolicies))
			var det detectArtifact
			if loadArtifact(e, stageDetect, tkey, &det) {
				r.Incomplete, r.Incorrect, r.Inconsistent = det.Incomplete, det.Incorrect, det.Inconsistent
			} else if e.stage(ctx, r, core.StageDetect, stageDetect, func() error {
				checker.DetectStage(app, r)
				det = detectArtifact{
					Incomplete: r.Incomplete, Incorrect: r.Incorrect, Inconsistent: r.Inconsistent,
				}
				return nil
			}) {
				putArtifact(e, stageDetect, tkey, &det)
				r.Incomplete, r.Incorrect, r.Inconsistent = det.Incomplete, det.Incorrect, det.Inconsistent
			}
		} else {
			e.stage(ctx, r, core.StageDetect, stageDetect, func() error {
				checker.DetectStage(app, r)
				return nil
			})
		}
	}
	if r.Policy == nil {
		// Downstream consumers (renderers) dereference Policy; mirror
		// CheckSafe's nil-safety fallback.
		r.Policy = &policy.Analysis{}
	}

	if err := ctx.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// stage runs one computation behind panic recovery and a cancellation
// check, recording failures as report degradations under the matching
// core stage. Longitudinal stages record no timings (see CheckVersion).
func (e *Engine) stage(ctx context.Context, r *core.Report, s core.Stage, name string, fn func() error) bool {
	if err := ctx.Err(); err != nil {
		r.AddDegraded(&core.StageError{Stage: s, App: r.App, Err: err})
		return false
	}
	run := fn
	if e.stageHook != nil {
		hook := e.stageHook
		run = func() error {
			if err := hook(ctx, name); err != nil {
				return err
			}
			return fn()
		}
	}
	err, recovered := recoverStage(run)
	if err != nil {
		r.AddDegraded(&core.StageError{Stage: s, App: r.App, Err: err, Recovered: recovered})
		return false
	}
	return true
}

// recoverStage invokes fn, converting a panic into an error (the
// engine-side twin of core's runRecovered).
func recoverStage(fn func() error) (err error, recovered bool) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
			recovered = true
		}
	}()
	return fn(), false
}

// loadArtifact fetches and decodes one artifact. Store errors and
// corrupt payloads are both treated as misses — the stage recomputes —
// with the error counted. Decoding goes through a fresh value so a
// corrupt payload can never leave *out half-populated.
func loadArtifact[T any](e *Engine, stage, key string, out *T) bool {
	data, ok, err := e.store.Get(stage, key)
	if err != nil {
		e.storeErrs.Add(1)
	}
	if err != nil || !ok {
		e.misses.Add(1)
		return false
	}
	var fresh T
	if err := json.Unmarshal(data, &fresh); err != nil {
		e.storeErrs.Add(1)
		e.misses.Add(1)
		return false
	}
	*out = fresh
	e.hits.Add(1)
	return true
}

// putArtifact serializes and stores one successful stage output, and —
// crucially for the delta-vs-cold bit-identity bar — replaces the
// caller's value with its own JSON round trip, so the report assembled
// from a fresh compute is structurally identical to one assembled from
// a future cache hit (nil-vs-empty slices and any other encoding
// normalization included). A store write failure only loses the cache
// entry; the computed value remains usable.
func putArtifact[T any](e *Engine, stage, key string, art *T) {
	data, err := json.Marshal(art)
	if err != nil {
		e.storeErrs.Add(1)
		return
	}
	var fresh T
	if err := json.Unmarshal(data, &fresh); err != nil {
		e.storeErrs.Add(1)
		return
	}
	*art = fresh
	if err := e.store.Put(stage, key, data); err != nil {
		e.storeErrs.Add(1)
		return
	}
	e.puts.Add(1)
}

// libPolicyBytes canonically frames the app's library-policy set (an
// input to the detect stage that no other stage key covers).
func libPolicyBytes(m map[string]string) []byte {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	sections := make([][]byte, 0, 2*len(names))
	for _, n := range names {
		sections = append(sections, []byte(n), []byte(m[n]))
	}
	return Frame("lib-policies", sections...)
}
