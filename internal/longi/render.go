package longi

import (
	"io"

	"ppchecker/internal/report"
)

// Document converts a history into the report package's serializable
// form.
func (h *History) Document() *report.HistoryDocument {
	drift := make([]report.DriftJSON, 0, len(h.Drift))
	for _, d := range h.Drift {
		drift = append(drift, report.DriftJSON{
			FromVersion:   d.FromVersion,
			ToVersion:     d.ToVersion,
			Class:         string(d.Class),
			Kind:          d.Kind,
			Info:          d.Info,
			Detail:        d.Detail,
			PolicyChanged: d.PolicyChanged,
			DescChanged:   d.DescChanged,
			CodeChanged:   d.CodeChanged,
		})
	}
	if len(drift) == 0 {
		drift = nil
	}
	return report.HistoryFromReports(h.Pkg, h.Versions, drift)
}

// WriteJSON renders the history as an indented JSON document.
func (h *History) WriteJSON(w io.Writer) error {
	return report.WriteHistoryJSON(w, h.Document())
}

// WriteHTML renders the history as a standalone HTML page.
func (h *History) WriteHTML(w io.Writer) error {
	return report.WriteHistoryHTML(w, h.Document())
}
