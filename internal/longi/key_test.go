package longi

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameInjectiveOnBoundaryShifts(t *testing.T) {
	// The classic concatenation ambiguity: same bytes, different
	// section boundaries.
	a := Frame("detect", []byte("ab"), []byte("c"))
	b := Frame("detect", []byte("a"), []byte("bc"))
	if bytes.Equal(a, b) {
		t.Fatal("boundary shift produced identical frames")
	}
	// Section count is part of the frame.
	c := Frame("detect", []byte("abc"))
	d := Frame("detect", []byte("abc"), nil)
	if bytes.Equal(c, d) {
		t.Fatal("section count not framed")
	}
	// Stage name cannot bleed into the first section.
	e := Frame("po", []byte("licy"))
	f := Frame("policy", []byte(""))
	if bytes.Equal(e, f) {
		t.Fatal("stage boundary not framed")
	}
}

func TestStageKeyShape(t *testing.T) {
	k := StageKey("policy", []byte("x"))
	if len(k) != 64 || strings.ToLower(k) != k {
		t.Fatalf("key %q is not lowercase sha256 hex", k)
	}
	if k == StageKey("desc", []byte("x")) {
		t.Fatal("stage name does not separate key domains")
	}
	if StageKey("policy", []byte("x")) != StageKey("policy", []byte("x")) {
		t.Fatal("key not deterministic")
	}
}

// FuzzStageKey fuzzes the canonicalizer with two full (policy, dex,
// desc, config) input tuples. The property: distinct tuples must have
// distinct frames (injectivity at the framing layer — checking only
// the sha256 keys would make the test vacuously about hash collisions)
// and therefore distinct keys; equal tuples must agree on both. The
// stage name must separate domains for identical tuples.
func FuzzStageKey(f *testing.F) {
	f.Add([]byte("<p>policy</p>"), []byte{0xde, 0xad}, []byte("desc"), []byte(`{"t":0.7}`),
		[]byte("<p>policy</p>"), []byte{0xde, 0xad}, []byte("desc"), []byte(`{"t":0.7}`))
	f.Add([]byte("ab"), []byte("c"), []byte(""), []byte(""),
		[]byte("a"), []byte("bc"), []byte(""), []byte(""))
	f.Add([]byte(""), []byte(""), []byte(""), []byte(""),
		[]byte(""), []byte(""), []byte(""), []byte{0})
	f.Add([]byte("x"), []byte(""), []byte(""), []byte(""),
		[]byte(""), []byte("x"), []byte(""), []byte(""))

	f.Fuzz(func(t *testing.T, p1, x1, d1, c1, p2, x2, d2, c2 []byte) {
		t1 := [][]byte{c1, p1, x1, d1}
		t2 := [][]byte{c2, p2, x2, d2}
		equal := true
		for i := range t1 {
			equal = equal && bytes.Equal(t1[i], t2[i])
		}
		f1, f2 := Frame("detect", t1...), Frame("detect", t2...)
		k1, k2 := StageKey("detect", t1...), StageKey("detect", t2...)
		if equal {
			if !bytes.Equal(f1, f2) || k1 != k2 {
				t.Fatalf("equal tuples, different address: frames %x vs %x", f1, f2)
			}
			if StageKey("policy", t1...) == k1 {
				t.Fatal("stage name failed to separate domains")
			}
			return
		}
		if bytes.Equal(f1, f2) {
			t.Fatalf("distinct tuples share a frame: %x", f1)
		}
		if k1 == k2 {
			t.Fatalf("distinct tuples share a key: %s", k1)
		}
	})
}
