package longi

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The HTTP wire form of the Store interface, used by the distributed
// tier to host artifact shards on a coordinator and read them from
// workers:
//
//	GET /artifact/<stage>/<key>  -> 200 artifact bytes | 404 miss
//	PUT /artifact/<stage>/<key>  -> 204 stored
//
// The address rules are the Store's own (validateAddr), enforced again
// server-side so a remote caller can never steer a DirStore outside
// its root. Artifacts are opaque bytes end to end; the content
// addressing that makes a stale or torn artifact impossible lives in
// the keys, not the transport.

// storePathPrefix is the handler's mount point for artifact routes.
const storePathPrefix = "/artifact/"

// maxArtifactBytes bounds one artifact body on the wire (16 MiB —
// stage outputs are JSON documents, far smaller in practice).
const maxArtifactBytes = 16 << 20

// StoreHandler serves a Store over HTTP.
type StoreHandler struct {
	store Store
}

// NewStoreHandler wraps a Store into an http.Handler.
func NewStoreHandler(s Store) *StoreHandler { return &StoreHandler{store: s} }

// splitArtifactPath parses "/artifact/<stage>/<key>".
func splitArtifactPath(path string) (stage, key string, ok bool) {
	rest, found := strings.CutPrefix(path, storePathPrefix)
	if !found {
		return "", "", false
	}
	stage, key, found = strings.Cut(rest, "/")
	if !found || stage == "" || key == "" || strings.Contains(key, "/") {
		return "", "", false
	}
	return stage, key, true
}

func (h *StoreHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	stage, key, ok := splitArtifactPath(r.URL.Path)
	if !ok {
		http.Error(w, "longi: bad artifact path", http.StatusBadRequest)
		return
	}
	if err := validateAddr(stage, key); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, hit, err := h.store.Get(stage, key)
		switch {
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		case !hit:
			http.Error(w, "longi: artifact not found", http.StatusNotFound)
		default:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data)
		}
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
		if err != nil {
			http.Error(w, "longi: artifact body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.store.Put(stage, key, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT required", http.StatusMethodNotAllowed)
	}
}

// HTTPStore is the client side: a Store implementation that reads and
// writes one remote shard endpoint. Transport failures surface as
// errors so a caller (the distributed tier's sharded read-through
// layer) can degrade them to misses and fall back to local compute.
type HTTPStore struct {
	base   string
	client *http.Client
}

// NewHTTPStore points a Store client at a shard base URL (everything
// before "/artifact/..."). A nil client gets a dedicated one with a
// short timeout: a hung shard must cost a bounded stall, not a wedged
// worker.
func NewHTTPStore(base string, client *http.Client) *HTTPStore {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &HTTPStore{base: strings.TrimSuffix(base, "/"), client: client}
}

func (s *HTTPStore) url(stage, key string) string {
	return s.base + storePathPrefix + stage + "/" + key
}

// Get fetches one artifact; a 404 is a miss, anything else non-200 an
// error.
func (s *HTTPStore) Get(stage, key string) ([]byte, bool, error) {
	if err := validateAddr(stage, key); err != nil {
		return nil, false, err
	}
	resp, err := s.client.Get(s.url(stage, key))
	if err != nil {
		return nil, false, fmt.Errorf("longi: shard get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
		if err != nil {
			return nil, false, fmt.Errorf("longi: shard get body: %w", err)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("longi: shard get: status %d", resp.StatusCode)
	}
}

// Put stores one artifact remotely.
func (s *HTTPStore) Put(stage, key string, data []byte) error {
	if err := validateAddr(stage, key); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, s.url(stage, key), strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("longi: shard put: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("longi: shard put: status %d", resp.StatusCode)
	}
	return nil
}
