package longi

import (
	"fmt"
	"sort"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
)

// DriftClass labels how a finding moved across a version transition.
type DriftClass string

const (
	// DriftSilentBehavior: a finding appeared while the policy stayed
	// byte-identical — "v7 started reading contacts but the policy
	// never changed".
	DriftSilentBehavior DriftClass = "silent-behavior-change"
	// DriftPolicyWeakened: a finding appeared across a policy edit —
	// "policy weakened disclosure between v3 and v4".
	DriftPolicyWeakened DriftClass = "policy-weakened"
	// DriftResolved: a finding present in the older version is gone.
	DriftResolved DriftClass = "resolved"
)

// DriftFinding is the longitudinal finding type: one compliance
// finding that appeared or disappeared between consecutive versions of
// one app, annotated with which inputs changed across the transition.
type DriftFinding struct {
	App         string     `json:"app"`
	FromVersion int        `json:"from_version"`
	ToVersion   int        `json:"to_version"`
	Class       DriftClass `json:"class"`
	// Kind is the underlying finding family: incomplete, incorrect, or
	// inconsistent.
	Kind string `json:"kind"`
	// Info is the information or resource at stake.
	Info string `json:"info"`
	// Detail is the human-readable account of the transition.
	Detail string `json:"detail"`
	// Which inputs changed between the two versions.
	PolicyChanged bool `json:"policy_changed"`
	DescChanged   bool `json:"desc_changed"`
	CodeChanged   bool `json:"code_changed"`
}

// findingKeys returns the identity set of a report's findings. The key
// shape mirrors each finding type's identity fields only (no evidence
// text), so cosmetic evidence differences do not register as drift.
func findingKeys(r *core.Report) []string {
	var keys []string
	for _, f := range r.Incomplete {
		keys = append(keys, fmt.Sprintf("incomplete|%s|%s", f.Via, f.Info))
	}
	for _, f := range r.Incorrect {
		keys = append(keys, fmt.Sprintf("incorrect|%s|%s|%d", f.Via, f.Info, f.Category))
	}
	for _, f := range r.Inconsistent {
		keys = append(keys, fmt.Sprintf("inconsistent|%d|%s|%s", f.Category, f.Resource, f.LibName))
	}
	return keys
}

// keyParts extracts (kind, info) back out of a finding key for the
// drift record. Keys are "kind|a|b[|c]": info is the third field for
// every kind (the info for incomplete/incorrect, the resource for
// inconsistent).
func keyParts(key string) (kind, info string) {
	fields := splitBars(key)
	kind = fields[0]
	if len(fields) > 2 {
		info = fields[2]
	}
	return kind, info
}

func splitBars(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// InputDelta records which of the three independently versioned inputs
// changed between two consecutive versions.
type InputDelta struct {
	Policy bool
	Desc   bool
	Code   bool
}

// DeltaOf compares the raw inputs of two versions.
func DeltaOf(prev, next *core.App) InputDelta {
	d := InputDelta{
		Policy: prev.PolicyHTML != next.PolicyHTML,
		Desc:   prev.Description != next.Description,
	}
	switch {
	case prev.APK == nil && next.APK == nil:
	case prev.APK == nil || next.APK == nil:
		d.Code = true
	default:
		pb, perr := apk.Encode(prev.APK)
		nb, nerr := apk.Encode(next.APK)
		d.Code = perr != nil || nerr != nil || string(pb) != string(nb)
	}
	return d
}

// DiffHistory diffs consecutive versions of one app's history into
// drift findings. versions and reports run in parallel (index v-1 is
// version v). Transitions where either report is Partial are skipped:
// a degraded pipeline can lose findings, and absence must mean
// "resolved", not "stage timed out".
func DiffHistory(appName string, versions []*core.App, reports []*core.Report) []DriftFinding {
	var out []DriftFinding
	n := len(versions)
	if len(reports) < n {
		n = len(reports)
	}
	for t := 1; t < n; t++ {
		prev, next := reports[t-1], reports[t]
		if prev == nil || next == nil || prev.Partial || next.Partial {
			continue
		}
		out = append(out, diffTransition(appName, t, t+1, DeltaOf(versions[t-1], versions[t]), prev, next)...)
	}
	return out
}

// diffTransition diffs one consecutive report pair.
func diffTransition(appName string, fromV, toV int, delta InputDelta, prev, next *core.Report) []DriftFinding {
	prevKeys := findingKeys(prev)
	nextKeys := findingKeys(next)
	prevSet := map[string]bool{}
	for _, k := range prevKeys {
		prevSet[k] = true
	}
	nextSet := map[string]bool{}
	for _, k := range nextKeys {
		nextSet[k] = true
	}

	var out []DriftFinding
	emitted := map[string]bool{}
	for _, k := range nextKeys {
		if prevSet[k] || emitted[k] {
			continue
		}
		emitted[k] = true
		kind, info := keyParts(k)
		f := DriftFinding{
			App: appName, FromVersion: fromV, ToVersion: toV,
			Kind: kind, Info: info,
			PolicyChanged: delta.Policy, DescChanged: delta.Desc, CodeChanged: delta.Code,
		}
		if delta.Policy {
			f.Class = DriftPolicyWeakened
			f.Detail = fmt.Sprintf("policy changed between v%d and v%d and a new %s finding on %q appeared",
				fromV, toV, kind, info)
		} else {
			f.Class = DriftSilentBehavior
			f.Detail = fmt.Sprintf("v%d introduced a new %s finding on %q but the policy never changed",
				toV, kind, info)
		}
		out = append(out, f)
	}
	for _, k := range prevKeys {
		if nextSet[k] || emitted[k] {
			continue
		}
		emitted[k] = true
		kind, info := keyParts(k)
		out = append(out, DriftFinding{
			App: appName, FromVersion: fromV, ToVersion: toV,
			Class: DriftResolved, Kind: kind, Info: info,
			Detail: fmt.Sprintf("the %s finding on %q present in v%d is gone in v%d",
				kind, info, fromV, toV),
			PolicyChanged: delta.Policy, DescChanged: delta.Desc, CodeChanged: delta.Code,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ToVersion != b.ToVersion {
			return a.ToVersion < b.ToVersion
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Info < b.Info
	})
	return out
}
