package longi

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/stream"
	"ppchecker/internal/synth"
)

// VersionSource adapts a versioned firehose to the streaming layer:
// every app version flows through the bounded queue, the worker pool,
// and the checkpoint journal as its own item, analyzed by the
// incremental engine instead of plain CheckSafe. Items are named
// "<pkg>@v<N>" and their journal hash binds the version's actual
// content (policy, description, bytecode) plus the engine's config
// fingerprint — so a resumed run replays a version only if both its
// inputs and the checker configuration are unchanged, exactly the
// invalidation rule the artifact store itself uses.
//
// The stream's workers must be built from the same configuration as
// the engine: pass engine.Config().CheckerOptions() as the stream's
// CheckerOptions.
type VersionSource struct {
	eng  *Engine
	fh   *synth.VersionedFirehose
	apps int64

	appIdx int64
	verIdx int
	cur    synth.VersionedApp
	loaded bool
}

// NewVersionSource streams `apps` histories (apps <= 0 means endless)
// from the firehose through the engine.
func NewVersionSource(eng *Engine, fh *synth.VersionedFirehose, apps int64) *VersionSource {
	return &VersionSource{eng: eng, fh: fh, apps: apps}
}

// Next implements stream.Source: single-producer, no locking needed.
func (s *VersionSource) Next(ctx context.Context) (*stream.Item, error) {
	for !s.loaded || s.verIdx >= len(s.cur.Versions) {
		if s.apps > 0 && s.appIdx >= s.apps {
			return nil, io.EOF
		}
		va, err := s.fh.History(s.appIdx)
		if err != nil {
			return nil, err
		}
		s.cur, s.loaded, s.verIdx = va, true, 0
		s.appIdx++
	}
	v := s.cur.Versions[s.verIdx]
	s.verIdx++

	app := v.App
	var apkBytes []byte
	if app.APK != nil {
		if b, err := apk.Encode(app.APK); err == nil {
			apkBytes = b
		} else {
			// An unencodable APK still gets a stable identity: the
			// version coordinates. The analysis itself will degrade the
			// static stage the same way on every run.
			apkBytes = []byte("unencodable:" + s.cur.Pkg + "@" + strconv.Itoa(v.Version))
		}
	}
	eng := s.eng
	return &stream.Item{
		Name: fmt.Sprintf("%s@v%d", s.cur.Pkg, v.Version),
		Hash: stream.HashBytes(eng.fp, []byte(app.PolicyHTML), []byte(app.Description), apkBytes),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			return eng.CheckVersion(ctx, checker, app)
		},
	}, nil
}
