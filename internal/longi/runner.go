package longi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"ppchecker/internal/core"
	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

// RunOptions configure a corpus run.
type RunOptions struct {
	// Workers is the analysis pool size; <= 0 means GOMAXPROCS.
	Workers int
	// PerAppTimeout bounds one version's analysis attempt; 0 = none.
	PerAppTimeout time.Duration
	// MaxRetries is how many extra attempts a failed version gets.
	MaxRetries int
	// RetryBackoff is the base pause before the first retry.
	RetryBackoff time.Duration
	// Observer, when non-nil, instruments the run.
	Observer *obs.Observer
}

// History is one app's analyzed release chain.
type History struct {
	Pkg string
	// Versions holds one report per release, index v-1 = version v.
	Versions []*core.Report
	// Drift is the cross-version diff of those reports.
	Drift []DriftFinding
}

// RunStats is the deterministic outcome accounting of a corpus run:
// every field is a pure function of the corpus and configuration on a
// fault-free run, which is what lets the differential oracle compare
// them byte-for-byte between a cold and a delta run. Cache traffic is
// deliberately NOT here — it lives in CacheStats, which legitimately
// differs between runs.
type RunStats struct {
	Apps     int `json:"apps"`
	Versions int `json:"versions"`
	Checked  int `json:"checked"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	Skipped  int `json:"skipped"`
	Retried  int `json:"retried"`
	// Drift totals, overall and per class.
	Drift        int                `json:"drift"`
	DriftByClass map[DriftClass]int `json:"drift_by_class,omitempty"`
}

// Result is a full corpus run: per-app histories plus the two stat
// blocks (deterministic outcomes, run-varying cache traffic).
type Result struct {
	Histories []History
	Stats     RunStats
	Cache     CacheStats
}

// RunCorpus replays every version of every app in the corpus through
// the engine, with each app-version an independent job in the robust
// worker pool (per-worker checkers built from the engine's config).
// Version processing order is unconstrained — artifacts are content
// addressed, so outcomes do not depend on scheduling — and the drift
// differ runs post-hoc over each app's ordered reports.
func RunCorpus(ctx context.Context, e *Engine, corpus *synth.VersionedCorpus, opts RunOptions) (*Result, error) {
	startCache := e.Stats()

	type slot struct{ app, ver int }
	var jobs []eval.Job
	var slots []slot
	for ai, va := range corpus.Apps {
		for vi, v := range va.Versions {
			app := v.App
			jobs = append(jobs, eval.Job{
				Name:  fmt.Sprintf("%s@v%d", va.Pkg, v.Version),
				Truth: v.Truth,
				Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
					return e.CheckVersion(ctx, checker, app)
				},
			})
			slots = append(slots, slot{app: ai, ver: vi})
		}
	}

	res, estats, err := eval.RunJobs(ctx, jobs, eval.RunOptions{
		Workers:        opts.Workers,
		PerAppTimeout:  opts.PerAppTimeout,
		MaxRetries:     opts.MaxRetries,
		RetryBackoff:   opts.RetryBackoff,
		CheckerOptions: e.Config().CheckerOptions(),
		Observer:       opts.Observer,
	})
	if err != nil {
		return nil, err
	}

	hist := make([]History, len(corpus.Apps))
	for ai, va := range corpus.Apps {
		hist[ai] = History{Pkg: va.Pkg, Versions: make([]*core.Report, len(va.Versions))}
	}
	for ji, s := range slots {
		hist[s.app].Versions[s.ver] = res.Reports[ji]
	}

	stats := RunStats{
		Apps:         len(corpus.Apps),
		Versions:     len(jobs),
		Checked:      estats.Checked,
		Degraded:     estats.Degraded,
		Failed:       estats.Failed,
		Skipped:      estats.Skipped,
		Retried:      estats.Retried,
		DriftByClass: map[DriftClass]int{},
	}
	for ai, va := range corpus.Apps {
		apps := make([]*core.App, len(va.Versions))
		for vi, v := range va.Versions {
			apps[vi] = v.App
		}
		drift := DiffHistory(va.Pkg, apps, hist[ai].Versions)
		hist[ai].Drift = drift
		stats.Drift += len(drift)
		for _, d := range drift {
			stats.DriftByClass[d.Class]++
		}
	}

	endCache := e.Stats()
	return &Result{
		Histories: hist,
		Stats:     stats,
		Cache: CacheStats{
			Hits:        endCache.Hits - startCache.Hits,
			Misses:      endCache.Misses - startCache.Misses,
			Puts:        endCache.Puts - startCache.Puts,
			StoreErrors: endCache.StoreErrors - startCache.StoreErrors,
		},
	}, nil
}

// CompareRuns is the differential oracle: it byte-compares two corpus
// runs — every report (JSON-serialized), every drift list, and the
// deterministic RunStats — and returns a human-readable mismatch list,
// empty when the runs are bit-identical. Cache stats are excluded by
// construction (they are not part of Result comparison here).
func CompareRuns(a, b *Result) []string {
	var diffs []string
	add := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }

	aj, bj := mustJSON(a.Stats), mustJSON(b.Stats)
	if !bytes.Equal(aj, bj) {
		add("run stats differ: %s vs %s", aj, bj)
	}
	if len(a.Histories) != len(b.Histories) {
		add("history count differs: %d vs %d", len(a.Histories), len(b.Histories))
		return diffs
	}
	for i := range a.Histories {
		ha, hb := &a.Histories[i], &b.Histories[i]
		if ha.Pkg != hb.Pkg {
			add("history %d app differs: %s vs %s", i, ha.Pkg, hb.Pkg)
			continue
		}
		if len(ha.Versions) != len(hb.Versions) {
			add("%s version count differs: %d vs %d", ha.Pkg, len(ha.Versions), len(hb.Versions))
			continue
		}
		for v := range ha.Versions {
			ra, rb := mustJSON(ha.Versions[v]), mustJSON(hb.Versions[v])
			if !bytes.Equal(ra, rb) {
				add("%s v%d reports differ:\n  a: %s\n  b: %s", ha.Pkg, v+1, ra, rb)
			}
		}
		da, db := mustJSON(ha.Drift), mustJSON(hb.Drift)
		if !bytes.Equal(da, db) {
			add("%s drift differs:\n  a: %s\n  b: %s", ha.Pkg, da, db)
		}
	}
	return diffs
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte("marshal error: " + err.Error())
	}
	return b
}
