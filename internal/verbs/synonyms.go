package verbs

import "ppchecker/internal/nlp"

// Synonym expansion is the paper's §V-E/§VI future-work item: the
// reported false negatives came from verbs outside the category lists
// ("display" in com.starlitt.disableddating's policy). These lists
// extend each category with synonyms; they are opt-in so the default
// configuration matches the published system.
var (
	SynonymCollect = []string{
		"check", "view", "inspect", "observe", "look", "fetch", "derive",
		"extract", "harvest",
	}
	SynonymUse = []string{
		"leverage", "apply", "evaluate", "examine",
	}
	SynonymRetain = []string{
		"maintain", "persist",
	}
	SynonymDisclose = []string{
		"display", "show", "present", "publish", "post", "broadcast",
		"forward",
	}
)

// The synonym lookup tables live in verbs.go's init (see the note
// there about init file order).

// ExtendedCategoryOf is CategoryOf with the synonym lists included.
func ExtendedCategoryOf(verb string) Category {
	if c := CategoryOf(verb); c != None {
		return c
	}
	return synonymByLemma[nlp.Lemma(verb)]
}

// ExtendedMaskOf is MaskOf with the synonym lists included.
func ExtendedMaskOf(verb string) Mask { return extendedMask[nlp.Lemma(verb)] }

// ExtendedLemmaMaskOf is ExtendedMaskOf for an already-lemmatized verb.
func ExtendedLemmaMaskOf(lemma string) Mask { return extendedMask[lemma] }

// ExtendedLemmas returns the category lemmas plus all synonyms,
// deduplicated in first-seen order.
func ExtendedLemmas() []string {
	return append([]string(nil), extendedLemmas...)
}
