package verbs

import "ppchecker/internal/nlp"

// Synonym expansion is the paper's §V-E/§VI future-work item: the
// reported false negatives came from verbs outside the category lists
// ("display" in com.starlitt.disableddating's policy). These lists
// extend each category with synonyms; they are opt-in so the default
// configuration matches the published system.
var (
	SynonymCollect = []string{
		"check", "view", "inspect", "observe", "look", "fetch", "derive",
		"extract", "harvest",
	}
	SynonymUse = []string{
		"leverage", "apply", "evaluate", "examine",
	}
	SynonymRetain = []string{
		"maintain", "persist",
	}
	SynonymDisclose = []string{
		"display", "show", "present", "publish", "post", "broadcast",
		"forward",
	}
)

var synonymByLemma = func() map[string]Category {
	m := map[string]Category{}
	for _, v := range SynonymCollect {
		m[v] = Collect
	}
	for _, v := range SynonymUse {
		m[v] = Use
	}
	for _, v := range SynonymRetain {
		m[v] = Retain
	}
	for _, v := range SynonymDisclose {
		m[v] = Disclose
	}
	return m
}()

// ExtendedCategoryOf is CategoryOf with the synonym lists included.
func ExtendedCategoryOf(verb string) Category {
	if c := CategoryOf(verb); c != None {
		return c
	}
	return synonymByLemma[nlp.Lemma(verb)]
}

// ExtendedLemmas returns the category lemmas plus all synonyms.
func ExtendedLemmas() []string {
	out := Lemmas()
	out = append(out, SynonymCollect...)
	out = append(out, SynonymUse...)
	out = append(out, SynonymRetain...)
	out = append(out, SynonymDisclose...)
	return out
}
