package verbs

import (
	"testing"

	"ppchecker/internal/nlp"
)

func TestCategoryOf(t *testing.T) {
	cases := map[string]Category{
		"collect": Collect, "collects": Collect, "collected": Collect,
		"gathering": Collect, "obtain": Collect, "track": Collect,
		"use": Use, "using": Use, "processes": Use,
		"store": Retain, "stored": Retain, "retains": Retain, "keep": Retain,
		"share": Disclose, "shared": Disclose, "disclose": Disclose,
		"transmits": Disclose, "sell": Disclose, "sold": Disclose,
		// deliberately absent (the paper's FN mode)
		"display": None, "displays": None,
		// non-verbs
		"location": None, "the": None, "": None,
	}
	for verb, want := range cases {
		if got := CategoryOf(verb); got != want {
			t.Errorf("CategoryOf(%q) = %v, want %v", verb, got, want)
		}
	}
}

func TestCategoriesDisjoint(t *testing.T) {
	seen := map[string]Category{}
	for _, pair := range []struct {
		verbs []string
		cat   Category
	}{
		{CollectVerbs, Collect}, {UseVerbs, Use},
		{RetainVerbs, Retain}, {DiscloseVerbs, Disclose},
	} {
		for _, v := range pair.verbs {
			if prev, dup := seen[v]; dup {
				t.Errorf("verb %q in both %v and %v", v, prev, pair.cat)
			}
			seen[v] = pair.cat
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Collect.String() != "collect" || Disclose.String() != "disclose" || None.String() != "none" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() != "invalid" {
		t.Fatal("out-of-range category")
	}
}

func TestLemmasCoverAllCategories(t *testing.T) {
	lemmas := Lemmas()
	// Deduplicated union: every listed verb appears exactly once.
	want := map[string]bool{}
	for _, vs := range [][]string{CollectVerbs, UseVerbs, RetainVerbs, DiscloseVerbs} {
		for _, v := range vs {
			want[v] = true
		}
	}
	if len(lemmas) != len(want) {
		t.Fatalf("Lemmas() = %d, want %d", len(lemmas), len(want))
	}
	seen := map[string]bool{}
	for _, l := range lemmas {
		if seen[l] {
			t.Errorf("lemma %q duplicated", l)
		}
		seen[l] = true
		if !IsMainVerb(l) {
			t.Errorf("lemma %q not a main verb", l)
		}
	}
}

func TestMaskOf(t *testing.T) {
	// The bitmask agrees with the per-category membership scans for
	// every lemma and inflection.
	for _, c := range Categories() {
		if !c.Bit().Has(c) || c.Bit().Has(None) {
			t.Fatalf("Bit/Has broken for %v", c)
		}
	}
	cases := []string{"collect", "collected", "using", "stores", "shared",
		"display", "banana", "", "the"}
	for _, l := range Lemmas() {
		cases = append(cases, l)
	}
	for _, verb := range cases {
		m, em := MaskOf(verb), ExtendedMaskOf(verb)
		for _, c := range Categories() {
			if m.Has(c) != (CategoryOf(verb) == c && c != None) && CategoryOf(verb) != None {
				// A lemma may sit in several lists under the mask even
				// though CategoryOf reports one; assert containment.
				if CategoryOf(verb) == c && !m.Has(c) {
					t.Errorf("MaskOf(%q) missing %v", verb, c)
				}
			}
		}
		if c := CategoryOf(verb); c != None && !m.Has(c) {
			t.Errorf("MaskOf(%q) missing CategoryOf %v", verb, c)
		}
		if c := ExtendedCategoryOf(verb); c != None && !em.Has(c) {
			t.Errorf("ExtendedMaskOf(%q) missing %v", verb, c)
		}
		if m != 0 && ExtendedCategoryOf(verb) == None {
			t.Errorf("mask %q set but no category", verb)
		}
		if em&^maskUnion(verb) != 0 {
			t.Errorf("ExtendedMaskOf(%q) = %b has bits beyond list membership", verb, em)
		}
	}
	if MaskOf("display") != 0 {
		t.Fatal("core mask includes synonym-only verb")
	}
	if !ExtendedMaskOf("display").Has(Disclose) {
		t.Fatal("extended mask misses display")
	}
}

// maskUnion recomputes a verb's mask from the raw lists — the loop
// reference the bitmask is checked against.
func maskUnion(verb string) Mask {
	var m Mask
	l := nlp.Lemma(verb)
	for _, pair := range []struct {
		lists [][]string
		cat   Category
	}{
		{[][]string{CollectVerbs, SynonymCollect}, Collect},
		{[][]string{UseVerbs, SynonymUse}, Use},
		{[][]string{RetainVerbs, SynonymRetain}, Retain},
		{[][]string{DiscloseVerbs, SynonymDisclose}, Disclose},
	} {
		for _, list := range pair.lists {
			for _, v := range list {
				if v == l {
					m |= pair.cat.Bit()
				}
			}
		}
	}
	return m
}

func TestExtendedCategoryOf(t *testing.T) {
	// Base verbs unchanged.
	if ExtendedCategoryOf("collect") != Collect {
		t.Fatal("base verb lost")
	}
	// Synonyms gain categories.
	cases := map[string]Category{
		"display": Disclose, "displayed": Disclose, "shows": Disclose,
		"check": Collect, "checked": Collect, "view": Collect,
		"maintain": Retain, "leverage": Use,
	}
	for verb, want := range cases {
		if got := ExtendedCategoryOf(verb); got != want {
			t.Errorf("ExtendedCategoryOf(%q) = %v, want %v", verb, got, want)
		}
	}
	if ExtendedCategoryOf("banana") != None {
		t.Fatal("non-verb categorized")
	}
}

func TestExtendedLemmasSuperset(t *testing.T) {
	base := map[string]bool{}
	for _, l := range Lemmas() {
		base[l] = true
	}
	ext := ExtendedLemmas()
	if len(ext) <= len(Lemmas()) {
		t.Fatal("extension added nothing")
	}
	extSet := map[string]bool{}
	for _, l := range ext {
		extSet[l] = true
	}
	for l := range base {
		if !extSet[l] {
			t.Errorf("base lemma %q missing from extended set", l)
		}
	}
}
