package verbs

import "testing"

func TestCategoryOf(t *testing.T) {
	cases := map[string]Category{
		"collect": Collect, "collects": Collect, "collected": Collect,
		"gathering": Collect, "obtain": Collect, "track": Collect,
		"use": Use, "using": Use, "processes": Use,
		"store": Retain, "stored": Retain, "retains": Retain, "keep": Retain,
		"share": Disclose, "shared": Disclose, "disclose": Disclose,
		"transmits": Disclose, "sell": Disclose, "sold": Disclose,
		// deliberately absent (the paper's FN mode)
		"display": None, "displays": None,
		// non-verbs
		"location": None, "the": None, "": None,
	}
	for verb, want := range cases {
		if got := CategoryOf(verb); got != want {
			t.Errorf("CategoryOf(%q) = %v, want %v", verb, got, want)
		}
	}
}

func TestCategoriesDisjoint(t *testing.T) {
	seen := map[string]Category{}
	for _, pair := range []struct {
		verbs []string
		cat   Category
	}{
		{CollectVerbs, Collect}, {UseVerbs, Use},
		{RetainVerbs, Retain}, {DiscloseVerbs, Disclose},
	} {
		for _, v := range pair.verbs {
			if prev, dup := seen[v]; dup {
				t.Errorf("verb %q in both %v and %v", v, prev, pair.cat)
			}
			seen[v] = pair.cat
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Collect.String() != "collect" || Disclose.String() != "disclose" || None.String() != "none" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() != "invalid" {
		t.Fatal("out-of-range category")
	}
}

func TestLemmasCoverAllCategories(t *testing.T) {
	lemmas := Lemmas()
	want := len(CollectVerbs) + len(UseVerbs) + len(RetainVerbs) + len(DiscloseVerbs)
	if len(lemmas) != want {
		t.Fatalf("Lemmas() = %d, want %d", len(lemmas), want)
	}
	for _, l := range lemmas {
		if !IsMainVerb(l) {
			t.Errorf("lemma %q not a main verb", l)
		}
	}
}

func TestExtendedCategoryOf(t *testing.T) {
	// Base verbs unchanged.
	if ExtendedCategoryOf("collect") != Collect {
		t.Fatal("base verb lost")
	}
	// Synonyms gain categories.
	cases := map[string]Category{
		"display": Disclose, "displayed": Disclose, "shows": Disclose,
		"check": Collect, "checked": Collect, "view": Collect,
		"maintain": Retain, "leverage": Use,
	}
	for verb, want := range cases {
		if got := ExtendedCategoryOf(verb); got != want {
			t.Errorf("ExtendedCategoryOf(%q) = %v, want %v", verb, got, want)
		}
	}
	if ExtendedCategoryOf("banana") != None {
		t.Fatal("non-verb categorized")
	}
}

func TestExtendedLemmasSuperset(t *testing.T) {
	base := map[string]bool{}
	for _, l := range Lemmas() {
		base[l] = true
	}
	ext := ExtendedLemmas()
	if len(ext) <= len(Lemmas()) {
		t.Fatal("extension added nothing")
	}
	extSet := map[string]bool{}
	for _, l := range ext {
		extSet[l] = true
	}
	for l := range base {
		if !extSet[l] {
			t.Errorf("base lemma %q missing from extended set", l)
		}
	}
}
