// Package verbs defines the four main-verb categories privacy policies
// use (§III-B of the paper): collect, use, retain, and disclose verbs.
// Membership is by lemma.
package verbs

import "ppchecker/internal/nlp"

// Category classifies a main verb.
type Category int

// The four categories plus None.
const (
	None Category = iota
	Collect
	Use
	Retain
	Disclose
)

var names = [...]string{"none", "collect", "use", "retain", "disclose"}

func (c Category) String() string {
	if int(c) < len(names) {
		return names[c]
	}
	return "invalid"
}

// Categories lists the four real categories in a stable order.
func Categories() []Category { return []Category{Collect, Use, Retain, Disclose} }

// The verb lists. "display" is deliberately absent from Disclose — the
// paper reports it as a false-negative source (§V-E) and we reproduce
// that behaviour.
var (
	CollectVerbs = []string{
		"collect", "gather", "obtain", "acquire", "access", "receive",
		"record", "request", "solicit", "track", "monitor", "capture",
		"scan", "get", "read",
	}
	UseVerbs = []string{
		"use", "process", "utilize", "employ", "analyze", "analyse",
		"combine", "aggregate",
	}
	RetainVerbs = []string{
		"retain", "store", "save", "keep", "archive", "preserve",
		"cache", "hold", "log",
	}
	DiscloseVerbs = []string{
		"disclose", "share", "transfer", "provide", "transmit",
		"release", "distribute", "rent", "trade", "sell", "send",
		"give", "reveal", "expose", "upload", "report",
	}
)

// Mask is a bitset of categories, one bit per category, so a single
// lookup answers membership in all four lists at once.
type Mask uint8

// Bit returns the mask bit of a category (None has no bit).
func (c Category) Bit() Mask {
	if c == None {
		return 0
	}
	return 1 << (uint(c) - 1)
}

// Has reports whether the mask contains the category.
func (m Mask) Has(c Category) bool { return m&c.Bit() != 0 }

var (
	byLemma   = map[string]Category{}
	lemmaMask = map[string]Mask{}
	// lemmas is the deduplicated union of the four lists, first-seen
	// order.
	lemmas []string

	synonymByLemma = map[string]Category{}
	extendedMask   = map[string]Mask{}
	extendedLemmas []string
)

// init builds every lookup table here — including the synonym tables
// declared in synonyms.go — because init functions run in file order
// and synonyms.go sorts before verbs.go.
func init() {
	addList := func(list []string, c Category, mask map[string]Mask, out *[]string, cats map[string]Category) {
		for _, v := range list {
			if _, dup := mask[v]; !dup {
				*out = append(*out, v)
			}
			mask[v] |= c.Bit()
			cats[v] = c
		}
	}
	addList(CollectVerbs, Collect, lemmaMask, &lemmas, byLemma)
	addList(UseVerbs, Use, lemmaMask, &lemmas, byLemma)
	addList(RetainVerbs, Retain, lemmaMask, &lemmas, byLemma)
	addList(DiscloseVerbs, Disclose, lemmaMask, &lemmas, byLemma)

	extendedLemmas = append(extendedLemmas, lemmas...)
	for _, l := range lemmas {
		extendedMask[l] = lemmaMask[l]
	}
	addList(SynonymCollect, Collect, extendedMask, &extendedLemmas, synonymByLemma)
	addList(SynonymUse, Use, extendedMask, &extendedLemmas, synonymByLemma)
	addList(SynonymRetain, Retain, extendedMask, &extendedLemmas, synonymByLemma)
	addList(SynonymDisclose, Disclose, extendedMask, &extendedLemmas, synonymByLemma)
}

// CategoryOf returns the category of a verb (any inflection), or None.
func CategoryOf(verb string) Category {
	return byLemma[nlp.Lemma(verb)]
}

// MaskOf returns the category bitmask of a verb (any inflection) over
// the core lists.
func MaskOf(verb string) Mask { return lemmaMask[nlp.Lemma(verb)] }

// LemmaMaskOf is MaskOf for an already-lemmatized verb.
func LemmaMaskOf(lemma string) Mask { return lemmaMask[lemma] }

// IsMainVerb reports whether the verb belongs to any category.
func IsMainVerb(verb string) bool { return CategoryOf(verb) != None }

// Lemmas returns all category verb lemmas, deduplicated across the
// four lists in first-seen order.
func Lemmas() []string {
	return append([]string(nil), lemmas...)
}
