// Package verbs defines the four main-verb categories privacy policies
// use (§III-B of the paper): collect, use, retain, and disclose verbs.
// Membership is by lemma.
package verbs

import "ppchecker/internal/nlp"

// Category classifies a main verb.
type Category int

// The four categories plus None.
const (
	None Category = iota
	Collect
	Use
	Retain
	Disclose
)

var names = [...]string{"none", "collect", "use", "retain", "disclose"}

func (c Category) String() string {
	if int(c) < len(names) {
		return names[c]
	}
	return "invalid"
}

// Categories lists the four real categories in a stable order.
func Categories() []Category { return []Category{Collect, Use, Retain, Disclose} }

// The verb lists. "display" is deliberately absent from Disclose — the
// paper reports it as a false-negative source (§V-E) and we reproduce
// that behaviour.
var (
	CollectVerbs = []string{
		"collect", "gather", "obtain", "acquire", "access", "receive",
		"record", "request", "solicit", "track", "monitor", "capture",
		"scan", "get", "read",
	}
	UseVerbs = []string{
		"use", "process", "utilize", "employ", "analyze", "analyse",
		"combine", "aggregate",
	}
	RetainVerbs = []string{
		"retain", "store", "save", "keep", "archive", "preserve",
		"cache", "hold", "log",
	}
	DiscloseVerbs = []string{
		"disclose", "share", "transfer", "provide", "transmit",
		"release", "distribute", "rent", "trade", "sell", "send",
		"give", "reveal", "expose", "upload", "report",
	}
)

var byLemma = map[string]Category{}

func init() {
	for _, v := range CollectVerbs {
		byLemma[v] = Collect
	}
	for _, v := range UseVerbs {
		byLemma[v] = Use
	}
	for _, v := range RetainVerbs {
		byLemma[v] = Retain
	}
	for _, v := range DiscloseVerbs {
		byLemma[v] = Disclose
	}
}

// CategoryOf returns the category of a verb (any inflection), or None.
func CategoryOf(verb string) Category {
	return byLemma[nlp.Lemma(verb)]
}

// IsMainVerb reports whether the verb belongs to any category.
func IsMainVerb(verb string) bool { return CategoryOf(verb) != None }

// Lemmas returns all category verb lemmas.
func Lemmas() []string {
	out := make([]string, 0, len(byLemma))
	for _, vs := range [][]string{CollectVerbs, UseVerbs, RetainVerbs, DiscloseVerbs} {
		out = append(out, vs...)
	}
	return out
}
