package taint

import (
	"strings"
	"testing"

	"ppchecker/internal/apg"
	"ppchecker/internal/apk"
	"ppchecker/internal/dex"
	"ppchecker/internal/sensitive"
)

func buildAPK(t *testing.T, pkg, asm string, components ...apk.Component) *apk.APK {
	t.Helper()
	d, err := dex.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{Package: pkg}
	for _, c := range components {
		m.Application.Activities = append(m.Application.Activities, c)
	}
	return apk.New(m, d)
}

func analyze(t *testing.T, a *apk.APK) *Result {
	t.Helper()
	return Analyze(mustAPG(t, a, apg.DefaultOptions()))
}

func mustAPG(t *testing.T, a *apk.APK, opts apg.Options) *apg.APG {
	t.Helper()
	p, err := apg.Build(a, opts)
	if err != nil {
		t.Fatalf("apg.Build: %v", err)
	}
	return p
}

// TestDirectLeak mirrors Fig. 9 of the paper: getInstalledPackages →
// Log.e (the com.qisiemoji.inputmethod case).
func TestDirectLeak(t *testing.T) {
	a := buildAPK(t, "com.qisiemoji.inputmethod", `
.class Lcom/qisiemoji/inputmethod/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/content/pm/PackageManager;->getInstalledPackages(I)Ljava/util/List; -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->e(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.qisiemoji.inputmethod.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
	l := res.Leaks[0]
	if l.Info != sensitive.InfoAppList || l.Channel != sensitive.ChannelLog {
		t.Fatalf("leak = %+v", l)
	}
	if !strings.Contains(l.Source, "getInstalledPackages") {
		t.Fatalf("source = %q", l.Source)
	}
	if len(l.Path) < 2 {
		t.Fatalf("path = %v", l.Path)
	}
}

// TestInterproceduralLeak: the source value flows through a helper
// method's return value into the sink.
func TestInterproceduralLeak(t *testing.T) {
	a := buildAPK(t, "com.example.flow", `
.class Lcom/example/flow/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Lcom/example/flow/Main;->fetch()Ljava/lang/String; -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.method fetch()Ljava/lang/String; regs=4
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    return v1
.end method
.end class
`, apk.Component{Name: "com.example.flow.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoDeviceID {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestParameterLeak: taint passes into a callee parameter which sinks.
func TestParameterLeak(t *testing.T) {
	a := buildAPK(t, "com.example.param", `
.class Lcom/example/param/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    invoke-virtual {v0, v1}, Lcom/example/param/Main;->save(D)V
    return-void
.end method
.method save(D)V regs=4
    invoke-static {v2, v1}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.param.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoLocation {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestURIQueryLeak mirrors com.easyxapp.secret (§II-B): contacts
// queried via CONTENT_URI and written to the log.
func TestURIQueryLeak(t *testing.T) {
	a := buildAPK(t, "com.easyxapp.secret", `
.class Lcom/easyxapp/secret/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    sget v1, Landroid/provider/ContactsContract$CommonDataKinds$Phone;->CONTENT_URI:Landroid/net/Uri;
    invoke-virtual {v0, v1}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v2
    invoke-static {v3, v2}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.easyxapp.secret.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoContact {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
	if !strings.Contains(res.Leaks[0].Source, "query(") {
		t.Fatalf("source = %q", res.Leaks[0].Source)
	}
}

// TestUriParseLeak: Uri.parse("content://...") feeding query.
func TestUriParseLeak(t *testing.T) {
	a := buildAPK(t, "com.example.uri", `
.class Lcom/example/uri/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    const-string v1, "content://com.android.calendar/events"
    invoke-static {v1}, Landroid/net/Uri;->parse(Ljava/lang/String;)Landroid/net/Uri; -> v2
    invoke-virtual {v0, v2}, Landroid/content/ContentResolver;->query(Landroid/net/Uri;)Landroid/database/Cursor; -> v3
    invoke-virtual {v4, v3}, Ljava/io/FileWriter;->write(Ljava/lang/String;)V
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.uri.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoCalendar ||
		res.Leaks[0].Channel != sensitive.ChannelFile {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestFieldFlow: taint flows through an instance field (iput/iget).
func TestFieldFlow(t *testing.T) {
	a := buildAPK(t, "com.example.field", `
.class Lcom/example/field/Main; extends Landroid/app/Activity;
.field stash:Ljava/lang/String;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getLine1Number()Ljava/lang/String; -> v1
    iput v0, stash, v1
    return-void
.end method
.method onResume()V regs=8
    iget v1, v0, stash
    invoke-static {v2, v1}, Landroid/util/Log;->w(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.field.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoPhone {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestTaintThroughFramework: StringBuilder-style framework calls
// propagate taint from argument to result.
func TestTaintThroughFramework(t *testing.T) {
	a := buildAPK(t, "com.example.sb", `
.class Lcom/example/sb/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    invoke-virtual {v2, v1}, Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder; -> v3
    invoke-virtual {v3}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String; -> v4
    invoke-static {v5, v4}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.sb.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoDeviceID {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestNoLeakWithoutSink: a source with no flow to a sink reports
// nothing.
func TestNoLeakWithoutSink(t *testing.T) {
	a := buildAPK(t, "com.example.clean", `
.class Lcom/example/clean/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/location/Location;->getLatitude()D -> v1
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.clean.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 0 {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestUnreachableSourceIgnored: a leak inside dead code is not
// reported.
func TestUnreachableSourceIgnored(t *testing.T) {
	a := buildAPK(t, "com.example.dead", `
.class Lcom/example/dead/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=4
    return-void
.end method
.method deadCode()V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.dead.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 0 {
		t.Fatalf("dead-code leak reported: %+v", res.Leaks)
	}
}

// TestCallbackParamSource: onLocationChanged's parameter is a location
// source (EdgeMiner + FlowDroid callback modelling).
func TestCallbackParamSource(t *testing.T) {
	a := buildAPK(t, "com.example.cb", `
.class Lcom/example/cb/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    new-instance v1, Lcom/example/cb/Listener;
    invoke-virtual {v0, v2, v3, v4, v1}, Landroid/location/LocationManager;->requestLocationUpdates(Ljava/lang/String;JFLandroid/location/LocationListener;)V
    return-void
.end method
.end class
.class Lcom/example/cb/Listener;
.method onLocationChanged(Landroid/location/Location;)V regs=8
    invoke-static {v2, v1}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.cb.Main"})
	res := analyze(t, a)
	if len(res.Leaks) != 1 || res.Leaks[0].Info != sensitive.InfoLocation {
		t.Fatalf("leaks = %+v", res.Leaks)
	}
}

// TestLeakPathIsWellFormed: every reported path starts at a source
// note and ends at the sink note.
func TestLeakPathIsWellFormed(t *testing.T) {
	a := buildAPK(t, "com.example.flow", `
.class Lcom/example/flow/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Lcom/example/flow/Main;->fetch()Ljava/lang/String; -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
.method fetch()Ljava/lang/String; regs=4
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    return v1
.end method
.end class
`, apk.Component{Name: "com.example.flow.Main"})
	res := analyze(t, a)
	for _, l := range res.Leaks {
		if len(l.Path) < 2 {
			t.Fatalf("path too short: %v", l.Path)
		}
		if !strings.HasPrefix(l.Path[0].Note, "source ") {
			t.Errorf("path start = %q", l.Path[0].Note)
		}
		if !strings.HasPrefix(l.Path[len(l.Path)-1].Note, "sink ") {
			t.Errorf("path end = %q", l.Path[len(l.Path)-1].Note)
		}
	}
}

func TestRetainedInfo(t *testing.T) {
	a := buildAPK(t, "com.example.multi", `
.class Lcom/example/multi/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=8
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    invoke-static {v2, v1}, Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I
    invoke-virtual {v0}, Landroid/location/Location;->getLongitude()D -> v3
    invoke-virtual {v4, v3}, Ljava/io/FileWriter;->write(Ljava/lang/String;)V
    return-void
.end method
.end class
`, apk.Component{Name: "com.example.multi.Main"})
	res := analyze(t, a)
	infos := res.RetainedInfo()
	if len(infos) != 2 {
		t.Fatalf("retained = %v", infos)
	}
	if infos[0] != sensitive.InfoDeviceID || infos[1] != sensitive.InfoLocation {
		t.Fatalf("retained = %v", infos)
	}
}

// TestICCIntentExtraLeak: device id travels via intent extra to a
// service which logs it — the cross-component flow IccTA enables.
func TestICCIntentExtraLeak(t *testing.T) {
	asm := `
.class Lcom/example/icc/Main; extends Landroid/app/Activity;
.method onCreate(Landroid/os/Bundle;)V regs=10
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String; -> v1
    new-instance v2, Landroid/content/Intent;
    const-string v3, "com.example.icc.Uploader"
    invoke-virtual {v2, v3}, Landroid/content/Intent;->setClassName(Ljava/lang/String;)Landroid/content/Intent;
    invoke-virtual {v2, v4, v1}, Landroid/content/Intent;->putExtra(Ljava/lang/String;Ljava/lang/String;)Landroid/content/Intent;
    invoke-virtual {v0, v2}, Landroid/content/Context;->startService(Landroid/content/Intent;)Landroid/content/ComponentName;
    return-void
.end method
.end class
.class Lcom/example/icc/Uploader; extends Landroid/app/Service;
.method onStartCommand(Landroid/content/Intent;II)I regs=8
    invoke-virtual {v1, v4}, Landroid/content/Intent;->getStringExtra(Ljava/lang/String;)Ljava/lang/String; -> v5
    invoke-static {v6, v5}, Landroid/util/Log;->e(Ljava/lang/String;Ljava/lang/String;)I
    const v7, 1
    return v7
.end method
.end class
`
	d, err := dex.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	m := &apk.Manifest{Package: "com.example.icc"}
	m.Application.Activities = []apk.Component{{Name: "com.example.icc.Main"}}
	m.Application.Services = []apk.Component{{Name: "com.example.icc.Uploader"}}
	a := apk.New(m, d)

	res := Analyze(mustAPG(t, a, apg.DefaultOptions()))
	found := false
	for _, l := range res.Leaks {
		if l.Info == sensitive.InfoDeviceID && l.Method.Class == "Lcom/example/icc/Uploader;" {
			found = true
			// The path must record the intent hop.
			hasHop := false
			for _, s := range l.Path {
				if strings.Contains(s.Note, "via intent") {
					hasHop = true
				}
			}
			if !hasHop {
				t.Errorf("leak path missing intent hop: %v", l.Path)
			}
		}
	}
	if !found {
		t.Fatalf("cross-component leak missed: %+v", res.Leaks)
	}

	// Without ICC edges the flow is invisible (the IccTA ablation).
	res = Analyze(mustAPG(t, a, apg.Options{EdgeMiner: true, ICC: false}))
	for _, l := range res.Leaks {
		if l.Method.Class == "Lcom/example/icc/Uploader;" {
			t.Fatalf("leak found without ICC edges: %+v", l)
		}
	}
}
