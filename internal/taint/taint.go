// Package taint implements the static taint analysis of §III-C3 (the
// FlowDroid role): an interprocedural, field- and callback-aware
// source→sink analysis over SDEX bytecode using the APG for call
// resolution. Sources are the sensitive APIs and content-provider URIs
// of the sensitive package; sinks are log/file/network/SMS/Bluetooth
// APIs. Each discovered flow is reported as a Leak with the path of
// hops that realized it.
package taint

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ppchecker/internal/apg"
	"ppchecker/internal/dex"
	"ppchecker/internal/graphdb"
	"ppchecker/internal/sensitive"
)

// Leak is one source→sink flow.
type Leak struct {
	Info    sensitive.Info
	Source  string // source description: API ref or "query(<uri>)"
	Sink    dex.MethodRef
	Channel sensitive.Channel
	// Method contains the sink invocation.
	Method dex.MethodRef
	// Path lists the propagation hops from source to sink.
	Path []Step
}

// Step is one hop of a leak path.
type Step struct {
	Method dex.MethodRef
	Index  int // instruction index within Method
	Note   string
}

// String renders a step for reports.
func (s Step) String() string {
	return fmt.Sprintf("%s@%d: %s", s.Method, s.Index, s.Note)
}

// Result is the analysis outcome.
type Result struct {
	Leaks []Leak
}

// RetainedInfo returns the distinct information types that reach any
// sink (Retain_code of the paper), sorted.
func (r *Result) RetainedInfo() []sensitive.Info {
	seen := map[sensitive.Info]bool{}
	for _, l := range r.Leaks {
		seen[l.Info] = true
	}
	out := make([]sensitive.Info, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// trace is the provenance chain of a taint fact.
type trace struct {
	step   Step
	parent *trace
	depth  int
}

func (t *trace) path() []Step {
	var rev []Step
	for cur := t; cur != nil; cur = cur.parent {
		rev = append(rev, cur.step)
	}
	out := make([]Step, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

const maxTraceDepth = 64

func extend(parent *trace, step Step) *trace {
	if parent != nil && parent.depth >= maxTraceDepth {
		return parent
	}
	d := 0
	if parent != nil {
		d = parent.depth + 1
	}
	return &trace{step: step, parent: parent, depth: d}
}

// factSet maps an information type to its provenance. Merging keeps the
// first trace seen (any witness suffices).
type factSet map[sensitive.Info]*trace

func (f factSet) merge(other factSet) bool {
	changed := false
	for info, tr := range other {
		if _, ok := f[info]; !ok {
			f[info] = tr
			changed = true
		}
	}
	return changed
}

// callbackParamSources models framework callbacks whose parameters
// carry sensitive data, e.g. onLocationChanged(Location).
var callbackParamSources = map[string]sensitive.Info{
	"onLocationChanged": sensitive.InfoLocation,
}

// Analyzer runs taint analysis over one app.
type Analyzer struct {
	p *apg.APG

	regTaint   map[dex.MethodRef][]factSet // per method, per register
	fieldTaint map[string]factSet          // by field name/spec
	retTaint   map[dex.MethodRef]factSet
	callers    map[dex.MethodRef][]dex.MethodRef
	// iccTargets maps a launching method to the component entry methods
	// its intents reach (from the APG's icc edges); intent extras carry
	// taint across this hop.
	iccTargets map[dex.MethodRef][]dex.MethodRef

	// uriTaint tracks registers holding sensitive content URIs
	// (separately from data taint): reg -> uri info with provenance.
	leaks    []Leak
	leakSeen map[string]bool

	scratch *Scratch
}

// Scratch holds the analyzer's reusable interprocedural state: the
// fact-set maps and the worklist buffers. A zero value is ready to
// use; worker pools keep one per arena and pass it to AnalyzeCtxWith
// so repeated analyses stop re-allocating per app. The contained maps
// are cleared (not freed) between runs.
type Scratch struct {
	regTaint   map[dex.MethodRef][]factSet
	fieldTaint map[string]factSet
	retTaint   map[dex.MethodRef]factSet
	callers    map[dex.MethodRef][]dex.MethodRef
	iccTargets map[dex.MethodRef][]dex.MethodRef
	leakSeen   map[string]bool
	work       []dex.MethodRef
	inWork     map[dex.MethodRef]bool
	iccBuf     []graphdb.NodeID
	// uriOut/uriStr are the per-method register maps of uriRegisters,
	// cleared and refilled for each method the worklist visits.
	uriOut map[int]sensitive.URIString
	uriStr map[int]string
}

// reset clears the scratch for the next run, keeping capacity.
func (s *Scratch) reset() {
	if s.regTaint == nil {
		s.regTaint = map[dex.MethodRef][]factSet{}
		s.fieldTaint = map[string]factSet{}
		s.retTaint = map[dex.MethodRef]factSet{}
		s.callers = map[dex.MethodRef][]dex.MethodRef{}
		s.iccTargets = map[dex.MethodRef][]dex.MethodRef{}
		s.leakSeen = map[string]bool{}
		s.inWork = map[dex.MethodRef]bool{}
		return
	}
	clear(s.regTaint)
	clear(s.fieldTaint)
	clear(s.retTaint)
	clear(s.callers)
	clear(s.iccTargets)
	clear(s.leakSeen)
	clear(s.inWork)
	s.work = s.work[:0]
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// maxWorklistRounds bounds the interprocedural fixpoint; a worklist
// still wet after this many rounds indicates an adversarial call graph.
const maxWorklistRounds = 100000

// ErrBudgetExhausted marks an analysis stopped by the round budget
// before reaching a fixpoint.
var ErrBudgetExhausted = errors.New("taint: fixpoint budget exhausted")

// Analyze runs the taint analysis using the given APG. It preserves the
// historical contract of never failing: budget exhaustion silently
// returns the leaks found so far. Use AnalyzeCtx when cancellation and
// budget errors must be observable.
func Analyze(p *apg.APG) *Result {
	res, _ := AnalyzeCtx(context.Background(), p)
	return res
}

// AnalyzeCtx runs the taint analysis, honouring ctx cancellation inside
// the worklist loop. On cancellation or budget exhaustion it returns
// the (partial) result found so far together with the error.
func AnalyzeCtx(ctx context.Context, p *apg.APG) (*Result, error) {
	return AnalyzeCtxWith(ctx, p, nil)
}

// AnalyzeCtxWith is AnalyzeCtx with caller-provided scratch state; a
// nil scratch borrows one from an internal pool. The returned Result
// owns its leaks — only the intermediate fixpoint state is pooled.
func AnalyzeCtxWith(ctx context.Context, p *apg.APG, s *Scratch) (*Result, error) {
	if p == nil {
		return &Result{}, errors.New("taint: nil APG")
	}
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	s.reset()
	a := &Analyzer{
		p:          p,
		regTaint:   s.regTaint,
		fieldTaint: s.fieldTaint,
		retTaint:   s.retTaint,
		callers:    s.callers,
		iccTargets: s.iccTargets,
		leakSeen:   s.leakSeen,
		scratch:    s,
	}
	a.collectICCTargets()
	err := a.run(ctx)
	return &Result{Leaks: a.leaks}, err
}

// collectICCTargets reads the APG's icc edges into a method-level map,
// querying the frozen CSR view.
func (a *Analyzer) collectICCTargets() {
	f := a.p.Frozen()
	buf := a.scratch.iccBuf
	for _, ref := range a.p.Methods() {
		id, ok := a.p.MethodNode(ref)
		if !ok {
			continue
		}
		buf = f.OutInto(buf[:0], id, apg.EdgeICC)
		for _, to := range buf {
			n := f.Node(to)
			target := dex.MethodRef{
				Class: dex.TypeDesc(n.Prop("class")),
				Name:  n.Prop("name"),
				Sig:   n.Prop("sig"),
			}
			a.iccTargets[ref] = append(a.iccTargets[ref], target)
		}
	}
	a.scratch.iccBuf = buf
}

func (a *Analyzer) run(ctx context.Context) error {
	// Seed the worklist with every reachable method, in stable order.
	// Reachability is memoized on the APG and shared with the static
	// collection scan.
	work := a.scratch.work[:0]
	for _, ref := range a.p.Methods() {
		if a.p.MethodReachable(ref) {
			work = append(work, ref)
		}
	}
	inWork := a.scratch.inWork
	for _, w := range work {
		inWork[w] = true
	}
	rounds := 0
	for ; len(work) > 0 && rounds < maxWorklistRounds; rounds++ {
		if rounds%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ref := work[0]
		work = work[1:]
		inWork[ref] = false
		changedCallees, changedRet := a.processMethod(ref)
		for _, c := range changedCallees {
			if a.p.MethodReachable(c) && !inWork[c] {
				inWork[c] = true
				work = append(work, c)
			}
		}
		if changedRet {
			for _, caller := range a.callers[ref] {
				if !inWork[caller] {
					inWork[caller] = true
					work = append(work, caller)
				}
			}
		}
	}
	a.scratch.work = work[:0]
	if len(work) > 0 {
		return fmt.Errorf("%w: %d methods still pending after %d rounds",
			ErrBudgetExhausted, len(work), rounds)
	}
	return nil
}

// regs returns the fact sets of a method, allocating the slice on
// first use. Individual register sets stay nil until first written
// (see taintInto) — reads treat a nil factSet as empty, which saves
// one map allocation per register in the common all-clean case.
func (a *Analyzer) regs(ref dex.MethodRef, numRegs int) []factSet {
	rs, ok := a.regTaint[ref]
	if !ok || len(rs) < numRegs {
		grown := make([]factSet, numRegs)
		copy(grown, rs)
		a.regTaint[ref] = grown
		rs = grown
	}
	return rs
}

// mergeInto merges facts into rs[dst], allocating the destination set
// lazily; reports whether anything changed.
func mergeInto(rs []factSet, dst int, facts factSet) bool {
	if dst < 0 || dst >= len(rs) || len(facts) == 0 {
		return false
	}
	if rs[dst] == nil {
		rs[dst] = make(factSet, len(facts))
	}
	return rs[dst].merge(facts)
}

// processMethod interprets one method to a local fixpoint. It returns
// callees whose param taint changed and whether the return taint
// changed.
func (a *Analyzer) processMethod(ref dex.MethodRef) (changedCallees []dex.MethodRef, changedRet bool) {
	m := a.p.APK.Dex.Lookup(ref)
	if m == nil {
		return nil, false
	}
	if len(m.Code) > apg.MaxMethodCode {
		// Defense in depth: the builder rejects such methods, but an APG
		// assembled by other means must not trigger the O(n²) local
		// fixpoint below.
		return nil, false
	}
	rs := a.regs(ref, m.NumRegs+1)
	// Callback parameter sources (e.g. onLocationChanged's Location).
	if info, ok := callbackParamSources[m.Name]; ok && m.NumParams() > 0 {
		pr := m.ParamReg(0)
		if pr >= 0 && pr < len(rs) {
			src := Step{Method: ref, Index: -1, Note: "callback parameter carries " + string(info)}
			if _, have := rs[pr][info]; !have {
				if rs[pr] == nil {
					rs[pr] = factSet{}
				}
				rs[pr][info] = extend(nil, src)
			}
		}
	}
	calleeChanged := map[dex.MethodRef]bool{}
	uriOf := a.uriRegisters(m)
	// Iterate to a local fixpoint; taint only grows, so this is
	// bounded by (#regs × #infos) per register.
	for pass := 0; pass < len(m.Code)+2; pass++ {
		changed := false
		for i, ins := range m.Code {
			if a.step(ref, m, rs, uriOf, i, ins, calleeChanged, &changedRet) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for c := range calleeChanged {
		changedCallees = append(changedCallees, c)
	}
	sort.Slice(changedCallees, func(i, j int) bool {
		return changedCallees[i].String() < changedCallees[j].String()
	})
	return changedCallees, changedRet
}

// step interprets one instruction; reports whether any fact changed.
func (a *Analyzer) step(ref dex.MethodRef, m *dex.Method, rs []factSet,
	uriOf map[int]sensitive.URIString, i int, ins dex.Instr,
	calleeChanged map[dex.MethodRef]bool, changedRet *bool) bool {

	changed := false
	taintReg := func(dst int, facts factSet) {
		if mergeInto(rs, dst, facts) {
			changed = true
		}
	}
	switch ins.Op {
	case dex.OpMove:
		if ins.B >= 0 && ins.B < len(rs) {
			taintReg(ins.A, rs[ins.B])
		}
	case dex.OpIGet:
		if fs, ok := a.fieldTaint[ins.Str]; ok {
			taintReg(ins.A, fs)
		}
	case dex.OpIPut:
		if ins.B >= 0 && ins.B < len(rs) && len(rs[ins.B]) > 0 {
			fs, ok := a.fieldTaint[ins.Str]
			if !ok {
				fs = factSet{}
				a.fieldTaint[ins.Str] = fs
			}
			if fs.merge(rs[ins.B]) {
				changed = true
			}
		}
	case dex.OpSGet:
		// handled by uriRegisters for URI fields; no data taint.
	case dex.OpReturn:
		if ins.A >= 0 && ins.A < len(rs) && len(rs[ins.A]) > 0 {
			fs, ok := a.retTaint[ref]
			if !ok {
				fs = factSet{}
				a.retTaint[ref] = fs
			}
			if fs.merge(rs[ins.A]) {
				changed = true
				*changedRet = true
			}
		}
	case dex.OpInvokeVirtual, dex.OpInvokeStatic:
		changed = a.stepInvoke(ref, m, rs, uriOf, i, ins, calleeChanged) || changed
	}
	return changed
}

func (a *Analyzer) stepInvoke(ref dex.MethodRef, m *dex.Method, rs []factSet,
	uriOf map[int]sensitive.URIString, i int, ins dex.Instr,
	calleeChanged map[dex.MethodRef]bool) bool {

	changed := false
	taintReg := func(dst int, facts factSet) {
		if mergeInto(rs, dst, facts) {
			changed = true
		}
	}

	// Source: sensitive API.
	if api, ok := sensitive.LookupAPI(ins.Method); ok {
		src := Step{Method: ref, Index: i, Note: "source " + ins.Method.String()}
		taintReg(ins.A, factSet{api.Info: extend(nil, src)})
		return changed
	}
	// Source: content-provider query with a sensitive URI argument.
	if ins.Method.Name == "query" && strings.Contains(string(ins.Method.Class), "ContentResolver") {
		for _, arg := range ins.Args {
			if u, ok := uriOf[arg]; ok {
				src := Step{Method: ref, Index: i, Note: fmt.Sprintf("source query(%s)", u.URI)}
				taintReg(ins.A, factSet{u.Info: extend(nil, src)})
			}
		}
		return changed
	}
	// Intent extras: putExtra taints the intent object itself.
	if ins.Method.Name == "putExtra" && strings.Contains(string(ins.Method.Class), "Intent") {
		if len(ins.Args) >= 2 {
			intentReg := ins.Args[0]
			facts := factSet{}
			for _, valReg := range ins.Args[1:] {
				if valReg < 0 || valReg >= len(rs) {
					continue
				}
				for info, tr := range rs[valReg] {
					if _, ok := facts[info]; !ok {
						facts[info] = tr
					}
				}
			}
			taintReg(intentReg, facts)
		}
		return changed
	}
	// ICC: launching a component with a tainted intent taints the
	// target entry's intent parameter (the IccTA hop).
	if iccLaunchers[ins.Method.Name] && len(ins.Args) >= 2 {
		intentReg := ins.Args[len(ins.Args)-1]
		if intentReg >= 0 && intentReg < len(rs) && len(rs[intentReg]) > 0 {
			for _, target := range a.iccTargets[ref] {
				callee := a.p.APK.Dex.Lookup(target)
				if callee == nil {
					continue
				}
				paramIdx := intentParamIndex(callee)
				if paramIdx < 0 {
					continue
				}
				dst := callee.ParamReg(paramIdx)
				crs := a.regs(callee.Ref(), callee.NumRegs+1)
				if dst >= len(crs) {
					continue
				}
				hop := Step{Method: callee.Ref(), Index: -1,
					Note: fmt.Sprintf("via intent from %s@%d", ref, i)}
				facts := factSet{}
				for info, tr := range rs[intentReg] {
					facts[info] = extend(tr, hop)
				}
				if mergeInto(crs, dst, facts) {
					calleeChanged[callee.Ref()] = true
				}
			}
		}
		return changed
	}
	// Sink: report leaks for tainted sink arguments.
	if sink, ok := sensitive.LookupSink(ins.Method); ok {
		for _, pos := range sink.TaintArgs {
			if pos >= len(ins.Args) {
				continue
			}
			reg := ins.Args[pos]
			if reg < 0 || reg >= len(rs) {
				continue
			}
			for info, tr := range rs[reg] {
				a.report(info, sink, ref, i, tr)
			}
		}
		return changed
	}
	// Defined method: propagate args to params and return taint back.
	if callee := a.p.APK.Dex.Lookup(ins.Method); callee != nil {
		calleeRef := callee.Ref()
		a.noteCaller(calleeRef, ref)
		crs := a.regs(calleeRef, callee.NumRegs+1)
		for ai, argReg := range ins.Args {
			if argReg < 0 || argReg >= len(rs) || len(rs[argReg]) == 0 {
				continue
			}
			// Arg 0 of a virtual call is the receiver → register 0.
			dst := ai
			if ins.Op == dex.OpInvokeVirtual {
				dst = ai // receiver occupies v0, params follow
			}
			if dst >= len(crs) {
				continue
			}
			hop := Step{Method: calleeRef, Index: -1, Note: fmt.Sprintf("via call from %s@%d", ref, i)}
			facts := factSet{}
			for info, tr := range rs[argReg] {
				facts[info] = extend(tr, hop)
			}
			if mergeInto(crs, dst, facts) {
				calleeChanged[calleeRef] = true
			}
		}
		if fs, ok := a.retTaint[calleeRef]; ok {
			hop := Step{Method: ref, Index: i, Note: "return value of " + calleeRef.String()}
			facts := factSet{}
			for info, tr := range fs {
				facts[info] = extend(tr, hop)
			}
			taintReg(ins.A, facts)
		}
		return changed
	}
	// Unknown framework method: conservative taint-through from args to
	// result (e.g. StringBuilder.append, String.valueOf).
	facts := factSet{}
	for _, argReg := range ins.Args {
		if argReg < 0 || argReg >= len(rs) {
			continue
		}
		for info, tr := range rs[argReg] {
			if _, ok := facts[info]; !ok {
				facts[info] = tr
			}
		}
	}
	if len(facts) > 0 {
		taintReg(ins.A, facts)
	}
	return changed
}

func (a *Analyzer) noteCaller(callee, caller dex.MethodRef) {
	for _, c := range a.callers[callee] {
		if c == caller {
			return
		}
	}
	a.callers[callee] = append(a.callers[callee], caller)
}

// report records a leak once per (info, source, sink site).
func (a *Analyzer) report(info sensitive.Info, sink sensitive.Sink, method dex.MethodRef, idx int, tr *trace) {
	srcDesc := ""
	if tr != nil {
		srcDesc = tr.path()[0].Note
	}
	key := string(info) + "|" + srcDesc + "|" + sink.Ref.String() + "|" + method.String() + "|" + fmt.Sprint(idx)
	if a.leakSeen[key] {
		return
	}
	a.leakSeen[key] = true
	sinkStep := Step{Method: method, Index: idx, Note: "sink " + sink.Ref.String()}
	path := append(tr.path(), sinkStep)
	a.leaks = append(a.leaks, Leak{
		Info:    info,
		Source:  strings.TrimPrefix(srcDesc, "source "),
		Sink:    sink.Ref,
		Channel: sink.Channel,
		Method:  method,
		Path:    path,
	})
}

// uriRegisters computes, per register, the sensitive content URI it may
// hold in this method: from const-strings fed to Uri.parse, from URI
// static fields (sget), propagated through moves. Flow-insensitive
// within the method, matching §III-C2's path-collection step.
func (a *Analyzer) uriRegisters(m *dex.Method) map[int]sensitive.URIString {
	// URI values only enter a register through a const-string or sget;
	// methods without either — the common case — get no maps at all,
	// and lookups on the nil map simply miss.
	interesting := false
	for _, ins := range m.Code {
		if ins.Op == dex.OpConstString || ins.Op == dex.OpSGet {
			interesting = true
			break
		}
	}
	if !interesting {
		return nil
	}
	sc := a.scratch
	if sc.uriOut == nil {
		sc.uriOut = map[int]sensitive.URIString{}
		sc.uriStr = map[int]string{}
	}
	clear(sc.uriOut)
	clear(sc.uriStr)
	// The maps alias the scratch; they are valid only until the next
	// uriRegisters call, which is exactly the one-method lifetime the
	// fixpoint needs.
	out, strConst := sc.uriOut, sc.uriStr
	for pass := 0; pass < 2; pass++ {
		for _, ins := range m.Code {
			switch ins.Op {
			case dex.OpConstString:
				strConst[ins.A] = ins.Str
				if u, ok := sensitive.LookupURI(ins.Str); ok {
					out[ins.A] = u
				}
			case dex.OpSGet:
				if f, ok := sensitive.LookupURIField(ins.Str); ok {
					if u, ok2 := sensitive.LookupURI(f.Value); ok2 {
						out[ins.A] = u
					} else {
						// Field with a URI outside the string table:
						// classify via its permission.
						infos := sensitive.InfoForPermission(f.Permission)
						if len(infos) > 0 {
							out[ins.A] = sensitive.URIString{URI: f.Value, Info: infos[0], Permission: f.Permission}
						}
					}
				}
			case dex.OpMove:
				if u, ok := out[ins.B]; ok {
					out[ins.A] = u
				}
				if s, ok := strConst[ins.B]; ok {
					strConst[ins.A] = s
				}
			case dex.OpInvokeStatic, dex.OpInvokeVirtual:
				if ins.Method.Name == "parse" && strings.Contains(string(ins.Method.Class), "Uri") {
					if len(ins.Args) > 0 {
						if s, ok := strConst[ins.Args[len(ins.Args)-1]]; ok {
							if u, ok2 := sensitive.LookupURI(s); ok2 {
								out[ins.A] = u
							}
						}
					}
				}
			}
		}
	}
	return out
}

// iccLaunchers mirrors the APG's launcher table: method name → the
// intent occupies the last argument by our conventions.
var iccLaunchers = map[string]bool{
	"startActivity": true, "startActivityForResult": true,
	"startService": true, "sendBroadcast": true, "bindService": true,
}

// intentParamIndex returns the index of the first Intent-typed
// parameter of a method, or -1.
func intentParamIndex(m *dex.Method) int {
	for i, t := range dex.ParamTypes(m.Sig) {
		if strings.Contains(string(t), "Intent") {
			return i
		}
	}
	return -1
}
