package stream

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppchecker/internal/eval"
)

// TestTailFollowsAppends: a tail over a live journal folds exactly the
// records appended so far, poll by poll, and its folded state matches
// an authoritative OpenJournal replay of the same file.
func TestTailFollowsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.journal")
	j, _, err := OpenJournal(path, "tail-test", JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	tail := NewTail(path)
	if n, err := tail.Poll(); err != nil || n != 0 {
		t.Fatalf("header-only poll: n=%d err=%v", n, err)
	}

	appendApp := func(name, outcome string, retries int) {
		t.Helper()
		if err := j.Append(Record{App: name, Hash: "h-" + name, Outcome: outcome, Retries: retries}); err != nil {
			t.Fatal(err)
		}
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	appendApp("a", eval.OutcomeChecked.String(), 0)
	appendApp("b", eval.OutcomeDegraded.String(), 1)
	if n, err := tail.Poll(); err != nil || n != 2 {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	appendApp("c", eval.OutcomeFailed.String(), 0)
	if n, err := tail.Poll(); err != nil || n != 1 {
		t.Fatalf("second batch: n=%d err=%v", n, err)
	}
	// Idle poll folds nothing and keeps the offset put.
	off := tail.Offset()
	if n, err := tail.Poll(); err != nil || n != 0 || tail.Offset() != off {
		t.Fatalf("idle poll: n=%d err=%v offset %d -> %d", n, err, off, tail.Offset())
	}

	if tail.Records() != 3 {
		t.Fatalf("Records() = %d, want 3", tail.Records())
	}
	j.Close()
	_, replay, err := OpenJournal(path, "tail-test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, want := tail.Replay(), replay
	if got.Records != want.Records || got.Duplicates != want.Duplicates || got.Stats != want.Stats {
		t.Fatalf("tail replay %+v != authoritative replay %+v", got, want)
	}
	for name, rec := range want.Done {
		if got.Done[name] != rec {
			t.Fatalf("tail Done[%q] = %+v, want %+v", name, got.Done[name], rec)
		}
	}
}

// TestTailWaitsForPartialLine: a record prefix without its newline is
// an append in flight, not corruption — the tail must leave it alone
// and consume the record once the rest lands.
func TestTailWaitsForPartialLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	header, _ := json.Marshal(Record{Type: RecordHeader, Version: JournalVersion, Source: "tail-test"})
	full, _ := json.Marshal(Record{Type: RecordApp, Seq: 1, App: "whole", Hash: "h1",
		Outcome: eval.OutcomeChecked.String()})
	partial, _ := json.Marshal(Record{Type: RecordApp, Seq: 2, App: "half", Hash: "h2",
		Outcome: eval.OutcomeChecked.String()})
	cut := len(partial) / 2

	content := string(header) + "\n" + string(full) + "\n" + string(partial[:cut])
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	tail := NewTail(path)
	if n, err := tail.Poll(); err != nil || n != 1 {
		t.Fatalf("poll over torn tail: n=%d err=%v", n, err)
	}
	if tail.Records() != 1 {
		t.Fatalf("Records() = %d, want 1 (partial line must not fold)", tail.Records())
	}

	// The writer finishes the append; the next poll picks it up.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(partial[cut:], '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n, err := tail.Poll(); err != nil || n != 1 {
		t.Fatalf("poll after completion: n=%d err=%v", n, err)
	}
	if _, ok := tail.Replay().Done["half"]; !ok {
		t.Fatal("completed record was not folded")
	}
}

// TestTailMissingFile: the primary may not have created the journal
// yet; polling a missing file is an empty result, not an error.
func TestTailMissingFile(t *testing.T) {
	tail := NewTail(filepath.Join(t.TempDir(), "nonexistent.journal"))
	if n, err := tail.Poll(); err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
	if tail.Records() != 0 || tail.Offset() != 0 {
		t.Fatalf("missing file mutated state: records=%d offset=%d", tail.Records(), tail.Offset())
	}
}

// TestTailCorruptCompleteLine: a newline-terminated line that does not
// parse is real corruption (appends are sequential) and must surface
// as an error, not be skipped.
func TestTailCorruptCompleteLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.journal")
	header, _ := json.Marshal(Record{Type: RecordHeader, Version: JournalVersion, Source: "tail-test"})
	if err := os.WriteFile(path, []byte(string(header)+"\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tail := NewTail(path)
	_, err := tail.Poll()
	if err == nil {
		t.Fatal("corrupt complete line polled clean")
	}
	if !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("unexpected error: %v", err)
	}
}
