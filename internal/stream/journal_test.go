package stream

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
)

// TestJournalRoundTrip: records written to a fresh journal come back
// on reopen with their outcomes folded into the replay stats.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Records != 0 || len(replay.Done) != 0 || replay.Truncated {
		t.Fatalf("fresh journal replay not empty: %+v", replay)
	}
	recs := []Record{
		{App: "a", Hash: "h1", Outcome: "checked"},
		{App: "b", Hash: "h2", Outcome: "degraded", Retries: 2, Partial: true},
		{App: "c", Hash: "h3", Outcome: "failed", Retries: 1, Quarantined: true},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if replay.Records != 3 || replay.Duplicates != 0 || replay.Truncated {
		t.Fatalf("replay = %+v", replay)
	}
	want := eval.RunStats{Apps: 3, Checked: 1, Degraded: 1, Failed: 1, Retried: 3}
	if replay.Stats != want {
		t.Fatalf("replay stats = %+v, want %+v", replay.Stats, want)
	}
	if rec := replay.Done["c"]; !rec.Quarantined || rec.Hash != "h3" || rec.Seq != 3 {
		t.Fatalf("record c = %+v", rec)
	}
}

// TestJournalTornTailRecovery: a crash mid-append leaves a partial
// final line; reopening drops it, truncates the file, and further
// appends produce a journal with no trace of the torn record.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{App: "a", Hash: "h1", Outcome: "checked"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn append: half a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"app","seq":2,"app":"b","outc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Truncated {
		t.Fatal("torn tail not reported")
	}
	if replay.Records != 1 || len(replay.Done) != 1 {
		t.Fatalf("replay after torn tail = %+v", replay)
	}
	if err := j2.Append(Record{App: "b", Hash: "h2", Outcome: "checked"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\n") != 3 { // header + a + b; torn bytes gone
		t.Fatalf("journal after recovery:\n%s", data)
	}
	// And the recovered journal replays clean.
	j3, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if replay.Truncated || replay.Records != 2 {
		t.Fatalf("second replay = %+v", replay)
	}
}

// TestJournalTornMiddleGarbage: an unparseable line anywhere truncates
// from that point — everything after a corruption is untrustworthy.
func TestJournalTornMiddleGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"a", "b"} {
		if err := j.Append(Record{App: app, Outcome: "checked"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0); err == nil {
		f.WriteString("\x00garbage line\n")
		f.WriteString(`{"type":"app","app":"c","outcome":"checked"}` + "\n")
		f.Close()
	}
	j2, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !replay.Truncated || replay.Records != 2 {
		t.Fatalf("replay = %+v, want 2 records with truncation", replay)
	}
	if _, ok := replay.Done["c"]; ok {
		t.Fatal("record after garbage was trusted")
	}
}

// TestJournalFsyncBatching: fsyncs are batched per FsyncEvery, not per
// append, and the counters land in the observer.
func TestJournalFsyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	observer := obs.New()
	j, _, err := OpenJournal(path, "test", JournalOptions{
		FsyncEvery:    10,
		FsyncInterval: time.Hour, // count-driven only
		Observer:      observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := j.Append(Record{App: string(rune('a' + i)), Outcome: "checked"}); err != nil {
			t.Fatal(err)
		}
	}
	records, fsyncs := j.Stats()
	if records != 25 {
		t.Fatalf("records = %d", records)
	}
	// Header sync + two full batches; the 5-record tail is pending.
	if fsyncs != 3 {
		t.Fatalf("fsyncs = %d, want 3 (header + 2 batches)", fsyncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, fsyncs = j.Stats(); fsyncs != 4 {
		t.Fatalf("fsyncs after close = %d, want 4", fsyncs)
	}
	snap := observer.Snapshot()
	if v, _ := snap.Counter("stream-journal-records"); v != 25 {
		t.Fatalf("stream-journal-records = %d", v)
	}
	if v, _ := snap.Counter("stream-journal-fsyncs"); v != 4 {
		t.Fatalf("stream-journal-fsyncs = %d", v)
	}
}

// TestJournalDuplicateDetection: duplicate app records (which a
// correct run never writes) are counted, not double-folded.
func TestJournalDuplicateDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{App: "a", Outcome: "checked"})
	j.Append(Record{App: "a", Outcome: "failed"})
	j.Close()
	_, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Duplicates != 1 || replay.Stats.Apps != 1 || replay.Stats.Checked != 1 || replay.Stats.Failed != 0 {
		t.Fatalf("replay = %+v (stats %+v)", replay, replay.Stats)
	}
}

// TestHashBytesSectionBoundaries: the length-prefixed hash cannot
// collide across section boundaries.
func TestHashBytesSectionBoundaries(t *testing.T) {
	if HashBytes([]byte("ab"), []byte("c")) == HashBytes([]byte("a"), []byte("bc")) {
		t.Fatal("section boundary collision")
	}
	if HashBytes([]byte("ab")) == HashBytes([]byte("ab"), nil) {
		t.Fatal("trailing empty section collision")
	}
	if HashBytes([]byte("x")) != HashBytes([]byte("x")) {
		t.Fatal("hash not deterministic")
	}
}
