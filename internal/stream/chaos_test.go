package stream

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"

	"ppchecker/internal/core"
	"ppchecker/internal/obs"
)

// TestChaosZeroLossNoDuplicates: with the default fault mix injected —
// worker panics, producer stalls, slow I/O — every app still completes
// exactly once: none lost, none journaled twice, none failed (the
// retry budget rescues every panic victim).
func TestChaosZeroLossNoDuplicates(t *testing.T) {
	const n = 40
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "chaos", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultFaultPlan(1)
	plan.StallFor = 2 * time.Millisecond // keep the test fast
	plan.SlowFor = time.Millisecond
	src := NewChaosSource(NewFirehoseSource(17, n), plan)
	observer := obs.New()
	stats, err := Run(context.Background(), src, Options{
		Workers:    3,
		MaxRetries: 2,
		Observer:   observer,
		Journal:    j,
		Replay:     replay,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != n {
		t.Fatalf("apps = %d, want %d (lost work under chaos)", stats.Apps, n)
	}
	if stats.Failed != 0 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v: retry budget did not rescue the panic victims", stats.RunStats)
	}
	if stats.Retried == 0 {
		t.Fatal("no retries recorded — the chaos panics never fired")
	}
	j.Close()
	_, replay2, err := OpenJournal(path, "chaos", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Records != n || replay2.Duplicates != 0 {
		t.Fatalf("journal = %d records, %d duplicates; want %d/0", replay2.Records, replay2.Duplicates, n)
	}
	if bareStats(replay2.Stats) != bareStats(stats.RunStats) {
		t.Fatalf("journal folds to %+v, run said %+v", replay2.Stats, stats.RunStats)
	}
}

// poisonSource emits apps that all degrade at the same stage — the
// systemic-failure shape (poisoned lexicon, corrupt shard) the breaker
// exists for.
type poisonSource struct {
	n    int
	next int
}

func (s *poisonSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= s.n {
		return nil, io.EOF
	}
	name := "poison" + string(rune('a'+s.next%26))
	s.next++
	return &Item{
		Name: name,
		Hash: HashBytes([]byte(name)),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			rep := &core.Report{App: name}
			rep.AddDegraded(&core.StageError{Stage: core.StageDecode, App: name, Err: errors.New("poisoned shard")})
			return rep, nil
		},
	}, nil
}

// TestChaosBreakerTripsAndQuarantines: sustained same-stage failure
// trips the breaker mid-stream; subsequent apps run quarantined and
// both land in the stats and the metrics.
func TestChaosBreakerTripsAndQuarantines(t *testing.T) {
	observer := obs.New()
	stats, err := Run(context.Background(), &poisonSource{n: 20}, Options{
		Workers:  1, // deterministic failure ordering
		Observer: observer,
		Breaker:  NewBreaker(BreakerConfig{Threshold: 4, Cooldown: 50}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != 20 || stats.Degraded != 20 {
		t.Fatalf("stats = %+v", stats.RunStats)
	}
	if stats.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", stats.BreakerTrips)
	}
	// Threshold 4: apps 1-4 trip it, apps 6-20 see it open (app 5's
	// Quarantine call observes the trip one app late at worst).
	if stats.Quarantined < 14 {
		t.Fatalf("quarantined = %d, want >= 14", stats.Quarantined)
	}
	snap := observer.Snapshot()
	if v, _ := snap.Counter("stream-breaker-trips"); v != 1 {
		t.Fatalf("stream-breaker-trips counter = %d", v)
	}
	if v, _ := snap.Counter("stream-quarantined"); v != int64(stats.Quarantined) {
		t.Fatalf("stream-quarantined counter = %d, stats %d", v, stats.Quarantined)
	}
}

// failSource emits apps that fail outright every attempt, to exercise
// retry-budget exhaustion accounting.
type failSource struct {
	n    int
	next int
}

func (s *failSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= s.n {
		return nil, io.EOF
	}
	name := "hardfail" + string(rune('a'+s.next))
	s.next++
	return &Item{
		Name: name,
		Hash: HashBytes([]byte(name)),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			return nil, errors.New("unrecoverable")
		},
	}, nil
}

// TestChaosRetryExhaustion: an app that fails every attempt is counted
// as a retry exhaustion, distinct from plain failure.
func TestChaosRetryExhaustion(t *testing.T) {
	observer := obs.New()
	stats, err := Run(context.Background(), &failSource{n: 3}, Options{
		Workers:    1,
		MaxRetries: 2,
		Observer:   observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 3 || stats.RetryExhaustions != 3 {
		t.Fatalf("failed = %d exhaustions = %d, want 3/3", stats.Failed, stats.RetryExhaustions)
	}
	if stats.Retried != 6 {
		t.Fatalf("retried = %d, want 6 (2 per app)", stats.Retried)
	}
	if v, _ := observer.Snapshot().Counter("stream-retry-exhaustions"); v != 3 {
		t.Fatalf("stream-retry-exhaustions counter = %d", v)
	}
}

// TestChaosResumeUnderFaults: a chaos run cut short and resumed (still
// under chaos) converges to the same RunStats as a clean uninterrupted
// run — durability and fault injection compose.
func TestChaosResumeUnderFaults(t *testing.T) {
	const seed, n, cut = 23, 32, 11
	clean, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "chaos", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan := FaultPlan{Seed: 1, PanicEvery: 6}
	if _, err := Run(context.Background(), NewChaosSource(NewFirehoseSource(seed, cut), plan), Options{
		Workers: 2, MaxRetries: 2, Journal: j, Replay: replay,
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, replay2, err := OpenJournal(path, "chaos", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, err := Run(context.Background(), NewChaosSource(NewFirehoseSource(seed, n), plan), Options{
		Workers: 2, MaxRetries: 2, Journal: j2, Replay: replay2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Retried differs (chaos injects retries; the clean run has none),
	// but the outcome counts must match the clean run exactly.
	g, w := bareStats(got.RunStats), bareStats(clean.RunStats)
	g.Retried, w.Retried = 0, 0
	if g != w {
		t.Fatalf("chaos-resumed outcomes %+v != clean %+v", got.RunStats, clean.RunStats)
	}
}
