package stream

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"testing"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/obs"
	"ppchecker/internal/synth"
)

// itemSource streams a fixed in-memory item list — the minimal source
// for tests that need full control over each item's Run closure. When
// wait is non-nil, producing item waitAt blocks until it is closed,
// letting a test order producer progress against worker state.
type itemSource struct {
	items  []*Item
	next   int
	waitAt int
	wait   <-chan struct{}
}

func (s *itemSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.items) {
		return nil, io.EOF
	}
	if s.wait != nil && s.next == s.waitAt {
		<-s.wait
	}
	it := s.items[s.next]
	s.next++
	return it, nil
}

// TestQueueHighWaterCoversStalledProducer pins the queue-accounting
// contract: QueueHighWater must cover the true peak of
// produced-but-not-yet-consumed items, including the item a stalled
// producer holds while blocked on a full queue. The old accounting
// incremented only after a successful send (while workers decrement on
// receive), so the counter could never exceed the channel capacity and
// undercounted the real peak of depth+1.
func TestQueueHighWaterCoversStalledProducer(t *testing.T) {
	const depth, n = 4, 7
	gate := make(chan struct{})    // closed on the first stall: releases the worker
	entered := make(chan struct{}) // closed when the worker has consumed item 0
	var release, consumed sync.Once
	items := make([]*Item, 0, n)
	for i := 0; i < n; i++ {
		first := i == 0
		items = append(items, &Item{
			Name: fmt.Sprintf("app%02d", i),
			Hash: fmt.Sprintf("%04d", i),
			Run: func(ctx context.Context, _ *core.Checker) (*core.Report, error) {
				if first {
					// The worker has received item 0 and finished its
					// queue accounting; only now may the producer push
					// the rest, so the interleaving is fixed.
					consumed.Do(func() { close(entered) })
					// Hold the single worker until the producer has
					// demonstrably stalled on a full queue.
					<-gate
				}
				return &core.Report{App: "app"}, nil
			},
		})
	}
	src := &itemSource{items: items, waitAt: 1, wait: entered}
	stats, err := Run(context.Background(), src, Options{
		Workers:    1,
		QueueDepth: depth,
		onStall:    func() { release.Do(func() { close(gate) }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackpressureStalls < 1 {
		t.Fatalf("expected at least one backpressure stall, got %d", stats.BackpressureStalls)
	}
	// Peak outstanding: depth items in the channel plus the one in the
	// stalled producer's hand (the worker-held item was already
	// consumed). Anything lower undercounts the real queue depth.
	if stats.QueueHighWater < depth+1 {
		t.Fatalf("QueueHighWater = %d, want >= %d (true peak under a stalled producer)",
			stats.QueueHighWater, depth+1)
	}
}

// TestResumePermissionOnlyChangeReanalyzed pins the resume identity of
// in-memory datasets: mutating only an app's manifest permissions —
// policy and description untouched — must invalidate its journal
// checkpoint and force re-analysis on resume. The old DatasetSource
// hash covered only (policy, description, name), so a permission or
// bytecode change between runs silently replayed stale findings.
func TestResumePermissionOnlyChangeReanalyzed(t *testing.T) {
	const seed, n, victim = 5, 6, 2
	fh := synth.NewFirehose(seed)
	apps := make([]synth.GeneratedApp, n)
	for i := range apps {
		ga, err := fh.App(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		apps[i] = ga
	}
	ds := &synth.Dataset{Apps: apps}

	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "dataset", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), NewDatasetSource(ds), Options{
		Workers: 2, Journal: j, Replay: replay,
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Mutate ONLY the code inputs of one app between journal and
	// resume: one extra uses-permission, nothing else.
	m := apps[victim].App.APK.Manifest
	m.Permissions = append(m.Permissions, apk.Permission{Name: "android.permission.READ_CALL_LOG"})

	j2, replay2, err := OpenJournal(path, "dataset", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var analyzed []string
	var mu sync.Mutex
	got, err := Run(context.Background(), NewDatasetSource(ds), Options{
		Workers: 2, Journal: j2, Replay: replay2,
		OnResult: func(r Result) {
			mu.Lock()
			analyzed = append(analyzed, r.Name)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reanalyzed != 1 {
		t.Fatalf("Reanalyzed = %d, want 1 (permission-only change must invalidate the checkpoint)",
			got.Reanalyzed)
	}
	if len(analyzed) != 1 || analyzed[0] != apps[victim].App.Name {
		t.Fatalf("resume analyzed %v, want exactly [%s]", analyzed, apps[victim].App.Name)
	}
	if got.Apps != n {
		t.Fatalf("Apps = %d, want %d", got.Apps, n)
	}
}

// TestJournalAppendFailureSurfacedImmediately: a failing journal is a
// durability loss the run must report as it happens — on the
// stream-journal-errors counter and Stats.JournalErrors — not only via
// Run's deferred error return.
func TestJournalAppendFailureSurfacedImmediately(t *testing.T) {
	const n = 5
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Close the journal out from under the run: every append fails
	// deterministically, the cheapest stand-in for a dead disk.
	j.Close()

	observer := obs.New()
	stats, err := Run(context.Background(), NewFirehoseSource(9, n), Options{
		Workers: 2, Journal: j, Observer: observer,
	})
	if err == nil {
		t.Fatal("Run did not report the journal failure")
	}
	if stats.JournalErrors != n {
		t.Fatalf("JournalErrors = %d, want %d", stats.JournalErrors, n)
	}
	if v, ok := stats.Metrics.Counter("stream-journal-errors"); !ok || v != n {
		t.Fatalf("stream-journal-errors counter = %d (present %v), want %d", v, ok, n)
	}
	// The analyses themselves still completed: degraded durability,
	// not a dead run.
	if stats.Apps != n {
		t.Fatalf("Apps = %d, want %d", stats.Apps, n)
	}
}
