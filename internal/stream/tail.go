package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Tail incrementally replays a checkpoint journal that another process
// (a live primary coordinator) is still appending to. It is the
// follower half of standby failover: a standby polls the tail to keep
// a warm copy of the folded state, then — at promotion — reopens the
// journal authoritatively with OpenJournal, whose replay is the
// promotion source of truth (it also heals a torn tail, which a
// read-only follower must never do).
//
// Only complete, newline-terminated lines are consumed: the writer
// buffers appends, so a poll can observe a record's prefix before its
// newline lands. That partial line is a write in flight, not
// corruption — the tail leaves its offset put and re-reads it next
// poll. A complete line that does not parse, by contrast, is real
// corruption (appends are sequential, so every newline-terminated
// prefix of a healthy journal is intact records) and is surfaced as an
// error.
//
// Not safe for concurrent use; the standby's single follow loop owns
// it.
type Tail struct {
	path   string
	offset int64
	replay *Replay
}

// NewTail builds a tail over the journal at path. The file need not
// exist yet — the primary may not have created it.
func NewTail(path string) *Tail {
	return &Tail{path: path, replay: &Replay{Done: map[string]Record{}}}
}

// Poll folds any complete records appended since the last call and
// returns how many app records were folded this call. A missing file
// folds nothing and is not an error.
func (t *Tail) Poll() (int, error) {
	f, err := os.Open(t.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(t.offset, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(f)
	folded := 0
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if err == io.EOF {
				// Nothing, or a partial line: an append in flight.
				// Leave the offset at the line start for the next poll.
				return folded, nil
			}
			return folded, err
		}
		var rec Record
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			return folded, fmt.Errorf("stream: tail %s: corrupt record at offset %d: %w",
				t.path, t.offset, uerr)
		}
		t.offset += int64(len(line))
		if rec.Type == RecordApp {
			folded++
		}
		foldRecord(t.replay, rec)
	}
}

// Replay exposes the folded follower state. The caller must not mutate
// it; it remains owned by the tail.
func (t *Tail) Replay() *Replay { return t.replay }

// Records returns how many app records have been folded so far.
func (t *Tail) Records() int { return t.replay.Records }

// Offset returns the byte position just past the last consumed record.
func (t *Tail) Offset() int64 { return t.offset }
