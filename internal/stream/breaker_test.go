package stream

import (
	"errors"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/eval"
)

// degradedAt builds a report degraded at the given stage.
func degradedAt(stage core.Stage) *core.Report {
	r := &core.Report{App: "x"}
	r.AddDegraded(&core.StageError{Stage: stage, App: "x", Err: errors.New("boom")})
	return r
}

// TestBreakerTripAndQuarantine: Threshold consecutive same-stage
// failures trip the breaker; the next apps run quarantined; after
// Cooldown apps it half-opens and a clean probe closes it.
func TestBreakerTripAndQuarantine(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 2})
	if b.Quarantine() {
		t.Fatal("fresh breaker quarantines")
	}
	for i := 0; i < 2; i++ {
		if tripped := b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded); len(tripped) != 0 {
			t.Fatalf("tripped early at %d: %v", i, tripped)
		}
	}
	if tripped := b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded); len(tripped) != 1 || tripped[0] != string(core.StageDecode) {
		t.Fatalf("third failure did not trip: %v", tripped)
	}
	if state, _ := b.Status(); state != BreakerOpen {
		t.Fatalf("state = %v, want open", state)
	}
	// Cooldown = 2: the next app is quarantined, then the window
	// expires and the breaker half-opens for a probe.
	if !b.Quarantine() {
		t.Fatal("app 1 after trip not quarantined")
	}
	if b.Quarantine() {
		t.Fatal("cooldown expiry did not half-open")
	}
	if state, _ := b.Status(); state != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", state)
	}
	// Clean probe closes it.
	b.Observe(&core.Report{App: "probe"}, eval.OutcomeChecked)
	if state, _ := b.Status(); state != BreakerClosed {
		t.Fatalf("state after clean probe = %v, want closed", state)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

// TestBreakerFailedProbeReopens: a failing probe goes straight back to
// open and counts a second trip.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: 1})
	b.Observe(degradedAt(core.StageStatic), eval.OutcomeDegraded)
	b.Observe(degradedAt(core.StageStatic), eval.OutcomeDegraded)
	if state, _ := b.Status(); state != BreakerOpen {
		t.Fatalf("not open after threshold: %v", state)
	}
	b.Quarantine() // cooldown 1 → half-open
	if state, _ := b.Status(); state != BreakerHalfOpen {
		t.Fatalf("not half-open: %v", state)
	}
	if tripped := b.Observe(degradedAt(core.StageStatic), eval.OutcomeDegraded); len(tripped) != 1 {
		t.Fatalf("failed probe did not re-trip: %v", tripped)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

// TestBreakerResetOnSuccess: a clean app between failures resets the
// consecutive count — only sustained cross-app failure trips.
func TestBreakerResetOnSuccess(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2})
	b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded)
	b.Observe(&core.Report{App: "ok"}, eval.OutcomeChecked)
	if tripped := b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded); len(tripped) != 0 {
		t.Fatalf("tripped without consecutive failures: %v", tripped)
	}
	if state, _ := b.Status(); state != BreakerClosed {
		t.Fatalf("state = %v", state)
	}
}

// TestBreakerPerStageIndependence: failures at different stages track
// independently; one stage tripping does not count for another.
func TestBreakerPerStageIndependence(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: 100})
	b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded)
	b.Observe(degradedAt(core.StageStatic), eval.OutcomeDegraded)
	b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded)
	// decode failed twice but not consecutively (the static failure's
	// report had no decode error, resetting decode's run).
	if state, _ := b.Status(); state != BreakerClosed {
		t.Fatalf("state = %v, want closed", state)
	}
	b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded)
	if state, rows := b.Status(); state != BreakerOpen || len(rows) != 2 {
		t.Fatalf("state = %v rows = %v", state, rows)
	}
}

// TestBreakerDisabledAndNil: a zero config and a nil breaker are
// inert.
func TestBreakerDisabledAndNil(t *testing.T) {
	var nilB *Breaker
	if nilB.Quarantine() || nilB.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded) != nil || nilB.Trips() != 0 {
		t.Fatal("nil breaker not inert")
	}
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 100; i++ {
		b.Observe(degradedAt(core.StageDecode), eval.OutcomeDegraded)
	}
	if b.Quarantine() || b.Trips() != 0 {
		t.Fatal("disabled breaker tripped")
	}
}
