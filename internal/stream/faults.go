package stream

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ppchecker/internal/core"
)

// FaultPlan extends the synth.Corruptor idea to the stream layer
// itself: instead of corrupting app bytes, it injects failures into
// the machinery around the pipeline — panicking workers, a stalling
// producer, slow I/O inside an analysis. All injections are
// deterministic for a given Seed, so a chaos run is replayable.
//
// The invariant every chaos test asserts: whatever is injected, no
// app is lost and no app is journaled twice.
type FaultPlan struct {
	// Seed drives victim selection.
	Seed int64
	// PanicEvery makes the first attempt of every Nth app panic inside
	// the worker (the retry budget then rescues it); 0 disables.
	PanicEvery int
	// StallEvery makes the producer sleep StallFor before emitting
	// every Nth item (a stalled upstream); 0 disables.
	StallEvery int
	StallFor   time.Duration
	// SlowEvery makes every Nth app's analysis sleep SlowFor first
	// (slow storage under the read path); 0 disables.
	SlowEvery int
	SlowFor   time.Duration
}

// DefaultFaultPlan is the chaos mix the soak smoke runs: a worker
// panic every 7th app, a 20ms producer stall every 11th item, 5ms of
// slow I/O every 5th app.
func DefaultFaultPlan(seed int64) FaultPlan {
	return FaultPlan{
		Seed:       seed,
		PanicEvery: 7,
		StallEvery: 11, StallFor: 20 * time.Millisecond,
		SlowEvery: 5, SlowFor: 5 * time.Millisecond,
	}
}

// Active reports whether the plan injects anything at all.
func (p FaultPlan) Active() bool {
	return p.PanicEvery > 0 || p.StallEvery > 0 || p.SlowEvery > 0
}

// ChaosSource wraps a source with the plan's producer- and
// analysis-side faults.
type ChaosSource struct {
	src  Source
	plan FaultPlan
	n    int

	mu       sync.Mutex
	attempts map[string]int
}

// NewChaosSource builds the wrapper.
func NewChaosSource(src Source, plan FaultPlan) *ChaosSource {
	return &ChaosSource{src: src, plan: plan, attempts: map[string]int{}}
}

// Next stalls when the plan says so, then decorates the item's Run
// with the analysis-side faults.
func (c *ChaosSource) Next(ctx context.Context) (*Item, error) {
	c.n++
	if c.plan.StallEvery > 0 && c.n%c.plan.StallEvery == 0 && c.plan.StallFor > 0 {
		select {
		case <-time.After(c.plan.StallFor):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	item, err := c.src.Next(ctx)
	if err != nil {
		return nil, err
	}
	idx := c.n
	inner := item.Run
	panicVictim := c.plan.PanicEvery > 0 && idx%c.plan.PanicEvery == 0
	slowVictim := c.plan.SlowEvery > 0 && idx%c.plan.SlowEvery == 0 && c.plan.SlowFor > 0
	if panicVictim || slowVictim {
		name := item.Name
		item.Run = func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			if slowVictim {
				select {
				case <-time.After(c.plan.SlowFor):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if panicVictim && c.firstAttempt(name) {
				panic(fmt.Sprintf("chaos: injected worker panic for %s", name))
			}
			return inner(ctx, checker)
		}
	}
	return item, nil
}

// firstAttempt reports (and records) whether this is the app's first
// analysis attempt — injected panics hit only the first attempt, so
// the retry budget can prove it rescues the app.
func (c *ChaosSource) firstAttempt(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts[name]++
	return c.attempts[name] == 1
}
