package stream

import (
	"context"
	"errors"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
)

// Options configures a streaming run.
type Options struct {
	// Workers is the analysis pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the producer→worker queue; <= 0 means 2x
	// workers. A full queue blocks the producer (backpressure) rather
	// than growing memory.
	QueueDepth int
	// PerAppTimeout, MaxRetries, RetryBackoff, RetryBackoffMax and
	// RetryJitter have eval.RunOptions semantics.
	PerAppTimeout   time.Duration
	MaxRetries      int
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	RetryJitter     float64
	// CheckerOptions configure the per-worker checkers.
	CheckerOptions []core.CheckerOption
	// Observer instruments the run; the stream layer publishes its
	// queue/backpressure/breaker/journal counters to it.
	Observer *obs.Observer
	// SharedAnalysisCache has eval.RunOptions semantics.
	SharedAnalysisCache *core.AnalysisCache
	// Journal, when non-nil, is the durable checkpoint log; every
	// completed app (never a skipped one) is appended.
	Journal *Journal
	// Replay is the recovered state from OpenJournal. Its folded
	// outcomes seed the run's stats and its Done set short-circuits
	// matching items without re-analysis.
	Replay *Replay
	// Breaker is the cross-app circuit breaker; nil runs without one.
	Breaker *Breaker
	// Drain, when non-nil, is the graceful-drain signal: once it is
	// closed the producer stops pulling new items, the queue and every
	// in-flight app run to completion and are checkpointed, and Run
	// returns with Stats.Drained set. Contrast ctx cancellation, which
	// abandons in-flight work as Skipped (and unjournaled).
	Drain <-chan struct{}
	// OnResult, when non-nil, observes each completed app as it
	// finishes. The stream retains no reports itself — bounded memory
	// over an endless firehose is the contract — so this is the only
	// way to see them.
	OnResult func(Result)
	// onStall, when non-nil, observes each backpressure stall the
	// moment it is recorded. Test hook: it lets a test gate analysis
	// until a stall has definitely happened instead of racing a timer
	// against the scheduler.
	onStall func()
}

// Result is one completed (or replayed-over) app.
type Result struct {
	Name    string
	Hash    string
	Report  *core.Report
	Outcome eval.Outcome
	Retries int
	// Quarantined marks apps run with their retry budget withheld
	// because the breaker was open.
	Quarantined bool
}

// Stats extends the corpus runner's RunStats with stream-layer
// accounting. RunStats is the resume contract: an interrupted run
// resumed from its journal finishes with RunStats bit-identical to an
// uninterrupted run over the same source.
type Stats struct {
	eval.RunStats
	// Replayed counts apps folded in from the journal without
	// re-analysis (they are also counted in RunStats).
	Replayed int
	// Reanalyzed counts journaled apps whose input hash no longer
	// matched, forcing a fresh analysis.
	Reanalyzed int
	// Quarantined counts apps run with retry budget withheld.
	Quarantined int
	// RetryExhaustions counts apps that consumed their whole non-zero
	// retry budget with the final attempt still erroring (see
	// eval.AttemptOptions.Exhausted).
	RetryExhaustions int
	// BreakerTrips is the number of circuit-breaker trips.
	BreakerTrips int64
	// BackpressureStalls counts producer blocks on a full queue.
	BackpressureStalls int64
	// QueueHighWater is the deepest the queue ever got.
	QueueHighWater int
	// JournalRecords and JournalFsyncs are the journal's lifetime
	// counts (including any prior run that produced the replay).
	JournalRecords int64
	JournalFsyncs  int64
	// JournalErrors counts failed journal appends. Any non-zero value
	// means completed apps may be missing from the checkpoint log and a
	// resume will re-analyze them — degraded durability, surfaced both
	// here and on the stream-journal-errors counter the moment each
	// failure happens.
	JournalErrors int
	// Drained reports the run ended by graceful drain, not source
	// exhaustion.
	Drained bool
}

// Run drives the stream: one producer goroutine pulls items from src
// and feeds a bounded queue; Workers goroutines analyze, checkpoint
// and account them. It returns when the source is exhausted, the drain
// signal fires (after finishing in-flight work), or ctx dies (dropping
// in-flight work as Skipped). The returned error is ctx's, or the
// producer's first source error.
func Run(ctx context.Context, src Source, opts Options) (Stats, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queueDepth := opts.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 2 * workers
	}

	var (
		mu    sync.Mutex
		stats Stats
	)
	if opts.Replay != nil {
		stats.RunStats = opts.Replay.Stats
		stats.Replayed = len(opts.Replay.Done)
	}

	libCache := opts.SharedAnalysisCache
	if libCache == nil {
		libCache = core.NewAnalysisCache()
	}
	checkerOpts := append(append([]core.CheckerOption{}, opts.CheckerOptions...),
		core.WithSharedAnalysisCache(libCache))
	if opts.Observer != nil {
		checkerOpts = append(checkerOpts, core.WithObserver(opts.Observer))
	}
	esaScope := esa.NewStatScope()
	checkerOpts = append(checkerOpts, core.WithESAStatScope(esaScope))

	attempt := eval.AttemptOptions{
		Timeout:      opts.PerAppTimeout,
		MaxRetries:   opts.MaxRetries,
		RetryBackoff: opts.RetryBackoff,
		BackoffMax:   opts.RetryBackoffMax,
		Jitter:       opts.RetryJitter,
	}

	queue := make(chan *Item, queueDepth)
	var queued, highWater int // guarded by mu

	// Producer: pull, skip checkpointed, push with backpressure
	// accounting. Closes the queue when the source ends or the drain
	// signal fires.
	var srcErr error
	var producerWG sync.WaitGroup
	producerWG.Add(1)
	go func() {
		defer producerWG.Done()
		defer close(queue)
		for {
			select {
			case <-drainCh(opts.Drain):
				mu.Lock()
				stats.Drained = true
				mu.Unlock()
				return
			case <-ctx.Done():
				return
			default:
			}
			item, err := src.Next(ctx)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, context.Canceled) &&
					!errors.Is(err, context.DeadlineExceeded) {
					mu.Lock()
					srcErr = err
					mu.Unlock()
				}
				return
			}
			if opts.Replay != nil {
				if rec, done := opts.Replay.Done[item.Name]; done {
					if rec.Hash == item.Hash {
						// Already analyzed in a previous run; its outcome
						// was folded into the stats at replay time.
						continue
					}
					// The inputs changed since the checkpoint: the
					// journal record is stale, re-analyze.
					mu.Lock()
					stats.Reanalyzed++
					stats.Apps--
					stats.Retried -= rec.Retries
					switch rec.Outcome {
					case eval.OutcomeChecked.String():
						stats.Checked--
					case eval.OutcomeDegraded.String():
						stats.Degraded--
					case eval.OutcomeFailed.String():
						stats.Failed--
					case eval.OutcomeSkipped.String():
						stats.Skipped--
					}
					stats.Replayed--
					mu.Unlock()
				}
			}
			// Count the item as queued before handing it over: a worker
			// may receive and decrement the instant the send lands, so
			// incrementing after the send would let queued go transiently
			// negative and shave the true peak off QueueHighWater. The
			// abort paths below undo the increment for an item that was
			// never delivered.
			mu.Lock()
			queued++
			if queued > highWater {
				highWater = queued
			}
			hw := highWater
			mu.Unlock()
			opts.Observer.MaxCounter("stream-queue-high-water", int64(hw))
			// Try the fast path first so genuine stalls — a full queue —
			// are counted, then block until there is room (that blocking
			// is the backpressure contract: an endless firehose cannot
			// outrun analysis into memory).
			select {
			case queue <- item:
			default:
				mu.Lock()
				stats.BackpressureStalls++
				mu.Unlock()
				opts.Observer.AddCounter("stream-backpressure-stalls", 1)
				if opts.onStall != nil {
					opts.onStall()
				}
				select {
				case queue <- item:
				case <-drainCh(opts.Drain):
					mu.Lock()
					queued--
					stats.Drained = true
					mu.Unlock()
					return
				case <-ctx.Done():
					mu.Lock()
					queued--
					mu.Unlock()
					return
				}
			}
		}
	}()

	// Workers: analyze, checkpoint, account.
	var workerWG sync.WaitGroup
	var journalErr error
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			checker := core.NewChecker(checkerOpts...)
			for item := range queue {
				mu.Lock()
				queued--
				mu.Unlock()
				quarantined := opts.Breaker.Quarantine()
				att := attempt
				if quarantined {
					att.MaxRetries = 0
				}
				// The app context: graceful drain lets in-flight apps
				// finish (ctx cancellation still aborts them), so the
				// analysis runs under ctx directly.
				sp := opts.Observer.Start(string(core.StageRun), item.Name, "")
				rep, outcome, retries := eval.CheckApp(ctx, checker, item.Name, item.Run, att)
				sp.End(streamRunError(rep, outcome), false)

				if tripped := opts.Breaker.Observe(rep, outcome); len(tripped) > 0 {
					opts.Observer.AddCounter("stream-breaker-trips", int64(len(tripped)))
				}

				exhausted := att.Exhausted(outcome, rep, retries)
				if exhausted {
					opts.Observer.AddCounter("stream-retry-exhaustions", 1)
				}

				// Checkpoint before accounting: an app is only ever
				// counted once it is journaled, so a crash between the
				// two at worst re-analyzes (never double-counts) it.
				// Skipped apps are deliberately not journaled — they
				// produced nothing and must be re-analyzed on resume.
				if opts.Journal != nil && outcome != eval.OutcomeSkipped {
					err := opts.Journal.Append(Record{
						App:         item.Name,
						Hash:        item.Hash,
						Outcome:     outcome.String(),
						Retries:     retries,
						Partial:     rep != nil && rep.Partial,
						Quarantined: quarantined,
					})
					if err != nil {
						// Surface the durability loss the moment it
						// happens: the run keeps completing apps, but from
						// this record on they may not be checkpointed, so
						// the resume contract is degraded (see the Journal
						// doc comment). The counter makes that visible to
						// a live metrics scrape instead of only at Run's
						// return.
						opts.Observer.AddCounter("stream-journal-errors", 1)
						mu.Lock()
						stats.JournalErrors++
						if journalErr == nil {
							journalErr = err
						}
						mu.Unlock()
					}
				}

				mu.Lock()
				stats.Apps++
				stats.Retried += retries
				switch outcome {
				case eval.OutcomeChecked:
					stats.Checked++
				case eval.OutcomeDegraded:
					stats.Degraded++
				case eval.OutcomeFailed:
					stats.Failed++
				case eval.OutcomeSkipped:
					stats.Skipped++
				}
				if quarantined {
					stats.Quarantined++
				}
				if exhausted {
					stats.RetryExhaustions++
				}
				mu.Unlock()

				if opts.OnResult != nil {
					opts.OnResult(Result{
						Name: item.Name, Hash: item.Hash, Report: rep,
						Outcome: outcome, Retries: retries, Quarantined: quarantined,
					})
				}
			}
		}()
	}

	producerWG.Wait()
	workerWG.Wait()

	// Final checkpoint flush: a graceful end leaves no tail at the
	// mercy of the fsync batch.
	if opts.Journal != nil {
		if err := opts.Journal.Sync(); err != nil && journalErr == nil {
			journalErr = err
		}
		stats.JournalRecords, stats.JournalFsyncs = opts.Journal.Stats()
	}

	stats.QueueHighWater = highWater
	stats.BreakerTrips = opts.Breaker.Trips()
	if opts.Observer != nil {
		core.RecordESACacheCounters(opts.Observer, esaScope.Snapshot())
		_, analyses := libCache.Stats()
		opts.Observer.AddCounter("lib-policy-analyses", analyses)
		opts.Observer.AddCounter("lib-policy-unique-texts", int64(libCache.Len()))
		opts.Observer.SetCounter("stream-apps-replayed", int64(stats.Replayed))
		opts.Observer.SetCounter("stream-quarantined", int64(stats.Quarantined))
	}
	stats.Metrics = opts.Observer.Snapshot()

	switch {
	case ctx.Err() != nil:
		return stats, ctx.Err()
	case srcErr != nil:
		return stats, srcErr
	default:
		return stats, journalErr
	}
}

// drainCh turns a possibly-nil drain channel into a selectable one.
var neverDrain = make(chan struct{})

func drainCh(ch <-chan struct{}) <-chan struct{} {
	if ch == nil {
		return neverDrain
	}
	return ch
}

// streamRunError mirrors the corpus runner's StageRun span contract.
func streamRunError(rep *core.Report, outcome eval.Outcome) error {
	if outcome != eval.OutcomeFailed && outcome != eval.OutcomeSkipped {
		return nil
	}
	if rep != nil {
		for _, e := range rep.Degraded {
			if e.Stage == core.StageRun {
				return e
			}
		}
	}
	return context.Canceled
}

// SignalDrain wires POSIX signals to the graceful-drain contract:
// the first SIGTERM/SIGINT closes the returned drain channel (stop
// intake, finish and checkpoint in-flight work), a second one cancels
// the returned context (abandon in-flight work as Skipped — still
// never journaled, so resume re-analyzes it). The returned stop
// function releases the signal handler.
func SignalDrain(parent context.Context) (context.Context, <-chan struct{}, func()) {
	ctx, cancel := context.WithCancel(parent)
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer signal.Stop(sigCh)
		select {
		case <-sigCh:
			close(drain)
		case <-done:
			return
		case <-ctx.Done():
			return
		}
		select {
		case <-sigCh:
			cancel()
		case <-done:
		case <-ctx.Done():
		}
	}()
	return ctx, drain, func() { close(done); cancel() }
}
