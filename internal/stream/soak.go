package stream

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ppchecker/internal/obs"
)

// HeapSampler periodically reads runtime.MemStats during a soak run,
// publishing heap gauges to the observer and retaining the series so
// the run can be judged for monotonic growth afterwards. The soak
// acceptance contract — "heap bounded" — is a statement about the
// whole run, not one scrape, so the samples stay in memory (8 bytes
// each; a day-long soak at 1s resolution is under a megabyte).
type HeapSampler struct {
	obs      *obs.Observer
	interval time.Duration

	mu      sync.Mutex
	samples []uint64 // HeapAlloc bytes

	stop chan struct{}
	done chan struct{}
}

// StartHeapSampler begins sampling every interval (min 10ms). Call
// Stop to end sampling before reading the verdict.
func StartHeapSampler(observer *obs.Observer, interval time.Duration) *HeapSampler {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	h := &HeapSampler{
		obs:      observer,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go h.loop()
	return h
}

func (h *HeapSampler) loop() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		h.sample()
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
	}
}

func (h *HeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.mu.Lock()
	h.samples = append(h.samples, ms.HeapAlloc)
	h.mu.Unlock()
	h.obs.SetCounter("heap-alloc-bytes", int64(ms.HeapAlloc))
	h.obs.MaxCounter("heap-alloc-high-water", int64(ms.HeapAlloc))
}

// Stop takes a final sample and ends the loop.
func (h *HeapSampler) Stop() {
	close(h.stop)
	<-h.done
	h.sample()
}

// Samples returns a copy of the series collected so far.
func (h *HeapSampler) Samples() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.samples...)
}

// BoundedGrowth judges the series: after discarding the first quarter
// (cache warm-up — the interpret memo and lib-policy cache legitimately
// grow early), the mean heap of the last third must not exceed factor
// times the mean of the middle third. A leak — per-app state retained
// forever — shows up as a monotonic ramp and fails; a healthy run
// plateaus and passes. Returns nil when bounded.
func (h *HeapSampler) BoundedGrowth(factor float64) error {
	s := h.Samples()
	if len(s) < 9 {
		return fmt.Errorf("stream: only %d heap samples, need >= 9 for a growth verdict", len(s))
	}
	warm := s[len(s)/4:]
	third := len(warm) / 3
	mid := warm[third : 2*third]
	last := warm[2*third:]
	mean := func(v []uint64) float64 {
		var sum float64
		for _, x := range v {
			sum += float64(x)
		}
		return sum / float64(len(v))
	}
	m1, m2 := mean(mid), mean(last)
	if m1 > 0 && m2 > factor*m1 {
		return fmt.Errorf("stream: heap grew from %.1f MiB (mid-run mean) to %.1f MiB (end-run mean), beyond the %.2fx bound",
			m1/(1<<20), m2/(1<<20), factor)
	}
	return nil
}
