package stream

import (
	"context"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
)

// bareStats strips the non-deterministic Metrics snapshot so RunStats
// can be compared bit-for-bit.
func bareStats(s eval.RunStats) eval.RunStats {
	s.Metrics = nil
	return s
}

// TestRunFirehose: a capped firehose run accounts every app exactly
// once and journals what it counted.
func TestRunFirehose(t *testing.T) {
	const n = 24
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	observer := obs.New()
	var results int64
	stats, err := Run(context.Background(), NewFirehoseSource(42, n), Options{
		Workers:    4,
		Observer:   observer,
		Journal:    j,
		Replay:     replay,
		MaxRetries: 1,
		OnResult:   func(Result) { atomic.AddInt64(&results, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != n || stats.Skipped != 0 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats.RunStats)
	}
	if results != n {
		t.Fatalf("OnResult saw %d apps, want %d", results, n)
	}
	if stats.JournalRecords != n {
		t.Fatalf("journal records = %d, want %d", stats.JournalRecords, n)
	}
	if stats.Drained {
		t.Fatal("source exhaustion reported as drain")
	}
	// The journal replays to exactly the run's stats: zero lost, zero
	// duplicated.
	j.Close()
	j2, replay2, err := OpenJournal(path, "test", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if replay2.Duplicates != 0 || replay2.Records != n {
		t.Fatalf("replay = %+v", replay2)
	}
	if bareStats(replay2.Stats) != bareStats(stats.RunStats) {
		t.Fatalf("journal folds to %+v, run said %+v", replay2.Stats, stats.RunStats)
	}
}

// TestRunResumeBitIdentical: a run cut short mid-corpus and resumed
// from its journal ends with RunStats bit-identical to an uninterrupted
// run over the same source, with the checkpointed apps skipped.
func TestRunResumeBitIdentical(t *testing.T) {
	const seed, n, cut = 7, 30, 12

	// Reference: the uninterrupted run.
	want, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop after `cut` apps.
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), NewFirehoseSource(seed, cut), Options{
		Workers: 2, Journal: j, Replay: replay,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Resume over the full source.
	j2, replay2, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replay2.Done) != cut {
		t.Fatalf("replay recovered %d apps, want %d", len(replay2.Done), cut)
	}
	var reanalyzed sync.Map
	got, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{
		Workers: 2, Journal: j2, Replay: replay2,
		OnResult: func(r Result) {
			if _, dup := reanalyzed.LoadOrStore(r.Name, true); dup {
				t.Errorf("app %s analyzed twice in the resumed run", r.Name)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Replayed != cut || got.Reanalyzed != 0 {
		t.Fatalf("replayed = %d reanalyzed = %d, want %d/0", got.Replayed, got.Reanalyzed, cut)
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("resumed stats %+v != uninterrupted %+v", got.RunStats, want.RunStats)
	}
	// No checkpointed app was re-run.
	for name := range replay2.Done {
		if _, ran := reanalyzed.Load(name); ran {
			t.Fatalf("checkpointed app %s was re-analyzed", name)
		}
	}
	// And the final journal holds each app exactly once.
	j2.Close()
	_, replay3, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay3.Records != n || replay3.Duplicates != 0 {
		t.Fatalf("final journal = %+v", replay3)
	}
}

// TestRunStaleHashReanalyzes: a journal record whose input hash no
// longer matches is discarded — its outcome is unfolded from the stats
// and the app re-analyzed.
func TestRunStaleHashReanalyzes(t *testing.T) {
	const seed, n = 5, 8
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{
		Workers: 2, Journal: j, Replay: replay,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, replay2, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// Corrupt one record's hash in the recovered state: the inputs
	// "changed" since the checkpoint.
	var victim string
	for name := range replay2.Done {
		victim = name
		break
	}
	rec := replay2.Done[victim]
	rec.Hash = "stale"
	replay2.Done[victim] = rec

	got, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{
		Workers: 2, Journal: j2, Replay: replay2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reanalyzed != 1 || got.Replayed != n-1 {
		t.Fatalf("reanalyzed = %d replayed = %d, want 1/%d", got.Reanalyzed, got.Replayed, n-1)
	}
	if bareStats(got.RunStats) != bareStats(first.RunStats) {
		t.Fatalf("stats after stale-hash reanalysis %+v != original %+v", got.RunStats, first.RunStats)
	}
}

// gatedSource emits n trivial items whose analysis blocks until the
// release channel closes, so queue buildup is guaranteed rather than
// raced against a timer.
type gatedSource struct {
	n       int
	next    int
	release <-chan struct{}
}

func (s *gatedSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= s.n {
		return nil, io.EOF
	}
	i := s.next
	s.next++
	name := "gated" + string(rune('a'+i))
	return &Item{
		Name: name,
		Hash: HashBytes([]byte(name)),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			select {
			case <-s.release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &core.Report{App: name}, nil
		},
	}, nil
}

// TestRunBackpressure: with every worker gated, the producer must fill
// the 1-deep queue and stall; only once the stall is recorded does the
// gate open. Deterministic under any scheduler: the stall is a
// consequence of the gate, not of a sleep being "slow enough".
func TestRunBackpressure(t *testing.T) {
	observer := obs.New()
	release := make(chan struct{})
	stalled := make(chan struct{})
	var once sync.Once
	go func() {
		<-stalled // a stall has been recorded: let the workers drain
		close(release)
	}()
	stats, err := Run(context.Background(), &gatedSource{n: 8, release: release}, Options{
		Workers:    1,
		QueueDepth: 1,
		Observer:   observer,
		onStall:    func() { once.Do(func() { close(stalled) }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps != 8 || stats.Checked != 8 {
		t.Fatalf("stats = %+v", stats.RunStats)
	}
	if stats.BackpressureStalls == 0 {
		t.Fatal("no backpressure stalls recorded against a 1-deep queue")
	}
	if stats.QueueHighWater < 1 {
		t.Fatalf("queue high water = %d", stats.QueueHighWater)
	}
	snap := observer.Snapshot()
	if v, _ := snap.Counter("stream-backpressure-stalls"); v != stats.BackpressureStalls {
		t.Fatalf("counter %d != stats %d", v, stats.BackpressureStalls)
	}
	if v, _ := snap.Counter("stream-queue-high-water"); v != int64(stats.QueueHighWater) {
		t.Fatalf("high-water counter %d != stats %d", v, stats.QueueHighWater)
	}
}

// TestRunDrain: closing the drain channel on an endless firehose stops
// intake, finishes in-flight work, and everything counted is journaled.
func TestRunDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	var once sync.Once
	var results int64
	stats, err := Run(context.Background(), NewFirehoseSource(3, 0), Options{
		Workers: 2, Journal: j, Replay: replay, Drain: drain,
		OnResult: func(Result) {
			if atomic.AddInt64(&results, 1) >= 6 {
				once.Do(func() { close(drain) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Drained {
		t.Fatal("drain not reported")
	}
	if stats.Apps < 6 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v", stats.RunStats)
	}
	// Drain is the graceful path: every counted app made it to disk.
	j.Close()
	_, replay2, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Records != stats.Apps || replay2.Duplicates != 0 {
		t.Fatalf("journal records = %d dups = %d, run counted %d", replay2.Records, replay2.Duplicates, stats.Apps)
	}
	if bareStats(replay2.Stats) != bareStats(stats.RunStats) {
		t.Fatalf("journal folds to %+v, run said %+v", replay2.Stats, stats.RunStats)
	}
}

// TestRunCancel: hard cancellation abandons work as Skipped and
// surfaces ctx's error; skipped apps are never journaled, so a resume
// re-analyzes them.
func TestRunCancel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	var results int64
	stats, err := Run(ctx, NewFirehoseSource(9, 0), Options{
		Workers: 2, Journal: j, Replay: replay,
		OnResult: func(Result) {
			if atomic.AddInt64(&results, 1) >= 4 {
				once.Do(cancel)
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	journaled := stats.Apps - stats.Skipped
	j.Close()
	_, replay2, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Records != journaled {
		t.Fatalf("journal has %d records, run completed %d", replay2.Records, journaled)
	}
	if replay2.Stats.Skipped != 0 {
		t.Fatal("a skipped app was journaled")
	}
}
