package stream

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"ppchecker/internal/apk"
	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// Item is one unit of ingestion work: a stable app name, the content
// hash of its inputs (the resume identity — an app is skipped on
// resume only if both name and hash match its journal record), and the
// closure that produces its report on a worker's checker. Spec, when
// non-nil, is the item's portable description: everything another
// process needs to rebuild the same Run closure (the distributed tier
// leases Specs over the wire; in-memory sources leave it nil and stay
// single-process).
type Item struct {
	Name string
	Hash string
	Spec *Spec
	Run  func(ctx context.Context, checker *core.Checker) (*core.Report, error)
}

// Spec kinds.
const (
	// SpecDir is an on-disk bundle directory (shared-filesystem lease).
	SpecDir = "dir"
	// SpecFirehose is a synthetic firehose app, a pure function of
	// (seed, index).
	SpecFirehose = "firehose"
)

// Spec is the wire-portable identity of one work item. A coordinator
// ships Specs to workers instead of Run closures; a worker turns a
// Spec back into an Item with SpecResolver.Resolve and analyzes it
// with its own checker.
type Spec struct {
	Kind string `json:"kind"`
	// Dir fields (Kind == SpecDir): the bundle directory and the
	// corpus's shared library-policy directory. Both sides must see the
	// same filesystem.
	Dir     string `json:"dir,omitempty"`
	LibsDir string `json:"libs_dir,omitempty"`
	// Firehose fields (Kind == SpecFirehose).
	Seed  int64 `json:"seed,omitempty"`
	Index int64 `json:"index,omitempty"`
}

// SpecResolver rebuilds Items from Specs. It caches one firehose
// generator per seed (building a generator walks the library registry,
// too heavy to repeat per lease). Safe for concurrent use.
type SpecResolver struct {
	mu        sync.Mutex
	firehoses map[int64]*synth.Firehose
}

// NewSpecResolver builds an empty resolver.
func NewSpecResolver() *SpecResolver {
	return &SpecResolver{firehoses: map[int64]*synth.Firehose{}}
}

// Resolve turns a portable Spec back into a runnable Item. The
// returned item's Name and Hash are recomputed locally from the spec's
// actual content, so a worker never has to trust the wire copy.
func (r *SpecResolver) Resolve(spec *Spec) (*Item, error) {
	if spec == nil {
		return nil, fmt.Errorf("stream: nil work spec")
	}
	switch spec.Kind {
	case SpecDir:
		return dirItem(spec.Dir, spec.LibsDir), nil
	case SpecFirehose:
		r.mu.Lock()
		fh, ok := r.firehoses[spec.Seed]
		if !ok {
			fh = synth.NewFirehose(spec.Seed)
			r.firehoses[spec.Seed] = fh
		}
		r.mu.Unlock()
		return firehoseItem(fh, spec.Index)
	default:
		return nil, fmt.Errorf("stream: unknown work spec kind %q", spec.Kind)
	}
}

// Source produces items one at a time. Next returns io.EOF when the
// stream is exhausted; a finite directory walk ends, a firehose only
// ends when its cap or the run's clock says so. Next is called from a
// single producer goroutine, so implementations need no locking.
type Source interface {
	Next(ctx context.Context) (*Item, error)
}

// DirSource streams an on-disk corpus (the bundle layout ppgen
// writes). Each item's hash covers the raw bytes of every bundle file,
// so editing any input after a checkpoint forces re-analysis on
// resume.
type DirSource struct {
	dirs    []string
	libsDir string
	next    int
}

// NewDirSource lists the corpus's app bundles up front (cheap: one
// readdir) and streams them in sorted order.
func NewDirSource(corpusDir string) (*DirSource, error) {
	dirs, err := bundle.ListApps(corpusDir)
	if err != nil {
		return nil, err
	}
	return &DirSource{dirs: dirs, libsDir: filepath.Join(corpusDir, bundle.DirLibs)}, nil
}

// Len returns the number of app bundles the walk will produce.
func (s *DirSource) Len() int { return len(s.dirs) }

// Next reads the next bundle's raw bytes for hashing; the returned
// item re-reads leniently inside the worker so per-file damage
// degrades the app instead of killing the stream.
func (s *DirSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.dirs) {
		return nil, io.EOF
	}
	dir := s.dirs[s.next]
	s.next++
	return dirItem(dir, s.libsDir), nil
}

// dirItem builds the item for one on-disk bundle directory — the
// single construction shared by the local walk and spec resolution, so
// a leased bundle analyzes exactly as a walked one.
func dirItem(dir, libsDir string) *Item {
	return &Item{
		Name: filepath.Base(dir),
		Hash: hashBundleDir(dir),
		Spec: &Spec{Kind: SpecDir, Dir: dir, LibsDir: libsDir},
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			app, ferrs := bundle.ReadAppLenient(dir, libsDir)
			rep, err := checker.CheckSafe(ctx, app)
			if rep != nil {
				for _, fe := range ferrs {
					st := core.StageRead
					if fe.File == bundle.FileAPK && !fe.Missing {
						st = core.StageDecode
					}
					rep.AddDegraded(&core.StageError{Stage: st, App: app.Name, Err: fe})
				}
			}
			return rep, err
		},
	}
}

// hashBundleDir hashes the raw bytes of the bundle's files. Unreadable
// files hash as empty sections — the analysis will degrade them, and
// the hash still changes if they later become readable.
func hashBundleDir(dir string) string {
	sections := make([][]byte, 0, 4)
	for _, name := range []string{bundle.FilePolicy, bundle.FileDescription, bundle.FileAPK, bundle.FileLibs} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			data = nil
		}
		sections = append(sections, data)
	}
	return HashBytes(sections...)
}

// DatasetSource streams an in-memory synthetic dataset — the test and
// bench path that needs no disk.
type DatasetSource struct {
	ds   *synth.Dataset
	next int
}

// NewDatasetSource wraps a generated dataset.
func NewDatasetSource(ds *synth.Dataset) *DatasetSource { return &DatasetSource{ds: ds} }

// Next emits the next generated app. The item's hash is HashApp over
// every analysis input, so a resumed run re-analyzes an app whose code
// or permissions changed even when its policy and description did not.
func (s *DatasetSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.ds.Apps) {
		return nil, io.EOF
	}
	app := s.ds.Apps[s.next].App
	s.next++
	return &Item{
		Name: app.Name,
		Hash: HashApp(app),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			return checker.CheckSafe(ctx, app)
		},
	}, nil
}

// HashApp is the resume identity of an in-memory app: like
// hashBundleDir it covers all four input sections — policy,
// description, APK (manifest permissions, components and bytecode) and
// library policies — so mutating any analysis input invalidates a
// journal checkpoint. An unencodable APK hashes as an empty section,
// mirroring hashBundleDir's treatment of an unreadable file: the
// analysis will degrade it, and the hash still changes if it later
// becomes encodable.
func HashApp(app *core.App) string {
	var apkBytes []byte
	if app.APK != nil {
		if data, err := apk.Encode(app.APK); err == nil {
			apkBytes = data
		}
	}
	var libs []byte
	if len(app.LibPolicies) > 0 {
		names := make([]string, 0, len(app.LibPolicies))
		for name := range app.LibPolicies {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			// Length-prefix name and text so shifting bytes between
			// adjacent fields cannot collide.
			libs = append(libs, []byte(strconv.Itoa(len(name))+":"+name)...)
			text := app.LibPolicies[name]
			libs = append(libs, []byte(strconv.Itoa(len(text))+":"+text)...)
		}
	}
	return HashBytes([]byte(app.PolicyHTML), []byte(app.Description), apkBytes, libs)
}

// FirehoseSource streams the synthetic Play-store firehose: apps are
// generated on demand, deterministically from (seed, index), so the
// stream is endless but resumable — app i has the same identity and
// content on every run. Cap bounds the stream; 0 means unbounded
// (the soak clock or a drain signal ends the run).
type FirehoseSource struct {
	fh   *synth.Firehose
	next int64
	// Cap is the number of apps to emit; 0 means endless.
	Cap int64
}

// NewFirehoseSource builds a firehose source from a generator seed.
func NewFirehoseSource(seed int64, cap int64) *FirehoseSource {
	return &FirehoseSource{fh: synth.NewFirehose(seed), Cap: cap}
}

// Next generates app number s.next. Generation happens in the producer
// goroutine — it is much cheaper than analysis, so a handful of
// workers still saturate, and the bounded queue throttles generation
// to consumption (backpressure keeps an endless firehose from
// ballooning memory).
func (s *FirehoseSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.Cap > 0 && s.next >= s.Cap {
		return nil, io.EOF
	}
	i := s.next
	s.next++
	return firehoseItem(s.fh, i)
}

// firehoseItem builds the item for firehose app i — shared by the
// local source and spec resolution, so a leased firehose app has the
// same identity and content in every process.
func firehoseItem(fh *synth.Firehose, i int64) (*Item, error) {
	ga, err := fh.App(i)
	if err != nil {
		return nil, err
	}
	app := ga.App
	return &Item{
		Name: app.Name,
		// The app's content is a pure function of (seed, index); the
		// hash binds both so a journal from a different seed never
		// satisfies a resume.
		Hash: HashBytes([]byte(strconv.FormatInt(fh.Seed(), 10)), []byte(strconv.FormatInt(i, 10))),
		Spec: &Spec{Kind: SpecFirehose, Seed: fh.Seed(), Index: i},
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			return checker.CheckSafe(ctx, app)
		},
	}, nil
}
