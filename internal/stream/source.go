package stream

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"ppchecker/internal/bundle"
	"ppchecker/internal/core"
	"ppchecker/internal/synth"
)

// Item is one unit of ingestion work: a stable app name, the content
// hash of its inputs (the resume identity — an app is skipped on
// resume only if both name and hash match its journal record), and the
// closure that produces its report on a worker's checker.
type Item struct {
	Name string
	Hash string
	Run  func(ctx context.Context, checker *core.Checker) (*core.Report, error)
}

// Source produces items one at a time. Next returns io.EOF when the
// stream is exhausted; a finite directory walk ends, a firehose only
// ends when its cap or the run's clock says so. Next is called from a
// single producer goroutine, so implementations need no locking.
type Source interface {
	Next(ctx context.Context) (*Item, error)
}

// DirSource streams an on-disk corpus (the bundle layout ppgen
// writes). Each item's hash covers the raw bytes of every bundle file,
// so editing any input after a checkpoint forces re-analysis on
// resume.
type DirSource struct {
	dirs    []string
	libsDir string
	next    int
}

// NewDirSource lists the corpus's app bundles up front (cheap: one
// readdir) and streams them in sorted order.
func NewDirSource(corpusDir string) (*DirSource, error) {
	dirs, err := bundle.ListApps(corpusDir)
	if err != nil {
		return nil, err
	}
	return &DirSource{dirs: dirs, libsDir: filepath.Join(corpusDir, bundle.DirLibs)}, nil
}

// Len returns the number of app bundles the walk will produce.
func (s *DirSource) Len() int { return len(s.dirs) }

// Next reads the next bundle's raw bytes for hashing; the returned
// item re-reads leniently inside the worker so per-file damage
// degrades the app instead of killing the stream.
func (s *DirSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.dirs) {
		return nil, io.EOF
	}
	dir := s.dirs[s.next]
	s.next++
	libsDir := s.libsDir
	return &Item{
		Name: filepath.Base(dir),
		Hash: hashBundleDir(dir),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			app, ferrs := bundle.ReadAppLenient(dir, libsDir)
			rep, err := checker.CheckSafe(ctx, app)
			if rep != nil {
				for _, fe := range ferrs {
					st := core.StageRead
					if fe.File == bundle.FileAPK && !fe.Missing {
						st = core.StageDecode
					}
					rep.AddDegraded(&core.StageError{Stage: st, App: app.Name, Err: fe})
				}
			}
			return rep, err
		},
	}, nil
}

// hashBundleDir hashes the raw bytes of the bundle's files. Unreadable
// files hash as empty sections — the analysis will degrade them, and
// the hash still changes if they later become readable.
func hashBundleDir(dir string) string {
	sections := make([][]byte, 0, 4)
	for _, name := range []string{bundle.FilePolicy, bundle.FileDescription, bundle.FileAPK, bundle.FileLibs} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			data = nil
		}
		sections = append(sections, data)
	}
	return HashBytes(sections...)
}

// DatasetSource streams an in-memory synthetic dataset — the test and
// bench path that needs no disk.
type DatasetSource struct {
	ds   *synth.Dataset
	next int
}

// NewDatasetSource wraps a generated dataset.
func NewDatasetSource(ds *synth.Dataset) *DatasetSource { return &DatasetSource{ds: ds} }

// Next emits the next generated app.
func (s *DatasetSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.ds.Apps) {
		return nil, io.EOF
	}
	app := s.ds.Apps[s.next].App
	s.next++
	return &Item{
		Name: app.Name,
		Hash: HashBytes([]byte(app.PolicyHTML), []byte(app.Description), []byte(app.Name)),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			return checker.CheckSafe(ctx, app)
		},
	}, nil
}

// FirehoseSource streams the synthetic Play-store firehose: apps are
// generated on demand, deterministically from (seed, index), so the
// stream is endless but resumable — app i has the same identity and
// content on every run. Cap bounds the stream; 0 means unbounded
// (the soak clock or a drain signal ends the run).
type FirehoseSource struct {
	fh   *synth.Firehose
	next int64
	// Cap is the number of apps to emit; 0 means endless.
	Cap int64
}

// NewFirehoseSource builds a firehose source from a generator seed.
func NewFirehoseSource(seed int64, cap int64) *FirehoseSource {
	return &FirehoseSource{fh: synth.NewFirehose(seed), Cap: cap}
}

// Next generates app number s.next. Generation happens in the producer
// goroutine — it is much cheaper than analysis, so a handful of
// workers still saturate, and the bounded queue throttles generation
// to consumption (backpressure keeps an endless firehose from
// ballooning memory).
func (s *FirehoseSource) Next(ctx context.Context) (*Item, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.Cap > 0 && s.next >= s.Cap {
		return nil, io.EOF
	}
	i := s.next
	s.next++
	ga, err := s.fh.App(i)
	if err != nil {
		return nil, err
	}
	app := ga.App
	return &Item{
		Name: app.Name,
		// The app's content is a pure function of (seed, index); the
		// hash binds both so a journal from a different seed never
		// satisfies a resume.
		Hash: HashBytes([]byte(strconv.FormatInt(s.fh.Seed(), 10)), []byte(strconv.FormatInt(i, 10))),
		Run: func(ctx context.Context, checker *core.Checker) (*core.Report, error) {
			return checker.CheckSafe(ctx, app)
		},
	}, nil
}
