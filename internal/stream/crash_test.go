package stream

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

const (
	crashChildEnv   = "STREAM_CRASH_CHILD"
	crashJournalEnv = "STREAM_CRASH_JOURNAL"
	crashSeedEnv    = "STREAM_CRASH_SEED"
	crashCapEnv     = "STREAM_CRASH_CAP"
)

// TestCrashChildProcess is the re-exec target for the SIGKILL test: it
// streams the firehose against the journal the parent points it at,
// slowed down enough that the parent's kill reliably lands mid-corpus.
// It skips unless spawned by TestCrashResumeBitIdentical.
func TestCrashChildProcess(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-test child; only runs re-exec'd")
	}
	seed, _ := strconv.ParseInt(os.Getenv(crashSeedEnv), 10, 64)
	cap, _ := strconv.ParseInt(os.Getenv(crashCapEnv), 10, 64)
	j, replay, err := OpenJournal(os.Getenv(crashJournalEnv), "crash-child", JournalOptions{
		FsyncEvery: 1, // every record durable: the kill can land anywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	src := NewChaosSource(NewFirehoseSource(seed, cap), FaultPlan{
		SlowEvery: 1, SlowFor: 25 * time.Millisecond,
	})
	if _, err := Run(context.Background(), src, Options{
		Workers: 2, Journal: j, Replay: replay,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResumeBitIdentical is the headline robustness guarantee: a
// run SIGKILLed mid-corpus — no drain, no deferred cleanup, torn tail
// and all — resumes from its journal and finishes with RunStats
// bit-identical to a run that was never interrupted, with no app
// analyzed twice.
func TestCrashResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	const seed, n = 31, 48

	// Reference: uninterrupted.
	want, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Child: same stream against a journal, killed once it has
	// checkpointed a handful of apps.
	path := filepath.Join(t.TempDir(), "run.journal")
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashJournalEnv+"="+path,
		crashSeedEnv+"="+strconv.Itoa(seed),
		crashCapEnv+"="+strconv.Itoa(n),
	)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the journal shows real progress, then SIGKILL — the
	// hardest stop there is: no signal handler, no drain, no flush.
	// This file poll is deliberate, not a deflake oversight: the child
	// is a separate OS process, so no in-process hook or channel can
	// observe it; the journal file itself is the only shared state, and
	// watching it is exactly the property under test (durable bytes on
	// disk at the moment of death).
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child made no journal progress; output:\n%s", childOut.String())
		}
		data, err := os.ReadFile(path)
		if err == nil && bytes.Count(data, []byte("\n")) >= 8 { // header + >= 7 apps
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // must die, not finish: the slow-down gives seconds of margin

	// Resume over the same source.
	j, replay, err := OpenJournal(path, "crash-child", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if replay.Records == 0 {
		t.Fatalf("nothing recovered from the killed run; child output:\n%s", childOut.String())
	}
	if replay.Records >= n {
		t.Fatalf("child finished all %d apps before the kill; slow-down too weak", n)
	}
	t.Logf("recovered %d checkpointed apps (truncated tail: %v)", replay.Records, replay.Truncated)
	var analyzed sync.Map
	got, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{
		Workers: 2, Journal: j, Replay: replay,
		OnResult: func(r Result) {
			if _, dup := analyzed.LoadOrStore(r.Name, true); dup {
				t.Errorf("app %s analyzed twice after resume", r.Name)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("resumed-after-SIGKILL stats %+v != uninterrupted %+v", got.RunStats, want.RunStats)
	}
	// No checkpointed app was re-analyzed; every non-checkpointed app was.
	for name := range replay.Done {
		if _, ran := analyzed.Load(name); ran {
			t.Errorf("checkpointed app %s was re-analyzed", name)
		}
	}
	if got.Replayed != replay.Records {
		t.Fatalf("replayed = %d, journal recovered %d", got.Replayed, replay.Records)
	}

	// The healed journal now holds the full corpus exactly once.
	j.Close()
	_, replay2, err := OpenJournal(path, "crash-child", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Records != n || replay2.Duplicates != 0 || replay2.Truncated {
		t.Fatalf("final journal = %+v", replay2)
	}
}

// TestResumeFromTornJournal: resuming from a journal whose tail was
// torn by a crash mid-append still converges to bit-identical stats —
// the torn record's app is simply re-analyzed.
func TestResumeFromTornJournal(t *testing.T) {
	const seed, n, cut = 13, 20, 9
	want, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	j, replay, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), NewFirehoseSource(seed, cut), Options{
		Workers: 2, Journal: j, Replay: replay,
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Tear the tail: half of the record a crash was mid-way through.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"app","seq":99,"app":"com.fire`)
	f.Close()

	j2, replay2, err := OpenJournal(path, "firehose", JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !replay2.Truncated || replay2.Records != cut {
		t.Fatalf("replay = %+v, want %d records with truncation", replay2, cut)
	}
	got, err := Run(context.Background(), NewFirehoseSource(seed, n), Options{
		Workers: 2, Journal: j2, Replay: replay2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bareStats(got.RunStats) != bareStats(want.RunStats) {
		t.Fatalf("torn-journal resume %+v != uninterrupted %+v", got.RunStats, want.RunStats)
	}
}
