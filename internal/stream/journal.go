// Package stream is the resilient streaming ingestion layer: it feeds
// app bundles from a producer (directory walk, synthetic firehose)
// through a bounded backpressure queue into the robust per-app
// pipeline (eval.CheckApp), appending every completed app to a durable
// write-ahead checkpoint journal. A killed run resumes by replaying
// the journal: finished apps are skipped and their outcomes folded
// back into the stats, so an interrupted-and-resumed run ends with
// RunStats bit-identical to an uninterrupted one.
//
// The moving parts:
//
//	Journal  durable JSONL checkpoint log (fsync-batched, torn-tail
//	         recovery on reopen)
//	Source   pull-based app producer (DirSource, DatasetSource,
//	         synth.Firehose via FirehoseSource)
//	Breaker  cross-app circuit breaker that trips a repeatedly failing
//	         stage into quarantine-and-continue mode
//	Run      the worker-pool runner tying them together
package stream

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"ppchecker/internal/eval"
	"ppchecker/internal/obs"
)

// JournalVersion is the on-disk format version stamped into every
// journal header.
const JournalVersion = 1

// Record kinds.
const (
	// RecordHeader is the self-describing first record of a journal.
	RecordHeader = "header"
	// RecordApp is one completed app analysis.
	RecordApp = "app"
)

// Record is one JSONL journal line. The header record carries Version
// and Source; app records carry the app identity (name + input content
// hash) and its final outcome, which is everything resume needs to
// fold the app back into RunStats without re-analyzing it.
type Record struct {
	Type string `json:"type"`
	// Header fields.
	Version int    `json:"version,omitempty"`
	Source  string `json:"source,omitempty"`
	// App fields.
	Seq     int64  `json:"seq,omitempty"`
	App     string `json:"app,omitempty"`
	Hash    string `json:"hash,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Retries int    `json:"retries,omitempty"`
	// Partial mirrors the report's degraded flag, for post-hoc triage.
	Partial bool `json:"partial,omitempty"`
	// Quarantined marks apps analyzed while the circuit breaker was
	// open (retry budget withheld).
	Quarantined bool `json:"quarantined,omitempty"`
}

// Replay is what reopening an existing journal recovers.
type Replay struct {
	// Done maps app name to its first journal record. Resume skips
	// these apps when their input hash still matches.
	Done map[string]Record
	// Stats holds the folded outcomes of every replayed app — the
	// checkpointed fraction of the final RunStats.
	Stats eval.RunStats
	// Records counts app records read (including duplicates).
	Records int
	// Duplicates counts app records whose name was already journaled.
	// A correct run never produces one; the counter exists so tests
	// and the soak harness can assert exactly that.
	Duplicates int
	// Truncated reports that a torn final record (a crash mid-append)
	// was dropped and the file truncated back to the last good record.
	Truncated bool
}

// Journal is the durable checkpoint log. Appends are buffered and
// fsynced in batches (every FsyncEvery records or FsyncInterval,
// whichever comes first), bounding both the fsync rate under load and
// the work lost to a crash. Safe for concurrent use.
//
// Degraded-durability semantics: a failed Append does not stop the
// run. Workers keep completing apps, but any app whose record could
// not be written is absent from the log, so a crash after the first
// failed append re-analyzes those apps on resume instead of replaying
// them — the resume contract weakens from "nothing completed is lost"
// to "nothing completed is double-counted". Callers must surface the
// failure immediately (stream.Run publishes the stream-journal-errors
// counter and Stats.JournalErrors) rather than deferring it to the end
// of the run, because the window of unjournaled completions starts at
// the first failure, not at Run's return.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seq      int64
	pending  int
	lastSync time.Time
	fsyncs   int64
	records  int64
	opts     JournalOptions
	closed   bool
}

// JournalOptions tune the durability/throughput trade.
type JournalOptions struct {
	// FsyncEvery fsyncs after this many buffered records; <= 0 means 32.
	FsyncEvery int
	// FsyncInterval fsyncs on the first append after this much time
	// since the last sync; <= 0 means 250ms.
	FsyncInterval time.Duration
	// Observer, when non-nil, receives journal counters
	// (stream-journal-records, stream-journal-fsyncs).
	Observer *obs.Observer
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 32
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 250 * time.Millisecond
	}
	return o
}

// OpenJournal opens (or creates) the checkpoint journal at path. A new
// file gets a header record (fsynced immediately, so the journal is
// self-describing from its first byte on disk). An existing file is
// replayed first: completed apps are recovered into the returned
// Replay, and a torn final record — the signature of a crash mid-append
// — is dropped by truncating the file back to the last intact record.
func OpenJournal(path, source string, opts JournalOptions) (*Journal, *Replay, error) {
	opts = opts.withDefaults()
	replay, goodEnd, exists, err := replayFile(path)
	if err != nil {
		return nil, nil, err
	}
	flags := os.O_CREATE | os.O_RDWR
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if exists {
		if replay.Truncated {
			if err := f.Truncate(goodEnd); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("stream: truncating torn journal tail: %w", err)
			}
		}
		if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), opts: opts, lastSync: time.Now()}
	j.seq = int64(replay.Records)
	if !exists {
		if err := j.append(Record{Type: RecordHeader, Version: JournalVersion, Source: source}, true); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, replay, nil
}

// replayFile reads a journal, tolerating a torn tail. It returns the
// replay, the byte offset just past the last intact record, and
// whether the file existed at all.
func replayFile(path string) (*Replay, int64, bool, error) {
	replay := &Replay{Done: map[string]Record{}}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return replay, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var goodEnd int64
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var rec Record
			torn := err != nil || json.Unmarshal(line, &rec) != nil
			if torn {
				// A record without its newline, or one that does not
				// parse, is a torn append from a crash: everything from
				// here on is garbage. Drop it.
				replay.Truncated = true
				return replay, goodEnd, true, nil
			}
			goodEnd += int64(len(line))
			foldRecord(replay, rec)
		}
		if err == io.EOF {
			return replay, goodEnd, true, nil
		}
		if err != nil {
			return nil, 0, false, err
		}
	}
}

// foldRecord folds one intact record into the replay.
func foldRecord(replay *Replay, rec Record) {
	if rec.Type != RecordApp {
		return
	}
	replay.Records++
	if _, dup := replay.Done[rec.App]; dup {
		replay.Duplicates++
		return
	}
	replay.Done[rec.App] = rec
	replay.Stats.Apps++
	replay.Stats.Retried += rec.Retries
	switch rec.Outcome {
	case eval.OutcomeChecked.String():
		replay.Stats.Checked++
	case eval.OutcomeDegraded.String():
		replay.Stats.Degraded++
	case eval.OutcomeFailed.String():
		replay.Stats.Failed++
	case eval.OutcomeSkipped.String():
		replay.Stats.Skipped++
	}
}

// Append journals one completed app. The record is durable once the
// current fsync batch closes (at the latest, FsyncInterval after the
// append; immediately when the batch fills).
func (j *Journal) Append(rec Record) error {
	rec.Type = RecordApp
	return j.append(rec, false)
}

func (j *Journal) append(rec Record, syncNow bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("stream: append to closed journal")
	}
	if rec.Type == RecordApp {
		j.seq++
		rec.Seq = j.seq
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	if rec.Type == RecordApp {
		j.records++
		j.opts.Observer.AddCounter("stream-journal-records", 1)
	}
	j.pending++
	if syncNow || j.pending >= j.opts.FsyncEvery || time.Since(j.lastSync) >= j.opts.FsyncInterval {
		return j.syncLocked()
	}
	return nil
}

// syncLocked flushes the buffer and fsyncs. Caller holds mu.
func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = 0
	j.lastSync = time.Now()
	j.fsyncs++
	j.opts.Observer.AddCounter("stream-journal-fsyncs", 1)
	return nil
}

// Sync forces the pending batch to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns the journal's lifetime append/fsync counts.
func (j *Journal) Stats() (records, fsyncs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.fsyncs
}

// HashBytes is the input content hash used in journal records:
// sha256 over the given byte sections, length-prefixed so boundary
// shifts cannot collide.
func HashBytes(sections ...[]byte) string {
	h := sha256.New()
	var lenbuf [8]byte
	for _, s := range sections {
		n := len(s)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write(s)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}
