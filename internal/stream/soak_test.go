package stream

import (
	"strings"
	"testing"
	"time"

	"ppchecker/internal/obs"
)

// TestBoundedGrowthVerdict: the soak heap judgment passes a plateau,
// fails a monotonic ramp, and refuses to rule on too few samples.
func TestBoundedGrowthVerdict(t *testing.T) {
	mk := func(samples []uint64) *HeapSampler {
		return &HeapSampler{samples: samples}
	}
	flat := make([]uint64, 40)
	for i := range flat {
		flat[i] = 100 << 20 // steady 100 MiB
	}
	if err := mk(flat).BoundedGrowth(1.2); err != nil {
		t.Fatalf("flat series judged leaky: %v", err)
	}

	// Warm-up growth then plateau — the healthy cache shape.
	warm := make([]uint64, 40)
	for i := range warm {
		if i < 10 {
			warm[i] = uint64(i+1) * 10 << 20
		} else {
			warm[i] = 100 << 20
		}
	}
	if err := mk(warm).BoundedGrowth(1.2); err != nil {
		t.Fatalf("warm-up-then-plateau judged leaky: %v", err)
	}

	ramp := make([]uint64, 40)
	for i := range ramp {
		ramp[i] = uint64(i+1) * 10 << 20 // 10 MiB per sample, forever
	}
	err := mk(ramp).BoundedGrowth(1.2)
	if err == nil {
		t.Fatal("monotonic ramp judged bounded")
	}
	if !strings.Contains(err.Error(), "heap grew") {
		t.Fatalf("verdict message: %v", err)
	}

	if err := mk(flat[:5]).BoundedGrowth(1.2); err == nil {
		t.Fatal("5 samples produced a verdict")
	}
}

// TestHeapSamplerPublishes: the sampler feeds the observer gauges and
// retains its series. No sleep needed: the loop samples once before
// its first select and Stop takes a final sample, so two samples are
// guaranteed however fast Stop lands.
func TestHeapSamplerPublishes(t *testing.T) {
	observer := obs.New()
	h := StartHeapSampler(observer, 10*time.Millisecond)
	h.Stop()
	if len(h.Samples()) < 2 {
		t.Fatalf("only %d samples", len(h.Samples()))
	}
	snap := observer.Snapshot()
	if v, ok := snap.Counter("heap-alloc-bytes"); !ok || v <= 0 {
		t.Fatalf("heap-alloc-bytes = %d ok=%v", v, ok)
	}
	if v, ok := snap.Counter("heap-alloc-high-water"); !ok || v <= 0 {
		t.Fatalf("heap-alloc-high-water = %d ok=%v", v, ok)
	}
}
