package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ppchecker/internal/core"
	"ppchecker/internal/eval"
)

// BreakerState is one stage-breaker's position.
type BreakerState string

// Breaker states.
const (
	// BreakerClosed: the stage is healthy; full retry budgets apply.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the stage failed on Threshold consecutive apps —
	// something systemic (a poisoned lexicon, a corrupt shard) is
	// wrong. The stream keeps going in quarantine mode: apps run with
	// their retry budget withheld, so a run over a poisoned corpus
	// degrades in throughput-preserving fashion instead of burning
	// its whole retry budget on every app.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: Cooldown apps have passed since the trip; the
	// next app probes with a full budget. Success closes the breaker,
	// another stage failure re-opens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive apps must fail at the same
	// stage to trip it; <= 0 disables the breaker.
	Threshold int
	// Cooldown is how many apps are processed in quarantine before the
	// breaker half-opens for a probe; <= 0 means 4x Threshold.
	Cooldown int
}

// DefaultBreakerConfig trips a stage after 8 consecutive failing apps
// and probes again 32 apps later.
func DefaultBreakerConfig() BreakerConfig { return BreakerConfig{Threshold: 8, Cooldown: 32} }

// stageBreaker is the per-stage state.
type stageBreaker struct {
	state    BreakerState
	consec   int // consecutive apps failing this stage (closed/half-open)
	cooldown int // quarantined apps remaining until half-open (open)
	trips    int64
}

// Breaker watches stage failures across apps and trips repeatedly
// failing stages into quarantine. One Breaker serves all workers; the
// per-app bookkeeping is two short critical sections.
type Breaker struct {
	cfg    BreakerConfig
	mu     sync.Mutex
	stages map[string]*stageBreaker
	trips  int64
}

// NewBreaker builds a breaker; a zero-Threshold config disables it
// (Quarantine always reports false).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold > 0 && cfg.Cooldown <= 0 {
		cfg.Cooldown = 4 * cfg.Threshold
	}
	return &Breaker{cfg: cfg, stages: map[string]*stageBreaker{}}
}

// Quarantine reports whether the next app should run in quarantine
// mode (retry budget withheld): true while any stage breaker is open
// and not yet due for its half-open probe. The call advances open
// breakers' cooldowns, so it must be made exactly once per app.
func (b *Breaker) Quarantine() bool {
	if b == nil || b.cfg.Threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	quarantine := false
	for _, sb := range b.stages {
		if sb.state != BreakerOpen {
			continue
		}
		sb.cooldown--
		if sb.cooldown <= 0 {
			sb.state = BreakerHalfOpen
			sb.consec = 0
			continue
		}
		quarantine = true
	}
	return quarantine
}

// Observe folds one completed app into the breaker: each stage that
// degraded or failed counts against its consecutive-failure run, and
// stages absent from the report's degraded list reset theirs. Returns
// the stages that tripped on this observation (for logging/metrics).
func (b *Breaker) Observe(rep *core.Report, outcome eval.Outcome) []string {
	if b == nil || b.cfg.Threshold <= 0 || outcome == eval.OutcomeSkipped {
		return nil
	}
	failed := map[string]bool{}
	if rep != nil {
		for _, e := range rep.Degraded {
			failed[string(e.Stage)] = true
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var tripped []string
	// Count the stages that failed on this app.
	for stage := range failed {
		sb := b.stages[stage]
		if sb == nil {
			sb = &stageBreaker{state: BreakerClosed}
			b.stages[stage] = sb
		}
		switch sb.state {
		case BreakerOpen:
			// Already quarantining; nothing to count.
		case BreakerHalfOpen:
			// The probe failed: straight back to quarantine.
			sb.state = BreakerOpen
			sb.cooldown = b.cfg.Cooldown
			sb.trips++
			b.trips++
			tripped = append(tripped, stage)
		default:
			sb.consec++
			if sb.consec >= b.cfg.Threshold {
				sb.state = BreakerOpen
				sb.cooldown = b.cfg.Cooldown
				sb.trips++
				b.trips++
				tripped = append(tripped, stage)
			}
		}
	}
	// A clean pass through a stage resets its run — and closes a
	// half-open breaker whose probe succeeded.
	for stage, sb := range b.stages {
		if failed[stage] {
			continue
		}
		switch sb.state {
		case BreakerHalfOpen:
			sb.state = BreakerClosed
			sb.consec = 0
		case BreakerClosed:
			sb.consec = 0
		}
	}
	sort.Strings(tripped)
	return tripped
}

// Trips returns the total number of breaker trips so far.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// StageStatus is one stage's breaker position for expositions.
type StageStatus struct {
	Stage string       `json:"stage"`
	State BreakerState `json:"state"`
	Trips int64        `json:"trips"`
}

// Status snapshots every stage breaker that has ever counted a
// failure, sorted by stage name, plus the overall state: open if any
// stage is open, half-open if any is probing, closed otherwise.
func (b *Breaker) Status() (BreakerState, []StageStatus) {
	if b == nil || b.cfg.Threshold <= 0 {
		return BreakerClosed, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	overall := BreakerClosed
	var rows []StageStatus
	for stage, sb := range b.stages {
		rows = append(rows, StageStatus{Stage: stage, State: sb.state, Trips: sb.trips})
		switch sb.state {
		case BreakerOpen:
			overall = BreakerOpen
		case BreakerHalfOpen:
			if overall == BreakerClosed {
				overall = BreakerHalfOpen
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Stage < rows[j].Stage })
	return overall, rows
}

// Render prints the breaker status on one line, e.g. for -metrics:
// "breaker: open (apk-decode open/2)" or "breaker: closed".
func (b *Breaker) Render() string {
	overall, rows := b.Status()
	var parts []string
	for _, r := range rows {
		if r.State != BreakerClosed || r.Trips > 0 {
			parts = append(parts, fmt.Sprintf("%s %s/%d", r.Stage, r.State, r.Trips))
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("breaker: %s", overall)
	}
	return fmt.Sprintf("breaker: %s (%s)", overall, strings.Join(parts, ", "))
}
