package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"ppchecker/internal/longi"
	"ppchecker/internal/serve"
	"ppchecker/internal/synth"
)

// historyRequest converts a generated versioned app into its wire form.
func historyRequest(t testing.TB, va synth.VersionedApp) serve.HistoryRequest {
	t.Helper()
	req := serve.HistoryRequest{Name: va.Pkg}
	for _, v := range va.Versions {
		req.Versions = append(req.Versions, wireApp(t, synth.GeneratedApp{App: v.App}))
	}
	return req
}

// TestServeCheckHistory posts a release chain with planted drift and
// checks the response carries per-version reports plus the expected
// drift findings, and that a repeated post is served from the
// server-lifetime artifact store without changing the answer.
func TestServeCheckHistory(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 2, Longi: &longi.Config{}})
	fh := synth.NewVersionedFirehose(51, 5)

	// Find an app whose history has planted drift.
	var va synth.VersionedApp
	for i := int64(0); ; i++ {
		v, err := fh.History(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Drifts) > 0 {
			va = v
			break
		}
		if i > 20 {
			t.Fatal("no history with planted drift in 20 apps")
		}
	}

	url := "http://" + srv.Addr() + "/check-history"
	resp, body := postJSON(t, url, historyRequest(t, va))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var hr serve.HistoryResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if hr.Name != va.Pkg || len(hr.Versions) != len(va.Versions) {
		t.Fatalf("response shape: name=%q versions=%d, want %q/%d",
			hr.Name, len(hr.Versions), va.Pkg, len(va.Versions))
	}
	if hr.Stats.Checked != len(va.Versions) {
		t.Fatalf("stats = %+v, want %d checked", hr.Stats, len(va.Versions))
	}
	if len(hr.Drift) == 0 {
		t.Fatalf("planted drift (%+v) produced no drift findings", va.Drifts)
	}
	for _, p := range va.Drifts {
		found := false
		for _, d := range hr.Drift {
			if d.FromVersion == p.FromVersion && d.ToVersion == p.ToVersion &&
				d.Info == string(p.Info) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted drift on %q at v%d→v%d missing from response: %+v",
				p.Info, p.FromVersion, p.ToVersion, hr.Drift)
		}
	}

	// Second post: warm artifact store, identical answer.
	resp2, body2 := postJSON(t, url, historyRequest(t, va))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status = %d, body %s", resp2.StatusCode, body2)
	}
	var hr2 serve.HistoryResponse
	if err := json.Unmarshal(body2, &hr2); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(hr.Drift)
	b, _ := json.Marshal(hr2.Drift)
	if string(a) != string(b) {
		t.Errorf("warm drift differs:\ncold: %s\nwarm: %s", a, b)
	}
}

// TestServeCheckHistoryDisabled: without Options.Longi the endpoint
// answers 501, and an empty chain is 400.
func TestServeCheckHistoryDisabled(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 1})
	url := "http://" + srv.Addr() + "/check-history"
	resp, body := postJSON(t, url, serve.HistoryRequest{Name: "x"})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("disabled endpoint status = %d, body %s", resp.StatusCode, body)
	}

	srv2 := startServer(t, serve.Options{Workers: 1, Longi: &longi.Config{}})
	resp2, body2 := postJSON(t, "http://"+srv2.Addr()+"/check-history", serve.HistoryRequest{Name: "x"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty chain status = %d, body %s", resp2.StatusCode, body2)
	}
}
