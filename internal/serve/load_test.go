package serve_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ppchecker/internal/serve"
)

// TestServeLoadSerial is the acceptance run from the issue: one
// ppserve process, a serial client, >= 1000 requests drawn from a
// seeded synthetic corpus. Every request must succeed, the warm-cache
// economics must hold for the whole run (library-policy analyses
// bounded by unique policy texts across ALL requests, visible in
// /metrics), and the final SIGTERM-style drain must complete with an
// in-flight request intact.
func TestServeLoadSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	admitted := make(chan struct{}, 32)
	srv := serve.New(serve.Options{Workers: 4, QueueDepth: 16, PerAppTimeout: 30 * time.Second,
		AdmissionNotify: func(queued int) {
			if queued > 0 {
				select {
				case admitted <- struct{}{}:
				default:
				}
			}
		}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(ln)
	base := "http://" + srv.Addr()
	ds := testDataset()

	const total = 1000
	uniqueLibPolicies := map[string]bool{}
	outcomes := map[string]int{}
	// Pre-encode the wire bodies once; the serial client then replays
	// the corpus until it has issued `total` requests.
	bodies := make([][]byte, len(ds.Apps))
	for i, ga := range ds.Apps {
		raw, err := json.Marshal(wireApp(t, ga))
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = raw
		for _, text := range ga.App.LibPolicies {
			uniqueLibPolicies[text] = true
		}
	}

	client := &http.Client{Timeout: time.Minute}
	for i := 0; i < total; i++ {
		resp, err := client.Post(base+"/check", "application/json",
			strings.NewReader(string(bodies[i%len(bodies)])))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		var cr serve.CheckResponse
		err = json.NewDecoder(resp.Body).Decode(&cr)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d: bad body: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (%s): status %d, outcome %q", i, cr.Name, resp.StatusCode, cr.Outcome)
		}
		if cr.Report == nil {
			t.Fatalf("request %d (%s): no report", i, cr.Name)
		}
		outcomes[cr.Outcome]++
	}
	if outcomes["checked"] != total {
		t.Fatalf("of %d requests, %d checked (%v)", total, outcomes["checked"], outcomes)
	}

	// Cache-lifetime economics over the whole run, through /metrics.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	snap := srv.Metrics()
	analyses, ok := snap.Counter("lib-policy-analyses")
	if !ok {
		t.Fatal("lib-policy-analyses missing from metrics")
	}
	if n := int64(len(uniqueLibPolicies)); analyses > n {
		t.Fatalf("%d library-policy analyses for %d unique texts across %d requests",
			analyses, n, total)
	}
	if served, _ := snap.Counter("serve-requests-checked"); served < total {
		t.Fatalf("serve-requests-checked = %d, want >= %d", served, total)
	}

	// Drain with one last request in flight: it must complete.
	slow := serve.CheckRequest{
		Name:       "com.example.lastone",
		PolicyHTML: strings.Repeat("<p>We collect your location information and share your personal data with partners.</p>\n", 2000),
	}
	// Flush the admission signals left over from the serial run (all of
	// those requests have completed), so the next signal is the final
	// request's own admission — no poll loop, no sleep.
	for len(admitted) > 0 {
		<-admitted
	}
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, base+"/check", slow)
		done <- resp.StatusCode
	}()
	select {
	case <-admitted:
	case <-time.After(30 * time.Second):
		t.Fatal("final request never admitted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request dropped by drain: status %d", code)
	}
}
