package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestTryAcquireBounds pins the admission accounting: the queue never
// admits beyond QueueDepth, batch acquisition is all-or-nothing, and
// released capacity is reusable.
func TestTryAcquireBounds(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 3})
	if !s.tryAcquire(2) {
		t.Fatal("2 of 3 refused")
	}
	if s.tryAcquire(2) {
		t.Fatal("admitted 4 into a queue of 3")
	}
	if !s.tryAcquire(1) {
		t.Fatal("the last slot refused")
	}
	if s.tryAcquire(1) {
		t.Fatal("admitted past a full queue")
	}
	s.release(3)
	if got := s.QueueLen(); got != 0 {
		t.Fatalf("queue len after release = %d", got)
	}
	if !s.tryAcquire(3) {
		t.Fatal("released capacity not reusable")
	}
}

// TestCheckOverflowIs429 holds the whole admission budget (as in-flight
// analyses would) and confirms a /check arriving on a full queue is
// rejected with 429 — and succeeds again once capacity frees up. The
// budget is held directly so the outcome is deterministic instead of
// racing real analyses against the HTTP round trip.
func TestCheckOverflowIs429(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Start(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	if !s.tryAcquire(s.opts.QueueDepth) {
		t.Fatal("could not saturate the queue")
	}
	body, _ := json.Marshal(CheckRequest{
		Name:       "com.example.overflow",
		PolicyHTML: "<p>We collect your location data.</p>",
	})
	url := "http://" + s.Addr() + "/check"

	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status = %d, want 429", resp.StatusCode)
	}

	s.release(s.opts.QueueDepth)
	resp, err = http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr CheckResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || cr.Outcome != "checked" {
		t.Fatalf("after release: status %d, outcome %q, err %v", resp.StatusCode, cr.Outcome, err)
	}
}
