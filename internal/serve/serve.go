package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppchecker/internal/core"
	"ppchecker/internal/esa"
	"ppchecker/internal/eval"
	"ppchecker/internal/longi"
	"ppchecker/internal/obs"
	"ppchecker/internal/report"
	"ppchecker/internal/stream"
)

// Options configures the analysis service.
type Options struct {
	// Workers is the size of the checker pool; <= 0 means GOMAXPROCS.
	// Each worker owns one core.Checker (a Checker is not safe for
	// concurrent use); all workers share the server's AnalysisCache,
	// observer and ESA stat scope.
	Workers int
	// QueueDepth bounds the number of admitted-but-unfinished apps
	// across all requests; <= 0 means 4x workers. Admission beyond the
	// bound is rejected with 429 rather than queued.
	QueueDepth int
	// PerAppTimeout bounds one analysis attempt, with
	// eval.RunOptions.PerAppTimeout semantics; 0 means no bound.
	PerAppTimeout time.Duration
	// MaxRetries is how many extra attempts a hard failure gets.
	MaxRetries int
	// RetryBackoff is the pause before each retry.
	RetryBackoff time.Duration
	// MaxBodyBytes bounds a request body; <= 0 means 64 MiB.
	MaxBodyBytes int64
	// CheckerOptions configure the per-worker checkers (threshold,
	// extensions, ...). The shared cache, observer and stat scope are
	// appended by the server.
	CheckerOptions []core.CheckerOption
	// Observer instruments the server; nil constructs a fresh one.
	// The /metrics endpoint renders its snapshot.
	Observer *obs.Observer
	// Breaker configures the cross-request circuit breaker shared with
	// the stream layer: a stage failing on Threshold consecutive apps
	// trips into quarantine (retry budget withheld) and turns /healthz
	// degraded. The zero value uses stream.DefaultBreakerConfig; a
	// negative Threshold disables the breaker.
	Breaker stream.BreakerConfig
	// Longi, when non-nil, enables /check-history backed by a
	// server-lifetime longitudinal engine. The per-worker checkers are
	// then derived from this config (CheckerOptions is ignored) so the
	// artifact store's config fingerprint always matches the checkers
	// that fill it.
	Longi *longi.Config
	// LongiCacheEntries bounds the in-memory artifact store backing
	// /check-history; <= 0 means 4096 artifacts.
	LongiCacheEntries int
	// AdmissionNotify, when non-nil, observes every admission-queue
	// transition with the new occupancy. It is called synchronously
	// with the admission lock held — it must return promptly and must
	// not call back into the server. Tests use it to synchronize on
	// queue states instead of polling.
	AdmissionNotify func(queued int)
}

// withDefaults fills the zero fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.Observer == nil {
		o.Observer = obs.New()
	}
	if o.Breaker.Threshold == 0 {
		o.Breaker = stream.DefaultBreakerConfig()
	}
	if o.LongiCacheEntries <= 0 {
		o.LongiCacheEntries = 4096
	}
	return o
}

// result is one finished analysis.
type result struct {
	rep     *core.Report
	outcome eval.Outcome
	retries int
	// exhausted: the app spent its whole non-zero retry budget and
	// still failed hard — a different signal than a one-shot failure.
	exhausted bool
	// quarantined: the breaker was open, so the app ran with its retry
	// budget withheld.
	quarantined bool
}

// job is one admitted app: the request context travels with it so a
// canceled request is skipped cheaply instead of analyzed for nobody.
type job struct {
	ctx  context.Context
	name string
	app  *core.App
	// run overrides the default CheckSafe analysis when non-nil —
	// /check-history routes versions through the longitudinal engine
	// this way while sharing the same worker pool and admission bound.
	run  func(ctx context.Context, c *core.Checker) (*core.Report, error)
	done chan result // buffered(1): the worker's send never blocks
}

// Server is the long-lived analysis service. Construct with New,
// start with Start, stop with Shutdown. The server's cache state —
// the shared library-policy AnalysisCache and the process-global ESA
// interpret memo — lives for the server's whole lifetime and warms
// monotonically across requests; this is safe precisely because the
// caches re-arm poisoned entries instead of serving them (see
// core.AnalysisCache.Get).
type Server struct {
	opts     Options
	libCache *core.AnalysisCache
	esaScope *esa.StatScope
	obs      *obs.Observer
	breaker  *stream.Breaker

	longiEng *longi.Engine // nil unless Options.Longi is set

	jobs    chan *job
	mu      sync.Mutex // guards queued
	queued  int
	workers sync.WaitGroup

	draining atomic.Bool
	httpSrv  *http.Server
	ln       net.Listener
	started  time.Time
}

// New builds a server (not yet listening).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		libCache: core.NewAnalysisCache(),
		esaScope: esa.NewStatScope(),
		obs:      opts.Observer,
		breaker:  stream.NewBreaker(opts.Breaker),
		jobs:     make(chan *job, opts.QueueDepth),
	}
	if opts.Longi != nil {
		s.longiEng = longi.NewEngine(longi.NewMemStore(opts.LongiCacheEntries), *opts.Longi)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/check", s.handleCheck)
	mux.HandleFunc("/check-batch", s.handleCheckBatch)
	mux.HandleFunc("/check-history", s.handleCheckHistory)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// net/http/pprof registers on the default mux (imported via obs);
	// expose it under the same listener.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Start begins serving on ln: the worker pool spins up (each worker
// builds its checker against the shared caches) and the HTTP server
// accepts in a background goroutine. Start returns immediately.
func (s *Server) Start(ln net.Listener) {
	s.ln = ln
	s.started = time.Now()
	base := s.opts.CheckerOptions
	if s.longiEng != nil {
		// The artifact store keys by the longi config fingerprint, so the
		// checkers must be built from that config and nothing else (the
		// shared caches appended below never change analysis results).
		base = s.longiEng.Config().CheckerOptions()
	}
	checkerOpts := append(append([]core.CheckerOption{}, base...),
		core.WithSharedAnalysisCache(s.libCache),
		core.WithObserver(s.obs),
		core.WithESAStatScope(s.esaScope))
	attempt := eval.AttemptOptions{
		Timeout:      s.opts.PerAppTimeout,
		MaxRetries:   s.opts.MaxRetries,
		RetryBackoff: s.opts.RetryBackoff,
	}
	for w := 0; w < s.opts.Workers; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			checker := core.NewChecker(checkerOpts...)
			for j := range s.jobs {
				quarantined := s.breaker.Quarantine()
				att := attempt
				if quarantined {
					att.MaxRetries = 0
					s.obs.AddCounter("serve-quarantined", 1)
				}
				run := j.run
				if run == nil {
					run = func(ctx context.Context, c *core.Checker) (*core.Report, error) {
						return c.CheckSafe(ctx, j.app)
					}
				}
				sp := s.obs.Start(string(core.StageRun), j.name, "")
				rep, outcome, retries := eval.CheckApp(j.ctx, checker, j.name, run, att)
				sp.End(spanError(rep, outcome), false)
				if tripped := s.breaker.Observe(rep, outcome); len(tripped) > 0 {
					s.obs.AddCounter("serve-breaker-trips", int64(len(tripped)))
				}
				exhausted := att.Exhausted(outcome, rep, retries)
				if exhausted {
					s.obs.AddCounter("serve-retry-exhaustions", 1)
				}
				s.obs.AddCounter("serve-requests-"+outcome.String(), 1)
				s.release(1)
				j.done <- result{rep: rep, outcome: outcome, retries: retries,
					exhausted: exhausted, quarantined: quarantined}
			}
		}()
	}
	go func() { _ = s.httpSrv.Serve(ln) }()
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server: admission stops (healthz turns 503,
// /check turns 503), every in-flight request runs to completion and
// gets its response, then the workers exit. ctx bounds the drain; on
// expiry the remaining handlers are abandoned and Shutdown returns
// ctx's error. No accepted request is ever dropped by a drain that
// completes within its bound.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// http.Server.Shutdown stops the listener and waits until every
	// active handler — each blocked on its job's result — returns.
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		// The drain bound expired with handlers still in flight; those
		// handlers may yet submit, so the queue must stay open. The
		// caller is about to exit the process anyway.
		return err
	}
	// No handler can submit anymore: stop the workers.
	close(s.jobs)
	s.workers.Wait()
	return nil
}

// tryAcquire admits n apps if the queue has room for all of them.
func (s *Server) tryAcquire(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued+n > s.opts.QueueDepth {
		return false
	}
	s.queued += n
	if s.opts.AdmissionNotify != nil {
		s.opts.AdmissionNotify(s.queued)
	}
	return true
}

func (s *Server) release(n int) {
	s.mu.Lock()
	s.queued -= n
	if s.opts.AdmissionNotify != nil {
		s.opts.AdmissionNotify(s.queued)
	}
	s.mu.Unlock()
}

// QueueLen returns the number of admitted-but-unfinished apps.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// submit queues one admitted app. The queue channel's capacity equals
// QueueDepth, so a successful tryAcquire guarantees the send does not
// block. run may be nil (plain CheckSafe).
func (s *Server) submit(ctx context.Context, name string, app *core.App,
	run func(context.Context, *core.Checker) (*core.Report, error)) *job {
	j := &job{ctx: ctx, name: name, app: app, run: run, done: make(chan result, 1)}
	s.jobs <- j
	return j
}

// handleCheck analyzes one app bundle.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		WriteError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	app, err := req.App()
	if err != nil {
		s.obs.AddCounter("serve-requests-badbundle", 1)
		WriteError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if !s.tryAcquire(1) {
		s.obs.AddCounter("serve-requests-rejected", 1)
		WriteError(w, http.StatusTooManyRequests, "analysis queue is full")
		return
	}
	res := <-s.submit(r.Context(), req.Name, app, nil).done
	WriteJSON(w, statusFor(res.outcome), checkResponse(&req, res))
}

// handleCheckBatch analyzes a list of bundles as one admission unit:
// either the whole batch fits in the queue or the request is rejected
// with 429.
func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		WriteError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var batch BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&batch); err != nil {
		WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(batch.Apps) == 0 {
		WriteError(w, http.StatusBadRequest, "empty batch")
		return
	}
	apps := make([]*core.App, len(batch.Apps))
	for i := range batch.Apps {
		app, err := batch.Apps[i].App()
		if err != nil {
			s.obs.AddCounter("serve-requests-badbundle", 1)
			WriteError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("app %d (%s): %s", i, batch.Apps[i].Name, err))
			return
		}
		apps[i] = app
	}
	if !s.tryAcquire(len(apps)) {
		s.obs.AddCounter("serve-requests-rejected", 1)
		WriteError(w, http.StatusTooManyRequests,
			fmt.Sprintf("batch of %d does not fit the analysis queue", len(apps)))
		return
	}
	jobs := make([]*job, len(apps))
	for i, app := range apps {
		jobs[i] = s.submit(r.Context(), batch.Apps[i].Name, app, nil)
	}
	resp := BatchResponse{Apps: make([]CheckResponse, len(jobs))}
	resp.Stats.Apps = len(jobs)
	for i, j := range jobs {
		res := <-j.done
		resp.Apps[i] = checkResponse(&batch.Apps[i], res)
		resp.Stats.Retried += res.retries
		if res.exhausted {
			resp.Stats.RetryExhaustions++
		}
		if res.quarantined {
			resp.Stats.Quarantined++
		}
		switch res.outcome {
		case eval.OutcomeChecked:
			resp.Stats.Checked++
		case eval.OutcomeDegraded:
			resp.Stats.Degraded++
		case eval.OutcomeFailed:
			resp.Stats.Failed++
		case eval.OutcomeSkipped:
			resp.Stats.Skipped++
		}
	}
	WriteJSON(w, http.StatusOK, resp)
}

// handleCheckHistory analyzes one app's release chain through the
// longitudinal engine and diffs consecutive versions into drift
// findings. The chain is one admission unit (all versions fit the
// queue or 429); version analyses share the worker pool with /check
// traffic, and unchanged stages are served from the server-lifetime
// artifact store.
func (s *Server) handleCheckHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.longiEng == nil {
		WriteError(w, http.StatusNotImplemented, "longitudinal analysis is not enabled (Options.Longi)")
		return
	}
	if s.draining.Load() {
		WriteError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req HistoryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Versions) == 0 {
		WriteError(w, http.StatusBadRequest, "empty version chain")
		return
	}
	apps := make([]*core.App, len(req.Versions))
	for i := range req.Versions {
		app, err := req.Versions[i].App()
		if err != nil {
			s.obs.AddCounter("serve-requests-badbundle", 1)
			WriteError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("version %d: %s", i+1, err))
			return
		}
		app.Name = req.Name // one app across the chain
		apps[i] = app
	}
	if !s.tryAcquire(len(apps)) {
		s.obs.AddCounter("serve-requests-rejected", 1)
		WriteError(w, http.StatusTooManyRequests,
			fmt.Sprintf("chain of %d does not fit the analysis queue", len(apps)))
		return
	}
	jobs := make([]*job, len(apps))
	for i, app := range apps {
		app := app
		jobs[i] = s.submit(r.Context(), fmt.Sprintf("%s@v%d", req.Name, i+1), app,
			func(ctx context.Context, c *core.Checker) (*core.Report, error) {
				return s.longiEng.CheckVersion(ctx, c, app)
			})
	}
	resp := HistoryResponse{Name: req.Name, Versions: make([]CheckResponse, len(jobs))}
	resp.Stats.Apps = len(jobs)
	reports := make([]*core.Report, len(jobs))
	for i, j := range jobs {
		res := <-j.done
		resp.Versions[i] = checkResponse(&req.Versions[i], res)
		resp.Versions[i].Name = j.name
		resp.Stats.Retried += res.retries
		if res.exhausted {
			resp.Stats.RetryExhaustions++
		}
		if res.quarantined {
			resp.Stats.Quarantined++
		}
		switch res.outcome {
		case eval.OutcomeChecked:
			resp.Stats.Checked++
			reports[i] = res.rep
		case eval.OutcomeDegraded:
			resp.Stats.Degraded++
			reports[i] = res.rep
		case eval.OutcomeFailed:
			resp.Stats.Failed++
		case eval.OutcomeSkipped:
			resp.Stats.Skipped++
		}
	}
	hist := longi.History{
		Pkg:      req.Name,
		Versions: reports,
		Drift:    longi.DiffHistory(req.Name, apps, reports),
	}
	resp.Drift = hist.Document().Drift
	WriteJSON(w, http.StatusOK, resp)
}

// Health evaluates the server's health state machine:
//
//	ok        accepting work, breaker closed, queue has headroom
//	degraded  still serving, but the breaker is open/probing or the
//	          admission queue is at its bound — expect 429s and
//	          withheld retry budgets
//	draining  shutdown in progress; stop routing here
func (s *Server) Health() HealthResponse {
	breakerState, stages := s.breaker.Status()
	queued := s.QueueLen()
	h := HealthResponse{
		State:      HealthOK,
		Queue:      queued,
		QueueDepth: s.opts.QueueDepth,
		Breaker:    string(breakerState),
		Stages:     stages,
	}
	switch {
	case s.draining.Load():
		h.State = HealthDraining
	case breakerState != stream.BreakerClosed || queued >= s.opts.QueueDepth:
		h.State = HealthDegraded
	}
	return h
}

// handleHealthz renders the health state machine. Degraded is still
// 200 — the server is serving, monitors read the state field — while
// draining is 503 so load balancers stop routing while in-flight work
// finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.State == HealthDraining {
		status = http.StatusServiceUnavailable
	}
	WriteJSON(w, status, h)
}

// handleMetrics renders the obs exposition: the per-stage table plus
// the server's cache-lifetime gauges (set, not added, so repeated
// scrapes don't compound them).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.publishCacheGauges()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "uptime: %s\nqueue: %d of %d\n%s\n",
		time.Since(s.started).Round(time.Second), s.QueueLen(), s.opts.QueueDepth,
		s.breaker.Render())
	fmt.Fprint(w, s.obs.Snapshot().Render())
}

// publishCacheGauges refreshes the cache-economics counters from their
// sources of truth: the server-lifetime ESA stat scope and the shared
// library-policy cache (analyses performed must never exceed unique
// policy texts seen across all requests).
func (s *Server) publishCacheGauges() {
	d := s.esaScope.Snapshot()
	s.obs.SetCounter("esa-interpret-hits", d.Hits)
	s.obs.SetCounter("esa-interpret-misses", d.Misses)
	s.obs.SetCounter("esa-interpret-evictions", d.Evictions)
	s.obs.SetCounter("esa-vec-pool-gets", d.PoolGets)
	s.obs.SetCounter("esa-vec-pool-allocs", d.PoolNews)
	_, analyses := s.libCache.Stats()
	s.obs.SetCounter("lib-policy-analyses", analyses)
	s.obs.SetCounter("lib-policy-unique-texts", int64(s.libCache.Len()))
	if s.longiEng != nil {
		cs := s.longiEng.Stats()
		s.obs.SetCounter("longi-artifact-hits", cs.Hits)
		s.obs.SetCounter("longi-artifact-misses", cs.Misses)
		s.obs.SetCounter("longi-artifact-puts", cs.Puts)
		s.obs.SetCounter("longi-artifact-store-errors", cs.StoreErrors)
	}
}

// Metrics returns the current snapshot with the cache gauges
// refreshed (the programmatic form of /metrics, used by cmd/ppserve's
// shutdown flush).
func (s *Server) Metrics() *obs.Snapshot {
	s.publishCacheGauges()
	return s.obs.Snapshot()
}

// checkResponse shapes one finished analysis for the wire.
func checkResponse(req *CheckRequest, res result) CheckResponse {
	return CheckResponse{
		Name:             req.Name,
		Outcome:          res.outcome.String(),
		Retries:          res.retries,
		RetriesExhausted: res.exhausted,
		Quarantined:      res.quarantined,
		Report:           report.FromReport(res.rep),
	}
}

// statusFor maps an outcome to the /check status code: completed
// analyses (even degraded ones) are 200 — the report says what
// degraded — a stub with no findings is 500, and a request whose
// context died before or during analysis is 503.
func statusFor(o eval.Outcome) int {
	switch o {
	case eval.OutcomeChecked, eval.OutcomeDegraded:
		return http.StatusOK
	case eval.OutcomeSkipped:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// spanError mirrors the corpus runner's StageRun span contract: hard
// failures and skips carry the stub's StageRun error; clean and
// degraded analyses count as successes.
func spanError(rep *core.Report, outcome eval.Outcome) error {
	if outcome != eval.OutcomeFailed && outcome != eval.OutcomeSkipped {
		return nil
	}
	for _, e := range rep.Degraded {
		if e.Stage == core.StageRun {
			return e
		}
	}
	return errors.New(outcome.String())
}

