// Package serve is the long-lived analysis service behind cmd/ppserve:
// an HTTP front end over the robust single-app pipeline
// (eval.CheckApp → core.CheckSafe) that keeps one shared
// core.AnalysisCache and the warm process-global ESA interpret memo
// alive across every request for the whole server lifetime.
//
// Endpoints:
//
//	POST /check          one app bundle in, one JSON report out
//	POST /check-batch    a list of bundles in, per-app reports + counts out
//	POST /check-history  one app's release chain in, per-version reports
//	                     plus cross-version drift findings out (requires
//	                     Options.Longi; unchanged sections of consecutive
//	                     versions are served from the server-lifetime
//	                     artifact store instead of re-analyzed)
//	GET  /healthz        health state machine (JSON: ok/degraded/draining
//	                     with queue depth and circuit-breaker state;
//	                     draining answers 503)
//	GET  /metrics        the obs exposition (per-stage table + run counters)
//	GET  /debug/pprof    net/http/pprof
//
// Admission is bounded: a worker pool of Options.Workers checkers
// drains a queue of at most Options.QueueDepth outstanding apps, and
// requests that would exceed the queue are rejected with 429 instead
// of piling up. Shutdown stops admission, finishes every in-flight
// request, then stops the workers — no accepted request is dropped.
package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"

	"ppchecker/internal/apk"
	"ppchecker/internal/core"
	"ppchecker/internal/report"
	"ppchecker/internal/stream"
)

// WriteJSON writes v as the JSON response body with the given status.
// Shared by every HTTP tier in the system (ppserve, the distributed
// coordinator, the artifact-store shards) so wire behavior — content
// type, no HTML escaping — stays uniform.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// WriteError writes the uniform JSON error body every non-2xx response
// carries.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, errorResponse{Error: msg})
}

// DecodeJSON decodes a bounded request body into v. maxBytes <= 0
// means 64 MiB.
func DecodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes)).Decode(v)
}

// CheckRequest is one app bundle on the wire — the JSON counterpart
// of the on-disk bundle layout (policy.html, description.txt,
// app.apk, libs). The APK rides along base64-encoded in the container
// format apk.Encode produces; it is optional, as are the description
// and library policies.
type CheckRequest struct {
	// Name is the app's package name.
	Name string `json:"name"`
	// PolicyHTML is the privacy policy (HTML or plain text).
	PolicyHTML string `json:"policy_html"`
	// Description is the store description, optional.
	Description string `json:"description,omitempty"`
	// APKBase64 is the base64-encoded APK container, optional.
	APKBase64 string `json:"apk_base64,omitempty"`
	// LibPolicies maps a library name to its policy text, optional.
	LibPolicies map[string]string `json:"lib_policies,omitempty"`
}

// App converts the wire bundle into a pipeline input. A malformed APK
// is a request error (the client sent bytes it believes are an APK),
// not a degraded stage: the caller maps it to 422.
func (r *CheckRequest) App() (*core.App, error) {
	app := &core.App{
		Name:        r.Name,
		PolicyHTML:  r.PolicyHTML,
		Description: r.Description,
		LibPolicies: r.LibPolicies,
	}
	if r.APKBase64 != "" {
		raw, err := base64.StdEncoding.DecodeString(r.APKBase64)
		if err != nil {
			return nil, fmt.Errorf("apk_base64: %w", err)
		}
		a, err := apk.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("apk_base64: %w", err)
		}
		app.APK = a
	}
	return app, nil
}

// CheckResponse is the result for one app.
type CheckResponse struct {
	Name string `json:"name"`
	// Outcome is the eval.Outcome wire name: "checked", "degraded",
	// "failed" or "skipped".
	Outcome string `json:"outcome"`
	// Retries counts extra attempts spent on this app.
	Retries int `json:"retries,omitempty"`
	// RetriesExhausted marks an app that consumed its whole non-zero
	// retry budget with the final attempt still erroring — a hard
	// failure, or a degraded report whose StageRun entry carries the
	// last error. Distinct from a one-shot failure and from a
	// quarantined run that never got a budget.
	RetriesExhausted bool `json:"retries_exhausted,omitempty"`
	// Quarantined marks an app analyzed while the server's circuit
	// breaker was open: its retry budget was withheld, so a transient
	// failure that a retry would have rescued surfaces as failed.
	Quarantined bool `json:"quarantined,omitempty"`
	// Report is the full JSON report document (the same shape
	// ppchecker -json emits). For "failed" it is the stub report
	// carrying the failure as a StageRun error.
	Report *report.Document `json:"report"`
}

// BatchRequest is the /check-batch input.
type BatchRequest struct {
	Apps []CheckRequest `json:"apps"`
}

// BatchStats summarizes a batch the way eval.RunStats partitions a
// corpus: Apps = Checked + Degraded + Failed + Skipped.
type BatchStats struct {
	Apps     int `json:"apps"`
	Checked  int `json:"checked"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	Skipped  int `json:"skipped"`
	Retried  int `json:"retried"`
	// RetryExhaustions counts the batch's failed apps that consumed
	// their whole retry budget (a subset of Failed).
	RetryExhaustions int `json:"retry_exhaustions,omitempty"`
	// Quarantined counts apps run with retry budget withheld because
	// the circuit breaker was open.
	Quarantined int `json:"quarantined,omitempty"`
}

// BatchResponse is the /check-batch output; Apps is index-aligned
// with the request's list.
type BatchResponse struct {
	Apps  []CheckResponse `json:"apps"`
	Stats BatchStats      `json:"stats"`
}

// HistoryRequest is the /check-history input: one app's release chain,
// oldest version first. Each version is a full bundle (policy,
// description, APK, library policies) — the versions are independent
// inputs; the server's longitudinal engine dedupes unchanged sections
// against its artifact store.
type HistoryRequest struct {
	// Name is the app's package name; it overrides any per-version name.
	Name string `json:"name"`
	// Versions is the release chain, index 0 = version 1.
	Versions []CheckRequest `json:"versions"`
}

// HistoryResponse is the /check-history output.
type HistoryResponse struct {
	Name string `json:"name"`
	// Versions is index-aligned with the request's chain.
	Versions []CheckResponse `json:"versions"`
	// Drift is the cross-version diff of the completed reports.
	// Transitions touching a failed or partial version emit no drift
	// (absence of a finding must mean "resolved", not "stage died").
	Drift []report.DriftJSON `json:"drift,omitempty"`
	Stats BatchStats         `json:"stats"`
}

// Health states, in decreasing order of welcome.
const (
	// HealthOK: accepting work, breaker closed, queue has headroom.
	HealthOK = "ok"
	// HealthDegraded: still serving, but the circuit breaker is open
	// (or probing) or the admission queue is at its bound.
	HealthDegraded = "degraded"
	// HealthDraining: shutdown in progress; stop routing here.
	HealthDraining = "draining"
)

// HealthResponse is the /healthz body.
type HealthResponse struct {
	// State is HealthOK, HealthDegraded or HealthDraining.
	State string `json:"state"`
	// Queue and QueueDepth are the admission queue's occupancy and
	// bound.
	Queue      int `json:"queue"`
	QueueDepth int `json:"queue_depth"`
	// Breaker is the overall circuit-breaker state
	// (closed/open/half-open); Stages lists every stage that has ever
	// counted a failure.
	Breaker string               `json:"breaker"`
	Stages  []stream.StageStatus `json:"stages,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
