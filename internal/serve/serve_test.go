package serve_test

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ppchecker/internal/apk"
	"ppchecker/internal/serve"
	"ppchecker/internal/stream"
	"ppchecker/internal/synth"
)

// testDataset generates one small seeded corpus per test binary.
var testDataset = sync.OnceValue(func() *synth.Dataset {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		panic(err)
	}
	return ds
})

// wireApp converts a generated app into its wire-format bundle.
func wireApp(t testing.TB, ga synth.GeneratedApp) serve.CheckRequest {
	t.Helper()
	req := serve.CheckRequest{
		Name:        ga.App.Name,
		PolicyHTML:  ga.App.PolicyHTML,
		Description: ga.App.Description,
		LibPolicies: ga.App.LibPolicies,
	}
	if ga.App.APK != nil {
		raw, err := apk.Encode(ga.App.APK)
		if err != nil {
			t.Fatal(err)
		}
		req.APKBase64 = base64.StdEncoding.EncodeToString(raw)
	}
	return req
}

// startServer spins up a server on a free port and tears it down with
// the test.
func startServer(t testing.TB, opts serve.Options) *serve.Server {
	t.Helper()
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServeCheckSingle: one bundle in, a well-formed report out, and
// the detection results agree with the app's ground truth shape.
func TestServeCheckSingle(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 2})
	ds := testDataset()
	ga := ds.Apps[0]

	resp, body := postJSON(t, "http://"+srv.Addr()+"/check", wireApp(t, ga))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var cr serve.CheckResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if cr.Outcome != "checked" {
		t.Fatalf("outcome = %q, want checked (report: %s)", cr.Outcome, body)
	}
	if cr.Report == nil {
		t.Fatal("response carries no report")
	}
	if cr.Name != ga.App.Name {
		t.Fatalf("name = %q, want %q", cr.Name, ga.App.Name)
	}
}

// TestServeRequestErrors: malformed JSON is 400, a bundle with a
// corrupt APK is 422, GET on /check is 405.
func TestServeRequestErrors(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 1})
	base := "http://" + srv.Addr()

	resp, err := http.Post(base+"/check", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, base+"/check", serve.CheckRequest{
		Name:       "bad",
		PolicyHTML: "<p>We collect data.</p>",
		APKBase64:  base64.StdEncoding.EncodeToString([]byte("not an apk")),
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt apk: status = %d, want 422", resp.StatusCode)
	}

	resp, err = http.Get(base + "/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /check: status = %d, want 405", resp.StatusCode)
	}
}

// TestServeBatch: a batch comes back index-aligned with honest
// partition stats, and a batch larger than the queue is rejected with
// 429 before any analysis starts.
func TestServeBatch(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 2, QueueDepth: 8})
	ds := testDataset()
	var batch serve.BatchRequest
	for _, ga := range ds.Apps[:5] {
		batch.Apps = append(batch.Apps, wireApp(t, ga))
	}

	resp, body := postJSON(t, "http://"+srv.Addr()+"/check-batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Apps) != len(batch.Apps) {
		t.Fatalf("got %d results for %d apps", len(br.Apps), len(batch.Apps))
	}
	for i, cr := range br.Apps {
		if cr.Name != batch.Apps[i].Name {
			t.Fatalf("result %d is %q, want %q (misaligned batch)", i, cr.Name, batch.Apps[i].Name)
		}
		if cr.Outcome != "checked" {
			t.Fatalf("app %s outcome %q", cr.Name, cr.Outcome)
		}
	}
	st := br.Stats
	if st.Apps != 5 || st.Checked+st.Degraded+st.Failed+st.Skipped != st.Apps {
		t.Fatalf("stats don't partition the batch: %+v", st)
	}

	// Batch admission is all-or-nothing against the queue bound.
	var big serve.BatchRequest
	for i := 0; i < 9; i++ {
		big.Apps = append(big.Apps, wireApp(t, ds.Apps[i]))
	}
	resp, _ = postJSON(t, "http://"+srv.Addr()+"/check-batch", big)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: status = %d, want 429", resp.StatusCode)
	}
}

// TestServeWarmCacheAcrossRequests is the cache-lifetime contract:
// requests repeating the same library policies must not re-analyze
// them — the number of library-policy analyses is bounded by the
// number of unique policy texts across ALL requests, and /metrics
// exposes exactly that.
func TestServeWarmCacheAcrossRequests(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 2})
	ds := testDataset()
	base := "http://" + srv.Addr()

	uniqueLibPolicies := map[string]bool{}
	send := func() {
		for _, ga := range ds.Apps[:30] {
			for _, text := range ga.App.LibPolicies {
				uniqueLibPolicies[text] = true
			}
			resp, body := postJSON(t, base+"/check", wireApp(t, ga))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
		}
	}
	send()
	snap := srv.Metrics()
	analysesAfterFirst, ok := snap.Counter("lib-policy-analyses")
	if !ok {
		t.Fatal("lib-policy-analyses missing from metrics")
	}
	if n := int64(len(uniqueLibPolicies)); analysesAfterFirst > n {
		t.Fatalf("%d analyses for %d unique library policies", analysesAfterFirst, n)
	}

	// The same apps again: every library policy is already cached, so
	// the analysis count must not move at all.
	send()
	snap = srv.Metrics()
	analysesAfterSecond, _ := snap.Counter("lib-policy-analyses")
	if analysesAfterSecond != analysesAfterFirst {
		t.Fatalf("repeat pass re-analyzed library policies: %d -> %d",
			analysesAfterFirst, analysesAfterSecond)
	}
	if hits, _ := snap.Counter("esa-interpret-hits"); hits == 0 {
		t.Fatal("warm ESA memo shows zero hits after two passes")
	}

	// And the rendered exposition carries the gauges.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "lib-policy-analyses") {
		t.Fatalf("/metrics: status %d, body:\n%s", resp.StatusCode, buf.String())
	}
}

// TestServeGracefulDrain: Shutdown with a request in flight completes
// that request with a full 200 response — no accepted work is dropped
// — and afterwards the listener is closed and the workers are gone.
func TestServeGracefulDrain(t *testing.T) {
	// AdmissionNotify replaces a QueueLen poll loop: the test learns the
	// request was admitted the moment it happens, with no sleep to race.
	admitted := make(chan struct{}, 4)
	srv := serve.New(serve.Options{Workers: 1, QueueDepth: 2,
		AdmissionNotify: func(queued int) {
			if queued > 0 {
				select {
				case admitted <- struct{}{}:
				default:
				}
			}
		}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(ln)
	base := "http://" + srv.Addr()

	slow := serve.CheckRequest{
		Name:       "com.example.inflight",
		PolicyHTML: strings.Repeat("<p>We collect your location information and share your personal data with our partners.</p>\n", 2000),
	}
	type outcome struct {
		code int
		body []byte
	}
	done := make(chan outcome, 1)
	go func() {
		resp, body := postJSON(t, base+"/check", slow)
		done <- outcome{resp.StatusCode, body}
	}()
	select {
	case <-admitted:
	case <-time.After(30 * time.Second):
		t.Fatal("request never admitted")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain, want 200\n%s", res.code, res.body)
	}
	var cr serve.CheckResponse
	if err := json.Unmarshal(res.body, &cr); err != nil || cr.Report == nil {
		t.Fatalf("in-flight response truncated by drain: %v\n%s", err, res.body)
	}

	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeConcurrentClients hammers the server from several clients
// at once under -race: every admitted request gets a coherent
// response, rejected ones get exactly 429.
func TestServeConcurrentClients(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 4, QueueDepth: 16})
	ds := testDataset()
	base := "http://" + srv.Addr()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ga := ds.Apps[(c*20+i)%len(ds.Apps)]
				resp, body := postJSON(t, base+"/check", wireApp(t, ga))
				switch resp.StatusCode {
				case http.StatusOK:
					var cr serve.CheckResponse
					if err := json.Unmarshal(body, &cr); err != nil {
						errs <- fmt.Errorf("bad body: %v", err)
						return
					}
				case http.StatusTooManyRequests:
					// Bounded admission doing its job under load.
				default:
					errs <- fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeHealthz: a healthy server reports the full state machine
// body — state ok, queue occupancy and bound, breaker closed.
func TestServeHealthz(t *testing.T) {
	srv := startServer(t, serve.Options{Workers: 2, QueueDepth: 8})
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, buf.String())
	}
	var h serve.HealthResponse
	if err := json.Unmarshal(buf.Bytes(), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, buf.String())
	}
	if h.State != serve.HealthOK || h.Breaker != "closed" {
		t.Fatalf("health = %+v, want ok/closed", h)
	}
	if h.Queue != 0 || h.QueueDepth != 8 {
		t.Fatalf("queue = %d of %d, want 0 of 8", h.Queue, h.QueueDepth)
	}
	// The smoke-test contract: the body contains "ok".
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("healthz body lost the ok marker: %s", buf.String())
	}
}

// TestServeRetryExhaustionAndQuarantine drives the server into
// sustained hard failure (a per-attempt timeout no analysis can meet):
// early apps burn and exhaust their retry budget, the breaker trips,
// later apps run quarantined, and /healthz turns degraded — all
// distinguishable on the wire.
func TestServeRetryExhaustionAndQuarantine(t *testing.T) {
	srv := startServer(t, serve.Options{
		Workers:       1, // deterministic failure ordering
		QueueDepth:    16,
		PerAppTimeout: time.Nanosecond,
		MaxRetries:    1,
		Breaker:       stream.BreakerConfig{Threshold: 2, Cooldown: 50},
	})
	base := "http://" + srv.Addr()
	ds := testDataset()
	var batch serve.BatchRequest
	for _, ga := range ds.Apps[:6] {
		batch.Apps = append(batch.Apps, wireApp(t, ga))
	}
	resp, body := postJSON(t, base+"/check-batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	// The 1ns timeout leaves partial reports, so the outcomes are
	// degraded (salvaged findings), not hard failures — exhaustion is
	// the signal that separates them from healthy degraded apps.
	if br.Stats.Degraded != 6 {
		t.Fatalf("stats = %+v, want all 6 degraded", br.Stats)
	}
	// Apps 1-2 exhaust their budget and trip the breaker; apps 3-6 run
	// quarantined with no budget to exhaust.
	if br.Stats.RetryExhaustions != 2 || br.Stats.Quarantined != 4 {
		t.Fatalf("stats = %+v, want 2 exhaustions and 4 quarantined", br.Stats)
	}
	for i, cr := range br.Apps {
		wantExhausted, wantQuarantined := i < 2, i >= 2
		if cr.RetriesExhausted != wantExhausted || cr.Quarantined != wantQuarantined {
			t.Fatalf("app %d = exhausted %v quarantined %v, want %v/%v",
				i, cr.RetriesExhausted, cr.Quarantined, wantExhausted, wantQuarantined)
		}
	}

	// The tripped breaker shows in the health state machine.
	h := srv.Health()
	if h.State != serve.HealthDegraded || h.Breaker != "open" {
		t.Fatalf("health after trip = %+v, want degraded/open", h)
	}
	if len(h.Stages) == 0 {
		t.Fatal("health carries no stage breakdown")
	}

	// And in the counters.
	snap := srv.Metrics()
	if v, _ := snap.Counter("serve-retry-exhaustions"); v != 2 {
		t.Fatalf("serve-retry-exhaustions = %d", v)
	}
	// Every stage degrades under the dead context, so several stage
	// breakers trip on the same app.
	if v, _ := snap.Counter("serve-breaker-trips"); v < 1 {
		t.Fatalf("serve-breaker-trips = %d", v)
	}
	if v, _ := snap.Counter("serve-quarantined"); v != 4 {
		t.Fatalf("serve-quarantined = %d", v)
	}
}

// TestServeHealthzDraining: shutdown flips the state machine to
// draining with a 503 before the listener closes.
func TestServeHealthzDraining(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if h := srv.Health(); h.State != serve.HealthDraining {
		t.Fatalf("health after shutdown = %+v, want draining", h)
	}
}
