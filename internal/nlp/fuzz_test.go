package nlp_test

import (
	"strings"
	"testing"

	"ppchecker/internal/nlp"
	"ppchecker/internal/synth"
)

// FuzzSentenceSplit: splitting must never panic and must respect the
// tractability ceilings on any input — including the NLP bomb classes
// — and GuardText must accept everything the splitter keeps bounded.
func FuzzSentenceSplit(f *testing.F) {
	base := "We collect your location. We share it with: partners; advertisers; and analytics providers."
	f.Add(base)
	c := synth.NewCorruptor(4)
	for _, fault := range []synth.Fault{
		synth.FaultPolicyEnumBomb, synth.FaultPolicyTokenBomb,
	} {
		if s, err := c.CorruptPolicy(base, fault); err == nil {
			f.Add(s)
		}
	}
	f.Add(strings.Repeat("a;\n", 500))
	f.Add("e.g. i.e. etc. 3.14 v1.")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		_ = nlp.GuardText(text)
		sents := nlp.SplitSentences(text)
		if len(sents) > nlp.MaxSentences {
			t.Fatalf("%d sentences exceed MaxSentences", len(sents))
		}
		for _, s := range sents {
			if len(s) > nlp.MaxSentenceBytes {
				t.Fatalf("sentence of %d bytes exceeds MaxSentenceBytes", len(s))
			}
		}
	})
}
