package nlp

// Chunk is a base noun phrase over a token span [Start, End) with the
// index of its head noun.
type Chunk struct {
	Start, End int
	Head       int
}

// ChunkNPs finds base noun phrases in a tagged sentence. A base NP is
// an optional determiner/possessive/cardinal, a run of premodifiers
// (adjectives, participles, nouns), and a head noun; a bare pronoun is
// also an NP. Participles are only premodifiers when a noun follows, so
// main verbs are never swallowed.
func ChunkNPs(toks []Token) []Chunk {
	return ChunkNPsInto(make([]Chunk, 0, len(toks)/3+1), toks)
}

// ChunkNPsInto is ChunkNPs appending into a caller-provided slice, for
// callers that reuse one chunk buffer across sentences (ParseBuffer,
// the description analyzer's phrase scan).
func ChunkNPsInto(chunks []Chunk, toks []Token) []Chunk {
	n := len(toks)
	i := 0
	for i < n {
		t := toks[i]
		if t.Tag == TagPRP {
			chunks = append(chunks, Chunk{Start: i, End: i + 1, Head: i})
			i++
			continue
		}
		if t.Tag == TagDT || t.Tag == TagPRPS || t.Tag == TagCD || isPremod(toks, i) || t.Tag.IsNoun() {
			start := i
			j := i
			if toks[j].Tag == TagDT || toks[j].Tag == TagPRPS {
				j++
			}
			for j < n && (isPremod(toks, j) || toks[j].Tag == TagCD) {
				j++
			}
			head := -1
			for j < n && (toks[j].Tag == TagNN || toks[j].Tag == TagNNS || toks[j].Tag == TagNNP) {
				head = j
				j++
			}
			if head >= 0 {
				chunks = append(chunks, Chunk{Start: start, End: j, Head: head})
				i = j
				continue
			}
			i++
			continue
		}
		i++
	}
	return chunks
}

// isPremod reports whether toks[i] can premodify a following noun.
func isPremod(toks []Token, i int) bool {
	switch toks[i].Tag {
	case TagJJ:
		return true
	case TagNN, TagNNS, TagNNP:
		// noun compound: noun followed by more nominal material
		return i+1 < len(toks) && (toks[i+1].Tag == TagNN || toks[i+1].Tag == TagNNS || toks[i+1].Tag == TagNNP)
	case TagVBN, TagVBG:
		// participle premodifier only when a noun follows immediately —
		// and not when "be"/"have" precedes, which marks a progressive
		// or perfect main verb ("we are collecting location data").
		if i > 0 && (isBe(toks[i-1].Lower) || isHave(toks[i-1].Lower)) {
			return false
		}
		return i+1 < len(toks) && (toks[i+1].Tag == TagNN || toks[i+1].Tag == TagNNS || toks[i+1].Tag == TagNNP || toks[i+1].Tag == TagJJ)
	}
	return false
}

// chunkAt returns the chunk containing token index i, if any.
func chunkAt(chunks []Chunk, i int) (Chunk, bool) {
	for _, c := range chunks {
		if i >= c.Start && i < c.End {
			return c, true
		}
	}
	return Chunk{}, false
}

// chunkHeadedAt returns the chunk whose head is token index i, if any.
func chunkHeadedAt(chunks []Chunk, i int) (Chunk, bool) {
	for _, c := range chunks {
		if c.Head == i {
			return c, true
		}
	}
	return Chunk{}, false
}
