package nlp

import "sync"

// ParseBuffer recycles the per-sentence NLP working set — the token
// slice plus the parse tree's dependency arrays, chunk list, and
// constraint list — across sentences, so a caller walking a whole
// document parses in steady state without allocating. Obtain one with
// GetParseBuffer and return it with Release.
//
// Aliasing contract: the token slice and *Parse returned by Tag and
// Parse point into the buffer's storage and are valid only until the
// next method call on the same buffer or Release. Strings inside
// tokens (Text, Lower) are ordinary immutable strings and may be
// retained freely; everything else must be copied out if it needs to
// outlive the sentence.
type ParseBuffer struct {
	toks  []Token
	parse Parse
}

var parseBufferPool = sync.Pool{New: func() any { return new(ParseBuffer) }}

// GetParseBuffer borrows a buffer from the internal pool.
func GetParseBuffer() *ParseBuffer { return parseBufferPool.Get().(*ParseBuffer) }

// Release returns the buffer to the pool. The caller must not touch
// any token slice or Parse obtained from this buffer afterwards.
func (b *ParseBuffer) Release() { parseBufferPool.Put(b) }

// Tag tokenizes and tags sent into the buffer's token storage. The
// result equals TagText(sent); see the aliasing contract above.
func (b *ParseBuffer) Tag(sent string) []Token {
	if b.toks == nil {
		b.toks = make([]Token, 0, len(sent)/4+2)
	}
	b.toks = tokenizeInto(b.toks[:0], sent)
	return TagTokens(b.toks)
}

// Parse tags and parses sent into the buffer's storage. The result
// equals ParseSentence(sent); see the aliasing contract above.
func (b *ParseBuffer) Parse(sent string) *Parse {
	return parseTokensInto(&b.parse, b.Tag(sent))
}
