// Package nlp implements the natural-language substrate PPChecker needs:
// tokenization, sentence splitting with the paper's enumeration repair,
// part-of-speech tagging, noun-phrase chunking, and a rule-based typed
// dependency parser producing the relations §III-B of the paper consumes
// (root, nsubj, dobj, nsubjpass, auxpass, xcomp, advcl, neg, conj, prep,
// mark). It replaces NLTK and the Stanford Parser for the restricted
// register of English found in privacy policies.
package nlp

import "strings"

// Tag is a Penn-Treebank-style part-of-speech tag (subset).
type Tag string

// The tag inventory used by the tagger and parser.
const (
	TagNN   Tag = "NN"   // singular noun
	TagNNS  Tag = "NNS"  // plural noun
	TagNNP  Tag = "NNP"  // proper noun
	TagPRP  Tag = "PRP"  // personal pronoun
	TagPRPS Tag = "PRP$" // possessive pronoun
	TagDT   Tag = "DT"   // determiner
	TagJJ   Tag = "JJ"   // adjective
	TagRB   Tag = "RB"   // adverb
	TagVB   Tag = "VB"   // verb, base form
	TagVBP  Tag = "VBP"  // verb, non-3rd person present
	TagVBZ  Tag = "VBZ"  // verb, 3rd person present
	TagVBD  Tag = "VBD"  // verb, past tense
	TagVBN  Tag = "VBN"  // verb, past participle
	TagVBG  Tag = "VBG"  // verb, gerund
	TagMD   Tag = "MD"   // modal
	TagIN   Tag = "IN"   // preposition / subordinating conjunction
	TagTO   Tag = "TO"   // "to"
	TagCC   Tag = "CC"   // coordinating conjunction
	TagCD   Tag = "CD"   // cardinal number
	TagWDT  Tag = "WDT"  // wh-determiner
	TagWP   Tag = "WP"   // wh-pronoun
	TagWRB  Tag = "WRB"  // wh-adverb
	TagEX   Tag = "EX"   // existential "there"
	TagPOS  Tag = "POS"  // possessive 's
	TagSym  Tag = "SYM"  // other symbol
	TagPunc Tag = "."    // sentence-final punctuation
	TagComa Tag = ","    // comma
	TagColn Tag = ":"    // colon / semicolon / dash
)

// IsVerb reports whether the tag is any verbal form.
func (t Tag) IsVerb() bool {
	switch t {
	case TagVB, TagVBP, TagVBZ, TagVBD, TagVBN, TagVBG:
		return true
	}
	return false
}

// IsNoun reports whether the tag is a nominal form (including pronouns,
// which head one-word noun phrases).
func (t Tag) IsNoun() bool {
	switch t {
	case TagNN, TagNNS, TagNNP, TagPRP:
		return true
	}
	return false
}

// Token is a single token of a sentence with its tag.
type Token struct {
	Text  string // original surface form
	Lower string // lowercased surface form
	Tag   Tag
	Index int // position within the sentence
}

// IsPunct reports whether the token is punctuation.
func (t Token) IsPunct() bool {
	return t.Tag == TagPunc || t.Tag == TagComa || t.Tag == TagColn || t.Tag == TagSym
}

// contractionSuffixes are the clitics Tokenize splits off; every one
// contains an apostrophe, so words without one skip the suffix scan.
var contractionSuffixes = [...]string{"n't", "'s", "'re", "'ve", "'ll", "'d", "'m"}

// asciiTokens interns the single-character token strings so punctuation
// tokens don't allocate.
var asciiTokens = func() (t [128]string) {
	for i := range t {
		t[i] = string(rune(i))
	}
	return
}()

// Tokenize splits a sentence into word and punctuation tokens. Tags are
// not assigned; see Tagger.Tag. Contractions "n't", "'s", "'re" etc. are
// split off as separate tokens so the parser sees negation and copulas.
func Tokenize(text string) []Token {
	// Typical English averages >4 bytes per token; the estimate keeps
	// the append below from reallocating on ordinary sentences.
	return tokenizeInto(make([]Token, 0, len(text)/4+2), text)
}

// tokenizeInto is Tokenize appending into a caller-provided slice
// (ParseBuffer reuses one across sentences).
func tokenizeInto(toks []Token, text string) []Token {
	add := func(s string) {
		if s == "" {
			return
		}
		toks = append(toks, Token{Text: s, Lower: strings.ToLower(s), Index: len(toks)})
	}
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWordByte(c):
			j := i
			for j < n && isWordByte(text[j]) {
				j++
			}
			word := text[i:j]
			// Split trailing contractions (all contain an apostrophe).
			if strings.IndexByte(word, '\'') >= 0 {
				for _, suf := range &contractionSuffixes {
					if len(word) > len(suf) && strings.EqualFold(word[len(word)-len(suf):], suf) {
						add(word[:len(word)-len(suf)])
						word = word[len(word)-len(suf):]
						break
					}
				}
			}
			add(word)
			i = j
		default:
			if c < 128 {
				add(asciiTokens[c])
			} else {
				add(string(rune(c)))
			}
			i++
		}
	}
	return toks
}

// isWordByte reports whether c can appear inside a word token. Hyphens
// and apostrophes join words ("third-party", "user's"); digits form
// numbers.
func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '\'' || c == '-'
}

// JoinTokens reconstructs readable text from a token span.
func JoinTokens(toks []Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && !t.IsPunct() {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}
