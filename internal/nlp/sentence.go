package nlp

import "strings"

// SplitSentences divides cleaned policy text into sentences and applies
// the paper's enumeration repair (§III-B Step 1): a sentence whose
// predecessor ends with ';' or ',' — the shape NLTK produces for
// enumeration lists such as "we will collect: your name; your IP
// address; your device ID" — is appended to that predecessor so the
// resources stay attached to their governing verb. All letters are
// lowercased at the end, exactly as the paper does.
func SplitSentences(text string) []string {
	raw := rawSplit(text)
	merged := mergeEnumerations(raw)
	out := make([]string, 0, len(merged))
	for _, s := range merged {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		out = append(out, strings.ToLower(s))
	}
	return out
}

// rawSplit performs the primary segmentation: sentence-final punctuation
// (. ! ?) and hard line breaks end sentences; abbreviations and decimal
// points do not.
func rawSplit(text string) []string {
	var sents []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			sents = append(sents, cur.String())
			cur.Reset()
		}
	}
	n := len(text)
	for i := 0; i < n; i++ {
		c := text[i]
		switch c {
		case '\n':
			flush()
		case '.', '!', '?':
			cur.WriteByte(c)
			if c == '.' && isAbbrevBefore(text, i) {
				continue
			}
			if c == '.' && i+1 < n && isDigit(text[i+1]) {
				continue // decimal point
			}
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return sents
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isAbbrevBefore reports whether the '.' at text[i] terminates a known
// abbreviation (e.g., "e.g.", "Inc.", "etc.") rather than a sentence.
func isAbbrevBefore(text string, i int) bool {
	start := i
	for start > 0 && isWordByte(text[start-1]) {
		start--
	}
	word := strings.ToLower(text[start:i])
	switch word {
	case "e.g", "i.e", "etc", "inc", "ltd", "co", "corp", "no", "vs", "mr",
		"ms", "dr", "st", "v", "eg", "ie", "g", "e":
		return true
	}
	// Single letters followed by '.' are usually initialisms (e.g. the
	// 'e' and 'g' of a split "e. g.").
	return len(word) == 1
}

// mergeEnumerations appends each sentence to its predecessor when the
// predecessor ends with ';' or ',' or ':' — the enumeration-list repair
// from the paper.
func mergeEnumerations(sents []string) []string {
	var out []string
	for _, s := range sents {
		trimmed := strings.TrimSpace(s)
		if trimmed == "" {
			continue
		}
		if len(out) > 0 {
			prev := strings.TrimSpace(out[len(out)-1])
			if strings.HasSuffix(prev, ";") || strings.HasSuffix(prev, ",") || strings.HasSuffix(prev, ":") {
				out[len(out)-1] = prev + " " + trimmed
				continue
			}
		}
		out = append(out, trimmed)
	}
	return out
}
