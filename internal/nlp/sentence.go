package nlp

import (
	"fmt"
	"strings"
)

// Tractability guards. Downstream parsing cost grows with sentence
// length, so adversarial policies (10k-token sentences, enumeration
// bombs gluing thousands of ";"-terminated fragments into one sentence)
// must be either rejected up front (GuardText) or truncated to a fixed
// ceiling (SplitSentences). Legitimate policy sentences are well under
// one kilobyte.
const (
	// MaxSentenceBytes is the per-sentence size ceiling; SplitSentences
	// truncates beyond it, GuardText rejects.
	MaxSentenceBytes = 16 * 1024
	// MaxEnumerationRun is the largest number of fragments the
	// enumeration repair merges into one sentence.
	MaxEnumerationRun = 200
	// MaxSentences caps the number of sentences returned for one text.
	MaxSentences = 20000
)

// GuardText is a cheap tractability check run before full NLP analysis:
// it rejects text whose sentences would exceed the guards above. The
// error names the pathology so it can be surfaced as a stage failure.
func GuardText(text string) error {
	runLen := 0
	sentStart := 0
	checkSpan := func(end int) error {
		if end-sentStart > MaxSentenceBytes {
			return fmt.Errorf("nlp: sentence of %d bytes exceeds limit of %d", end-sentStart, MaxSentenceBytes)
		}
		return nil
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c != '\n' && c != '.' && c != '!' && c != '?' {
			continue
		}
		if err := checkSpan(i); err != nil {
			return err
		}
		// Track enumeration runs: a fragment ending in ';', ',' or ':'
		// merges into its predecessor, so count consecutive ones.
		frag := strings.TrimSpace(text[sentStart:i])
		if strings.HasSuffix(frag, ";") || strings.HasSuffix(frag, ",") || strings.HasSuffix(frag, ":") {
			runLen++
			if runLen > MaxEnumerationRun {
				return fmt.Errorf("nlp: enumeration of more than %d fragments", MaxEnumerationRun)
			}
		} else if frag != "" {
			runLen = 0
		}
		sentStart = i + 1
	}
	return checkSpan(len(text))
}

// SplitSentences divides cleaned policy text into sentences and applies
// the paper's enumeration repair (§III-B Step 1): a sentence whose
// predecessor ends with ';' or ',' — the shape NLTK produces for
// enumeration lists such as "we will collect: your name; your IP
// address; your device ID" — is appended to that predecessor so the
// resources stay attached to their governing verb. All letters are
// lowercased at the end, exactly as the paper does.
func SplitSentences(text string) []string {
	raw := rawSplit(text)
	merged := mergeEnumerations(raw)
	out := make([]string, 0, len(merged))
	for _, s := range merged {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if len(s) > MaxSentenceBytes {
			s = s[:MaxSentenceBytes]
		}
		out = append(out, strings.ToLower(s))
		if len(out) >= MaxSentences {
			break
		}
	}
	return out
}

// rawSplit performs the primary segmentation: sentence-final punctuation
// (. ! ?) and hard line breaks end sentences; abbreviations and decimal
// points do not.
func rawSplit(text string) []string {
	// Sentences are contiguous spans of text (only the '\n' terminator
	// is dropped), so each one is sliced out rather than rebuilt. Policy
	// sentences average well over 64 bytes, so the estimate keeps the
	// append from reallocating on ordinary documents.
	sents := make([]string, 0, len(text)/64+4)
	start := 0
	flush := func(end int) {
		if end > start {
			sents = append(sents, text[start:end])
		}
		start = end
	}
	n := len(text)
	for i := 0; i < n; i++ {
		switch c := text[i]; c {
		case '\n':
			flush(i)
			start = i + 1
		case '.', '!', '?':
			if c == '.' && isAbbrevBefore(text, i) {
				continue
			}
			if c == '.' && i+1 < n && isDigit(text[i+1]) {
				continue // decimal point
			}
			flush(i + 1)
		}
	}
	flush(n)
	return sents
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isAbbrevBefore reports whether the '.' at text[i] terminates a known
// abbreviation (e.g., "e.g.", "Inc.", "etc.") rather than a sentence.
func isAbbrevBefore(text string, i int) bool {
	start := i
	for start > 0 && isWordByte(text[start-1]) {
		start--
	}
	word := strings.ToLower(text[start:i])
	switch word {
	case "e.g", "i.e", "etc", "inc", "ltd", "co", "corp", "no", "vs", "mr",
		"ms", "dr", "st", "v", "eg", "ie", "g", "e":
		return true
	}
	// Single letters followed by '.' are usually initialisms (e.g. the
	// 'e' and 'g' of a split "e. g.").
	return len(word) == 1
}

// mergeEnumerations appends each sentence to its predecessor when the
// predecessor ends with ';' or ',' or ':' — the enumeration-list repair
// from the paper. A ':' always announces a continuation, but after ';'
// or ',' the next fragment only merges when it still looks like a list
// item: a fragment opening with its own pronoun subject and predicate
// (or the imperative "please") is an independent sentence, not the
// next item, and ends the run. Runs longer than MaxEnumerationRun, or
// merged sentences beyond MaxSentenceBytes, stop absorbing further
// fragments so enumeration bombs stay bounded.
func mergeEnumerations(sents []string) []string {
	out := make([]string, 0, len(sents))
	runLen := 0
	for _, s := range sents {
		trimmed := strings.TrimSpace(s)
		if trimmed == "" {
			continue
		}
		if len(out) > 0 {
			prev := strings.TrimSpace(out[len(out)-1])
			colon := strings.HasSuffix(prev, ":")
			if (colon || strings.HasSuffix(prev, ";") || strings.HasSuffix(prev, ",")) &&
				runLen < MaxEnumerationRun && len(prev) < MaxSentenceBytes &&
				(colon || !independentStart(trimmed)) {
				out[len(out)-1] = prev + " " + trimmed
				runLen++
				continue
			}
		}
		out = append(out, trimmed)
		runLen = 0
	}
	return out
}

// subjectPronouns are the personal pronouns that signal a fragment is
// its own clause when they open it as the subject.
var subjectPronouns = map[string]bool{
	"we": true, "you": true, "i": true, "they": true, "it": true,
}

// independentStart reports whether a fragment following a ';'- or
// ','-terminated sentence reads as the start of an unrelated sentence
// rather than the next enumeration item. List items are noun phrases
// ("your ip address;"), so a fragment whose first token is a
// personal-pronoun subject governing its own predicate — or the
// imperative marker "please" — ends the enumeration run. The check is
// deliberately case-insensitive: SplitSentences lowercases only after
// merging, and casing must not change what merges. A mid-fragment
// pronoun is a relative clause of a list item ("the information we
// collect about you;") and does not count.
func independentStart(frag string) bool {
	lower := strings.ToLower(frag)
	if lower == "please" || strings.HasPrefix(lower, "please ") {
		return true
	}
	pb := GetParseBuffer()
	defer pb.Release()
	p := pb.Parse(lower)
	if p == nil || p.Root < 0 {
		return false
	}
	s := p.Subject(p.Root)
	return s == 0 && subjectPronouns[p.Tokens[s].Lower]
}
