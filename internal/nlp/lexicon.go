package nlp

import (
	"sort"
	"strings"
)

// The lexicon assigns the most likely tag to known words of the privacy
// policy register. Unknown words fall back to suffix heuristics in the
// tagger. Verb entries are generated from lemma lists so every inflected
// form is known and can be lemmatized back.

// regularVerbLemmas are verbs inflected by regular rules. The list is
// biased toward the verbs that occur in privacy policies: the four main
// verb categories of the paper plus their common neighbours.
var regularVerbLemmas = []string{
	// collect category and friends
	"collect", "gather", "obtain", "acquire", "access", "receive", "record",
	"request", "solicit", "track", "monitor", "capture", "scan", "log",
	// use category
	"use", "process", "utilize", "employ", "analyze", "analyse", "combine",
	"aggregate", "review", "check",
	// retain category
	"retain", "store", "save", "keep", "archive", "preserve", "cache",
	// disclose category
	"disclose", "share", "transfer", "provide", "transmit", "release",
	"distribute", "rent", "trade", "deliver", "expose", "reveal", "display",
	"report", "upload", "post", "publish",
	// general policy verbs
	"inform", "notify", "protect", "secure", "encrypt", "delete", "remove",
	"erase", "update", "modify", "change", "improve", "enhance", "offer",
	"serve", "deliver", "personalize", "customize", "identify", "contact",
	"register", "create", "visit", "click", "install", "download", "agree",
	"consent", "permit", "allow", "enable", "require", "need", "want",
	"help", "assist", "prevent", "limit", "restrict", "control", "manage",
	"operate", "maintain", "comply", "apply", "relate", "describe",
	"explain", "cover", "include", "contain", "involve", "concern",
	"encourage", "recommend", "suggest", "ask", "answer", "respond",
	"connect", "link", "associate", "correlate", "match", "locate",
	"determine", "detect", "discover", "learn", "view", "browse",
	"navigate", "interact", "communicate", "call", "text", "email",
	"mention", "state", "declare", "list", "specify", "note", "warrant",
	"violate", "fine", "sell",
	// synonym-extension verbs (§VI): present in the lexicon so the
	// parser can root them; they join categories only via the opt-in
	// extended verb lists.
	"inspect", "observe", "fetch", "derive", "extract", "harvest",
	"leverage", "evaluate", "examine", "persist", "broadcast",
	"forward", "present", "look", "watch",
}

// irregularVerbs maps each form of irregular verbs to (lemma, tag).
var irregularVerbs = map[string]struct {
	Lemma string
	Tag   Tag
}{
	"be": {"be", TagVB}, "am": {"be", TagVBP}, "is": {"be", TagVBZ},
	"are": {"be", TagVBP}, "was": {"be", TagVBD}, "were": {"be", TagVBD},
	"been": {"be", TagVBN}, "being": {"be", TagVBG},
	"have": {"have", TagVBP}, "has": {"have", TagVBZ}, "had": {"have", TagVBD},
	"having": {"have", TagVBG},
	"do":     {"do", TagVBP}, "does": {"do", TagVBZ}, "did": {"do", TagVBD},
	"done": {"do", TagVBN}, "doing": {"do", TagVBG},
	"get": {"get", TagVB}, "gets": {"get", TagVBZ}, "got": {"get", TagVBD},
	"gotten": {"get", TagVBN}, "getting": {"get", TagVBG},
	"give": {"give", TagVB}, "gives": {"give", TagVBZ}, "gave": {"give", TagVBD},
	"given": {"give", TagVBN}, "giving": {"give", TagVBG},
	"take": {"take", TagVB}, "takes": {"take", TagVBZ}, "took": {"take", TagVBD},
	"taken": {"take", TagVBN}, "taking": {"take", TagVBG},
	"make": {"make", TagVB}, "makes": {"make", TagVBZ}, "made": {"make", TagVBD},
	"making": {"make", TagVBG},
	"send":   {"send", TagVB}, "sends": {"send", TagVBZ}, "sent": {"send", TagVBD},
	"sending": {"send", TagVBG},
	"hold":    {"hold", TagVB}, "holds": {"hold", TagVBZ}, "held": {"hold", TagVBD},
	"holding": {"hold", TagVBG},
	"sell":    {"sell", TagVB}, "sells": {"sell", TagVBZ}, "sold": {"sell", TagVBD},
	"selling": {"sell", TagVBG},
	"see":     {"see", TagVB}, "sees": {"see", TagVBZ}, "saw": {"see", TagVBD},
	"seen": {"see", TagVBN}, "seeing": {"see", TagVBG},
	"know": {"know", TagVB}, "knows": {"know", TagVBZ}, "knew": {"know", TagVBD},
	"known": {"know", TagVBN}, "knowing": {"know", TagVBG},
	"read": {"read", TagVB}, "reads": {"read", TagVBZ}, "reading": {"read", TagVBG},
	"write": {"write", TagVB}, "writes": {"write", TagVBZ}, "wrote": {"write", TagVBD},
	"written": {"write", TagVBN}, "writing": {"write", TagVBG},
	"choose": {"choose", TagVB}, "chooses": {"choose", TagVBZ},
	"chose": {"choose", TagVBD}, "chosen": {"choose", TagVBN},
	"mean": {"mean", TagVB}, "means": {"mean", TagVBZ}, "meant": {"mean", TagVBD},
	"set": {"set", TagVB}, "sets": {"set", TagVBZ}, "setting": {"set", TagVBG},
	"let": {"let", TagVB}, "lets": {"let", TagVBZ}, "letting": {"let", TagVBG},
	"put": {"put", TagVB}, "puts": {"put", TagVBZ}, "putting": {"put", TagVBG},
	"find": {"find", TagVB}, "finds": {"find", TagVBZ}, "found": {"find", TagVBD},
	"finding": {"find", TagVBG},
	"keep":    {"keep", TagVB}, "keeps": {"keep", TagVBZ}, "kept": {"keep", TagVBD},
	"keeping": {"keep", TagVBG},
	"show":    {"show", TagVB}, "shows": {"show", TagVBZ},
	"showed": {"show", TagVBD}, "shown": {"show", TagVBN},
	"showing": {"show", TagVBG},
}

// closedClass maps function words to their tags.
var closedClass = map[string]Tag{
	// pronouns
	"i": TagPRP, "we": TagPRP, "you": TagPRP, "he": TagPRP, "she": TagPRP,
	"it": TagPRP, "they": TagPRP, "us": TagPRP, "them": TagPRP, "me": TagPRP,
	"him": TagPRP, "her": TagPRP, "itself": TagPRP, "themselves": TagPRP,
	"yourself": TagPRP, "ourselves": TagPRP, "anyone": TagPRP, "someone": TagPRP,
	"everyone": TagPRP, "nobody": TagPRP, "nothing": TagPRP, "anything": TagPRP,
	"everything": TagPRP, "none": TagPRP,
	// possessive pronouns
	"my": TagPRPS, "our": TagPRPS, "your": TagPRPS, "his": TagPRPS,
	"its": TagPRPS, "their": TagPRPS,
	// determiners
	"the": TagDT, "a": TagDT, "an": TagDT, "this": TagDT, "that": TagDT,
	"these": TagDT, "those": TagDT, "some": TagDT, "any": TagDT, "all": TagDT,
	"each": TagDT, "every": TagDT, "no": TagDT, "such": TagDT, "both": TagDT,
	"either": TagDT, "neither": TagDT, "following": TagJJ, "certain": TagJJ,
	// modals
	"will": TagMD, "would": TagMD, "can": TagMD, "could": TagMD,
	"may": TagMD, "might": TagMD, "shall": TagMD, "should": TagMD,
	"must": TagMD, "cannot": TagMD,
	// prepositions / subordinators
	"of": TagIN, "in": TagIN, "on": TagIN, "at": TagIN, "by": TagIN,
	"for": TagIN, "with": TagIN, "without": TagIN, "about": TagIN,
	"from": TagIN, "into": TagIN, "through": TagIN, "during": TagIN,
	"between": TagIN, "under": TagIN, "over": TagIN, "after": TagIN,
	"before": TagIN, "if": TagIN, "unless": TagIN, "upon": TagIN,
	"while": TagIN, "because": TagIN, "since": TagIN, "until": TagIN,
	"as": TagIN, "via": TagIN, "per": TagIN, "within": TagIN,
	"regarding": TagIN, "concerning": TagIN, "including": TagIN,
	"out": TagIN, "off": TagIN, "when": TagWRB, "where": TagWRB,
	"why": TagWRB, "how": TagWRB,
	"to": TagTO,
	// conjunctions
	"and": TagCC, "or": TagCC, "but": TagCC, "nor": TagCC, "so": TagCC,
	"yet": TagCC,
	// wh
	"which": TagWDT, "what": TagWDT, "whatever": TagWDT,
	"who": TagWP, "whom": TagWP, "whose": TagWP,
	"there": TagEX,
	// adverbs
	"not": TagRB, "n't": TagRB, "never": TagRB, "also": TagRB, "only": TagRB,
	"always": TagRB, "sometimes": TagRB, "often": TagRB, "however": TagRB,
	"therefore": TagRB, "moreover": TagRB, "furthermore": TagRB,
	"hardly": TagRB, "rarely": TagRB, "seldom": TagRB, "too": TagRB,
	"very": TagRB, "then": TagRB, "here": TagRB, "now": TagRB,
	"automatically": TagRB, "directly": TagRB, "indirectly": TagRB,
	"personally": TagRB, "anonymously": TagRB, "securely": TagRB,
	"please": TagRB,
}

// openClass lists domain words whose default tags matter for parsing
// privacy policies. Plurals of listed nouns are derived automatically.
var openClass = map[string]Tag{
	// privacy-domain nouns
	"information": TagNN, "data": TagNN, "datum": TagNN, "location": TagNN,
	"geolocation": TagNN, "latitude": TagNN, "longitude": TagNN, "gps": TagNN,
	"contact": TagNN, "contacts": TagNNS, "address": TagNN, "name": TagNN,
	"email": TagNN, "e-mail": TagNN, "phone": TagNN, "telephone": TagNN,
	"number": TagNN, "device": TagNN, "identifier": TagNN, "id": TagNN,
	"imei": TagNN, "cookie": TagNN, "ip": TagNN, "calendar": TagNN,
	"camera": TagNN, "photo": TagNN, "picture": TagNN, "image": TagNN,
	"audio": TagNN, "microphone": TagNN, "video": TagNN, "account": TagNN,
	"sms": TagNN, "message": TagNN, "history": TagNN, "list": TagNN,
	"app": TagNN, "application": TagNN, "package": TagNN, "birthday": TagNN,
	"birth": TagNN, "age": TagNN, "gender": TagNN, "user": TagNN,
	"visitor": TagNN, "customer": TagNN, "party": TagNN, "parties": TagNNS,
	"company": TagNN, "companies": TagNNS, "advertiser": TagNN,
	"partner": TagNN, "affiliate": TagNN, "provider": TagNN, "vendor": TagNN,
	"server": TagNN, "service": TagNN, "website": TagNN, "site": TagNN,
	"web": TagNN, "internet": TagNN, "network": TagNN, "wifi": TagNN,
	"bluetooth": TagNN, "log": TagNN, "file": TagNN, "database": TagNN,
	"policy": TagNN, "policies": TagNNS, "privacy": TagNN, "practice": TagNN,
	"permission": TagNN, "purpose": TagNN, "time": TagNN, "period": TagNN,
	"consent": TagNN, "notice": TagNN, "section": TagNN, "browser": TagNN,
	"software": TagNN, "hardware": TagNN, "system": TagNN, "platform": TagNN,
	"content": TagNN, "profile": TagNN, "preference": TagNN,
	"identity": TagNN, "username": TagNN, "password": TagNN,
	"library": TagNN, "libraries": TagNNS, "sdk": TagNN, "ad": TagNN,
	"advertisement": TagNN, "advertising": TagNN, "analytics": TagNNS,
	"feature": TagNN, "function": TagNN, "functionality": TagNN,
	"carrier": TagNN, "operator": TagNN, "model": TagNN, "version": TagNN,
	"os": TagNN, "android": TagNNP, "google": TagNNP, "facebook": TagNNP,
	"twitter": TagNNP, "play": TagNNP,
	// adjectives
	"personal": TagJJ, "private": TagJJ, "sensitive": TagJJ, "other": TagJJ,
	"third": TagJJ, "third-party": TagJJ, "first": TagJJ, "second": TagJJ,
	"real": TagJJ, "mobile": TagJJ, "technical": TagJJ, "additional": TagJJ,
	"anonymous": TagJJ, "demographic": TagJJ,
	"necessary": TagJJ, "able": TagJJ, "unable": TagJJ, "responsible": TagJJ,
	"precise": TagJJ, "approximate": TagJJ, "unique": TagJJ, "new": TagJJ,
	"fine": TagJJ, "coarse": TagJJ, "current": TagJJ, "previous": TagJJ,
	"various": TagJJ, "relevant": TagJJ, "applicable": TagJJ, "free": TagJJ,
	"similar": TagJJ, "specific": TagJJ, "general": TagJJ,
}

// lexicon is the merged word→tag table, built by init.
var lexicon = map[string]Tag{}

// verbLemma maps every known verb form to its lemma.
var verbLemma = map[string]string{}

func init() {
	for w, t := range closedClass {
		lexicon[w] = t
	}
	for w, t := range openClass {
		if _, dup := lexicon[w]; !dup {
			lexicon[w] = t
		}
		if t == TagNN {
			pl := pluralize(w)
			if _, dup := lexicon[pl]; !dup {
				lexicon[pl] = TagNNS
			}
		}
	}
	for _, lemma := range regularVerbLemmas {
		for form, tag := range inflect(lemma) {
			verbLemma[form] = lemma
			if _, dup := lexicon[form]; !dup {
				lexicon[form] = tag
			}
		}
	}
	for form, e := range irregularVerbs {
		verbLemma[form] = e.Lemma
		if _, dup := lexicon[form]; !dup {
			lexicon[form] = e.Tag
		}
	}
}

// inflect produces the regular inflections of a verb lemma. The base
// form is returned under VB; present forms share the surface of the base
// so the context rules decide VB vs VBP.
func inflect(lemma string) map[string]Tag {
	forms := map[string]Tag{lemma: TagVB}
	forms[thirdPerson(lemma)] = TagVBZ
	past := pastForm(lemma)
	forms[past] = TagVBD // VBN resolved contextually after "be"/"have"
	forms[gerund(lemma)] = TagVBG
	return forms
}

func thirdPerson(lemma string) string {
	switch {
	case strings.HasSuffix(lemma, "s") || strings.HasSuffix(lemma, "x") ||
		strings.HasSuffix(lemma, "z") || strings.HasSuffix(lemma, "ch") ||
		strings.HasSuffix(lemma, "sh"):
		return lemma + "es"
	case strings.HasSuffix(lemma, "y") && !isVowel(lemma[len(lemma)-2]):
		return lemma[:len(lemma)-1] + "ies"
	default:
		return lemma + "s"
	}
}

func pastForm(lemma string) string {
	switch {
	case strings.HasSuffix(lemma, "e"):
		return lemma + "d"
	case strings.HasSuffix(lemma, "y") && !isVowel(lemma[len(lemma)-2]):
		return lemma[:len(lemma)-1] + "ied"
	default:
		return lemma + "ed"
	}
}

func gerund(lemma string) string {
	switch {
	case strings.HasSuffix(lemma, "ie"):
		return lemma[:len(lemma)-2] + "ying"
	case strings.HasSuffix(lemma, "e") && !strings.HasSuffix(lemma, "ee"):
		return lemma[:len(lemma)-1] + "ing"
	default:
		return lemma + "ing"
	}
}

func pluralize(noun string) string {
	switch {
	case strings.HasSuffix(noun, "s") || strings.HasSuffix(noun, "x") ||
		strings.HasSuffix(noun, "ch") || strings.HasSuffix(noun, "sh"):
		return noun + "es"
	case strings.HasSuffix(noun, "y") && len(noun) > 1 && !isVowel(noun[len(noun)-2]):
		return noun[:len(noun)-1] + "ies"
	default:
		return noun + "s"
	}
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Lemma returns the lemma of a verb form, or the input lowercased when
// the form is unknown (an identity fallback keeps callers total).
func Lemma(word string) string {
	w := strings.ToLower(word)
	if l, ok := verbLemma[w]; ok {
		return l
	}
	// Strip regular suffixes as a fallback so mined verbs outside the
	// lexicon still group by lemma.
	for _, suf := range []string{"ing", "ied", "ies", "ed", "es", "s"} {
		if strings.HasSuffix(w, suf) && len(w) > len(suf)+2 {
			stem := w[:len(w)-len(suf)]
			if l, ok := verbLemma[stem]; ok {
				return l
			}
			if l, ok := verbLemma[stem+"e"]; ok {
				return l
			}
		}
	}
	return w
}

// KnownVerbForm reports whether the word is a known verb inflection.
func KnownVerbForm(word string) bool {
	_, ok := verbLemma[strings.ToLower(word)]
	return ok
}

// fallbackSuffixes are the suffixes Lemma strips when a form is not in
// the verb table, in the order it tries them.
var fallbackSuffixes = [...]string{"ing", "ied", "ies", "ed", "es", "s"}

// SurfaceForms returns every word Lemma can map to lemma: the lemma
// itself, each known inflection, and the suffix-appended shapes the
// fallback stripper would reduce back. The result is a superset of
// {w : Lemma(w) == lemma} — sound for compiling prefilter automatons,
// which may then admit extra sentences but never skip one holding a
// token that lemmatizes to lemma. Results are lowercase, deduplicated,
// and deterministically ordered.
func SurfaceForms(lemma string) []string {
	lemma = strings.ToLower(lemma)
	seen := map[string]bool{lemma: true}
	out := []string{lemma}
	add := func(w string) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	var forms []string
	for form, l := range verbLemma {
		if l == lemma {
			forms = append(forms, form)
		}
	}
	sort.Strings(forms)
	for _, f := range forms {
		add(f)
	}
	// The fallback accepts w = stem+suffix when verbLemma[stem] or
	// verbLemma[stem+"e"] is the lemma, so every known form spawns its
	// suffix-appended shapes (and, for forms ending in "e", the shapes
	// of the form minus that "e").
	for _, f := range forms {
		for _, suf := range fallbackSuffixes {
			add(f + suf)
			if strings.HasSuffix(f, "e") {
				add(f[:len(f)-1] + suf)
			}
		}
	}
	return out
}
