package nlp

import "testing"

// TestSurfaceFormsSound: over a large candidate universe — every known
// verb form, every suffix-appended shape of every form, and the whole
// tag lexicon — any word that lemmatizes to L must appear in
// SurfaceForms(L). This is the property the prefilter automatons rely
// on: matching surface forms can only over-approximate, never miss.
func TestSurfaceFormsSound(t *testing.T) {
	universe := map[string]bool{}
	for form := range verbLemma {
		universe[form] = true
		for _, suf := range fallbackSuffixes {
			universe[form+suf] = true
		}
	}
	for w := range lexicon {
		universe[w] = true
	}
	cache := map[string]map[string]bool{}
	forms := func(lemma string) map[string]bool {
		if m, ok := cache[lemma]; ok {
			return m
		}
		m := map[string]bool{}
		for _, f := range SurfaceForms(lemma) {
			m[f] = true
		}
		cache[lemma] = m
		return m
	}
	for w := range universe {
		if l := Lemma(w); !forms(l)[w] {
			t.Errorf("SurfaceForms(%q) misses %q", l, w)
		}
	}
}

func TestSurfaceFormsBasics(t *testing.T) {
	got := map[string]bool{}
	for _, f := range SurfaceForms("collect") {
		got[f] = true
	}
	for _, want := range []string{"collect", "collects", "collected", "collecting"} {
		if !got[want] {
			t.Errorf("SurfaceForms(collect) misses %q", want)
		}
	}
	// Irregulars: every table form of the lemma is present.
	got = map[string]bool{}
	for _, f := range SurfaceForms("keep") {
		got[f] = true
	}
	if !got["kept"] || !got["keeps"] || !got["keeping"] {
		t.Errorf("SurfaceForms(keep) = %v", got)
	}
	// Unknown lemmas at least contain themselves.
	if fs := SurfaceForms("banana"); len(fs) != 1 || fs[0] != "banana" {
		t.Errorf("SurfaceForms(banana) = %v", fs)
	}
	// Deterministic and deduplicated.
	a, b := SurfaceForms("use"), SurfaceForms("use")
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %q vs %q", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate %q", a[i])
		}
		seen[a[i]] = true
	}
}
