package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func words(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	got := words(Tokenize("We collect your IP address."))
	want := []string{"We", "collect", "your", "IP", "address", "."}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokenizeContractions(t *testing.T) {
	got := words(Tokenize("We don't share; we can't."))
	want := []string{"We", "do", "n't", "share", ";", "we", "ca", "n't", "."}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokenizeHyphensAndPossessives(t *testing.T) {
	got := words(Tokenize("third-party libs use the user's data"))
	want := []string{"third-party", "libs", "use", "the", "user", "'s", "data"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokenizeIndexesAndLower(t *testing.T) {
	toks := Tokenize("We Collect DATA")
	for i, tok := range toks {
		if tok.Index != i {
			t.Errorf("token %d has index %d", i, tok.Index)
		}
		if tok.Lower != strings.ToLower(tok.Text) {
			t.Errorf("lower mismatch: %q vs %q", tok.Lower, tok.Text)
		}
	}
}

// TestTokenizePreservesLetters: tokenization never loses alphanumeric
// content.
func TestTokenizePreservesLetters(t *testing.T) {
	f := func(s string) bool {
		keep := func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
				return r
			}
			return -1
		}
		wantLetters := strings.Map(keep, s)
		var b strings.Builder
		for _, tok := range Tokenize(s) {
			b.WriteString(tok.Text)
		}
		gotLetters := strings.Map(keep, b.String())
		return gotLetters == wantLetters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	got := SplitSentences("We collect data. We share it! Do you agree?")
	if len(got) != 3 {
		t.Fatalf("sentences = %v", got)
	}
	if got[0] != "we collect data." {
		t.Fatalf("not lowercased: %q", got[0])
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	got := SplitSentences("We collect data, e.g. your location. We keep it.")
	if len(got) != 2 {
		t.Fatalf("abbreviation split: %v", got)
	}
	got = SplitSentences("Acme Inc. collects data.")
	if len(got) != 1 {
		t.Fatalf("Inc. split: %v", got)
	}
}

func TestSplitSentencesDecimals(t *testing.T) {
	got := SplitSentences("Version 2.5 collects data.")
	if len(got) != 1 {
		t.Fatalf("decimal split: %v", got)
	}
}

// TestSplitSentencesEnumerationRepair covers the paper's Step 1 rule.
func TestSplitSentencesEnumerationRepair(t *testing.T) {
	text := "we will collect the following information: your name;\nyour ip address,\nyour device id.\nwe protect it."
	got := SplitSentences(text)
	if len(got) != 2 {
		t.Fatalf("sentences = %v", got)
	}
	for _, part := range []string{"your name", "your ip address", "your device id"} {
		if !strings.Contains(got[0], part) {
			t.Errorf("enumeration lost %q: %q", part, got[0])
		}
	}
}

// TestSplitSentencesNeverLosesWords: every word of the input appears in
// some sentence.
func TestSplitSentencesNeverLosesWords(t *testing.T) {
	text := "First sentence here. Second one; with a clause. Third!"
	joined := strings.Join(SplitSentences(text), " ")
	for _, w := range strings.Fields(strings.ToLower(text)) {
		w = strings.Trim(w, ".!;")
		if !strings.Contains(joined, w) {
			t.Errorf("word %q lost", w)
		}
	}
}

func TestTagging(t *testing.T) {
	cases := []struct {
		sentence string
		idx      int
		want     Tag
	}{
		{"we will collect data", 1, TagMD},
		{"we will collect data", 2, TagVB},
		{"we collect data", 1, TagVBP},   // pronoun + base verb → VBP
		{"the record is new", 1, TagNN},  // DT + verb-surface → noun
		{"data is collected", 2, TagVBN}, // be + past → participle
		{"we are able to collect", 2, TagJJ},
		{"your information", 0, TagPRPS},
		{"quickly scan codes", 0, TagRB},      // -ly suffix
		{"the anonymization works", 1, TagNN}, // -tion suffix
	}
	for _, c := range cases {
		toks := TagText(c.sentence)
		if toks[c.idx].Tag != c.want {
			t.Errorf("%q token %d (%q) = %s, want %s",
				c.sentence, c.idx, toks[c.idx].Text, toks[c.idx].Tag, c.want)
		}
	}
}

func TestChunkNPs(t *testing.T) {
	toks := TagText("we will provide your personal information to third party companies")
	chunks := ChunkNPs(toks)
	var phrases []string
	for _, c := range chunks {
		phrases = append(phrases, JoinTokens(toks[c.Start:c.End]))
	}
	want := []string{"we", "your personal information", "third party companies"}
	if !reflect.DeepEqual(phrases, want) {
		t.Fatalf("chunks = %v", phrases)
	}
	// Heads are the final nouns.
	if toks[chunks[1].Head].Lower != "information" || toks[chunks[2].Head].Lower != "companies" {
		t.Fatalf("heads wrong: %+v", chunks)
	}
}

func TestChunkDoesNotSwallowMainVerb(t *testing.T) {
	toks := TagText("we are collecting location data")
	chunks := ChunkNPs(toks)
	for _, c := range chunks {
		for i := c.Start; i < c.End; i++ {
			if toks[i].Lower == "collecting" {
				t.Fatalf("main verb swallowed by chunk %v", chunks)
			}
		}
	}
}

func TestLemma(t *testing.T) {
	cases := map[string]string{
		"collects": "collect", "collected": "collect", "collecting": "collect",
		"stored": "store", "shares": "share", "kept": "keep",
		"gathers": "gather", "used": "use", "uses": "use",
		"is": "be", "are": "be", "been": "be",
		"unknownword": "unknownword",
	}
	for form, want := range cases {
		if got := Lemma(form); got != want {
			t.Errorf("Lemma(%q) = %q, want %q", form, got, want)
		}
	}
}

func TestParseTokensEmpty(t *testing.T) {
	p := ParseTokens(nil)
	if p.Root != -1 {
		t.Fatalf("empty parse has root %d", p.Root)
	}
	p = ParseSentence("")
	if p.Root != -1 {
		t.Fatalf("empty sentence has root %d", p.Root)
	}
	p = ParseSentence("the weather")
	if p.Root != -1 {
		t.Fatalf("verbless sentence has root %d", p.Root)
	}
}

// TestParseNeverPanics: the parser is total over arbitrary text.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		p := ParseSentence(s)
		// Every dependency edge references valid tokens.
		for _, d := range p.Deps {
			if d.Dependent < 0 || d.Dependent >= len(p.Tokens) {
				return false
			}
			if d.Head >= len(p.Tokens) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPathBetweenEndpoints: paths exclude their endpoints and are
// bounded by the token count.
func TestPathBetweenEndpoints(t *testing.T) {
	p := ParseSentence("we are allowed to access your personal information")
	subj := p.Subject(p.Root)
	x := p.Xcomp(p.Root)
	objs := p.Objects(x)
	if subj < 0 || x < 0 || len(objs) == 0 {
		t.Fatal("parse shape unexpected")
	}
	path := p.PathBetween(subj, objs[0])
	if len(path) != 2 || path[0] != "allow" || path[1] != "access" {
		t.Fatalf("path = %v", path)
	}
}
