package nlp

import (
	"strings"
	"testing"
)

// TestSplitSentencesEnumerationNotGreedy is the regression test for the
// enumeration repair absorbing the sentence *after* the list: a
// ';'-terminated final list item must not swallow a following
// independent sentence. The absorbed sentence here carried a negation
// downstream detectors care about, so the over-merge changed findings.
func TestSplitSentencesEnumerationNotGreedy(t *testing.T) {
	text := "we collect the following information: your name;\n" +
		"your email address;\n" +
		"your device id;\n" +
		"we take your privacy very seriously.\n" +
		"please contact us with any questions."
	got := SplitSentences(text)
	if len(got) != 3 {
		t.Fatalf("sentences = %d %q, want 3", len(got), got)
	}
	for _, part := range []string{"your name", "your email address", "your device id"} {
		if !strings.Contains(got[0], part) {
			t.Errorf("enumeration lost %q: %q", part, got[0])
		}
	}
	if strings.Contains(got[0], "seriously") {
		t.Errorf("enumeration absorbed the following sentence: %q", got[0])
	}
	if got[1] != "we take your privacy very seriously." {
		t.Errorf("sentence 1 = %q", got[1])
	}
	if got[2] != "please contact us with any questions." {
		t.Errorf("sentence 2 = %q", got[2])
	}
}

// The repair must behave identically regardless of the casing of the
// following sentence (SplitSentences lowercases only after merging),
// so the metamorphic case-churn transform stays sound.
func TestSplitSentencesEnumerationNotGreedyCaseInsensitive(t *testing.T) {
	for _, next := range []string{
		"We will not sell your data.",
		"we will not sell your data.",
		"WE WILL NOT SELL YOUR DATA.",
	} {
		text := "we may collect: your name;\nyour ip address;\n" + next
		got := SplitSentences(text)
		if len(got) != 2 {
			t.Fatalf("next=%q: sentences = %q, want 2", next, got)
		}
		if got[1] != "we will not sell your data." {
			t.Errorf("next=%q: sentence 1 = %q", next, got[1])
		}
	}
}

// Comma-terminated runs get the same gate.
func TestSplitSentencesCommaRunNotGreedy(t *testing.T) {
	text := "we collect your name,\nyour ip address,\nThey may share your data."
	got := SplitSentences(text)
	if len(got) != 2 {
		t.Fatalf("sentences = %q, want 2", got)
	}
	if strings.Contains(got[0], "share") {
		t.Errorf("comma run absorbed the following sentence: %q", got[0])
	}
}

// Noun-phrase list items (the legitimate repair target) still merge,
// including ones containing an embedded relative clause with a
// pronoun ("information we collect").
func TestSplitSentencesEnumerationStillMerges(t *testing.T) {
	text := "we will collect:\nyour name;\nthe information we collect about your device;\nand your ip address."
	got := SplitSentences(text)
	if len(got) != 1 {
		t.Fatalf("sentences = %q, want 1", got)
	}
	for _, part := range []string{"your name", "about your device", "your ip address"} {
		if !strings.Contains(got[0], part) {
			t.Errorf("enumeration lost %q: %q", part, got[0])
		}
	}
}

// An imperative boilerplate sentence ("please ...") also ends the run.
func TestSplitSentencesEnumerationImperativeEndsRun(t *testing.T) {
	text := "we may collect: your name;\nyour ip address;\nPlease read this policy carefully."
	got := SplitSentences(text)
	if len(got) != 2 {
		t.Fatalf("sentences = %q, want 2", got)
	}
	if got[1] != "please read this policy carefully." {
		t.Errorf("sentence 1 = %q", got[1])
	}
}
