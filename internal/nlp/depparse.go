package nlp

import "strings"

// Rel is a typed dependency relation (Stanford dependencies subset).
type Rel string

// Relations emitted by the parser. They match the inventory §III-B of
// the paper relies on.
const (
	RelRoot      Rel = "root"
	RelNsubj     Rel = "nsubj"
	RelNsubjPass Rel = "nsubjpass"
	RelDobj      Rel = "dobj"
	RelAux       Rel = "aux"
	RelAuxPass   Rel = "auxpass"
	RelCop       Rel = "cop"
	RelNeg       Rel = "neg"
	RelXcomp     Rel = "xcomp"
	RelAdvcl     Rel = "advcl"
	RelMark      Rel = "mark"
	RelPrep      Rel = "prep"
	RelPobj      Rel = "pobj"
	RelConj      Rel = "conj"
	RelCC        Rel = "cc"
	RelDet       Rel = "det"
	RelPoss      Rel = "poss"
	RelAmod      Rel = "amod"
	RelCompound  Rel = "compound"
	RelDep       Rel = "dep"
)

// Dep is one typed dependency edge. Head == -1 marks the root edge.
type Dep struct {
	Head      int
	Dependent int
	Rel       Rel
}

// ConstraintKind distinguishes the two constraint classes of §III-B
// Step 6.
type ConstraintKind int

const (
	// PreCondition constraints start with "if", "upon", "unless".
	PreCondition ConstraintKind = iota
	// PostCondition constraints start with "when", "before".
	PostCondition
)

// Constraint is a subordinate-clause span acting as a condition on the
// main clause.
type Constraint struct {
	Kind       ConstraintKind
	Start, End int // token span, marker included
}

// Parse is the dependency analysis of one sentence.
type Parse struct {
	Tokens []Token
	Chunks []Chunk
	Deps   []Dep
	// Root is the token index of the root word, or -1 when the sentence
	// has no identifiable predicate.
	Root        int
	Constraints []Constraint

	heads []int
	rels  []Rel
}

// ParseSentence tags and parses one sentence.
func ParseSentence(text string) *Parse {
	return ParseTokens(TagText(text))
}

// ParseTokens parses an already tagged token slice.
func ParseTokens(toks []Token) *Parse {
	return parseTokensInto(new(Parse), toks)
}

// parseTokensInto parses toks into p, reusing whatever storage p
// already holds (a zero Parse works too) — the ParseBuffer reuse path.
// Each token attaches at most once (emit's first-wins rule) plus the
// root edge, so len(toks) bounds the edge count.
func parseTokensInto(p *Parse, toks []Token) *Parse {
	n := len(toks)
	p.Tokens = toks
	p.Root = -1
	if cap(p.Deps) < n {
		p.Deps = make([]Dep, 0, n)
	} else {
		p.Deps = p.Deps[:0]
	}
	if cap(p.heads) < n {
		p.heads = make([]int, n)
		p.rels = make([]Rel, n)
	} else {
		p.heads = p.heads[:n]
		p.rels = p.rels[:n]
	}
	for i := 0; i < n; i++ {
		p.heads[i] = -2 // unattached
		p.rels[i] = ""  // no stale relation may survive buffer reuse
	}
	p.Constraints = p.Constraints[:0]
	p.Chunks = ChunkNPsInto(p.Chunks[:0], toks)
	p.findConstraints()
	p.attachChunkInternals()
	p.parseClause(p.mainRegion(), true)
	return p
}

func (p *Parse) emit(head, dep int, rel Rel) {
	if dep < 0 || dep >= len(p.Tokens) {
		return
	}
	if p.heads[dep] != -2 {
		return // first attachment wins
	}
	p.heads[dep] = head
	p.rels[dep] = rel
	p.Deps = append(p.Deps, Dep{Head: head, Dependent: dep, Rel: rel})
}

// findConstraints locates subordinate clause spans introduced by the
// constraint markers of §III-B Step 6. A span runs from its marker to
// the next comma at the same level, or the end of the sentence.
func (p *Parse) findConstraints() {
	n := len(p.Tokens)
	for i := 0; i < n; i++ {
		w := p.Tokens[i].Lower
		var kind ConstraintKind
		switch w {
		case "if", "upon", "unless":
			kind = PreCondition
		case "when", "before":
			kind = PostCondition
		default:
			continue
		}
		// "before"/"upon" directly followed by a noun phrase is a plain
		// preposition use only when no verb appears in its span; the
		// span logic below still treats it as a constraint region,
		// matching how the paper extracts the sub-tree of the marker.
		end := n
		for j := i + 1; j < n; j++ {
			if p.Tokens[j].Tag == TagComa {
				end = j
				break
			}
		}
		p.Constraints = append(p.Constraints, Constraint{Kind: kind, Start: i, End: end})
		i = end
	}
}

// inConstraint reports whether token i lies inside any constraint span.
func (p *Parse) inConstraint(i int) bool {
	for _, c := range p.Constraints {
		if i >= c.Start && i < c.End {
			return true
		}
	}
	return false
}

// mainRegion returns the token indices of the main clause (everything
// outside constraint spans).
func (p *Parse) mainRegion() []int {
	idx := make([]int, 0, len(p.Tokens))
	for i := range p.Tokens {
		if !p.inConstraint(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// attachChunkInternals emits det/poss/amod/compound edges inside every
// noun phrase so the tree is connected below NP heads.
func (p *Parse) attachChunkInternals() {
	for _, c := range p.Chunks {
		for i := c.Start; i < c.End; i++ {
			if i == c.Head {
				continue
			}
			switch p.Tokens[i].Tag {
			case TagDT:
				p.emit(c.Head, i, RelDet)
			case TagPRPS:
				p.emit(c.Head, i, RelPoss)
			case TagJJ, TagVBN, TagVBG, TagCD:
				p.emit(c.Head, i, RelAmod)
			case TagNN, TagNNS, TagNNP:
				p.emit(c.Head, i, RelCompound)
			}
		}
	}
}

// parseClause analyses the clause formed by the given token indices.
// When main is true the clause's predicate becomes the sentence root.
// It returns the index of the clause's main verb (or -1).
func (p *Parse) parseClause(region []int, main bool) int {
	if len(region) == 0 {
		return -1
	}
	vg := p.findVerbGroup(region)
	if vg.root < 0 {
		return -1
	}
	if main {
		p.Root = vg.root
		p.emit(-1, vg.root, RelRoot)
	}
	if vg.modal >= 0 {
		p.emit(vg.root, vg.modal, RelAux)
	}
	for _, ng := range vg.negs {
		p.emit(vg.root, ng, RelNeg)
	}
	if vg.auxpass >= 0 {
		p.emit(vg.root, vg.auxpass, RelAuxPass)
	}
	if vg.cop >= 0 {
		p.emit(vg.root, vg.cop, RelCop)
	}
	if vg.xcomp >= 0 {
		p.emit(vg.root, vg.xcomp, RelXcomp)
		if vg.xcompTo >= 0 {
			p.emit(vg.xcomp, vg.xcompTo, RelAux)
		}
	}
	// Subject: nearest NP head strictly before the verb group.
	subj := -1
	for _, c := range p.Chunks {
		if c.End <= vg.start && !p.inConstraint(c.Head) {
			subj = c.Head
		}
	}
	if subj >= 0 {
		if vg.auxpass >= 0 {
			p.emit(vg.root, subj, RelNsubjPass)
		} else {
			p.emit(vg.root, subj, RelNsubj)
		}
	}
	// The verb that takes objects: the xcomp verb if present, else root.
	objVerb := vg.root
	objFrom := vg.end
	if vg.xcomp >= 0 {
		objVerb = vg.xcomp
		objFrom = vg.xcomp + 1
	}
	p.attachRight(objVerb, objFrom, vg.auxpass >= 0 && vg.xcomp < 0)
	// Conjoined verbs sharing the subject: "we collect, use and share X".
	p.attachConjVerbs(vg, subj)
	// Subordinate clause predicates: parse each constraint span and hang
	// it from the root with mark+advcl.
	if main {
		for _, c := range p.Constraints {
			var sub []int
			for i := c.Start + 1; i < c.End; i++ {
				sub = append(sub, i)
			}
			sv := p.parseClause(sub, false)
			if sv >= 0 {
				p.emit(sv, c.Start, RelMark)
				p.emit(vg.root, sv, RelAdvcl)
			}
		}
	}
	return vg.root
}

// verbGroup describes the analysed predicate of a clause.
type verbGroup struct {
	start, end int // token span of the group [start, end)
	root       int
	modal      int
	auxpass    int
	cop        int
	xcomp      int
	xcompTo    int
	negs       []int
}

// findVerbGroup locates the clause predicate. It implements the shapes
// the paper's patterns P1–P5 rely on: simple active/passive groups,
// "be allowed to V", and "be able to V".
func (p *Parse) findVerbGroup(region []int) verbGroup {
	vg := verbGroup{root: -1, modal: -1, auxpass: -1, cop: -1, xcomp: -1, xcompTo: -1}
	pos := -1
	for _, i := range region {
		t := p.Tokens[i]
		if inNP := p.insideChunkNonHead(i); inNP {
			continue
		}
		if t.Tag == TagMD || t.Tag == TagVBP || t.Tag == TagVBZ || t.Tag == TagVBD ||
			(t.Tag == TagVB && i == 0) || (t.Tag == TagVB && pos < 0 && isBareVerbStart(p.Tokens, i)) {
			pos = i
			break
		}
	}
	if pos < 0 {
		return vg
	}
	vg.start = pos
	// Preverbal negation adverbs ("we hardly collect ...") sit before
	// the verb group proper.
	for j := pos - 1; j >= 0 && p.Tokens[j].Tag == TagRB; j-- {
		if isNegAdv(p.Tokens[j].Lower) {
			vg.negs = append(vg.negs, j)
		}
	}
	i := pos
	n := len(p.Tokens)
	// modal
	if p.Tokens[i].Tag == TagMD {
		vg.modal = i
		i++
	}
	// negation adverbs between auxiliaries and verb
	for i < n && (p.Tokens[i].Tag == TagRB) {
		if isNegAdv(p.Tokens[i].Lower) {
			vg.negs = append(vg.negs, i)
		}
		i++
	}
	if i >= n || !p.Tokens[i].Tag.IsVerb() {
		// modal with no verb — give up
		vg.root = -1
		return vg
	}
	v1 := i
	// do-support: "we do not sell ..." — the auxiliary "do" defers the
	// root to the following base verb.
	if w := p.Tokens[v1].Lower; (w == "do" || w == "does" || w == "did") && v1+1 < n {
		j := v1 + 1
		for j < n && p.Tokens[j].Tag == TagRB {
			if isNegAdv(p.Tokens[j].Lower) {
				vg.negs = append(vg.negs, j)
			}
			j++
		}
		if j < n && (p.Tokens[j].Tag == TagVB || p.Tokens[j].Tag == TagVBP) {
			vg.modal = v1 // treat "do" as the aux slot
			vg.root = j
			vg.end = j + 1
			return vg
		}
	}
	if isBe(p.Tokens[v1].Lower) {
		// passive, "be allowed to V", "be able to V", or copula
		j := v1 + 1
		for j < n && p.Tokens[j].Tag == TagRB {
			if isNegAdv(p.Tokens[j].Lower) {
				vg.negs = append(vg.negs, j)
			}
			j++
		}
		if j < n {
			switch {
			case p.Tokens[j].Tag == TagVBG:
				// progressive: "we are (not) collecting X" — active
				// voice with "be" as auxiliary.
				vg.root = j
				if vg.modal < 0 {
					vg.modal = v1
				}
				vg.end = j + 1
				return vg
			case p.Tokens[j].Tag == TagVBN:
				vg.root = j
				vg.auxpass = v1
				vg.end = j + 1
				// "allowed to V" / "permitted to V"
				if k, vk := p.infinitiveAfter(j + 1); vk >= 0 {
					vg.xcomp = vk
					vg.xcompTo = k
					vg.end = vk + 1
				}
				return vg
			case p.Tokens[j].Tag == TagJJ && (p.Tokens[j].Lower == "able" || p.Tokens[j].Lower == "unable"):
				vg.root = j
				vg.cop = v1
				vg.end = j + 1
				if k, vk := p.infinitiveAfter(j + 1); vk >= 0 {
					vg.xcomp = vk
					vg.xcompTo = k
					vg.end = vk + 1
				}
				return vg
			}
		}
		// copula sentence: root is "be"
		vg.root = v1
		vg.end = v1 + 1
		return vg
	}
	vg.root = v1
	vg.end = v1 + 1
	return vg
}

// infinitiveAfter scans for "to VB" starting at token index i, skipping
// adverbs. It returns (index of "to", index of verb) or (-1, -1).
func (p *Parse) infinitiveAfter(i int) (int, int) {
	n := len(p.Tokens)
	j := i
	for j < n && p.Tokens[j].Tag == TagRB {
		j++
	}
	if j+1 < n && p.Tokens[j].Tag == TagTO && p.Tokens[j+1].Tag == TagVB {
		return j, j + 1
	}
	return -1, -1
}

// insideChunkNonHead reports whether token i is inside an NP chunk, so
// participles acting as premodifiers are skipped by the verb-group
// search (chunk heads are nouns and never verb candidates).
func (p *Parse) insideChunkNonHead(i int) bool {
	_, ok := chunkAt(p.Chunks, i)
	return ok
}

// isBareVerbStart reports whether a VB-tagged token plausibly starts an
// imperative or subjectless predicate.
func isBareVerbStart(toks []Token, i int) bool {
	for j := 0; j < i; j++ {
		if !toks[j].IsPunct() && toks[j].Tag != TagRB {
			return false
		}
	}
	return true
}

func isNegAdv(w string) bool {
	switch w {
	case "not", "n't", "never", "hardly", "rarely", "seldom":
		return true
	}
	return false
}

// attachRight attaches direct objects, conjoined objects, prepositional
// phrases, and purpose clauses appearing to the right of the verb.
// passive suppresses dobj attachment (the patient is the subject).
func (p *Parse) attachRight(verb, from int, passive bool) {
	n := len(p.Tokens)
	firstObj := -1
	lastObjEnd := from
	if !passive {
		// Partitive object: "display any of your personal information"
		// — a bare determiner plus "of" defers the object to the pobj.
		j := from
		for j < n && p.Tokens[j].Tag == TagRB {
			j++
		}
		if j+1 < n && p.Tokens[j].Tag == TagDT && p.Tokens[j+1].Lower == "of" {
			if _, ok := chunkAt(p.Chunks, j); !ok {
				for _, c := range p.Chunks {
					if c.Start >= j+2 {
						p.emit(verb, c.Head, RelDobj)
						firstObj = c.Head
						lastObjEnd = c.End
						break
					}
				}
			}
		}
	}
	if !passive && firstObj < 0 {
		for _, c := range p.Chunks {
			if c.Start < from || p.inConstraint(c.Head) {
				continue
			}
			if firstObj < 0 {
				// stop at a preposition boundary before the first object
				if prepIdx := p.prepBefore(c.Start, lastObjEnd); prepIdx >= 0 {
					break
				}
				p.emit(verb, c.Head, RelDobj)
				firstObj = c.Head
				lastObjEnd = c.End
				continue
			}
			// conjoined object: separated by , ; : and/or/nor, possibly
			// with referential ellipsis ("..., nor those of your
			// contacts") or an of-complement ("date of birth").
			if p.onlySeparatorsConj(lastObjEnd, c.Start) {
				p.emit(firstObj, c.Head, RelConj)
				lastObjEnd = c.End
				continue
			}
			break
		}
	}
	// prepositional attachments and purpose clause
	for i := lastObjEnd; i < n; i++ {
		if p.inConstraint(i) {
			continue
		}
		t := p.Tokens[i]
		if t.Tag == TagIN || (t.Tag == TagTO && i+1 < n && !p.Tokens[i+1].Tag.IsVerb()) {
			// prep + pobj (+ conjoined pobj)
			var firstP = -1
			var lastEnd = i + 1
			for _, c := range p.Chunks {
				if c.Start < i+1 || p.inConstraint(c.Head) {
					continue
				}
				if firstP < 0 {
					if c.Start > i+1 && !p.onlySeparators(i+1, c.Start) {
						break
					}
					p.emit(verb, i, RelPrep)
					p.emit(i, c.Head, RelPobj)
					firstP = c.Head
					lastEnd = c.End
					continue
				}
				if p.onlySeparators(lastEnd, c.Start) {
					p.emit(firstP, c.Head, RelConj)
					lastEnd = c.End
					continue
				}
				break
			}
			if firstP >= 0 {
				i = lastEnd - 1
				continue
			}
		}
		// purpose clause: "to VB ..." (P5 advcl)
		if t.Tag == TagTO && i+1 < n && p.Tokens[i+1].Tag == TagVB {
			pv := i + 1
			p.emit(verb, pv, RelAdvcl)
			p.emit(pv, i, RelAux)
			// objects of the purpose verb
			p.attachRight(pv, pv+1, false)
			break
		}
	}
}

// prepBefore returns the index of a preposition strictly between from
// and upto, or -1.
func (p *Parse) prepBefore(upto, from int) int {
	for i := from; i < upto && i < len(p.Tokens); i++ {
		if p.Tokens[i].Tag == TagIN {
			return i
		}
		if p.Tokens[i].Tag == TagTO {
			return i
		}
	}
	return -1
}

// onlySeparatorsConj is onlySeparators extended with the tokens that
// appear inside coordinated object lists: bare determiners ("those",
// "any") and the preposition "of" ("nor those of your contacts",
// "date of birth").
func (p *Parse) onlySeparatorsConj(from, to int) bool {
	if from > to {
		return false
	}
	for i := from; i < to; i++ {
		t := p.Tokens[i]
		if t.Tag == TagComa || t.Tag == TagColn || t.Tag == TagCC || t.Tag == TagDT {
			continue
		}
		if t.Tag == TagIN && t.Lower == "of" {
			continue
		}
		if t.Tag == TagRB && (t.Lower == "nor" || t.Lower == "neither") {
			continue
		}
		return false
	}
	return true
}

// onlySeparators reports whether tokens in [from, to) are all commas,
// semicolons, colons, or coordinating conjunctions.
func (p *Parse) onlySeparators(from, to int) bool {
	if from > to {
		return false
	}
	for i := from; i < to; i++ {
		t := p.Tokens[i]
		if t.Tag == TagComa || t.Tag == TagColn || t.Tag == TagCC {
			continue
		}
		return false
	}
	return true
}

// attachConjVerbs links verbs coordinated with the root ("collect, use
// and share"). The shared object attaches to the first verb; conj edges
// make the others reachable for category matching.
func (p *Parse) attachConjVerbs(vg verbGroup, subj int) {
	if vg.root < 0 {
		return
	}
	n := len(p.Tokens)
	i := vg.root + 1
	last := vg.root
	for i < n {
		// pattern: separators then a verb
		j := i
		for j < n && (p.Tokens[j].Tag == TagComa || p.Tokens[j].Tag == TagCC) {
			j++
		}
		if j == i || j >= n {
			return
		}
		if p.Tokens[j].Tag == TagVB || p.Tokens[j].Tag == TagVBP || p.Tokens[j].Tag == TagVBZ {
			if _, inNP := chunkAt(p.Chunks, j); inNP {
				return
			}
			p.emit(vg.root, j, RelConj)
			if p.Tokens[j-1].Tag == TagCC {
				p.emit(vg.root, j-1, RelCC)
			}
			last = j
			i = j + 1
			continue
		}
		_ = last
		return
	}
}

// --- accessors used by the policy analyzer and pattern miner ---

// HeadOf returns the head token index of token i (-1 root, -2 unattached).
func (p *Parse) HeadOf(i int) int { return p.heads[i] }

// RelOf returns the relation of token i to its head.
func (p *Parse) RelOf(i int) Rel { return p.rels[i] }

// Dependents returns the dependents of token i with the given relation;
// rel == "" matches all.
func (p *Parse) Dependents(i int, rel Rel) []int {
	var out []int
	for _, d := range p.Deps {
		if d.Head == i && (rel == "" || d.Rel == rel) {
			out = append(out, d.Dependent)
		}
	}
	return out
}

// IsPassive reports whether the predicate headed at i has a passive
// auxiliary.
func (p *Parse) IsPassive(i int) bool {
	return len(p.Dependents(i, RelAuxPass)) > 0
}

// Subject returns the (passive or active) subject token index of the
// predicate at i, or -1.
func (p *Parse) Subject(i int) int {
	if s := p.Dependents(i, RelNsubj); len(s) > 0 {
		return s[0]
	}
	if s := p.Dependents(i, RelNsubjPass); len(s) > 0 {
		return s[0]
	}
	return -1
}

// Objects returns direct-object token heads of the predicate at i,
// including conjoined objects.
func (p *Parse) Objects(i int) []int {
	objs := p.Dependents(i, RelDobj)
	var all []int
	for _, o := range objs {
		all = append(all, o)
		all = append(all, p.conjChain(o)...)
	}
	return all
}

// PrepObjects returns the pobj heads under the predicate at i, with
// their conjoined siblings, for the given preposition word ("" = any).
func (p *Parse) PrepObjects(i int, prep string) []int {
	var all []int
	for _, pr := range p.Dependents(i, RelPrep) {
		if prep != "" && p.Tokens[pr].Lower != prep {
			continue
		}
		for _, o := range p.Dependents(pr, RelPobj) {
			all = append(all, o)
			all = append(all, p.conjChain(o)...)
		}
	}
	return all
}

func (p *Parse) conjChain(o int) []int {
	var out []int
	for _, c := range p.Dependents(o, RelConj) {
		out = append(out, c)
		out = append(out, p.conjChain(c)...)
	}
	return out
}

// ConjVerbs returns verbs coordinated with the root.
func (p *Parse) ConjVerbs(i int) []int {
	var out []int
	for _, c := range p.Dependents(i, RelConj) {
		if p.Tokens[c].Tag.IsVerb() {
			out = append(out, c)
		}
	}
	return out
}

// Xcomp returns the open clausal complement of the predicate at i, or -1.
func (p *Parse) Xcomp(i int) int {
	if x := p.Dependents(i, RelXcomp); len(x) > 0 {
		return x[0]
	}
	return -1
}

// Advcl returns adverbial-clause / purpose verbs under i.
func (p *Parse) Advcl(i int) []int { return p.Dependents(i, RelAdvcl) }

// NegDeps returns negation dependents of i.
func (p *Parse) NegDeps(i int) []int { return p.Dependents(i, RelNeg) }

// PhraseOf returns the full noun phrase text of the chunk headed at
// token h, with determiners and possessives stripped, e.g. "your
// personal information" → "personal information".
func (p *Parse) PhraseOf(h int) string {
	c, ok := chunkHeadedAt(p.Chunks, h)
	if !ok {
		if h >= 0 && h < len(p.Tokens) {
			return p.Tokens[h].Lower
		}
		return ""
	}
	var parts []string
	for i := c.Start; i < c.End; i++ {
		switch p.Tokens[i].Tag {
		case TagDT, TagPRPS, TagPOS:
			continue
		}
		parts = append(parts, p.Tokens[i].Lower)
	}
	return strings.Join(parts, " ")
}

// PathBetween returns the lemmas of tokens on the dependency path from a
// up to the lowest common ancestor and down to b, excluding a and b
// themselves. It is the "shortest path" used as a mined pattern (§III-B
// Step 3, Fig. 7).
func (p *Parse) PathBetween(a, b int) []string {
	up := map[int]int{} // node -> distance from a
	path := []int{}
	for x := a; x >= 0; x = p.heads[x] {
		up[x] = len(path)
		path = append(path, x)
		if p.heads[x] < 0 {
			break
		}
	}
	// climb from b until hitting a's chain
	var down []int
	lca := -1
	for x := b; x >= 0; x = p.heads[x] {
		if _, ok := up[x]; ok {
			lca = x
			break
		}
		down = append(down, x)
		if p.heads[x] < 0 {
			break
		}
	}
	if lca < 0 {
		return nil
	}
	var lemmas []string
	for _, x := range path {
		if x == a {
			continue
		}
		lemmas = append(lemmas, Lemma(p.Tokens[x].Lower))
		if x == lca {
			break
		}
	}
	for i := len(down) - 1; i >= 0; i-- {
		if down[i] == b {
			continue
		}
		lemmas = append(lemmas, Lemma(p.Tokens[down[i]].Lower))
	}
	return lemmas
}
