package nlp

import "strings"

// TagTokens assigns a part-of-speech tag to every token in place using
// the lexicon, suffix heuristics for unknown words, and a pass of
// contextual repair rules (a small Brill-style tagger specialised for
// the privacy-policy register).
func TagTokens(toks []Token) []Token {
	for i := range toks {
		toks[i].Tag = initialTag(toks[i])
	}
	applyContextRules(toks)
	return toks
}

// Tag tokenizes and tags a sentence in one call.
func TagText(text string) []Token {
	return TagTokens(Tokenize(text))
}

func initialTag(t Token) Tag {
	w := t.Lower
	if len(w) == 1 {
		switch w[0] {
		case '.', '!', '?':
			return TagPunc
		case ',':
			return TagComa
		case ';', ':', '-', '(', ')', '"', '\'', '/':
			return TagColn
		}
		if w[0] >= '0' && w[0] <= '9' {
			return TagCD
		}
		if !(w[0] >= 'a' && w[0] <= 'z') {
			return TagSym
		}
	}
	if tag, ok := lexicon[w]; ok {
		return tag
	}
	if isNumber(w) {
		return TagCD
	}
	return suffixTag(t)
}

func isNumber(w string) bool {
	digits := 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c >= '0' && c <= '9' {
			digits++
		} else if c != '.' && c != ',' && c != '-' {
			return false
		}
	}
	return digits > 0
}

// suffixTag guesses a tag for an out-of-lexicon word from morphology.
func suffixTag(t Token) Tag {
	w := t.Lower
	switch {
	case strings.HasSuffix(w, "ly"):
		return TagRB
	case strings.HasSuffix(w, "ing"):
		return TagVBG
	case strings.HasSuffix(w, "ed"):
		return TagVBN
	case strings.HasSuffix(w, "tion") || strings.HasSuffix(w, "sion") ||
		strings.HasSuffix(w, "ment") || strings.HasSuffix(w, "ness") ||
		strings.HasSuffix(w, "ance") || strings.HasSuffix(w, "ence") ||
		strings.HasSuffix(w, "ship") || strings.HasSuffix(w, "ism"):
		return TagNN
	case strings.HasSuffix(w, "tions") || strings.HasSuffix(w, "sions") ||
		strings.HasSuffix(w, "ments") || strings.HasSuffix(w, "ities"):
		return TagNNS
	case strings.HasSuffix(w, "ous") || strings.HasSuffix(w, "ble") ||
		strings.HasSuffix(w, "ical") || strings.HasSuffix(w, "ful") ||
		strings.HasSuffix(w, "less") || strings.HasSuffix(w, "ive"):
		return TagJJ
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return TagNNS
	case len(t.Text) > 0 && t.Text[0] >= 'A' && t.Text[0] <= 'Z':
		return TagNNP
	default:
		return TagNN
	}
}

// applyContextRules repairs tags that depend on neighbours.
func applyContextRules(toks []Token) {
	n := len(toks)
	prevWord := func(i int) int { // previous non-adverb, non-punct token
		for j := i - 1; j >= 0; j-- {
			if toks[j].Tag == TagRB || toks[j].IsPunct() {
				continue
			}
			return j
		}
		return -1
	}
	for i := 0; i < n; i++ {
		w := toks[i].Lower
		tag := toks[i].Tag
		p := prevWord(i)

		switch {
		// Rule: modal + verb-form → base verb ("will collect").
		case p >= 0 && toks[p].Tag == TagMD && (tag.IsVerb() || KnownVerbForm(w)):
			toks[i].Tag = TagVB
		// Rule: "to" + known verb → base verb ("to access").
		case p >= 0 && toks[p].Tag == TagTO && KnownVerbForm(w):
			toks[i].Tag = TagVB
		// Rule: be + past form → past participle ("is collected",
		// "are allowed"). Also covers "be" + suffix-guessed VBN.
		case p >= 0 && isBe(toks[p].Lower) && (tag == TagVBD || tag == TagVBN):
			toks[i].Tag = TagVBN
		// Rule: have/has/had + past form → past participle.
		case p >= 0 && isHave(toks[p].Lower) && (tag == TagVBD || tag == TagVBN):
			toks[i].Tag = TagVBN
		// Rule: past form directly after a preposition, determiner or
		// possessive, followed by nominal material, is a participle
		// premodifier ("of installed applications", "your stored data").
		case i > 0 && tag == TagVBD && i+1 < n &&
			(toks[i-1].Tag == TagIN || toks[i-1].Tag == TagDT || toks[i-1].Tag == TagPRPS || toks[i-1].Tag == TagTO) &&
			(toks[i+1].Tag == TagNN || toks[i+1].Tag == TagNNS || toks[i+1].Tag == TagNNP || toks[i+1].Tag == TagJJ):
			toks[i].Tag = TagVBN
		// Rule: determiner/possessive/adjective + verb-surface word that
		// can be a noun → noun ("your use", "the record", "anonymous
		// updates").
		case p >= 0 && (toks[p].Tag == TagDT || toks[p].Tag == TagPRPS || toks[p].Tag == TagJJ) &&
			(tag == TagVB || tag == TagVBP):
			toks[i].Tag = TagNN
		case p >= 0 && (toks[p].Tag == TagDT || toks[p].Tag == TagPRPS || toks[p].Tag == TagJJ) &&
			tag == TagVBZ:
			toks[i].Tag = TagNNS
		// Rule: pronoun subject + VB with no modal → present plural
		// ("we collect").
		case p >= 0 && toks[p].Tag == TagPRP && tag == TagVB:
			toks[i].Tag = TagVBP
		}

		// Rule: sentence-initial known verb after "please" or bare →
		// keep; but sentence-initial unknown NNP that is a known verb
		// form gets its verb tag ("Collect" in headings is rare; skip).
		_ = tag
	}
	// Second pass: plural noun vs VBZ ambiguity — "the app collects
	// location": "collects" after noun subject should be VBZ if a known
	// verb form and not preceded by DT/JJ.
	for i := 0; i < n; i++ {
		if toks[i].Tag != TagNNS || !KnownVerbForm(toks[i].Lower) {
			continue
		}
		if i > 0 && (toks[i-1].Tag.IsNoun() || toks[i-1].Tag == TagNNP) {
			if lexTag, ok := lexicon[toks[i].Lower]; ok && lexTag == TagVBZ {
				toks[i].Tag = TagVBZ
			}
		}
	}
}

func isBe(w string) bool {
	switch w {
	case "be", "am", "is", "are", "was", "were", "been", "being":
		return true
	}
	return false
}

func isHave(w string) bool {
	switch w {
	case "have", "has", "had", "having":
		return true
	}
	return false
}
