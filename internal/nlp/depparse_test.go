package nlp

import (
	"strings"
	"testing"
)

// mustRoot parses text and fails unless the root word is want.
func mustRoot(t *testing.T, text, want string) *Parse {
	t.Helper()
	p := ParseSentence(text)
	if p.Root < 0 {
		t.Fatalf("no root found in %q", text)
	}
	if got := p.Tokens[p.Root].Lower; got != want {
		t.Fatalf("root of %q = %q, want %q", text, got, want)
	}
	return p
}

func TestParseActiveVoice(t *testing.T) {
	p := mustRoot(t, "we will collect your location", "collect")
	if s := p.Subject(p.Root); s < 0 || p.Tokens[s].Lower != "we" {
		t.Fatalf("subject = %v, want we", s)
	}
	objs := p.Objects(p.Root)
	if len(objs) != 1 || p.PhraseOf(objs[0]) != "location" {
		t.Fatalf("objects = %v", phrases(p, objs))
	}
	if p.IsPassive(p.Root) {
		t.Fatal("active sentence reported passive")
	}
}

func TestParsePassiveVoice(t *testing.T) {
	p := mustRoot(t, "your personal information will be used", "used")
	if !p.IsPassive(p.Root) {
		t.Fatal("passive not detected")
	}
	s := p.Subject(p.Root)
	if s < 0 || p.PhraseOf(s) != "personal information" {
		t.Fatalf("nsubjpass = %q", p.PhraseOf(s))
	}
}

func TestParseAllowedExpression(t *testing.T) {
	// Pattern P3: root should be "allowed" with xcomp to "access".
	p := mustRoot(t, "we are allowed to access your personal information", "allowed")
	x := p.Xcomp(p.Root)
	if x < 0 || p.Tokens[x].Lower != "access" {
		t.Fatalf("xcomp = %v", x)
	}
	objs := p.Objects(x)
	if len(objs) != 1 || p.PhraseOf(objs[0]) != "personal information" {
		t.Fatalf("objects of xcomp = %v", phrases(p, objs))
	}
}

func TestParseAbleExpression(t *testing.T) {
	// Pattern P4: root "able", xcomp verb in main categories.
	p := mustRoot(t, "we are able to collect location information", "able")
	x := p.Xcomp(p.Root)
	if x < 0 || p.Tokens[x].Lower != "collect" {
		t.Fatalf("xcomp = %v", x)
	}
}

func TestParsePurposeClause(t *testing.T) {
	// Pattern P5: "we use GPS to get your location" — root "use" with an
	// advcl to "get" whose object is "location".
	p := mustRoot(t, "we use gps to get your location", "use")
	adv := p.Advcl(p.Root)
	if len(adv) != 1 || p.Tokens[adv[0]].Lower != "get" {
		t.Fatalf("advcl = %v", adv)
	}
	objs := p.Objects(adv[0])
	if len(objs) != 1 || p.PhraseOf(objs[0]) != "location" {
		t.Fatalf("purpose objects = %v", phrases(p, objs))
	}
}

func TestParseNegation(t *testing.T) {
	p := mustRoot(t, "we will not collect your contacts", "collect")
	if len(p.NegDeps(p.Root)) != 1 {
		t.Fatalf("neg deps = %v", p.NegDeps(p.Root))
	}
}

func TestParseFig6Sentence(t *testing.T) {
	// Fig. 6 of the paper: "we will provide your information to third
	// party companies to improve service".
	p := mustRoot(t, "we will provide your information to third party companies to improve service", "provide")
	if s := p.Subject(p.Root); s < 0 || p.Tokens[s].Lower != "we" {
		t.Fatalf("subject missing")
	}
	objs := p.Objects(p.Root)
	if len(objs) != 1 || p.PhraseOf(objs[0]) != "information" {
		t.Fatalf("dobj = %v", phrases(p, objs))
	}
	pobjs := p.PrepObjects(p.Root, "to")
	if len(pobjs) != 1 || !strings.Contains(p.PhraseOf(pobjs[0]), "companies") {
		t.Fatalf("pobj(to) = %v", phrases(p, pobjs))
	}
}

func TestParseConjoinedObjects(t *testing.T) {
	p := mustRoot(t, "we will collect your name, your ip address and your device id", "collect")
	objs := p.Objects(p.Root)
	got := phrases(p, objs)
	want := map[string]bool{"name": true, "ip address": true, "device id": true}
	if len(got) != 3 {
		t.Fatalf("objects = %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected object %q in %v", g, got)
		}
	}
}

func TestParseConjoinedVerbs(t *testing.T) {
	p := mustRoot(t, "we collect, use and share your personal information", "collect")
	cv := p.ConjVerbs(p.Root)
	if len(cv) != 2 {
		t.Fatalf("conj verbs = %v", phrases(p, cv))
	}
}

func TestParseConstraint(t *testing.T) {
	p := ParseSentence("we will share your information with partners if you give us consent")
	if len(p.Constraints) != 1 || p.Constraints[0].Kind != PreCondition {
		t.Fatalf("constraints = %+v", p.Constraints)
	}
	if p.Root < 0 || p.Tokens[p.Root].Lower != "share" {
		t.Fatalf("root wrong with constraint present")
	}
}

func TestParseSubjectNegationDeterminer(t *testing.T) {
	p := ParseSentence("nothing will be collected")
	if p.Root < 0 || p.Tokens[p.Root].Lower != "collected" {
		t.Fatalf("root = %v", p.Root)
	}
	s := p.Subject(p.Root)
	if s < 0 || p.Tokens[s].Lower != "nothing" {
		t.Fatalf("subject = %v", s)
	}
}

func phrases(p *Parse, idx []int) []string {
	var out []string
	for _, i := range idx {
		out = append(out, p.PhraseOf(i))
	}
	return out
}
