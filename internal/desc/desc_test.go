package desc

import (
	"testing"

	"ppchecker/internal/sensitive"
)

func hasPerm(res *Result, perm string) bool {
	for _, p := range res.Permissions {
		if p == perm {
			return true
		}
	}
	return false
}

func hasInfo(res *Result, info sensitive.Info) bool {
	for _, i := range res.Infos {
		if i == info {
			return true
		}
	}
	return false
}

func TestLocationFromDescription(t *testing.T) {
	// The paper's com.dooing.dooing sentence (§II-B).
	a := NewAnalyzer()
	res := a.Analyze("Location aware tasks will help you to utilize your field force in optimum way.")
	if !hasPerm(res, sensitive.PermFineLocation) && !hasPerm(res, sensitive.PermCoarseLocation) {
		t.Fatalf("location permission not inferred: %+v", res)
	}
	if !hasInfo(res, sensitive.InfoLocation) {
		t.Fatalf("location info not inferred: %+v", res)
	}
}

func TestContactsFromDescription(t *testing.T) {
	// The paper's com.marcow.birthdaylist sentence (§V-D).
	a := NewAnalyzer()
	res := a.Analyze("This app synchronizes all birthdays with your contacts list and facebook.")
	if !hasPerm(res, sensitive.PermReadContacts) {
		t.Fatalf("contacts permission not inferred: %+v", res)
	}
	if !hasInfo(res, sensitive.InfoContact) {
		t.Fatalf("contact info not inferred: %+v", res)
	}
}

func TestCameraFromDescription(t *testing.T) {
	a := NewAnalyzer()
	res := a.Analyze("Scan any QR code or barcode with your camera instantly.")
	if !hasPerm(res, sensitive.PermCamera) {
		t.Fatalf("camera permission not inferred: %+v", res)
	}
}

func TestCalendarFromDescription(t *testing.T) {
	a := NewAnalyzer()
	res := a.Analyze("Keep track of all your calendar events and meetings in one simple agenda view.")
	if !hasPerm(res, sensitive.PermReadCalendar) {
		t.Fatalf("calendar permission not inferred: %+v", res)
	}
}

func TestAccountsFromDescription(t *testing.T) {
	a := NewAnalyzer()
	res := a.Analyze("Sign in with your Google account to sync your progress across devices.")
	if !hasPerm(res, sensitive.PermGetAccounts) {
		t.Fatalf("accounts permission not inferred: %+v", res)
	}
}

func TestNeutralDescriptionInfersNothing(t *testing.T) {
	a := NewAnalyzer()
	res := a.Analyze(`A simple and relaxing puzzle game.
Swipe tiles to combine matching numbers and reach the highest score.
Hundreds of levels with beautiful minimalist graphics.`)
	if len(res.Permissions) != 0 {
		t.Fatalf("neutral description inferred %v (evidence %v)", res.Permissions, res.Evidence)
	}
}

func TestEvidenceRecorded(t *testing.T) {
	a := NewAnalyzer()
	res := a.Analyze("Record voice memos with the microphone.")
	if !hasPerm(res, sensitive.PermRecordAudio) {
		t.Fatalf("audio permission not inferred: %+v", res)
	}
	if res.Evidence[sensitive.PermRecordAudio] == "" {
		t.Fatal("no evidence recorded")
	}
}

// TestUnjustified: permissions requested without description support
// are flagged; justified and unprofiled permissions are not.
func TestUnjustified(t *testing.T) {
	a := NewAnalyzer()
	requested := []string{
		sensitive.PermFineLocation,    // justified below
		sensitive.PermReadContacts,    // NOT justified
		"android.permission.INTERNET", // unprofiled: skipped
	}
	got := a.Unjustified(requested, "Track your runs with precise GPS navigation and turn-by-turn directions.")
	if len(got) != 1 || got[0] != sensitive.PermReadContacts {
		t.Fatalf("Unjustified = %v", got)
	}
	// Everything justified → empty.
	got = a.Unjustified([]string{sensitive.PermReadContacts},
		"Find friends from your contacts list and never miss their birthdays.")
	if len(got) != 0 {
		t.Fatalf("justified permission flagged: %v", got)
	}
}
