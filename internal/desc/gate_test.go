package desc

import (
	"reflect"
	"sort"
	"testing"

	"ppchecker/internal/nlp"
	"ppchecker/internal/sensitive"
)

// analyzeUngated replicates Analyze without the known-term sentence
// gate — the reference the gated path must equal exactly.
func (a *Analyzer) analyzeUngated(description string) *Result {
	res := &Result{Evidence: map[string]string{}}
	matched := map[string]bool{}
	for _, sent := range nlp.SplitSentences(description) {
		toks := nlp.TagText(sent)
		for _, phrase := range candidatePhrases(toks) {
			perm, sim, support := profileIndex.ClassifyWithSupportScoped(phrase, a.scope)
			if perm == "" || sim < a.threshold || support < 2 {
				continue
			}
			if !matched[perm] {
				matched[perm] = true
				res.Evidence[perm] = phrase
			}
		}
	}
	infoSet := map[sensitive.Info]bool{}
	for _, p := range profiles {
		if !matched[p.Permission] {
			continue
		}
		res.Permissions = append(res.Permissions, p.Permission)
		for _, info := range sensitive.InfoForPermission(p.Permission) {
			infoSet[info] = true
		}
	}
	for info := range infoSet {
		res.Infos = append(res.Infos, info)
	}
	sort.Slice(res.Infos, func(i, j int) bool { return res.Infos[i] < res.Infos[j] })
	return res
}

// TestGateInert: the known-term gate never changes the analysis on a
// corpus of descriptions spanning matched, near-miss, and unrelated
// text.
func TestGateInert(t *testing.T) {
	descriptions := []string{
		"Turn by turn navigation with precise GPS location and driving directions.",
		"A simple flashlight app. No frills.",
		"Sync your contacts and address book across devices. Invite friends from contacts.",
		"Scan QR codes and barcodes with your camera. Take photos and record video.",
		"Record audio voice memos with the microphone. Speech recognition included.",
		"Read SMS text messages and verify code automatically.",
		"Check the weather forecast for nearby cities and your local area.",
		"This game is really fun. Play offline. Location location.",
		"Calendar events, schedule meetings, appointments and reminders.",
		"Sign in with your Google account and sync across devices.",
		"gps",            // single known word: gated, but also sub-support
		"location gps",   // two known words
		"the of and to",  // stopwords only
		"",               // empty
		"Ödüllü uygulama. Konumunuzu takip eder.", // non-English
	}
	a := NewAnalyzer()
	anyMatched := false
	for _, d := range descriptions {
		got, want := a.Analyze(d), a.analyzeUngated(d)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("gate changed analysis of %q:\ngot  %+v\nwant %+v", d, got, want)
		}
		if len(want.Permissions) > 0 {
			anyMatched = true
		}
	}
	if !anyMatched {
		t.Fatal("corpus matched nothing; test is vacuous")
	}
}
