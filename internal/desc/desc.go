// Package desc is the description-analysis module of §III-D (the
// AutoCog role): it maps an app's Google Play description to the
// permissions the description implies, using ESA similarity between the
// description's noun/verb phrases and per-permission semantic profiles,
// and then maps permissions to private information via the sensitive
// tables. Info_desc of the paper is the result.
package desc

import (
	"slices"

	"ppchecker/internal/esa"
	"ppchecker/internal/nlp"
	"ppchecker/internal/sensitive"
)

// profile is the semantic model of one permission: the vocabulary apps
// use when their descriptions motivate that permission.
type profile struct {
	Permission string
	Text       string
}

// profiles lists the modelled permissions (every permission Table III
// exercises plus the other common ones).
var profiles = []profile{
	{sensitive.PermFineLocation,
		`precise location gps navigation route driving directions turn by turn tracking speed running cycling map position coordinates geofence field force location aware tasks`},
	{sensitive.PermCoarseLocation,
		`nearby local area city weather forecast region approximate location around you neighborhood stores restaurants close by`},
	{sensitive.PermReadContacts,
		`contacts address book friends phonebook contact list synchronize contacts birthdays of your contacts invite friends from contacts caller id block calls`},
	{sensitive.PermWriteContacts,
		`add contacts save new contact edit contacts merge duplicate contacts update address book write contacts`},
	{sensitive.PermGetAccounts,
		`sign in with your account google account sync across devices login account backup to account email account profile single sign on`},
	{sensitive.PermReadCalendar,
		`calendar events schedule meetings appointments agenda reminders sync calendar upcoming events planner`},
	{sensitive.PermCamera,
		`camera take photos scan qr code barcode scanner video recording selfie picture capture augmented reality lens`},
	{sensitive.PermRecordAudio,
		`microphone voice recording record audio speech recognition voice commands karaoke sing voice memo dictation`},
	{sensitive.PermReadSMS,
		`read sms text messages inbox verify code backup messages sms organizer`},
	{sensitive.PermPhoneState,
		`caller identification phone state sim card carrier device information imei`},
}

// Result is the description analysis output.
type Result struct {
	// Permissions inferred from the description, in profile order.
	Permissions []string
	// Infos is Info_desc: the information implied by those permissions.
	Infos []sensitive.Info
	// Evidence maps each inferred permission to the description phrase
	// that triggered it.
	Evidence map[string]string
}

// Analyzer maps descriptions to permissions.
type Analyzer struct {
	index     *esa.Index
	threshold float64
	// scope attributes the analyzer's ESA cache events to a per-run
	// stat scope (nil records globally only); see esa.StatScope.
	scope *esa.StatScope
}

// NewAnalyzer returns an analyzer using the default ESA index and the
// paper's 0.67 threshold.
func NewAnalyzer() *Analyzer {
	return &Analyzer{index: esa.Default(), threshold: esa.DefaultThreshold}
}

// WithESAStatScope returns a copy of the analyzer whose ESA cache
// events are additionally counted on sc (the profile-index classify
// calls included). The receiver is not modified.
func (a *Analyzer) WithESAStatScope(sc *esa.StatScope) *Analyzer {
	b := *a
	b.scope = sc
	return &b
}

// profileIndex is a dedicated ESA space over the permission profiles,
// so description phrases project onto permissions directly.
var profileIndex = func() *esa.Index {
	arts := make([]esa.Article, len(profiles))
	for i, p := range profiles {
		arts[i] = esa.Article{Title: p.Permission, Text: p.Text}
	}
	return esa.New(arts)
}()

// Analyze maps a description to permissions and information.
func (a *Analyzer) Analyze(description string) *Result {
	res := &Result{Evidence: map[string]string{}}
	matched := map[string]bool{}
	// One pooled tag buffer serves every sentence: candidate phrases
	// are materialized as fresh strings before the tokens are reused.
	pb := nlp.GetParseBuffer()
	defer pb.Release()
	var ps phraseScratch
	for _, sent := range nlp.SplitSentences(description) {
		// Gate: a sentence holding fewer than two profile-term
		// occurrences cannot yield a phrase with support ≥ 2 (every
		// supporting term, bigrams included, implies known-unigram
		// occurrences in the sentence), so tagging and chunking are
		// skipped. The differential test proves the gate inert.
		if profileIndex.KnownTermCount(sent, 2) < 2 {
			continue
		}
		toks := pb.Tag(sent)
		for _, phrase := range candidatePhrasesInto(&ps, toks) {
			perm, sim, support := profileIndex.ClassifyWithSupportScoped(phrase, a.scope)
			// Two supporting terms are required: a lone generic word
			// that happens to occur in only one profile would otherwise
			// project onto it with cosine 1.0.
			if perm == "" || sim < a.threshold || support < 2 {
				continue
			}
			if !matched[perm] {
				matched[perm] = true
				res.Evidence[perm] = phrase
			}
		}
	}
	infoSet := map[sensitive.Info]bool{}
	for _, p := range profiles {
		if !matched[p.Permission] {
			continue
		}
		res.Permissions = append(res.Permissions, p.Permission)
		for _, info := range sensitive.InfoForPermission(p.Permission) {
			infoSet[info] = true
		}
	}
	if len(infoSet) > 0 {
		res.Infos = make([]sensitive.Info, 0, len(infoSet))
		for info := range infoSet {
			res.Infos = append(res.Infos, info)
		}
		slices.Sort(res.Infos)
	}
	return res
}

// Unjustified returns the requested permissions from the given list
// that the description does not justify — Whyper/AutoCog's original
// question ("locate permissions that cannot be matched by
// descriptions", §VII). Only permissions with a semantic profile are
// judged; unprofiled permissions are skipped rather than accused.
func (a *Analyzer) Unjustified(requested []string, description string) []string {
	res := a.Analyze(description)
	implied := map[string]bool{}
	for _, p := range res.Permissions {
		implied[p] = true
	}
	profiled := map[string]bool{}
	for _, p := range profiles {
		profiled[p.Permission] = true
	}
	var out []string
	for _, perm := range requested {
		if profiled[perm] && !implied[perm] {
			out = append(out, perm)
		}
	}
	return out
}

// phraseScratch holds candidatePhrasesInto's working slices, reused
// across sentences. The phrase strings themselves are always fresh;
// only the containers recycle.
type phraseScratch struct {
	chunks []nlp.Chunk
	out    []string
	buf    []byte
}

// candidatePhrases extracts the phrases to project: noun phrases plus
// verb+object bigrams ("scan barcodes", "record audio").
func candidatePhrases(toks []nlp.Token) []string {
	var ps phraseScratch
	return candidatePhrasesInto(&ps, toks)
}

// candidatePhrasesInto is candidatePhrases building into ps. The
// returned slice aliases ps and is valid until the next call; phrases
// are assembled in one reused scratch buffer, so each costs a single
// allocation regardless of word count.
func candidatePhrasesInto(ps *phraseScratch, toks []nlp.Token) []string {
	chunks := nlp.ChunkNPsInto(ps.chunks[:0], toks)
	ps.chunks = chunks[:0]
	out := ps.out[:0]
	buf := ps.buf
	phrase := func(prefix string, c nlp.Chunk) (string, bool) {
		buf = buf[:0]
		if prefix != "" {
			buf = append(buf, prefix...)
			buf = append(buf, ' ')
		}
		wrote := false
		for i := c.Start; i < c.End; i++ {
			switch toks[i].Tag {
			case nlp.TagDT, nlp.TagPRPS:
				continue
			}
			if wrote {
				buf = append(buf, ' ')
			}
			buf = append(buf, toks[i].Lower...)
			wrote = true
		}
		return string(buf), wrote
	}
	for _, c := range chunks {
		if p, ok := phrase("", c); ok {
			out = append(out, p)
		}
	}
	// verb + object pairs
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].Tag.IsVerb() {
			for _, c := range chunks {
				if c.Start == i+1 || c.Start == i+2 {
					p, _ := phrase(toks[i].Lower, c)
					out = append(out, p)
					break
				}
			}
		}
	}
	ps.out, ps.buf = out, buf
	return out
}
