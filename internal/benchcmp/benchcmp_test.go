package benchcmp

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ppchecker
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCheckSafeSingleApp 	    8904	    138452 ns/op	   55633 B/op	     719 allocs/op
BenchmarkCheckSafeObserved-4  	    9499	    115587 ns/op	   55634 B/op	     719 allocs/op
BenchmarkTableIVInconsistency 	       1	 250000000 ns/op	        89.13 cur-precision-%	        91.11 cur-recall-%
PASS
ok  	ppchecker	8.957s
`

func parseSample(t *testing.T) *Suite {
	t.Helper()
	s, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParse(t *testing.T) {
	s := parseSample(t)
	if len(s.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(s.Results))
	}
	r, ok := s.Results["BenchmarkCheckSafeSingleApp"]
	if !ok {
		t.Fatal("BenchmarkCheckSafeSingleApp missing")
	}
	if r.Iterations != 8904 || r.Cost["ns/op"] != 138452 || r.Cost["B/op"] != 55633 || r.Cost["allocs/op"] != 719 {
		t.Errorf("bad result: %+v", r)
	}
	// The -4 GOMAXPROCS suffix is stripped.
	if _, ok := s.Results["BenchmarkCheckSafeObserved"]; !ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
	tab := s.Results["BenchmarkTableIVInconsistency"]
	if tab.Custom["cur-precision-%"] != 89.13 || tab.Custom["cur-recall-%"] != 91.11 {
		t.Errorf("custom metrics = %v", tab.Custom)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := parseSample(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(s.Results) {
		t.Fatalf("round trip lost results: %d != %d", len(back.Results), len(s.Results))
	}
	if back.Results["BenchmarkTableIVInconsistency"].Custom["cur-precision-%"] != 89.13 {
		t.Error("custom metric lost in round trip")
	}
}

// modify re-parses the sample with one numeric substitution applied.
func modify(t *testing.T, old, new string) *Suite {
	t.Helper()
	s, err := Parse(strings.NewReader(strings.ReplaceAll(sampleOutput, old, new)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompareCostOneSided(t *testing.T) {
	base := parseSample(t)
	// 30% slower: beyond the 20% gate.
	slow := modify(t, "    115587 ns/op", "    150263 ns/op")
	regs := Regressions(Compare(base, slow, 0.20))
	if len(regs) != 1 || regs[0].Bench != "BenchmarkCheckSafeObserved" || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions = %+v, want one ns/op regression", regs)
	}
	// 30% faster: one-sided gate passes.
	fast := modify(t, "    115587 ns/op", "     80911 ns/op")
	if regs := Regressions(Compare(base, fast, 0.20)); len(regs) != 0 {
		t.Errorf("speedup flagged as regression: %+v", regs)
	}
	// Within tolerance.
	ok := modify(t, "    115587 ns/op", "    127000 ns/op")
	if regs := Regressions(Compare(base, ok, 0.20)); len(regs) != 0 {
		t.Errorf("10%% drift flagged: %+v", regs)
	}
}

func TestCompareCustomTwoSided(t *testing.T) {
	base := parseSample(t)
	// Precision *improving* beyond tolerance still fails: the custom
	// metrics are reproduction outcomes, not costs.
	up := modify(t, "89.13 cur-precision-%", "99.99 cur-precision-%")
	regs := Regressions(Compare(base, up, 0.05))
	if len(regs) != 1 || regs[0].Metric != "cur-precision-%" {
		t.Fatalf("regressions = %+v, want cur-precision-%% drift", regs)
	}
	down := modify(t, "89.13 cur-precision-%", "80.00 cur-precision-%")
	if regs := Regressions(Compare(base, down, 0.05)); len(regs) != 1 {
		t.Fatalf("downward drift not flagged: %+v", regs)
	}
}

func TestCompareSkipsOneShotTiming(t *testing.T) {
	base := parseSample(t)
	// The table bench ran once; tripling its wall clock is not a
	// regression because one-shot ns/op is not gated.
	slow := modify(t, " 250000000 ns/op", " 750000000 ns/op")
	if regs := Regressions(Compare(base, slow, 0.20)); len(regs) != 0 {
		t.Errorf("one-shot timing gated: %+v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := parseSample(t)
	cur, err := Parse(strings.NewReader("BenchmarkCheckSafeSingleApp 	 100	 140000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(Compare(base, cur, 0.20))
	missing := 0
	for _, d := range regs {
		if d.Missing {
			missing++
		}
	}
	if missing < 2 {
		t.Errorf("missing benchmarks not flagged: %+v", regs)
	}
}

func TestRenderMarksRegressions(t *testing.T) {
	base := parseSample(t)
	slow := modify(t, "    115587 ns/op", "    150263 ns/op")
	out := Render(Compare(base, slow, 0.20))
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("rendered table lacks REGRESSION marker:\n%s", out)
	}
	if !strings.Contains(out, "+30.0%") {
		t.Errorf("rendered table lacks drift percentage:\n%s", out)
	}
}
