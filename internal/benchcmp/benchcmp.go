// Package benchcmp parses `go test -bench` output and compares two
// runs for regressions. It backs cmd/benchcmp and the CI benchmark
// gate: a run is captured to JSON (BENCH_<rev>.json), compared against
// the committed baseline, and the build fails when a metric drifts
// beyond the tolerance.
//
// Two kinds of metrics are gated differently:
//
//   - cost metrics (ns/op, B/op, allocs/op) gate one-sided: only
//     getting slower or hungrier than baseline×(1+tol) fails. Getting
//     faster silently passes (and suggests refreshing the baseline).
//   - custom metrics (b.ReportMetric: experiment outcomes such as
//     precision percentages or detection counts) gate two-sided: any
//     drift beyond the tolerance fails, because the repository treats
//     benchmark output as the reproduction record of the paper tables.
//
// ns/op is skipped when either run did a single iteration — a
// -benchtime=1x run measures outcomes, not time, and one-shot wall
// clocks are too noisy to gate.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// Cost metrics; absent metrics are omitted from the map. Keys are
	// the go test units: "ns/op", "B/op", "allocs/op".
	Cost map[string]float64 `json:"cost,omitempty"`
	// Custom holds b.ReportMetric values keyed by unit.
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Suite is a parsed benchmark run.
type Suite struct {
	Results map[string]Result `json:"results"`
}

// costUnits are the built-in go test metrics, gated one-sided.
var costUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

// benchLine matches "BenchmarkName[-P] <iters> <value> <unit> ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output. Lines that are not benchmark
// results (the goos/pkg header, PASS, ok) are ignored.
func Parse(r io.Reader) (*Suite, error) {
	s := &Suite{Results: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad iteration count in %q", sc.Text())
		}
		res := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchcmp: odd value/unit fields in %q", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad value %q in %q", fields[i], sc.Text())
			}
			unit := fields[i+1]
			if costUnits[unit] {
				if res.Cost == nil {
					res.Cost = map[string]float64{}
				}
				res.Cost[unit] = v
			} else {
				if res.Custom == nil {
					res.Custom = map[string]float64{}
				}
				res.Custom[unit] = v
			}
		}
		s.Results[res.Name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteJSON stores the suite for use as a baseline.
func (s *Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON loads a stored suite.
func ReadJSON(r io.Reader) (*Suite, error) {
	var s Suite
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	if s.Results == nil {
		s.Results = map[string]Result{}
	}
	return &s, nil
}

// Delta is one compared metric.
type Delta struct {
	Bench  string
	Metric string
	Base   float64
	Cur    float64
	// Regression marks the delta as beyond tolerance under the
	// metric's gating rule.
	Regression bool
	// Missing marks a baseline benchmark absent from the current run.
	Missing bool
}

// Change renders the relative drift.
func (d Delta) Change() string {
	if d.Missing {
		return "missing"
	}
	if d.Base == 0 {
		if d.Cur == 0 {
			return "±0.0%"
		}
		return fmt.Sprintf("%+g (new)", d.Cur)
	}
	return fmt.Sprintf("%+.1f%%", 100*(d.Cur-d.Base)/d.Base)
}

// Compare gates the current run against a baseline. Every baseline
// metric yields a Delta (sorted by bench, then metric); benchmarks
// only in the current run are ignored, benchmarks only in the
// baseline are reported as missing regressions.
func Compare(baseline, current *Suite, tol float64) []Delta {
	var out []Delta
	names := make([]string, 0, len(baseline.Results))
	for name := range baseline.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Results[name]
		cur, ok := current.Results[name]
		if !ok {
			out = append(out, Delta{Bench: name, Regression: true, Missing: true})
			continue
		}
		for _, unit := range sortedKeys(base.Cost) {
			if unit == "ns/op" && (base.Iterations == 1 || cur.Iterations == 1) {
				continue // one-shot wall clock: outcome run, not a timing run
			}
			b, c := base.Cost[unit], cur.Cost[unit]
			out = append(out, Delta{
				Bench: name, Metric: unit, Base: b, Cur: c,
				Regression: c > b*(1+tol),
			})
		}
		for _, unit := range sortedKeys(base.Custom) {
			b := base.Custom[unit]
			c, ok := cur.Custom[unit]
			d := Delta{Bench: name, Metric: unit, Base: b, Cur: c}
			switch {
			case !ok:
				d.Regression, d.Missing = true, true
			case b == 0:
				d.Regression = c != 0
			default:
				drift := (c - b) / b
				d.Regression = drift > tol || drift < -tol
			}
			out = append(out, d)
		}
	}
	return out
}

// Render formats the comparison as an aligned table; regressions are
// marked with "REGRESSION".
func Render(deltas []Delta) string {
	var b strings.Builder
	w := 0
	for _, d := range deltas {
		if n := len(d.Bench) + len(d.Metric); n > w {
			w = n
		}
	}
	for _, d := range deltas {
		label := d.Bench
		if d.Metric != "" {
			label += " " + d.Metric
		}
		fmt.Fprintf(&b, "%-*s  %12g  %12g  %8s", w+1, label, d.Base, d.Cur, d.Change())
		if d.Regression {
			b.WriteString("  REGRESSION")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Regressions filters the failing deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
