// Package report serializes PPChecker reports for machines (JSON) and
// humans (a standalone HTML page). The JSON document is the stable
// integration surface for app stores or CI pipelines consuming
// PPChecker verdicts; the HTML page is what an analyst reads.
package report

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"strings"

	"ppchecker/internal/core"
	"ppchecker/internal/sensitive"
)

// Document is the machine-readable form of a core.Report.
type Document struct {
	App     string `json:"app"`
	Problem bool   `json:"problem"`

	// Partial marks a degraded analysis: the stages in Degraded
	// failed, so findings may be missing (a false "problem": false
	// is possible). Consumers should treat a partial document as
	// inconclusive rather than clean.
	Partial  bool           `json:"partial,omitempty"`
	Degraded []DegradedJSON `json:"degraded,omitempty"`

	Incomplete   []IncompleteJSON   `json:"incomplete,omitempty"`
	Incorrect    []IncorrectJSON    `json:"incorrect,omitempty"`
	Inconsistent []InconsistentJSON `json:"inconsistent,omitempty"`

	// Analysis snapshots for context.
	PolicyCollects     []string `json:"policy_collects,omitempty"`
	PolicyDenies       []string `json:"policy_denies,omitempty"`
	CodeCollects       []string `json:"code_collects,omitempty"`
	CodeRetains        []string `json:"code_retains,omitempty"`
	DescriptionImplies []string `json:"description_implies,omitempty"`
	Libraries          []string `json:"libraries,omitempty"`

	// Timings lists how long each executed pipeline stage took, in
	// execution order, plus the per-app total. Golden-report comparisons
	// normalize this section away (it varies run to run).
	Timings *TimingsJSON `json:"timings,omitempty"`
}

// TimingsJSON is the per-app timing section of a report document.
type TimingsJSON struct {
	TotalMicros int64        `json:"total_us"`
	Stages      []TimingJSON `json:"stages"`
}

// TimingJSON is one stage's measured duration.
type TimingJSON struct {
	Stage  string `json:"stage"`
	Micros int64  `json:"us"`
}

// DegradedJSON is one failed pipeline stage on a partial report.
type DegradedJSON struct {
	Stage     string `json:"stage"`
	Error     string `json:"error"`
	Recovered bool   `json:"recovered,omitempty"`
}

// IncompleteJSON is one missed-information record.
type IncompleteJSON struct {
	Via         string   `json:"via"`
	Info        string   `json:"info"`
	Permissions []string `json:"permissions,omitempty"`
	Retained    bool     `json:"retained,omitempty"`
	Sources     []string `json:"sources,omitempty"`
}

// IncorrectJSON is one contradiction record.
type IncorrectJSON struct {
	Via      string `json:"via"`
	Info     string `json:"info"`
	Category string `json:"category"`
	Sentence string `json:"sentence"`
	Evidence string `json:"evidence"`
}

// InconsistentJSON is one app/lib conflict record.
type InconsistentJSON struct {
	Category    string `json:"category"`
	Resource    string `json:"resource"`
	AppSentence string `json:"app_sentence"`
	Library     string `json:"library"`
	LibSentence string `json:"lib_sentence"`
}

// FromReport converts a core report.
func FromReport(r *core.Report) *Document {
	d := &Document{App: r.App, Problem: r.HasProblem(), Partial: r.Partial}
	for _, e := range r.Degraded {
		msg := ""
		if e.Err != nil {
			msg = e.Err.Error()
		}
		d.Degraded = append(d.Degraded, DegradedJSON{
			Stage: string(e.Stage), Error: msg, Recovered: e.Recovered,
		})
	}
	for _, f := range r.Incomplete {
		d.Incomplete = append(d.Incomplete, IncompleteJSON{
			Via: string(f.Via), Info: string(f.Info),
			Permissions: f.Permissions, Retained: f.Retained,
			Sources: f.Sources,
		})
	}
	for _, f := range r.Incorrect {
		d.Incorrect = append(d.Incorrect, IncorrectJSON{
			Via: string(f.Via), Info: string(f.Info),
			Category: f.Category.String(), Sentence: f.Sentence,
			Evidence: f.Evidence,
		})
	}
	for _, f := range r.Inconsistent {
		d.Inconsistent = append(d.Inconsistent, InconsistentJSON{
			Category: f.Category.String(), Resource: f.Resource,
			AppSentence: f.AppSentence, Library: f.LibName,
			LibSentence: f.LibSentence,
		})
	}
	if r.Policy != nil {
		d.PolicyCollects = r.Policy.All()
		d.PolicyDenies = concat(r.Policy.NotCollect, r.Policy.NotUse,
			r.Policy.NotRetain, r.Policy.NotDisclose)
	}
	if r.Static != nil {
		d.CodeCollects = infosToStrings(r.Static.CollectedInfo())
		d.CodeRetains = infosToStrings(r.Static.RetainedInfo())
	}
	if r.Desc != nil {
		d.DescriptionImplies = infosToStrings(r.Desc.Infos)
	}
	for _, l := range r.Libs {
		d.Libraries = append(d.Libraries, l.Name)
	}
	if len(r.Timings) > 0 {
		ts := &TimingsJSON{TotalMicros: r.TotalDuration().Microseconds()}
		for _, tm := range r.Timings {
			ts.Stages = append(ts.Stages, TimingJSON{
				Stage: string(tm.Stage), Micros: tm.Duration.Microseconds(),
			})
		}
		d.Timings = ts
	}
	return d
}

// WriteJSON emits the document as indented JSON.
func WriteJSON(w io.Writer, r *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromReport(r))
}

// WriteHTML emits a standalone HTML page for the report.
func WriteHTML(w io.Writer, r *core.Report) error {
	d := FromReport(r)
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><title>PPChecker report: %s</title>\n", html.EscapeString(d.App))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 60em; margin: 2em auto; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
.ok { color: #2e7d32; } .bad { color: #c62828; }
li { margin: .3em 0; } code { background: #f2f2f2; padding: 0 .2em; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>PPChecker report: %s</h1>\n", html.EscapeString(d.App))
	if d.Partial {
		var stages []string
		for _, e := range d.Degraded {
			stages = append(stages, e.Stage)
		}
		fmt.Fprintf(&b, `<p class="bad">PARTIAL analysis: stages %s failed; findings may be missing.</p>`+"\n",
			html.EscapeString(strings.Join(stages, ", ")))
	}
	if !d.Problem {
		b.WriteString(`<p class="ok">No problems found: the privacy policy is consistent with the app's description, bytecode, and bundled libraries.</p>`)
	} else {
		b.WriteString(`<p class="bad">The privacy policy is questionable.</p>`)
	}
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n<ul>\n", html.EscapeString(title))
		for _, it := range items {
			fmt.Fprintf(&b, "<li>%s</li>\n", it) // items are pre-escaped
		}
		b.WriteString("</ul>\n")
	}
	var inc []string
	for _, f := range d.Incomplete {
		item := fmt.Sprintf("policy does not mention <b>%s</b> (evidence: %s",
			html.EscapeString(f.Info), html.EscapeString(f.Via))
		if len(f.Permissions) > 0 {
			item += ", implied by <code>" + html.EscapeString(strings.Join(f.Permissions, ", ")) + "</code>"
		}
		item += ")"
		if f.Retained {
			item += " — and the information is retained"
		}
		inc = append(inc, item)
	}
	section("Incomplete policy", inc)
	var incor []string
	for _, f := range d.Incorrect {
		incor = append(incor, fmt.Sprintf("policy says <i>%q</i> but %s",
			html.EscapeString(f.Sentence), html.EscapeString(f.Evidence)))
	}
	section("Incorrect policy", incor)
	var incons []string
	for _, f := range d.Inconsistent {
		incons = append(incons, fmt.Sprintf("app policy <i>%q</i> conflicts with %s policy <i>%q</i> (about <b>%s</b>)",
			html.EscapeString(f.AppSentence), html.EscapeString(f.Library),
			html.EscapeString(f.LibSentence), html.EscapeString(f.Resource)))
	}
	section("Inconsistent with library policies", incons)
	var facts []string
	if len(d.CodeCollects) > 0 {
		facts = append(facts, "code collects: "+html.EscapeString(strings.Join(d.CodeCollects, ", ")))
	}
	if len(d.CodeRetains) > 0 {
		facts = append(facts, "code retains: "+html.EscapeString(strings.Join(d.CodeRetains, ", ")))
	}
	if len(d.DescriptionImplies) > 0 {
		facts = append(facts, "description implies: "+html.EscapeString(strings.Join(d.DescriptionImplies, ", ")))
	}
	if len(d.Libraries) > 0 {
		facts = append(facts, "bundled libraries: "+html.EscapeString(strings.Join(d.Libraries, ", ")))
	}
	section("Analysis facts", facts)
	if d.Timings != nil {
		b.WriteString("<h2>Stage timings</h2>\n<table>\n<tr><th align=\"left\">stage</th><th align=\"right\">µs</th></tr>\n")
		for _, tm := range d.Timings.Stages {
			fmt.Fprintf(&b, "<tr><td><code>%s</code></td><td align=\"right\">%d</td></tr>\n",
				html.EscapeString(tm.Stage), tm.Micros)
		}
		fmt.Fprintf(&b, "<tr><td><b>total</b></td><td align=\"right\"><b>%d</b></td></tr>\n</table>\n",
			d.Timings.TotalMicros)
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func infosToStrings(infos []sensitive.Info) []string {
	out := make([]string, len(infos))
	for i, v := range infos {
		out[i] = string(v)
	}
	return out
}

func concat(ss ...[]string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}
