package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/sensitive"
)

func testHistory() *HistoryDocument {
	v1 := &core.Report{App: "com.example.app"}
	v2 := &core.Report{
		App: "com.example.app",
		Incomplete: []core.IncompleteFinding{{
			Via: core.ViaCode, Info: sensitive.InfoLocation,
		}},
	}
	return HistoryFromReports("com.example.app",
		[]*core.Report{v1, v2, nil},
		[]DriftJSON{{
			FromVersion: 1, ToVersion: 2,
			Class: "silent-behavior-change", Kind: "incomplete",
			Info:        "location <script>",
			Detail:      "v2 introduced a new incomplete finding",
			CodeChanged: true,
		}})
}

func TestHistoryJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistoryJSON(&buf, testHistory()); err != nil {
		t.Fatal(err)
	}
	var got struct {
		App      string            `json:"app"`
		Versions []json.RawMessage `json:"versions"`
		Drift    []DriftJSON       `json:"drift"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	if got.App != "com.example.app" || len(got.Versions) != 3 || len(got.Drift) != 1 {
		t.Fatalf("unexpected shape: app=%q versions=%d drift=%d",
			got.App, len(got.Versions), len(got.Drift))
	}
	if string(got.Versions[2]) != "null" {
		t.Errorf("missing version should serialize as null, got %s", got.Versions[2])
	}
	if got.Drift[0].Class != "silent-behavior-change" || !got.Drift[0].CodeChanged {
		t.Errorf("drift record mangled: %+v", got.Drift[0])
	}
}

func TestHistoryHTMLRendersAndEscapes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistoryHTML(&buf, testHistory()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"PPChecker history: com.example.app",
		"silent-behavior-change",
		"code changed",
		"not analyzed",
		"questionable",
		"clean",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("history page missing %q", want)
		}
	}
	if strings.Contains(page, "<script>") {
		t.Error("drift info not HTML-escaped")
	}
}

func TestHistoryHTMLCleanChain(t *testing.T) {
	h := HistoryFromReports("com.clean.app",
		[]*core.Report{{App: "com.clean.app"}, {App: "com.clean.app"}}, nil)
	var buf bytes.Buffer
	if err := WriteHistoryHTML(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No compliance drift") {
		t.Error("clean chain page missing the all-clear line")
	}
}
