package report

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"strings"

	"ppchecker/internal/core"
)

// HistoryDocument is the machine-readable form of one app's analyzed
// release chain: a per-version report document plus the cross-version
// drift findings. The field shapes are plain so the document does not
// depend on the longitudinal engine's types — the engine converts into
// this form (report is a leaf package).
type HistoryDocument struct {
	App      string      `json:"app"`
	Versions []*Document `json:"versions"`
	Drift    []DriftJSON `json:"drift,omitempty"`
}

// DriftJSON is one cross-version drift finding.
type DriftJSON struct {
	FromVersion int    `json:"from_version"`
	ToVersion   int    `json:"to_version"`
	Class       string `json:"class"`
	Kind        string `json:"kind"`
	Info        string `json:"info"`
	Detail      string `json:"detail"`

	PolicyChanged bool `json:"policy_changed"`
	DescChanged   bool `json:"desc_changed"`
	CodeChanged   bool `json:"code_changed"`
}

// HistoryFromReports builds a history document from per-version core
// reports (index v-1 = version v; a nil report renders as a null
// version) and pre-built drift records.
func HistoryFromReports(app string, versions []*core.Report, drift []DriftJSON) *HistoryDocument {
	h := &HistoryDocument{App: app, Drift: drift}
	for _, r := range versions {
		if r == nil {
			h.Versions = append(h.Versions, nil)
			continue
		}
		h.Versions = append(h.Versions, FromReport(r))
	}
	return h
}

// WriteHistoryJSON emits the history document as indented JSON.
func WriteHistoryJSON(w io.Writer, h *HistoryDocument) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// WriteHistoryHTML emits a standalone HTML page: the drift timeline
// first (that is what a longitudinal analyst came for), then a compact
// per-version verdict table.
func WriteHistoryHTML(w io.Writer, h *HistoryDocument) error {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><title>PPChecker history: %s</title>\n", html.EscapeString(h.App))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 60em; margin: 2em auto; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
.ok { color: #2e7d32; } .bad { color: #c62828; } .warn { color: #e65100; }
li { margin: .3em 0; } code { background: #f2f2f2; padding: 0 .2em; }
table { border-collapse: collapse; } td, th { padding: .2em .6em; border-bottom: 1px solid #ddd; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>PPChecker history: %s (%d versions)</h1>\n",
		html.EscapeString(h.App), len(h.Versions))

	if len(h.Drift) == 0 {
		b.WriteString(`<p class="ok">No compliance drift across the release chain.</p>` + "\n")
	} else {
		fmt.Fprintf(&b, `<p class="bad">%d drift finding(s) across the release chain.</p>`+"\n", len(h.Drift))
		b.WriteString("<h2>Drift timeline</h2>\n<ul>\n")
		for _, d := range h.Drift {
			cls := "bad"
			if d.Class == "resolved" {
				cls = "ok"
			}
			var changed []string
			for _, c := range []struct {
				on   bool
				name string
			}{{d.PolicyChanged, "policy"}, {d.DescChanged, "description"}, {d.CodeChanged, "code"}} {
				if c.on {
					changed = append(changed, c.name)
				}
			}
			delta := "nothing changed"
			if len(changed) > 0 {
				delta = strings.Join(changed, ", ") + " changed"
			}
			fmt.Fprintf(&b, `<li class=%q>v%d&rarr;v%d <b>%s</b>: %s <i>(%s)</i></li>`+"\n",
				cls, d.FromVersion, d.ToVersion,
				html.EscapeString(d.Class), html.EscapeString(d.Detail),
				html.EscapeString(delta))
		}
		b.WriteString("</ul>\n")
	}

	b.WriteString("<h2>Per-version verdicts</h2>\n<table>\n" +
		"<tr><th align=\"left\">version</th><th align=\"left\">verdict</th>" +
		"<th align=\"right\">incomplete</th><th align=\"right\">incorrect</th><th align=\"right\">inconsistent</th></tr>\n")
	for i, d := range h.Versions {
		if d == nil {
			fmt.Fprintf(&b, "<tr><td>v%d</td><td class=\"warn\">not analyzed</td><td></td><td></td><td></td></tr>\n", i+1)
			continue
		}
		verdict, cls := "clean", "ok"
		switch {
		case d.Partial:
			verdict, cls = "partial", "warn"
		case d.Problem:
			verdict, cls = "questionable", "bad"
		}
		fmt.Fprintf(&b, "<tr><td>v%d</td><td class=%q>%s</td><td align=\"right\">%d</td><td align=\"right\">%d</td><td align=\"right\">%d</td></tr>\n",
			i+1, cls, verdict, len(d.Incomplete), len(d.Incorrect), len(d.Inconsistent))
	}
	b.WriteString("</table>\n</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
