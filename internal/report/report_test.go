package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/sensitive"
	"ppchecker/internal/verbs"
)

func sampleReport() *core.Report {
	return &core.Report{
		App: "com.example.app",
		Incomplete: []core.IncompleteFinding{{
			Via: core.ViaCode, Info: sensitive.InfoLocation,
			Retained: true, Sources: []string{"getLatitude()"},
		}},
		Incorrect: []core.IncorrectFinding{{
			Via: core.ViaCode, Info: sensitive.InfoContact,
			Category: verbs.Retain,
			Sentence: "we will not store your contacts",
			Evidence: "the code retains contact",
		}},
		Inconsistent: []core.InconsistencyFinding{{
			Category: verbs.Collect, Resource: "location information",
			AppSentence: "we will not collect your location information",
			LibName:     "Unity3d",
			LibSentence: "we may collect your location information",
		}},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	var d Document
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if d.App != "com.example.app" || !d.Problem {
		t.Fatalf("document = %+v", d)
	}
	if len(d.Incomplete) != 1 || d.Incomplete[0].Info != "location" || !d.Incomplete[0].Retained {
		t.Fatalf("incomplete = %+v", d.Incomplete)
	}
	if len(d.Incorrect) != 1 || d.Incorrect[0].Category != "retain" {
		t.Fatalf("incorrect = %+v", d.Incorrect)
	}
	if len(d.Inconsistent) != 1 || d.Inconsistent[0].Library != "Unity3d" {
		t.Fatalf("inconsistent = %+v", d.Inconsistent)
	}
}

func TestJSONCleanReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &core.Report{App: "clean.app"}); err != nil {
		t.Fatal(err)
	}
	var d Document
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Problem {
		t.Fatal("clean report marked problematic")
	}
	if strings.Contains(buf.String(), `"incomplete"`) {
		t.Fatal("empty sections serialized")
	}
}

func TestHTMLRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "com.example.app", "Incomplete policy",
		"Incorrect policy", "Inconsistent with library policies",
		"Unity3d", "location",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscaping(t *testing.T) {
	r := sampleReport()
	r.App = `<script>alert("x")</script>`
	r.Inconsistent[0].AppSentence = `we <b>never</b> collect & share`
	var buf bytes.Buffer
	if err := WriteHTML(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `<script>alert`) {
		t.Fatal("script injection in HTML output")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Fatal("app name not escaped")
	}
}

func TestHTMLCleanReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, &core.Report{App: "clean.app"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No problems found") {
		t.Fatalf("clean HTML = %s", buf.String())
	}
}
