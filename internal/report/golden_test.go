package report_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppchecker/internal/core"
	"ppchecker/internal/report"
	"ppchecker/internal/synth"
)

// The golden-report suite pins the canonical JSON document produced
// for a representative app of every verdict class. Any change to the
// detectors, the analyzers, or the JSON schema shows up as a byte
// diff against testdata/golden/*.json. After an intentional change,
// regenerate with:
//
//	go test ./internal/report -run TestGoldenReports -update
//
// and review the golden diff like any other code change.
var update = flag.Bool("update", false, "rewrite the golden report files")

// goldenCase selects the first corpus app exhibiting one verdict
// class. Selection is by trait, not by index, so the suite survives
// corpus-plan reshuffles as long as the class still occurs.
type goldenCase struct {
	name string
	pick func(r *core.Report) bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"clean", func(r *core.Report) bool {
			return !r.HasProblem() && len(r.Libs) > 0
		}},
		{"incomplete-description", func(r *core.Report) bool {
			return len(r.IncompleteVia(core.ViaDescription)) > 0
		}},
		{"incomplete-code", func(r *core.Report) bool {
			return len(r.IncompleteVia(core.ViaCode)) > 0
		}},
		{"incorrect", func(r *core.Report) bool {
			return len(r.Incorrect) > 0
		}},
		{"inconsistent-cur", func(r *core.Report) bool {
			for _, f := range r.Inconsistent {
				if !f.Disclose() {
					return true
				}
			}
			return false
		}},
		{"inconsistent-disclose", func(r *core.Report) bool {
			for _, f := range r.Inconsistent {
				if f.Disclose() {
					return true
				}
			}
			return false
		}},
	}
}

// goldenJSON renders the canonical document with the run-varying
// timing section normalized away.
func goldenJSON(t *testing.T, r *core.Report) []byte {
	t.Helper()
	r.Timings = nil
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenReports(t *testing.T) {
	ds, err := synth.Generate(synth.Config{Seed: 11, NumApps: synth.MinApps})
	if err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker()
	reports := make([]*core.Report, len(ds.Apps))
	for i := range ds.Apps {
		reports[i] = checker.Check(ds.Apps[i].App)
	}
	used := make(map[string]bool)
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			// Prefer an app not already pinned by an earlier class so the
			// golden set covers as many distinct documents as possible.
			var rep *core.Report
			for _, r := range reports {
				if tc.pick(r) && (rep == nil || used[rep.App] && !used[r.App]) {
					rep = r
					if !used[r.App] {
						break
					}
				}
			}
			if rep == nil {
				t.Fatalf("no corpus app exhibits the %q verdict class", tc.name)
			}
			used[rep.App] = true
			got := goldenJSON(t, rep)
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%s)", path, rep.App)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/report -run TestGoldenReports -update` to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report for %s diverges from %s:\n%s\nrerun with -update if the change is intentional",
					rep.App, path, firstDiff(string(want), string(got)))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure
// message.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "line " + itoa(i+1) + ":\n  golden: " + w + "\n  got:    " + g
		}
	}
	return "(no line diff; byte-level difference)"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
