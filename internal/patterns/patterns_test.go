package patterns

import (
	"testing"

	"ppchecker/internal/nlp"
	"ppchecker/internal/verbs"
)

func TestSeedPatterns(t *testing.T) {
	seeds := SeedPatterns()
	if len(seeds) != 8 {
		t.Fatalf("seed count = %d, want 8 (4 verbs x active/passive)", len(seeds))
	}
	keys := map[string]bool{}
	for _, p := range seeds {
		if keys[p.Key()] {
			t.Fatalf("duplicate seed key %q", p.Key())
		}
		keys[p.Key()] = true
	}
	if !keys["active:collect"] || !keys["passive:use"] {
		t.Fatalf("expected canonical seed keys, got %v", keys)
	}
}

func TestExtractSVO(t *testing.T) {
	p := nlp.ParseSentence("we will collect your location")
	cands := Extract(p)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	c := cands[0]
	if c.Pattern.Key() != "active:collect" {
		t.Fatalf("pattern = %q", c.Pattern.Key())
	}
	if p.Tokens[c.Resource].Lower != "location" {
		t.Fatalf("resource = %q", p.Tokens[c.Resource].Lower)
	}
}

func TestExtractPassive(t *testing.T) {
	p := nlp.ParseSentence("your personal information will be used")
	cands := Extract(p)
	if len(cands) != 1 || cands[0].Pattern.Key() != "passive:use" {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestExtractAllowedPath(t *testing.T) {
	p := nlp.ParseSentence("we are allowed to access your personal information")
	cands := Extract(p)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if got := cands[0].Pattern.Key(); got != "active:allow-access" {
		t.Fatalf("pattern = %q, want active:allow-access", got)
	}
}

func TestExtractPurposePath(t *testing.T) {
	p := nlp.ParseSentence("we use gps to get your location")
	cands := Extract(p)
	// Two candidates: (use, gps) and (use→get, location).
	var keys []string
	for _, c := range cands {
		keys = append(keys, c.Pattern.Key())
	}
	want := map[string]bool{"active:use": false, "active:use-get": false}
	for _, k := range keys {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing candidate %q in %v", k, keys)
		}
	}
}

func TestDefaultMatcherCoversTableII(t *testing.T) {
	m := DefaultMatcher()
	sentences := []string{
		"we are able to collect location information",        // P4 (table II P1 sample)
		"your personal information will be used",             // P2
		"we are allowed to access your personal information", // P3
		"we will use your personal information",              // P1
		"we use gps to get your location",                    // P5
	}
	for _, s := range sentences {
		p := nlp.ParseSentence(s)
		if !m.Useful(p) {
			t.Errorf("sentence not matched: %q", s)
		}
	}
	for _, s := range []string{
		"we encourage you to review the privacy practices",
		"this policy describes our practices",
		"the weather is nice",
	} {
		p := nlp.ParseSentence(s)
		if ms := m.MatchParse(p); len(ms) > 0 {
			t.Errorf("irrelevant sentence matched: %q -> %+v", s, ms[0].Pattern.Key())
		}
	}
}

func TestMatchCategory(t *testing.T) {
	m := DefaultMatcher()
	cases := map[string]verbs.Category{
		"we will collect your location":               verbs.Collect,
		"we will use your personal information":       verbs.Use,
		"we will store your phone number":             verbs.Retain,
		"we will share your information with parties": verbs.Disclose,
	}
	for s, want := range cases {
		ms := m.MatchParse(nlp.ParseSentence(s))
		if len(ms) == 0 {
			t.Errorf("no match for %q", s)
			continue
		}
		if ms[0].Category != want {
			t.Errorf("category of %q = %v, want %v", s, ms[0].Category, want)
		}
	}
}

func TestMinerBootstrapFindsNewPattern(t *testing.T) {
	// Corpus: seed-matching sentences establish "we" and "location" /
	// "information" as frequent subject/object; a non-seed verb phrase
	// then yields a new pattern, as in Fig. 7 of the paper.
	corpus := ParseCorpus([]string{
		"we will collect location",
		"we collect your location",
		"we will use your information",
		"we will disclose your information",
		"we retain location",
		"we are allowed to access location", // new pattern source
		"we are allowed to access your information",
	})
	m := NewMiner()
	pats := m.Mine(corpus)
	found := false
	for _, p := range pats {
		if p.Key() == "active:allow-access" {
			found = true
		}
	}
	if !found {
		var ks []string
		for _, p := range pats {
			ks = append(ks, p.Key())
		}
		t.Fatalf("bootstrap did not find allow-access; got %v", ks)
	}
}

func TestMinerBlacklistsBlockDrift(t *testing.T) {
	corpus := ParseCorpus([]string{
		"we will collect location",
		"we collect your location",
		"you can share your location",  // subject blacklist
		"we have your location",        // verb blacklist
		"we will improve our services", // object blacklist
	})
	m := NewMiner()
	pats := m.Mine(corpus)
	for _, p := range pats {
		switch p.Key() {
		case "active:have", "active:improve":
			t.Fatalf("blacklisted pattern mined: %q", p.Key())
		}
	}
}

func TestRankOrdersByScore(t *testing.T) {
	pos := ParseCorpus([]string{
		"we will collect your location",
		"we collect your contacts",
		"we will use your information",
		"we are allowed to access your information",
	})
	neg := ParseCorpus([]string{
		"we will improve the service",
		"we offer new features",
	})
	pats := []Pattern{
		{Path: []string{"collect"}},
		{Path: []string{"allow", "access"}},
		{Path: []string{"improve"}}, // matches only negatives
	}
	scored := Rank(pats, pos, neg)
	if scored[0].Pattern.Key() != "active:collect" {
		t.Fatalf("best pattern = %q", scored[0].Pattern.Key())
	}
	last := scored[len(scored)-1]
	if last.Pattern.Key() != "active:improve" {
		t.Fatalf("worst pattern = %q", last.Pattern.Key())
	}
	if last.Score >= scored[0].Score {
		t.Fatalf("scores not ordered: %v", scored)
	}
	top := TopN(scored, 2)
	if len(top) != 2 {
		t.Fatalf("TopN = %d", len(top))
	}
}

func TestRankAccConfFormulas(t *testing.T) {
	pos := ParseCorpus([]string{
		"we will collect your location",
		"we collect your contacts",
	})
	neg := ParseCorpus([]string{
		"we collect feedback", // matches collect pattern: a negative hit
		"the weather is nice", // unmatched by every pattern -> unk
	})
	pats := []Pattern{{Path: []string{"collect"}}}
	scored := Rank(pats, pos, neg)
	s := scored[0]
	if s.Pos != 2 || s.Neg != 1 {
		t.Fatalf("pos/neg = %d/%d, want 2/1", s.Pos, s.Neg)
	}
	if s.Unk != 1 {
		t.Fatalf("unk = %d, want 1", s.Unk)
	}
	wantAcc := 2.0 / 3.0
	if diff := s.Acc - wantAcc; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("acc = %v, want %v", s.Acc, wantAcc)
	}
	wantConf := (2.0 - 1.0) / (2.0 + 1.0 + 1.0)
	if diff := s.Conf - wantConf; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("conf = %v, want %v", s.Conf, wantConf)
	}
}

func TestMineMatcherEndToEnd(t *testing.T) {
	corpus := []string{
		"we will collect your location",
		"we collect your contacts",
		"we are allowed to access your information",
		"we are allowed to access your location",
		"we will use your information",
		"your location will be stored",
		"we will improve the service",
		"please contact our support team",
	}
	positive := []string{
		"we will collect your location",
		"we are allowed to access your contacts",
		"your information will be stored",
	}
	negative := []string{
		"we will improve the service",
		"the weather is nice",
	}
	m := MineMatcher(corpus, positive, negative, 10)
	if m.Len() == 0 {
		t.Fatal("no patterns mined")
	}
	for _, s := range positive {
		if !m.Useful(nlp.ParseSentence(s)) {
			t.Errorf("mined matcher misses positive %q", s)
		}
	}
	for _, s := range negative {
		if m.Useful(nlp.ParseSentence(s)) {
			t.Errorf("mined matcher matches negative %q", s)
		}
	}
	// A tiny top-n starves rare patterns (high FN), demonstrating the
	// Fig. 12 axis.
	tiny := MineMatcher(corpus, positive, negative, 1)
	misses := 0
	for _, s := range positive {
		if !tiny.Useful(nlp.ParseSentence(s)) {
			misses++
		}
	}
	if misses == 0 {
		t.Error("top-1 matcher unexpectedly covers every positive")
	}
}

func TestPatternStringAndActionVerb(t *testing.T) {
	p := Pattern{Path: []string{"allow", "access"}}
	if got := p.String(); got != "sbj-allow-access-obj" {
		t.Fatalf("String = %q", got)
	}
	if got := p.ActionVerb(); got != "access" {
		t.Fatalf("ActionVerb = %q", got)
	}
	pp := Pattern{Path: []string{"use"}, Passive: true}
	if got := pp.String(); got != "obj-use (passive)" {
		t.Fatalf("passive String = %q", got)
	}
	junk := Pattern{Path: []string{"offer"}}
	if got := junk.ActionVerb(); got != "" {
		t.Fatalf("junk ActionVerb = %q", got)
	}
}

func TestExtendedMatcherCoversSynonyms(t *testing.T) {
	m := ExtendedMatcher()
	if m.Len() <= DefaultMatcher().Len() {
		t.Fatal("extended matcher not larger than default")
	}
	p := nlp.ParseSentence("we will not display any of your personal information")
	ms := m.MatchParse(p)
	if len(ms) == 0 {
		t.Fatal("display sentence unmatched by extended matcher")
	}
	if ms[0].Category != verbs.Disclose {
		t.Fatalf("category = %v", ms[0].Category)
	}
}

func TestMinerIterationBound(t *testing.T) {
	m := NewMiner()
	m.MaxIterations = 1
	corpus := ParseCorpus([]string{
		"we will collect location",
		"we are allowed to access location",
	})
	// Must terminate promptly even with a tiny bound.
	if pats := m.Mine(corpus); len(pats) < 8 {
		t.Fatalf("patterns = %d", len(pats))
	}
}
