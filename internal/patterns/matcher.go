package patterns

import (
	"ppchecker/internal/nlp"
	"ppchecker/internal/verbs"
)

// Matcher selects useful sentences with a fixed pattern set (§III-B
// Step 4). It is immutable after construction and safe for concurrent
// use.
type Matcher struct {
	keys map[string]Pattern
	// categorize maps a verb to its category; defaults to
	// verbs.CategoryOf.
	categorize func(string) verbs.Category
}

// NewMatcher builds a matcher over the given patterns.
func NewMatcher(pats []Pattern) *Matcher {
	return NewMatcherWithCategories(pats, verbs.CategoryOf)
}

// NewMatcherWithCategories builds a matcher with a custom verb
// categorizer (the synonym-expansion extension injects
// verbs.ExtendedCategoryOf here).
func NewMatcherWithCategories(pats []Pattern, categorize func(string) verbs.Category) *Matcher {
	m := &Matcher{keys: make(map[string]Pattern, len(pats)), categorize: categorize}
	for _, p := range pats {
		m.keys[p.Key()] = p
	}
	return m
}

// DefaultMatcher returns a matcher over the five table-II pattern
// families realized with the category verbs: active voice, passive
// voice, "allowed to V", "able to V", and purpose expressions. It is
// the matcher used when no mined pattern set is supplied.
func DefaultMatcher() *Matcher {
	var pats []Pattern
	for _, v := range verbs.Lemmas() {
		pats = append(pats,
			Pattern{Path: []string{v}},                // P1 active
			Pattern{Path: []string{v}, Passive: true}, // P2 passive
			Pattern{Path: []string{"allow", v}},       // P3 allowed
			Pattern{Path: []string{"permit", v}},      // P3 variant
			Pattern{Path: []string{"able", v}},        // P4 able
		)
		// P5 purpose: a use-category verb whose purpose clause carries a
		// category verb ("we use gps to get your location").
		for _, u := range verbs.UseVerbs {
			pats = append(pats, Pattern{Path: []string{u, v}})
		}
	}
	return NewMatcher(pats)
}

// ExtendedMatcher is DefaultMatcher with the synonym verb lists of the
// paper's future-work extension: the pattern families are realized
// over the extended lemma set and classified with
// verbs.ExtendedCategoryOf, recovering the "display"-style false
// negatives.
func ExtendedMatcher() *Matcher {
	var pats []Pattern
	for _, v := range verbs.ExtendedLemmas() {
		pats = append(pats,
			Pattern{Path: []string{v}},
			Pattern{Path: []string{v}, Passive: true},
			Pattern{Path: []string{"allow", v}},
			Pattern{Path: []string{"permit", v}},
			Pattern{Path: []string{"able", v}},
		)
		for _, u := range verbs.UseVerbs {
			pats = append(pats, Pattern{Path: []string{u, v}})
		}
	}
	return NewMatcherWithCategories(pats, verbs.ExtendedCategoryOf)
}

// Len returns the number of patterns in the matcher.
func (m *Matcher) Len() int { return len(m.keys) }

// Match is a matched candidate in a sentence.
type Match struct {
	Candidate
	// Category of the verb governing the resource.
	Category verbs.Category
}

// MatchParse returns all candidates of the parse realized by a pattern
// in the set. A sentence with at least one match is a "useful sentence".
func (m *Matcher) MatchParse(p *nlp.Parse) []Match {
	var out []Match
	for _, c := range Extract(p) {
		pat, ok := m.keys[c.Pattern.Key()]
		if !ok {
			continue
		}
		cat := m.categorize(p.Tokens[c.Verb].Lower)
		if cat == verbs.None {
			cat = m.categorize(pat.ActionVerb())
		}
		out = append(out, Match{Candidate: c, Category: cat})
	}
	return out
}

// Useful reports whether the sentence parse matches any pattern.
func (m *Matcher) Useful(p *nlp.Parse) bool {
	for _, c := range Extract(p) {
		if _, ok := m.keys[c.Pattern.Key()]; ok {
			return true
		}
	}
	return false
}
