package patterns

import (
	"sync"

	"ppchecker/internal/actrie"
	"ppchecker/internal/nlp"
	"ppchecker/internal/verbs"
)

// Matcher selects useful sentences with a fixed pattern set (§III-B
// Step 4). It is immutable after construction and safe for concurrent
// use.
type Matcher struct {
	// Patterns are looked up by shape without building a string key:
	// one/two hold the overwhelmingly common path lengths, rest falls
	// back to the canonical Key() form.
	one  map[key1]Pattern
	two  map[key2]Pattern
	rest map[string]Pattern
	n    int
	// categorize maps a verb to its category; defaults to
	// verbs.CategoryOf.
	categorize func(string) verbs.Category
	// prefilter is a token-boundary Aho-Corasick automaton over the
	// surface forms of every pattern's first path element. A sentence
	// with no hit cannot realize any pattern, so parsing is skipped.
	// nil disables the prefilter (empty pattern set or an empty path).
	prefilter *actrie.Automaton
}

type key1 struct {
	passive bool
	a       string
}

type key2 struct {
	passive bool
	a, b    string
}

// NewMatcher builds a matcher over the given patterns.
func NewMatcher(pats []Pattern) *Matcher {
	return NewMatcherWithCategories(pats, verbs.CategoryOf)
}

// NewMatcherWithCategories builds a matcher with a custom verb
// categorizer (the synonym-expansion extension injects
// verbs.ExtendedCategoryOf here).
func NewMatcherWithCategories(pats []Pattern, categorize func(string) verbs.Category) *Matcher {
	m := &Matcher{
		one:        map[key1]Pattern{},
		two:        map[key2]Pattern{},
		rest:       map[string]Pattern{},
		categorize: categorize,
	}
	b := actrie.NewBuilder(true)
	filterable := true
	seenFirst := map[string]bool{}
	for _, p := range pats {
		switch len(p.Path) {
		case 0:
			filterable = false
			m.rest[p.Key()] = p
		case 1:
			m.one[key1{p.Passive, p.Path[0]}] = p
		case 2:
			m.two[key2{p.Passive, p.Path[0], p.Path[1]}] = p
		default:
			m.rest[p.Key()] = p
		}
		if len(p.Path) > 0 && !seenFirst[p.Path[0]] {
			seenFirst[p.Path[0]] = true
			for _, f := range nlp.SurfaceForms(p.Path[0]) {
				b.Add(f, 1)
			}
		}
	}
	m.n = len(m.one) + len(m.two) + len(m.rest)
	if filterable && b.Len() > 0 {
		m.prefilter = b.Build()
	}
	return m
}

// lookup finds the matcher's pattern equal to p without allocating.
func (m *Matcher) lookup(p Pattern) (Pattern, bool) {
	switch len(p.Path) {
	case 1:
		pat, ok := m.one[key1{p.Passive, p.Path[0]}]
		return pat, ok
	case 2:
		pat, ok := m.two[key2{p.Passive, p.Path[0], p.Path[1]}]
		return pat, ok
	default:
		pat, ok := m.rest[p.Key()]
		return pat, ok
	}
}

// DefaultMatcher returns the shared matcher over the five table-II
// pattern families realized with the category verbs: active voice,
// passive voice, "allowed to V", "able to V", and purpose expressions.
// It is the matcher used when no mined pattern set is supplied, built
// once per process (matchers are immutable).
func DefaultMatcher() *Matcher {
	defaultOnce.Do(func() {
		defaultMatcher = NewMatcher(familyPatterns(verbs.Lemmas()))
	})
	return defaultMatcher
}

// ExtendedMatcher is DefaultMatcher with the synonym verb lists of the
// paper's future-work extension: the pattern families are realized
// over the extended lemma set and classified with
// verbs.ExtendedCategoryOf, recovering the "display"-style false
// negatives. Built once per process.
func ExtendedMatcher() *Matcher {
	extendedOnce.Do(func() {
		extendedMatcher = NewMatcherWithCategories(
			familyPatterns(verbs.ExtendedLemmas()), verbs.ExtendedCategoryOf)
	})
	return extendedMatcher
}

var (
	defaultOnce     sync.Once
	defaultMatcher  *Matcher
	extendedOnce    sync.Once
	extendedMatcher *Matcher
)

// familyPatterns realizes the five table-II pattern families over a
// lemma set.
func familyPatterns(lemmas []string) []Pattern {
	var pats []Pattern
	for _, v := range lemmas {
		pats = append(pats,
			Pattern{Path: []string{v}},                // P1 active
			Pattern{Path: []string{v}, Passive: true}, // P2 passive
			Pattern{Path: []string{"allow", v}},       // P3 allowed
			Pattern{Path: []string{"permit", v}},      // P3 variant
			Pattern{Path: []string{"able", v}},        // P4 able
		)
		// P5 purpose: a use-category verb whose purpose clause carries a
		// category verb ("we use gps to get your location").
		for _, u := range verbs.UseVerbs {
			pats = append(pats, Pattern{Path: []string{u, v}})
		}
	}
	return pats
}

// Len returns the number of patterns in the matcher.
func (m *Matcher) Len() int { return m.n }

// CouldMatch reports whether the sentence text can contain a pattern
// realization at all. Every candidate path element is the lemma of a
// sentence token, so a sentence with no token lemmatizing to any
// pattern's first path element cannot match — callers skip the parse
// entirely. False positives are expected (it is a prefilter); false
// negatives are impossible (see nlp.SurfaceForms).
func (m *Matcher) CouldMatch(sentence string) bool {
	if m.prefilter == nil {
		return true
	}
	return m.prefilter.HasToken(sentence)
}

// Match is a matched candidate in a sentence.
type Match struct {
	Candidate
	// Category of the verb governing the resource.
	Category verbs.Category
}

// MatchParse returns all candidates of the parse realized by a pattern
// in the set. A sentence with at least one match is a "useful sentence".
func (m *Matcher) MatchParse(p *nlp.Parse) []Match {
	var out []Match
	for _, c := range Extract(p) {
		pat, ok := m.lookup(c.Pattern)
		if !ok {
			continue
		}
		cat := m.categorize(p.Tokens[c.Verb].Lower)
		if cat == verbs.None {
			cat = m.categorize(pat.ActionVerb())
		}
		out = append(out, Match{Candidate: c, Category: cat})
	}
	return out
}

// Useful reports whether the sentence parse matches any pattern.
func (m *Matcher) Useful(p *nlp.Parse) bool {
	for _, c := range Extract(p) {
		if _, ok := m.lookup(c.Pattern); ok {
			return true
		}
	}
	return false
}
