// Package patterns implements the pattern machinery of §III-B Steps 3–4
// of the paper: the seed subject-verb-object pattern, the enhanced
// bootstrapping miner that discovers new dependency-path patterns from a
// policy corpus, the accuracy/confidence scoring used to rank them, and
// the matcher that selects useful sentences.
package patterns

import (
	"strings"

	"ppchecker/internal/nlp"
	"ppchecker/internal/verbs"
)

// Pattern is a dependency-path pattern: the lemma sequence on the
// shortest path between a sentence's subject and a resource noun phrase
// (endpoints excluded), plus a passive marker for subjectless passive
// realizations ("your information will be used").
type Pattern struct {
	Path    []string
	Passive bool
}

// Key returns a canonical string identity for the pattern.
func (p Pattern) Key() string {
	k := strings.Join(p.Path, "-")
	if p.Passive {
		return "passive:" + k
	}
	return "active:" + k
}

// String renders the pattern in the paper's notation, e.g.
// "sbj-allow-access-obj".
func (p Pattern) String() string {
	if p.Passive {
		return "obj-" + strings.Join(p.Path, "-") + " (passive)"
	}
	return "sbj-" + strings.Join(p.Path, "-") + "-obj"
}

// ActionVerb returns the lemma of the pattern's governing action verb:
// the last path element belonging to a main-verb category, or "".
func (p Pattern) ActionVerb() string {
	for i := len(p.Path) - 1; i >= 0; i-- {
		if verbs.IsMainVerb(p.Path[i]) {
			return p.Path[i]
		}
	}
	return ""
}

// SeedPatterns returns the seed set: the active SVO pattern and its
// passive-voice counterpart for each initial verb (§III-B Step 3 uses
// collect/use/retain/disclose as initial verbs).
func SeedPatterns() []Pattern {
	initial := []string{"collect", "use", "retain", "disclose"}
	out := make([]Pattern, 0, len(initial)*2)
	for _, v := range initial {
		out = append(out, Pattern{Path: []string{v}})
		out = append(out, Pattern{Path: []string{v}, Passive: true})
	}
	return out
}

// Candidate is one (subject, resource) realization found in a parsed
// sentence, with the dependency path between them.
type Candidate struct {
	Pattern Pattern
	// Verb is the token index of the verb governing the resource (the
	// verb whose category classifies the sentence).
	Verb int
	// Resource is the token index of the resource NP head.
	Resource int
	// Subject is the token index of the sentence subject, or -1.
	Subject int
}

// Extract enumerates the pattern candidates of a parse: for each
// resource site (direct objects of the root, of an xcomp, of purpose
// clauses, prepositional objects of the root, or the passive subject)
// the path from the subject is computed.
func Extract(p *nlp.Parse) []Candidate {
	if p == nil || p.Root < 0 {
		return nil
	}
	var cands []Candidate
	subj := p.Subject(p.Root)
	passive := p.IsPassive(p.Root)

	addActive := func(verb, res int) {
		if subj < 0 || res < 0 {
			return
		}
		path := p.PathBetween(subj, res)
		if len(path) == 0 {
			return
		}
		pat := Pattern{Path: path}
		cands = append(cands, Candidate{
			Pattern: pat, Verb: verb, Resource: res, Subject: subj,
		})
		// Conjoined siblings share the governor's pattern: in "we
		// collect your location and your device id", the id candidate
		// realizes the same sbj-collect-obj pattern as location.
		var walk func(int)
		walk = func(o int) {
			for _, sib := range p.Dependents(o, nlp.RelConj) {
				if !p.Tokens[sib].Tag.IsVerb() {
					cands = append(cands, Candidate{
						Pattern: pat, Verb: verb, Resource: sib, Subject: subj,
					})
					walk(sib)
				}
			}
		}
		walk(res)
	}

	// Passive realization: the patient is the subject itself, plus any
	// conjoined siblings ("your name and contacts will be collected").
	if passive && subj >= 0 && p.Xcomp(p.Root) < 0 {
		pat := Pattern{Path: []string{nlp.Lemma(p.Tokens[p.Root].Lower)}, Passive: true}
		cands = append(cands, Candidate{
			Pattern: pat, Verb: p.Root, Resource: subj, Subject: -1,
		})
		for _, sib := range p.Dependents(subj, nlp.RelConj) {
			if !p.Tokens[sib].Tag.IsVerb() {
				cands = append(cands, Candidate{
					Pattern: pat, Verb: p.Root, Resource: sib, Subject: -1,
				})
			}
		}
	}

	// Active sites.
	verbsToScan := []int{p.Root}
	if x := p.Xcomp(p.Root); x >= 0 {
		verbsToScan = append(verbsToScan, x)
	}
	verbsToScan = append(verbsToScan, p.Advcl(p.Root)...)
	for _, cv := range p.ConjVerbs(p.Root) {
		verbsToScan = append(verbsToScan, cv)
	}
	seen := map[int]bool{}
	for _, v := range verbsToScan {
		if v < 0 || seen[v] {
			continue
		}
		seen[v] = true
		for _, o := range p.Dependents(v, nlp.RelDobj) {
			addActive(v, o)
		}
	}
	return cands
}
