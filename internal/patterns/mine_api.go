package patterns

// MineMatcher runs the full §III-B Step 3–4 pipeline: bootstrap
// patterns from a policy-sentence corpus, rank them against labelled
// positive/negative sentence sets, keep the top n, and build a matcher
// from them. It is how a deployment trains PPChecker's sentence
// selector on its own corpus; the library default (DefaultMatcher)
// covers the common pattern families without training.
func MineMatcher(corpus, positive, negative []string, n int) *Matcher {
	parsed := ParseCorpus(corpus)
	pats := NewMiner().Mine(parsed)
	scored := Rank(pats, ParseCorpus(positive), ParseCorpus(negative))
	return NewMatcher(TopN(scored, n))
}
