package patterns

import (
	"testing"

	"ppchecker/internal/verbs"
)

func TestCouldMatch(t *testing.T) {
	m := DefaultMatcher()
	for _, sent := range []string{
		"we may collect your location.",
		"your data will be shared with partners.",
		"we are tracking usage statistics.", // inflected form
		"data is stored on our servers.",
	} {
		if !m.CouldMatch(sent) {
			t.Errorf("CouldMatch(%q) = false", sent)
		}
	}
	for _, sent := range []string{
		"please review this policy carefully.",
		"the user profile page is colourful.", // "use" inside "user" must not fire
		"our reuse-friendly misuse of words.", // no token boundary
		"",
	} {
		if m.CouldMatch(sent) {
			t.Errorf("CouldMatch(%q) = true", sent)
		}
	}
}

func TestCouldMatchDisabledByEmptyPath(t *testing.T) {
	m := NewMatcher([]Pattern{{Path: []string{"collect"}}, {Path: nil}})
	if !m.CouldMatch("entirely unrelated text") {
		t.Fatal("prefilter must be disabled when a pattern has an empty path")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestLookupShapes(t *testing.T) {
	long := Pattern{Path: []string{"allow", "use", "share"}}
	pats := []Pattern{
		{Path: []string{"collect"}},
		{Path: []string{"collect"}, Passive: true},
		{Path: []string{"allow", "use"}},
		long,
	}
	m := NewMatcher(pats)
	if m.Len() != len(pats) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(pats))
	}
	for _, p := range pats {
		got, ok := m.lookup(p)
		if !ok || got.Key() != p.Key() {
			t.Errorf("lookup(%v) = %v, %v", p, got, ok)
		}
	}
	for _, p := range []Pattern{
		{Path: []string{"use"}},
		{Path: []string{"allow", "use"}, Passive: true},
		{Path: []string{"allow", "use", "keep"}},
		{Path: nil},
	} {
		if _, ok := m.lookup(p); ok {
			t.Errorf("lookup(%v) unexpectedly hit", p)
		}
	}
}

func TestStockMatchersMemoizedAndEquivalent(t *testing.T) {
	if DefaultMatcher() != DefaultMatcher() || ExtendedMatcher() != ExtendedMatcher() {
		t.Fatal("stock matchers must be shared")
	}
	// The memoized default has the same pattern set as a fresh build.
	fresh := NewMatcher(familyPatterns(verbs.Lemmas()))
	if fresh.Len() != DefaultMatcher().Len() {
		t.Fatalf("fresh %d patterns, memoized %d", fresh.Len(), DefaultMatcher().Len())
	}
}
