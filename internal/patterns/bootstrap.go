package patterns

import (
	"math"
	"sort"

	"ppchecker/internal/nlp"
)

// Miner discovers new patterns from a corpus by bootstrapping from the
// seed SVO pattern (§III-B Step 3). The three blacklists implement the
// paper's semantic-drift enhancement.
type Miner struct {
	// SubjectBlacklist removes sentences describing the app's users
	// rather than the app ("you", "user", "visitor").
	SubjectBlacklist map[string]bool
	// VerbBlacklist removes path verbs unrelated to the four behaviours
	// ("have", "make", ...).
	VerbBlacklist map[string]bool
	// ObjectBlacklist discards resources that are not personal
	// information ("services", ...).
	ObjectBlacklist map[string]bool
	// MaxIterations bounds the bootstrap loop; the loop normally stops
	// at a fixpoint well before this.
	MaxIterations int
}

// NewMiner returns a miner configured with the paper's blacklists.
func NewMiner() *Miner {
	return &Miner{
		SubjectBlacklist: map[string]bool{
			"you": true, "user": true, "users": true, "visitor": true,
			"visitors": true, "customer": true, "customers": true,
			"child": true, "children": true,
		},
		VerbBlacklist: map[string]bool{
			"have": true, "make": true, "do": true, "be": true,
			"see": true, "know": true, "want": true, "need": true,
			"go": true, "come": true, "say": true, "think": true,
			"agree": true, "visit": true, "click": true, "contact": true,
			"review": true, "encourage": true,
		},
		ObjectBlacklist: map[string]bool{
			"service": true, "services": true, "website": true,
			"websites": true, "site": true, "page": true, "pages": true,
			"agreement": true, "terms": true, "policy": true,
			"policies": true, "question": true, "questions": true,
			"feature": true, "features": true, "support": true,
			"right": true, "rights": true, "step": true, "steps": true,
			"time": true, "experience": true, "product": true,
			"products": true, "app": true, "application": true,
		},
		MaxIterations: 10,
	}
}

// ParsedSentence pairs a sentence with its parse so corpus passes do
// not re-parse.
type ParsedSentence struct {
	Text  string
	Parse *nlp.Parse
}

// ParseCorpus parses every sentence once.
func ParseCorpus(sentences []string) []ParsedSentence {
	out := make([]ParsedSentence, 0, len(sentences))
	for _, s := range sentences {
		out = append(out, ParsedSentence{Text: s, Parse: nlp.ParseSentence(s)})
	}
	return out
}

// Mine bootstraps patterns from the corpus. It returns all discovered
// patterns (seeds first, then new patterns in discovery order).
func (m *Miner) Mine(corpus []ParsedSentence) []Pattern {
	pats := SeedPatterns()
	known := map[string]bool{}
	for _, p := range pats {
		known[p.Key()] = true
	}
	for iter := 0; iter < m.MaxIterations; iter++ {
		subjList, objList := m.harvest(corpus, known)
		added := false
		for _, ps := range corpus {
			for _, c := range Extract(ps.Parse) {
				if known[c.Pattern.Key()] {
					continue
				}
				if !m.admissible(ps.Parse, c, subjList, objList) {
					continue
				}
				known[c.Pattern.Key()] = true
				pats = append(pats, c.Pattern)
				added = true
			}
		}
		if !added {
			break
		}
	}
	return pats
}

// harvest collects the subjects and object heads of sentences matched by
// the current pattern set and keeps those with frequency above the
// median (§III-B Step 3, Fig. 7).
func (m *Miner) harvest(corpus []ParsedSentence, known map[string]bool) (subj, obj map[string]bool) {
	subjFreq := map[string]int{}
	objFreq := map[string]int{}
	for _, ps := range corpus {
		for _, c := range Extract(ps.Parse) {
			if !known[c.Pattern.Key()] {
				continue
			}
			if c.Subject >= 0 {
				subjFreq[ps.Parse.Tokens[c.Subject].Lower]++
			}
			if c.Resource >= 0 {
				objFreq[ps.Parse.Tokens[c.Resource].Lower]++
			}
		}
	}
	return aboveMedian(subjFreq), aboveMedian(objFreq)
}

// aboveMedian keeps entries whose frequency is >= the median frequency
// (ties included so singleton corpora still seed the lists).
func aboveMedian(freq map[string]int) map[string]bool {
	if len(freq) == 0 {
		return map[string]bool{}
	}
	vals := make([]int, 0, len(freq))
	for _, v := range freq {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	med := vals[len(vals)/2]
	out := make(map[string]bool, len(freq))
	for k, v := range freq {
		if v >= med {
			out[k] = true
		}
	}
	return out
}

// admissible applies the paper's three blacklists plus structural
// sanity to a candidate new pattern.
func (m *Miner) admissible(p *nlp.Parse, c Candidate, subjList, objList map[string]bool) bool {
	// Subject must be a harvested subject and not blacklisted.
	if c.Subject >= 0 {
		sw := p.Tokens[c.Subject].Lower
		if m.SubjectBlacklist[sw] {
			return false
		}
		if !subjList[sw] {
			return false
		}
	} else if !c.Pattern.Passive {
		return false
	}
	// Object must be a harvested object head and not blacklisted.
	if c.Resource < 0 {
		return false
	}
	ow := p.Tokens[c.Resource].Lower
	if m.ObjectBlacklist[ow] || !objList[ow] {
		return false
	}
	// Path verbs must not be blacklisted.
	if len(c.Pattern.Path) == 0 || len(c.Pattern.Path) > 4 {
		return false
	}
	for _, lemma := range c.Pattern.Path {
		if m.VerbBlacklist[lemma] {
			return false
		}
	}
	return true
}

// Scored is a pattern with its evaluation counts and scores (§III-B
// Step 3, Eq. 1).
type Scored struct {
	Pattern Pattern
	Pos     int
	Neg     int
	Unk     int
	Acc     float64
	Conf    float64
	Score   float64
}

// Rank scores each pattern against labelled positive and negative
// sentence sets and returns patterns sorted by descending score.
// unk — the number of sentences unmatched by any pattern — is global,
// as in the paper.
func Rank(pats []Pattern, positive, negative []ParsedSentence) []Scored {
	keyOf := func(c Candidate) string { return c.Pattern.Key() }
	// For every sentence record which pattern keys it realizes.
	realize := func(set []ParsedSentence) []map[string]bool {
		out := make([]map[string]bool, len(set))
		for i, ps := range set {
			ks := map[string]bool{}
			for _, c := range Extract(ps.Parse) {
				ks[keyOf(c)] = true
			}
			out[i] = ks
		}
		return out
	}
	posKeys := realize(positive)
	negKeys := realize(negative)

	allKeys := map[string]bool{}
	for _, p := range pats {
		allKeys[p.Key()] = true
	}
	unk := 0
	for _, ks := range append(append([]map[string]bool{}, posKeys...), negKeys...) {
		hit := false
		for k := range ks {
			if allKeys[k] {
				hit = true
				break
			}
		}
		if !hit {
			unk++
		}
	}

	scored := make([]Scored, 0, len(pats))
	for _, p := range pats {
		k := p.Key()
		s := Scored{Pattern: p, Unk: unk}
		for _, ks := range posKeys {
			if ks[k] {
				s.Pos++
			}
		}
		for _, ks := range negKeys {
			if ks[k] {
				s.Neg++
			}
		}
		if s.Pos+s.Neg > 0 {
			s.Acc = float64(s.Pos) / float64(s.Pos+s.Neg)
			s.Conf = float64(s.Pos-s.Neg) / float64(s.Pos+s.Neg+s.Unk)
		}
		if s.Pos == 0 {
			// A pattern matching no positive sentence is useless; park it
			// at the bottom rather than letting conf·log(0) change sign.
			s.Score = -1e9
		} else {
			s.Score = s.Conf * logPos(s.Pos)
		}
		scored = append(scored, s)
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		// Among score ties, prefer patterns matching fewer negative
		// sentences, then more positives, then a stable key order.
		if scored[i].Neg != scored[j].Neg {
			return scored[i].Neg < scored[j].Neg
		}
		if scored[i].Pos != scored[j].Pos {
			return scored[i].Pos > scored[j].Pos
		}
		return scored[i].Pattern.Key() < scored[j].Pattern.Key()
	})
	return scored
}

// logPos is ln(pos) with pos<=1 mapped so unseen patterns sink to the
// bottom without producing -Inf and singletons keep a small positive
// weight.
func logPos(pos int) float64 {
	if pos <= 0 {
		return -10
	}
	if pos == 1 {
		return 0.1
	}
	return math.Log(float64(pos))
}

// TopN returns the n best-scored patterns.
func TopN(scored []Scored, n int) []Pattern {
	if n > len(scored) {
		n = len(scored)
	}
	out := make([]Pattern, 0, n)
	for _, s := range scored[:n] {
		out = append(out, s.Pattern)
	}
	return out
}
