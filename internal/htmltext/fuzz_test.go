package htmltext_test

import (
	"testing"
	"unicode/utf8"

	"ppchecker/internal/htmltext"
	"ppchecker/internal/synth"
)

// FuzzHTMLExtract: extraction must never panic, and its output must be
// ASCII-clean (the Scrub contract) for any input, including the
// Corruptor's policy fault classes.
func FuzzHTMLExtract(f *testing.F) {
	base := "<html><body><p>We collect your location information.</p></body></html>"
	f.Add(base)
	c := synth.NewCorruptor(3)
	for _, fault := range []synth.Fault{
		synth.FaultPolicyBadUTF8, synth.FaultPolicyUnclosed,
		synth.FaultPolicyEnumBomb, synth.FaultPolicyTokenBomb,
	} {
		if s, err := c.CorruptPolicy(base, fault); err == nil {
			f.Add(s)
		}
	}
	f.Add("<script>unclosed")
	f.Add("<!-- unterminated comment")
	f.Add("&#x110000;&bogus;&")
	// Surrogate halves and just-out-of-range code points: both must
	// clamp to utf8.RuneError internally, never reach string(rune(..)).
	f.Add("&#xD800;&#xDFFF;&#x110000;")
	f.Add("&#55296;") // 0xD800 in decimal
	// Multibyte runes inside the digits: parsed bytewise, these must be
	// rejected, not truncated into ASCII digit aliases.
	f.Add("&#xŁ1;&#１2;")
	f.Add("&#x;&#;")
	f.Add("< div")
	f.Fuzz(func(t *testing.T, html string) {
		text := htmltext.Extract(html)
		if !utf8.ValidString(text) {
			t.Fatalf("extracted text not valid UTF-8: %q", text)
		}
		for i := 0; i < len(text); i++ {
			if text[i] > 127 {
				t.Fatalf("non-ASCII byte %#x survived Scrub", text[i])
			}
		}
	})
}
