// Package htmltext extracts readable text from HTML privacy policies.
//
// It plays the role Beautiful Soup plays in the paper (§III-B Step 1):
// given a privacy policy published as an HTML page, it strips markup,
// drops script/style/head content, decodes character entities, removes
// non-ASCII symbols and meaningless ASCII control characters, and returns
// plain text suitable for sentence splitting.
package htmltext

import (
	"strings"
	"sync"
	"unicode/utf8"
)

// blockTags are elements whose boundaries imply a text break. Without
// this, "<p>We collect data.</p><p>We share it.</p>" would glue the
// period of one paragraph to the first word of the next.
var blockTags = map[string]bool{
	"p": true, "div": true, "br": true, "li": true, "ul": true, "ol": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"tr": true, "td": true, "th": true, "table": true, "section": true,
	"article": true, "header": true, "footer": true, "blockquote": true,
}

// skipTags are elements whose entire content is dropped.
var skipTags = map[string]bool{
	"script": true, "style": true, "head": true, "noscript": true,
	"iframe": true, "svg": true, "title": true,
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "mdash": "-", "ndash": "-", "hellip": "...",
	"rsquo": "'", "lsquo": "'", "rdquo": `"`, "ldquo": `"`, "copy": "",
	"reg": "", "trade": "", "bull": " ", "middot": " ", "sect": " ",
}

// scrubber applies Scrub's per-byte state machine while the extraction
// loop writes, so one pooled buffer replaces the former two full-size
// builder passes (extract, then scrub).
type scrubber struct {
	buf       []byte
	lastSpace bool
	lastNL    bool
}

var scrubberPool = sync.Pool{New: func() any { return new(scrubber) }}

func (w *scrubber) writeByte(c byte) {
	switch {
	case c == '\n':
		if !w.lastNL {
			w.buf = append(w.buf, '\n')
			w.lastNL, w.lastSpace = true, true
		}
	case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
		if !w.lastSpace {
			w.buf = append(w.buf, ' ')
			w.lastSpace = true
		}
	case c >= 32 && c < 127 && meaningful(c):
		w.buf = append(w.buf, c)
		w.lastSpace, w.lastNL = false, false
	default:
		// non-ASCII or meaningless: treated as a soft space
		if !w.lastSpace {
			w.buf = append(w.buf, ' ')
			w.lastSpace = true
		}
	}
}

func (w *scrubber) writeString(s string) {
	for i := 0; i < len(s); i++ {
		w.writeByte(s[i])
	}
}

// Extract returns the readable text of an HTML document. It also accepts
// plain text (documents with no markup pass through unchanged apart from
// whitespace normalisation and the ASCII scrub). The result equals
// Scrub applied to the raw extracted text.
func Extract(html string) string {
	w := scrubberPool.Get().(*scrubber)
	defer scrubberPool.Put(w)
	if cap(w.buf) < len(html) {
		w.buf = make([]byte, 0, len(html))
	} else {
		w.buf = w.buf[:0]
	}
	// Initial state suppresses leading whitespace, like Scrub's.
	w.lastSpace, w.lastNL = true, true
	i := 0
	n := len(html)
	var skipUntil string // inside a skip tag: its name, until matching close
	for i < n {
		c := html[i]
		switch {
		case c == '<':
			name, attrs, closing, selfClose, next := parseTag(html, i)
			if next == i { // malformed "<": treat literally
				if skipUntil == "" {
					w.writeByte(c)
				}
				i++
				continue
			}
			_ = attrs
			i = next
			lower := strings.ToLower(name)
			if skipUntil != "" {
				if closing && lower == skipUntil {
					skipUntil = ""
				}
				continue
			}
			if !closing && skipTags[lower] && !selfClose {
				skipUntil = lower
				continue
			}
			if blockTags[lower] {
				w.writeByte('\n')
			} else {
				w.writeByte(' ')
			}
		case c == '&':
			s, next := parseEntity(html, i)
			if skipUntil == "" {
				w.writeString(s)
			}
			i = next
		default:
			if skipUntil == "" {
				w.writeByte(c)
			}
			i++
		}
	}
	// The machine never emits leading whitespace; trim the at most one
	// trailing " \n" run (= strings.TrimSpace of the scrubbed text).
	end := len(w.buf)
	for end > 0 && (w.buf[end-1] == ' ' || w.buf[end-1] == '\n') {
		end--
	}
	return string(w.buf[:end])
}

// parseTag parses a tag starting at html[i]=='<'. It returns the tag
// name, its raw attribute text, whether it is a closing tag, whether it
// is self-closing, and the index just past '>'. If no '>' is found the
// returned next equals i, signalling a literal '<'.
func parseTag(html string, i int) (name, attrs string, closing, selfClose bool, next int) {
	end := strings.IndexByte(html[i:], '>')
	if end < 0 {
		return "", "", false, false, i
	}
	inner := html[i+1 : i+end]
	next = i + end + 1
	inner = strings.TrimSpace(inner)
	if strings.HasPrefix(inner, "!--") { // comment
		// Comments may contain '>'; find the real end.
		cend := strings.Index(html[i:], "-->")
		if cend >= 0 {
			next = i + cend + 3
		}
		return "!--", "", false, true, next
	}
	if strings.HasPrefix(inner, "!") || strings.HasPrefix(inner, "?") {
		return "!", "", false, true, next
	}
	if strings.HasPrefix(inner, "/") {
		closing = true
		inner = strings.TrimSpace(inner[1:])
	}
	if strings.HasSuffix(inner, "/") {
		selfClose = true
		inner = strings.TrimSpace(inner[:len(inner)-1])
	}
	sp := strings.IndexAny(inner, " \t\r\n")
	if sp < 0 {
		name = inner
	} else {
		name = inner[:sp]
		attrs = inner[sp+1:]
	}
	return name, attrs, closing, selfClose, next
}

// parseEntity decodes an HTML entity starting at html[i]=='&'. It
// returns the decoded text and the index just past the entity. Unknown
// entities are dropped; a bare '&' is kept.
func parseEntity(html string, i int) (string, int) {
	end := i + 1
	limit := i + 10
	if limit > len(html) {
		limit = len(html)
	}
	for end < limit && html[end] != ';' {
		end++
	}
	if end >= limit || html[end] != ';' {
		return "&", i + 1
	}
	body := html[i+1 : end]
	if strings.HasPrefix(body, "#") {
		// Numeric character reference. The reference is parsed byte by
		// byte — iterating runes and truncating with byte(r) would let a
		// multibyte rune alias an ASCII digit (e.g. U+0141 truncates to
		// 'A' and would parse as hex 10) — and the resulting code point
		// is validated like the stdlib does: surrogate halves
		// (0xD800–0xDFFF) and values above 0x10FFFF clamp to
		// utf8.RuneError rather than reaching string(rune(code)), so the
		// decoder can never emit invalid UTF-8.
		code := 0
		numeric := body[1:]
		base := 10
		if strings.HasPrefix(numeric, "x") || strings.HasPrefix(numeric, "X") {
			base = 16
			numeric = numeric[1:]
		}
		if numeric == "" {
			return "", end + 1
		}
		for j := 0; j < len(numeric); j++ {
			d := digitVal(numeric[j], base)
			if d < 0 {
				return "", end + 1
			}
			if code <= 0x10FFFF { // saturate instead of overflowing
				code = code*base + d
			}
		}
		r := rune(code)
		if !utf8.ValidRune(r) {
			r = utf8.RuneError
		}
		if r >= 32 && r < 127 { // keep printable ASCII only
			return string(r), end + 1
		}
		return " ", end + 1
	}
	if s, ok := entities[strings.ToLower(body)]; ok {
		return s, end + 1
	}
	return "", end + 1
}

func digitVal(c byte, base int) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case base == 16 && c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case base == 16 && c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// Scrub removes non-ASCII bytes and meaningless ASCII symbols, and
// collapses runs of whitespace, mirroring the cleaning step the paper
// applies after content extraction. Newlines are preserved as sentence
// hints; other whitespace collapses to single spaces.
func Scrub(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	lastNL := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\n':
			if !lastNL {
				b.WriteByte('\n')
				lastNL = true
				lastSpace = true
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		case c >= 32 && c < 127 && meaningful(c):
			b.WriteByte(c)
			lastSpace = false
			lastNL = false
		default:
			// non-ASCII or meaningless: treated as a soft space
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// meaningful reports whether an ASCII character carries meaning for
// policy text. Letters, digits and the punctuation the sentence splitter
// and parser understand are kept; decorative symbols are dropped.
func meaningful(c byte) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
		return true
	}
	switch c {
	case '.', ',', ';', ':', '!', '?', '\'', '"', '(', ')', '-', '/', '&', '%', '$', '@', '_', ' ':
		return true
	}
	return false
}
