package htmltext

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractBasic(t *testing.T) {
	html := `<html><head><title>T</title></head><body>
<h1>Privacy Policy</h1>
<p>We collect your location.</p>
<p>We share data with partners.</p>
</body></html>`
	text := Extract(html)
	if !strings.Contains(text, "We collect your location.") {
		t.Fatalf("text = %q", text)
	}
	if strings.Contains(text, "<") || strings.Contains(text, ">") {
		t.Fatalf("markup leaked: %q", text)
	}
	if strings.Contains(text, "Privacy PolicyWe") {
		t.Fatalf("block boundary lost: %q", text)
	}
}

func TestExtractDropsScriptStyleHead(t *testing.T) {
	html := `<head><style>p { color: red; }</style></head>
<body><script>var secret = "leak";</script>
<noscript>enable js</noscript>
<p>visible</p></body>`
	text := Extract(html)
	for _, banned := range []string{"color", "secret", "leak", "enable js"} {
		if strings.Contains(text, banned) {
			t.Errorf("%q leaked into %q", banned, text)
		}
	}
	if !strings.Contains(text, "visible") {
		t.Errorf("visible text lost: %q", text)
	}
}

func TestExtractEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":      "a & b",
		"x &lt; y":       "x y", // '<' is scrubbed as a meaningless symbol
		"&quot;hi&quot;": `"hi"`,
		"don&#39;t":      "don't",
		"a&nbsp;b":       "a b",
		"a &bogus; b":    "a b", // unknown entity dropped
		"a &#x41; b":     "a A b",
		"tail &":         "tail &", // bare ampersand kept
	}
	for in, want := range cases {
		if got := Extract(in); got != want {
			t.Errorf("Extract(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractComments(t *testing.T) {
	text := Extract("before<!-- hidden > text -->after")
	if strings.Contains(text, "hidden") {
		t.Fatalf("comment leaked: %q", text)
	}
	if !strings.Contains(text, "before") || !strings.Contains(text, "after") {
		t.Fatalf("text lost around comment: %q", text)
	}
}

func TestExtractPlainTextPassThrough(t *testing.T) {
	in := "Just a plain sentence. And another."
	if got := Extract(in); got != in {
		t.Fatalf("plain text altered: %q", got)
	}
}

func TestExtractMalformed(t *testing.T) {
	// Unclosed tag at EOF, stray '<': the words survive, the symbol is
	// scrubbed.
	got := Extract("a < b and <unclosed")
	if !strings.Contains(got, "a b and") || !strings.Contains(got, "unclosed") {
		t.Fatalf("stray < mangled words: %q", got)
	}
	// Unterminated skip tag: remaining content suppressed but no panic.
	_ = Extract("<script>never closed")
}

func TestScrubNonASCII(t *testing.T) {
	got := Scrub("caf\xc3\xa9 cr\xc3\xa8me — ok")
	if strings.ContainsAny(got, "\xc3\xa9") {
		t.Fatalf("non-ASCII kept: %q", got)
	}
	if !strings.Contains(got, "caf") || !strings.Contains(got, "ok") {
		t.Fatalf("ascii lost: %q", got)
	}
}

func TestScrubCollapsesWhitespace(t *testing.T) {
	got := Scrub("a   b\t\tc\n\n\nd")
	if got != "a b c\nd" {
		t.Fatalf("Scrub = %q", got)
	}
}

// TestExtractTotalProperty: Extract never panics and always returns
// clean ASCII for arbitrary input.
func TestExtractTotalProperty(t *testing.T) {
	f := func(s string) bool {
		out := Extract(s)
		for i := 0; i < len(out); i++ {
			c := out[i]
			if c >= 127 || (c < 32 && c != '\n') {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestNumericReferenceValidation is the regression suite for the NCR
// decoder: surrogate halves and out-of-range code points must clamp to
// utf8.RuneError (which the ASCII filter then drops), never reach
// string(rune(code)); digits are parsed bytewise so a multibyte rune
// can never alias an ASCII digit.
func TestNumericReferenceValidation(t *testing.T) {
	cases := []struct {
		in   string
		want string // decoded text, before Scrub
	}{
		{"&#65;", "A"},
		{"&#x41;", "A"},
		{"&#X41;", "A"},
		{"&#xD800;", " "},    // high surrogate → RuneError → dropped to space
		{"&#xDFFF;", " "},    // low surrogate
		{"&#55296;", " "},    // 0xD800 in decimal
		{"&#x110000;", " "},  // beyond the Unicode range
		{"&#x10FFFF;", " "},  // max valid code point, non-ASCII → space
		{"&#xFFFD;", " "},    // RuneError itself, non-ASCII → space
		{"&#xŁ1;", ""},       // U+0141: byte-truncation would alias hex 'A'
		{"&#１2;", ""},        // U+FF11 fullwidth ONE must not parse as a digit
		{"&#x;", ""},         // no digits
		{"&#;", ""},          // no digits
		{"&#xG;", ""},        // bad digit
	}
	for _, c := range cases {
		got, _ := parseEntity(c.in, 0)
		if got != c.want {
			t.Errorf("parseEntity(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNumericReferenceSaturation: a long digit string cannot wrap int
// and sneak back into the valid range.
func TestNumericReferenceSaturation(t *testing.T) {
	got, _ := parseEntity("&#9999999;", 0)
	if got != " " {
		t.Errorf("parseEntity(&#9999999;) = %q, want a soft space", got)
	}
}
